// Command faultstudy reproduces the experiment of Gashi, Popov &
// Strigini, "Fault Diversity among Off-The-Shelf SQL Database Servers"
// (DSN 2004): it runs the calibrated 181-bug corpus across the four
// simulated SQL servers and regenerates the paper's Tables 1-4, the
// headline statistics, and the Section 6 reliability-gain estimates.
//
// Usage:
//
//	faultstudy [-table N] [-summary] [-gains] [-stress] [-bugs] [-dedup]
//	           [-yield]
//
// With no flags, everything is printed. -yield adds the per-server
// fault-yield stats (statement budget vs failures vs distinct fault
// regions), the corpus-side view of the quantity the differential
// harness's coverage feedback optimizes.
package main

import (
	"flag"
	"fmt"
	"os"

	"divsql/internal/dialect"
	"divsql/internal/reliability"
	"divsql/internal/study"
)

func main() {
	table := flag.Int("table", 0, "print only one table (1-4)")
	summary := flag.Bool("summary", false, "print only the headline statistics")
	gains := flag.Bool("gains", false, "print the Section 6 reliability-gain estimates")
	stress := flag.Bool("stress", false, "run in the stressful environment (Heisenbugs can manifest)")
	bugs := flag.Bool("bugs", false, "list every bug with its per-server classification")
	dedup := flag.Bool("dedup", false, "print per-server failures deduplicated by statement fingerprint")
	yield_ := flag.Bool("yield", false, "print per-server fault-yield stats (budget vs failures vs distinct regions)")
	flag.Parse()

	if err := run(*table, *summary, *gains, *stress, *bugs, *dedup, *yield_); err != nil {
		fmt.Fprintln(os.Stderr, "faultstudy:", err)
		os.Exit(1)
	}
}

func run(table int, summary, gains, stress, bugs, dedup, yield_ bool) error {
	s := study.New()
	s.Stress = stress
	res, err := s.Run()
	if err != nil {
		return err
	}
	all := table == 0 && !summary && !gains && !bugs && !dedup && !yield_
	if bugs {
		printBugs(res)
	}
	if dedup {
		fmt.Println(res.RenderDedup())
	}
	if yield_ {
		fmt.Println(res.RenderYield())
	}
	if all || table == 1 {
		fmt.Println(res.BuildTable1().Render())
	}
	if all || table == 2 {
		fmt.Println(res.BuildTable2().Render())
	}
	if all || table == 3 {
		fmt.Println(res.BuildTable3().Render())
	}
	if all || table == 4 {
		fmt.Println(res.BuildTable4().Render())
	}
	if all || summary {
		fmt.Println(res.BuildHeadline().Render())
	}
	if all || gains {
		fmt.Println(reliability.FromStudy(res).Render())
	}
	return nil
}

func printBugs(res *study.Result) {
	for i := range res.Bugs {
		bug := &res.Bugs[i]
		fmt.Printf("%-12s [%s] %s\n", bug.ID, bug.Server, bug.Title)
		for _, s := range dialect.AllServers {
			run := res.Runs[bug.ID][s]
			cls := run.Class
			line := fmt.Sprintf("    %s: %s", s, cls.Status)
			if cls.IsFailure() {
				se := "non-self-evident"
				if cls.SelfEvident {
					se = "self-evident"
				}
				line += fmt.Sprintf(" (%s, %s)", cls.Type, se)
			}
			fmt.Println(line)
		}
	}
	fmt.Println()
}
