package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: divsql/internal/tpcc
cpu: Intel(R) Xeon(R) Processor
BenchmarkTPCCConcurrent/terminals=1-8         	       1	   2246000 ns/op	       445.0 tx/s
BenchmarkTPCCConcurrent/terminals=16-8        	       1	    305000 ns/op	      3278 tx/s
some unrelated chatter line
PASS
ok  	divsql/internal/tpcc	2.551s
pkg: divsql
BenchmarkComparatorNormalization 	      10	      3491 ns/op	         1.000 strict-false-alarms/op
PASS
`

func TestParse(t *testing.T) {
	doc, err := Parse(strings.NewReader(sample), "abc123")
	if err != nil {
		t.Fatal(err)
	}
	if doc.SHA != "abc123" || doc.GoOS != "linux" || doc.GoArch != "amd64" {
		t.Errorf("header: %+v", doc)
	}
	if len(doc.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %+v", len(doc.Benchmarks), doc.Benchmarks)
	}
	b0 := doc.Benchmarks[0]
	if b0.Package != "divsql/internal/tpcc" || b0.Name != "BenchmarkTPCCConcurrent/terminals=1-8" {
		t.Errorf("bench 0: %+v", b0)
	}
	if b0.Iters != 1 || b0.NsPerOp != 2246000 {
		t.Errorf("bench 0 numbers: %+v", b0)
	}
	if b0.Extra["tx/s"] != 445.0 {
		t.Errorf("bench 0 extra: %+v", b0.Extra)
	}
	b2 := doc.Benchmarks[2]
	if b2.Package != "divsql" || b2.NsPerOp != 3491 || b2.Extra["strict-false-alarms/op"] != 1.0 {
		t.Errorf("bench 2: %+v", b2)
	}
}

func TestParseEmpty(t *testing.T) {
	doc, err := Parse(strings.NewReader("PASS\nok\n"), "")
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 0 {
		t.Errorf("benchmarks from empty input: %+v", doc.Benchmarks)
	}
}
