// Command benchjson converts `go test -bench` text output (read from
// stdin) into a JSON document on stdout, so CI can publish one
// machine-readable benchmark artifact per commit (BENCH_<sha>.json) and
// the performance trajectory of the project accumulates across PRs.
//
// Usage:
//
//	go test -bench . -benchtime=1x ./... | benchjson -sha $GITHUB_SHA > BENCH_$GITHUB_SHA.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
)

func main() {
	sha := flag.String("sha", "", "commit SHA recorded in the document")
	flag.Parse()
	doc, err := Parse(os.Stdin, *sha)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// Doc is the benchmark artifact document.
type Doc struct {
	SHA        string      `json:"sha,omitempty"`
	GoOS       string      `json:"goos,omitempty"`
	GoArch     string      `json:"goarch,omitempty"`
	Package    string      `json:"-"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Benchmark is one parsed result line.
type Benchmark struct {
	Package string  `json:"package,omitempty"`
	Name    string  `json:"name"`
	Iters   int64   `json:"iterations"`
	NsPerOp float64 `json:"ns_per_op"`
	// Extra holds additional value/unit pairs (B/op, allocs/op, or
	// custom ReportMetric units such as tx/s).
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Parse reads `go test -bench` output and extracts the result lines.
func Parse(r io.Reader, sha string) (*Doc, error) {
	doc := &Doc{SHA: sha}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	pkg := ""
	for sc.Scan() {
		line := sc.Text()
		fields := strings.Fields(line)
		switch {
		case len(fields) >= 2 && fields[0] == "pkg:":
			pkg = fields[1]
		case len(fields) >= 2 && fields[0] == "goos:":
			doc.GoOS = fields[1]
		case len(fields) >= 2 && fields[0] == "goarch:":
			doc.GoArch = fields[1]
		case len(fields) >= 3 && isBenchName(fields[0]):
			b, ok := parseBench(pkg, fields)
			if ok {
				doc.Benchmarks = append(doc.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return doc, nil
}

func isBenchName(s string) bool {
	return len(s) > len("Benchmark") && strings.HasPrefix(s, "Benchmark")
}

// parseBench parses "BenchmarkName-8  120  9123 ns/op  64 B/op ...".
func parseBench(pkg string, fields []string) (Benchmark, bool) {
	b := Benchmark{Package: pkg, Name: fields[0]}
	if _, err := fmt.Sscan(fields[1], &b.Iters); err != nil {
		return b, false
	}
	// The remainder alternates value, unit.
	for i := 2; i+1 < len(fields); i += 2 {
		var v float64
		if _, err := fmt.Sscan(fields[i], &v); err != nil {
			return b, false
		}
		unit := fields[i+1]
		if unit == "ns/op" {
			b.NsPerOp = v
			continue
		}
		if b.Extra == nil {
			b.Extra = make(map[string]float64)
		}
		b.Extra[unit] = v
	}
	return b, true
}
