// Command divfuzz hunts for cross-server divergences with generated
// workloads: it feeds a seeded, schema-aware SQL stream (internal/qgen)
// through the four simulated servers and the pristine oracle, and
// reports every fingerprint-deduplicated divergence with a shrunk,
// replayable reproduction (internal/difftest).
//
// Usage:
//
//	divfuzz [-seed N] [-n N] [-streams N] [-shards N] [-faults=false] [-stress]
//	        [-sequences] [-isolation] [-params] [-planvariants]
//	        [-tlp] [-norec] [-cert] [-regress-out DIR]
//	        [-adaptive] [-maxrows N] [-batch N] [-shrink=false]
//	        [-maxreports N] [-metrics-every N] [-o FILE] [-cov FILE] [-v]
//
// -shards N (N > 1) switches to the sharded smoke configuration: the
// streams run fault-free through the shard router (internal/shard) over
// N diverse replica sets and are adjudicated in lockstep against the
// oracle. Routing, per-shard adjudication and the router's session
// layer must be semantically invisible, so any divergence is a router
// or middleware bug and the exit status is 1. Fault flags do not
// combine with -shards.
//
// -metrics-every N prints a one-line hunt telemetry summary to stderr
// every N seconds — statements/s, coverage breadth, distinct divergence
// fingerprints, feedback retargets — so deep hunts (-n 100k+) are
// observable while they run instead of silent until exit.
//
// -planvariants arms the DQP-lite self-check oracle: every SELECT the
// oracle answers is re-executed on the oracle under forced full-scan
// and index-preferred plans, and any result disagreement is reported as
// a divergence against the oracle itself — a direct differential test
// of the engine's analyzer-compiled, index-backed execution path.
//
// -tlp, -norec and -cert arm the metamorphic self-check oracles
// (internal/metamorph): every answered SELECT is rewritten into queries
// whose results it logically constrains — ternary-logic partitioning
// (WHERE p / NOT p / p IS NULL must reassemble the unfiltered result),
// non-optimizing re-execution (a forced full scan counting the
// predicate must agree with the optimized cardinality), and cardinality
// restriction (adding a conjunct can never grow the result). A violated
// relation convicts the endpoint that produced the base result without
// any cross-server vote, so these oracles catch correlated failures a
// differential vote is structurally blind to. Arming any of them leans
// the generator toward the oracles' applicability region.
//
// -regress-out DIR exports every shrunk report of the run as a
// replayable regression case (JSON) under DIR, deduplicated across runs
// by verdict fingerprint — the committed corpus under regress/cases is
// grown this way and replayed by `go test ./regress/...`.
//
// -params enables the parameterized statement mode: a weighted share of
// the generated DML/queries executes through prepare/bind with typed
// argument vectors instead of inline literals, so the hunt reaches each
// server's bind-time coercion rules (a fault surface inline SQL cannot
// touch). With faults armed the argument values also target the
// bind-coercion quirk regions; the fault-free -params gate must stay
// divergence-free like any other common-subset stream.
//
// With -faults (the default) the harness is armed with the calibrated
// 181-bug corpus fault set and the generator's table pool targets the
// faults' trigger regions. With -faults=false the run is the smoke
// configuration: the common dialect subset must be divergence-free, so
// any finding is a harness or engine bug and the exit status is 1.
//
// Concurrent hunting is the default (-streams 4): per-stream scoped
// oracle snapshots give multi-stream runs the same resync precision and
// cascade-free attribution as a single stream, so the extra streams buy
// throughput without costing adjudication quality.
//
// -adaptive closes the coverage feedback loop: each stream retunes the
// generator's statement-class and query-shape weights from its own
// observed coverage every -batch statements, so the budget flows to
// under-explored regions still yielding new divergence fingerprints.
// -maxrows bounds generated-table cardinality, which keeps adjudicated
// cost per statement ~flat as -n grows — the two flags together are
// what make deep hunts (-n 100k+) affordable. Every run prints its
// coverage summary; -cov writes it to a separate artifact file.
//
// -sequences enables sequence DDL and sequence-advancing SELECTs
// (NEXTVAL) in the stream, restricting the run to the PG/OR server set
// (MS has no sequences; IB spells the function GEN_ID).
//
// -isolation weaves SET TRANSACTION ISOLATION LEVEL statements into
// the transactional streams, so read-view pinning (snapshot levels),
// per-statement fresh views (READ COMMITTED) and each dialect's
// acceptance of the level names enter adjudication (see ISOLATION.md).
// Fault-free runs draw only the universally accepted names and must
// stay divergence-free; calibrated runs (which arm isolation by
// default) draw all five, so per-dialect acceptance surfaces as
// isolation-class fingerprints.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"divsql/internal/difftest"
)

// isFlagSet reports whether the named flag was passed explicitly.
func isFlagSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

func main() {
	seed := flag.Int64("seed", 1, "generator seed (same seed, same stream, same findings)")
	n := flag.Int("n", 5000, "statements per stream")
	streams := flag.Int("streams", 4, "concurrent client streams (disjoint table namespaces, per-stream oracle resync)")
	shards := flag.Int("shards", 1, "run the fault-free sharded smoke over this many diverse replica sets (>1; see internal/shard)")
	faults := flag.Bool("faults", true, "arm the calibrated corpus fault set")
	stress := flag.Bool("stress", false, "stressful environment (Heisenbug triggers active)")
	sequences := flag.Bool("sequences", false, "exercise sequence-advancing SELECTs (PG/OR server set)")
	isolation := flag.Bool("isolation", false, "emit SET TRANSACTION ISOLATION LEVEL statements: read views and per-dialect level acceptance enter adjudication (fault-free runs draw only universally accepted levels)")
	params := flag.Bool("params", false, "parameterized mode: a weighted share of statements executes through prepare/bind with typed argument vectors, covering the servers' bind-time coercion rules")
	planVariants := flag.Bool("planvariants", false, "DQP-lite self-check: re-run every answered SELECT on the oracle under forced full-scan and index plans and fail on any disagreement")
	tlp := flag.Bool("tlp", false, "metamorphic self-check: ternary-logic partitioning (WHERE p / NOT p / p IS NULL must reassemble the unfiltered result)")
	norec := flag.Bool("norec", false, "metamorphic self-check: non-optimizing re-execution (forced full-scan predicate count must match the optimized cardinality)")
	cert := flag.Bool("cert", false, "metamorphic self-check: cardinality restriction (an appended conjunct can never grow the result)")
	regressOut := flag.String("regress-out", "", "export every shrunk report as a replayable regression case (JSON) under this directory, deduplicated by verdict fingerprint")
	adaptive := flag.Bool("adaptive", false, "coverage-guided: retune generator weights from observed coverage between batches")
	maxrows := flag.Int("maxrows", 0, "bound generated-table cardinality (0: unbounded); keeps per-statement cost flat on deep runs")
	batch := flag.Int("batch", 0, "adaptive retargeting interval in statements (0: 500)")
	shrink := flag.Bool("shrink", true, "shrink each divergence to a minimal repro stream")
	maxReports := flag.Int("maxreports", 6, "shrunk reports per server")
	metricsEvery := flag.Int("metrics-every", 0, "print a one-line hunt telemetry summary (statements/s, coverage breadth, divergence fingerprints, retargets) to stderr every N seconds (0: off)")
	out := flag.String("o", "", "also write the report to this file (CI artifact)")
	covOut := flag.String("cov", "", "also write the coverage summary to this file (CI artifact)")
	verbose := flag.Bool("v", false, "print full repro reports")
	flag.Parse()

	if *shards > 1 {
		// The sharded smoke is its own fault-free configuration: arming
		// faults would make every stream diverge by design and convict
		// the router for the fault layer's work.
		if *faults && isFlagSet("faults") {
			fmt.Fprintln(os.Stderr, "divfuzz: -shards does not combine with -faults")
			os.Exit(2)
		}
		res, err := difftest.RunSharded(difftest.ShardedConfig{
			Seed: *seed, N: *n, Streams: *streams, Shards: *shards,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "divfuzz:", err)
			os.Exit(2)
		}
		fmt.Print(res.RenderSharded())
		if len(res.Divergences) > 0 {
			fmt.Fprintln(os.Stderr, "divfuzz: divergences in the sharded fault-free configuration — router or middleware bug")
			os.Exit(1)
		}
		return
	}

	var cfg difftest.Config
	if *faults {
		cfg = difftest.CalibratedConfig(*seed, *n)
	} else {
		cfg = difftest.DefaultConfig(*seed, *n)
	}
	cfg.Streams = *streams
	cfg.Stress = *stress
	cfg.Shrink = *shrink
	cfg.MaxReportsPerServer = *maxReports
	cfg.Adaptive = *adaptive
	cfg.MaxRowsPerTable = *maxrows
	cfg.FeedbackBatch = *batch
	cfg.Params = *params
	// CalibratedConfig turns isolation on by default; the flag can only
	// add it to a fault-free run, not strip it from a calibrated one.
	cfg.Isolation = cfg.Isolation || *isolation
	cfg.PlanVariants = *planVariants
	cfg.TLP = *tlp
	cfg.NoREC = *norec
	cfg.CERT = *cert
	cfg.RegressDir = *regressOut
	if *sequences {
		cfg = cfg.WithSequences()
	}

	if *metricsEvery > 0 {
		tel := difftest.SharedTelemetry()
		tel.Snapshot() // open the rate window
		tick := time.NewTicker(time.Duration(*metricsEvery) * time.Second)
		defer tick.Stop()
		done := make(chan struct{})
		defer close(done)
		go func() {
			for {
				select {
				case <-tick.C:
					fmt.Fprintln(os.Stderr, tel.Snapshot().String())
				case <-done:
					return
				}
			}
		}()
		// A run shorter than the interval still reports once at the end.
		defer func() { fmt.Fprintln(os.Stderr, tel.Snapshot().String()) }()
	}

	res, err := difftest.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "divfuzz:", err)
		os.Exit(2)
	}
	report := res.Render(*verbose)
	fmt.Print(report)
	if *out != "" {
		// Artifacts always carry the full repro reports, independent of
		// the console verbosity.
		if err := os.WriteFile(*out, []byte(res.Render(true)), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "divfuzz: write report:", err)
			os.Exit(2)
		}
	}
	if *covOut != "" && res.Coverage != nil {
		if err := os.WriteFile(*covOut, []byte(res.Coverage.Render()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "divfuzz: write coverage:", err)
			os.Exit(2)
		}
	}

	if !*faults && len(res.Divergences) > 0 {
		fmt.Fprintln(os.Stderr, "divfuzz: divergences in the fault-free configuration — harness or engine bug")
		os.Exit(1)
	}
}
