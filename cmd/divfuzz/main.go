// Command divfuzz hunts for cross-server divergences with generated
// workloads: it feeds a seeded, schema-aware SQL stream (internal/qgen)
// through the four simulated servers and the pristine oracle, and
// reports every fingerprint-deduplicated divergence with a shrunk,
// replayable reproduction (internal/difftest).
//
// Usage:
//
//	divfuzz [-seed N] [-n N] [-streams N] [-faults=false] [-stress]
//	        [-sequences] [-shrink=false] [-maxreports N] [-o FILE] [-v]
//
// With -faults (the default) the harness is armed with the calibrated
// 181-bug corpus fault set and the generator's table pool targets the
// faults' trigger regions. With -faults=false the run is the smoke
// configuration: the common dialect subset must be divergence-free, so
// any finding is a harness or engine bug and the exit status is 1.
//
// Concurrent hunting is the default (-streams 4): per-stream scoped
// oracle snapshots give multi-stream runs the same resync precision and
// cascade-free attribution as a single stream, so the extra streams buy
// throughput without costing adjudication quality.
//
// -sequences enables sequence DDL and sequence-advancing SELECTs
// (NEXTVAL) in the stream, restricting the run to the PG/OR server set
// (MS has no sequences; IB spells the function GEN_ID).
package main

import (
	"flag"
	"fmt"
	"os"

	"divsql/internal/difftest"
)

func main() {
	seed := flag.Int64("seed", 1, "generator seed (same seed, same stream, same findings)")
	n := flag.Int("n", 5000, "statements per stream")
	streams := flag.Int("streams", 4, "concurrent client streams (disjoint table namespaces, per-stream oracle resync)")
	faults := flag.Bool("faults", true, "arm the calibrated corpus fault set")
	stress := flag.Bool("stress", false, "stressful environment (Heisenbug triggers active)")
	sequences := flag.Bool("sequences", false, "exercise sequence-advancing SELECTs (PG/OR server set)")
	shrink := flag.Bool("shrink", true, "shrink each divergence to a minimal repro stream")
	maxReports := flag.Int("maxreports", 6, "shrunk reports per server")
	out := flag.String("o", "", "also write the report to this file (CI artifact)")
	verbose := flag.Bool("v", false, "print full repro reports")
	flag.Parse()

	var cfg difftest.Config
	if *faults {
		cfg = difftest.CalibratedConfig(*seed, *n)
	} else {
		cfg = difftest.DefaultConfig(*seed, *n)
	}
	cfg.Streams = *streams
	cfg.Stress = *stress
	cfg.Shrink = *shrink
	cfg.MaxReportsPerServer = *maxReports
	if *sequences {
		cfg = cfg.WithSequences()
	}

	res, err := difftest.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "divfuzz:", err)
		os.Exit(2)
	}
	report := res.Render(*verbose)
	fmt.Print(report)
	if *out != "" {
		// Artifacts always carry the full repro reports, independent of
		// the console verbosity.
		if err := os.WriteFile(*out, []byte(res.Render(true)), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "divfuzz: write report:", err)
			os.Exit(2)
		}
	}

	if !*faults && len(res.Divergences) > 0 {
		fmt.Fprintln(os.Stderr, "divfuzz: divergences in the fault-free configuration — harness or engine bug")
		os.Exit(1)
	}
}
