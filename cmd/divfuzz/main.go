// Command divfuzz hunts for cross-server divergences with generated
// workloads: it feeds a seeded, schema-aware SQL stream (internal/qgen)
// through the four simulated servers and the pristine oracle, and
// reports every fingerprint-deduplicated divergence with a shrunk,
// replayable reproduction (internal/difftest).
//
// Usage:
//
//	divfuzz [-seed N] [-n N] [-streams N] [-faults=false] [-stress]
//	        [-shrink=false] [-maxreports N] [-v]
//
// With -faults (the default) the harness is armed with the calibrated
// 181-bug corpus fault set and the generator's table pool targets the
// faults' trigger regions. With -faults=false the run is the smoke
// configuration: the common dialect subset must be divergence-free, so
// any finding is a harness or engine bug and the exit status is 1.
package main

import (
	"flag"
	"fmt"
	"os"

	"divsql/internal/difftest"
)

func main() {
	seed := flag.Int64("seed", 1, "generator seed (same seed, same stream, same findings)")
	n := flag.Int("n", 5000, "statements per stream")
	streams := flag.Int("streams", 1, "concurrent client streams (disjoint table namespaces)")
	faults := flag.Bool("faults", true, "arm the calibrated corpus fault set")
	stress := flag.Bool("stress", false, "stressful environment (Heisenbug triggers active)")
	shrink := flag.Bool("shrink", true, "shrink each divergence to a minimal repro stream")
	maxReports := flag.Int("maxreports", 6, "shrunk reports per server")
	verbose := flag.Bool("v", false, "print full repro reports")
	flag.Parse()

	var cfg difftest.Config
	if *faults {
		cfg = difftest.CalibratedConfig(*seed, *n)
	} else {
		cfg = difftest.DefaultConfig(*seed, *n)
	}
	cfg.Streams = *streams
	cfg.Stress = *stress
	cfg.Shrink = *shrink
	cfg.MaxReportsPerServer = *maxReports

	res, err := difftest.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "divfuzz:", err)
		os.Exit(2)
	}
	fmt.Print(res.Render(*verbose))

	if !*faults && len(res.Divergences) > 0 {
		fmt.Fprintln(os.Stderr, "divfuzz: divergences in the fault-free configuration — harness or engine bug")
		os.Exit(1)
	}
}
