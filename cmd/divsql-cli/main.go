// Command divsql-cli is an interactive client for divsqld. It reads one
// SQL statement per line and prints results as aligned text.
//
// Usage:
//
//	divsql-cli -connect 127.0.0.1:5433
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"divsql/internal/wire"
)

func main() {
	connect := flag.String("connect", "127.0.0.1:5433", "divsqld address")
	flag.Parse()
	if err := run(*connect); err != nil {
		fmt.Fprintln(os.Stderr, "divsql-cli:", err)
		os.Exit(1)
	}
}

func run(addr string) error {
	client, err := wire.Dial(addr)
	if err != nil {
		return err
	}
	defer client.Close()
	fmt.Printf("connected to %s; one statement per line; \\metrics for server metrics; \\shards for shard layout; \\q to quit\n", addr)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Print("divsql> ")
		if !sc.Scan() {
			return sc.Err()
		}
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			continue
		case line == `\q` || line == "quit" || line == "exit":
			return nil
		case line == `\metrics`:
			// Scrape the server's metrics registry over the METRICS
			// frame (requires divsqld started with -metrics).
			doc, err := client.Metrics()
			if err != nil {
				fmt.Println("ERROR:", err)
				continue
			}
			fmt.Print(doc)
			continue
		case line == `\shards`:
			// Shard layout over the SHARDS frame: per-shard statement
			// counts, replica rosters and quarantine state (requires
			// divsqld started with -shards > 1).
			doc, err := client.Shards()
			if err != nil {
				fmt.Println("ERROR:", err)
				continue
			}
			fmt.Print(doc)
			continue
		}
		res, err := client.Exec(strings.TrimSuffix(line, ";"))
		if err != nil {
			fmt.Println("ERROR:", err)
			continue
		}
		if len(res.Columns) > 0 {
			fmt.Println(strings.Join(res.Columns, " | "))
			for _, row := range res.Rows {
				cells := make([]string, len(row))
				for i, v := range row {
					cells[i] = v.String()
				}
				fmt.Println(strings.Join(cells, " | "))
			}
			fmt.Printf("(%d rows, %v)\n", len(res.Rows), res.Latency)
		} else {
			fmt.Printf("OK (%v)\n", res.Latency)
		}
	}
}
