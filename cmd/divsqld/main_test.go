package main

import (
	"database/sql"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"divsql/internal/wire"
	"divsql/sqldriver"
)

// TestDivsqldMetricsSmoke is the deployment smoke test CI runs: start
// the daemon in-process on ephemeral ports, push a short workload
// through database/sql over the wire protocol, then scrape /metrics
// and assert every subsystem's families are present and moving.
func TestDivsqldMetricsSmoke(t *testing.T) {
	d, err := start("127.0.0.1:0", "diverse", "PG,OR,MS", 0, 1, "127.0.0.1:0")
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	defer d.close()

	sqldriver.Register()
	db, err := sql.Open("divsql", "wire:"+d.wireAddr)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer db.Close()

	if _, err := db.Exec("CREATE TABLE ACCOUNTS (ID INT PRIMARY KEY, BAL INT)"); err != nil {
		t.Fatalf("create: %v", err)
	}
	ins, err := db.Prepare("INSERT INTO ACCOUNTS (ID, BAL) VALUES (?, ?)")
	if err != nil {
		t.Fatalf("prepare: %v", err)
	}
	for i := 0; i < 5; i++ {
		if _, err := ins.Exec(i, 100*i); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	ins.Close()
	// Repeated identical point lookups: the first compile misses the plan
	// cache, the rest hit it.
	for i := 0; i < 4; i++ {
		var bal int
		if err := db.QueryRow("SELECT BAL FROM ACCOUNTS WHERE ID = 3").Scan(&bal); err != nil {
			t.Fatalf("select: %v", err)
		}
		if bal != 300 {
			t.Fatalf("bal = %d, want 300", bal)
		}
	}
	// Transactions exercise BEGIN/COMMIT through the wire tx path.
	tx, err := db.Begin()
	if err != nil {
		t.Fatalf("begin: %v", err)
	}
	if _, err := tx.Exec("UPDATE ACCOUNTS SET BAL = 1 WHERE ID = 0"); err != nil {
		t.Fatalf("update: %v", err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}

	doc := scrape(t, d.metricsAddr)
	for _, family := range []string{
		"divsql_middleware_statements_total",
		"divsql_middleware_unanimous_total",
		"divsql_engine_plan_cache_hits_total",
		"divsql_engine_table_rows",
		"divsql_wire_requests_total",
		"divsql_wire_request_duration_seconds_bucket",
		"divsql_server_up",
		"divsql_hunt_statements_total",
		"divsql_process_uptime_seconds",
	} {
		if !strings.Contains(doc, family) {
			t.Errorf("scrape missing family %s", family)
		}
	}
	for _, want := range []string{
		`divsql_server_up{replica="PG"} 1`,
		`divsql_engine_table_rows{replica="OR",table="ACCOUNTS"} 5`,
	} {
		if !strings.Contains(doc, want) {
			t.Errorf("scrape missing sample %q", want)
		}
	}
	if n := sampleValue(t, doc, "divsql_middleware_statements_total"); n < 10 {
		t.Errorf("divsql_middleware_statements_total = %v, want >= 10", n)
	}
	if n := sampleValue(t, doc, "divsql_engine_plan_cache_hits_total"); n < 1 {
		t.Errorf("divsql_engine_plan_cache_hits_total = %v, want >= 1", n)
	}
	if n := sampleValue(t, doc, `divsql_wire_requests_total{frame="EXEC"}`); n < 1 {
		t.Errorf(`divsql_wire_requests_total{frame="EXEC"} = %v, want >= 1`, n)
	}
	if n := sampleValue(t, doc, `divsql_wire_requests_total{frame="BIND"}`); n < 5 {
		t.Errorf(`divsql_wire_requests_total{frame="BIND"} = %v, want >= 5`, n)
	}

	// The METRICS wire frame answers from the same registry, via the
	// driver-level scrape helper.
	wireDoc, err := sqldriver.Metrics(d.wireAddr)
	if err != nil {
		t.Fatalf("wire metrics: %v", err)
	}
	if !strings.Contains(wireDoc, "divsql_middleware_statements_total") {
		t.Errorf("wire METRICS missing middleware family")
	}
}

// TestDivsqldStartErrors covers the operator-facing failure paths.
func TestDivsqldStartErrors(t *testing.T) {
	if _, err := start("127.0.0.1:0", "bogus", "PG", 0, 1, ""); err == nil {
		t.Fatalf("unknown mode: want error")
	}
	if _, err := start("127.0.0.1:0", "single", "NOPE", 0, 1, ""); err == nil {
		t.Fatalf("unknown server: want error")
	}
	if _, err := start("127.0.0.1:0", "single", "PG", 0, 2, ""); err == nil {
		t.Fatalf("-shards outside diverse mode: want error")
	}
}

// TestDivsqldSharded starts the daemon with -shards 2 and checks that
// statements route, prefix namespaces isolate, the SHARDS wire frame
// (divsql-cli \shards) reports the layout, and /metrics carries
// shard-qualified families from both shards without label collisions.
func TestDivsqldSharded(t *testing.T) {
	d, err := start("127.0.0.1:0", "diverse", "PG,OR", 0, 2, "127.0.0.1:0")
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	defer d.close()

	sqldriver.Register()
	db, err := sql.Open("divsql", "wiremux:"+d.wireAddr)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer db.Close()
	for i := 0; i < 4; i++ {
		if _, err := db.Exec(fmt.Sprintf("CREATE TABLE NS%d_T (A INT)", i)); err != nil {
			t.Fatalf("create %d: %v", i, err)
		}
		if _, err := db.Exec(fmt.Sprintf("INSERT INTO NS%d_T VALUES (%d)", i, i)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	var got int
	if err := db.QueryRow("SELECT A FROM NS2_T").Scan(&got); err != nil {
		t.Fatalf("select: %v", err)
	}
	if got != 2 {
		t.Fatalf("NS2_T row = %d, want 2", got)
	}

	c, err := wire.Dial(d.wireAddr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	layout, err := c.Shards()
	if err != nil {
		t.Fatalf("SHARDS frame: %v", err)
	}
	if !strings.Contains(layout, "2 shard(s)") || !strings.Contains(layout, "shard0:") || !strings.Contains(layout, "shard1:") {
		t.Errorf("shard layout missing shards:\n%s", layout)
	}
	if !strings.Contains(layout, "replicas: OR, PG") {
		t.Errorf("shard layout missing replica roster:\n%s", layout)
	}

	doc := scrape(t, d.metricsAddr)
	for _, want := range []string{
		"divsql_shard_statements_total",
		`divsql_shard_routed_statements_total{shard="shard0"}`,
		`divsql_shard_routed_statements_total{shard="shard1"}`,
		`divsql_middleware_statements_total{shard="shard0"}`,
		`divsql_middleware_statements_total{shard="shard1"}`,
		`divsql_server_up{replica="PG",shard="shard0"} 1`,
		`divsql_server_up{replica="PG",shard="shard1"} 1`,
	} {
		if !strings.Contains(doc, want) {
			t.Errorf("sharded scrape missing %q", want)
		}
	}
}

func scrape(t *testing.T, addr string) string {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", addr))
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scrape status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("scrape content-type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("scrape read: %v", err)
	}
	return string(body)
}

// sampleValue sums the samples whose name (plus any leading part of
// the label set) starts with prefix — replica-labeled families yield
// one sample per replica.
func sampleValue(t *testing.T, doc, prefix string) float64 {
	t.Helper()
	sum, found := 0.0, false
	for _, line := range strings.Split(doc, "\n") {
		if strings.HasPrefix(line, "#") || !strings.HasPrefix(line, prefix) {
			continue
		}
		rest := line[len(prefix):]
		if !strings.HasPrefix(rest, " ") && !strings.HasPrefix(rest, "{") {
			continue // longer metric name, not ours
		}
		i := strings.LastIndexByte(line, ' ')
		var v float64
		if _, err := fmt.Sscanf(line[i+1:], "%g", &v); err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		sum += v
		found = true
	}
	if !found {
		t.Fatalf("no sample with prefix %q", prefix)
	}
	return sum
}
