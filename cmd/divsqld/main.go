// Command divsqld serves a SQL endpoint over the wire protocol: a
// single simulated server, a non-diverse replication group, or the
// diverse fault-tolerant middleware — the off-the-shelf middleware
// deployment the paper's conclusions call for.
//
// Usage:
//
//	divsqld -listen :5433 -mode diverse -servers PG,OR,MS
//	divsqld -listen :5433 -mode single  -servers IB
//	divsqld -listen :5433 -mode replicated -servers PG -n 3
//	divsqld -listen :5433 -mode diverse -shards 4
//	divsqld -listen :5433 -metrics :9090
//
// -shards N (with -mode diverse) scales out horizontally: N independent
// diverse replica sets behind a shard router partitioning tables by
// name prefix (see internal/shard). The wire SHARDS frame — divsql-cli
// \shards — reports per-shard replica and quarantine state.
//
// -metrics serves a Prometheus text /metrics endpoint covering every
// subsystem: middleware adjudication (statements, masked failures,
// splits, resyncs, per-replica quarantine), per-replica engines
// (plan-cache hit rate, access paths, catalog gauges), the wire
// protocol (per-frame request counters, latency histograms, bytes),
// and hunt telemetry. The same registry answers the wire METRICS
// frame, so sqldriver/CLI clients can introspect the deployment on the
// SQL port alone.
//
// Diagnostics go to stderr; stdout stays scriptable.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"divsql"
	"divsql/internal/difftest"
	"divsql/internal/obs"
	"divsql/internal/wire"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:5433", "address to listen on")
	mode := flag.String("mode", "diverse", "single | replicated | diverse")
	servers := flag.String("servers", "PG,OR,MS", "comma-separated server names (IB, PG, OR, MS)")
	n := flag.Int("n", 2, "replica count for -mode replicated")
	shards := flag.Int("shards", 1, "shard count for -mode diverse (>1 enables the shard router)")
	metrics := flag.String("metrics", "", "serve Prometheus /metrics on this address (e.g. :9090; empty: off)")
	flag.Parse()

	d, err := start(*listen, *mode, *servers, *n, *shards, *metrics)
	if err != nil {
		fmt.Fprintln(os.Stderr, "divsqld:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "divsqld: %s mode with %v listening on %s\n", *mode, d.names, d.wireAddr)
	if d.metricsAddr != "" {
		fmt.Fprintf(os.Stderr, "divsqld: metrics on http://%s/metrics\n", d.metricsAddr)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Fprintln(os.Stderr, "divsqld: shutting down")
	if err := d.close(); err != nil {
		fmt.Fprintln(os.Stderr, "divsqld:", err)
		os.Exit(1)
	}
}

// daemon is one running divsqld instance. start/close are separated
// from main so the metrics smoke test can run the daemon in-process on
// ephemeral ports.
type daemon struct {
	db          divsql.DB
	names       []divsql.ServerName
	wireSrv     *wire.Server
	wireAddr    string
	metricsLn   net.Listener
	metricsAddr string
}

// start opens the endpoint, begins serving the wire protocol on listen
// and, when metricsAddr is non-empty, the /metrics HTTP endpoint.
func start(listen, mode, serverList string, n, shards int, metricsAddr string) (*daemon, error) {
	var names []divsql.ServerName
	for _, s := range strings.Split(serverList, ",") {
		names = append(names, divsql.ServerName(strings.ToUpper(strings.TrimSpace(s))))
	}
	var (
		db  divsql.DB
		err error
	)
	switch {
	case shards > 1 && mode != "diverse":
		return nil, fmt.Errorf("-shards requires -mode diverse")
	case mode == "single":
		db, err = divsql.Open(names[0])
	case mode == "replicated":
		db, err = divsql.OpenReplicated(names[0], n)
	case mode == "diverse" && shards > 1:
		db, err = divsql.OpenSharded(divsql.ShardedConfig{Shards: shards}, names...)
	case mode == "diverse":
		db, err = divsql.OpenDiverse(names...)
	default:
		return nil, fmt.Errorf("unknown mode %q", mode)
	}
	if err != nil {
		return nil, err
	}

	exec, ok := divsql.Executor(db)
	if !ok {
		_ = db.Close()
		return nil, fmt.Errorf("mode %q has no executor", mode)
	}
	srv := wire.NewServer(exec)

	// One registry backs both exposure paths: the HTTP /metrics endpoint
	// and the wire METRICS frame. The hunt collector reports zeros until
	// a hunt runs in this process — present either way, so dashboards
	// can rely on the family set.
	reg := obs.NewRegistry()
	reg.Register(obs.ProcessCollector())
	reg.Register(divsql.Collectors(db)...)
	reg.Register(srv.MetricsCollector())
	reg.Register(difftest.SharedTelemetry().MetricsCollector())
	srv.ServeMetrics(reg)
	if txt, ok := divsql.ShardsDescription(db); ok {
		_ = txt
		srv.ServeShards(func() string {
			doc, _ := divsql.ShardsDescription(db)
			return doc
		})
	}

	addr, err := srv.Listen(listen)
	if err != nil {
		_ = db.Close()
		return nil, err
	}
	d := &daemon{db: db, names: names, wireSrv: srv, wireAddr: addr}

	if metricsAddr != "" {
		ln, err := net.Listen("tcp", metricsAddr)
		if err != nil {
			_ = d.close()
			return nil, fmt.Errorf("metrics listen: %w", err)
		}
		mux := http.NewServeMux()
		mux.Handle("/metrics", reg.Handler())
		go func() { _ = http.Serve(ln, mux) }()
		d.metricsLn = ln
		d.metricsAddr = ln.Addr().String()
	}
	return d, nil
}

// close stops the listeners and releases the endpoint.
func (d *daemon) close() error {
	var first error
	if d.metricsLn != nil {
		if err := d.metricsLn.Close(); err != nil && first == nil {
			first = err
		}
	}
	if err := d.wireSrv.Close(); err != nil && first == nil {
		first = err
	}
	if err := d.db.Close(); err != nil && first == nil {
		first = err
	}
	return first
}
