// Command divsqld serves a SQL endpoint over the wire protocol: a
// single simulated server, a non-diverse replication group, or the
// diverse fault-tolerant middleware — the off-the-shelf middleware
// deployment the paper's conclusions call for.
//
// Usage:
//
//	divsqld -listen :5433 -mode diverse -servers PG,OR,MS
//	divsqld -listen :5433 -mode single  -servers IB
//	divsqld -listen :5433 -mode replicated -servers PG -n 3
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"divsql"
	"divsql/internal/wire"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:5433", "address to listen on")
	mode := flag.String("mode", "diverse", "single | replicated | diverse")
	servers := flag.String("servers", "PG,OR,MS", "comma-separated server names (IB, PG, OR, MS)")
	n := flag.Int("n", 2, "replica count for -mode replicated")
	flag.Parse()

	if err := run(*listen, *mode, *servers, *n); err != nil {
		fmt.Fprintln(os.Stderr, "divsqld:", err)
		os.Exit(1)
	}
}

func run(listen, mode, serverList string, n int) error {
	var names []divsql.ServerName
	for _, s := range strings.Split(serverList, ",") {
		names = append(names, divsql.ServerName(strings.ToUpper(strings.TrimSpace(s))))
	}
	var (
		db  divsql.DB
		err error
	)
	switch mode {
	case "single":
		db, err = divsql.Open(names[0])
	case "replicated":
		db, err = divsql.OpenReplicated(names[0], n)
	case "diverse":
		db, err = divsql.OpenDiverse(names...)
	default:
		return fmt.Errorf("unknown mode %q", mode)
	}
	if err != nil {
		return err
	}
	defer db.Close()

	exec, ok := divsql.Executor(db)
	if !ok {
		return fmt.Errorf("mode %q has no executor", mode)
	}
	srv := wire.NewServer(exec)
	addr, err := srv.Listen(listen)
	if err != nil {
		return err
	}
	fmt.Printf("divsqld: %s mode with %v listening on %s\n", mode, names, addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("divsqld: shutting down")
	return srv.Close()
}
