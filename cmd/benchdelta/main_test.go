package main

import (
	"strings"
	"testing"
)

func doc(sha string, benches ...Benchmark) *Doc { return &Doc{SHA: sha, Benchmarks: benches} }

func TestCompareDirections(t *testing.T) {
	oldDoc := doc("aaa",
		Benchmark{Package: "p", Name: "BenchmarkA-8", NsPerOp: 100, Extra: map[string]float64{"tx/s": 1000}},
		Benchmark{Package: "p", Name: "BenchmarkB-8", NsPerOp: 100, Extra: map[string]float64{"us/stmt": 50}},
		Benchmark{Package: "p", Name: "BenchmarkGone-8", NsPerOp: 1},
	)
	newDoc := doc("bbb",
		// ns/op +50% (regression) and tx/s -50% (regression).
		Benchmark{Package: "p", Name: "BenchmarkA-8", NsPerOp: 150, Extra: map[string]float64{"tx/s": 500}},
		// ns/op improves, us/stmt improves: no warnings.
		Benchmark{Package: "p", Name: "BenchmarkB-8", NsPerOp: 50, Extra: map[string]float64{"us/stmt": 20}},
		// New benchmark: skipped (no baseline).
		Benchmark{Package: "p", Name: "BenchmarkNew-8", NsPerOp: 1},
	)
	regs := Compare(oldDoc, newDoc, 0.15)
	if len(regs) != 2 {
		t.Fatalf("regressions: %v", regs)
	}
	joined := strings.Join(regs, "\n")
	if !strings.Contains(joined, "BenchmarkA-8 ns/op") || !strings.Contains(joined, "BenchmarkA-8 tx/s") {
		t.Errorf("unexpected regression set:\n%s", joined)
	}
}

func TestCompareThreshold(t *testing.T) {
	oldDoc := doc("aaa", Benchmark{Package: "p", Name: "BenchmarkA-8", NsPerOp: 100})
	newDoc := doc("bbb", Benchmark{Package: "p", Name: "BenchmarkA-8", NsPerOp: 110})
	if regs := Compare(oldDoc, newDoc, 0.15); len(regs) != 0 {
		t.Errorf("+10%% must stay under a 15%% threshold: %v", regs)
	}
	if regs := Compare(oldDoc, newDoc, 0.05); len(regs) != 1 {
		t.Errorf("+10%% must trip a 5%% threshold: %v", regs)
	}
}

func TestLowerIsBetter(t *testing.T) {
	for unit, want := range map[string]bool{
		"ns/op": true, "B/op": true, "allocs/op": true, "us/stmt": true,
		"tx/s": false, "stmts/s": false,
	} {
		if got := lowerIsBetter(unit); got != want {
			t.Errorf("lowerIsBetter(%q) = %v, want %v", unit, got, want)
		}
	}
}
