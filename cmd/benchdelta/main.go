// Command benchdelta compares two benchmark artifacts (BENCH_<sha>.json,
// as produced by cmd/benchjson) and prints a warning line for every
// benchmark whose performance regressed by more than a threshold. In CI
// the warnings surface as GitHub annotations on the PR; the step is
// warn-only — a regression never fails the build, it just gets read.
//
// Usage:
//
//	benchdelta -old BENCH_aaaa.json -new BENCH_bbbb.json [-threshold 0.15] [-github]
//
// Direction matters per metric: ns/op, us/stmt, B/op and allocs/op
// regress upward; tx/s, stmts/s and other rates regress downward.
// Benchmarks present in only one artifact are skipped (the suite
// evolves). Single-iteration artifacts are noisy; that is why the step
// warns instead of gating.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
)

// Doc mirrors cmd/benchjson's artifact document.
type Doc struct {
	SHA        string      `json:"sha"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Benchmark mirrors cmd/benchjson's result entry.
type Benchmark struct {
	Package string             `json:"package"`
	Name    string             `json:"name"`
	NsPerOp float64            `json:"ns_per_op"`
	Extra   map[string]float64 `json:"extra"`
}

func main() {
	oldPath := flag.String("old", "", "baseline artifact (newest committed BENCH_*.json)")
	newPath := flag.String("new", "", "fresh artifact of this run")
	threshold := flag.Float64("threshold", 0.15, "relative regression above which a warning is emitted")
	github := flag.Bool("github", false, "emit GitHub ::warning:: annotations instead of plain lines")
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchdelta: -old and -new are required")
		os.Exit(2)
	}
	oldDoc, err := load(*oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdelta:", err)
		os.Exit(2)
	}
	newDoc, err := load(*newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdelta:", err)
		os.Exit(2)
	}
	regs := Compare(oldDoc, newDoc, *threshold)
	for _, r := range regs {
		if *github {
			fmt.Printf("::warning title=bench regression::%s\n", r)
		} else {
			fmt.Printf("REGRESSION %s\n", r)
		}
	}
	fmt.Printf("benchdelta: %d benchmark(s) compared (%s -> %s), %d regression(s) > %d%%\n",
		compared(oldDoc, newDoc), oldDoc.SHA, newDoc.SHA, len(regs), int(*threshold*100))
	// Warn-only by design: exit 0 regardless.
}

func load(path string) (*Doc, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var d Doc
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &d, nil
}

type benchKey struct{ pkg, name string }

func index(d *Doc) map[benchKey]Benchmark {
	m := make(map[benchKey]Benchmark, len(d.Benchmarks))
	for _, b := range d.Benchmarks {
		m[benchKey{b.Package, b.Name}] = b
	}
	return m
}

func compared(oldDoc, newDoc *Doc) int {
	oldIx := index(oldDoc)
	n := 0
	for _, b := range newDoc.Benchmarks {
		if _, ok := oldIx[benchKey{b.Package, b.Name}]; ok {
			n++
		}
	}
	return n
}

// lowerIsBetter classifies a metric unit by its regression direction.
// Rates (anything per second) improve upward; everything else — times
// and allocation counts per op or per statement — improves downward.
func lowerIsBetter(unit string) bool {
	return !strings.HasSuffix(unit, "/s") && !strings.HasSuffix(unit, "/sec")
}

// Compare returns a human-readable line per regression beyond the
// threshold, in the new artifact's benchmark order.
func Compare(oldDoc, newDoc *Doc, threshold float64) []string {
	oldIx := index(oldDoc)
	var out []string
	for _, nb := range newDoc.Benchmarks {
		ob, ok := oldIx[benchKey{nb.Package, nb.Name}]
		if !ok {
			continue
		}
		if r, ok := regression(ob.NsPerOp, nb.NsPerOp, "ns/op", threshold); ok {
			out = append(out, nb.Name+" "+r)
		}
		for unit, nv := range nb.Extra {
			ov, ok := ob.Extra[unit]
			if !ok {
				continue
			}
			if r, ok := regression(ov, nv, unit, threshold); ok {
				out = append(out, nb.Name+" "+r)
			}
		}
	}
	return out
}

// regression reports whether new regressed past the threshold relative
// to old for the unit's direction, with a rendered delta line.
func regression(old, new float64, unit string, threshold float64) (string, bool) {
	if old <= 0 || new <= 0 {
		return "", false // absent or degenerate metric
	}
	var rel float64
	if lowerIsBetter(unit) {
		rel = (new - old) / old
	} else {
		rel = (old - new) / old
	}
	if rel <= threshold {
		return "", false
	}
	return fmt.Sprintf("%s %.4g -> %.4g (%+.0f%% worse)", unit, old, new, rel*100), true
}
