package fault

import (
	"divsql/internal/engine"
	"divsql/internal/sql/types"
)

// Apply deterministically corrupts a result set according to the
// mutation. The input is cloned; the original result is never modified.
// Non-row results are returned unchanged (mutations target query output).
func Apply(m Mutation, res *engine.Result) *engine.Result {
	if res == nil || res.Kind != engine.ResultRows || m == MutNone {
		return res
	}
	out := res.Clone()
	switch m {
	case MutDropLastRow:
		if len(out.Rows) > 0 {
			out.Rows = out.Rows[:len(out.Rows)-1]
		}
	case MutDupFirstRow:
		if len(out.Rows) > 0 {
			dup := append([]types.Value(nil), out.Rows[0]...)
			out.Rows = append(out.Rows, dup)
		}
	case MutNegateInts:
		mutateFirst(out, func(v types.Value) (types.Value, bool) {
			if v.K == types.KindInt {
				return types.NewInt(-v.I), true
			}
			if v.K == types.KindFloat {
				return types.NewFloat(-v.F), true
			}
			return v, false
		})
	case MutNullCell:
		if len(out.Rows) > 0 && len(out.Rows[0]) > 0 {
			out.Rows[0][0] = types.Null()
		}
	case MutOffByOne:
		mutateFirst(out, func(v types.Value) (types.Value, bool) {
			if v.K == types.KindInt {
				return types.NewInt(v.I + 1), true
			}
			if v.K == types.KindFloat {
				return types.NewFloat(v.F + 1), true
			}
			return v, false
		})
	case MutBlankColumns:
		for i := range out.Columns {
			out.Columns[i] = ""
		}
	case MutEmptyResult:
		out.Rows = nil
	case MutScaleFloats:
		for _, row := range out.Rows {
			for i, v := range row {
				switch v.K {
				case types.KindFloat:
					row[i] = types.NewFloat(v.F * 10)
				case types.KindInt:
					row[i] = types.NewInt(v.I * 10)
				}
			}
		}
	}
	return out
}

// mutateFirst applies fn to the first cell (scanning row-major) for which
// fn reports success.
func mutateFirst(res *engine.Result, fn func(types.Value) (types.Value, bool)) {
	for _, row := range res.Rows {
		for i, v := range row {
			if nv, ok := fn(v); ok {
				row[i] = nv
				return
			}
		}
	}
}
