// Package fault implements the fault-injection model of the simulated
// servers. A Fault is an always-present defect with a trigger (the
// paper's "failure region": the set of demands that activate it) and an
// effect (how the failure manifests). Faults with the same effect
// registered on two servers model the paper's coincident bugs that
// produce identical, non-detectable failures; faults sharing a trigger
// but differing in effect model partially-overlapping failure regions.
package fault

import (
	"strings"

	"divsql/internal/dialect"
	"divsql/internal/sql/ast"
)

// EffectKind enumerates failure manifestations.
type EffectKind int

// Effect kinds.
const (
	// EffectCrash halts the server engine (self-evident).
	EffectCrash EffectKind = iota + 1
	// EffectError rejects the statement with a spurious error message
	// (self-evident incorrect result).
	EffectError
	// EffectMutateResult silently corrupts the statement's result set
	// (non-self-evident incorrect result).
	EffectMutateResult
	// EffectLatency delays the statement beyond the acceptable threshold
	// (performance failure).
	EffectLatency
	// EffectSuppressError silently swallows a legitimate error, accepting
	// an invalid statement (non-self-evident "other" failure).
	EffectSuppressError
	// EffectAbortConnection drops the client connection without crashing
	// the engine (self-evident "other" failure).
	EffectAbortConnection
)

// Mutation names a deterministic result-set corruption. Two servers
// applying the same mutation to the same correct result produce identical
// incorrect outputs — the paper's non-detectable failure case.
type Mutation string

// Result mutations.
const (
	MutNone         Mutation = ""
	MutDropLastRow  Mutation = "drop-last-row"
	MutDupFirstRow  Mutation = "duplicate-first-row"
	MutNegateInts   Mutation = "negate-first-int"
	MutNullCell     Mutation = "null-first-cell"
	MutOffByOne     Mutation = "off-by-one-int"
	MutBlankColumns Mutation = "blank-column-names"
	MutEmptyResult  Mutation = "empty-result"
	MutScaleFloats  Mutation = "scale-floats"
)

// Trigger defines the failure region of a fault.
type Trigger struct {
	// Table restricts the fault to statements referencing this table
	// (upper-cased). Empty means any table.
	Table string
	// Flag restricts the fault to statements carrying this fingerprint
	// flag. Empty means any statement shape.
	Flag ast.Flag
	// Func restricts the fault to statements calling this function.
	Func string
	// UnderStressOnly marks Heisenbug behaviour: the fault only fires in
	// the stressful environment (multiple clients, large transaction
	// counts) that the paper proposes for re-testing Heisenbugs; on a
	// quiet single-client run it never manifests.
	UnderStressOnly bool
}

// Matches reports whether a statement fingerprint falls in the failure
// region under the given environment.
func (t Trigger) Matches(fp ast.Fingerprint, stress bool) bool {
	if t.UnderStressOnly && !stress {
		return false
	}
	if t.Table != "" && !fp.UsesTable(t.Table) {
		return false
	}
	if t.Flag != "" && !fp.Has(t.Flag) {
		return false
	}
	if t.Func != "" && !fp.UsesFunc(t.Func) {
		return false
	}
	return true
}

// Effect is how an activated fault manifests.
type Effect struct {
	Kind EffectKind
	// Message is the error text for EffectError/EffectAbortConnection.
	Message string
	// Mutation selects the corruption for EffectMutateResult.
	Mutation Mutation
	// LatencyMillis is the injected delay for EffectLatency.
	LatencyMillis int
}

// Fault is one injected defect of one server.
type Fault struct {
	// BugID ties the fault to its corpus bug report.
	BugID string
	// Server is the simulated server carrying the fault.
	Server dialect.ServerName
	// Trigger is the failure region.
	Trigger Trigger
	// Effect is the manifestation.
	Effect Effect
}

// Registry holds the faults of one server.
type Registry struct {
	faults []Fault
}

// NewRegistry builds a registry from the faults belonging to server name.
func NewRegistry(name dialect.ServerName, all []Fault) *Registry {
	r := &Registry{}
	for _, f := range all {
		if f.Server == name {
			f.Trigger.Table = strings.ToUpper(f.Trigger.Table)
			r.faults = append(r.faults, f)
		}
	}
	return r
}

// Len reports the number of registered faults.
func (r *Registry) Len() int { return len(r.faults) }

// Match returns the first fault triggered by the fingerprint, or nil.
func (r *Registry) Match(fp ast.Fingerprint, stress bool) *Fault {
	for i := range r.faults {
		if r.faults[i].Trigger.Matches(fp, stress) {
			return &r.faults[i]
		}
	}
	return nil
}

// Faults returns a copy of the registered faults.
func (r *Registry) Faults() []Fault {
	return append([]Fault(nil), r.faults...)
}
