package fault

import (
	"testing"
	"testing/quick"

	"divsql/internal/dialect"
	"divsql/internal/engine"
	"divsql/internal/sql/ast"
	"divsql/internal/sql/parser"
	"divsql/internal/sql/types"
)

func fpOf(t *testing.T, sql string) ast.Fingerprint {
	t.Helper()
	st, err := parser.Parse(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	return ast.FingerprintOf(st)
}

func TestTriggerMatching(t *testing.T) {
	fp := fpOf(t, "SELECT A, AVG(B) AS M FROM T1 GROUP BY A")
	cases := []struct {
		trig Trigger
		want bool
	}{
		{Trigger{}, true},
		{Trigger{Table: "T1"}, true},
		{Trigger{Table: "t1"}, true}, // table matching is case-insensitive
		{Trigger{Table: "T2"}, false},
		{Trigger{Flag: ast.FlagSelect}, true},
		{Trigger{Flag: ast.FlagInsert}, false},
		{Trigger{Table: "T1", Flag: ast.FlagGroupBy}, true},
		{Trigger{Func: "AVG"}, true},
		{Trigger{Func: "SUM"}, false},
		{Trigger{UnderStressOnly: true}, false},
	}
	for i, tc := range cases {
		if got := tc.trig.Matches(fp, false); got != tc.want {
			t.Errorf("case %d: %+v = %v want %v", i, tc.trig, got, tc.want)
		}
	}
	if !(Trigger{UnderStressOnly: true}).Matches(fp, true) {
		t.Error("stress-only trigger must match under stress")
	}
}

func TestRegistryFiltersByServer(t *testing.T) {
	all := []Fault{
		{BugID: "a", Server: dialect.IB, Trigger: Trigger{Table: "t"}},
		{BugID: "b", Server: dialect.PG, Trigger: Trigger{Table: "t"}},
		{BugID: "c", Server: dialect.IB, Trigger: Trigger{Table: "u"}},
	}
	r := NewRegistry(dialect.IB, all)
	if r.Len() != 2 {
		t.Fatalf("registry has %d faults", r.Len())
	}
	fp := fpOf(t, "SELECT X FROM U")
	f := r.Match(fp, false)
	if f == nil || f.BugID != "c" {
		t.Errorf("match: %+v", f)
	}
}

func rowsResult(vals ...types.Value) *engine.Result {
	res := &engine.Result{Kind: engine.ResultRows, Columns: []string{"A", "B"}}
	for i := 0; i+1 < len(vals); i += 2 {
		res.Rows = append(res.Rows, []types.Value{vals[i], vals[i+1]})
	}
	return res
}

func TestMutationsChangeResults(t *testing.T) {
	base := rowsResult(
		types.NewInt(1), types.NewString("x"),
		types.NewInt(2), types.NewString("y"),
	)
	muts := []Mutation{
		MutDropLastRow, MutDupFirstRow, MutNegateInts, MutNullCell,
		MutOffByOne, MutBlankColumns, MutEmptyResult, MutScaleFloats,
	}
	for _, m := range muts {
		out := Apply(m, base)
		if out == base {
			t.Errorf("%s returned the original", m)
		}
		same := len(out.Rows) == len(base.Rows) && out.Columns[0] == base.Columns[0]
		if same {
			diff := false
			for i := range out.Rows {
				for j := range out.Rows[i] {
					if !types.Identical(out.Rows[i][j], base.Rows[i][j]) {
						diff = true
					}
				}
			}
			if !diff {
				t.Errorf("%s did not change the result", m)
			}
		}
	}
}

func TestApplyNeverMutatesOriginal(t *testing.T) {
	base := rowsResult(types.NewInt(5), types.NewFloat(2.5))
	snapshot := base.Clone()
	for _, m := range []Mutation{MutNegateInts, MutNullCell, MutOffByOne, MutScaleFloats, MutBlankColumns} {
		_ = Apply(m, base)
	}
	if base.Rows[0][0].I != snapshot.Rows[0][0].I || base.Columns[0] != snapshot.Columns[0] {
		t.Error("Apply mutated its input")
	}
}

func TestApplySkipsNonRowResults(t *testing.T) {
	ddl := &engine.Result{Kind: engine.ResultDDL}
	if out := Apply(MutDropLastRow, ddl); out != ddl {
		t.Error("DDL results must pass through")
	}
	if out := Apply(MutNone, rowsResult(types.NewInt(1), types.NewInt(2))); out.Kind != engine.ResultRows {
		t.Error("MutNone must pass through")
	}
}

func TestMutationsOnEmptyResults(t *testing.T) {
	empty := &engine.Result{Kind: engine.ResultRows, Columns: []string{"A"}}
	for _, m := range []Mutation{MutDropLastRow, MutDupFirstRow, MutNegateInts, MutNullCell, MutOffByOne, MutEmptyResult} {
		out := Apply(m, empty)
		if out == nil {
			t.Errorf("%s returned nil on empty result", m)
		}
	}
}

// Property: mutations are deterministic.
func TestMutationDeterminism(t *testing.T) {
	f := func(a, b int64) bool {
		r1 := Apply(MutOffByOne, rowsResult(types.NewInt(a), types.NewInt(b)))
		r2 := Apply(MutOffByOne, rowsResult(types.NewInt(a), types.NewInt(b)))
		return types.Identical(r1.Rows[0][0], r2.Rows[0][0]) &&
			types.Identical(r1.Rows[0][1], r2.Rows[0][1])
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
