package metamorph_test

import (
	"testing"

	"divsql/internal/metamorph"
	"divsql/internal/qgen"
	"divsql/internal/server"
	"divsql/internal/sql/ast"
	"divsql/internal/sql/parser"
)

// TestPartitionsRoundTripProperty is the rendering-stability property
// behind the TLP rewrite: for every generated predicate p, each of the
// three partition predicates (p, NOT p, p IS NULL) must survive
// render → parse → render unchanged, and must keep a stable statement
// fingerprint across the round trip. Instability in either direction
// would let a TLP conviction point at a statement the shrinker and the
// regression corpus cannot re-derive. The generator runs with
// PartitionSympathy on — the exact stream the metamorphic hunts draw.
func TestPartitionsRoundTripProperty(t *testing.T) {
	opts := qgen.CommonProfile(1)
	opts.PartitionSympathy = true
	g := qgen.New(opts)

	const want = 5000
	checked := 0
	for i := 0; checked < want && i < 20*want; i++ {
		sel, ok := g.Next().(*ast.Select)
		if !ok || sel.Where == nil {
			continue
		}
		pTrue, pFalse, pNull := metamorph.Partitions(sel.Where)
		for _, part := range []struct {
			name string
			p    ast.Expr
		}{{"true", pTrue}, {"false", pFalse}, {"null", pNull}} {
			cp := *sel
			cp.Where = part.p
			cp.OrderBy = nil
			r1 := ast.Render(&cp)
			st2, err := parser.Parse(r1)
			if err != nil {
				t.Fatalf("%s partition of %q does not re-parse: %v\nrendered: %s",
					part.name, ast.Render(sel), err, r1)
			}
			if r2 := ast.Render(st2); r1 != r2 {
				t.Fatalf("%s partition render unstable:\n  first:  %s\n  second: %s", part.name, r1, r2)
			}
			fp1 := ast.FingerprintOf(&cp).String()
			fp2 := ast.FingerprintOf(st2).String()
			if fp1 != fp2 {
				t.Fatalf("%s partition fingerprint unstable: %q vs %q on %s", part.name, fp1, fp2, r1)
			}
		}
		checked++
	}
	if checked < want {
		t.Fatalf("generator yielded only %d WHERE-bearing selects (want %d)", checked, want)
	}
}

// TestPartitionsStripNot pins the NOT-peeling rule: IsNull must wrap
// the NOT-free core of the predicate, because rendering
// IsNull{Unary{NOT, p}} produces `NOT (p) IS NULL`, which re-parses as
// NOT(p IS NULL) — the complementary predicate. Peeling is 3VL-exact
// (NOT x is UNKNOWN iff x is), so the partition is unchanged
// semantically and becomes render-stable.
func TestPartitionsStripNot(t *testing.T) {
	st, err := parser.Parse("SELECT C1 AS X1 FROM T1 WHERE NOT (NOT ((C1 > 5)))")
	if err != nil {
		t.Fatal(err)
	}
	_, _, pNull := metamorph.Partitions(st.(*ast.Select).Where)
	isn, ok := pNull.(*ast.IsNull)
	if !ok || isn.Not {
		t.Fatalf("null partition is %T, want plain IS NULL", pNull)
	}
	if _, stillNot := isn.X.(*ast.Unary); stillNot {
		t.Fatalf("IS NULL wraps a NOT wrapper; stripNot failed")
	}
}

// TestCheckCleanEngineIsSilent runs all three oracles over a varied set
// of answered SELECTs on a clean engine: zero findings, and every
// oracle must report itself applicable (checked) at least once — a
// guard against the suite silently checking nothing.
func TestCheckCleanEngineIsSilent(t *testing.T) {
	orc := server.NewOracle()
	sess := orc.NewSession()
	defer sess.Close()
	for _, s := range []string{
		"CREATE TABLE T1 (C1 INT PRIMARY KEY, C2 INT, C3 VARCHAR(8))",
		"INSERT INTO T1 (C1, C2, C3) VALUES (1, 10, 'a'), (2, NULL, 'b'), (3, 30, NULL), (4, 40, 'd')",
	} {
		if _, _, err := sess.Exec(s); err != nil {
			t.Fatalf("%s: %v", s, err)
		}
	}
	applied := map[metamorph.Oracle]bool{}
	for _, q := range []string{
		"SELECT C1 AS X1, C3 AS X2 FROM T1 WHERE (C2 > 15)",
		"SELECT C1 AS X1 FROM T1 WHERE NOT ((C3 = 'b'))",
		"SELECT COUNT(*) AS A1, SUM(C2) AS A2 FROM T1 WHERE (C1 < 4)",
		"SELECT C1 AS X1 FROM T1 WHERE C3 IS NULL",
		"SELECT C2 AS X1 FROM T1 WHERE C2 BETWEEN 5 AND 35",
	} {
		res, _, err := sess.Exec(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		st, err := parser.Parse(q)
		if err != nil {
			t.Fatal(err)
		}
		checked, findings := metamorph.Check(sess, st.(*ast.Select), nil, res, metamorph.Oracles)
		for _, f := range findings {
			t.Errorf("%s convicted a clean engine on %q: %s", f.Oracle, q, f.Detail)
		}
		for _, o := range checked {
			applied[o] = true
		}
	}
	for _, o := range metamorph.Oracles {
		if !applied[o] {
			t.Errorf("oracle %s never applied to any probe query", o)
		}
	}
}
