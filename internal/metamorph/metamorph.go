// Package metamorph implements the metamorphic self-check oracles —
// TLP, NoREC and CERT — that convict a single SQL endpoint of a wrong
// answer without any second opinion. They close the blind spot the
// paper's fault-diversity argument warns differential testing about:
// when every replica and the pristine reference fail the same way
// (shared engine defect, common-mode fault), cross-server voting sees
// nothing, but a violated metamorphic relation still does.
//
// Each oracle rewrites an already-answered SELECT into queries whose
// results are logically constrained by the original's, re-executes the
// rewrites through an Executor (a plan-cache- and fault-layer-bypassing
// variant path, e.g. server.Session.ExecVariant), and reports a Finding
// when the constraint is violated:
//
//   - TLP (ternary logic partitioning): WHERE p splits into p, NOT p and
//     p IS NULL. The three partitions' row multisets must union back to
//     the unpartitioned query, and COUNT/SUM aggregates must decompose
//     additively across the partitions.
//   - NoREC (non-optimizing reference construction): the predicate is
//     re-evaluated in unoptimizable form — SELECT CASE WHEN p THEN 1
//     ELSE 0 END over the same FROM under a forced full scan, summed
//     client-side — and the count of 1s must equal the optimized query's
//     cardinality.
//   - CERT (cardinality restriction): appending a conjunct to WHERE can
//     only shrink the result, so a restricted rewrite returning more
//     rows than the original convicts the original's access path.
//
// The original's own result is reused as TLP's TRUE partition and as
// NoREC's and CERT's optimized cardinality: the relation then spans the
// genuinely served answer (fault layer, plan cache, compiled access path
// and all) against pristine re-evaluations, which is what makes silent
// result corruption on a single endpoint visible.
package metamorph

import (
	"fmt"

	"divsql/internal/core"
	"divsql/internal/engine"
	engplan "divsql/internal/engine/plan"
	"divsql/internal/sql/ast"
	"divsql/internal/sql/types"
)

// Oracle names one metamorphic self-check oracle.
type Oracle string

// The oracle suite.
const (
	TLP   Oracle = "tlp"
	NoREC Oracle = "norec"
	CERT  Oracle = "cert"
)

// Oracles lists every oracle in deterministic order.
var Oracles = []Oracle{TLP, NoREC, CERT}

// Executor re-runs one parsed SELECT under a forced access path,
// bypassing plan caches and any fault layer. *server.Session satisfies
// it (ExecVariant), as does any engine-session wrapper with the same
// contract.
type Executor interface {
	ExecVariant(sel *ast.Select, force engplan.Force, args ...types.Value) (*engine.Result, error)
}

// Finding is one violated metamorphic relation.
type Finding struct {
	Oracle Oracle
	Detail string
}

// Check runs every armed oracle that applies to the SELECT against the
// endpoint's already-produced base result. checked lists the oracles
// whose relation was actually evaluated (the coverage "hits" signal);
// findings lists the violations. A rewrite that errors makes its oracle
// inapplicable rather than a finding: removing or widening a WHERE can
// legitimately surface row-evaluation errors (e.g. a division the
// original predicate filtered out), and an execution error is never
// evidence about the base result's correctness.
func Check(ex Executor, sel *ast.Select, args []types.Value, base *engine.Result, armed []Oracle) (checked []Oracle, findings []Finding) {
	if base == nil || !structurallyPlain(sel) {
		return nil, nil
	}
	allAgg, anyAgg := aggregateItems(sel)
	for _, o := range armed {
		var f *Finding
		ok := false
		switch o {
		case TLP:
			switch {
			case sel.Where == nil:
				// No predicate to partition.
			case allAgg:
				ok, f = checkTLPAgg(ex, sel, args, base)
			case !anyAgg:
				ok, f = checkTLPRows(ex, sel, args, base)
			}
		case NoREC:
			if sel.Where != nil && !anyAgg {
				ok, f = checkNoREC(ex, sel, args, base)
			}
		case CERT:
			if sel.Where != nil && !anyAgg {
				ok, f = checkCERT(ex, sel, args, base)
			}
		}
		if ok {
			checked = append(checked, o)
		}
		if f != nil {
			findings = append(findings, *f)
		}
	}
	return checked, findings
}

// structurallyPlain gates the suite to SELECTs whose row multiset the
// relations constrain exactly: no compound query, no row limit, no
// DISTINCT, no grouping. ORDER BY is tolerated (the comparisons are
// multiset comparisons); the rewrites drop it.
func structurallyPlain(sel *ast.Select) bool {
	return sel.Union == nil && sel.LimitSyn == ast.LimitNone &&
		!sel.Distinct && len(sel.GroupBy) == 0 && sel.Having == nil &&
		len(sel.From) > 0
}

// aggregateItems classifies the top-level select items: allAgg is true
// when every item is a plain COUNT or SUM call (the additively
// decomposable aggregates; non-distinct), anyAgg when any item contains
// an aggregate call at the outer query's level. Subqueries are opaque:
// an aggregate inside a scalar subquery aggregates the inner query, not
// this one.
func aggregateItems(sel *ast.Select) (allAgg, anyAgg bool) {
	allAgg = len(sel.Items) > 0
	for _, it := range sel.Items {
		if it.Star || it.Expr == nil {
			allAgg = false
			continue
		}
		if fc, ok := it.Expr.(*ast.FuncCall); ok && !fc.Distinct && (fc.Name == "COUNT" || fc.Name == "SUM") {
			anyAgg = true
			continue
		}
		allAgg = false
		if exprHasAggregate(it.Expr) {
			anyAgg = true
		}
	}
	return allAgg && anyAgg, anyAgg
}

// aggregateNames are the engine's aggregate functions.
var aggregateNames = map[string]bool{"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true}

// exprHasAggregate reports whether the expression calls an aggregate at
// this query's level (it does not descend into subqueries).
func exprHasAggregate(e ast.Expr) bool {
	switch x := e.(type) {
	case nil:
		return false
	case *ast.FuncCall:
		if aggregateNames[x.Name] {
			return true
		}
		for _, a := range x.Args {
			if exprHasAggregate(a) {
				return true
			}
		}
	case *ast.Binary:
		return exprHasAggregate(x.L) || exprHasAggregate(x.R)
	case *ast.Unary:
		return exprHasAggregate(x.X)
	case *ast.IsNull:
		return exprHasAggregate(x.X)
	case *ast.Between:
		return exprHasAggregate(x.X) || exprHasAggregate(x.Lo) || exprHasAggregate(x.Hi)
	case *ast.Like:
		return exprHasAggregate(x.X) || exprHasAggregate(x.Pattern)
	case *ast.Cast:
		return exprHasAggregate(x.X)
	case *ast.Case:
		if exprHasAggregate(x.Operand) || exprHasAggregate(x.Else) {
			return true
		}
		for _, w := range x.Whens {
			if exprHasAggregate(w.Cond) || exprHasAggregate(w.Then) {
				return true
			}
		}
	case *ast.In:
		if exprHasAggregate(x.X) {
			return true
		}
		for _, l := range x.List {
			if exprHasAggregate(l) {
				return true
			}
		}
	}
	return false
}

// Partitions returns the three TLP rewrites of predicate p: p itself,
// NOT (p), and (p) IS NULL. The IS NULL partition peels leading NOT
// wrappers first — exact in three-valued logic (NOT x is UNKNOWN iff x
// is) and necessary for render/parse stability: the canonical rendering
// NOT (x) IS NULL would re-parse as NOT ((x) IS NULL), which selects the
// complementary rows.
func Partitions(p ast.Expr) (pTrue, pFalse, pNull ast.Expr) {
	return p, &ast.Unary{Op: "NOT", X: p}, &ast.IsNull{X: stripNot(p)}
}

func stripNot(p ast.Expr) ast.Expr {
	for {
		u, ok := p.(*ast.Unary)
		if !ok || u.Op != "NOT" {
			return p
		}
		p = u.X
	}
}

// rewrite shallow-copies the SELECT with a new WHERE and no ORDER BY
// (all comparisons are multiset comparisons, so ordering the rewrites is
// wasted work).
func rewrite(sel *ast.Select, where ast.Expr) *ast.Select {
	cp := *sel
	cp.Where = where
	cp.OrderBy = nil
	return &cp
}

// checkTLPRows asserts the row-multiset TLP relation: the base result
// (the TRUE partition, as actually served) plus the NOT-p and p-IS-NULL
// partitions must union to the unpartitioned query.
func checkTLPRows(ex Executor, sel *ast.Select, args []types.Value, base *engine.Result) (bool, *Finding) {
	_, pFalse, pNull := Partitions(sel.Where)
	q0, err := ex.ExecVariant(rewrite(sel, nil), engplan.ForceAuto, args...)
	if err != nil {
		return false, nil
	}
	rf, err := ex.ExecVariant(rewrite(sel, pFalse), engplan.ForceAuto, args...)
	if err != nil {
		return false, nil
	}
	rn, err := ex.ExecVariant(rewrite(sel, pNull), engplan.ForceAuto, args...)
	if err != nil {
		return false, nil
	}
	union := &engine.Result{Kind: q0.Kind, Columns: base.Columns}
	union.Rows = make([][]types.Value, 0, len(base.Rows)+len(rf.Rows)+len(rn.Rows))
	union.Rows = append(union.Rows, base.Rows...)
	union.Rows = append(union.Rows, rf.Rows...)
	union.Rows = append(union.Rows, rn.Rows...)
	opts := core.DefaultCompareOptions()
	opts.OrderSensitive = false
	if d := core.Diff(union, q0, opts); d != "" {
		return true, &Finding{Oracle: TLP, Detail: fmt.Sprintf(
			"TLP partition union (%d+%d+%d rows) disagrees with the unpartitioned query (%d rows): %s",
			len(base.Rows), len(rf.Rows), len(rn.Rows), len(q0.Rows), d)}
	}
	return true, nil
}

// checkTLPAgg asserts the additive TLP relation for all-COUNT/SUM item
// lists: each aggregate over the unpartitioned query must equal the sum
// of the same aggregate over the three partitions (the base result
// supplying the TRUE partition's value).
func checkTLPAgg(ex Executor, sel *ast.Select, args []types.Value, base *engine.Result) (bool, *Finding) {
	_, pFalse, pNull := Partitions(sel.Where)
	q0, err := ex.ExecVariant(rewrite(sel, nil), engplan.ForceAuto, args...)
	if err != nil {
		return false, nil
	}
	rf, err := ex.ExecVariant(rewrite(sel, pFalse), engplan.ForceAuto, args...)
	if err != nil {
		return false, nil
	}
	rn, err := ex.ExecVariant(rewrite(sel, pNull), engplan.ForceAuto, args...)
	if err != nil {
		return false, nil
	}
	if len(base.Rows) != 1 || len(q0.Rows) != 1 || len(rf.Rows) != 1 || len(rn.Rows) != 1 {
		return false, nil
	}
	for i := range sel.Items {
		if i >= len(base.Rows[0]) || i >= len(q0.Rows[0]) || i >= len(rf.Rows[0]) || i >= len(rn.Rows[0]) {
			return false, nil
		}
		whole := q0.Rows[0][i]
		parts := []types.Value{base.Rows[0][i], rf.Rows[0][i], rn.Rows[0][i]}
		if ok, detail := additive(whole, parts); !ok {
			return true, &Finding{Oracle: TLP, Detail: fmt.Sprintf(
				"TLP aggregate %s does not decompose additively across partitions: %s",
				ast.Render(rewrite(sel, nil)), detail)}
		}
	}
	return true, nil
}

// additive checks whole == sum(parts) under SQL aggregate semantics: a
// NULL part is an empty partition's SUM and contributes nothing; a NULL
// whole requires every part to be NULL. Integer sums compare exactly;
// float sums tolerate the reassociation error of summing the partitions
// separately.
func additive(whole types.Value, parts []types.Value) (bool, string) {
	sum := 0.0
	allNull, anyFloat := true, whole.K == types.KindFloat
	for _, p := range parts {
		switch p.K {
		case types.KindNull:
		case types.KindInt:
			allNull = false
			sum += float64(p.I)
		case types.KindFloat:
			allNull, anyFloat = false, true
			sum += p.F
		default:
			return false, fmt.Sprintf("non-numeric partition aggregate %s", p.String())
		}
	}
	if whole.IsNull() {
		if allNull {
			return true, ""
		}
		return false, "unpartitioned aggregate is NULL but a partition is not"
	}
	if allNull {
		return false, fmt.Sprintf("every partition aggregate is NULL but the whole is %s", whole.String())
	}
	var w float64
	switch whole.K {
	case types.KindInt:
		w = float64(whole.I)
	case types.KindFloat:
		w = whole.F
	default:
		return false, fmt.Sprintf("non-numeric aggregate %s", whole.String())
	}
	if anyFloat {
		tol := 1e-9 * (maxAbs(w, sum) + 1)
		if diff := w - sum; diff < -tol || diff > tol {
			return false, fmt.Sprintf("whole %v vs partition sum %v", w, sum)
		}
		return true, ""
	}
	if w != sum {
		return false, fmt.Sprintf("whole %v vs partition sum %v", w, sum)
	}
	return true, ""
}

func maxAbs(a, b float64) float64 {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	if a > b {
		return a
	}
	return b
}

// checkNoREC asserts the NoREC relation: re-evaluating the predicate in
// unoptimizable form — CASE WHEN p THEN 1 ELSE 0 END over the same FROM,
// forced to a full scan and counted client-side — must agree with the
// optimized query's cardinality.
func checkNoREC(ex Executor, sel *ast.Select, args []types.Value, base *engine.Result) (bool, *Finding) {
	probe := &ast.Select{
		Items: []ast.SelectItem{{Expr: &ast.Case{
			Whens: []ast.WhenClause{{Cond: sel.Where, Then: intLit(1)}},
			Else:  intLit(0),
		}, Alias: "NR"}},
		From: sel.From,
	}
	res, err := ex.ExecVariant(probe, engplan.ForceFullScan, args...)
	if err != nil {
		return false, nil
	}
	n := 0
	for _, row := range res.Rows {
		if len(row) == 1 && row[0].K == types.KindInt && row[0].I == 1 {
			n++
		}
	}
	if n != len(base.Rows) {
		return true, &Finding{Oracle: NoREC, Detail: fmt.Sprintf(
			"optimized query returned %d row(s) but the unoptimizable full-scan re-evaluation of its predicate holds on %d of %d row(s)",
			len(base.Rows), n, len(res.Rows))}
	}
	return true, nil
}

// checkCERT asserts the CERT relation: appending a conjunct to WHERE can
// only shrink the result. Two restrictions are probed — the
// self-conjunction p AND p (row-set preserving, so any growth convicts
// the original) and p AND c IS NOT NULL for a column referenced by p.
// Both run under a forced full scan: the restricted rewrite must not
// inherit the original's access path, or a defect shared by both sides
// cancels out of the comparison.
func checkCERT(ex Executor, sel *ast.Select, args []types.Value, base *engine.Result) (bool, *Finding) {
	p := sel.Where
	restricted := []ast.Expr{&ast.Binary{Op: ast.OpAnd, L: p, R: p}}
	if c := firstColumnRef(p); c != nil {
		restricted = append(restricted, &ast.Binary{
			Op: ast.OpAnd, L: p,
			R:  &ast.IsNull{X: &ast.ColumnRef{Table: c.Table, Column: c.Column}, Not: true},
		})
	}
	applied := false
	for _, rp := range restricted {
		res, err := ex.ExecVariant(rewrite(sel, rp), engplan.ForceFullScan, args...)
		if err != nil {
			continue
		}
		applied = true
		if len(res.Rows) > len(base.Rows) {
			return true, &Finding{Oracle: CERT, Detail: fmt.Sprintf(
				"restricting the predicate grew the result: %d row(s) under the appended conjunct vs %d unrestricted",
				len(res.Rows), len(base.Rows))}
		}
	}
	return applied, nil
}

// firstColumnRef finds a column reference in the predicate (not
// descending into subqueries, whose columns belong to another scope).
func firstColumnRef(e ast.Expr) *ast.ColumnRef {
	switch x := e.(type) {
	case *ast.ColumnRef:
		return x
	case *ast.Binary:
		if c := firstColumnRef(x.L); c != nil {
			return c
		}
		return firstColumnRef(x.R)
	case *ast.Unary:
		return firstColumnRef(x.X)
	case *ast.IsNull:
		return firstColumnRef(x.X)
	case *ast.Between:
		for _, sub := range []ast.Expr{x.X, x.Lo, x.Hi} {
			if c := firstColumnRef(sub); c != nil {
				return c
			}
		}
	case *ast.Like:
		if c := firstColumnRef(x.X); c != nil {
			return c
		}
		return firstColumnRef(x.Pattern)
	case *ast.Cast:
		return firstColumnRef(x.X)
	case *ast.In:
		if c := firstColumnRef(x.X); c != nil {
			return c
		}
		for _, l := range x.List {
			if c := firstColumnRef(l); c != nil {
				return c
			}
		}
	case *ast.Case:
		if c := firstColumnRef(x.Operand); c != nil {
			return c
		}
		for _, w := range x.Whens {
			if c := firstColumnRef(w.Cond); c != nil {
				return c
			}
			if c := firstColumnRef(w.Then); c != nil {
				return c
			}
		}
		return firstColumnRef(x.Else)
	}
	return nil
}

func intLit(n int64) ast.Expr { return &ast.Literal{Val: types.NewInt(n)} }
