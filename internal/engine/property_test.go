package engine

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"divsql/internal/sql/types"
)

// sanitize maps arbitrary fuzz strings into safe SQL string literals.
func sqlString(s string) string {
	return "'" + strings.ReplaceAll(s, "'", "''") + "'"
}

// Property: INSERT then SELECT round-trips values (modulo coercion into
// the column types).
func TestInsertSelectRoundTrip(t *testing.T) {
	f := func(a int64, fraw int64, s string) bool {
		fl := float64(fraw) / 16 // dyadic floats round-trip exactly
		e := NewOracle()
		if _, err := execSQL(e, "CREATE TABLE RT (A INT, B FLOAT, S VARCHAR(100))"); err != nil {
			return false
		}
		ins := fmt.Sprintf("INSERT INTO RT VALUES (%d, %g, %s)", a, fl, sqlString(s))
		if _, err := execSQL(e, ins); err != nil {
			return false
		}
		res, err := execSQL(e, "SELECT A, B, S FROM RT")
		if err != nil || len(res.Rows) != 1 {
			return false
		}
		row := res.Rows[0]
		return row[0].I == a && row[1].AsFloat() == fl && row[2].S == s
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: ROLLBACK restores exactly the pre-transaction state for any
// interleaving of inserts, updates and deletes.
func TestRollbackRestoresState(t *testing.T) {
	f := func(vals []int8, updates []int8) bool {
		e := NewOracle()
		if _, err := execSQL(e, "CREATE TABLE RB (A INT)"); err != nil {
			return false
		}
		for _, v := range vals {
			if _, err := execSQL(e, fmt.Sprintf("INSERT INTO RB VALUES (%d)", v)); err != nil {
				return false
			}
		}
		before, err := execSQL(e, "SELECT A FROM RB ORDER BY A")
		if err != nil {
			return false
		}
		if _, err := execSQL(e, "BEGIN TRANSACTION"); err != nil {
			return false
		}
		for i, u := range updates {
			var stmt string
			switch i % 3 {
			case 0:
				stmt = fmt.Sprintf("INSERT INTO RB VALUES (%d)", u)
			case 1:
				stmt = fmt.Sprintf("UPDATE RB SET A = A + 1 WHERE A < %d", u)
			default:
				stmt = fmt.Sprintf("DELETE FROM RB WHERE A = %d", u)
			}
			if _, err := execSQL(e, stmt); err != nil {
				return false
			}
		}
		if _, err := execSQL(e, "ROLLBACK"); err != nil {
			return false
		}
		after, err := execSQL(e, "SELECT A FROM RB ORDER BY A")
		if err != nil {
			return false
		}
		if len(before.Rows) != len(after.Rows) {
			return false
		}
		for i := range before.Rows {
			if !types.Identical(before.Rows[i][0], after.Rows[i][0]) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 100}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: UNION result is a deduplicated superset — |A UNION B| is at
// least max(|distinct A|, |distinct B|) and at most |distinct A| +
// |distinct B|, and contains no duplicates.
func TestUnionBounds(t *testing.T) {
	f := func(av, bv []int8) bool {
		e := NewOracle()
		if _, err := execSQL(e, "CREATE TABLE UA (X INT)"); err != nil {
			return false
		}
		if _, err := execSQL(e, "CREATE TABLE UB (X INT)"); err != nil {
			return false
		}
		for _, v := range av {
			if _, err := execSQL(e, fmt.Sprintf("INSERT INTO UA VALUES (%d)", v)); err != nil {
				return false
			}
		}
		for _, v := range bv {
			if _, err := execSQL(e, fmt.Sprintf("INSERT INTO UB VALUES (%d)", v)); err != nil {
				return false
			}
		}
		da, err := execSQL(e, "SELECT DISTINCT X FROM UA")
		if err != nil {
			return false
		}
		db, err := execSQL(e, "SELECT DISTINCT X FROM UB")
		if err != nil {
			return false
		}
		un, err := execSQL(e, "SELECT X FROM UA UNION SELECT X FROM UB")
		if err != nil {
			return false
		}
		n, na, nb := len(un.Rows), len(da.Rows), len(db.Rows)
		if n < na || n < nb || n > na+nb {
			return false
		}
		seen := make(map[string]bool, n)
		for _, r := range un.Rows {
			k := r[0].String()
			if seen[k] {
				return false
			}
			seen[k] = true
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: COUNT(*) equals the number of inserted rows; SUM equals the
// arithmetic sum.
func TestAggregateConsistency(t *testing.T) {
	f := func(vals []int16) bool {
		e := NewOracle()
		if _, err := execSQL(e, "CREATE TABLE AG (X INT)"); err != nil {
			return false
		}
		var sum int64
		for _, v := range vals {
			sum += int64(v)
			if _, err := execSQL(e, fmt.Sprintf("INSERT INTO AG VALUES (%d)", v)); err != nil {
				return false
			}
		}
		res, err := execSQL(e, "SELECT COUNT(*) AS N, SUM(X) AS S FROM AG")
		if err != nil || len(res.Rows) != 1 {
			return false
		}
		if res.Rows[0][0].I != int64(len(vals)) {
			return false
		}
		if len(vals) == 0 {
			return res.Rows[0][1].IsNull()
		}
		return res.Rows[0][1].I == sum
	}
	cfg := &quick.Config{MaxCount: 100}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: WHERE x AND y filters to the intersection of the individual
// filters (over non-NULL data).
func TestConjunctionIntersection(t *testing.T) {
	f := func(vals []int8, lo, hi int8) bool {
		e := NewOracle()
		if _, err := execSQL(e, "CREATE TABLE CJ (X INT)"); err != nil {
			return false
		}
		for _, v := range vals {
			if _, err := execSQL(e, fmt.Sprintf("INSERT INTO CJ VALUES (%d)", v)); err != nil {
				return false
			}
		}
		a, err := execSQL(e, fmt.Sprintf("SELECT X FROM CJ WHERE X >= %d", lo))
		if err != nil {
			return false
		}
		b, err := execSQL(e, fmt.Sprintf("SELECT X FROM CJ WHERE X <= %d", hi))
		if err != nil {
			return false
		}
		both, err := execSQL(e, fmt.Sprintf("SELECT X FROM CJ WHERE X >= %d AND X <= %d", lo, hi))
		if err != nil {
			return false
		}
		// Count multiset intersection size.
		counts := map[int64]int{}
		for _, r := range a.Rows {
			counts[r[0].I]++
		}
		inter := 0
		for _, r := range b.Rows {
			if counts[r[0].I] > 0 {
				counts[r[0].I]--
				inter++
			}
		}
		return len(both.Rows) == inter
	}
	cfg := &quick.Config{MaxCount: 60}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: snapshot/restore is a faithful round-trip across arbitrary
// table contents.
func TestSnapshotRoundTrip(t *testing.T) {
	f := func(vals []int16, names []string) bool {
		e := NewOracle()
		if _, err := execSQL(e, "CREATE TABLE SN (X INT, S VARCHAR(50))"); err != nil {
			return false
		}
		for i, v := range vals {
			name := "n"
			if i < len(names) {
				name = names[i]
			}
			if len(name) > 40 {
				name = name[:40]
			}
			ins := fmt.Sprintf("INSERT INTO SN VALUES (%d, %s)", v, sqlString(name))
			if _, err := execSQL(e, ins); err != nil {
				return false
			}
		}
		before, err := execSQL(e, "SELECT X, S FROM SN ORDER BY X, S")
		if err != nil {
			return false
		}
		snap := e.Snapshot()
		if _, err := execSQL(e, "DELETE FROM SN"); err != nil {
			return false
		}
		e.Restore(snap)
		after, err := execSQL(e, "SELECT X, S FROM SN ORDER BY X, S")
		if err != nil || len(after.Rows) != len(before.Rows) {
			return false
		}
		for i := range before.Rows {
			for j := range before.Rows[i] {
				if !types.Identical(before.Rows[i][j], after.Rows[i][j]) {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
