package engine

import "sync/atomic"

// Planted defects are deliberate, process-global, test-only engine bugs:
// the "oracle of the oracle" sensitivity probes for the metamorphic
// self-check suite (internal/metamorph). Because every simulated server
// and the pristine oracle share this engine, a planted defect corrupts
// all five endpoints identically — exactly the correlated-failure blind
// spot the paper warns differential testing about — so a 5-way vote sees
// nothing while a single-endpoint metamorphic relation must still flag
// it. Nothing outside tests may arm these.
var (
	// plantedRangeBoundDefect makes the compiled RangeScan access path
	// treat an inclusive upper bound as exclusive (an off-by-one), so an
	// index-served range silently drops its boundary row. The full-scan
	// path is untouched: NoREC's forced-full-scan recount and CERT's
	// full-scan restriction probe both see the missing row.
	plantedRangeBoundDefect atomic.Bool
	// plantedNotNullDefect makes unary NOT of a NULL operand evaluate to
	// TRUE instead of UNKNOWN, breaking three-valued logic. TLP's NOT(p)
	// partition then double-counts every row on which p is UNKNOWN.
	plantedNotNullDefect atomic.Bool
)

// PlantRangeBoundDefect arms or disarms the RangeScan inclusive-upper
// off-by-one. Test-only.
func PlantRangeBoundDefect(on bool) { plantedRangeBoundDefect.Store(on) }

// PlantNotNullDefect arms or disarms the NOT-of-NULL three-valued-logic
// defect. Test-only.
func PlantNotNullDefect(on bool) { plantedNotNullDefect.Store(on) }
