package engine

import (
	"errors"
	"strings"
	"sync"

	"divsql/internal/engine/plan"
	"divsql/internal/sql/ast"
	"divsql/internal/sql/types"
)

// Session is one client session of an Engine: the unit of transaction
// scope. Any number of sessions share one engine; each carries its own
// open-transaction flag and undo log, so BEGIN on one session never
// affects another.
//
// Concurrency model: a session is owned by one client (one goroutine at
// a time), like a database connection; the engine arbitrates between
// sessions. Pure queries execute against committed read views under the
// engine read lock (see readview.go) — lock-free with respect to
// writers. DML runs under the read lock plus per-table latches acquired
// in sorted name order; DDL, ROLLBACK and state transfers take the
// exclusive lock. Transactions use an undo log over the shared state;
// undo entries target rows by identity, so a rollback removes or
// restores exactly the transaction's own rows even when other sessions'
// statements interleaved. Concurrent transactions are isolated as long
// as they touch disjoint rows (write-write races on the same row remain
// the application's concern), which is the contract the workload layers
// (warehouse-pinned TPC-C terminals, wire clients on their own tables)
// follow.
type Session struct {
	eng    *Engine
	closed bool

	// txMu guards inTxn and undo against cross-session readers: the
	// read-view builder and per-table rewinds iterate other sessions'
	// undo logs while those sessions keep executing. The owning session
	// reads its own fields without txMu (it is the only writer) but
	// takes it for every mutation.
	txMu  sync.Mutex
	inTxn bool
	undo  []undoRec

	// touched names the tables this transaction has latched for
	// writing; a pure SELECT over any of them reads through the
	// own-writes overlay instead of the committed view. didDDL marks a
	// transaction that executed DDL: its later queries read the live
	// plane (schema changes are not versioned into read views) and its
	// COMMIT takes the exclusive lock to publish the schema. Owner-only
	// fields.
	touched map[string]struct{}
	didDDL  bool

	// level is the isolation level of the current transaction (or the
	// next one); defLevel the session default restored at transaction
	// end. txnStmts counts statements executed inside the open
	// transaction, gating SET TRANSACTION to the first position.
	// pinned is the REPEATABLE READ view, captured at the
	// transaction's first query. Owner-only fields, except pinned and
	// level resets from discardAllTxnsLocked (exclusive lock).
	level    IsoLevel
	defLevel IsoLevel
	txnStmts int
	pinned   *readView

	// curRead is the read view the currently executing statement
	// resolves tables against (nil = live plane); ownTabs overlays
	// per-table committed+own-writes images for in-transaction reads of
	// touched tables. dmlOwn marks a latched write statement in
	// progress: its internal reads (INSERT ... SELECT sources, WHERE/SET
	// subqueries, sequence-advancing SELECTs) populate ownTabs lazily on
	// first touch of a table another transaction is writing, so they too
	// observe committed state plus own writes — never another session's
	// uncommitted rows. Set and cleared around each statement by the
	// owning goroutine.
	curRead *readView
	ownTabs map[string]*Table
	dmlOwn  bool

	// bind is the argument vector of the currently executing bound
	// statement (ExecBind); Param nodes resolve against it. A session
	// executes one statement at a time (one client), so a plain field
	// suffices.
	bind []types.Value

	// lastPlan records how the most recent SELECT executed (access path,
	// compiled vs interpreter, cache hit) — see Session.LastPlan.
	lastPlan plan.Info
}

// recKind classifies an undo record by the state plane it rewinds, so
// the read-view machinery can apply catalog and sequence records at
// view build time while deferring row records to lazy per-table
// materialization.
type recKind uint8

const (
	// kindTable marks a record that mutates one table's rows (or its
	// Uniques keysets); table names it.
	kindTable recKind = iota
	// kindCatalog marks a record that mutates the catalog maps (or the
	// schema-version stamp).
	kindCatalog
	// kindSeq marks a record that restores a sequence cursor.
	kindSeq
)

// undoRec is one typed undo record: the inverse of one mutation.
type undoRec struct {
	kind  recKind
	table string // kindTable only: the table the record targets
	fn    undoFn
}

// undoFn is one undo record's body: the inverse of one mutation,
// applicable to an arbitrary state plane. dst is the live state during
// ROLLBACK and a copy-on-write clone during Snapshot's committed-image
// rewind (or a read view's); toSnap distinguishes the two so records
// that re-install dropped objects can copy mutable structures instead
// of sharing them with the live plane. Records resolve tables and
// sequences by name within dst and rows by slice identity (identities
// are preserved by the snapshot's header clone), so the same record is
// correct on any plane.
type undoFn func(dst *state, toSnap bool)

// NewSession opens a session on the engine.
func (e *Engine) NewSession() *Session {
	e.mu.Lock()
	defer e.mu.Unlock()
	s := &Session{eng: e}
	e.sessions[s] = struct{}{}
	return s
}

// DefaultSession returns the lazily created session backing the engine's
// sessionless compatibility API (Engine.Exec and friends).
func (e *Engine) DefaultSession() *Session {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.def == nil {
		e.def = &Session{eng: e}
		e.sessions[e.def] = struct{}{}
	}
	return e.def
}

// Engine returns the engine the session executes on.
func (s *Session) Engine() *Engine { return s.eng }

// Close rolls back any open transaction and unregisters the session. A
// closed session rejects further statements.
func (s *Session) Close() error {
	e := s.eng
	e.mu.Lock()
	defer e.mu.Unlock()
	if s.closed {
		return nil
	}
	s.abortLocked()
	s.closed = true
	delete(e.sessions, s)
	if e.def == s {
		e.def = nil
	}
	return nil
}

// ErrSessionClosed is returned by statements on a closed session.
var ErrSessionClosed = errors.New("session is closed")

// Exec executes one parsed statement in this session. Pure queries run
// against a committed read view under the engine's read lock (parallel
// with writers); DML runs under the read lock plus per-table latches;
// DDL, ROLLBACK and DDL-publishing COMMITs take the write lock.
// Statements carrying Param nodes go through ExecBind instead.
func (s *Session) Exec(st ast.Statement) (*Result, error) {
	return s.execLocked(st, nil)
}

// execLocked is the shared body of Exec and ExecBind: it picks the lock
// mode, installs the bind vector and dispatches the statement.
func (s *Session) execLocked(st ast.Statement, bind []types.Value) (*Result, error) {
	e := s.eng
	switch x := st.(type) {
	case *ast.Select:
		e.mu.RLock()
		if s.closed {
			e.mu.RUnlock()
			return nil, ErrSessionClosed
		}
		// A plan-memo hit proves the statement is a pure SELECT: only
		// non-advancing selects reach the memo, and an unchanged schema
		// stamp means the view chain it was classified against still
		// stands. This skips the classification walk on the hot path.
		if v, ok := e.planMemo.Load(x); ok && v.(*memoEntry).version == e.schemaVersion {
			defer e.mu.RUnlock()
			return s.execSelectRead(x, bind)
		}
		if !e.selectAdvancesSequences(x) {
			defer e.mu.RUnlock()
			return s.execSelectRead(x, bind)
		}
		// A sequence-advancing SELECT mutates state: fall through to
		// the latched write path (it stays on the interpreter).
		defer e.mu.RUnlock()
		s.lastPlan = plan.Info{}
		return s.execLatched(st, bind)

	case *ast.Insert, *ast.Update, *ast.Delete:
		e.mu.RLock()
		defer e.mu.RUnlock()
		if s.closed {
			return nil, ErrSessionClosed
		}
		return s.execLatched(st, bind)

	case *ast.Begin:
		e.mu.RLock()
		defer e.mu.RUnlock()
		if s.closed {
			return nil, ErrSessionClosed
		}
		return s.execBegin()

	case *ast.Commit:
		e.mu.RLock()
		if s.closed {
			e.mu.RUnlock()
			return nil, ErrSessionClosed
		}
		if !s.didDDL {
			defer e.mu.RUnlock()
			return s.execCommitLight()
		}
		e.mu.RUnlock()
		// A DDL-bearing transaction publishes its schema at COMMIT
		// under the exclusive lock (readers stamp plans against the
		// committed schema version).

	case *ast.SetTxn:
		e.mu.RLock()
		defer e.mu.RUnlock()
		if s.closed {
			return nil, ErrSessionClosed
		}
		return s.execSetTxn(x)
	}

	// DDL, ROLLBACK, DDL-bearing COMMIT, unknown statements: exclusive.
	e.mu.Lock()
	defer e.mu.Unlock()
	if s.closed {
		return nil, ErrSessionClosed
	}
	if s.inTxn {
		s.txnStmts++
	}
	s.bind = bind
	res, err := s.exec(st)
	s.bind = nil
	if !s.inTxn {
		// Autocommit: outside an explicit transaction every statement
		// commits on completion, so the undo entries are discarded and
		// the commit high-water mark advances past the statement.
		if err == nil {
			switch st.(type) {
			case *ast.Begin, *ast.Commit, *ast.Rollback, *ast.SetTxn:
				// BEGIN opens a transaction; COMMIT advanced the mark in
				// execCommit; ROLLBACK and SET TRANSACTION commit nothing.
			default:
				e.commitSeq.Add(1)
			}
		}
		s.clearTxnState()
		// Publish the committed schema stamp: after an autocommit DDL,
		// a committed DDL transaction, or a rollback (which restored
		// the previous stamp) the live schema version is the committed
		// one.
		e.committedSchema = e.schemaVersion
	}
	return res, err
}

// execLatched runs a state-changing non-DDL statement under the engine
// read lock plus the sorted per-table latches of every table the
// statement can touch. Caller holds the read lock.
func (s *Session) execLatched(st ast.Statement, bind []types.Value) (*Result, error) {
	e := s.eng
	refs := e.statementRefsLocked(st)
	release := e.latchTables(refs)
	defer release()
	if s.inTxn {
		s.txnStmts++
		if s.touched == nil {
			s.touched = make(map[string]struct{}, len(refs))
		}
		for _, n := range refs {
			s.touched[n] = struct{}{}
		}
	}
	// Reads performed by the statement itself (INSERT ... SELECT,
	// subqueries in WHERE/SET/CHECK, sequence-advancing SELECTs) must
	// not see other sessions' uncommitted rows: dmlOwn makes
	// lookupTable serve such tables as committed+own-writes images,
	// built lazily so plain DML (no internal reads, or no concurrent
	// writers on the tables it reads) pays nothing. Every table the
	// statement can read is in refs, so its latch is held — the
	// precondition for building the image.
	s.dmlOwn = true
	s.bind = bind
	res, err := s.exec(st)
	s.bind = nil
	s.dmlOwn = false
	s.ownTabs = nil
	if !s.inTxn {
		if err == nil {
			// Advance the commit mark while the latches are held, so a
			// reader that observes the new rows also observes the new
			// sequence number. (Outside a transaction no undo records
			// were logged; failed statements self-clean their partial
			// effects — see dml.go.)
			e.commitSeq.Add(1)
		}
		s.clearTxnState()
	}
	return res, err
}

// execSelectRead runs a pure SELECT on the appropriate read plane.
// Caller holds the engine read lock.
func (s *Session) execSelectRead(sel *ast.Select, bind []types.Value) (*Result, error) {
	e := s.eng
	if s.inTxn {
		s.txnStmts++
		if s.didDDL || s.touchesRefs(sel) {
			return s.execSelectOwn(sel, bind)
		}
		if s.level == LevelRepeatableRead {
			if s.pinned == nil {
				s.pinned = e.currentView()
			}
			s.curRead = s.pinned
		} else {
			s.curRead = e.currentView()
		}
	} else {
		s.curRead = e.currentView()
	}
	s.bind = bind
	res, err := s.execSelectRLocked(sel)
	s.bind = nil
	s.curRead = nil
	return res, err
}

// touchesRefs reports whether the query reads any table this
// transaction has written.
func (s *Session) touchesRefs(sel *ast.Select) bool {
	if len(s.touched) == 0 {
		return false
	}
	for _, n := range s.eng.statementRefsLocked(sel) {
		if _, ok := s.touched[n]; ok {
			return true
		}
	}
	return false
}

// execSelectOwn runs an in-transaction SELECT over tables the
// transaction itself has written (or after in-transaction DDL): it
// latches the referenced tables and reads the live plane, with other
// transactions' uncommitted changes rewound per table, so the session
// sees exactly the committed state plus its own writes. Caller holds
// the engine read lock.
func (s *Session) execSelectOwn(sel *ast.Select, bind []types.Value) (*Result, error) {
	e := s.eng
	refs := e.statementRefsLocked(sel)
	release := e.latchTables(refs)
	defer release()
	var overlay map[string]*Table
	for _, n := range refs {
		t, ok := e.st.tables[n]
		if !ok {
			continue
		}
		if e.othersInTxnOn(n, s) {
			if overlay == nil {
				overlay = make(map[string]*Table, len(refs))
			}
			overlay[n] = e.committedTable(t, s)
		}
	}
	s.ownTabs = overlay
	s.bind = bind
	res, err := s.execSelectRLocked(sel)
	s.bind = nil
	s.ownTabs = nil
	return res, err
}

// SelectAdvancesSequences reports whether evaluating the query would
// mutate engine state: it calls a sequence-advancing function directly,
// or reads a view whose definition (transitively) does. Such a SELECT
// must be treated as a write by every layer (the engine's lock mode,
// the middleware's cross-session ordering and read policies).
func (e *Engine) SelectAdvancesSequences(sel *ast.Select) bool {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.selectAdvancesSequences(sel)
}

// selectAdvancesSequences is SelectAdvancesSequences with the engine
// lock already held (in at least read mode). The view chain is resolved
// at classification time — views can be dropped and recreated, so a
// flag stored at CREATE VIEW would go stale.
func (e *Engine) selectAdvancesSequences(sel *ast.Select) bool {
	return e.selectAdvances(sel, nil)
}

func (e *Engine) selectAdvances(sel *ast.Select, visited map[string]bool) bool {
	advances := false
	ast.WalkSelectExprs(sel, func(x ast.Expr) {
		if fc, ok := x.(*ast.FuncCall); ok {
			if b, known := e.cfg.Funcs[strings.ToUpper(fc.Name)]; known && b.SeqFunc {
				advances = true
			}
		}
	})
	if advances {
		return true
	}
	for name := range ast.Tables(sel) {
		v, ok := e.st.views[name]
		if !ok || visited[name] {
			continue
		}
		if visited == nil {
			visited = make(map[string]bool)
		}
		visited[name] = true
		if e.selectAdvances(v.Select, visited) {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// Transactions
//
// A session implements transactions with an undo log: every mutation
// registers its inverse; ROLLBACK applies the inverses in reverse order.
// Outside a transaction statements auto-commit (Session.Exec discards the
// undo log after each statement).

func (s *Session) execBegin() (*Result, error) {
	if s.inTxn {
		return nil, errors.New("transaction already in progress")
	}
	s.txMu.Lock()
	s.inTxn = true
	s.undo = s.undo[:0]
	s.txMu.Unlock()
	s.touched = nil
	s.didDDL = false
	s.txnStmts = 0
	s.pinned = nil
	s.level = s.defLevel
	return &Result{Kind: ResultDDL}, nil
}

// execCommitLight commits a transaction that performed no DDL, under
// the engine read lock only. The commit-mark bump and the undo-log
// clear happen atomically with respect to Snapshot (commitMu), so a
// snapshot's stamp always matches its content.
//
// View builds do NOT take commitMu, so the order of the two steps
// matters: the undo log is cleared BEFORE the commit mark advances. A
// view build samples commitSeq first and iterates undo logs after;
// bumping first would open a window where the build rewinds the
// just-committed changes yet stamps the view with the new sequence —
// a stale view served as current until the next commit. With
// clear-before-bump the worst a racing build can do is stamp
// already-committed content with the previous sequence; that view is
// stale the moment the mark advances and is rebuilt on the next read
// (benign under READ COMMITTED, and a pinned view built in the window
// is still one consistent committed image).
func (s *Session) execCommitLight() (*Result, error) {
	if !s.inTxn {
		return nil, ErrNoTransaction
	}
	e := s.eng
	e.commitMu.Lock()
	bump := len(s.undo) > 0
	s.clearTxnState()
	if bump {
		e.commitSeq.Add(1)
	}
	e.commitMu.Unlock()
	return &Result{Kind: ResultDDL}, nil
}

// execCommit commits under the exclusive lock (the DDL-bearing path, or
// the sessionless compatibility API's dispatch). The exclusive lock
// excludes concurrent view builds, but the clear-before-bump order is
// kept in lockstep with execCommitLight (see there for why it matters).
func (s *Session) execCommit() (*Result, error) {
	if !s.inTxn {
		return nil, ErrNoTransaction
	}
	bump := len(s.undo) > 0
	s.clearTxnState()
	if bump {
		s.eng.commitSeq.Add(1)
	}
	return &Result{Kind: ResultDDL}, nil
}

func (s *Session) execRollback() (*Result, error) {
	if !s.inTxn {
		return nil, ErrNoTransaction
	}
	s.rollbackLocked()
	return &Result{Kind: ResultDDL}, nil
}

// rollbackLocked applies the undo log in reverse. Caller holds the
// exclusive engine lock (undo application mutates tables, catalog maps
// and the schema stamp in place).
func (s *Session) rollbackLocked() {
	for i := len(s.undo) - 1; i >= 0; i-- {
		s.undo[i].fn(&s.eng.st, false)
	}
	s.clearTxnState()
}

// clearTxnState resets the session's transaction bookkeeping (under
// txMu, so concurrent view builds never observe a half-cleared log).
func (s *Session) clearTxnState() {
	s.txMu.Lock()
	s.inTxn = false
	s.undo = nil
	s.txMu.Unlock()
	s.touched = nil
	s.didDDL = false
	s.txnStmts = 0
	s.pinned = nil
	s.level = s.defLevel
}

// logUndo appends a typed undo record when a transaction is open.
// Appends happen under txMu: the read-view builder and per-table
// rewinds iterate this log from other goroutines.
func (s *Session) logUndo(kind recKind, table string, fn undoFn) {
	if s.inTxn {
		s.txMu.Lock()
		s.undo = append(s.undo, undoRec{kind: kind, table: table, fn: fn})
		s.txMu.Unlock()
	}
}

// logUndoTable logs a row-plane undo record for one table.
func (s *Session) logUndoTable(table string, fn undoFn) { s.logUndo(kindTable, table, fn) }

// logUndoCatalog logs a catalog-plane undo record.
func (s *Session) logUndoCatalog(fn undoFn) { s.logUndo(kindCatalog, "", fn) }

// logUndoSeq logs a sequence-cursor undo record.
func (s *Session) logUndoSeq(fn undoFn) { s.logUndo(kindSeq, "", fn) }

// InTxn reports whether the session has an explicit transaction open.
func (s *Session) InTxn() bool {
	s.txMu.Lock()
	defer s.txMu.Unlock()
	return s.inTxn
}

// Abort rolls back the session's open transaction, if any (used when the
// session's connection drops).
func (s *Session) Abort() {
	s.eng.mu.Lock()
	defer s.eng.mu.Unlock()
	s.abortLocked()
}

func (s *Session) abortLocked() {
	if s.inTxn {
		s.rollbackLocked()
	}
}

// ---------------------------------------------------------------------------
// Engine-wide session operations

// AbortAll rolls back every session's open transaction (an engine crash:
// committed state survives, in-flight transactions do not).
func (e *Engine) AbortAll() {
	e.mu.Lock()
	defer e.mu.Unlock()
	for s := range e.sessions {
		s.abortLocked()
	}
}

// AnyInTxn reports whether any session has an open transaction (used to
// gate state transfers on transaction boundaries).
func (e *Engine) AnyInTxn() bool {
	e.mu.RLock()
	defer e.mu.RUnlock()
	for s := range e.sessions {
		s.txMu.Lock()
		open := s.inTxn
		s.txMu.Unlock()
		if open {
			return true
		}
	}
	return false
}

// SessionCount reports the number of live sessions (for tests and
// introspection).
func (e *Engine) SessionCount() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return len(e.sessions)
}

// discardAllTxnsLocked clears every session's transaction state without
// applying undo entries (the state they refer to has been replaced).
func (e *Engine) discardAllTxnsLocked() {
	for s := range e.sessions {
		s.clearTxnState()
	}
}
