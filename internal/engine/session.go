package engine

import (
	"errors"
	"strings"

	"divsql/internal/engine/plan"
	"divsql/internal/sql/ast"
	"divsql/internal/sql/types"
)

// Session is one client session of an Engine: the unit of transaction
// scope. Any number of sessions share one engine; each carries its own
// open-transaction flag and undo log, so BEGIN on one session never
// affects another.
//
// Concurrency model: a session is owned by one client (one goroutine at a
// time), like a database connection; the engine arbitrates between
// sessions with its RWMutex. Read-only statements from different sessions
// run in parallel; state-changing statements serialize. Transactions use
// an undo log over the shared state — writes become visible to other
// sessions immediately (READ UNCOMMITTED). Undo entries target rows by
// identity, so a rollback removes or restores exactly the transaction's
// own rows even when other sessions' statements interleaved; concurrent
// transactions are therefore isolated as long as they touch disjoint
// rows (write-write races on the same row remain the application's
// concern), which is the contract the workload layers (warehouse-pinned
// TPC-C terminals, wire clients on their own tables) follow.
type Session struct {
	eng    *Engine
	closed bool

	inTxn bool
	undo  []undoFn

	// bind is the argument vector of the currently executing bound
	// statement (ExecBind); Param nodes resolve against it. A session
	// executes one statement at a time (one client), so a plain field
	// under the engine lock suffices.
	bind []types.Value

	// lastPlan records how the most recent SELECT executed (access path,
	// compiled vs interpreter, cache hit) — see Session.LastPlan.
	lastPlan plan.Info
}

// undoFn is one undo record: the inverse of one mutation, applicable to
// an arbitrary state plane. dst is the live state during ROLLBACK and a
// copy-on-write clone during Snapshot's committed-image rewind; toSnap
// distinguishes the two so records that re-install dropped objects can
// copy mutable structures instead of sharing them with the live plane.
// Records resolve tables and sequences by name within dst and rows by
// slice identity (identities are preserved by the snapshot's header
// clone), so the same record is correct on either plane.
type undoFn func(dst *state, toSnap bool)

// NewSession opens a session on the engine.
func (e *Engine) NewSession() *Session {
	e.mu.Lock()
	defer e.mu.Unlock()
	s := &Session{eng: e}
	e.sessions[s] = struct{}{}
	return s
}

// DefaultSession returns the lazily created session backing the engine's
// sessionless compatibility API (Engine.Exec and friends).
func (e *Engine) DefaultSession() *Session {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.def == nil {
		e.def = &Session{eng: e}
		e.sessions[e.def] = struct{}{}
	}
	return e.def
}

// Engine returns the engine the session executes on.
func (s *Session) Engine() *Engine { return s.eng }

// Close rolls back any open transaction and unregisters the session. A
// closed session rejects further statements.
func (s *Session) Close() error {
	e := s.eng
	e.mu.Lock()
	defer e.mu.Unlock()
	if s.closed {
		return nil
	}
	s.abortLocked()
	s.closed = true
	delete(e.sessions, s)
	if e.def == s {
		e.def = nil
	}
	return nil
}

// ErrSessionClosed is returned by statements on a closed session.
var ErrSessionClosed = errors.New("session is closed")

// Exec executes one parsed statement in this session. Pure queries run
// under the engine's read lock (parallel across sessions); everything
// else — DML, DDL, transaction control, and SELECTs that advance a
// sequence — takes the write lock. Statements carrying Param nodes go
// through ExecBind instead.
func (s *Session) Exec(st ast.Statement) (*Result, error) {
	return s.execLocked(st, nil)
}

// execLocked is the shared body of Exec and ExecBind: it picks the lock
// mode, installs the bind vector and dispatches the statement.
func (s *Session) execLocked(st ast.Statement, bind []types.Value) (*Result, error) {
	e := s.eng
	if sel, ok := st.(*ast.Select); ok {
		e.mu.RLock()
		if !s.closed && !e.selectAdvancesSequences(sel) {
			defer e.mu.RUnlock()
			s.bind = bind
			res, err := s.execSelectRLocked(sel)
			s.bind = nil
			return res, err
		}
		e.mu.RUnlock()
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if s.closed {
		return nil, ErrSessionClosed
	}
	if _, ok := st.(*ast.Select); ok {
		// A sequence-advancing SELECT stays on the interpreter.
		s.lastPlan = plan.Info{}
	}
	s.bind = bind
	res, err := s.exec(st)
	s.bind = nil
	if !s.inTxn {
		// Autocommit: outside an explicit transaction every statement
		// commits on completion, so the undo entries are discarded and
		// the commit high-water mark advances past the statement. (Every
		// statement on this write-lock path mutates state — pure SELECTs
		// returned early above; a SELECT here advances a sequence.)
		if err == nil {
			switch st.(type) {
			case *ast.Begin, *ast.Commit, *ast.Rollback:
				// BEGIN opens a transaction; COMMIT advanced the mark in
				// execCommit; ROLLBACK commits nothing.
			default:
				e.commitSeq++
			}
		}
		s.undo = nil
	}
	return res, err
}

// SelectAdvancesSequences reports whether evaluating the query would
// mutate engine state: it calls a sequence-advancing function directly,
// or reads a view whose definition (transitively) does. Such a SELECT
// must be treated as a write by every layer (the engine's lock mode,
// the middleware's cross-session ordering and read policies).
func (e *Engine) SelectAdvancesSequences(sel *ast.Select) bool {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.selectAdvancesSequences(sel)
}

// selectAdvancesSequences is SelectAdvancesSequences with the engine
// lock already held (in at least read mode). The view chain is resolved
// at classification time — views can be dropped and recreated, so a
// flag stored at CREATE VIEW would go stale.
func (e *Engine) selectAdvancesSequences(sel *ast.Select) bool {
	return e.selectAdvances(sel, nil)
}

func (e *Engine) selectAdvances(sel *ast.Select, visited map[string]bool) bool {
	advances := false
	ast.WalkSelectExprs(sel, func(x ast.Expr) {
		if fc, ok := x.(*ast.FuncCall); ok {
			if b, known := e.cfg.Funcs[strings.ToUpper(fc.Name)]; known && b.SeqFunc {
				advances = true
			}
		}
	})
	if advances {
		return true
	}
	for name := range ast.Tables(sel) {
		v, ok := e.st.views[name]
		if !ok || visited[name] {
			continue
		}
		if visited == nil {
			visited = make(map[string]bool)
		}
		visited[name] = true
		if e.selectAdvances(v.Select, visited) {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// Transactions
//
// A session implements transactions with an undo log: every mutation
// registers its inverse; ROLLBACK applies the inverses in reverse order.
// Outside a transaction statements auto-commit (Session.Exec discards the
// undo log after each statement).

func (s *Session) execBegin() (*Result, error) {
	if s.inTxn {
		return nil, errors.New("transaction already in progress")
	}
	s.inTxn = true
	s.undo = s.undo[:0]
	return &Result{Kind: ResultDDL}, nil
}

func (s *Session) execCommit() (*Result, error) {
	if !s.inTxn {
		return nil, ErrNoTransaction
	}
	if len(s.undo) > 0 {
		s.eng.commitSeq++
	}
	s.inTxn = false
	s.undo = nil
	return &Result{Kind: ResultDDL}, nil
}

func (s *Session) execRollback() (*Result, error) {
	if !s.inTxn {
		return nil, ErrNoTransaction
	}
	s.rollbackLocked()
	return &Result{Kind: ResultDDL}, nil
}

func (s *Session) rollbackLocked() {
	for i := len(s.undo) - 1; i >= 0; i-- {
		s.undo[i](&s.eng.st, false)
	}
	s.inTxn = false
	s.undo = nil
}

func (s *Session) logUndo(fn undoFn) {
	if s.inTxn {
		s.undo = append(s.undo, fn)
	}
}

// InTxn reports whether the session has an explicit transaction open.
func (s *Session) InTxn() bool {
	s.eng.mu.RLock()
	defer s.eng.mu.RUnlock()
	return s.inTxn
}

// Abort rolls back the session's open transaction, if any (used when the
// session's connection drops).
func (s *Session) Abort() {
	s.eng.mu.Lock()
	defer s.eng.mu.Unlock()
	s.abortLocked()
}

func (s *Session) abortLocked() {
	if s.inTxn {
		s.rollbackLocked()
	}
}

// ---------------------------------------------------------------------------
// Engine-wide session operations

// AbortAll rolls back every session's open transaction (an engine crash:
// committed state survives, in-flight transactions do not).
func (e *Engine) AbortAll() {
	e.mu.Lock()
	defer e.mu.Unlock()
	for s := range e.sessions {
		s.abortLocked()
	}
}

// AnyInTxn reports whether any session has an open transaction (used to
// gate state transfers on transaction boundaries).
func (e *Engine) AnyInTxn() bool {
	e.mu.RLock()
	defer e.mu.RUnlock()
	for s := range e.sessions {
		if s.inTxn {
			return true
		}
	}
	return false
}

// SessionCount reports the number of live sessions (for tests and
// introspection).
func (e *Engine) SessionCount() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return len(e.sessions)
}

// discardAllTxnsLocked clears every session's transaction state without
// applying undo entries (the state they refer to has been replaced).
func (e *Engine) discardAllTxnsLocked() {
	for s := range e.sessions {
		s.inTxn = false
		s.undo = nil
	}
}
