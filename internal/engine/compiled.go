package engine

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"divsql/internal/engine/plan"
	"divsql/internal/sql/ast"
	"divsql/internal/sql/types"
)

// This file is the execution side of the analyzer (internal/engine/plan):
// compiling an eligible SELECT once into a compiledSelect — references
// resolved to ordinals, projection pre-expanded, access path chosen —
// and executing it under the engine read lock without repeating any of
// that per statement.
//
// Compilations are shared through a two-tier cache on the Engine:
//
//   - planMemo, keyed by *ast.Select pointer identity: a prepared
//     statement re-executes the same parsed tree, so re-execution skips
//     even rendering the statement text.
//   - planCache (plan.Cache), keyed by rendered statement text: inline
//     statements and other sessions executing the same text reuse the
//     compilation.
//
// Both tiers validate entries against the engine's schema-version stamp;
// a stale entry is evicted on probe and recompiles transparently (DDL —
// including DDL rolled back inside a transaction — never serves a plan
// compiled against a schema generation that is no longer current).
//
// Correctness contract with the interpreter (select.go): the compiled
// path must be observationally identical — same rows in the same order,
// same column names, and the same errors raised at the same precedence.
// It mirrors the interpreter's phases exactly: reference validation
// (compile time, replayed as compileErr), WHERE filtering over the full
// predicate in table order, projection-shape errors (projErr) after
// filtering, projection, hidden-column ORDER BY, LIMIT. Index use only
// narrows which rows the WHERE is evaluated on — and only when that
// evaluation provably cannot error (whereSafeForSkip), because skipping
// a row that would have errored would change observable behaviour.

// memoEntry is one pointer-keyed memo tier entry.
type memoEntry struct {
	version uint64
	cs      *compiledSelect
}

// compiledSelect is one statement's compilation: either a full compiled
// execution (p non-nil) or a cached decision to stay on the interpreter
// (p nil — ineligible shapes such as joins, DISTINCT, UNION, GROUP BY,
// views and derived tables).
type compiledSelect struct {
	p   *plan.SelectPlan
	sel *ast.Select

	// cols is the FROM relation's scope (the table's columns under the
	// correlation name in effect), resolved once.
	cols []scopeCol
	// grouped marks a global aggregate (no GROUP BY by eligibility);
	// projection is delegated to projectGrouped per execution.
	grouped bool
	// outCols/projs are the pre-expanded projection: visible output
	// names and all projection expressions (visible first, then hidden
	// ORDER BY keys). Unused when grouped.
	outCols []string
	projs   []projExpr
	// keyCol mirrors evalSelectHiddenOrder: per ORDER BY key, >= 0 is a
	// hidden trailing column offset, < 0 encodes a 1-based output
	// position as -(pos).
	keyCol []int

	// compileErr replays a reference-validation error (raised before any
	// row work, as the interpreter does); projErr replays a projection-
	// shape error (raised after WHERE filtering, as the interpreter
	// does).
	compileErr error
	projErr    error
}

// sessionCatalog adapts the session's active read plane (read view,
// own-writes overlay, or live state) to the analyzer's Catalog
// interface. The caller holds the engine lock.
type sessionCatalog struct{ s *Session }

// TableMeta resolves one base table: columns, primary key, and the
// secondary keysets usable for access paths — declared indexes (sorted
// by index name, so access-path choice is deterministic) and unique
// constraints.
func (c sessionCatalog) TableMeta(name string) (plan.TableMeta, bool) {
	t, ok := c.s.lookupTable(name)
	if !ok {
		return plan.TableMeta{}, false
	}
	m := plan.TableMeta{Name: t.Name, PK: t.PKCols}
	m.Cols = make([]plan.ColMeta, len(t.Cols))
	for i, col := range t.Cols {
		m.Cols[i] = plan.ColMeta{Name: col.Name, Kind: col.Kind}
	}
	idxs := c.s.catalogIndexes()
	var names []string
	for n, ix := range idxs {
		if ix.Table == t.Name {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	for _, n := range names {
		m.Indexes = append(m.Indexes, idxs[n].Cols)
	}
	m.Indexes = append(m.Indexes, t.Uniques...)
	return m, true
}

// compileSelect lowers one SELECT into its compiled form, performing the
// interpreter's plan-time validation once. Ineligible statements return
// a compiledSelect with p == nil (the cached interpreter-fallback
// decision). Caller holds the engine lock.
func (s *Session) compileSelect(sel *ast.Select, force plan.Force) *compiledSelect {
	if sel.Union != nil || sel.Distinct || len(sel.GroupBy) > 0 || sel.Having != nil {
		return &compiledSelect{sel: sel}
	}
	p, ok := plan.Analyze(sel, sessionCatalog{s}, force)
	if !ok {
		return &compiledSelect{sel: sel}
	}
	t, _ := s.lookupTable(p.Table)
	qual := p.Alias
	if qual == "" {
		qual = p.Table
	}
	cols := make([]scopeCol, len(t.Cols))
	for i, c := range t.Cols {
		cols[i] = scopeCol{qual: qual, name: c.Name}
	}

	// Mirror evalSelectHiddenOrder: non-positional ORDER BY keys become
	// hidden trailing projection items, stripped again after the sort.
	items := sel.Items
	var keyCol []int
	if len(sel.OrderBy) > 0 {
		items = append([]ast.SelectItem(nil), sel.Items...)
		keyCol = make([]int, len(sel.OrderBy))
		hidden := 0
		for k, o := range sel.OrderBy {
			if lit, ok := o.Expr.(*ast.Literal); ok && lit.Val.K == types.KindInt {
				keyCol[k] = -int(lit.Val.I)
				continue
			}
			items = append(items, ast.SelectItem{Expr: o.Expr, Alias: "__SORT__"})
			keyCol[k] = hidden
			hidden++
		}
	}
	cp := *sel
	cp.Items = items
	grouped := selectHasAggregate(&cp)
	if grouped && len(sel.OrderBy) > 0 {
		// Aggregates combined with hidden sort keys re-enter grouped
		// projection in a shape the target workloads never use; stay on
		// the interpreter.
		return &compiledSelect{sel: sel}
	}

	cs := &compiledSelect{p: p, sel: sel, cols: cols, grouped: grouped, keyCol: keyCol}

	// Index skipping is only sound when evaluating the WHERE clause can
	// never error: the interpreter evaluates it on every row, so a
	// predicate that can fail (division by zero, scalar subqueries, type
	// errors) must keep full-iteration semantics.
	if p.Path != plan.FullScan && !whereSafeForSkip(sel.Where) {
		p.Path = plan.FullScan
		p.KeyCols, p.KeyVals, p.Lo, p.Hi = nil, nil, nil, nil
	}

	// Plan-time validation, in the interpreter's order: projection items
	// (including hidden ORDER BY keys), then WHERE. Errors replay on
	// every execution until schema change recompiles.
	for _, it := range cp.Items {
		if !it.Star {
			if err := s.validateRefs(it.Expr, cols, nil); err != nil {
				cs.compileErr = err
				return cs
			}
		}
	}
	if err := s.validateRefs(sel.Where, cols, nil); err != nil {
		cs.compileErr = err
		return cs
	}
	if grouped {
		// projectGrouped computes output names and aggregates per
		// execution (its errors already follow filtering, as required).
		return cs
	}
	outNames, projs, err := s.expandItems(&cp, &relation{cols: cols})
	if err != nil {
		cs.projErr = err
		return cs
	}
	hidden := len(cp.Items) - len(sel.Items)
	cs.outCols = outNames[:len(outNames)-hidden]
	cs.projs = projs
	return cs
}

// whereSafeForSkip reports whether evaluating the expression can never
// return an error, assuming every referenced parameter is bound
// (candidateRows checks arity separately) and every column reference
// validated. Comparisons are safe because compareTruth swallows
// comparison errors as Unknown; arithmetic, functions, subqueries and
// CAST are not.
func whereSafeForSkip(x ast.Expr) bool {
	switch n := x.(type) {
	case nil:
		return true
	case *ast.Literal, *ast.Param, *ast.ColumnRef:
		return true
	case *ast.Binary:
		switch n.Op {
		case ast.OpEq, ast.OpNe, ast.OpLt, ast.OpLe, ast.OpGt, ast.OpGe,
			ast.OpAnd, ast.OpOr, ast.OpConcat:
			return whereSafeForSkip(n.L) && whereSafeForSkip(n.R)
		}
		return false // arithmetic: division by zero, non-numeric operands
	case *ast.Unary:
		switch n.Op {
		case "NOT", "+":
			return whereSafeForSkip(n.X)
		}
		return false // unary minus errors on non-numeric operands
	case *ast.Between:
		return whereSafeForSkip(n.X) && whereSafeForSkip(n.Lo) && whereSafeForSkip(n.Hi)
	case *ast.IsNull:
		return whereSafeForSkip(n.X)
	case *ast.Like:
		return whereSafeForSkip(n.X) && whereSafeForSkip(n.Pattern)
	case *ast.In:
		if n.Select != nil {
			return false
		}
		if !whereSafeForSkip(n.X) {
			return false
		}
		for _, it := range n.List {
			if !whereSafeForSkip(it) {
				return false
			}
		}
		return true
	default:
		return false // FuncCall, Case, Cast, Exists, Subquery
	}
}

// candidateRows evaluates the plan's key expressions and consults the
// table's lazy index. It returns (positions, true) when the index
// answered — positions are a superset of the WHERE-true rows, in table
// order, possibly empty — or (nil, false) when only a full scan is
// sound (unbound parameters, non-INT key values that could still match
// through loose coercion, poisoned index).
func (s *Session) candidateRows(p *plan.SelectPlan, t *Table) ([]int, bool) {
	if p.MaxParam > len(s.bind) {
		// Bind-arity errors must surface identically on every access
		// path; only full iteration reaches the Param evaluation.
		return nil, false
	}
	switch p.Path {
	case plan.PointLookup:
		keys := make([]int64, len(p.KeyVals))
		for i, kv := range p.KeyVals {
			v, err := s.evalExpr(kv, nil)
			if err != nil {
				return nil, false
			}
			switch v.K {
			case types.KindInt:
				keys[i] = v.I
			case types.KindNull:
				// Equality with NULL is Unknown on every row: provably
				// empty.
				return []int{}, true
			default:
				// A float or string key can still match an INT column
				// through types.Compare's loose coercion; only a scan is
				// sound.
				return nil, false
			}
		}
		ix := t.ic.eqIndex(t, p.KeyCols)
		if ix == nil {
			return nil, false
		}
		return ix.lookup(keys), true
	case plan.RangeScan:
		var lo, hi int64
		haveLo, haveHi := false, false
		if p.Lo != nil {
			v, err := s.evalExpr(p.Lo.Val, nil)
			if err != nil {
				return nil, false
			}
			switch v.K {
			case types.KindInt:
				lo, haveLo = v.I, true
				if p.Lo.Strict {
					if lo == math.MaxInt64 {
						return []int{}, true
					}
					lo++
				}
			case types.KindNull:
				return []int{}, true
			default:
				return nil, false
			}
		}
		if p.Hi != nil {
			v, err := s.evalExpr(p.Hi.Val, nil)
			if err != nil {
				return nil, false
			}
			switch v.K {
			case types.KindInt:
				hi, haveHi = v.I, true
				if p.Hi.Strict || plantedRangeBoundDefect.Load() {
					if hi == math.MinInt64 {
						return []int{}, true
					}
					hi--
				}
			case types.KindNull:
				return []int{}, true
			default:
				return nil, false
			}
		}
		ix := t.ic.rangeIndex(t, p.RangeCol)
		if ix == nil {
			return nil, false
		}
		return ix.between(lo, hi, haveLo, haveHi), true
	}
	return nil, false
}

// filterCompiled evaluates the full WHERE predicate — over index
// candidates when the plan has a usable access path, over every row
// otherwise — returning the matching rows in table order.
func (s *Session) filterCompiled(cs *compiledSelect, t *Table) ([][]types.Value, error) {
	where := cs.sel.Where
	sc := scope{cols: cs.cols}
	if cs.p.Path != plan.FullScan {
		if cands, indexed := s.candidateRows(cs.p, t); indexed {
			var filtered [][]types.Value
			for _, ri := range cands {
				row := t.Rows[ri]
				sc.vals = row
				v, err := s.evalExpr(where, &sc)
				if err != nil {
					return nil, err
				}
				if types.TruthOf(v) == types.True {
					filtered = append(filtered, row)
				}
			}
			return filtered, nil
		}
	}
	if where == nil {
		// Safe to share: result rows are built fresh by projection, and
		// the slice is only read under the lock held for this statement.
		return t.Rows, nil
	}
	var filtered [][]types.Value
	for _, row := range t.Rows {
		sc.vals = row
		v, err := s.evalExpr(where, &sc)
		if err != nil {
			return nil, err
		}
		if types.TruthOf(v) == types.True {
			filtered = append(filtered, row)
		}
	}
	return filtered, nil
}

// runCompiled executes a compiled SELECT. Caller holds the engine lock
// (at least read mode) and has set s.bind.
func (s *Session) runCompiled(cs *compiledSelect) (*Result, error) {
	if cs.compileErr != nil {
		return nil, cs.compileErr
	}
	// Resolve the table by name per execution, on the session's active
	// read plane: a compiled plan is shared across views and sessions,
	// and Restore and snapshot installs replace the *Table header
	// behind an unchanged name.
	t, ok := s.lookupTable(cs.p.Table)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrTableNotFound, cs.p.Table)
	}
	filtered, err := s.filterCompiled(cs, t)
	if err != nil {
		return nil, err
	}
	sel := cs.sel
	if cs.grouped {
		res, err := s.projectGrouped(sel, &relation{cols: cs.cols, rows: filtered}, nil)
		if err != nil {
			return nil, err
		}
		applyLimit(sel, res)
		return res, nil
	}
	if cs.projErr != nil {
		return nil, cs.projErr
	}
	res := &Result{Kind: ResultRows, Columns: append([]string(nil), cs.outCols...)}
	sc := scope{cols: cs.cols}
	for _, row := range filtered {
		sc.vals = row
		out := make([]types.Value, len(cs.projs))
		for i, px := range cs.projs {
			if px.star >= 0 {
				out[i] = row[px.star]
				continue
			}
			v, err := s.evalExpr(px.expr, &sc)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		res.Rows = append(res.Rows, out)
	}
	if len(sel.OrderBy) > 0 {
		visible := len(cs.outCols)
		keyIdx := make([]int, len(cs.keyCol))
		for k, kc := range cs.keyCol {
			if kc >= 0 {
				keyIdx[k] = visible + kc
			} else {
				pos := -kc - 1
				if pos < 0 || pos >= visible {
					return nil, fmt.Errorf("ORDER BY position %d out of range", -kc)
				}
				keyIdx[k] = pos
			}
		}
		sort.SliceStable(res.Rows, func(i, j int) bool {
			for k, item := range sel.OrderBy {
				c := compareForSort(res.Rows[i][keyIdx[k]], res.Rows[j][keyIdx[k]])
				if c == 0 {
					continue
				}
				if item.Desc {
					return c > 0
				}
				return c < 0
			}
			return false
		})
		for i, row := range res.Rows {
			res.Rows[i] = row[:visible]
		}
	}
	applyLimit(sel, res)
	return res, nil
}

// execSelectRLocked is the read-lock SELECT fast path: probe the memo
// tier by AST pointer, then the shared cache by rendered text, compile
// on miss, and execute. Caller holds the engine read lock and has set
// s.bind.
func (s *Session) execSelectRLocked(sel *ast.Select) (*Result, error) {
	e := s.eng
	ver := s.planVersion()
	if v, ok := e.planMemo.Load(sel); ok {
		me := v.(*memoEntry)
		if me.version == ver {
			e.memoHits.Add(1)
			return s.dispatchCompiled(me.cs, true)
		}
		e.planMemo.Delete(sel)
	}
	key := ast.Render(sel)
	var cs *compiledSelect
	hit := false
	if v, ok := e.planCache.Get(key, ver); ok {
		cs = v.(*compiledSelect)
		hit = true
	} else {
		cs = s.compileSelect(sel, plan.ForceAuto)
		e.planCache.Put(key, ver, cs)
	}
	if e.planMemoLen.Load() >= planMemoCap {
		e.planMemo.Clear()
		e.planMemoLen.Store(0)
	}
	if _, loaded := e.planMemo.LoadOrStore(sel, &memoEntry{version: ver, cs: cs}); !loaded {
		e.planMemoLen.Add(1)
	}
	return s.dispatchCompiled(cs, hit)
}

// dispatchCompiled records the plan taken and runs the compiled form or
// the interpreter fallback.
func (s *Session) dispatchCompiled(cs *compiledSelect, cacheHit bool) (*Result, error) {
	if cs.p == nil {
		s.eng.interpSelects.Add(1)
		s.lastPlan = plan.Info{CacheHit: cacheHit}
		return s.exec(cs.sel)
	}
	if p := int(cs.p.Path); p >= 0 && p < len(s.eng.pathExecs) {
		s.eng.pathExecs[p].Add(1)
	}
	s.lastPlan = plan.Info{Table: cs.p.Table, Path: cs.p.Path, Compiled: true, CacheHit: cacheHit}
	return s.runCompiled(cs)
}

// LastPlan describes how the session's most recent SELECT executed: the
// access path, whether the compiled path ran, and whether the plan came
// out of the shared cache.
func (s *Session) LastPlan() plan.Info { return s.lastPlan }

// ExecSelectVariant executes a pure SELECT under a forced access-path
// variant, compiling fresh and bypassing both cache tiers (a forced
// plan must never leak into normal execution). This is the hook behind
// the forced-variant differential oracle: the same statement runs once
// per variant and any result disagreement convicts the engine.
func (s *Session) ExecSelectVariant(sel *ast.Select, force plan.Force, args []types.Value) (*Result, error) {
	e := s.eng
	e.mu.RLock()
	defer e.mu.RUnlock()
	if s.closed {
		return nil, ErrSessionClosed
	}
	if e.selectAdvancesSequences(sel) {
		return nil, errors.New("variant execution requires a pure SELECT")
	}
	// Variant execution reads the committed view like any pure SELECT
	// (the live plane is no longer stable under the read lock alone);
	// inside a transaction that has written, read through the own-writes
	// path so variants agree with the primary execution.
	if s.inTxn && (s.didDDL || s.touchesRefs(sel)) {
		refs := e.statementRefsLocked(sel)
		release := e.latchTables(refs)
		defer release()
		var overlay map[string]*Table
		for _, n := range refs {
			t, ok := e.st.tables[n]
			if !ok {
				continue
			}
			if e.othersInTxnOn(n, s) {
				if overlay == nil {
					overlay = make(map[string]*Table, len(refs))
				}
				overlay[n] = e.committedTable(t, s)
			}
		}
		s.ownTabs = overlay
		defer func() { s.ownTabs = nil }()
	} else if s.inTxn && s.level == LevelRepeatableRead && s.pinned != nil {
		s.curRead = s.pinned
		defer func() { s.curRead = nil }()
	} else {
		s.curRead = e.currentView()
		defer func() { s.curRead = nil }()
	}
	s.bind = e.cfg.Bind.Apply(args)
	cs := s.compileSelect(sel, force)
	res, err := s.dispatchCompiled(cs, false)
	s.bind = nil
	return res, err
}

// PlanCacheStats returns the shared compiled-plan cache counters, with
// memo-tier hits folded in (a memo hit is a cache hit that skipped even
// rendering the statement text).
func (e *Engine) PlanCacheStats() plan.CacheStats {
	st := e.planCache.Stats()
	st.Hits += e.memoHits.Load()
	return st
}
