package engine

import (
	"errors"
	"testing"

	"divsql/internal/sql/parser"
	"divsql/internal/sql/types"
)

func mustExecBindT(t *testing.T, e *Engine, sql string) {
	t.Helper()
	if _, err := execSQL(e, sql); err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
}

func TestExecBindRoundTrip(t *testing.T) {
	e := NewOracle()
	mustExecBindT(t, e, "CREATE TABLE T (A INT, S VARCHAR(10))")
	ins, err := parser.Parse("INSERT INTO T VALUES ($1, $2)")
	if err != nil {
		t.Fatal(err)
	}
	s := e.DefaultSession()
	if _, err := s.ExecBind(ins, []types.Value{types.NewInt(7), types.NewString("x")}); err != nil {
		t.Fatal(err)
	}
	sel, _ := parser.Parse("SELECT S FROM T WHERE A = ?")
	res, err := s.ExecBind(sel, []types.Value{types.NewInt(7)})
	if err != nil || len(res.Rows) != 1 || res.Rows[0][0].S != "x" {
		t.Fatalf("bound select: %+v %v", res, err)
	}
}

func TestExecBindCountMismatch(t *testing.T) {
	e := NewOracle()
	mustExecBindT(t, e, "CREATE TABLE T (A INT)")
	st, _ := parser.Parse("INSERT INTO T VALUES ($1)")
	s := e.DefaultSession()
	if _, err := s.ExecBind(st, nil); !errors.Is(err, ErrBind) {
		t.Errorf("missing arg: %v", err)
	}
	if _, err := s.ExecBind(st, []types.Value{types.NewInt(1), types.NewInt(2)}); !errors.Is(err, ErrBind) {
		t.Errorf("extra arg: %v", err)
	}
}

func TestParamsRejectedInDDL(t *testing.T) {
	e := NewOracle()
	st, err := parser.Parse("CREATE TABLE T (A INT DEFAULT $1)")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.DefaultSession().ExecBind(st, []types.Value{types.NewInt(1)}); !errors.Is(err, ErrBind) {
		t.Errorf("param in DDL must be a bind error, got %v", err)
	}
}

func TestUnboundParamErrorsAtEval(t *testing.T) {
	// The ad-hoc Exec path carries no arguments: evaluating a Param must
	// fail with a bind error rather than panic or yield NULL.
	e := NewOracle()
	mustExecBindT(t, e, "CREATE TABLE T (A INT)")
	mustExecBindT(t, e, "INSERT INTO T VALUES (1)")
	st, _ := parser.Parse("SELECT A FROM T WHERE A = $1")
	if _, err := e.Exec(st); !errors.Is(err, ErrBind) {
		t.Errorf("unbound param: %v", err)
	}
}

func TestBindRulesApply(t *testing.T) {
	args := func(vs ...types.Value) []types.Value { return vs }
	cases := []struct {
		name  string
		rules BindRules
		in    types.Value
		want  string // Value.String() of the coerced argument
	}{
		{"oracle-empty-string-null", BindRules{EmptyStringAsNull: true}, types.NewString(""), "NULL"},
		{"oracle-nonempty-kept", BindRules{EmptyStringAsNull: true}, types.NewString("a"), "a"},
		{"ib-numeric-string-int", BindRules{NumericStringsAsNumbers: true}, types.NewString("42"), "42"},
		{"ib-numeric-string-float", BindRules{NumericStringsAsNumbers: true}, types.NewString("1.5"), "1.5"},
		{"ib-word-kept", BindRules{NumericStringsAsNumbers: true}, types.NewString("a1"), "a1"},
		{"pg-trailing-trim", BindRules{TrimTrailingSpaces: true}, types.NewString("a  "), "a"},
		{"ms-bool-int-true", BindRules{BoolAsInt: true}, types.NewBool(true), "1"},
		{"ms-bool-int-false", BindRules{BoolAsInt: true}, types.NewBool(false), "0"},
	}
	for _, tc := range cases {
		out := tc.rules.Apply(args(tc.in))
		if got := out[0].String(); got != tc.want {
			t.Errorf("%s: %s, want %s", tc.name, got, tc.want)
		}
	}
	// Kind checks where String() is ambiguous.
	if out := (BindRules{NumericStringsAsNumbers: true}).Apply(args(types.NewString("42"))); out[0].K != types.KindInt {
		t.Errorf("numeric string must re-type to INT, got kind %v", out[0].K)
	}
	if out := (BindRules{BoolAsInt: true}).Apply(args(types.NewBool(true))); out[0].K != types.KindInt {
		t.Errorf("bool must re-type to INT, got kind %v", out[0].K)
	}
}

func TestBindRulesApplyDoesNotMutateInput(t *testing.T) {
	in := []types.Value{types.NewString(""), types.NewInt(1)}
	out := BindRules{EmptyStringAsNull: true}.Apply(in)
	if in[0].K != types.KindString {
		t.Error("caller's vector mutated")
	}
	if !out[0].IsNull() || out[1].I != 1 {
		t.Errorf("coerced vector wrong: %v", out)
	}
	// Identity rules return the input slice itself (no allocation).
	same := BindRules{}.Apply(in)
	if &same[0] != &in[0] {
		t.Error("zero rules must pass the vector through")
	}
}
