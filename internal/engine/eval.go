package engine

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"

	"divsql/internal/sql/ast"
	"divsql/internal/sql/types"
)

// ErrDivideByZero is returned by / and % with a zero divisor.
var ErrDivideByZero = errors.New("division by zero")

// scope resolves column references during evaluation. Scopes nest so that
// correlated subqueries can see the columns of enclosing queries.
type scope struct {
	cols   []scopeCol
	vals   []types.Value
	parent *scope
}

type scopeCol struct {
	qual string // upper-cased table alias or name ("" when anonymous)
	name string // upper-cased column name
}

func (sc *scope) lookup(qual, name string) (types.Value, bool, error) {
	qual, name = up(qual), up(name)
	for s := sc; s != nil; s = s.parent {
		found := -1
		for i, c := range s.cols {
			if c.name != name {
				continue
			}
			if qual != "" && c.qual != qual {
				continue
			}
			if found >= 0 {
				return types.Value{}, false, fmt.Errorf("ambiguous column reference %s", name)
			}
			found = i
		}
		if found >= 0 {
			return s.vals[found], true, nil
		}
	}
	return types.Value{}, false, nil
}

// evalConst evaluates an expression with no row context (DEFAULT values,
// literal-only expressions).
func (e *Session) evalConst(x ast.Expr) (types.Value, error) {
	return e.evalExpr(x, nil)
}

func (e *Session) evalExpr(x ast.Expr, sc *scope) (types.Value, error) {
	switch n := x.(type) {
	case *ast.Literal:
		return n.Val, nil
	case *ast.Param:
		if n.N < 1 || n.N > len(e.bind) {
			return types.Value{}, fmt.Errorf("%w: no value bound for parameter $%d", ErrBind, n.N)
		}
		return e.bind[n.N-1], nil
	case *ast.ColumnRef:
		v, ok, err := sc.lookupRef(n)
		if err != nil {
			return types.Value{}, err
		}
		if !ok {
			return types.Value{}, fmt.Errorf("unknown column %s", refName(n))
		}
		return v, nil
	case *ast.Binary:
		return e.evalBinary(n, sc)
	case *ast.Unary:
		return e.evalUnary(n, sc)
	case *ast.FuncCall:
		return e.evalFunc(n, sc)
	case *ast.In:
		return e.evalIn(n, sc)
	case *ast.Exists:
		res, err := e.evalSelect(n.Select, sc)
		if err != nil {
			return types.Value{}, err
		}
		has := len(res.Rows) > 0
		if n.Not {
			has = !has
		}
		return types.NewBool(has), nil
	case *ast.Subquery:
		res, err := e.evalSelect(n.Select, sc)
		if err != nil {
			return types.Value{}, err
		}
		if len(res.Rows) == 0 {
			return types.Null(), nil
		}
		if len(res.Rows) > 1 {
			return types.Value{}, errors.New("scalar subquery returned more than one row")
		}
		if len(res.Rows[0]) != 1 {
			return types.Value{}, errors.New("scalar subquery must return one column")
		}
		return res.Rows[0][0], nil
	case *ast.Between:
		v, err := e.evalExpr(n.X, sc)
		if err != nil {
			return types.Value{}, err
		}
		lo, err := e.evalExpr(n.Lo, sc)
		if err != nil {
			return types.Value{}, err
		}
		hi, err := e.evalExpr(n.Hi, sc)
		if err != nil {
			return types.Value{}, err
		}
		geLo := compareTruth(v, lo, func(c int) bool { return c >= 0 })
		leHi := compareTruth(v, hi, func(c int) bool { return c <= 0 })
		t := geLo.And(leHi)
		if n.Not {
			t = t.Not()
		}
		return t.Val(), nil
	case *ast.Like:
		v, err := e.evalExpr(n.X, sc)
		if err != nil {
			return types.Value{}, err
		}
		pat, err := e.evalExpr(n.Pattern, sc)
		if err != nil {
			return types.Value{}, err
		}
		if v.IsNull() || pat.IsNull() {
			return types.Null(), nil
		}
		m := likeMatch(v.String(), pat.String())
		if n.Not {
			m = !m
		}
		return types.NewBool(m), nil
	case *ast.IsNull:
		v, err := e.evalExpr(n.X, sc)
		if err != nil {
			return types.Value{}, err
		}
		isNull := v.IsNull()
		if n.Not {
			isNull = !isNull
		}
		return types.NewBool(isNull), nil
	case *ast.Case:
		return e.evalCase(n, sc)
	case *ast.Cast:
		v, err := e.evalExpr(n.X, sc)
		if err != nil {
			return types.Value{}, err
		}
		kind, err := e.eng.cfg.ResolveType(n.To)
		if err != nil {
			return types.Value{}, err
		}
		return coerce(v, kind)
	case nil:
		return types.Null(), nil
	default:
		return types.Value{}, fmt.Errorf("unsupported expression %T", x)
	}
}

func (sc *scope) lookupRef(n *ast.ColumnRef) (types.Value, bool, error) {
	if sc == nil {
		return types.Value{}, false, nil
	}
	return sc.lookup(n.Table, n.Column)
}

func refName(n *ast.ColumnRef) string {
	if n.Table != "" {
		return n.Table + "." + n.Column
	}
	return n.Column
}

func compareTruth(a, b types.Value, ok func(int) bool) types.Truth {
	if a.IsNull() || b.IsNull() {
		return types.Unknown
	}
	c, err := compareCoercing(a, b)
	if err != nil {
		return types.Unknown
	}
	if ok(c) {
		return types.True
	}
	return types.False
}

// compareCoercing compares values, normalizing date-vs-string pairs so
// that '2000-9-6' matches a DATE column holding 2000-09-06.
func compareCoercing(a, b types.Value) (int, error) {
	if a.K == types.KindDate && b.K == types.KindString {
		if d, err := types.ParseDate(b.S); err == nil {
			b = d
		}
	}
	if b.K == types.KindDate && a.K == types.KindString {
		if d, err := types.ParseDate(a.S); err == nil {
			a = d
		}
	}
	return types.Compare(a, b)
}

func (e *Session) evalBinary(n *ast.Binary, sc *scope) (types.Value, error) {
	switch n.Op {
	case ast.OpAnd:
		l, err := e.evalExpr(n.L, sc)
		if err != nil {
			return types.Value{}, err
		}
		lt := types.TruthOf(l)
		if lt == types.False {
			return types.NewBool(false), nil
		}
		r, err := e.evalExpr(n.R, sc)
		if err != nil {
			return types.Value{}, err
		}
		return lt.And(types.TruthOf(r)).Val(), nil
	case ast.OpOr:
		l, err := e.evalExpr(n.L, sc)
		if err != nil {
			return types.Value{}, err
		}
		lt := types.TruthOf(l)
		if lt == types.True {
			return types.NewBool(true), nil
		}
		r, err := e.evalExpr(n.R, sc)
		if err != nil {
			return types.Value{}, err
		}
		return lt.Or(types.TruthOf(r)).Val(), nil
	}

	l, err := e.evalExpr(n.L, sc)
	if err != nil {
		return types.Value{}, err
	}
	r, err := e.evalExpr(n.R, sc)
	if err != nil {
		return types.Value{}, err
	}

	switch n.Op {
	case ast.OpEq:
		return compareTruth(l, r, func(c int) bool { return c == 0 }).Val(), nil
	case ast.OpNe:
		return compareTruth(l, r, func(c int) bool { return c != 0 }).Val(), nil
	case ast.OpLt:
		return compareTruth(l, r, func(c int) bool { return c < 0 }).Val(), nil
	case ast.OpLe:
		return compareTruth(l, r, func(c int) bool { return c <= 0 }).Val(), nil
	case ast.OpGt:
		return compareTruth(l, r, func(c int) bool { return c > 0 }).Val(), nil
	case ast.OpGe:
		return compareTruth(l, r, func(c int) bool { return c >= 0 }).Val(), nil
	case ast.OpConcat:
		if l.IsNull() || r.IsNull() {
			return types.Null(), nil
		}
		return types.NewString(l.String() + r.String()), nil
	case ast.OpAdd, ast.OpSub, ast.OpMul, ast.OpDiv, ast.OpMod:
		return e.arith(n.Op, l, r)
	default:
		return types.Value{}, fmt.Errorf("unsupported operator %s", n.Op)
	}
}

func numericOperand(v types.Value) (types.Value, error) {
	if v.IsNumeric() {
		return v, nil
	}
	if v.K == types.KindString {
		s := strings.TrimSpace(v.S)
		if i, err := strconv.ParseInt(s, 10, 64); err == nil {
			return types.NewInt(i), nil
		}
		if f, err := strconv.ParseFloat(s, 64); err == nil {
			return types.NewFloat(f), nil
		}
	}
	return types.Value{}, fmt.Errorf("%w: %s is not numeric", ErrType, v.K)
}

func (e *Session) arith(op ast.BinaryOp, l, r types.Value) (types.Value, error) {
	if l.IsNull() || r.IsNull() {
		return types.Null(), nil
	}
	l, err := numericOperand(l)
	if err != nil {
		return types.Value{}, err
	}
	r, err = numericOperand(r)
	if err != nil {
		return types.Value{}, err
	}
	bothInt := l.K == types.KindInt && r.K == types.KindInt
	switch op {
	case ast.OpAdd:
		if bothInt {
			return types.NewInt(l.I + r.I), nil
		}
		return types.NewFloat(l.AsFloat() + r.AsFloat()), nil
	case ast.OpSub:
		if bothInt {
			return types.NewInt(l.I - r.I), nil
		}
		return types.NewFloat(l.AsFloat() - r.AsFloat()), nil
	case ast.OpMul:
		if bothInt {
			return types.NewInt(l.I * r.I), nil
		}
		f := l.AsFloat() * r.AsFloat()
		if e.eng.cfg.Quirks.FloatMulPrecisionLoss {
			// Quirk (PG bug 77, shared by MS): the result passes through
			// 32-bit precision, silently losing significant digits.
			f = float64(float32(f))
		}
		return types.NewFloat(f), nil
	case ast.OpDiv:
		if r.AsFloat() == 0 {
			return types.Value{}, ErrDivideByZero
		}
		if bothInt {
			return types.NewInt(l.I / r.I), nil
		}
		return types.NewFloat(l.AsFloat() / r.AsFloat()), nil
	case ast.OpMod:
		return e.mod(l, r)
	default:
		return types.Value{}, fmt.Errorf("unsupported arithmetic operator %s", op)
	}
}

// mod implements MOD/% semantics: the sign of the result follows the
// dividend. Two quirks model the paper's arithmetic bugs (OR 1059835 and
// the PG member of the same failure region) with different incorrect
// results, so a diverse pair detects the failure.
func (e *Session) mod(l, r types.Value) (types.Value, error) {
	if r.AsFloat() == 0 {
		return types.Value{}, ErrDivideByZero
	}
	if l.K == types.KindInt && r.K == types.KindInt {
		res := l.I % r.I
		if l.I < 0 {
			switch {
			case e.eng.cfg.Quirks.ModNegativePlus && res != 0:
				res += abs64(r.I)
			case e.eng.cfg.Quirks.ModNegativeAbs:
				res = abs64(res)
			}
		}
		return types.NewInt(res), nil
	}
	res := math.Mod(l.AsFloat(), r.AsFloat())
	if l.AsFloat() < 0 {
		switch {
		case e.eng.cfg.Quirks.ModNegativePlus && res != 0:
			res += math.Abs(r.AsFloat())
		case e.eng.cfg.Quirks.ModNegativeAbs:
			res = math.Abs(res)
		}
	}
	return types.NewFloat(res), nil
}

func abs64(i int64) int64 {
	if i < 0 {
		return -i
	}
	return i
}

func (e *Session) evalUnary(n *ast.Unary, sc *scope) (types.Value, error) {
	v, err := e.evalExpr(n.X, sc)
	if err != nil {
		return types.Value{}, err
	}
	switch n.Op {
	case "-":
		if v.IsNull() {
			return v, nil
		}
		v, err := numericOperand(v)
		if err != nil {
			return types.Value{}, err
		}
		if v.K == types.KindInt {
			return types.NewInt(-v.I), nil
		}
		return types.NewFloat(-v.F), nil
	case "+":
		return v, nil
	case "NOT":
		if v.IsNull() && plantedNotNullDefect.Load() {
			return types.True.Val(), nil
		}
		return types.TruthOf(v).Not().Val(), nil
	default:
		return types.Value{}, fmt.Errorf("unsupported unary operator %s", n.Op)
	}
}

func (e *Session) evalIn(n *ast.In, sc *scope) (types.Value, error) {
	v, err := e.evalExpr(n.X, sc)
	if err != nil {
		return types.Value{}, err
	}
	var candidates []types.Value
	if n.Select != nil {
		if n.Select.Union != nil {
			if e.eng.cfg.Quirks.ParenUnionSubqueryError {
				// Quirk (PG bug 43): the parser chokes on UNION branches
				// inside an IN subquery.
				return types.Value{}, errors.New("parse error: unexpected UNION in subquery")
			}
			if e.eng.cfg.Quirks.ParenUnionSubqueryMisparse {
				// Quirk (bug 43 on MS): an incorrect parse tree is built
				// for the UNION subquery and a spurious resolution error
				// surfaces when the tree is evaluated.
				return types.Value{}, errors.New("internal error: could not resolve column in subquery parse tree")
			}
		}
		res, err := e.evalSelect(n.Select, sc)
		if err != nil {
			return types.Value{}, err
		}
		if len(res.Columns) != 1 {
			return types.Value{}, errors.New("IN subquery must return one column")
		}
		for _, row := range res.Rows {
			candidates = append(candidates, row[0])
		}
	} else {
		for _, item := range n.List {
			iv, err := e.evalExpr(item, sc)
			if err != nil {
				return types.Value{}, err
			}
			candidates = append(candidates, iv)
		}
	}
	if v.IsNull() {
		return types.Null(), nil
	}
	sawNull := false
	for _, c := range candidates {
		if c.IsNull() {
			sawNull = true
			continue
		}
		if cmp, err := compareCoercing(v, c); err == nil && cmp == 0 {
			if n.Not {
				return types.NewBool(false), nil
			}
			return types.NewBool(true), nil
		}
	}
	if sawNull {
		return types.Null(), nil
	}
	return types.NewBool(n.Not), nil
}

func (e *Session) evalCase(n *ast.Case, sc *scope) (types.Value, error) {
	if n.Operand != nil {
		op, err := e.evalExpr(n.Operand, sc)
		if err != nil {
			return types.Value{}, err
		}
		for _, w := range n.Whens {
			wv, err := e.evalExpr(w.Cond, sc)
			if err != nil {
				return types.Value{}, err
			}
			if types.Equal(op, wv) {
				return e.evalExpr(w.Then, sc)
			}
		}
	} else {
		for _, w := range n.Whens {
			cv, err := e.evalExpr(w.Cond, sc)
			if err != nil {
				return types.Value{}, err
			}
			if types.TruthOf(cv) == types.True {
				return e.evalExpr(w.Then, sc)
			}
		}
	}
	if n.Else != nil {
		return e.evalExpr(n.Else, sc)
	}
	return types.Null(), nil
}

// likeMatch implements SQL LIKE with % and _ wildcards.
func likeMatch(s, pattern string) bool {
	return likeRec(s, pattern)
}

func likeRec(s, p string) bool {
	if p == "" {
		return s == ""
	}
	switch p[0] {
	case '%':
		for i := 0; i <= len(s); i++ {
			if likeRec(s[i:], p[1:]) {
				return true
			}
		}
		return false
	case '_':
		if s == "" {
			return false
		}
		return likeRec(s[1:], p[1:])
	default:
		if s == "" || s[0] != p[0] {
			return false
		}
		return likeRec(s[1:], p[1:])
	}
}

// coerce converts a value to a column kind, returning an error when the
// conversion is not allowed.
func coerce(v types.Value, kind types.Kind) (types.Value, error) {
	if v.IsNull() {
		return v, nil
	}
	switch kind {
	case types.KindInt:
		switch v.K {
		case types.KindInt:
			return v, nil
		case types.KindFloat:
			return types.NewInt(int64(v.F)), nil
		case types.KindBool:
			if v.B {
				return types.NewInt(1), nil
			}
			return types.NewInt(0), nil
		case types.KindString:
			s := strings.TrimSpace(v.S)
			if i, err := strconv.ParseInt(s, 10, 64); err == nil {
				return types.NewInt(i), nil
			}
			if f, err := strconv.ParseFloat(s, 64); err == nil {
				return types.NewInt(int64(f)), nil
			}
			return types.Value{}, fmt.Errorf("%w: cannot store '%s' in INTEGER column", ErrType, v.S)
		}
	case types.KindFloat:
		switch v.K {
		case types.KindFloat:
			return v, nil
		case types.KindInt:
			return types.NewFloat(float64(v.I)), nil
		case types.KindString:
			if f, err := strconv.ParseFloat(strings.TrimSpace(v.S), 64); err == nil {
				return types.NewFloat(f), nil
			}
			return types.Value{}, fmt.Errorf("%w: cannot store '%s' in NUMERIC column", ErrType, v.S)
		}
	case types.KindString:
		switch v.K {
		case types.KindString, types.KindDate:
			return types.NewString(v.S), nil
		default:
			return types.NewString(v.String()), nil
		}
	case types.KindDate:
		switch v.K {
		case types.KindDate:
			return v, nil
		case types.KindString:
			d, err := types.ParseDate(v.S)
			if err != nil {
				return types.Value{}, fmt.Errorf("%w: cannot store '%s' in DATE column", ErrType, v.S)
			}
			return d, nil
		}
	case types.KindBool:
		switch v.K {
		case types.KindBool:
			return v, nil
		case types.KindInt:
			return types.NewBool(v.I != 0), nil
		}
	}
	return types.Value{}, fmt.Errorf("%w: cannot store %s in %s column", ErrType, v.K, kind)
}
