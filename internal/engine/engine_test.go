package engine

import (
	"errors"
	"strings"
	"testing"

	"divsql/internal/sql/parser"
	"divsql/internal/sql/types"
)

// mustExec runs a statement and fails the test on error.
func mustExec(t *testing.T, e *Engine, sql string) *Result {
	t.Helper()
	res, err := execSQL(e, sql)
	if err != nil {
		t.Fatalf("exec %q: %v", sql, err)
	}
	return res
}

func execSQL(e *Engine, sql string) (*Result, error) {
	st, err := parser.Parse(sql)
	if err != nil {
		return nil, err
	}
	res, err := e.Exec(st)
	e.EndStatement()
	return res, err
}

func mustFail(t *testing.T, e *Engine, sql string) error {
	t.Helper()
	_, err := execSQL(e, sql)
	if err == nil {
		t.Fatalf("exec %q: expected error, got none", sql)
	}
	return err
}

func seed(t *testing.T, e *Engine) {
	t.Helper()
	mustExec(t, e, "CREATE TABLE PRODUCT (ID INT PRIMARY KEY, NAME VARCHAR(30), PRICE FLOAT)")
	mustExec(t, e, "INSERT INTO PRODUCT VALUES (1, 'apple', 2.5)")
	mustExec(t, e, "INSERT INTO PRODUCT VALUES (2, 'pear', 3.0)")
	mustExec(t, e, "INSERT INTO PRODUCT VALUES (3, 'plum', 1.25)")
}

func rowStrings(res *Result) []string {
	out := make([]string, 0, len(res.Rows))
	for _, r := range res.Rows {
		cells := make([]string, len(r))
		for i, v := range r {
			cells[i] = v.String()
		}
		out = append(out, strings.Join(cells, "|"))
	}
	return out
}

func TestCreateInsertSelect(t *testing.T) {
	e := NewOracle()
	seed(t, e)
	res := mustExec(t, e, "SELECT NAME, PRICE FROM PRODUCT WHERE PRICE >= 2 ORDER BY PRICE DESC")
	got := rowStrings(res)
	want := []string{"pear|3", "apple|2.5"}
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("row %d: got %q want %q", i, got[i], want[i])
		}
	}
	if res.Columns[0] != "NAME" || res.Columns[1] != "PRICE" {
		t.Errorf("columns: %v", res.Columns)
	}
}

func TestPrimaryKeyViolation(t *testing.T) {
	e := NewOracle()
	seed(t, e)
	err := mustFail(t, e, "INSERT INTO PRODUCT VALUES (1, 'dup', 1.0)")
	if !errors.Is(err, ErrConstraint) {
		t.Errorf("want ErrConstraint, got %v", err)
	}
}

func TestNotNull(t *testing.T) {
	e := NewOracle()
	mustExec(t, e, "CREATE TABLE T (A INT NOT NULL, B INT)")
	mustFail(t, e, "INSERT INTO T (B) VALUES (1)")
	mustExec(t, e, "INSERT INTO T (A) VALUES (1)")
}

func TestDefaultApplied(t *testing.T) {
	e := NewOracle()
	mustExec(t, e, "CREATE TABLE T (A INT, B INT DEFAULT 42)")
	mustExec(t, e, "INSERT INTO T (A) VALUES (1)")
	res := mustExec(t, e, "SELECT B FROM T")
	if res.Rows[0][0].I != 42 {
		t.Errorf("default not applied: %v", res.Rows[0][0])
	}
}

func TestDefaultTypeValidation(t *testing.T) {
	e := NewOracle()
	err := mustFail(t, e, "CREATE TABLE T (A INT DEFAULT 'ABC')")
	if !errors.Is(err, ErrType) {
		t.Errorf("want ErrType, got %v", err)
	}
}

func TestDefaultTypeQuirk(t *testing.T) {
	e := New(Config{Quirks: Quirks{SkipDefaultTypeCheck: true}})
	mustExec(t, e, "CREATE TABLE T (A INT DEFAULT 'ABC', B INT)")
	mustExec(t, e, "INSERT INTO T (B) VALUES (1)")
	res := mustExec(t, e, "SELECT A FROM T")
	if res.Rows[0][0].String() != "ABC" {
		t.Errorf("quirk should store raw default, got %v", res.Rows[0][0])
	}
}

func TestGroupByAggregates(t *testing.T) {
	e := NewOracle()
	mustExec(t, e, "CREATE TABLE S (DEPT VARCHAR(10), AMT INT)")
	mustExec(t, e, "INSERT INTO S VALUES ('a', 1), ('a', 3), ('b', 10)")
	res := mustExec(t, e, "SELECT DEPT, SUM(AMT) AS TOTAL, COUNT(*) AS N FROM S GROUP BY DEPT ORDER BY DEPT")
	got := rowStrings(res)
	if got[0] != "a|4|2" || got[1] != "b|10|1" {
		t.Errorf("group by wrong: %v", got)
	}
}

func TestGlobalAggregateEmptyTable(t *testing.T) {
	e := NewOracle()
	mustExec(t, e, "CREATE TABLE S (A INT)")
	res := mustExec(t, e, "SELECT COUNT(*) AS N, SUM(A) AS S FROM S")
	if len(res.Rows) != 1 {
		t.Fatalf("want one row, got %d", len(res.Rows))
	}
	if res.Rows[0][0].I != 0 || !res.Rows[0][1].IsNull() {
		t.Errorf("empty aggregate: %v", rowStrings(res))
	}
}

func TestHaving(t *testing.T) {
	e := NewOracle()
	mustExec(t, e, "CREATE TABLE S (DEPT VARCHAR(10), AMT INT)")
	mustExec(t, e, "INSERT INTO S VALUES ('a', 1), ('a', 3), ('b', 10)")
	res := mustExec(t, e, "SELECT DEPT FROM S GROUP BY DEPT HAVING SUM(AMT) > 5")
	if len(res.Rows) != 1 || res.Rows[0][0].S != "b" {
		t.Errorf("having wrong: %v", rowStrings(res))
	}
}

func TestJoins(t *testing.T) {
	e := NewOracle()
	mustExec(t, e, "CREATE TABLE A (ID INT, X VARCHAR(5))")
	mustExec(t, e, "CREATE TABLE B (ID INT, Y VARCHAR(5))")
	mustExec(t, e, "INSERT INTO A VALUES (1, 'a1'), (2, 'a2'), (3, 'a3')")
	mustExec(t, e, "INSERT INTO B VALUES (1, 'b1'), (3, 'b3'), (3, 'b3x')")

	res := mustExec(t, e, "SELECT A.X, B.Y FROM A INNER JOIN B ON A.ID = B.ID ORDER BY A.X, B.Y")
	if len(res.Rows) != 3 {
		t.Fatalf("inner join rows: %v", rowStrings(res))
	}

	res = mustExec(t, e, "SELECT A.X, B.Y FROM A LEFT OUTER JOIN B ON A.ID = B.ID ORDER BY A.X, B.Y")
	if len(res.Rows) != 4 {
		t.Fatalf("left join rows: %v", rowStrings(res))
	}
	// Row for a2 must carry NULL on the right.
	found := false
	for _, r := range res.Rows {
		if r[0].S == "a2" && r[1].IsNull() {
			found = true
		}
	}
	if !found {
		t.Errorf("left join padding missing: %v", rowStrings(res))
	}
}

func TestSubqueries(t *testing.T) {
	e := NewOracle()
	seed(t, e)
	res := mustExec(t, e, "SELECT NAME FROM PRODUCT WHERE ID IN (SELECT ID FROM PRODUCT WHERE PRICE > 2) ORDER BY NAME")
	if len(res.Rows) != 2 {
		t.Errorf("IN subquery: %v", rowStrings(res))
	}
	res = mustExec(t, e, "SELECT NAME FROM PRODUCT P WHERE EXISTS (SELECT ID FROM PRODUCT WHERE ID = P.ID AND PRICE < 2)")
	if len(res.Rows) != 1 || res.Rows[0][0].S != "plum" {
		t.Errorf("correlated EXISTS: %v", rowStrings(res))
	}
	res = mustExec(t, e, "SELECT NAME FROM PRODUCT WHERE PRICE = (SELECT MAX(PRICE) FROM PRODUCT)")
	if len(res.Rows) != 1 || res.Rows[0][0].S != "pear" {
		t.Errorf("scalar subquery: %v", rowStrings(res))
	}
}

func TestUnionAndDistinct(t *testing.T) {
	e := NewOracle()
	mustExec(t, e, "CREATE TABLE U (A INT)")
	mustExec(t, e, "INSERT INTO U VALUES (1), (2), (2)")
	res := mustExec(t, e, "SELECT A FROM U UNION SELECT A FROM U")
	if len(res.Rows) != 2 {
		t.Errorf("UNION should dedupe: %v", rowStrings(res))
	}
	res = mustExec(t, e, "SELECT A FROM U UNION ALL SELECT A FROM U")
	if len(res.Rows) != 6 {
		t.Errorf("UNION ALL: %v", rowStrings(res))
	}
	res = mustExec(t, e, "SELECT DISTINCT A FROM U ORDER BY A")
	if len(res.Rows) != 2 {
		t.Errorf("DISTINCT: %v", rowStrings(res))
	}
}

func TestViews(t *testing.T) {
	e := NewOracle()
	seed(t, e)
	mustExec(t, e, "CREATE VIEW CHEAP AS SELECT ID, NAME FROM PRODUCT WHERE PRICE < 3")
	res := mustExec(t, e, "SELECT NAME FROM CHEAP ORDER BY NAME")
	if len(res.Rows) != 2 {
		t.Errorf("view rows: %v", rowStrings(res))
	}
	// SQL-92: DROP TABLE must not remove a view.
	if err := mustFail(t, e, "DROP TABLE CHEAP"); !errors.Is(err, ErrTableNotFound) {
		t.Errorf("DROP TABLE on view: %v", err)
	}
	mustExec(t, e, "DROP VIEW CHEAP")
	mustFail(t, e, "SELECT NAME FROM CHEAP")
}

func TestDropTableOnViewQuirk(t *testing.T) {
	e := New(Config{Quirks: Quirks{AllowDropTableOnView: true}})
	mustExec(t, e, "CREATE TABLE T (A INT)")
	mustExec(t, e, "CREATE VIEW V AS SELECT A FROM T")
	mustExec(t, e, "DROP TABLE V") // quirk: accepted
	mustFail(t, e, "SELECT A FROM V")
}

func TestUpdateDelete(t *testing.T) {
	e := NewOracle()
	seed(t, e)
	res := mustExec(t, e, "UPDATE PRODUCT SET PRICE = PRICE * 2 WHERE ID <= 2")
	if res.Affected != 2 {
		t.Errorf("update affected %d", res.Affected)
	}
	res = mustExec(t, e, "SELECT PRICE FROM PRODUCT WHERE ID = 1")
	if res.Rows[0][0].F != 5.0 {
		t.Errorf("update value: %v", res.Rows[0][0])
	}
	res = mustExec(t, e, "DELETE FROM PRODUCT WHERE PRICE > 4")
	if res.Affected != 2 {
		t.Errorf("delete affected %d: %v", res.Affected, rowStrings(res))
	}
	res = mustExec(t, e, "SELECT COUNT(*) AS N FROM PRODUCT")
	if res.Rows[0][0].I != 1 {
		t.Errorf("rows after delete: %v", rowStrings(res))
	}
}

func TestTransactions(t *testing.T) {
	e := NewOracle()
	seed(t, e)
	mustExec(t, e, "BEGIN TRANSACTION")
	mustExec(t, e, "INSERT INTO PRODUCT VALUES (10, 'txn', 9.0)")
	mustExec(t, e, "UPDATE PRODUCT SET PRICE = 0 WHERE ID = 1")
	mustExec(t, e, "DELETE FROM PRODUCT WHERE ID = 2")
	mustExec(t, e, "ROLLBACK")
	res := mustExec(t, e, "SELECT COUNT(*) AS N FROM PRODUCT")
	if res.Rows[0][0].I != 3 {
		t.Fatalf("rollback row count: %v", rowStrings(res))
	}
	res = mustExec(t, e, "SELECT PRICE FROM PRODUCT WHERE ID = 1")
	if res.Rows[0][0].F != 2.5 {
		t.Errorf("rollback restored price: %v", res.Rows[0][0])
	}
	mustExec(t, e, "BEGIN TRANSACTION")
	mustExec(t, e, "INSERT INTO PRODUCT VALUES (11, 'kept', 1.0)")
	mustExec(t, e, "COMMIT")
	res = mustExec(t, e, "SELECT COUNT(*) AS N FROM PRODUCT")
	if res.Rows[0][0].I != 4 {
		t.Errorf("commit row count: %v", rowStrings(res))
	}
}

func TestRollbackDDL(t *testing.T) {
	e := NewOracle()
	mustExec(t, e, "BEGIN TRANSACTION")
	mustExec(t, e, "CREATE TABLE TX (A INT)")
	mustExec(t, e, "ROLLBACK")
	mustFail(t, e, "SELECT A FROM TX")
}

func TestSequences(t *testing.T) {
	e := NewOracle()
	mustExec(t, e, "CREATE SEQUENCE SQ START WITH 5")
	res := mustExec(t, e, "SELECT NEXTVAL(SQ) AS V")
	if res.Rows[0][0].I != 5 {
		t.Errorf("nextval: %v", res.Rows[0][0])
	}
	res = mustExec(t, e, "SELECT NEXTVAL(SQ) AS V")
	if res.Rows[0][0].I != 6 {
		t.Errorf("nextval 2: %v", res.Rows[0][0])
	}
}

func TestDateHandling(t *testing.T) {
	e := NewOracle()
	mustExec(t, e, "CREATE TABLE D (ID INT, WHENCOL DATE)")
	mustExec(t, e, "INSERT INTO D VALUES (1, '2000-09-06'), (2, '2000-9-7')")
	res := mustExec(t, e, "SELECT ID FROM D WHERE WHENCOL <= '2000-9-6'")
	if len(res.Rows) != 1 || res.Rows[0][0].I != 1 {
		t.Errorf("date compare: %v", rowStrings(res))
	}
}

func TestCaseExpr(t *testing.T) {
	e := NewOracle()
	seed(t, e)
	res := mustExec(t, e, "SELECT NAME, CASE WHEN PRICE > 2 THEN 'costly' ELSE 'cheap' END AS TAG FROM PRODUCT ORDER BY NAME")
	if res.Rows[0][1].S != "costly" { // apple 2.5
		t.Errorf("case: %v", rowStrings(res))
	}
}

func TestThreeValuedLogic(t *testing.T) {
	e := NewOracle()
	mustExec(t, e, "CREATE TABLE N (A INT)")
	mustExec(t, e, "INSERT INTO N VALUES (1), (NULL)")
	res := mustExec(t, e, "SELECT A FROM N WHERE A = 1")
	if len(res.Rows) != 1 {
		t.Errorf("null filter: %v", rowStrings(res))
	}
	res = mustExec(t, e, "SELECT A FROM N WHERE A <> 1")
	if len(res.Rows) != 0 {
		t.Errorf("null <>: %v", rowStrings(res))
	}
	res = mustExec(t, e, "SELECT A FROM N WHERE A IS NULL")
	if len(res.Rows) != 1 {
		t.Errorf("is null: %v", rowStrings(res))
	}
	// NOT IN with NULL in the list yields no rows.
	res = mustExec(t, e, "SELECT A FROM N WHERE A NOT IN (SELECT A FROM N WHERE A IS NULL)")
	if len(res.Rows) != 0 {
		t.Errorf("NOT IN with NULLs: %v", rowStrings(res))
	}
}

func TestCheckConstraint(t *testing.T) {
	e := NewOracle()
	mustExec(t, e, "CREATE TABLE C (A INT CHECK (A > 0))")
	mustExec(t, e, "INSERT INTO C VALUES (1)")
	err := mustFail(t, e, "INSERT INTO C VALUES (-1)")
	if !errors.Is(err, ErrConstraint) {
		t.Errorf("check: %v", err)
	}
	// Unknown passes (SQL semantics).
	mustExec(t, e, "INSERT INTO C VALUES (NULL)")
}

func TestInsertSelect(t *testing.T) {
	e := NewOracle()
	seed(t, e)
	mustExec(t, e, "CREATE TABLE COPY1 (ID INT, NAME VARCHAR(30))")
	res := mustExec(t, e, "INSERT INTO COPY1 SELECT ID, NAME FROM PRODUCT")
	if res.Affected != 3 {
		t.Errorf("insert-select affected %d", res.Affected)
	}
}

func TestLimitAndTop(t *testing.T) {
	e := NewOracle()
	seed(t, e)
	res := mustExec(t, e, "SELECT NAME FROM PRODUCT ORDER BY PRICE LIMIT 2")
	if len(res.Rows) != 2 || res.Rows[0][0].S != "plum" {
		t.Errorf("limit: %v", rowStrings(res))
	}
	res = mustExec(t, e, "SELECT TOP 1 NAME FROM PRODUCT ORDER BY PRICE DESC")
	if len(res.Rows) != 1 || res.Rows[0][0].S != "pear" {
		t.Errorf("top: %v", rowStrings(res))
	}
}

func TestModQuirks(t *testing.T) {
	correct := NewOracle()
	res := mustExec(t, correct, "SELECT MOD(-7, 3) AS M")
	if res.Rows[0][0].I != -1 {
		t.Fatalf("oracle MOD: %v", res.Rows[0][0])
	}
	plus := New(Config{Quirks: Quirks{ModNegativePlus: true}})
	res = mustExec(t, plus, "SELECT MOD(-7, 3) AS M")
	if res.Rows[0][0].I != 2 {
		t.Errorf("ModNegativePlus: %v", res.Rows[0][0])
	}
	abs := New(Config{Quirks: Quirks{ModNegativeAbs: true}})
	res = mustExec(t, abs, "SELECT MOD(-7, 3) AS M")
	if res.Rows[0][0].I != 1 {
		t.Errorf("ModNegativeAbs: %v", res.Rows[0][0])
	}
}

func TestFloatMulPrecisionQuirk(t *testing.T) {
	const q = "SELECT 1.000000119 * 8388608.0 AS X"
	correct := NewOracle()
	res1 := mustExec(t, correct, q)
	quirky := New(Config{Quirks: Quirks{FloatMulPrecisionLoss: true}})
	res2 := mustExec(t, quirky, q)
	if res1.Rows[0][0].F == res2.Rows[0][0].F {
		t.Errorf("precision quirk should alter result: %v vs %v", res1.Rows[0][0], res2.Rows[0][0])
	}
}

func TestLeftJoinDistinctViewQuirk(t *testing.T) {
	setup := func(e *Engine) {
		mustExec(t, e, "CREATE TABLE T1 (ID INT)")
		mustExec(t, e, "CREATE TABLE T2 (ID INT)")
		mustExec(t, e, "INSERT INTO T1 VALUES (1)")
		mustExec(t, e, "INSERT INTO T2 VALUES (1), (1)")
		mustExec(t, e, "CREATE VIEW DV AS SELECT DISTINCT ID FROM T2")
	}
	const q = "SELECT T1.ID FROM T1 LEFT OUTER JOIN DV ON T1.ID = DV.ID"
	correct := NewOracle()
	setup(correct)
	res := mustExec(t, correct, q)
	if len(res.Rows) != 1 {
		t.Fatalf("oracle rows: %v", rowStrings(res))
	}
	quirky := New(Config{Quirks: Quirks{LeftJoinDistinctViewDup: true}})
	setup(quirky)
	res = mustExec(t, quirky, q)
	if len(res.Rows) != 2 {
		t.Errorf("quirk should duplicate rows: %v", rowStrings(res))
	}
}

func TestBlankAggregateAliasQuirk(t *testing.T) {
	e := New(Config{Quirks: Quirks{BlankAggregateAliases: true}})
	mustExec(t, e, "CREATE TABLE T (A INT)")
	mustExec(t, e, "INSERT INTO T VALUES (2), (4)")
	res := mustExec(t, e, "SELECT AVG(A), SUM(A) FROM T")
	if res.Columns[0] != "" || res.Columns[1] != "" {
		t.Errorf("blank alias quirk: %v", res.Columns)
	}
	if res.Rows[0][0].F != 3 || res.Rows[0][1].I != 6 {
		t.Errorf("values must stay correct: %v", rowStrings(res))
	}
}

func TestUnaliasedAggregateErrorQuirk(t *testing.T) {
	e := New(Config{Quirks: Quirks{UnaliasedAggregateError: true}})
	mustExec(t, e, "CREATE TABLE T (A INT)")
	mustExec(t, e, "INSERT INTO T VALUES (2)")
	mustFail(t, e, "SELECT AVG(A) FROM T")
	// Aliased aggregates are unaffected.
	mustExec(t, e, "SELECT AVG(A) AS M FROM T")
}

func TestParenUnionSubqueryQuirks(t *testing.T) {
	setup := func(e *Engine) {
		mustExec(t, e, "CREATE TABLE P (ID INT)")
		mustExec(t, e, "INSERT INTO P VALUES (1), (2), (3)")
	}
	const q = "SELECT ID FROM P WHERE ID NOT IN ((SELECT ID FROM P WHERE ID = 1) UNION (SELECT ID FROM P WHERE ID = 2)) ORDER BY ID"
	correct := NewOracle()
	setup(correct)
	res := mustExec(t, correct, q)
	if len(res.Rows) != 1 || res.Rows[0][0].I != 3 {
		t.Fatalf("oracle paren union: %v", rowStrings(res))
	}
	pg := New(Config{Quirks: Quirks{ParenUnionSubqueryError: true}})
	setup(pg)
	mustFail(t, pg, q)
	ms := New(Config{Quirks: Quirks{ParenUnionSubqueryMisparse: true}})
	setup(ms)
	mustFail(t, ms, q)
}

func TestClusteredIndexQuirk(t *testing.T) {
	e := New(Config{Quirks: Quirks{ClusteredIndexError: true}})
	mustExec(t, e, "CREATE TABLE T (A INT)")
	mustFail(t, e, "CREATE CLUSTERED INDEX IX ON T (A)")
	// Plain indexes still work.
	mustExec(t, e, "CREATE INDEX IX2 ON T (A)")
}

func TestUniqueIndexEnforced(t *testing.T) {
	e := NewOracle()
	mustExec(t, e, "CREATE TABLE T (A INT)")
	mustExec(t, e, "INSERT INTO T VALUES (1)")
	mustExec(t, e, "CREATE UNIQUE INDEX UX ON T (A)")
	err := mustFail(t, e, "INSERT INTO T VALUES (1)")
	if !errors.Is(err, ErrConstraint) {
		t.Errorf("unique index: %v", err)
	}
}

func TestSnapshotRestore(t *testing.T) {
	e := NewOracle()
	seed(t, e)
	snap := e.Snapshot()
	mustExec(t, e, "DELETE FROM PRODUCT")
	mustExec(t, e, "DROP TABLE PRODUCT")
	e.Restore(snap)
	res := mustExec(t, e, "SELECT COUNT(*) AS N FROM PRODUCT")
	if res.Rows[0][0].I != 3 {
		t.Errorf("restore: %v", rowStrings(res))
	}
}

func TestScalarFunctions(t *testing.T) {
	e := NewOracle()
	cases := []struct {
		sql  string
		want string
	}{
		{"SELECT UPPER('ab') AS X", "AB"},
		{"SELECT LOWER('AB') AS X", "ab"},
		{"SELECT LENGTH('abc') AS X", "3"},
		{"SELECT SUBSTR('hello', 2, 3) AS X", "ell"},
		{"SELECT TRIM('  x  ') AS X", "x"},
		{"SELECT ABS(-3) AS X", "3"},
		{"SELECT ROUND(2.567, 1) AS X", "2.6"},
		{"SELECT COALESCE(NULL, 7) AS X", "7"},
		{"SELECT NULLIF(3, 3) AS X", "NULL"},
		{"SELECT SIGN(-9) AS X", "-1"},
		{"SELECT POWER(2, 10) AS X", "1024"},
		{"SELECT 'a' || 'b' AS X", "ab"},
	}
	for _, tc := range cases {
		res := mustExec(t, e, tc.sql)
		if got := res.Rows[0][0].String(); got != tc.want {
			t.Errorf("%s: got %q want %q", tc.sql, got, tc.want)
		}
	}
}

func TestDivisionByZero(t *testing.T) {
	e := NewOracle()
	err := mustFail(t, e, "SELECT 1 / 0 AS X")
	if !errors.Is(err, ErrDivideByZero) {
		t.Errorf("div by zero: %v", err)
	}
}

func TestBetweenAndLike(t *testing.T) {
	e := NewOracle()
	seed(t, e)
	res := mustExec(t, e, "SELECT NAME FROM PRODUCT WHERE PRICE BETWEEN 1 AND 2.6 ORDER BY NAME")
	if len(res.Rows) != 2 {
		t.Errorf("between: %v", rowStrings(res))
	}
	res = mustExec(t, e, "SELECT NAME FROM PRODUCT WHERE NAME LIKE 'p%'")
	if len(res.Rows) != 2 {
		t.Errorf("like: %v", rowStrings(res))
	}
	res = mustExec(t, e, "SELECT NAME FROM PRODUCT WHERE NAME LIKE '_lum'")
	if len(res.Rows) != 1 {
		t.Errorf("like underscore: %v", rowStrings(res))
	}
}

func TestDerivedTable(t *testing.T) {
	e := NewOracle()
	seed(t, e)
	res := mustExec(t, e, "SELECT T.N FROM (SELECT NAME AS N FROM PRODUCT WHERE PRICE > 2) T ORDER BY T.N")
	if len(res.Rows) != 2 {
		t.Errorf("derived table: %v", rowStrings(res))
	}
}

func TestAmbiguousColumn(t *testing.T) {
	e := NewOracle()
	mustExec(t, e, "CREATE TABLE A (ID INT)")
	mustExec(t, e, "CREATE TABLE B (ID INT)")
	mustExec(t, e, "INSERT INTO A VALUES (1)")
	mustExec(t, e, "INSERT INTO B VALUES (1)")
	mustFail(t, e, "SELECT ID FROM A, B")
}

func TestValueCoercion(t *testing.T) {
	e := NewOracle()
	mustExec(t, e, "CREATE TABLE T (A INT, B FLOAT, C VARCHAR(10))")
	mustExec(t, e, "INSERT INTO T VALUES ('12', 3, 42)")
	res := mustExec(t, e, "SELECT A, B, C FROM T")
	if res.Rows[0][0].K != types.KindInt || res.Rows[0][0].I != 12 {
		t.Errorf("string->int coercion: %v", res.Rows[0][0])
	}
	if res.Rows[0][1].K != types.KindFloat {
		t.Errorf("int->float coercion: %v", res.Rows[0][1])
	}
	if res.Rows[0][2].K != types.KindString || res.Rows[0][2].S != "42" {
		t.Errorf("int->string coercion: %v", res.Rows[0][2])
	}
	mustFail(t, e, "INSERT INTO T VALUES ('xy', 1, 'a')")
}
