package engine

import (
	"sort"

	"divsql/internal/sql/types"
)

// This file implements the copy-on-write consistent-snapshot subsystem.
//
// The engine's live state is READ UNCOMMITTED: writes become visible to
// every session the moment they execute, and a session's open
// transaction is represented only by its undo log. A state transfer that
// copied the live state verbatim could therefore ship uncommitted data —
// which is why resync historically had to wait for a global transaction
// boundary (every session idle), a boundary that may never come under
// sustained transactional load.
//
// Snapshot removes the wait. It produces a consistent image of the
// COMMITTED state at the instant of the call, with no quiescence:
//
//  1. Clone the catalog headers copy-on-write under the read lock. Maps,
//     Table headers and row-slice headers are copied; the row storage
//     ([]types.Value) is shared, because rows are immutable once written
//     (UPDATE replaces the row slice, it never mutates one in place).
//     The clone is O(catalog + row count), not O(data).
//  2. Rewind every open transaction on the clone: undo records are
//     functions over an abstract *state, so the same records that
//     implement ROLLBACK on the live plane peel the uncommitted changes
//     off the clone. Records target tables by name and rows by slice
//     identity; identities are preserved by the header clone, so the
//     rewind lands exactly on the transaction's own changes.
//
// The result is immutable: nothing in the engine retains a reference to
// the clone's headers, and the shared row storage is never written in
// place. Restore installs a snapshot by cloning headers again, so one
// State can be restored into any number of engines (and the donor keeps
// executing throughout).

// State is an immutable, consistent image of an engine's committed
// state, produced by Snapshot and consumed by Restore/RestoreScoped.
type State struct {
	Tables map[string]*Table
	Views  map[string]*View
	Indexs map[string]*Index
	Seqs   map[string]*Sequence
	// CommitSeq is the donor's commit high-water mark at the instant the
	// snapshot was taken: every mutation committed up to (and none after)
	// this point is included. Redo shipped on top of the image anchors
	// here.
	CommitSeq uint64
}

// cloneHeader copies a table's mutable headers — the struct, the outer
// Rows and Uniques slices — while sharing the immutable storage: column
// definitions, check expressions, inner keyset slices and the row value
// slices themselves.
func (t *Table) cloneHeader() *Table {
	// Field-by-field: Table embeds a latch and an atomic mutation
	// counter, neither of which may be copied. The clone starts with a
	// fresh latch, mutSeq 0 and its own index cache (two engines
	// invalidating each other's indexes would be a race).
	ct := &Table{
		Name:    t.Name,
		Cols:    t.Cols,
		Rows:    append([][]types.Value(nil), t.Rows...),
		PKCols:  t.PKCols,
		Uniques: append([][]int(nil), t.Uniques...),
		Checks:  t.Checks,
		ic:      newIndexCache(),
	}
	return ct
}

// cloneForSnapshot copies the state's headers copy-on-write. Views and
// indexes are immutable structs and are shared; sequences mutate in
// place (Next) and are copied; tables get cloneHeader.
func (s *state) cloneForSnapshot() *state {
	cl := &state{
		tables: make(map[string]*Table, len(s.tables)),
		views:  make(map[string]*View, len(s.views)),
		indexs: make(map[string]*Index, len(s.indexs)),
		seqs:   make(map[string]*Sequence, len(s.seqs)),
	}
	for n, t := range s.tables {
		cl.tables[n] = t.cloneHeader()
	}
	for n, v := range s.views {
		cl.views[n] = v
	}
	for n, ix := range s.indexs {
		cl.indexs[n] = ix
	}
	for n, sq := range s.seqs {
		cp := *sq
		cl.seqs[n] = &cp
	}
	return cl
}

// Snapshot returns a consistent image of the committed state at this
// instant. It never waits for transaction boundaries: open transactions
// are rewound on a copy-on-write clone while the live state — including
// those transactions — keeps executing. Concurrent readers proceed
// throughout (Snapshot holds only the read lock).
func (e *Engine) Snapshot() *State {
	e.mu.RLock()
	defer e.mu.RUnlock()
	// Writers no longer hold the engine write lock: DML runs under the
	// read lock plus per-table latches, and COMMIT bumps the sequence
	// under commitMu. Acquiring every table latch plus commitMu (in the
	// standard latch-then-commitMu order) excludes both, so the stamp
	// matches the cloned content exactly.
	names := make([]string, 0, len(e.st.tables))
	for n := range e.st.tables {
		names = append(names, n)
	}
	// latchTables requires sorted names: every latch holder acquires in
	// the same global order, so Snapshot can never form a lock-order
	// cycle with concurrent DML (or another Snapshot). Map iteration
	// order is random — sorting here is load-bearing, not cosmetic.
	sort.Strings(names)
	release := e.latchTables(names)
	defer release()
	e.commitMu.Lock()
	defer e.commitMu.Unlock()
	e.seqMu.Lock()
	cl := e.st.cloneForSnapshot()
	e.seqMu.Unlock()
	for s := range e.sessions {
		s.txMu.Lock()
		if s.inTxn {
			for i := len(s.undo) - 1; i >= 0; i-- {
				s.undo[i].fn(cl, true)
			}
		}
		s.txMu.Unlock()
	}
	return &State{
		Tables:    cl.tables,
		Views:     cl.views,
		Indexs:    cl.indexs,
		Seqs:      cl.seqs,
		CommitSeq: e.commitSeq.Load(),
	}
}

// CommitSeq returns the engine's commit high-water mark.
func (e *Engine) CommitSeq() uint64 {
	return e.commitSeq.Load()
}

// Restore replaces the engine state with a snapshot. The snapshot stays
// immutable: headers are cloned on installation, so the same State can
// be restored into several engines (or twice into one). Transactions
// open on any session are discarded, not rolled back: their undo records
// refer to the replaced state.
func (e *Engine) Restore(st *State) {
	e.mu.Lock()
	defer e.mu.Unlock()
	src := state{tables: st.Tables, views: st.Views, indexs: st.Indexs, seqs: st.Seqs}
	e.st = *src.cloneForSnapshot()
	e.discardAllTxnsLocked()
	e.bumpSchemaLocked()
}

// RestoreScoped replaces only the engine objects selected by keep with
// the snapshot's objects selected by keep, leaving the rest of the
// engine — including other sessions' open transactions over it —
// untouched. This is the per-stream resync primitive: a differential
// stream working in its own table namespace can realign one server with
// the oracle without disturbing sibling streams' state or transactions.
//
// The caller is responsible for the scoped sessions' transaction state
// (e.g. aborting its own open transaction first): RestoreScoped discards
// nothing, and undo records of a transaction that touched replaced
// objects would rewind into the newly installed state.
func (e *Engine) RestoreScoped(st *State, keep func(name string) bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for n := range e.st.tables {
		if keep(n) {
			delete(e.st.tables, n)
		}
	}
	for n := range e.st.views {
		if keep(n) {
			delete(e.st.views, n)
		}
	}
	for n := range e.st.indexs {
		if keep(n) {
			delete(e.st.indexs, n)
		}
	}
	for n := range e.st.seqs {
		if keep(n) {
			delete(e.st.seqs, n)
		}
	}
	for n, t := range st.Tables {
		if keep(n) {
			e.st.tables[n] = t.cloneHeader()
		}
	}
	for n, v := range st.Views {
		if keep(n) {
			e.st.views[n] = v
		}
	}
	for n, ix := range st.Indexs {
		if keep(n) {
			e.st.indexs[n] = ix
		}
	}
	for n, sq := range st.Seqs {
		if keep(n) {
			cp := *sq
			e.st.seqs[n] = &cp
		}
	}
	e.bumpSchemaLocked()
}

// Reset drops all state. Open transactions on every session are discarded.
func (e *Engine) Reset() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.st = newState()
	e.discardAllTxnsLocked()
	e.bumpSchemaLocked()
}
