package engine

import (
	"fmt"
	"sync"
	"testing"

	"divsql/internal/sql/parser"
)

// sessExec parses and executes one statement on a session.
func sessExec(t *testing.T, s *Session, sql string) *Result {
	t.Helper()
	st, err := parser.Parse(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	res, err := s.Exec(st)
	if err != nil {
		t.Fatalf("exec %q: %v", sql, err)
	}
	return res
}

// snapRowCount restores a snapshot into a scratch engine and counts a
// table's rows there, proving the image is self-contained.
func snapRowCount(t *testing.T, st *State, table string) int {
	t.Helper()
	scratch := New(Config{})
	scratch.Restore(st)
	n, err := scratch.TableRowCount(table)
	if err != nil {
		t.Fatalf("restored snapshot: %v", err)
	}
	return n
}

// A snapshot taken while a transaction is open must contain committed
// state only — no waiting for the transaction to close.
func TestSnapshotExcludesOpenTransaction(t *testing.T) {
	e := New(Config{})
	s1 := e.NewSession()
	s2 := e.NewSession()
	sessExec(t, s1, "CREATE TABLE T (A INT)")
	sessExec(t, s1, "INSERT INTO T VALUES (1), (2)")

	sessExec(t, s2, "BEGIN TRANSACTION")
	sessExec(t, s2, "INSERT INTO T VALUES (3)")
	sessExec(t, s2, "UPDATE T SET A = 10 WHERE A = 1")
	sessExec(t, s2, "DELETE FROM T WHERE A = 2")
	sessExec(t, s2, "CREATE TABLE U (B INT)")

	if !e.AnyInTxn() {
		t.Fatal("transaction must be open")
	}
	snap := e.Snapshot()

	// Live state sees the uncommitted changes (READ UNCOMMITTED)...
	if n, _ := e.TableRowCount("T"); n != 2 { // 1 inserted, 1 deleted
		t.Errorf("live rows: %d", n)
	}
	if !e.HasTable("U") {
		t.Error("live state must see uncommitted CREATE TABLE")
	}
	// ...but the snapshot holds the committed image.
	if n := snapRowCount(t, snap, "T"); n != 2 {
		t.Errorf("snapshot rows: %d, want the 2 committed rows", n)
	}
	scratch := New(Config{})
	scratch.Restore(snap)
	if scratch.HasTable("U") {
		t.Error("snapshot must not contain the uncommitted table")
	}
	res, err := execSQL(scratch, "SELECT A FROM T ORDER BY A")
	if err != nil {
		t.Fatal(err)
	}
	if got := rowStrings(res); len(got) != 2 || got[0] != "1" || got[1] != "2" {
		t.Errorf("snapshot content: %v", got)
	}

	// The open transaction is untouched by the snapshot and can still
	// commit on the live plane.
	sessExec(t, s2, "COMMIT")
	if n, _ := e.TableRowCount("T"); n != 2 {
		t.Errorf("after commit: %d", n)
	}
	if !e.HasTable("U") {
		t.Error("commit lost the created table")
	}
}

// The snapshot is immutable: mutations committed after the snapshot must
// not leak into the already-taken image (copy-on-write isolation).
func TestSnapshotImmutableUnderLaterWrites(t *testing.T) {
	e := New(Config{})
	s := e.NewSession()
	sessExec(t, s, "CREATE TABLE T (A INT)")
	sessExec(t, s, "INSERT INTO T VALUES (1)")
	snap := e.Snapshot()
	sessExec(t, s, "INSERT INTO T VALUES (2), (3)")
	sessExec(t, s, "UPDATE T SET A = 99 WHERE A = 1")
	sessExec(t, s, "CREATE SEQUENCE SQ1")
	if n := snapRowCount(t, snap, "T"); n != 1 {
		t.Errorf("snapshot mutated: %d rows", n)
	}
	scratch := New(Config{})
	scratch.Restore(snap)
	res, err := execSQL(scratch, "SELECT A FROM T")
	if err != nil {
		t.Fatal(err)
	}
	if got := rowStrings(res); len(got) != 1 || got[0] != "1" {
		t.Errorf("snapshot content changed: %v", got)
	}
}

// A snapshot rolled into a second engine must not alias the donor: both
// engines keep executing independently afterwards.
func TestRestoreIsolatesFromDonor(t *testing.T) {
	donor := New(Config{})
	sessExec(t, donor.NewSession(), "CREATE TABLE T (A INT)")
	sessExec(t, donor.NewSession(), "INSERT INTO T VALUES (1)")
	snap := donor.Snapshot()

	recv := New(Config{})
	recv.Restore(snap)
	sessExec(t, recv.NewSession(), "INSERT INTO T VALUES (2)")
	sessExec(t, donor.NewSession(), "INSERT INTO T VALUES (3)")

	if n, _ := donor.TableRowCount("T"); n != 2 {
		t.Errorf("donor rows: %d", n)
	}
	if n, _ := recv.TableRowCount("T"); n != 2 {
		t.Errorf("receiver rows: %d", n)
	}
	// The original snapshot is still pristine and restorable again.
	if n := snapRowCount(t, snap, "T"); n != 1 {
		t.Errorf("snapshot no longer pristine: %d rows", n)
	}
}

// Sequence values advanced inside an open transaction are rewound in the
// snapshot (this engine's sequences are transactional), and committed
// advances are included.
func TestSnapshotSequenceState(t *testing.T) {
	e := New(Config{})
	s := e.NewSession()
	sessExec(t, s, "CREATE SEQUENCE SQ1")
	sessExec(t, s, "CREATE TABLE T (A INT)")
	sessExec(t, s, "INSERT INTO T VALUES (1)")
	sessExec(t, s, "SELECT NEXTVAL(SQ1) AS N FROM T") // committed advance: next = 2

	s2 := e.NewSession()
	sessExec(t, s2, "BEGIN TRANSACTION")
	sessExec(t, s2, "SELECT NEXTVAL(SQ1) AS N FROM T") // uncommitted advance

	snap := e.Snapshot()
	scratch := New(Config{})
	scratch.Restore(snap)
	res, err := execSQL(scratch, "SELECT NEXTVAL(SQ1) AS N FROM T")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != 2 {
		t.Errorf("snapshot sequence next = %d, want 2 (committed advance only)", res.Rows[0][0].I)
	}
	sessExec(t, s2, "ROLLBACK")
}

// RestoreScoped replaces one namespace only: objects outside the scope —
// and transactions over them — survive.
func TestRestoreScopedLeavesSiblingsAlone(t *testing.T) {
	donor := New(Config{})
	d := donor.NewSession()
	sessExec(t, d, "CREATE TABLE S1_T (A INT)")
	sessExec(t, d, "INSERT INTO S1_T VALUES (1), (2)")
	snap := donor.Snapshot()

	e := New(Config{})
	mine := e.NewSession()
	sib := e.NewSession()
	sessExec(t, mine, "CREATE TABLE S1_T (A INT)")
	sessExec(t, mine, "INSERT INTO S1_T VALUES (99)") // diverged content
	sessExec(t, sib, "CREATE TABLE S2_T (B INT)")
	sessExec(t, sib, "BEGIN TRANSACTION")
	sessExec(t, sib, "INSERT INTO S2_T VALUES (7)")

	e.RestoreScoped(snap, func(name string) bool {
		return len(name) >= 3 && name[:3] == "S1_"
	})

	// The scoped namespace now mirrors the donor.
	if n, _ := e.TableRowCount("S1_T"); n != 2 {
		t.Errorf("scoped table rows: %d", n)
	}
	// The sibling's table and its open transaction are untouched.
	if n, _ := e.TableRowCount("S2_T"); n != 1 {
		t.Errorf("sibling table rows: %d", n)
	}
	if !sib.InTxn() {
		t.Error("sibling transaction discarded by scoped restore")
	}
	sessExec(t, sib, "ROLLBACK")
	if n, _ := e.TableRowCount("S2_T"); n != 0 {
		t.Errorf("sibling rollback after scoped restore: %d rows", n)
	}
}

// CommitSeq advances with committed work, not with open transactions,
// and is stamped into snapshots.
func TestCommitSeqHighWaterMark(t *testing.T) {
	e := New(Config{})
	s := e.NewSession()
	base := e.CommitSeq()
	sessExec(t, s, "CREATE TABLE T (A INT)")
	sessExec(t, s, "INSERT INTO T VALUES (1)")
	if got := e.CommitSeq(); got != base+2 {
		t.Errorf("commit seq after 2 autocommits: %d, want %d", got, base+2)
	}
	sessExec(t, s, "BEGIN TRANSACTION")
	sessExec(t, s, "INSERT INTO T VALUES (2)")
	if got := e.CommitSeq(); got != base+2 {
		t.Errorf("open transaction advanced the mark: %d", got)
	}
	snap := e.Snapshot()
	if snap.CommitSeq != base+2 {
		t.Errorf("snapshot CommitSeq: %d, want %d", snap.CommitSeq, base+2)
	}
	sessExec(t, s, "COMMIT")
	if got := e.CommitSeq(); got != base+3 {
		t.Errorf("commit seq after COMMIT: %d, want %d", got, base+3)
	}
}

// Consistency under sustained concurrent transactional load (run with
// -race): writers continuously hold open transactions that insert a
// fixed-size batch and then commit or roll back; snapshots taken at
// arbitrary instants must always show a whole number of committed
// batches per writer's table. A snapshot that leaked uncommitted rows or
// tore a batch would break the invariant.
func TestSnapshotConsistentUnderLoad(t *testing.T) {
	const (
		writers = 4
		txns    = 40
		batch   = 3
	)
	e := New(Config{})
	setup := e.NewSession()
	for w := 0; w < writers; w++ {
		sessExec(t, setup, fmt.Sprintf("CREATE TABLE W%d (A INT)", w))
	}

	var writersWG sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		writersWG.Add(1)
		go func(w int) {
			defer writersWG.Done()
			s := e.NewSession()
			defer s.Close()
			exec := func(sql string) bool {
				st, err := parser.Parse(sql)
				if err == nil {
					_, err = s.Exec(st)
				}
				if err != nil {
					t.Errorf("writer %d: %q: %v", w, sql, err)
					return false
				}
				return true
			}
			for i := 0; i < txns; i++ {
				if !exec("BEGIN TRANSACTION") {
					return
				}
				for b := 0; b < batch; b++ {
					if !exec(fmt.Sprintf("INSERT INTO W%d VALUES (%d)", w, i*batch+b)) {
						return
					}
				}
				end := "COMMIT"
				if i%3 == 0 {
					end = "ROLLBACK"
				}
				if !exec(end) {
					return
				}
			}
		}(w)
	}

	var snapErr error
	var snaps int
	snapDone := make(chan struct{})
	go func() {
		defer close(snapDone)
		// stop is checked at the bottom so at least one snapshot is
		// always taken, even if the scheduler parks this goroutine
		// until after the writers finish (common under -race).
		for {
			snap := e.Snapshot()
			snaps++
			scratch := New(Config{})
			scratch.Restore(snap)
			for w := 0; w < writers; w++ {
				n, err := scratch.TableRowCount(fmt.Sprintf("W%d", w))
				if err != nil {
					snapErr = err
					return
				}
				if n%batch != 0 {
					snapErr = fmt.Errorf("torn snapshot: table W%d has %d rows (not a multiple of %d)", w, n, batch)
					return
				}
			}
			select {
			case <-stop:
				return
			default:
			}
		}
	}()

	writersWG.Wait()
	close(stop)
	<-snapDone
	if snapErr != nil {
		t.Fatal(snapErr)
	}
	if snaps == 0 {
		t.Error("no snapshot taken during the load window")
	}
}

// A statement that fails mid-way must leave no partial effects: the
// rows it already applied carry no undo record, so a leak here would
// survive ROLLBACK and contaminate the committed snapshot image.
func TestFailedStatementIsAtomic(t *testing.T) {
	e := New(Config{})
	s := e.NewSession()
	sessExec(t, s, "CREATE TABLE T (A INT PRIMARY KEY)")
	sessExec(t, s, "BEGIN TRANSACTION")

	st, err := parser.Parse("INSERT INTO T VALUES (1), (1)")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec(st); err == nil {
		t.Fatal("duplicate-key insert must fail")
	}
	if n, _ := e.TableRowCount("T"); n != 0 {
		t.Errorf("failed INSERT left %d partial rows", n)
	}
	if n := snapRowCount(t, e.Snapshot(), "T"); n != 0 {
		t.Errorf("snapshot leaked %d uncommitted rows of a failed statement", n)
	}

	sessExec(t, s, "INSERT INTO T VALUES (1), (2)")
	// Updating every row to the same key fails on the second row; the
	// first row's applied update must be reverted.
	st, err = parser.Parse("UPDATE T SET A = 3")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec(st); err == nil {
		t.Fatal("conflicting update must fail")
	}
	// Read through the writing session: other sessions see the committed
	// (empty) state now that reads are view-isolated, but the transaction
	// itself must see its inserts with the partial update reverted.
	sel, err := parser.Parse("SELECT A FROM T ORDER BY A")
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Exec(sel)
	if err != nil {
		t.Fatal(err)
	}
	if got := rowStrings(res); len(got) != 2 || got[0] != "1" || got[1] != "2" {
		t.Errorf("failed UPDATE left partial effects: %v", got)
	}

	sessExec(t, s, "ROLLBACK")
	if n, _ := e.TableRowCount("T"); n != 0 {
		t.Errorf("rollback left %d rows", n)
	}
}

// Snapshot latches every table before stamping the commit mark; it must
// acquire those latches in sorted name order — the same global order
// every multi-table DML statement uses — or a Snapshot racing a writer
// (or another Snapshot) can form a lock-order cycle and deadlock the
// engine. This test fails by timeout if the ordering regresses: the
// multi-table statements latch {SRC, DST} sorted while Snapshot latches
// the full catalog concurrently. Run with -race.
func TestSnapshotLatchOrderingUnderMultiTableDML(t *testing.T) {
	e := NewOracle()
	setup := e.NewSession()
	// Enough tables that a random acquisition order is overwhelmingly
	// likely to invert at least one sorted pair per Snapshot.
	for i := 0; i < 8; i++ {
		sessExec(t, setup, fmt.Sprintf("CREATE TABLE T%d (A INT)", i))
	}
	sessExec(t, setup, "CREATE TABLE SRC (A INT)")
	sessExec(t, setup, "CREATE TABLE DST (A INT)")
	sessExec(t, setup, "INSERT INTO SRC VALUES (1)")

	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := e.NewSession()
			defer s.Close()
			for i := 0; i < 200; i++ {
				// Multi-table statements: INSERT..SELECT latches both
				// SRC and DST; the subquery DELETE does too.
				if _, err := gexec(s, "INSERT INTO DST SELECT A FROM SRC"); err != nil {
					t.Errorf("insert-select: %v", err)
					return
				}
				if _, err := gexec(s, "DELETE FROM DST WHERE A IN (SELECT A FROM SRC)"); err != nil {
					t.Errorf("delete-subquery: %v", err)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			if st := e.Snapshot(); st == nil {
				t.Error("nil snapshot")
				return
			}
		}
	}()
	wg.Wait()
}
