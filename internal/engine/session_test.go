package engine

import (
	"fmt"
	"sync"
	"testing"

	"divsql/internal/sql/ast"
	"divsql/internal/sql/parser"
)

func sexec(t *testing.T, s *Session, sql string) *Result {
	t.Helper()
	st, err := parser.Parse(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	res, err := s.Exec(st)
	if err != nil {
		t.Fatalf("exec %q: %v", sql, err)
	}
	return res
}

func sexecErr(t *testing.T, s *Session, sql string) error {
	t.Helper()
	st, err := parser.Parse(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	_, err = s.Exec(st)
	return err
}

func TestSessionsHaveIndependentTransactions(t *testing.T) {
	e := NewOracle()
	a, b := e.NewSession(), e.NewSession()
	sexec(t, a, "CREATE TABLE T (X INT)")

	sexec(t, a, "BEGIN TRANSACTION")
	if err := sexecErr(t, b, "COMMIT"); err == nil {
		t.Fatal("COMMIT on session b must fail: a's BEGIN is not b's transaction")
	}
	if !a.InTxn() || b.InTxn() {
		t.Fatalf("txn scope leaked: a=%v b=%v", a.InTxn(), b.InTxn())
	}
	sexec(t, a, "INSERT INTO T VALUES (1)")
	sexec(t, a, "ROLLBACK")
	if n, _ := e.TableRowCount("T"); n != 0 {
		t.Fatalf("rollback left %d rows", n)
	}

	// b's transaction commits independently of a's.
	sexec(t, b, "BEGIN TRANSACTION")
	sexec(t, b, "INSERT INTO T VALUES (2)")
	sexec(t, a, "BEGIN TRANSACTION")
	sexec(t, a, "ROLLBACK")
	sexec(t, b, "COMMIT")
	if n, _ := e.TableRowCount("T"); n != 1 {
		t.Fatalf("b's commit lost: %d rows", n)
	}
}

func TestSessionCloseRollsBack(t *testing.T) {
	e := NewOracle()
	a := e.NewSession()
	sexec(t, a, "CREATE TABLE T (X INT)")
	sexec(t, a, "BEGIN TRANSACTION")
	sexec(t, a, "INSERT INTO T VALUES (1)")
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if n, _ := e.TableRowCount("T"); n != 0 {
		t.Fatalf("close did not roll back: %d rows", n)
	}
	st, _ := parser.Parse("SELECT X FROM T")
	if _, err := a.Exec(st); err != ErrSessionClosed {
		t.Fatalf("closed session accepted a statement: %v", err)
	}
	if e.SessionCount() != 0 {
		t.Fatalf("session not unregistered: %d", e.SessionCount())
	}
}

func TestAbortAllRollsBackEverySession(t *testing.T) {
	e := NewOracle()
	a, b := e.NewSession(), e.NewSession()
	sexec(t, a, "CREATE TABLE TA (X INT)")
	sexec(t, a, "CREATE TABLE TB (X INT)")
	sexec(t, a, "BEGIN TRANSACTION")
	sexec(t, a, "INSERT INTO TA VALUES (1)")
	sexec(t, b, "BEGIN TRANSACTION")
	sexec(t, b, "INSERT INTO TB VALUES (1)")
	if !e.AnyInTxn() {
		t.Fatal("AnyInTxn must see the open transactions")
	}
	e.AbortAll()
	if a.InTxn() || b.InTxn() || e.AnyInTxn() {
		t.Fatal("AbortAll left a transaction open")
	}
	for _, tbl := range []string{"TA", "TB"} {
		if n, _ := e.TableRowCount(tbl); n != 0 {
			t.Fatalf("table %s kept %d uncommitted rows", tbl, n)
		}
	}
}

// TestConcurrentDisjointTableTransactions runs N sessions, each doing
// transactional work against its own table, in parallel. Run with -race.
func TestConcurrentDisjointTableTransactions(t *testing.T) {
	e := NewOracle()
	const sessions = 8
	const rounds = 25
	setup := e.NewSession()
	for i := 0; i < sessions; i++ {
		sexec(t, setup, fmt.Sprintf("CREATE TABLE T%d (X INT)", i))
	}
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := e.NewSession()
			defer s.Close()
			tbl := fmt.Sprintf("T%d", i)
			for r := 0; r < rounds; r++ {
				sexec(t, s, "BEGIN TRANSACTION")
				sexec(t, s, fmt.Sprintf("INSERT INTO %s VALUES (%d)", tbl, r))
				if r%3 == 0 {
					sexec(t, s, "ROLLBACK")
				} else {
					sexec(t, s, "COMMIT")
				}
				res := sexec(t, s, fmt.Sprintf("SELECT COUNT(*) AS N FROM %s", tbl))
				if len(res.Rows) != 1 {
					t.Errorf("count query: %v", res)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for i := 0; i < sessions; i++ {
		want := 0
		for r := 0; r < rounds; r++ {
			if r%3 != 0 {
				want++
			}
		}
		if n, _ := e.TableRowCount(fmt.Sprintf("T%d", i)); n != want {
			t.Errorf("table T%d has %d rows, want %d", i, n, want)
		}
	}
}

// TestSequenceSelectsClassifiedAsWrites: a SELECT that advances a
// sequence (directly or through a view) mutates engine state, so the
// session must classify it as a write and it must still work — and
// actually advance the sequence — when issued like any other query.
func TestSequenceSelectsClassifiedAsWrites(t *testing.T) {
	e := NewOracle()
	s := e.NewSession()
	sexec(t, s, "CREATE SEQUENCE SQ")
	sexec(t, s, "CREATE VIEW VQ AS SELECT NEXTVAL('SQ') AS V")

	for _, q := range []string{"SELECT NEXTVAL('SQ') AS V", "SELECT V FROM VQ"} {
		st, err := parser.Parse(q)
		if err != nil {
			t.Fatal(err)
		}
		sel, ok := st.(*ast.Select)
		if !ok {
			t.Fatalf("%q did not parse to a SELECT", q)
		}
		if !e.SelectAdvancesSequences(sel) {
			t.Errorf("%q must be classified as sequence-advancing", q)
		}
	}
	if e.SelectAdvancesSequences(mustSelect(t, "SELECT 1 AS X")) {
		t.Error("plain SELECT misclassified as sequence-advancing")
	}

	first := sexec(t, s, "SELECT NEXTVAL('SQ') AS V").Rows[0][0].I
	second := sexec(t, s, "SELECT V FROM VQ").Rows[0][0].I
	if second != first+1 {
		t.Errorf("sequence did not advance: %d then %d", first, second)
	}
}

// TestRollbackSurvivesInterleavedStatements: undo entries target rows
// by identity, so a rollback interleaved with another session's writes
// to the same table neither panics nor disturbs the other session's
// rows (the engine's cross-session rollback-safety guarantee).
func TestRollbackSurvivesInterleavedStatements(t *testing.T) {
	e := NewOracle()
	a, b := e.NewSession(), e.NewSession()
	sexec(t, a, "CREATE TABLE T (ID INT, V INT)")
	for i := 1; i <= 4; i++ {
		sexec(t, a, fmt.Sprintf("INSERT INTO T VALUES (%d, %d)", i, i*10))
	}

	// UPDATE in a's txn, then b compacts the table underneath (the old
	// positional undo would index out of range here), then a rolls back.
	sexec(t, a, "BEGIN TRANSACTION")
	sexec(t, a, "UPDATE T SET V = 99 WHERE ID = 4")
	sexec(t, b, "DELETE FROM T WHERE ID = 1")
	sexec(t, b, "DELETE FROM T WHERE ID = 2")
	sexec(t, a, "ROLLBACK")
	res := sexec(t, a, "SELECT V FROM T WHERE ID = 4")
	if len(res.Rows) != 1 || res.Rows[0][0].I != 40 {
		t.Fatalf("update not rolled back: %v", res.Rows)
	}
	if n, _ := e.TableRowCount("T"); n != 2 {
		t.Fatalf("b's deletes disturbed by rollback: %d rows", n)
	}

	// INSERT in a's txn, b inserts afterwards; a's rollback must remove
	// only a's row (the old tail-truncate undo would remove b's).
	sexec(t, a, "BEGIN TRANSACTION")
	sexec(t, a, "INSERT INTO T VALUES (5, 50)")
	sexec(t, b, "INSERT INTO T VALUES (6, 60)")
	sexec(t, a, "ROLLBACK")
	if res := sexec(t, a, "SELECT ID FROM T WHERE ID = 5"); len(res.Rows) != 0 {
		t.Fatal("a's uncommitted insert survived rollback")
	}
	if res := sexec(t, a, "SELECT ID FROM T WHERE ID = 6"); len(res.Rows) != 1 {
		t.Fatal("rollback removed b's committed insert")
	}

	// DELETE in a's txn, b inserts meanwhile; a's rollback must restore
	// the deleted rows without erasing b's insert (the old snapshot
	// restore would).
	sexec(t, a, "BEGIN TRANSACTION")
	sexec(t, a, "DELETE FROM T WHERE ID = 3")
	sexec(t, b, "INSERT INTO T VALUES (7, 70)")
	sexec(t, a, "ROLLBACK")
	if res := sexec(t, a, "SELECT ID FROM T WHERE ID = 3"); len(res.Rows) != 1 {
		t.Fatal("deleted row not restored by rollback")
	}
	if res := sexec(t, a, "SELECT ID FROM T WHERE ID = 7"); len(res.Rows) != 1 {
		t.Fatal("rollback erased b's committed insert")
	}
}

// TestViewSeqClassificationStaysFresh: dropping and recreating a view
// deeper in a chain must change how queries over the outer view are
// classified — the flag is resolved per statement, not stored at
// CREATE VIEW.
func TestViewSeqClassificationStaysFresh(t *testing.T) {
	e := NewOracle()
	s := e.NewSession()
	sexec(t, s, "CREATE SEQUENCE SQ")
	sexec(t, s, "CREATE VIEW V1 AS SELECT 1 AS V")
	sexec(t, s, "CREATE VIEW V2 AS SELECT V FROM V1")
	if e.SelectAdvancesSequences(mustSelect(t, "SELECT V FROM V2")) {
		t.Fatal("plain view chain misclassified")
	}
	sexec(t, s, "DROP VIEW V2")
	sexec(t, s, "DROP VIEW V1")
	sexec(t, s, "CREATE VIEW V1 AS SELECT NEXTVAL('SQ') AS V")
	sexec(t, s, "CREATE VIEW V2 AS SELECT V FROM V1")
	if !e.SelectAdvancesSequences(mustSelect(t, "SELECT V FROM V2")) {
		t.Fatal("recreated sequence-advancing view chain not detected")
	}
}

func mustSelect(t *testing.T, q string) *ast.Select {
	t.Helper()
	st, err := parser.Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	return st.(*ast.Select)
}
