// Package engine implements the in-memory relational engine that underlies
// every simulated SQL server. One engine codebase is shared by the four
// simulated servers; diversity is created above it by the dialect layer
// (what each server accepts) and the quirk/fault layer (how each server
// misbehaves). A pristine engine — default Config, zero Quirks — serves as
// the correctness oracle for the fault-diversity study.
package engine

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"divsql/internal/engine/plan"
	"divsql/internal/sql/ast"
	"divsql/internal/sql/types"
)

// Sentinel errors. SQLError wraps statement-level failures so callers can
// distinguish "the server returned an error message" (self-evident
// failure, in the paper's terms) from internal Go errors.
var (
	// ErrTableNotFound is returned for references to missing tables.
	ErrTableNotFound = errors.New("table or view not found")
	// ErrDuplicateObject is returned when a CREATE collides with an
	// existing object.
	ErrDuplicateObject = errors.New("object already exists")
	// ErrConstraint is returned for constraint violations.
	ErrConstraint = errors.New("constraint violation")
	// ErrType is returned for type errors.
	ErrType = errors.New("type error")
	// ErrNoTransaction is returned for COMMIT/ROLLBACK outside a
	// transaction.
	ErrNoTransaction = errors.New("no transaction in progress")
)

// ResultKind classifies what a Result carries.
type ResultKind int

// Result kinds.
const (
	ResultRows ResultKind = iota + 1
	ResultCount
	ResultDDL
)

// Result is the outcome of one successfully executed statement.
type Result struct {
	Kind     ResultKind
	Columns  []string
	Rows     [][]types.Value
	Affected int64
}

// Clone returns a deep copy of the result (rows share immutable values).
func (r *Result) Clone() *Result {
	if r == nil {
		return nil
	}
	cp := &Result{Kind: r.Kind, Affected: r.Affected}
	cp.Columns = append([]string(nil), r.Columns...)
	cp.Rows = make([][]types.Value, len(r.Rows))
	for i, row := range r.Rows {
		cp.Rows[i] = append([]types.Value(nil), row...)
	}
	return cp
}

// Quirks are always-present behavioural deviations of a simulated server's
// engine. Each models one of the shared ("coincident") faults reported in
// the paper; a quirk only becomes a failure when a demand hits its failure
// region, exactly as for the real products.
type Quirks struct {
	// AllowDropTableOnView lets DROP TABLE remove a view (IB bug 223512;
	// shared by PG). Violates SQL-92, which requires DROP VIEW.
	AllowDropTableOnView bool
	// SkipDefaultTypeCheck skips validation of DEFAULT values against the
	// column type at CREATE TABLE time (IB bug 217042(3); shared by MS).
	SkipDefaultTypeCheck bool
	// BlankAggregateAliases makes unaliased AVG/SUM result columns carry
	// empty names (IB bug 222476's manifestation on IB).
	BlankAggregateAliases bool
	// UnaliasedAggregateError makes a SELECT with an unaliased AVG/SUM
	// fail with a spurious error (bug 222476's manifestation on MS).
	UnaliasedAggregateError bool
	// LeftJoinDistinctViewDup skips the DISTINCT of a view expanded as the
	// right side of a LEFT OUTER JOIN, yielding duplicated rows
	// (MS bug 58544; shared by IB).
	LeftJoinDistinctViewDup bool
	// ClusteredIndexError fails any CREATE CLUSTERED INDEX (the PG bug,
	// fixed in 7.0.3, that made five MSSQL bug scripts fail in PG).
	ClusteredIndexError bool
	// ParenUnionSubqueryError fails a [NOT] IN subquery built from
	// parenthesized UNION branches (PG bug 43's manifestation on PG: a
	// parsing error).
	ParenUnionSubqueryError bool
	// ParenUnionSubqueryMisparse makes the same construct return a
	// spurious "column not found" error after building an incorrect parse
	// tree (bug 43's manifestation on MS).
	ParenUnionSubqueryMisparse bool
	// FloatMulPrecisionLoss rounds float multiplication through 32-bit
	// precision (PG bug 77; shared by MS). Identical on both servers.
	FloatMulPrecisionLoss bool
	// ModNegativePlus makes MOD with a negative dividend return
	// result+|divisor| (OR bug 1059835).
	ModNegativePlus bool
	// ModNegativeAbs makes MOD with a negative dividend return the
	// absolute value (the distinct PG manifestation of the same failure
	// region, so the two servers return different incorrect results).
	ModNegativeAbs bool
}

// Builtin implements one scalar or aggregate SQL function.
type Builtin struct {
	Name string
	// MinArgs/MaxArgs bound the argument count (MaxArgs -1 = variadic).
	MinArgs, MaxArgs int
	// Fn evaluates the function. For aggregate functions Fn is nil and
	// Aggregate is set instead.
	Fn func(ctx *FuncContext, args []types.Value) (types.Value, error)
	// Aggregate marks the function as an aggregate (AVG, SUM, ...).
	Aggregate bool
	// SeqFunc marks sequence-advancing functions (NEXTVAL, GEN_ID),
	// whose first argument is a sequence name rather than a value.
	SeqFunc bool
}

// FuncContext gives builtins access to the executing session (and through
// it the engine state, e.g. for sequences).
type FuncContext struct {
	Sess *Session
}

// Config parameterizes an engine instance. The zero Config, completed by
// Defaults, is the pristine oracle configuration.
type Config struct {
	// ResolveType maps a dialect type name to a storage kind. When nil,
	// the permissive resolver (union of all dialects) is used.
	ResolveType func(ast.TypeName) (types.Kind, error)
	// Funcs maps upper-cased function names to implementations. When nil,
	// the full builtin set is available.
	Funcs map[string]Builtin
	// Quirks are the engine-level behavioural deviations.
	Quirks Quirks
	// Bind is the server's bind-time argument coercion rule set (the
	// zero value — the oracle configuration — binds arguments verbatim).
	Bind BindRules
}

// Engine is one in-memory SQL engine shared by any number of sessions.
//
// Locking: the RWMutex guards the catalog maps and the session
// registry. DDL, ROLLBACK and state transfers take it exclusively;
// everything else holds it in read mode. Within the read mode, row data
// is guarded by per-table latches (Table.latch) acquired in sorted name
// order — DML latches every table its statement can touch, so writers
// to disjoint tables run in parallel. Pure queries take no latches at
// all: they execute against committed read views (readview.go), whose
// per-table images are materialized lazily under the table latch and
// immutable afterwards.
//
// The live state is one copy shared by every session; a session's open
// transaction is represented by its undo log. The committed image is
// derived on demand — wholesale by Snapshot (snapshot.go), per table by
// the read-view machinery — by rewinding open transactions' undo
// records on copy-on-write clones.
type Engine struct {
	mu  sync.RWMutex
	cfg Config
	st  state

	// commitSeq is the commit high-water mark: it advances on every
	// committed state-changing statement or transaction, and is stamped
	// into snapshots (so resync redo can be anchored to the image) and
	// read views (staleness checks). Atomic: autocommit writers bump it
	// under the read lock.
	commitSeq atomic.Uint64

	// commitMu makes a latch-free COMMIT's mark bump and undo-log clear
	// atomic with respect to Snapshot, so a snapshot's stamp always
	// matches its content.
	commitMu sync.Mutex

	// seqMu guards sequence cursors (Sequence.Next): sequences advance
	// from DML expressions and sequence-advancing SELECTs under the
	// read lock, outside any table latch.
	seqMu sync.Mutex

	// committedSchema is the schema-version stamp of the committed
	// catalog: equal to schemaVersion except while a transaction holds
	// uncommitted DDL. Written only under the exclusive lock; read
	// views stamp compiled plans with it.
	committedSchema uint64

	// curView caches the shared committed read view; viewMu
	// single-flights rebuilds; viewGen invalidates views across state
	// transfers (Restore/Reset), which replace state without advancing
	// commitSeq.
	curView atomic.Pointer[readView]
	viewMu  sync.Mutex
	viewGen atomic.Uint64

	// Read-view and latch observability counters (obs.go).
	viewBuilds  atomic.Uint64
	viewHits    atomic.Uint64
	viewReuses  atomic.Uint64
	matCleans   atomic.Uint64
	matRewinds  atomic.Uint64
	latchWaits  atomic.Uint64
	latchWaitNs atomic.Uint64

	// schemaEpoch is a monotonic allocator of schema generations and
	// schemaVersion the current stamp. Every DDL (and every state
	// transfer) allocates a fresh epoch; a transaction rollback restores
	// the pre-transaction stamp through the undo log without reusing the
	// epochs minted inside the aborted transaction. Compiled plans are
	// validated by stamp equality, so a plan compiled against a schema
	// generation that was rolled back can never validate again — see
	// plan.Cache.
	schemaEpoch   uint64
	schemaVersion uint64

	// planMemo and planCache are the two tiers of the shared compiled-plan
	// cache — see compiled.go. planMemo is keyed by AST pointer identity
	// (prepared statements re-execute the same *ast.Select), planCache by
	// rendered statement text (inline and cross-session reuse).
	planMemo    sync.Map      // *ast.Select -> *memoEntry
	planMemoLen atomic.Int64  // approximate planMemo size, for the cap
	memoHits    atomic.Uint64 // memo-tier hits, folded into PlanCacheStats
	planCache   *plan.Cache

	// pathExecs counts compiled SELECT executions by access path (indexed
	// by plan.AccessPath); interpSelects counts dispatches that fell back
	// to the interpreter (ineligible shapes). Atomic so the read-lock
	// SELECT fast path records without extra synchronization.
	pathExecs     [3]atomic.Uint64
	interpSelects atomic.Uint64

	// sessions registers every live session (including the lazily created
	// default session def, which backs the sessionless compatibility API).
	sessions map[*Session]struct{}
	def      *Session
}

// state is the catalog + data of one engine: the live plane, or a
// copy-on-write clone of it being rewound into a committed snapshot.
// Undo records (undoFn) apply to either.
type state struct {
	tables map[string]*Table
	views  map[string]*View
	indexs map[string]*Index
	seqs   map[string]*Sequence
}

// Table is a base table.
type Table struct {
	Name    string
	Cols    []Column
	Rows    [][]types.Value
	PKCols  []int
	Uniques [][]int
	Checks  []ast.Expr

	// latch serializes row mutations of this table: DML acquires the
	// latches of every table its statement can touch, in sorted name
	// order, while holding the engine read lock. Read-view
	// materialization takes it briefly to capture a stable row image.
	latch sync.Mutex

	// mutSeq counts row mutations (insert/update/delete, including
	// their undos) and versions the lazily built lookup indexes in ic:
	// an index built at mutSeq m is valid exactly while mutSeq == m. It
	// also validates read-view captures (readview.go). Mutated under
	// the table latch or the engine write lock; atomic so view builds
	// can sample it under the read lock alone. ic is non-nil on every
	// engine-resident table (execCreateTable, cloneHeader and
	// captureTable allocate it).
	mutSeq atomic.Uint64
	ic     *indexCache

	// baseSeq counts the row mutations that invalidate existing row
	// positions (update, delete, and every undo application); pure
	// appends bump mutSeq alone. Lookup indexes are valid per baseSeq
	// and extend incrementally over appended rows, so insert-heavy
	// tables keep O(new rows) index maintenance instead of O(table)
	// rebuilds. Mutated like mutSeq (table latch or engine write lock).
	baseSeq atomic.Uint64

	// rowsShared marks that a read view captured the live Rows slice
	// header (readview.go materialize, clean path). While set, the first
	// in-place row replacement must install a fresh backing array so the
	// capture stays a stable committed image; mutations that already
	// install a fresh slice (delete, insert-undo) just clear it. Guarded
	// by the table latch or the exclusive engine lock, like Rows itself.
	rowsShared bool

	// capIC is the index-cache lineage shared by successive clean view
	// captures of this table: while baseSeq is unchanged (appends only),
	// each new capture inherits the previous captures' indexes and
	// extends them over the appended rows. Guarded by the table latch.
	capIC     *indexCache
	capICBase uint64

	// colVer versions each column's stored values: an in-place row
	// replacement (UPDATE and its undo) bumps the versions of exactly the
	// columns it sets, so lookup indexes — which record the versions of
	// their key columns at build time — survive updates to non-key
	// columns. Positions never move on replacement (baseSeq stays), and
	// the executor re-reads current rows for every candidate, so an index
	// is exact while its key columns' versions are unchanged. nil means
	// all-zero (no column updated yet); guarded like Rows (table latch or
	// exclusive engine lock), and captured by value into view captures.
	colVer []uint64
}

// touch invalidates the table's lazily built indexes after a row
// mutation. Called under the table latch (or the engine write lock) at
// every site that changes Rows — including undo application.
func (t *Table) touch() { t.mutSeq.Add(1) }

// touchBase additionally invalidates existing row positions (delete and
// every undo that moves rows): lookup indexes built at an earlier
// baseSeq must be discarded, not extended. Called under the same
// locking as touch.
func (t *Table) touchBase() {
	t.baseSeq.Add(1)
	t.mutSeq.Add(1)
}

// colVerOf returns the stored-value version of one column (zero until
// its first in-place replacement).
func (t *Table) colVerOf(ci int) uint64 {
	if ci < len(t.colVer) {
		return t.colVer[ci]
	}
	return 0
}

// bumpCols records an in-place replacement of the given columns'
// values: indexes keyed on any of them are invalidated, indexes over
// untouched columns stay valid (positions don't move). Called under the
// same locking as touch.
func (t *Table) bumpCols(cols []int) {
	for _, ci := range cols {
		if ci >= len(t.colVer) {
			nv := make([]uint64, len(t.Cols))
			copy(nv, t.colVer)
			t.colVer = nv
		}
		if ci < len(t.colVer) {
			t.colVer[ci]++
		}
	}
	t.mutSeq.Add(1)
}

// Column is one column of a base table.
type Column struct {
	Name    string
	Kind    types.Kind
	NotNull bool
	// Default is the declared default expression (nil when absent).
	Default ast.Expr
	// RawDefault marks a default stored without type validation (the
	// SkipDefaultTypeCheck quirk), so it is applied verbatim on insert.
	RawDefault bool
}

// View is a named stored query.
type View struct {
	Name    string
	Columns []string
	Select  *ast.Select
}

// Index is secondary-index metadata; UNIQUE indexes are enforced.
type Index struct {
	Name      string
	Table     string
	Cols      []int
	Unique    bool
	Clustered bool
}

// Sequence is a monotonic generator.
type Sequence struct {
	Name string
	Next int64
}

// New returns an engine with the given configuration.
func New(cfg Config) *Engine {
	if cfg.ResolveType == nil {
		cfg.ResolveType = ResolveTypePermissive
	}
	if cfg.Funcs == nil {
		cfg.Funcs = AllBuiltins()
	}
	return &Engine{
		cfg:       cfg,
		st:        newState(),
		sessions:  make(map[*Session]struct{}),
		planCache: plan.NewCache(planCacheCap),
	}
}

// planCacheCap bounds the shared text-keyed plan cache; planMemoCap
// bounds the pointer-keyed memo tier. Both are dropped wholesale at
// capacity — the workloads that matter re-fill them within one batch.
const (
	planCacheCap = 4096
	planMemoCap  = 4096
)

func newState() state {
	return state{
		tables: make(map[string]*Table),
		views:  make(map[string]*View),
		indexs: make(map[string]*Index),
		seqs:   make(map[string]*Sequence),
	}
}

// NewOracle returns a pristine engine: permissive dialect, no quirks.
func NewOracle() *Engine { return New(Config{}) }

// Quirks exposes the engine's quirk set (used by tests).
func (e *Engine) Quirks() Quirks { return e.cfg.Quirks }

// ResolveTypePermissive understands the union of all dialect type names.
func ResolveTypePermissive(tn ast.TypeName) (types.Kind, error) {
	switch tn.Name {
	case "INT", "INTEGER", "SMALLINT", "BIGINT", "INT4", "INT8", "NUMBER":
		return types.KindInt, nil
	case "FLOAT", "REAL", "DOUBLE", "DOUBLE PRECISION", "NUMERIC", "DECIMAL", "MONEY":
		return types.KindFloat, nil
	case "VARCHAR", "CHAR", "CHARACTER", "TEXT", "NVARCHAR", "VARCHAR2", "CLOB":
		return types.KindString, nil
	case "DATE", "DATETIME", "TIMESTAMP":
		return types.KindDate, nil
	case "BOOLEAN", "BOOL", "BIT":
		return types.KindBool, nil
	default:
		return 0, fmt.Errorf("%w: unknown type %s", ErrType, tn.Name)
	}
}

// exec dispatches one parsed statement. The caller (Session.Exec) holds
// the engine lock in the appropriate mode.
func (e *Session) exec(st ast.Statement) (*Result, error) {
	switch x := st.(type) {
	case *ast.CreateTable:
		return e.execCreateTable(x)
	case *ast.CreateView:
		return e.execCreateView(x)
	case *ast.CreateIndex:
		return e.execCreateIndex(x)
	case *ast.CreateSequence:
		return e.execCreateSequence(x)
	case *ast.DropTable:
		return e.execDropTable(x)
	case *ast.DropView:
		return e.execDropView(x)
	case *ast.DropIndex:
		return e.execDropIndex(x)
	case *ast.DropSequence:
		return e.execDropSequence(x)
	case *ast.Insert:
		return e.execInsert(x)
	case *ast.Update:
		return e.execUpdate(x)
	case *ast.Delete:
		return e.execDelete(x)
	case *ast.Begin:
		return e.execBegin()
	case *ast.Commit:
		return e.execCommit()
	case *ast.Rollback:
		return e.execRollback()
	case *ast.SetTxn:
		return e.execSetTxn(x)
	case *ast.Select:
		res, err := e.evalSelect(x, nil)
		if err != nil {
			return nil, err
		}
		return res, nil
	default:
		return nil, fmt.Errorf("unsupported statement %T", st)
	}
}

func up(s string) string { return strings.ToUpper(s) }

func (e *Session) objectExists(name string) bool {
	n := up(name)
	if _, ok := e.eng.st.tables[n]; ok {
		return true
	}
	if _, ok := e.eng.st.views[n]; ok {
		return true
	}
	return false
}

// ---------------------------------------------------------------------------
// DDL

// bumpSchema allocates a fresh schema generation after a successful DDL
// statement and stamps it as the current version, invalidating every
// compiled plan. Inside a transaction the undo log restores the previous
// stamp on rollback — reverse-order application lands a multi-DDL
// transaction back on its pre-transaction stamp — while the epochs
// minted inside the aborted transaction are never reused, so a plan
// compiled mid-transaction can never validate after the rollback. The
// undo must not run on snapshot rewinds (toSnap): those operate on a
// copy-on-write clone and must never write engine fields.
func (e *Session) bumpSchema() {
	eng := e.eng
	old := eng.schemaVersion
	eng.schemaEpoch++
	eng.schemaVersion = eng.schemaEpoch
	if e.inTxn {
		e.didDDL = true
	}
	e.logUndoCatalog(func(_ *state, toSnap bool) {
		if !toSnap {
			eng.schemaVersion = old
		}
	})
}

// bumpSchemaLocked is bumpSchema for engine-level mutators (Restore,
// Reset) that hold the write lock but run outside any session; there is
// no transaction to undo into.
func (e *Engine) bumpSchemaLocked() {
	e.schemaEpoch++
	e.schemaVersion = e.schemaEpoch
	// Engine-level mutators run outside any transaction, so the new
	// generation is committed immediately; invalidate every cached read
	// view (the whole state may have been replaced).
	e.committedSchema = e.schemaVersion
	e.viewGen.Add(1)
}

// SchemaVersion returns the current schema generation stamp.
func (e *Engine) SchemaVersion() uint64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.schemaVersion
}

func (e *Session) execCreateTable(ct *ast.CreateTable) (*Result, error) {
	name := up(ct.Name)
	if e.objectExists(name) {
		return nil, fmt.Errorf("%w: %s", ErrDuplicateObject, name)
	}
	if len(ct.Columns) == 0 {
		return nil, fmt.Errorf("table %s has no columns", name)
	}
	t := &Table{Name: name}
	seen := make(map[string]bool, len(ct.Columns))
	for _, cd := range ct.Columns {
		cn := up(cd.Name)
		if seen[cn] {
			return nil, fmt.Errorf("duplicate column %s", cn)
		}
		seen[cn] = true
		kind, err := e.eng.cfg.ResolveType(cd.Type)
		if err != nil {
			return nil, err
		}
		col := Column{Name: cn, Kind: kind, NotNull: cd.NotNull || cd.PrimaryKey, Default: cd.Default}
		if cd.Default != nil {
			dv, err := e.evalConst(cd.Default)
			if err != nil {
				return nil, fmt.Errorf("invalid DEFAULT for %s: %w", cn, err)
			}
			if !dv.IsNull() {
				if _, cerr := coerce(dv, kind); cerr != nil {
					if e.eng.cfg.Quirks.SkipDefaultTypeCheck {
						// Quirk: accept the invalid default and store it
						// verbatim (IB bug 217042(3), shared by MS).
						col.RawDefault = true
					} else {
						return nil, fmt.Errorf("DEFAULT value for column %s: %w", cn, cerr)
					}
				}
			}
		}
		t.Cols = append(t.Cols, col)
		if cd.PrimaryKey {
			t.PKCols = append(t.PKCols, len(t.Cols)-1)
		}
		if cd.Unique {
			t.Uniques = append(t.Uniques, []int{len(t.Cols) - 1})
		}
		if cd.Check != nil {
			t.Checks = append(t.Checks, cd.Check)
		}
	}
	for _, tc := range ct.Constraints {
		switch {
		case len(tc.PrimaryKey) > 0:
			if len(t.PKCols) > 0 {
				return nil, fmt.Errorf("%w: multiple primary keys on %s", ErrConstraint, name)
			}
			idxs, err := t.columnIndexes(tc.PrimaryKey)
			if err != nil {
				return nil, err
			}
			t.PKCols = idxs
			for _, i := range idxs {
				t.Cols[i].NotNull = true
			}
		case len(tc.Unique) > 0:
			idxs, err := t.columnIndexes(tc.Unique)
			if err != nil {
				return nil, err
			}
			t.Uniques = append(t.Uniques, idxs)
		case tc.Check != nil:
			t.Checks = append(t.Checks, tc.Check)
		}
	}
	t.ic = newIndexCache()
	e.eng.st.tables[name] = t
	e.logUndoCatalog(func(dst *state, _ bool) { delete(dst.tables, name) })
	e.bumpSchema()
	return &Result{Kind: ResultDDL}, nil
}

func (t *Table) columnIndexes(names []string) ([]int, error) {
	idxs := make([]int, 0, len(names))
	for _, n := range names {
		i := t.colIndex(n)
		if i < 0 {
			return nil, fmt.Errorf("unknown column %s in table %s", n, t.Name)
		}
		idxs = append(idxs, i)
	}
	return idxs, nil
}

func (t *Table) colIndex(name string) int {
	n := up(name)
	for i, c := range t.Cols {
		if c.Name == n {
			return i
		}
	}
	return -1
}

func (e *Session) execCreateView(cv *ast.CreateView) (*Result, error) {
	name := up(cv.Name)
	if e.objectExists(name) {
		return nil, fmt.Errorf("%w: %s", ErrDuplicateObject, name)
	}
	// Validate the definition by executing it once against current state.
	if _, err := e.evalSelect(cv.Select, nil); err != nil {
		return nil, fmt.Errorf("invalid view definition: %w", err)
	}
	cols := make([]string, len(cv.Columns))
	for i, c := range cv.Columns {
		cols[i] = up(c)
	}
	e.eng.st.views[name] = &View{Name: name, Columns: cols, Select: cv.Select}
	e.logUndoCatalog(func(dst *state, _ bool) { delete(dst.views, name) })
	e.bumpSchema()
	return &Result{Kind: ResultDDL}, nil
}

func (e *Session) execCreateIndex(ci *ast.CreateIndex) (*Result, error) {
	name := up(ci.Name)
	if _, ok := e.eng.st.indexs[name]; ok {
		return nil, fmt.Errorf("%w: index %s", ErrDuplicateObject, name)
	}
	if ci.Clustered && e.eng.cfg.Quirks.ClusteredIndexError {
		// Quirk: the PG 7.0.0 clustered-index defect that made five MSSQL
		// bug scripts fail at the start when run on PostgreSQL.
		return nil, fmt.Errorf("internal error: cannot create clustered index %s", name)
	}
	t, ok := e.eng.st.tables[up(ci.Table)]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrTableNotFound, ci.Table)
	}
	cols, err := t.columnIndexes(ci.Columns)
	if err != nil {
		return nil, err
	}
	if ci.Unique {
		if dup := t.findDuplicate(cols); dup >= 0 {
			return nil, fmt.Errorf("%w: duplicate key creating unique index %s", ErrConstraint, name)
		}
		t.Uniques = append(t.Uniques, cols)
		// Undo by identity, not position: another session may have
		// appended its own keyset before this rollback runs, and a
		// positional truncation would drop it (or resurrect stale ones).
		// Snapshot clones share the inner keyset slices, so the identity
		// match resolves on a clone too.
		added, tname := cols, t.Name
		e.logUndoTable(tname, func(dst *state, _ bool) {
			t, ok := dst.tables[tname]
			if !ok {
				return
			}
			for i, u := range t.Uniques {
				if len(u) > 0 && len(added) > 0 && &u[0] == &added[0] {
					t.Uniques = append(t.Uniques[:i], t.Uniques[i+1:]...)
					break
				}
			}
		})
	}
	e.eng.st.indexs[name] = &Index{Name: name, Table: t.Name, Cols: cols, Unique: ci.Unique, Clustered: ci.Clustered}
	e.logUndoCatalog(func(dst *state, _ bool) { delete(dst.indexs, name) })
	e.bumpSchema()
	return &Result{Kind: ResultDDL}, nil
}

func (e *Session) execCreateSequence(cs *ast.CreateSequence) (*Result, error) {
	name := up(cs.Name)
	if _, ok := e.eng.st.seqs[name]; ok {
		return nil, fmt.Errorf("%w: sequence %s", ErrDuplicateObject, name)
	}
	start := cs.Start
	if start == 0 {
		start = 1
	}
	e.eng.st.seqs[name] = &Sequence{Name: name, Next: start}
	e.logUndoCatalog(func(dst *state, _ bool) { delete(dst.seqs, name) })
	e.bumpSchema()
	return &Result{Kind: ResultDDL}, nil
}

func (e *Session) execDropTable(dt *ast.DropTable) (*Result, error) {
	name := up(dt.Name)
	if t, ok := e.eng.st.tables[name]; ok {
		delete(e.eng.st.tables, name)
		// On a snapshot clone the table header is copied: a later live
		// rollback re-adds (and then mutates) the original, which must
		// not reach through into a published immutable image.
		e.logUndoCatalog(func(dst *state, toSnap bool) {
			if toSnap {
				dst.tables[name] = t.cloneHeader()
			} else {
				dst.tables[name] = t
			}
		})
		e.bumpSchema()
		return &Result{Kind: ResultDDL}, nil
	}
	if v, ok := e.eng.st.views[name]; ok && e.eng.cfg.Quirks.AllowDropTableOnView {
		// Quirk: DROP TABLE silently removes a view (IB bug 223512,
		// shared by PG). SQL-92 requires DROP VIEW here.
		delete(e.eng.st.views, name)
		e.logUndoCatalog(func(dst *state, _ bool) { dst.views[name] = v })
		e.bumpSchema()
		return &Result{Kind: ResultDDL}, nil
	}
	return nil, fmt.Errorf("%w: %s", ErrTableNotFound, name)
}

func (e *Session) execDropView(dv *ast.DropView) (*Result, error) {
	name := up(dv.Name)
	v, ok := e.eng.st.views[name]
	if !ok {
		return nil, fmt.Errorf("%w: view %s", ErrTableNotFound, name)
	}
	delete(e.eng.st.views, name)
	e.logUndoCatalog(func(dst *state, _ bool) { dst.views[name] = v })
	e.bumpSchema()
	return &Result{Kind: ResultDDL}, nil
}

func (e *Session) execDropIndex(di *ast.DropIndex) (*Result, error) {
	name := up(di.Name)
	ix, ok := e.eng.st.indexs[name]
	if !ok {
		return nil, fmt.Errorf("%w: index %s", ErrTableNotFound, name)
	}
	delete(e.eng.st.indexs, name)
	e.logUndoCatalog(func(dst *state, _ bool) { dst.indexs[name] = ix })
	e.bumpSchema()
	return &Result{Kind: ResultDDL}, nil
}

func (e *Session) execDropSequence(ds *ast.DropSequence) (*Result, error) {
	name := up(ds.Name)
	s, ok := e.eng.st.seqs[name]
	if !ok {
		return nil, fmt.Errorf("%w: sequence %s", ErrTableNotFound, name)
	}
	delete(e.eng.st.seqs, name)
	// Sequences mutate in place (Next), so a snapshot clone gets its own
	// copy rather than sharing the live struct.
	e.logUndoCatalog(func(dst *state, toSnap bool) {
		if toSnap {
			cp := *s
			dst.seqs[name] = &cp
		} else {
			dst.seqs[name] = s
		}
	})
	e.bumpSchema()
	return &Result{Kind: ResultDDL}, nil
}

// ---------------------------------------------------------------------------
// Sessionless compatibility API
//
// Transactions (BEGIN/COMMIT/ROLLBACK with an undo log) are per-session
// state and live on Session — see session.go. The methods below keep the
// original single-session surface working by delegating to a lazily
// created default session.

// Exec executes one parsed statement on the engine's default session.
func (e *Engine) Exec(st ast.Statement) (*Result, error) {
	return e.DefaultSession().Exec(st)
}

// InTxn reports whether the default session has an open transaction.
func (e *Engine) InTxn() bool { return e.DefaultSession().InTxn() }

// Abort rolls back the default session's open transaction (used on
// connection aborts of the sessionless API).
func (e *Engine) Abort() { e.DefaultSession().Abort() }

// EndStatement finalizes autocommit bookkeeping of the default session.
// Session.Exec already autocommits; the method remains for callers of the
// original single-session API.
func (e *Engine) EndStatement() {
	s := e.DefaultSession()
	e.mu.Lock()
	defer e.mu.Unlock()
	if !s.inTxn {
		s.txMu.Lock()
		s.undo = nil
		s.txMu.Unlock()
	}
}

// TableNames lists the base tables (sorted order is the caller's concern).
func (e *Engine) TableNames() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	names := make([]string, 0, len(e.st.tables))
	for n := range e.st.tables {
		names = append(names, n)
	}
	return names
}

// ViewNames lists the views.
func (e *Engine) ViewNames() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	names := make([]string, 0, len(e.st.views))
	for n := range e.st.views {
		names = append(names, n)
	}
	return names
}

// HasView reports whether a view with the given name exists.
func (e *Engine) HasView(name string) bool {
	e.mu.RLock()
	defer e.mu.RUnlock()
	_, ok := e.st.views[up(name)]
	return ok
}

// HasTable reports whether a base table with the given name exists.
func (e *Engine) HasTable(name string) bool {
	e.mu.RLock()
	defer e.mu.RUnlock()
	_, ok := e.st.tables[up(name)]
	return ok
}

// TableRowCount returns the number of rows in a base table.
func (e *Engine) TableRowCount(name string) (int, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	t, ok := e.st.tables[up(name)]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrTableNotFound, name)
	}
	e.lockLatch(t)
	n := len(t.Rows)
	t.latch.Unlock()
	return n, nil
}
