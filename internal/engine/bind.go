package engine

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"divsql/internal/sql/ast"
	"divsql/internal/sql/types"
)

// ErrBind wraps bind-time failures of the prepare/bind/execute path:
// argument-count mismatches, references to unbound parameter ordinals,
// and parameters in statements that cannot carry them (DDL).
var ErrBind = errors.New("bind error")

// BindRules are a server's bind-time type coercion rules: how typed
// client arguments are normalized into the server's value system before
// the statement executes. Like Quirks, each rule models a real product
// family's documented deviation; the rules are calibrated per dialect so
// the four simulated servers coerce slightly differently — a fault
// surface of its own, unreachable through inline-literal SQL (a literal
// is typed by the parser; a bound argument is typed by the client and
// re-typed by the server's bind path). The pristine oracle binds with
// the zero BindRules: every argument passes through unchanged.
type BindRules struct {
	// EmptyStringAsNull binds a zero-length string argument as SQL NULL
	// (the classic Oracle VARCHAR2 semantics: '' and NULL are one value
	// at the bind boundary).
	EmptyStringAsNull bool
	// NumericStringsAsNumbers re-types a string argument that parses as
	// a number into that number (Interbase-style loose client typing:
	// the bind layer trusts content over declared type).
	NumericStringsAsNumbers bool
	// TrimTrailingSpaces strips trailing spaces from string arguments
	// (PostgreSQL 7.0-era CHAR bind semantics applied to every string
	// parameter).
	TrimTrailingSpaces bool
	// BoolAsInt binds boolean arguments as BIT 0/1 integers (MS SQL has
	// no boolean value type at the bind boundary).
	BoolAsInt bool
}

// Apply normalizes one argument vector under the rules, returning a new
// slice when any value changed (the caller's vector is never mutated —
// it may be shared with other replicas of a broadcast).
func (r BindRules) Apply(args []types.Value) []types.Value {
	if r == (BindRules{}) {
		return args
	}
	var out []types.Value
	for i, v := range args {
		w := r.applyOne(v)
		if w == v {
			if out != nil {
				out[i] = w
			}
			continue
		}
		if out == nil {
			out = append([]types.Value(nil), args...)
		}
		out[i] = w
	}
	if out == nil {
		return args
	}
	return out
}

func (r BindRules) applyOne(v types.Value) types.Value {
	switch v.K {
	case types.KindString:
		if r.EmptyStringAsNull && v.S == "" {
			return types.Null()
		}
		if r.NumericStringsAsNumbers {
			s := strings.TrimSpace(v.S)
			if s != "" {
				if i, err := strconv.ParseInt(s, 10, 64); err == nil {
					return types.NewInt(i)
				}
				if f, err := strconv.ParseFloat(s, 64); err == nil {
					return types.NewFloat(f)
				}
			}
		}
		if r.TrimTrailingSpaces {
			if t := strings.TrimRight(v.S, " "); t != v.S {
				if r.EmptyStringAsNull && t == "" {
					return types.Null()
				}
				return types.NewString(t)
			}
		}
	case types.KindBool:
		if r.BoolAsInt {
			if v.B {
				return types.NewInt(1)
			}
			return types.NewInt(0)
		}
	}
	return v
}

// ExecBind executes one parsed statement with bound arguments: the
// session's bind vector (normalized by the engine's BindRules) is
// visible to every Param node evaluated during the statement. The
// argument count must match the statement's parameter count exactly;
// statements outside DML/queries reject parameters altogether (a view
// definition or DEFAULT expression holding a Param would dangle once the
// binding is gone).
func (s *Session) ExecBind(st ast.Statement, args []types.Value) (*Result, error) {
	if err := CheckBindable(st, len(args)); err != nil {
		return nil, err
	}
	return s.ExecBound(st, args)
}

// ExecBound is ExecBind without the parameter-count validation, for
// callers that planned the statement and checked the count up front (the
// server's prepared-statement path). The BindRules still apply.
func (s *Session) ExecBound(st ast.Statement, args []types.Value) (*Result, error) {
	return s.execLocked(st, s.eng.cfg.Bind.Apply(args))
}

// CheckBindable validates that a statement can execute with nargs bound
// arguments: the count must match the statement's parameter count, and
// only DML and queries may carry parameters at all (a view definition or
// DEFAULT expression holding a Param would dangle once the binding is
// gone).
func CheckBindable(st ast.Statement, nargs int) error {
	np := ast.NumParams(st)
	if np != nargs {
		return fmt.Errorf("%w: statement wants %d parameters, %d bound", ErrBind, np, nargs)
	}
	if np > 0 {
		switch st.(type) {
		case *ast.Insert, *ast.Update, *ast.Delete, *ast.Select:
		default:
			return fmt.Errorf("%w: parameters are not allowed in this statement", ErrBind)
		}
	}
	return nil
}
