package engine

import (
	"sort"

	"divsql/internal/engine/plan"
	"divsql/internal/obs"
)

// This file is the engine's observability surface: a consistent stats
// snapshot taken under the read lock, and an obs.Collector that turns it
// (plus the lock-free plan-cache and access-path counters) into
// divsql_engine_* metric families. In a diverse deployment every replica
// runs its own engine, so the collector labels each series with the
// replica name and the middleware registers one collector per replica
// into the shared family set.

// TableRows is one base table's live row count.
type TableRows struct {
	Name string
	Rows int
}

// Stats is a consistent engine-state snapshot for introspection.
type Stats struct {
	Sessions      int
	InTxn         int // sessions with an open transaction
	Tables        int
	Views         int
	Indexes       int
	Sequences     int
	TableRows     []TableRows // sorted by table name
	CommitSeq     uint64
	SchemaVersion uint64
}

// StatsSnapshot reads the engine's introspection stats under one read
// lock acquisition, so the counts are mutually consistent.
func (e *Engine) StatsSnapshot() Stats {
	e.mu.RLock()
	defer e.mu.RUnlock()
	st := Stats{
		Sessions:      len(e.sessions),
		Tables:        len(e.st.tables),
		Views:         len(e.st.views),
		Indexes:       len(e.st.indexs),
		Sequences:     len(e.st.seqs),
		CommitSeq:     e.commitSeq.Load(),
		SchemaVersion: e.schemaVersion,
	}
	for s := range e.sessions {
		s.txMu.Lock()
		if s.inTxn {
			st.InTxn++
		}
		s.txMu.Unlock()
	}
	st.TableRows = make([]TableRows, 0, len(e.st.tables))
	for n, t := range e.st.tables {
		e.lockLatch(t)
		rows := len(t.Rows)
		t.latch.Unlock()
		st.TableRows = append(st.TableRows, TableRows{Name: n, Rows: rows})
	}
	sort.Slice(st.TableRows, func(i, j int) bool {
		return st.TableRows[i].Name < st.TableRows[j].Name
	})
	return st
}

// ReadViewStats is the read-view and latch observability surface: how
// often views were rebuilt vs served from cache, how table images were
// materialized, and how much time writers spent contending on latches.
type ReadViewStats struct {
	Builds           uint64
	Hits             uint64
	TableReuses      uint64
	MatCleans        uint64
	MatRewinds       uint64
	LatchWaits       uint64
	LatchWaitSeconds float64
}

// ReadViewStats returns the lock-free read-view and latch counters.
func (e *Engine) ReadViewStats() ReadViewStats {
	return ReadViewStats{
		Builds:           e.viewBuilds.Load(),
		Hits:             e.viewHits.Load(),
		TableReuses:      e.viewReuses.Load(),
		MatCleans:        e.matCleans.Load(),
		MatRewinds:       e.matRewinds.Load(),
		LatchWaits:       e.latchWaits.Load(),
		LatchWaitSeconds: float64(e.latchWaitNs.Load()) / 1e9,
	}
}

// PathExecs returns compiled SELECT executions by access path, plus the
// interpreter-fallback dispatch count.
func (e *Engine) PathExecs() (byPath [3]uint64, interpreted uint64) {
	for i := range e.pathExecs {
		byPath[i] = e.pathExecs[i].Load()
	}
	return byPath, e.interpSelects.Load()
}

// MetricsCollector returns the engine's obs collector. The replica label
// distinguishes engines in a diverse/replicated deployment; pass "" for
// a single-server deployment to omit per-replica labeling entirely.
func (e *Engine) MetricsCollector(replica string) obs.Collector {
	var labels []obs.Label
	if replica != "" {
		labels = []obs.Label{obs.L("replica", replica)}
	}
	return obs.NewCollector("engine", func(f *obs.Feed) {
		cs := e.PlanCacheStats()
		f.Count("divsql_engine_plan_cache_hits_total",
			"Compiled-plan cache hits (memo tier folded in).", cs.Hits, labels...)
		f.Count("divsql_engine_plan_cache_misses_total",
			"Compiled-plan cache misses (compilations).", cs.Misses, labels...)
		f.Count("divsql_engine_plan_cache_invalidations_total",
			"Compiled plans invalidated by schema change.", cs.Invalidations, labels...)
		f.Gauge("divsql_engine_plan_cache_hit_rate",
			"Plan-cache hit rate over the process lifetime.", cs.HitRate(), labels...)

		byPath, interp := e.PathExecs()
		for p, n := range byPath {
			f.Count("divsql_engine_compiled_exec_total",
				"Compiled SELECT executions by access path.", n,
				append(labels[:len(labels):len(labels)], obs.L("path", plan.AccessPath(p).String()))...)
		}
		f.Count("divsql_engine_interpreted_selects_total",
			"SELECT dispatches that fell back to the interpreter.", interp, labels...)

		st := e.StatsSnapshot()
		f.Gauge("divsql_engine_sessions",
			"Live engine sessions.", float64(st.Sessions), labels...)
		f.Gauge("divsql_engine_sessions_in_txn",
			"Sessions with an open transaction.", float64(st.InTxn), labels...)
		f.Gauge("divsql_engine_tables",
			"Base tables in the catalog.", float64(st.Tables), labels...)
		f.Gauge("divsql_engine_views",
			"Views in the catalog.", float64(st.Views), labels...)
		f.Gauge("divsql_engine_indexes",
			"Declared secondary indexes.", float64(st.Indexes), labels...)
		f.Gauge("divsql_engine_sequences",
			"Sequences in the catalog.", float64(st.Sequences), labels...)
		f.Count("divsql_engine_commit_seq",
			"Commit high-water mark.", st.CommitSeq, labels...)
		f.Gauge("divsql_engine_schema_version",
			"Current schema generation stamp.", float64(st.SchemaVersion), labels...)
		for _, tr := range st.TableRows {
			f.Gauge("divsql_engine_table_rows",
				"Live rows per base table.", float64(tr.Rows),
				append(labels[:len(labels):len(labels)], obs.L("table", tr.Name))...)
		}

		rv := e.ReadViewStats()
		f.Count("divsql_engine_readview_builds_total",
			"Read views built (cached view was stale).", rv.Builds, labels...)
		f.Count("divsql_engine_readview_hits_total",
			"Statements served by the cached read view.", rv.Hits, labels...)
		f.Count("divsql_engine_readview_table_reuses_total",
			"Per-table wrappers carried over between consecutive views.", rv.TableReuses, labels...)
		f.Count("divsql_engine_readview_mat_clean_total",
			"Zero-copy table materializations (stable slice capture).", rv.MatCleans, labels...)
		f.Count("divsql_engine_readview_mat_rewind_total",
			"Table materializations that cloned rows and rewound open transactions.", rv.MatRewinds, labels...)
		f.Count("divsql_engine_latch_waits_total",
			"Contended table-latch acquisitions.", rv.LatchWaits, labels...)
		f.Gauge("divsql_engine_latch_wait_seconds_total",
			"Cumulative time spent waiting on contended table latches.", rv.LatchWaitSeconds, labels...)
	})
}
