package engine

import (
	"fmt"
	"math"
	"strings"

	"divsql/internal/sql/ast"
	"divsql/internal/sql/types"
)

// evalFunc evaluates a non-aggregate function call. Aggregates reaching
// this point are being used outside a grouping context, which is an
// error.
func (e *Session) evalFunc(fc *ast.FuncCall, sc *scope) (types.Value, error) {
	name := strings.ToUpper(fc.Name)
	if isAggregateName(name) {
		return types.Value{}, fmt.Errorf("invalid use of aggregate function %s", name)
	}
	b, ok := e.eng.cfg.Funcs[name]
	if !ok {
		return types.Value{}, fmt.Errorf("unknown function %s", name)
	}
	if b.SeqFunc {
		return e.evalSeqFunc(name, fc, sc)
	}
	if len(fc.Args) < b.MinArgs || (b.MaxArgs >= 0 && len(fc.Args) > b.MaxArgs) {
		return types.Value{}, fmt.Errorf("wrong number of arguments to %s", name)
	}
	args := make([]types.Value, len(fc.Args))
	for i, a := range fc.Args {
		v, err := e.evalExpr(a, sc)
		if err != nil {
			return types.Value{}, err
		}
		args[i] = v
	}
	return b.Fn(&FuncContext{Sess: e}, args)
}

// evalSeqFunc handles sequence-advancing functions, whose first argument
// is a sequence name written as a bare identifier or string.
func (e *Session) evalSeqFunc(name string, fc *ast.FuncCall, sc *scope) (types.Value, error) {
	if len(fc.Args) < 1 {
		return types.Value{}, fmt.Errorf("%s requires a sequence name", name)
	}
	var seqName string
	switch a := fc.Args[0].(type) {
	case *ast.ColumnRef:
		seqName = a.Column
	case *ast.Literal:
		if a.Val.K == types.KindString {
			seqName = a.Val.S
		}
	}
	if seqName == "" {
		return types.Value{}, fmt.Errorf("%s requires a sequence name", name)
	}
	incr := int64(1)
	if len(fc.Args) >= 2 {
		v, err := e.evalExpr(fc.Args[1], sc)
		if err != nil {
			return types.Value{}, err
		}
		incr = v.AsInt()
	}
	return e.SequenceNext(seqName, incr)
}

// SequenceNext advances a sequence by incr and returns the new value.
// The cursor is guarded by the engine's seqMu: sequences advance from
// DML expressions and sequence-advancing SELECTs that hold only the
// engine read lock, outside any table latch.
func (e *Session) SequenceNext(name string, incr int64) (types.Value, error) {
	n := up(name)
	s, ok := e.eng.st.seqs[n]
	if !ok {
		return types.Value{}, fmt.Errorf("%w: sequence %s", ErrTableNotFound, name)
	}
	e.eng.seqMu.Lock()
	val := s.Next
	s.Next += incr
	e.eng.seqMu.Unlock()
	e.logUndoSeq(func(dst *state, _ bool) {
		if sq, ok := dst.seqs[n]; ok {
			sq.Next = val
		}
	})
	return types.NewInt(val), nil
}

// argNull reports whether any argument is NULL (the common NULL-in,
// NULL-out rule for scalar functions).
func argNull(args []types.Value) bool {
	for _, a := range args {
		if a.IsNull() {
			return true
		}
	}
	return false
}

// AllBuiltins returns the full scalar-function catalogue keyed by
// canonical name. Dialects remap subsets of these under their own names.
func AllBuiltins() map[string]Builtin {
	m := make(map[string]Builtin)
	add := func(b Builtin) { m[b.Name] = b }

	add(Builtin{Name: "UPPER", MinArgs: 1, MaxArgs: 1, Fn: func(_ *FuncContext, a []types.Value) (types.Value, error) {
		if argNull(a) {
			return types.Null(), nil
		}
		return types.NewString(strings.ToUpper(a[0].String())), nil
	}})
	add(Builtin{Name: "LOWER", MinArgs: 1, MaxArgs: 1, Fn: func(_ *FuncContext, a []types.Value) (types.Value, error) {
		if argNull(a) {
			return types.Null(), nil
		}
		return types.NewString(strings.ToLower(a[0].String())), nil
	}})
	add(Builtin{Name: "LENGTH", MinArgs: 1, MaxArgs: 1, Fn: func(_ *FuncContext, a []types.Value) (types.Value, error) {
		if argNull(a) {
			return types.Null(), nil
		}
		return types.NewInt(int64(len(a[0].String()))), nil
	}})
	add(Builtin{Name: "TRIM", MinArgs: 1, MaxArgs: 1, Fn: func(_ *FuncContext, a []types.Value) (types.Value, error) {
		if argNull(a) {
			return types.Null(), nil
		}
		return types.NewString(strings.TrimSpace(a[0].String())), nil
	}})
	add(Builtin{Name: "SUBSTR", MinArgs: 2, MaxArgs: 3, Fn: func(_ *FuncContext, a []types.Value) (types.Value, error) {
		if argNull(a) {
			return types.Null(), nil
		}
		s := a[0].String()
		start := int(a[1].AsInt())
		if start < 1 {
			start = 1
		}
		if start > len(s) {
			return types.NewString(""), nil
		}
		rest := s[start-1:]
		if len(a) == 3 {
			n := int(a[2].AsInt())
			if n < 0 {
				n = 0
			}
			if n < len(rest) {
				rest = rest[:n]
			}
		}
		return types.NewString(rest), nil
	}})
	add(Builtin{Name: "REPLACE", MinArgs: 3, MaxArgs: 3, Fn: func(_ *FuncContext, a []types.Value) (types.Value, error) {
		if argNull(a) {
			return types.Null(), nil
		}
		return types.NewString(strings.ReplaceAll(a[0].String(), a[1].String(), a[2].String())), nil
	}})
	add(Builtin{Name: "ABS", MinArgs: 1, MaxArgs: 1, Fn: func(_ *FuncContext, a []types.Value) (types.Value, error) {
		if argNull(a) {
			return types.Null(), nil
		}
		v, err := numericOperand(a[0])
		if err != nil {
			return types.Value{}, err
		}
		if v.K == types.KindInt {
			return types.NewInt(abs64(v.I)), nil
		}
		return types.NewFloat(math.Abs(v.F)), nil
	}})
	add(Builtin{Name: "SIGN", MinArgs: 1, MaxArgs: 1, Fn: func(_ *FuncContext, a []types.Value) (types.Value, error) {
		if argNull(a) {
			return types.Null(), nil
		}
		v, err := numericOperand(a[0])
		if err != nil {
			return types.Value{}, err
		}
		f := v.AsFloat()
		switch {
		case f > 0:
			return types.NewInt(1), nil
		case f < 0:
			return types.NewInt(-1), nil
		default:
			return types.NewInt(0), nil
		}
	}})
	add(Builtin{Name: "FLOOR", MinArgs: 1, MaxArgs: 1, Fn: func(_ *FuncContext, a []types.Value) (types.Value, error) {
		if argNull(a) {
			return types.Null(), nil
		}
		v, err := numericOperand(a[0])
		if err != nil {
			return types.Value{}, err
		}
		return types.NewFloat(math.Floor(v.AsFloat())), nil
	}})
	add(Builtin{Name: "CEIL", MinArgs: 1, MaxArgs: 1, Fn: func(_ *FuncContext, a []types.Value) (types.Value, error) {
		if argNull(a) {
			return types.Null(), nil
		}
		v, err := numericOperand(a[0])
		if err != nil {
			return types.Value{}, err
		}
		return types.NewFloat(math.Ceil(v.AsFloat())), nil
	}})
	add(Builtin{Name: "ROUND", MinArgs: 1, MaxArgs: 2, Fn: func(_ *FuncContext, a []types.Value) (types.Value, error) {
		if argNull(a) {
			return types.Null(), nil
		}
		v, err := numericOperand(a[0])
		if err != nil {
			return types.Value{}, err
		}
		digits := 0
		if len(a) == 2 {
			digits = int(a[1].AsInt())
		}
		scale := math.Pow(10, float64(digits))
		return types.NewFloat(math.Round(v.AsFloat()*scale) / scale), nil
	}})
	add(Builtin{Name: "POWER", MinArgs: 2, MaxArgs: 2, Fn: func(_ *FuncContext, a []types.Value) (types.Value, error) {
		if argNull(a) {
			return types.Null(), nil
		}
		x, err := numericOperand(a[0])
		if err != nil {
			return types.Value{}, err
		}
		y, err := numericOperand(a[1])
		if err != nil {
			return types.Value{}, err
		}
		return types.NewFloat(math.Pow(x.AsFloat(), y.AsFloat())), nil
	}})
	add(Builtin{Name: "SQRT", MinArgs: 1, MaxArgs: 1, Fn: func(_ *FuncContext, a []types.Value) (types.Value, error) {
		if argNull(a) {
			return types.Null(), nil
		}
		v, err := numericOperand(a[0])
		if err != nil {
			return types.Value{}, err
		}
		if v.AsFloat() < 0 {
			return types.Value{}, fmt.Errorf("%w: SQRT of negative number", ErrType)
		}
		return types.NewFloat(math.Sqrt(v.AsFloat())), nil
	}})
	add(Builtin{Name: "MOD", MinArgs: 2, MaxArgs: 2, Fn: func(ctx *FuncContext, a []types.Value) (types.Value, error) {
		if argNull(a) {
			return types.Null(), nil
		}
		l, err := numericOperand(a[0])
		if err != nil {
			return types.Value{}, err
		}
		r, err := numericOperand(a[1])
		if err != nil {
			return types.Value{}, err
		}
		return ctx.Sess.mod(l, r)
	}})
	add(Builtin{Name: "COALESCE", MinArgs: 1, MaxArgs: -1, Fn: func(_ *FuncContext, a []types.Value) (types.Value, error) {
		for _, v := range a {
			if !v.IsNull() {
				return v, nil
			}
		}
		return types.Null(), nil
	}})
	add(Builtin{Name: "NULLIF", MinArgs: 2, MaxArgs: 2, Fn: func(_ *FuncContext, a []types.Value) (types.Value, error) {
		if !a[0].IsNull() && !a[1].IsNull() && types.Equal(a[0], a[1]) {
			return types.Null(), nil
		}
		return a[0], nil
	}})
	add(Builtin{Name: "CONCAT", MinArgs: 2, MaxArgs: -1, Fn: func(_ *FuncContext, a []types.Value) (types.Value, error) {
		var sb strings.Builder
		for _, v := range a {
			if v.IsNull() {
				continue
			}
			sb.WriteString(v.String())
		}
		return types.NewString(sb.String()), nil
	}})
	add(Builtin{Name: "NEXTVAL", MinArgs: 1, MaxArgs: 2, SeqFunc: true})
	return m
}
