package engine

import (
	"encoding/binary"
	"sort"
	"sync"

	"divsql/internal/sql/types"
)

// This file implements the lazily built lookup indexes behind the
// compiled-plan access paths (see compiled.go and internal/engine/plan).
//
// The engine stores rows as a plain slice; indexes are a pure cache over
// it, maintained on demand. Validity is tracked by Table.baseSeq, which
// counts only the mutations that invalidate existing row positions
// (update, delete, undo application — Table.touchBase); pure appends
// leave it unchanged. An index records the baseSeq it was built under
// and the number of rows it covers: while baseSeq matches, the covered
// prefix is still exact, so the index extends incrementally over the
// appended tail instead of rebuilding — insert-heavy tables pay O(new
// rows), not O(table), per maintenance step. A position-invalidating
// mutation bumps baseSeq and the next probe rebuilds from scratch (one
// scan, the same cost as the full-scan execution it replaces, so the
// cache never loses against scanning).
//
// Indexes are built from immutable row-range segments. Extension never
// mutates a published index: it publishes a new index value whose
// segment list appends a tail segment, so a session still holding the
// previous value (or a shorter read-view capture of the same table —
// captures of one table share an index-cache lineage, see
// Table.capIC) keeps a consistent view without any locking beyond the
// build itself. Appended segments merge tiered (a segment merges into
// its predecessor until the predecessor covers more than twice its
// rows), so the list stays logarithmic in the table size and every row
// takes part in O(log n) merges over the table's lifetime — the
// amortized maintenance bound that keeps a steady insert load linear.
//
// Correctness contract: an index only accelerates candidate discovery.
// The executor re-evaluates the complete WHERE predicate on every
// candidate, and candidates are returned in table order, so index use
// can never change a result — only skip rows that provably cannot
// satisfy an indexed conjunct. Only INT-kind columns are indexable;
// if a key column holds a non-INT non-NULL value (possible only via the
// SkipDefaultTypeCheck quirk, which stores ill-typed DEFAULTs verbatim)
// the index is poisoned and the executor falls back to a full scan,
// because such values can still satisfy comparisons through the loose
// numeric-string coercion of types.Compare.

// indexCache holds the lazily built lookup indexes of one table
// instance. Every engine-resident table owns exactly one (allocated at
// CREATE TABLE or on header clone); successive clean read-view captures
// of one table share a lineage cache (Table.capIC). The cache has its
// own mutex because concurrent SELECT sessions build and consult
// indexes while holding only the engine read lock; published index
// values are immutable, so the mutex guards only the cache map.
type indexCache struct {
	mu     sync.Mutex
	hash   map[string]*hashIndex // colset key -> equality index
	sorted map[int]*sortedIndex  // column ordinal -> range index
}

func newIndexCache() *indexCache {
	return &indexCache{
		hash:   make(map[string]*hashIndex),
		sorted: make(map[int]*sortedIndex),
	}
}

// indexTailMax is the append-tail size below which probes scan the
// unindexed tail linearly instead of extending the published index.
// Extending on every probe would allocate a one-row segment (and its
// map) per insert; deferring until the tail reaches this many rows
// batches that maintenance while keeping the scan cost bounded.
const indexTailMax = 32

// hashIndex maps encoded key tuples to row positions for one column
// set, as an immutable list of row-range segments covering rows [0, n).
// Exact while the table's baseSeq equals base, every key column's
// colVer equals the recorded colVers entry, and the table holds at
// least n rows. A probe-local instance may additionally carry a small
// unindexed tail (rows [tailStart, n)), scanned linearly on lookup;
// published instances never do.
type hashIndex struct {
	base     uint64
	colVers  []uint64 // key columns' versions at build, parallel to the colset
	n        int
	poisoned bool
	segs     []*hashSeg

	tail      [][]types.Value
	tailStart int
	tailCols  []int
}

// hashSeg is one immutable row-range segment: rows [start, end) of the
// table at build time, keyed by encoded tuple, positions ascending.
type hashSeg struct {
	start, end int
	poisoned   bool
	m          map[string][]int
}

// sortedIndex holds one column's INT keys as an immutable list of
// per-row-range sorted runs. Coverage, validity and the probe-local
// tail as for hashIndex.
type sortedIndex struct {
	base     uint64
	colVer   uint64 // the key column's version at build
	n        int
	poisoned bool
	segs     []*sortedSeg

	tail      [][]types.Value
	tailStart int
	tailCol   int
}

// sortedSeg is one immutable sorted run over rows [start, end).
type sortedSeg struct {
	start, end int
	poisoned   bool
	keys       []int64
	pos        []int
}

// colsetKey encodes a column ordinal set as a map key.
func colsetKey(cols []int) string {
	b := make([]byte, 0, 2*len(cols))
	for _, c := range cols {
		b = binary.AppendVarint(b, int64(c))
	}
	return string(b)
}

// encodeIntKeys appends the fixed-width encoding of a key tuple.
func encodeIntKeys(dst []byte, keys []int64) []byte {
	for _, k := range keys {
		dst = binary.BigEndian.AppendUint64(dst, uint64(k))
	}
	return dst
}

// eqIndex returns the equality index over cols, building or extending
// it as needed; nil when a covered row poisons the column set. Callers
// hold the engine lock (either mode); the cache mutex serializes
// concurrent builders, so one session builds and the rest reuse.
func (ic *indexCache) eqIndex(t *Table, cols []int) *hashIndex {
	key := colsetKey(cols)
	base := t.baseSeq.Load()
	ic.mu.Lock()
	defer ic.mu.Unlock()
	ix := ic.hash[key]
	if ix != nil && ix.base == base && colVersMatch(t, cols, ix.colVers) {
		switch {
		case ix.n == len(t.Rows):
			// Exact coverage.
		case ix.n < len(t.Rows):
			// Rows were appended since the index was published. A small
			// tail is served by a probe-local instance that scans it
			// linearly — publishing would cost a segment allocation per
			// insert. Once the tail reaches indexTailMax (or holds a
			// poisoning value the linear scan cannot honor), extend for
			// real with a tail segment and merge tiered.
			if len(t.Rows)-ix.n < indexTailMax && intTail(t.Rows[ix.n:len(t.Rows)], cols) {
				ix = &hashIndex{
					base: base, colVers: ix.colVers, n: len(t.Rows), poisoned: ix.poisoned, segs: ix.segs,
					tail: t.Rows[ix.n:len(t.Rows):len(t.Rows)], tailStart: ix.n, tailCols: cols,
				}
				break
			}
			seg := buildHashSeg(t, cols, ix.n, len(t.Rows))
			segs := append(ix.segs[:len(ix.segs):len(ix.segs)], seg)
			for len(segs) >= 2 {
				a, b := segs[len(segs)-2], segs[len(segs)-1]
				if a.end-a.start > 2*(b.end-b.start) {
					break
				}
				segs = append(segs[:len(segs)-2:len(segs)-2], mergeHashSegs(a, b))
			}
			nix := &hashIndex{base: base, colVers: ix.colVers, n: len(t.Rows), segs: segs}
			nix.poisoned = ix.poisoned || seg.poisoned
			ic.hash[key] = nix
			ix = nix
		default:
			// The probing table is shorter than the published coverage
			// (an older capture sharing the lineage): serve the segment
			// prefix ending exactly at its row count, without
			// republishing — the longer index stays current.
			ix = hashPrefix(ix, base, len(t.Rows))
		}
	} else {
		ix = nil
	}
	if ix == nil {
		seg := buildHashSeg(t, cols, 0, len(t.Rows))
		ix = &hashIndex{
			base: base, colVers: colVersOf(t, cols), n: len(t.Rows),
			poisoned: seg.poisoned, segs: []*hashSeg{seg},
		}
		ic.hash[key] = ix
	}
	if ix == nil || ix.poisoned {
		return nil
	}
	return ix
}

// colVersOf snapshots the versions of the given columns (nil when no
// column of the table was ever updated in place — all-zero).
func colVersOf(t *Table, cols []int) []uint64 {
	if t.colVer == nil {
		return nil
	}
	vs := make([]uint64, len(cols))
	for i, ci := range cols {
		vs[i] = t.colVerOf(ci)
	}
	return vs
}

// colVersMatch reports whether the given columns' current versions
// equal the recorded build-time versions (nil records all-zero).
func colVersMatch(t *Table, cols []int, vers []uint64) bool {
	if vers == nil {
		for _, ci := range cols {
			if t.colVerOf(ci) != 0 {
				return false
			}
		}
		return true
	}
	for i, ci := range cols {
		if t.colVerOf(ci) != vers[i] {
			return false
		}
	}
	return true
}

// intTail reports whether every value of the given columns across rows
// is INT or NULL — the precondition for serving the rows by linear tail
// scan (anything else must go through the poisoning build path).
func intTail(rows [][]types.Value, cols []int) bool {
	for _, row := range rows {
		for _, ci := range cols {
			if k := row[ci].K; k != types.KindInt && k != types.KindNull {
				return false
			}
		}
	}
	return true
}

// hashPrefix returns an index over the segment prefix covering exactly
// n rows, or nil when no segment boundary lands on n.
func hashPrefix(ix *hashIndex, base uint64, n int) *hashIndex {
	for i, seg := range ix.segs {
		if seg.end != n {
			continue
		}
		pre := &hashIndex{base: base, colVers: ix.colVers, n: n, segs: ix.segs[: i+1 : i+1]}
		for _, s := range pre.segs {
			pre.poisoned = pre.poisoned || s.poisoned
		}
		return pre
	}
	return nil
}

// mergeHashSegs combines two adjacent segments into a fresh one. Both
// inputs stay untouched (published prefix indexes may still hold them);
// a's positions precede b's, so appending keeps per-key table order.
func mergeHashSegs(a, b *hashSeg) *hashSeg {
	seg := &hashSeg{
		start:    a.start,
		end:      b.end,
		poisoned: a.poisoned || b.poisoned,
		m:        make(map[string][]int, len(a.m)+len(b.m)),
	}
	for k, ps := range a.m {
		seg.m[k] = ps[:len(ps):len(ps)]
	}
	for k, ps := range b.m {
		seg.m[k] = append(seg.m[k], ps...)
	}
	return seg
}

// buildHashSeg indexes rows [start, end) of the table.
func buildHashSeg(t *Table, cols []int, start, end int) *hashSeg {
	seg := &hashSeg{start: start, end: end, m: make(map[string][]int, end-start)}
	kb := make([]byte, 0, 8*len(cols))
build:
	for ri := start; ri < end; ri++ {
		row := t.Rows[ri]
		kb = kb[:0]
		for _, ci := range cols {
			v := row[ci]
			switch v.K {
			case types.KindInt:
				kb = binary.BigEndian.AppendUint64(kb, uint64(v.I))
			case types.KindNull:
				// NULL keys never satisfy an equality conjunct (the
				// comparison is Unknown), so the row is simply not indexed.
				continue build
			default:
				seg.poisoned = true
				break build
			}
		}
		seg.m[string(kb)] = append(seg.m[string(kb)], ri)
	}
	return seg
}

// rangeIndex returns the sorted index over one column, building or
// extending it as needed; nil when a covered row poisons the column.
// Locking as for eqIndex.
func (ic *indexCache) rangeIndex(t *Table, col int) *sortedIndex {
	ic.mu.Lock()
	defer ic.mu.Unlock()
	base := t.baseSeq.Load()
	ver := t.colVerOf(col)
	ix := ic.sorted[col]
	if ix != nil && ix.base == base && ix.colVer == ver {
		switch {
		case ix.n == len(t.Rows):
		case ix.n < len(t.Rows):
			// Small appended tails are served probe-locally, as in eqIndex.
			if len(t.Rows)-ix.n < indexTailMax && intTail(t.Rows[ix.n:len(t.Rows)], []int{col}) {
				ix = &sortedIndex{
					base: base, colVer: ver, n: len(t.Rows), poisoned: ix.poisoned, segs: ix.segs,
					tail: t.Rows[ix.n:len(t.Rows):len(t.Rows)], tailStart: ix.n, tailCol: col,
				}
				break
			}
			seg := buildSortedSeg(t, col, ix.n, len(t.Rows))
			segs := append(ix.segs[:len(ix.segs):len(ix.segs)], seg)
			for len(segs) >= 2 {
				a, b := segs[len(segs)-2], segs[len(segs)-1]
				if a.end-a.start > 2*(b.end-b.start) {
					break
				}
				segs = append(segs[:len(segs)-2:len(segs)-2], mergeSortedSegs(a, b))
			}
			nix := &sortedIndex{base: base, colVer: ver, n: len(t.Rows), segs: segs}
			nix.poisoned = ix.poisoned || seg.poisoned
			ic.sorted[col] = nix
			ix = nix
		default:
			ix = sortedPrefix(ix, base, len(t.Rows))
		}
	} else {
		ix = nil
	}
	if ix == nil {
		seg := buildSortedSeg(t, col, 0, len(t.Rows))
		ix = &sortedIndex{base: base, colVer: ver, n: len(t.Rows), poisoned: seg.poisoned, segs: []*sortedSeg{seg}}
		ic.sorted[col] = ix
	}
	if ix.poisoned {
		return nil
	}
	return ix
}

// sortedPrefix is hashPrefix for range indexes.
func sortedPrefix(ix *sortedIndex, base uint64, n int) *sortedIndex {
	for i, seg := range ix.segs {
		if seg.end != n {
			continue
		}
		pre := &sortedIndex{base: base, colVer: ix.colVer, n: n, segs: ix.segs[: i+1 : i+1]}
		for _, s := range pre.segs {
			pre.poisoned = pre.poisoned || s.poisoned
		}
		return pre
	}
	return nil
}

// buildSortedSeg builds one sorted run over rows [start, end).
func buildSortedSeg(t *Table, col, start, end int) *sortedSeg {
	seg := &sortedSeg{start: start, end: end}
	for ri := start; ri < end; ri++ {
		v := t.Rows[ri][col]
		switch v.K {
		case types.KindInt:
			seg.keys = append(seg.keys, v.I)
			seg.pos = append(seg.pos, ri)
		case types.KindNull:
			// Range conjuncts on NULL are Unknown: the row cannot match.
		default:
			seg.poisoned = true
			return seg
		}
	}
	if len(seg.keys) > 1 {
		ord := make([]int, len(seg.keys))
		for i := range ord {
			ord[i] = i
		}
		sort.Slice(ord, func(a, b int) bool { return seg.keys[ord[a]] < seg.keys[ord[b]] })
		keys := make([]int64, len(ord))
		pos := make([]int, len(ord))
		for i, o := range ord {
			keys[i] = seg.keys[o]
			pos[i] = seg.pos[o]
		}
		seg.keys, seg.pos = keys, pos
	}
	return seg
}

// mergeSortedSegs merges two adjacent sorted runs into one covering
// [a.start, b.end). Inputs are immutable (they may still be referenced
// by published indexes); the merged run gets fresh key/pos slices. A
// poisoned input poisons the result, whose key content is then moot
// because probes short-circuit on the poisoned flag.
func mergeSortedSegs(a, b *sortedSeg) *sortedSeg {
	seg := &sortedSeg{start: a.start, end: b.end, poisoned: a.poisoned || b.poisoned}
	if seg.poisoned {
		return seg
	}
	seg.keys = make([]int64, 0, len(a.keys)+len(b.keys))
	seg.pos = make([]int, 0, len(a.pos)+len(b.pos))
	i, j := 0, 0
	for i < len(a.keys) && j < len(b.keys) {
		if a.keys[i] <= b.keys[j] {
			seg.keys = append(seg.keys, a.keys[i])
			seg.pos = append(seg.pos, a.pos[i])
			i++
		} else {
			seg.keys = append(seg.keys, b.keys[j])
			seg.pos = append(seg.pos, b.pos[j])
			j++
		}
	}
	seg.keys = append(seg.keys, a.keys[i:]...)
	seg.pos = append(seg.pos, a.pos[i:]...)
	seg.keys = append(seg.keys, b.keys[j:]...)
	seg.pos = append(seg.pos, b.pos[j:]...)
	return seg
}

// lookup returns the row positions matching one encoded key tuple, in
// table order (segments cover ascending row ranges; positions ascend
// within each segment).
func (ix *hashIndex) lookup(keys []int64) []int {
	kb := encodeIntKeys(make([]byte, 0, 8*len(keys)), keys)
	k := string(kb)
	if len(ix.segs) == 1 && len(ix.tail) == 0 {
		return ix.segs[0].m[k]
	}
	var out []int
	for _, seg := range ix.segs {
		out = append(out, seg.m[k]...)
	}
	for i, row := range ix.tail {
		match := true
		for j, ci := range ix.tailCols {
			// intTail vetted the tail: values are INT or NULL, and NULL
			// never satisfies an equality conjunct.
			if v := row[ci]; v.K != types.KindInt || v.I != keys[j] {
				match = false
				break
			}
		}
		if match {
			out = append(out, ix.tailStart+i)
		}
	}
	return out
}

// between returns the row positions whose key lies in the inclusive
// range [lo, hi] (either bound optional), re-sorted into table order so
// index-backed execution emits rows exactly as a full scan would.
func (ix *sortedIndex) between(lo, hi int64, haveLo, haveHi bool) []int {
	var out []int
	for _, seg := range ix.segs {
		i := 0
		if haveLo {
			i = sort.Search(len(seg.keys), func(k int) bool { return seg.keys[k] >= lo })
		}
		j := len(seg.keys)
		if haveHi {
			j = sort.Search(len(seg.keys), func(k int) bool { return seg.keys[k] > hi })
		}
		if i < j {
			out = append(out, seg.pos[i:j]...)
		}
	}
	for i, row := range ix.tail {
		v := row[ix.tailCol]
		if v.K != types.KindInt {
			continue // NULL: a range conjunct on NULL is Unknown
		}
		if (haveLo && v.I < lo) || (haveHi && v.I > hi) {
			continue
		}
		out = append(out, ix.tailStart+i)
	}
	sort.Ints(out)
	return out
}
