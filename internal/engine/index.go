package engine

import (
	"encoding/binary"
	"sort"
	"sync"

	"divsql/internal/sql/types"
)

// This file implements the lazily built lookup indexes behind the
// compiled-plan access paths (see compiled.go and internal/engine/plan).
//
// The engine stores rows as a plain slice; indexes are a pure cache over
// it, rebuilt on demand whenever the table has mutated since the last
// build. Validity is tracked by Table.mutSeq: every row mutation —
// including undo application — bumps it (Table.touch), and an index
// built at sequence m is usable exactly while mutSeq == m. A full
// rebuild costs one scan, the same as the full-scan execution it
// replaces, so the cache never loses against scanning; read-heavy
// phases amortize it across every subsequent lookup.
//
// Correctness contract: an index only accelerates candidate discovery.
// The executor re-evaluates the complete WHERE predicate on every
// candidate, and candidates are returned in table order, so index use
// can never change a result — only skip rows that provably cannot
// satisfy an indexed conjunct. Only INT-kind columns are indexable;
// if a key column holds a non-INT non-NULL value (possible only via the
// SkipDefaultTypeCheck quirk, which stores ill-typed DEFAULTs verbatim)
// the index is poisoned and the executor falls back to a full scan,
// because such values can still satisfy comparisons through the loose
// numeric-string coercion of types.Compare.

// indexCache holds the lazily built lookup indexes of one table
// instance. Every engine-resident table owns exactly one (allocated at
// CREATE TABLE or on header clone); instances are never shared between
// engines or snapshots. The cache has its own mutex because concurrent
// SELECT sessions build and consult indexes while holding only the
// engine read lock.
type indexCache struct {
	mu     sync.Mutex
	hash   map[string]*hashIndex // colset key -> equality index
	sorted map[int]*sortedIndex  // column ordinal -> range index
}

func newIndexCache() *indexCache {
	return &indexCache{
		hash:   make(map[string]*hashIndex),
		sorted: make(map[int]*sortedIndex),
	}
}

// hashIndex maps encoded key tuples to row positions (in table order)
// for one column set, valid while the table's mutSeq equals at.
type hashIndex struct {
	at       uint64
	poisoned bool
	m        map[string][]int
}

// sortedIndex holds one column's INT keys in ascending order with the
// owning row positions alongside, valid while mutSeq equals at.
type sortedIndex struct {
	at       uint64
	poisoned bool
	keys     []int64
	pos      []int
}

// colsetKey encodes a column ordinal set as a map key.
func colsetKey(cols []int) string {
	b := make([]byte, 0, 2*len(cols))
	for _, c := range cols {
		b = binary.AppendVarint(b, int64(c))
	}
	return string(b)
}

// encodeIntKeys appends the fixed-width encoding of a key tuple.
func encodeIntKeys(dst []byte, keys []int64) []byte {
	for _, k := range keys {
		dst = binary.BigEndian.AppendUint64(dst, uint64(k))
	}
	return dst
}

// eqIndex returns the equality index over cols, building it if absent
// or stale; nil when the column set is poisoned at the current mutSeq.
// Callers hold the engine lock (either mode); the cache mutex
// serializes concurrent builders, so one session builds and the rest
// reuse.
func (ic *indexCache) eqIndex(t *Table, cols []int) *hashIndex {
	key := colsetKey(cols)
	ic.mu.Lock()
	defer ic.mu.Unlock()
	if ix := ic.hash[key]; ix != nil && ix.at == t.mutSeq {
		if ix.poisoned {
			return nil
		}
		return ix
	}
	ix := &hashIndex{at: t.mutSeq, m: make(map[string][]int, len(t.Rows))}
	kb := make([]byte, 0, 8*len(cols))
build:
	for ri, row := range t.Rows {
		kb = kb[:0]
		for _, ci := range cols {
			v := row[ci]
			switch v.K {
			case types.KindInt:
				kb = binary.BigEndian.AppendUint64(kb, uint64(v.I))
			case types.KindNull:
				// NULL keys never satisfy an equality conjunct (the
				// comparison is Unknown), so the row is simply not indexed.
				continue build
			default:
				ix.poisoned = true
				break build
			}
		}
		ix.m[string(kb)] = append(ix.m[string(kb)], ri)
	}
	ic.hash[key] = ix
	if ix.poisoned {
		return nil
	}
	return ix
}

// rangeIndex returns the sorted index over one column, building it if
// absent or stale; nil when the column is poisoned at the current
// mutSeq. Locking as for eqIndex.
func (ic *indexCache) rangeIndex(t *Table, col int) *sortedIndex {
	ic.mu.Lock()
	defer ic.mu.Unlock()
	if ix := ic.sorted[col]; ix != nil && ix.at == t.mutSeq {
		if ix.poisoned {
			return nil
		}
		return ix
	}
	ix := &sortedIndex{at: t.mutSeq}
	for ri, row := range t.Rows {
		v := row[col]
		switch v.K {
		case types.KindInt:
			ix.keys = append(ix.keys, v.I)
			ix.pos = append(ix.pos, ri)
		case types.KindNull:
			// Range conjuncts on NULL are Unknown: the row cannot match.
		default:
			ix.poisoned = true
		}
		if ix.poisoned {
			break
		}
	}
	if !ix.poisoned && len(ix.keys) > 1 {
		ord := make([]int, len(ix.keys))
		for i := range ord {
			ord[i] = i
		}
		sort.Slice(ord, func(a, b int) bool { return ix.keys[ord[a]] < ix.keys[ord[b]] })
		keys := make([]int64, len(ord))
		pos := make([]int, len(ord))
		for i, o := range ord {
			keys[i] = ix.keys[o]
			pos[i] = ix.pos[o]
		}
		ix.keys, ix.pos = keys, pos
	}
	ic.sorted[col] = ix
	if ix.poisoned {
		return nil
	}
	return ix
}

// lookup returns the row positions matching one encoded key tuple, in
// table order.
func (ix *hashIndex) lookup(keys []int64) []int {
	kb := encodeIntKeys(make([]byte, 0, 8*len(keys)), keys)
	return ix.m[string(kb)]
}

// between returns the row positions whose key lies in the inclusive
// range [lo, hi] (either bound optional), re-sorted into table order so
// index-backed execution emits rows exactly as a full scan would.
func (ix *sortedIndex) between(lo, hi int64, haveLo, haveHi bool) []int {
	i := 0
	if haveLo {
		i = sort.Search(len(ix.keys), func(k int) bool { return ix.keys[k] >= lo })
	}
	j := len(ix.keys)
	if haveHi {
		j = sort.Search(len(ix.keys), func(k int) bool { return ix.keys[k] > hi })
	}
	if i >= j {
		return nil
	}
	out := append([]int(nil), ix.pos[i:j]...)
	sort.Ints(out)
	return out
}
