package engine

import (
	"errors"
	"sort"
	"sync"
	"time"

	"divsql/internal/sql/ast"
	"divsql/internal/sql/types"
)

// This file implements MVCC read views: per-statement (READ COMMITTED)
// and per-transaction (REPEATABLE READ) images of the committed state
// that pure SELECTs execute against without blocking on — or being
// blocked by — concurrent writers.
//
// The machinery reuses the copy-on-write committed-image idea from
// snapshot.go, but avoids snapshot.go's eager full-state clone:
//
//   - A readView is built by copying only the CATALOG maps and rewinding
//     open transactions' catalog/sequence undo records on the copies.
//     Table DATA is untouched at build time; each table is wrapped in a
//     viewTable that materializes its committed row image lazily, on
//     first access through the view.
//   - Materialization is O(1) in the common case: rows are immutable
//     once written and every row mutation installs a fresh outer Rows
//     slice (or appends beyond the captured length), so when the table
//     has not changed since the view was built and no open transaction
//     holds uncommitted changes to it, capturing the live Rows slice
//     header under the table latch yields a stable committed image
//     without copying a single row.
//   - Only when an open transaction holds uncommitted changes to the
//     table (or the table changed since the view was built) does
//     materialization clone the row-header slice and rewind the other
//     sessions' table-scoped undo records on the clone — the same
//     records that implement ROLLBACK.
//
// Write serialization is narrowed from the engine-wide lock to
// per-table latches: DML runs under the engine READ lock plus the
// latches of every table the statement can touch (target, subqueries,
// CHECK expressions, views — see statementRefsLocked), acquired in
// sorted name order so concurrent writers can never deadlock. DDL,
// ROLLBACK and state transfers still take the exclusive lock: they
// mutate the catalog maps that every other path reads locklessly.
//
// Consistency contract (documented in ISOLATION.md): under READ
// COMMITTED each statement sees a committed image per table; under
// concurrent load two tables first read by the same statement may be
// materialized a few commits apart. Under REPEATABLE READ the view is
// pinned at the transaction's first query and each table's image is
// frozen at its first materialization, which prevents non-repeatable
// reads and phantoms per table. Statements that read tables the
// transaction itself has written (or that follow in-transaction DDL)
// fall back to a latched read of the live plane with the OTHER
// sessions' uncommitted changes rewound, so a transaction always sees
// its own writes.

// IsoLevel is the engine's isolation-level lattice. The engine
// implements two behaviours; the four SQL level names collapse onto
// them (READ UNCOMMITTED requests are served at READ COMMITTED — the
// engine no longer exposes dirty reads — and SERIALIZABLE/SNAPSHOT are
// served with REPEATABLE READ snapshot semantics).
type IsoLevel int

// Isolation levels.
const (
	LevelReadCommitted IsoLevel = iota
	LevelRepeatableRead
)

// ParseIsoLevel maps a SQL isolation-level name (canonical upper-case,
// as produced by the parser) to the engine behaviour implementing it.
func ParseIsoLevel(name string) (IsoLevel, bool) {
	switch name {
	case "READ UNCOMMITTED", "READ COMMITTED":
		return LevelReadCommitted, true
	case "REPEATABLE READ", "SERIALIZABLE", "SNAPSHOT":
		return LevelRepeatableRead, true
	}
	return 0, false
}

// errSetTxnMidTxn is the deterministic error for SET TRANSACTION after
// the first statement of an open transaction.
var errSetTxnMidTxn = errors.New("SET TRANSACTION must be the first statement of a transaction")

// readView is one committed-state image: catalog maps rewound to the
// committed state at build time, and per-table lazily materialized row
// images. A view is immutable after build except for the lazy mat
// fields inside each viewTable (guarded by the viewTable's own mutex).
type readView struct {
	eng *Engine
	// seq/gen stamp the view for staleness checks: a view is current
	// while both match the engine's commitSeq and viewGen.
	seq uint64
	gen uint64
	// schema is the committed schema-version stamp, used as the plan
	// cache version for statements executed through this view. Two
	// views with equal stamps have identical catalogs, so compiled
	// plans are shared safely across views and with the live plane.
	schema uint64

	tables map[string]*viewTable
	views  map[string]*View
	indexs map[string]*Index
	seqs   map[string]*Sequence
}

// viewTable wraps one base table in a read view. All fields except mat
// are immutable after the view is built.
type viewTable struct {
	// live is the engine-resident table the image derives from (still
	// valid after a DROP: the view pins it).
	live *Table
	// mutSeqAtBuild is the table's mutation stamp when the view was
	// built; dirty records whether any open transaction held
	// uncommitted changes to the table at that time.
	mutSeqAtBuild uint64
	dirty         bool

	mu sync.Mutex
	// mat is the lazily materialized committed image (nil until first
	// access); clean marks an O(1) capture whose row image equals the
	// live table at mutSeqAtBuild, making the viewTable reusable by the
	// next view build while the table stays unchanged.
	mat   *Table
	clean bool
}

// premat wraps a table that was fully materialized during the view
// build itself (a table re-installed by rewinding an uncommitted DROP).
func premat(t *Table) *viewTable { return &viewTable{mat: t} }

// table returns the viewTable for name, or nil when the committed
// catalog has no such base table.
func (v *readView) table(name string) *viewTable { return v.tables[name] }

// materialize returns the committed row image of the table, building it
// on first access. Caller holds the engine read lock.
func (vt *viewTable) materialize(e *Engine) *Table {
	vt.mu.Lock()
	defer vt.mu.Unlock()
	if vt.mat != nil {
		return vt.mat
	}
	t := vt.live
	e.lockLatch(t)
	if !vt.dirty && t.mutSeq.Load() == vt.mutSeqAtBuild {
		// Unchanged since build and no uncommitted changes: capture the
		// live slice headers. Writers never mutate Rows below the
		// captured length in place (see dml.go's copy-on-write
		// contract), so the capture is a stable committed image.
		mat := captureTable(t)
		// Captures of one table share an index-cache lineage while its
		// baseSeq is unchanged (appends only): each new capture inherits
		// the previous captures' lookup indexes and extends them over
		// the appended rows instead of rebuilding (see index.go).
		mat.baseSeq.Store(t.baseSeq.Load())
		if t.capIC != nil && t.capICBase == t.baseSeq.Load() {
			mat.ic = t.capIC
		} else {
			t.capIC, t.capICBase = mat.ic, t.baseSeq.Load()
		}
		vt.mat = mat
		vt.clean = true
		t.rowsShared = true
		e.matCleans.Add(1)
	} else {
		// The table moved on (or carried uncommitted changes at build
		// time): clone the row headers and rewind every open
		// transaction's table-scoped undo records, yielding the
		// committed image as of now. Per-statement staleness checks
		// make the slightly newer image harmless (READ COMMITTED
		// semantics; see ISOLATION.md).
		vt.mat = e.committedTable(t, nil)
		e.matRewinds.Add(1)
	}
	t.latch.Unlock()
	return vt.mat
}

// captureTable snapshots a table's slice headers without copying rows.
// Caller holds the table latch; the capture stays valid because every
// later row mutation installs a fresh Rows slice or appends beyond the
// captured length, and Uniques is copied because index-creation undo
// shifts it in place.
func captureTable(t *Table) *Table {
	return &Table{
		Name:    t.Name,
		Cols:    t.Cols,
		Rows:    t.Rows,
		PKCols:  t.PKCols,
		Uniques: append([][]int(nil), t.Uniques...),
		Checks:  t.Checks,
		ic:      newIndexCache(),
		colVer:  append([]uint64(nil), t.colVer...),
	}
}

// committedTable clones the table and rewinds the table-scoped undo
// records of every open transaction except the given session's,
// producing the image of the committed state plus (when except is a
// session) that session's own uncommitted changes. Caller holds the
// engine read lock and the table's latch.
func (e *Engine) committedTable(t *Table, except *Session) *Table {
	ct := captureTable(t)
	ct.Rows = append([][]types.Value(nil), t.Rows...)
	dst := &state{tables: map[string]*Table{t.Name: ct}}
	for s := range e.sessions {
		if s == except {
			continue
		}
		s.txMu.Lock()
		if s.inTxn {
			for i := len(s.undo) - 1; i >= 0; i-- {
				r := s.undo[i]
				if r.kind == kindTable && r.table == t.Name {
					r.fn(dst, true)
				}
			}
		}
		s.txMu.Unlock()
	}
	return dst.tables[t.Name]
}

// currentView returns the engine's shared committed read view, building
// a fresh one when the cached view is stale. Caller holds the engine
// read lock. Builds are single-flighted under viewMu.
func (e *Engine) currentView() *readView {
	seq, gen := e.commitSeq.Load(), e.viewGen.Load()
	if v := e.curView.Load(); v != nil && v.seq == seq && v.gen == gen {
		e.viewHits.Add(1)
		return v
	}
	e.viewMu.Lock()
	defer e.viewMu.Unlock()
	seq, gen = e.commitSeq.Load(), e.viewGen.Load()
	if v := e.curView.Load(); v != nil && v.seq == seq && v.gen == gen {
		e.viewHits.Add(1)
		return v
	}
	v := e.buildView(seq, gen)
	e.curView.Store(v)
	e.viewBuilds.Add(1)
	return v
}

// buildView constructs a committed read view: copy the catalog maps,
// rewind open transactions' catalog and sequence records on the copies
// (pass 1), then rewind table records for tables that were re-installed
// by pass 1 (pass 2) and mark every other table carrying uncommitted
// changes dirty. The two-pass order makes the result independent of
// session iteration order: catalog rewinds (which can replace a table
// wholesale) land before any row rewind targets them. Caller holds the
// engine read lock and viewMu.
func (e *Engine) buildView(seq, gen uint64) *readView {
	v := &readView{
		eng:    e,
		seq:    seq,
		gen:    gen,
		schema: e.committedSchema,
		views:  make(map[string]*View, len(e.st.views)),
		indexs: make(map[string]*Index, len(e.st.indexs)),
		seqs:   make(map[string]*Sequence, len(e.st.seqs)),
	}
	tabs := make(map[string]*Table, len(e.st.tables))
	for n, t := range e.st.tables {
		tabs[n] = t
	}
	for n, vw := range e.st.views {
		v.views[n] = vw
	}
	for n, ix := range e.st.indexs {
		v.indexs[n] = ix
	}
	e.seqMu.Lock()
	for n, sq := range e.st.seqs {
		cp := *sq
		v.seqs[n] = &cp
	}
	e.seqMu.Unlock()

	dst := &state{tables: tabs, views: v.views, indexs: v.indexs, seqs: v.seqs}
	dirty := make(map[string]bool)
	var tableRecs []undoRec
	for s := range e.sessions {
		s.txMu.Lock()
		if s.inTxn {
			for i := len(s.undo) - 1; i >= 0; i-- {
				r := s.undo[i]
				switch r.kind {
				case kindCatalog, kindSeq:
					r.fn(dst, true)
				case kindTable:
					tableRecs = append(tableRecs, r)
				}
			}
		}
		s.txMu.Unlock()
	}
	for _, r := range tableRecs {
		if cur, ok := tabs[r.table]; ok && cur == e.st.tables[r.table] {
			// Still the live table instance: rewind lazily under the
			// table latch at first access.
			dirty[r.table] = true
			continue
		}
		// The table was re-installed (or replaced) by a catalog rewind:
		// it is already a private clone, rewind the rows now.
		r.fn(dst, true)
	}

	prev := e.curView.Load()
	v.tables = make(map[string]*viewTable, len(tabs))
	for n, t := range tabs {
		if t != e.st.tables[n] {
			v.tables[n] = premat(t)
			continue
		}
		ms := t.mutSeq.Load()
		if prev != nil && !dirty[n] {
			// Reuse the previous view's wrapper (and its materialized
			// image and lazy indexes) while the table is unchanged.
			if pv := prev.tables[n]; pv != nil && pv.live == t && !pv.dirty && pv.mutSeqAtBuild == ms {
				v.tables[n] = pv
				e.viewReuses.Add(1)
				continue
			}
		}
		v.tables[n] = &viewTable{live: t, mutSeqAtBuild: ms, dirty: dirty[n]}
	}
	return v
}

// ---------------------------------------------------------------------------
// Per-table write latches

// lockLatch acquires a table latch, counting contended acquisitions and
// the time spent waiting (the latch-wait observability surface).
func (e *Engine) lockLatch(t *Table) {
	if t.latch.TryLock() {
		return
	}
	start := time.Now()
	t.latch.Lock()
	e.latchWaits.Add(1)
	e.latchWaitNs.Add(uint64(time.Since(start)))
}

// latchTables acquires the latches of the named tables in sorted name
// order (names must be sorted and deduplicated; missing tables are
// skipped — the statement will fail resolving them) and returns the
// release function. Caller holds the engine read lock, which keeps the
// table map and the *Table instances stable.
func (e *Engine) latchTables(names []string) func() {
	held := make([]*Table, 0, len(names))
	for _, n := range names {
		if t, ok := e.st.tables[n]; ok {
			e.lockLatch(t)
			held = append(held, t)
		}
	}
	return func() {
		for i := len(held) - 1; i >= 0; i-- {
			held[i].latch.Unlock()
		}
	}
}

// statementRefsLocked computes the full set of base tables a statement
// can touch: the tables named by the statement (including inside
// subqueries anywhere in its expressions), the tables referenced by the
// target table's CHECK expressions (constraint checking evaluates
// them), and the transitive expansion of every referenced view. The
// result is sorted — the deadlock-free latch acquisition order. Caller
// holds the engine lock in at least read mode.
func (e *Engine) statementRefsLocked(st ast.Statement) []string {
	set := ast.Tables(st)
	switch x := st.(type) {
	case *ast.Insert:
		e.addCheckRefs(set, up(x.Table))
	case *ast.Update:
		e.addCheckRefs(set, up(x.Table))
	}
	// Transitive view expansion: a statement reading a view reads the
	// view's base tables.
	work := make([]string, 0, len(set))
	for n := range set {
		work = append(work, n)
	}
	for len(work) > 0 {
		n := work[len(work)-1]
		work = work[:len(work)-1]
		v, ok := e.st.views[n]
		if !ok {
			continue
		}
		for dep := range ast.Tables(v.Select) {
			if !set[dep] {
				set[dep] = true
				work = append(work, dep)
			}
		}
	}
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// addCheckRefs adds the tables referenced from inside the target
// table's CHECK expressions (scalar subqueries in CHECK read other
// tables during constraint evaluation).
func (e *Engine) addCheckRefs(set map[string]bool, target string) {
	t, ok := e.st.tables[target]
	if !ok {
		return
	}
	for _, chk := range t.Checks {
		ast.WalkExprs(chk, func(x ast.Expr) {
			var sel *ast.Select
			switch n := x.(type) {
			case *ast.Subquery:
				sel = n.Select
			case *ast.Exists:
				sel = n.Select
			case *ast.In:
				sel = n.Select
			}
			if sel != nil {
				for dep := range ast.Tables(sel) {
					set[dep] = true
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Read-plane resolution

// lookupTable resolves a base table on the session's active read plane:
// the own-writes overlay (live minus other transactions' uncommitted
// changes), the active read view's materialized image, or the live
// state. During a latched write statement (dmlOwn), statement-internal
// reads of tables another transaction is writing build the
// committed+own-writes image lazily and cache it in ownTabs for the
// rest of the statement, so DML sources and subqueries never observe
// other sessions' uncommitted rows; the statement holds the latch of
// every table it can read (statementRefsLocked), which is the
// precondition committedTable requires. Caller holds the engine lock in
// at least read mode.
func (s *Session) lookupTable(name string) (*Table, bool) {
	if s.ownTabs != nil {
		if t, ok := s.ownTabs[name]; ok {
			return t, true
		}
	}
	if s.curRead != nil {
		vt := s.curRead.table(name)
		if vt == nil {
			return nil, false
		}
		return vt.materialize(s.eng), true
	}
	t, ok := s.eng.st.tables[name]
	if ok && s.dmlOwn {
		// The result is cacheable for the statement's duration either
		// way: a clean table cannot become dirty while this statement
		// holds its latch (logging an undo record for it requires the
		// latch), and a dirty image frozen at first read is the
		// per-statement committed image the contract promises.
		ct := t
		if s.eng.othersInTxnOn(name, s) {
			ct = s.eng.committedTable(t, s)
		}
		if s.ownTabs == nil {
			s.ownTabs = make(map[string]*Table, 1)
		}
		s.ownTabs[name] = ct
		return ct, true
	}
	return t, ok
}

// lookupView resolves a view on the session's active read plane.
func (s *Session) lookupView(name string) (*View, bool) {
	if s.curRead != nil {
		v, ok := s.curRead.views[name]
		return v, ok
	}
	v, ok := s.eng.st.views[name]
	return v, ok
}

// catalogIndexes returns the index catalog of the session's active read
// plane (the own-writes path reads the live catalog: the transaction
// must see its own DDL).
func (s *Session) catalogIndexes() map[string]*Index {
	if s.ownTabs == nil && s.curRead != nil {
		return s.curRead.indexs
	}
	return s.eng.st.indexs
}

// planVersion is the schema stamp compiled plans are validated against
// on the session's active read plane.
func (s *Session) planVersion() uint64 {
	if s.curRead != nil {
		return s.curRead.schema
	}
	return s.eng.schemaVersion
}

// othersInTxnOn reports whether any open transaction other than s holds
// uncommitted changes to the named table. Caller holds the engine read
// lock.
func (e *Engine) othersInTxnOn(name string, except *Session) bool {
	for s := range e.sessions {
		if s == except {
			continue
		}
		s.txMu.Lock()
		found := false
		if s.inTxn {
			for _, r := range s.undo {
				if r.kind == kindTable && r.table == name {
					found = true
					break
				}
			}
		}
		s.txMu.Unlock()
		if found {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// SET TRANSACTION

// execSetTxn applies a SET TRANSACTION ISOLATION LEVEL statement.
// Outside a transaction it sets the session default (and the level of
// the next transaction); as the first statement of a transaction it
// sets that transaction's level; later in a transaction it fails
// deterministically. Level names the engine does not implement are
// rejected at the dialect layer (checkDialect) before reaching here.
func (s *Session) execSetTxn(st *ast.SetTxn) (*Result, error) {
	lvl, ok := ParseIsoLevel(st.Level)
	if !ok {
		return nil, errors.New("unknown isolation level " + st.Level)
	}
	if s.inTxn {
		if s.txnStmts > 0 {
			return nil, errSetTxnMidTxn
		}
		s.level = lvl
	} else {
		s.defLevel = lvl
		s.level = lvl
	}
	return &Result{Kind: ResultDDL}, nil
}

// IsolationLevel reports the session's current isolation level (the
// open transaction's level, or the session default).
func (s *Session) IsolationLevel() IsoLevel {
	s.eng.mu.RLock()
	defer s.eng.mu.RUnlock()
	return s.level
}
