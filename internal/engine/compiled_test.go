package engine

import (
	"reflect"
	"testing"

	"divsql/internal/engine/plan"
	"divsql/internal/sql/ast"
	"divsql/internal/sql/parser"
)

func seedIndexed(t *testing.T, s *Session) {
	t.Helper()
	sessExec(t, s, "CREATE TABLE KV (ID INT PRIMARY KEY, A INT, S VARCHAR(10))")
	sessExec(t, s, "CREATE INDEX KVA ON KV (A)")
	sessExec(t, s, "INSERT INTO KV VALUES (1, 10, 'a'), (2, 20, 'b'), (3, 20, 'c'), (4, NULL, 'd')")
}

// Access-path choice must be visible through LastPlan, and the shapes
// the TPC-C hot loop leans on must all run compiled.
func TestCompiledAccessPathSelection(t *testing.T) {
	e := NewOracle()
	s := e.NewSession()
	seedIndexed(t, s)
	for _, tc := range []struct {
		sql      string
		compiled bool
		path     plan.AccessPath
	}{
		{"SELECT S FROM KV WHERE ID = 2", true, plan.PointLookup},
		{"SELECT ID FROM KV WHERE A = 20", true, plan.PointLookup},
		{"SELECT ID FROM KV WHERE ID > 1 AND ID < 4", true, plan.RangeScan},
		{"SELECT ID FROM KV WHERE A BETWEEN 10 AND 20", true, plan.RangeScan},
		{"SELECT ID FROM KV WHERE S = 'a'", true, plan.FullScan},
		{"SELECT MAX(A) AS M FROM KV", true, plan.FullScan},
		{"SELECT ID FROM KV WHERE ID = 1 ORDER BY 1", true, plan.PointLookup},
		{"SELECT ID, A FROM KV GROUP BY ID, A", false, plan.FullScan},
		{"SELECT DISTINCT A FROM KV", false, plan.FullScan},
	} {
		sessExec(t, s, tc.sql)
		p := s.LastPlan()
		if p.Compiled != tc.compiled {
			t.Errorf("%q: compiled = %v, want %v", tc.sql, p.Compiled, tc.compiled)
		}
		if tc.compiled && p.Path != tc.path {
			t.Errorf("%q: path = %v, want %v", tc.sql, p.Path, tc.path)
		}
	}
}

// The compiled-plan cache is engine-wide: a statement compiled on one
// session must be a cache hit when any other session runs the same
// text.
func TestPlanCacheSharedAcrossSessions(t *testing.T) {
	e := NewOracle()
	a, b := e.NewSession(), e.NewSession()
	seedIndexed(t, a)
	const q = "SELECT S FROM KV WHERE ID = 3"
	sessExec(t, a, q)
	if a.LastPlan().CacheHit {
		t.Fatal("first execution reported a cache hit")
	}
	sessExec(t, b, q)
	if !b.LastPlan().CacheHit {
		t.Fatal("second session did not hit the shared plan cache")
	}
	if st := e.PlanCacheStats(); st.Hits == 0 {
		t.Fatalf("cache stats recorded no hits: %+v", st)
	}
}

// DDL must invalidate cached plans: the post-DDL execution recompiles
// (against the new schema) and re-caches.
func TestDDLInvalidatesCompiledPlans(t *testing.T) {
	e := NewOracle()
	s := e.NewSession()
	seedIndexed(t, s)
	const q = "SELECT ID FROM KV WHERE A = 20"
	sessExec(t, s, q)
	sessExec(t, s, q)
	if !s.LastPlan().CacheHit {
		t.Fatal("warm re-execution missed the cache")
	}
	sessExec(t, s, "CREATE INDEX KVS ON KV (ID, A)")
	res := sessExec(t, s, q)
	if s.LastPlan().CacheHit {
		t.Fatal("post-DDL execution served a stale plan")
	}
	if len(res.Rows) != 2 {
		t.Fatalf("post-DDL result has %d rows, want 2", len(res.Rows))
	}
	sessExec(t, s, q)
	if !s.LastPlan().CacheHit {
		t.Fatal("recompiled plan was not re-cached")
	}
}

// Regression: DDL inside a transaction that ROLLBACKs must roll the
// schema-version stamp back with it. Plans compiled against the
// rolled-back generation must never validate again, and plans compiled
// against the pre-transaction schema must recompile cleanly.
func TestRolledBackDDLRollsBackSchemaStamp(t *testing.T) {
	e := NewOracle()
	s := e.NewSession()
	seedIndexed(t, s)
	v0 := e.SchemaVersion()
	const q = "SELECT S FROM KV WHERE ID = 1"
	sessExec(t, s, q)

	sessExec(t, s, "BEGIN")
	sessExec(t, s, "CREATE INDEX KVTX ON KV (A, ID)")
	vTxn := e.SchemaVersion()
	if vTxn == v0 {
		t.Fatal("DDL did not bump the schema version")
	}
	sessExec(t, s, q) // re-caches the plan under the in-transaction stamp
	if e.SchemaVersion() != vTxn {
		t.Fatal("pure SELECT changed the schema version")
	}
	sessExec(t, s, "ROLLBACK")
	if got := e.SchemaVersion(); got != v0 {
		t.Fatalf("ROLLBACK left schema version %d, want the pre-transaction %d", got, v0)
	}

	// The entry stamped with the rolled-back generation must not serve.
	res := sessExec(t, s, q)
	if s.LastPlan().CacheHit {
		t.Fatal("plan compiled against a rolled-back schema generation was served")
	}
	if len(res.Rows) != 1 || res.Rows[0][0].String() != "a" {
		t.Fatalf("post-rollback result wrong: %v", rowStrings(res))
	}
	sessExec(t, s, q)
	if !s.LastPlan().CacheHit {
		t.Fatal("post-rollback recompile was not cached")
	}

	// Epochs are never reused: a later DDL must not mint the
	// rolled-back transaction's stamp.
	sessExec(t, s, "CREATE INDEX KVTX2 ON KV (A, ID)")
	if v := e.SchemaVersion(); v == vTxn || v == v0 {
		t.Fatalf("schema version %d reuses an old generation (v0=%d vTxn=%d)", v, v0, vTxn)
	}
}

// The forced plan variants must be result-identical to the analyzer's
// own choice on every query shape — the engine-test mirror of the
// difftest DQP-lite gate.
func TestForcedVariantEquivalence(t *testing.T) {
	e := NewOracle()
	s := e.NewSession()
	seedIndexed(t, s)
	for _, sql := range []string{
		"SELECT ID, A, S FROM KV WHERE ID = 2",
		"SELECT ID FROM KV WHERE A = 20",
		"SELECT ID FROM KV WHERE A = 20 AND S = 'b'",
		"SELECT ID FROM KV WHERE ID BETWEEN 2 AND 3",
		"SELECT ID FROM KV WHERE ID >= 2",
		"SELECT ID FROM KV WHERE A = 99",
		"SELECT ID FROM KV WHERE A IS NULL",
		"SELECT ID FROM KV WHERE ID = 1 OR A = 20",
		"SELECT COUNT(*) AS C FROM KV WHERE A = 20",
		"SELECT ID FROM KV WHERE ID = 2 ORDER BY 1 DESC",
	} {
		st, err := parser.Parse(sql)
		if err != nil {
			t.Fatalf("parse %q: %v", sql, err)
		}
		sel := st.(*ast.Select)
		auto, err := s.Exec(st)
		if err != nil {
			t.Fatalf("%q: %v", sql, err)
		}
		for _, force := range []plan.Force{plan.ForceFullScan, plan.ForceIndex} {
			got, err := s.ExecSelectVariant(sel, force, nil)
			if err != nil {
				t.Fatalf("%q under %v: %v", sql, force, err)
			}
			if !reflect.DeepEqual(rowStrings(got), rowStrings(auto)) {
				t.Errorf("%q: %v variant disagrees: %v vs %v", sql, force, rowStrings(got), rowStrings(auto))
			}
		}
	}
}

// An ill-typed value in an indexed INT column (the raw-default quirk)
// must poison the index, not corrupt results: the interpreter's loose
// numeric-string comparison matches the string row, so index skipping
// would drop it.
func TestPoisonedIndexKeepsLooseCoercionMatches(t *testing.T) {
	e := New(Config{Quirks: Quirks{SkipDefaultTypeCheck: true}})
	s := e.NewSession()
	sessExec(t, s, "CREATE TABLE P (ID INT PRIMARY KEY, A INT DEFAULT '7')")
	sessExec(t, s, "CREATE INDEX PA ON P (A)")
	sessExec(t, s, "INSERT INTO P (ID) VALUES (1)") // A = '7' stored verbatim
	sessExec(t, s, "INSERT INTO P (ID, A) VALUES (2, 7), (3, 8)")

	res := sessExec(t, s, "SELECT ID FROM P WHERE A = 7")
	if p := s.LastPlan(); !p.Compiled {
		t.Fatal("poisoned-index query left the compiled path entirely")
	}
	if got := rowStrings(res); len(got) != 2 || got[0] != "1" || got[1] != "2" {
		t.Fatalf("loose-coercion match lost under the index path: %v", got)
	}
	st, _ := parser.Parse("SELECT ID FROM P WHERE A = 7")
	full, err := s.ExecSelectVariant(st.(*ast.Select), plan.ForceFullScan, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rowStrings(full), rowStrings(res)) {
		t.Fatalf("forced full scan disagrees: %v vs %v", rowStrings(full), rowStrings(res))
	}
}

// Bind-arity errors must surface identically on every access path: a
// plan whose parameters are not covered by the bound vector cannot skip
// rows (the interpreter would raise the unbound-parameter error on the
// first row it evaluates).
func TestVariantExecutionRejectsNonPureSelects(t *testing.T) {
	e := NewOracle()
	s := e.NewSession()
	seedIndexed(t, s)
	sessExec(t, s, "CREATE SEQUENCE SQ")
	st, err := parser.Parse("SELECT NEXTVAL(SQ) AS N FROM KV WHERE ID = 1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.ExecSelectVariant(st.(*ast.Select), plan.ForceFullScan, nil); err == nil {
		t.Fatal("sequence-advancing SELECT accepted for variant re-execution")
	}
}
