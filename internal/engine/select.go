package engine

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"divsql/internal/sql/ast"
	"divsql/internal/sql/types"
)

// relation is an intermediate result during query evaluation.
type relation struct {
	cols []scopeCol
	rows [][]types.Value
}

// evalSelect evaluates a (possibly compound) query expression. outer is
// the enclosing scope for correlated subqueries (nil at top level).
//
// ORDER BY keys may reference source columns that are not projected; for
// simple (non-DISTINCT, non-UNION) queries they are computed as hidden
// trailing columns in the source scope and stripped after sorting. For
// DISTINCT/UNION results, SQL requires the keys to appear in the output,
// so they are resolved against the output columns.
func (e *Session) evalSelect(s *ast.Select, outer *scope) (*Result, error) {
	simple := s.Union == nil && !s.Distinct
	if simple && len(s.OrderBy) > 0 {
		res, err := e.evalSelectHiddenOrder(s, outer)
		if err != nil {
			return nil, err
		}
		applyLimit(s, res)
		return res, nil
	}

	res, err := e.evalSelectCore(s, outer)
	if err != nil {
		return nil, err
	}
	for u := s.Union; u != nil; u = u.Union {
		branch, err := e.evalSelectCore(u, outer)
		if err != nil {
			return nil, err
		}
		if len(branch.Columns) != len(res.Columns) {
			return nil, errors.New("UNION branches have different column counts")
		}
		res.Rows = append(res.Rows, branch.Rows...)
		if !unionAllAt(s, u) {
			res.Rows = dedupeRows(res.Rows)
		}
	}
	if len(s.OrderBy) > 0 {
		if err := orderRows(e, res, s.OrderBy, outer); err != nil {
			return nil, err
		}
	}
	applyLimit(s, res)
	return res, nil
}

func applyLimit(s *ast.Select, res *Result) {
	if s.LimitSyn != ast.LimitNone && int64(len(res.Rows)) > s.Limit {
		res.Rows = res.Rows[:s.Limit]
	}
}

// evalSelectHiddenOrder evaluates a simple SELECT, computing non-
// positional ORDER BY keys as hidden trailing columns in the source
// scope, sorting, then stripping the hidden columns.
func (e *Session) evalSelectHiddenOrder(s *ast.Select, outer *scope) (*Result, error) {
	cp := *s
	cp.Items = append([]ast.SelectItem(nil), s.Items...)
	// keyCol[k] >= 0 identifies the hidden column (offset from the end);
	// keyCol[k] < 0 encodes a 1-based output position as -(pos).
	keyCol := make([]int, len(s.OrderBy))
	hidden := 0
	for k, o := range s.OrderBy {
		if lit, ok := o.Expr.(*ast.Literal); ok && lit.Val.K == types.KindInt {
			keyCol[k] = -int(lit.Val.I)
			continue
		}
		cp.Items = append(cp.Items, ast.SelectItem{Expr: o.Expr, Alias: "__SORT__"})
		keyCol[k] = hidden
		hidden++
	}
	res, err := e.evalSelectCore(&cp, outer)
	if err != nil {
		return nil, err
	}
	visible := len(res.Columns) - hidden
	keyIdx := make([]int, len(keyCol))
	for k, kc := range keyCol {
		if kc >= 0 {
			keyIdx[k] = visible + kc
		} else {
			pos := -kc - 1
			if pos < 0 || pos >= visible {
				return nil, fmt.Errorf("ORDER BY position %d out of range", -kc)
			}
			keyIdx[k] = pos
		}
	}
	sort.SliceStable(res.Rows, func(i, j int) bool {
		for k, item := range s.OrderBy {
			c := compareForSort(res.Rows[i][keyIdx[k]], res.Rows[j][keyIdx[k]])
			if c == 0 {
				continue
			}
			if item.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	res.Columns = res.Columns[:visible]
	for i, row := range res.Rows {
		res.Rows[i] = row[:visible]
	}
	return res, nil
}

// unionAllAt reports whether the branch u was attached with UNION ALL.
func unionAllAt(first *ast.Select, u *ast.Select) bool {
	for cur := first; cur != nil; cur = cur.Union {
		if cur.Union == u {
			return cur.UnionAll
		}
	}
	return false
}

func dedupeRows(rows [][]types.Value) [][]types.Value {
	seen := make(map[string]bool, len(rows))
	out := rows[:0:0]
	for _, r := range rows {
		k := rowKey(r)
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, r)
	}
	return out
}

func rowKey(row []types.Value) string {
	var b strings.Builder
	for _, v := range row {
		b.WriteString(v.String())
		b.WriteByte('\x1f')
		b.WriteByte(byte('0' + int(v.K)))
		b.WriteByte('\x1e')
	}
	return b.String()
}

func orderRows(e *Session, res *Result, order []ast.OrderItem, outer *scope) error {
	outCols := make([]scopeCol, len(res.Columns))
	for i, c := range res.Columns {
		outCols[i] = scopeCol{name: up(c)}
	}
	keyOf := func(row []types.Value, item ast.OrderItem) (types.Value, error) {
		// Positional: ORDER BY 2.
		if lit, ok := item.Expr.(*ast.Literal); ok && lit.Val.K == types.KindInt {
			idx := int(lit.Val.I) - 1
			if idx < 0 || idx >= len(row) {
				return types.Value{}, fmt.Errorf("ORDER BY position %d out of range", lit.Val.I)
			}
			return row[idx], nil
		}
		// Column references match output columns by name, ignoring any
		// table qualifier (the source tables are gone at this point).
		if cr, ok := item.Expr.(*ast.ColumnRef); ok {
			name := up(cr.Column)
			for i, c := range outCols {
				if c.name == name {
					return row[i], nil
				}
			}
			return types.Value{}, fmt.Errorf("ORDER BY column %s must appear in the select list", refName(cr))
		}
		sc := &scope{cols: outCols, vals: row, parent: outer}
		return e.evalExpr(item.Expr, sc)
	}
	var sortErr error
	sort.SliceStable(res.Rows, func(i, j int) bool {
		if sortErr != nil {
			return false
		}
		for _, item := range order {
			a, err := keyOf(res.Rows[i], item)
			if err != nil {
				sortErr = err
				return false
			}
			b, err := keyOf(res.Rows[j], item)
			if err != nil {
				sortErr = err
				return false
			}
			c := compareForSort(a, b)
			if c == 0 {
				continue
			}
			if item.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	return sortErr
}

// compareForSort orders values with NULLs first, mixed kinds by kind.
func compareForSort(a, b types.Value) int {
	if a.IsNull() || b.IsNull() {
		switch {
		case a.IsNull() && b.IsNull():
			return 0
		case a.IsNull():
			return -1
		default:
			return 1
		}
	}
	if c, err := types.Compare(a, b); err == nil {
		return c
	}
	if a.K != b.K {
		return int(a.K) - int(b.K)
	}
	return strings.Compare(a.String(), b.String())
}

// ---------------------------------------------------------------------------
// Core SELECT (one branch, before UNION/ORDER/LIMIT)

func (e *Session) evalSelectCore(s *ast.Select, outer *scope) (*Result, error) {
	rel, err := e.buildFrom(s, outer)
	if err != nil {
		return nil, err
	}
	// Plan-time validation: column references must resolve against the
	// FROM relation (or an enclosing scope) even when no rows exist.
	for _, it := range s.Items {
		if !it.Star {
			if err := e.validateRefs(it.Expr, rel.cols, outer); err != nil {
				return nil, err
			}
		}
	}
	for _, x := range []ast.Expr{s.Where, s.Having} {
		if err := e.validateRefs(x, rel.cols, outer); err != nil {
			return nil, err
		}
	}
	for _, g := range s.GroupBy {
		if err := e.validateRefs(g, rel.cols, outer); err != nil {
			return nil, err
		}
	}
	if s.Where != nil {
		filtered := rel.rows[:0:0]
		for _, row := range rel.rows {
			sc := &scope{cols: rel.cols, vals: row, parent: outer}
			v, err := e.evalExpr(s.Where, sc)
			if err != nil {
				return nil, err
			}
			if types.TruthOf(v) == types.True {
				filtered = append(filtered, row)
			}
		}
		rel.rows = filtered
	}

	grouped := len(s.GroupBy) > 0 || s.Having != nil || selectHasAggregate(s)
	var res *Result
	if grouped {
		res, err = e.projectGrouped(s, rel, outer)
	} else {
		res, err = e.projectRows(s, rel, outer)
	}
	if err != nil {
		return nil, err
	}
	if s.Distinct {
		res.Rows = dedupeRows(res.Rows)
	}
	return res, nil
}

// selectHasAggregate reports whether the select's own items or HAVING
// aggregate over its rows. Subqueries are opaque: an aggregate inside a
// scalar subquery item aggregates the subquery's rows, not this
// select's, so descending into it (as the generic expression walker
// does) would wrongly collapse a row-wise outer query to one grouped
// row.
func selectHasAggregate(s *ast.Select) bool {
	for _, it := range s.Items {
		if hasOwnAggregate(it.Expr) {
			return true
		}
	}
	return hasOwnAggregate(s.Having)
}

// hasOwnAggregate walks one expression without entering subqueries.
func hasOwnAggregate(x ast.Expr) bool {
	switch n := x.(type) {
	case *ast.FuncCall:
		if isAggregateName(n.Name) {
			return true
		}
		for _, a := range n.Args {
			if hasOwnAggregate(a) {
				return true
			}
		}
	case *ast.Binary:
		return hasOwnAggregate(n.L) || hasOwnAggregate(n.R)
	case *ast.Unary:
		return hasOwnAggregate(n.X)
	case *ast.In:
		// n.Select is a subquery scope of its own.
		if hasOwnAggregate(n.X) {
			return true
		}
		for _, a := range n.List {
			if hasOwnAggregate(a) {
				return true
			}
		}
	case *ast.Between:
		return hasOwnAggregate(n.X) || hasOwnAggregate(n.Lo) || hasOwnAggregate(n.Hi)
	case *ast.Like:
		return hasOwnAggregate(n.X) || hasOwnAggregate(n.Pattern)
	case *ast.IsNull:
		return hasOwnAggregate(n.X)
	case *ast.Case:
		if hasOwnAggregate(n.Operand) || hasOwnAggregate(n.Else) {
			return true
		}
		for _, w := range n.Whens {
			if hasOwnAggregate(w.Cond) || hasOwnAggregate(w.Then) {
				return true
			}
		}
	case *ast.Cast:
		return hasOwnAggregate(n.X)
	}
	return false
}

func isAggregateName(name string) bool {
	switch strings.ToUpper(name) {
	case "AVG", "SUM", "COUNT", "MIN", "MAX":
		return true
	default:
		return false
	}
}

// validateRefs checks that every column reference outside nested
// subqueries resolves against the relation columns or an enclosing
// scope. Subqueries are skipped: they establish their own FROM scopes
// and are validated when evaluated.
func (e *Session) validateRefs(x ast.Expr, cols []scopeCol, outer *scope) error {
	var walk func(ast.Expr) error
	walk = func(n ast.Expr) error {
		switch v := n.(type) {
		case nil:
			return nil
		case *ast.ColumnRef:
			probe := &scope{cols: cols, vals: make([]types.Value, len(cols)), parent: outer}
			if _, ok, err := probe.lookup(v.Table, v.Column); err == nil && !ok {
				return fmt.Errorf("unknown column %s", refName(v))
			}
			return nil
		case *ast.Binary:
			if err := walk(v.L); err != nil {
				return err
			}
			return walk(v.R)
		case *ast.Unary:
			return walk(v.X)
		case *ast.FuncCall:
			if b, ok := e.eng.cfg.Funcs[strings.ToUpper(v.Name)]; ok && b.SeqFunc {
				return nil // first argument is a sequence name, not a column
			}
			for _, a := range v.Args {
				if err := walk(a); err != nil {
					return err
				}
			}
			return nil
		case *ast.Between:
			for _, a := range []ast.Expr{v.X, v.Lo, v.Hi} {
				if err := walk(a); err != nil {
					return err
				}
			}
			return nil
		case *ast.Like:
			if err := walk(v.X); err != nil {
				return err
			}
			return walk(v.Pattern)
		case *ast.IsNull:
			return walk(v.X)
		case *ast.Case:
			if err := walk(v.Operand); err != nil {
				return err
			}
			for _, w := range v.Whens {
				if err := walk(w.Cond); err != nil {
					return err
				}
				if err := walk(w.Then); err != nil {
					return err
				}
			}
			return walk(v.Else)
		case *ast.Cast:
			return walk(v.X)
		case *ast.In:
			if err := walk(v.X); err != nil {
				return err
			}
			for _, a := range v.List {
				if err := walk(a); err != nil {
					return err
				}
			}
			return nil // subquery validated on evaluation
		default:
			return nil // Exists/Subquery/Literal
		}
	}
	return walk(x)
}

// buildFrom constructs the source relation of a SELECT.
func (e *Session) buildFrom(s *ast.Select, outer *scope) (*relation, error) {
	if len(s.From) == 0 {
		return &relation{rows: [][]types.Value{{}}}, nil
	}
	var rel *relation
	for _, fi := range s.From {
		r, err := e.buildFromItem(fi, outer)
		if err != nil {
			return nil, err
		}
		if rel == nil {
			rel = r
		} else {
			rel = crossProduct(rel, r)
		}
	}
	return rel, nil
}

func (e *Session) buildFromItem(fi ast.FromItem, outer *scope) (*relation, error) {
	left, err := e.tableRefRelation(fi.Table, outer, false)
	if err != nil {
		return nil, err
	}
	for _, j := range fi.Joins {
		skipDistinct := j.Type == ast.JoinLeft && e.eng.cfg.Quirks.LeftJoinDistinctViewDup
		right, err := e.tableRefRelation(j.Right, outer, skipDistinct)
		if err != nil {
			return nil, err
		}
		left, err = e.joinRelations(left, right, j, outer)
		if err != nil {
			return nil, err
		}
	}
	return left, nil
}

func crossProduct(a, b *relation) *relation {
	out := &relation{cols: append(append([]scopeCol(nil), a.cols...), b.cols...)}
	out.rows = make([][]types.Value, 0, len(a.rows)*len(b.rows))
	for _, ra := range a.rows {
		for _, rb := range b.rows {
			row := make([]types.Value, 0, len(ra)+len(rb))
			row = append(row, ra...)
			row = append(row, rb...)
			out.rows = append(out.rows, row)
		}
	}
	return out
}

func (e *Session) joinRelations(a, b *relation, j ast.Join, outer *scope) (*relation, error) {
	out := &relation{cols: append(append([]scopeCol(nil), a.cols...), b.cols...)}
	if j.Type == ast.JoinCross || j.On == nil {
		return crossProduct(a, b), nil
	}
	matchOn := func(ra, rb []types.Value) (bool, error) {
		row := make([]types.Value, 0, len(ra)+len(rb))
		row = append(row, ra...)
		row = append(row, rb...)
		sc := &scope{cols: out.cols, vals: row, parent: outer}
		v, err := e.evalExpr(j.On, sc)
		if err != nil {
			return false, err
		}
		return types.TruthOf(v) == types.True, nil
	}
	rightMatched := make([]bool, len(b.rows))
	for _, ra := range a.rows {
		matched := false
		for bi, rb := range b.rows {
			ok, err := matchOn(ra, rb)
			if err != nil {
				return nil, err
			}
			if ok {
				matched = true
				rightMatched[bi] = true
				row := make([]types.Value, 0, len(ra)+len(rb))
				row = append(row, ra...)
				row = append(row, rb...)
				out.rows = append(out.rows, row)
			}
		}
		if !matched && (j.Type == ast.JoinLeft || j.Type == ast.JoinFull) {
			row := make([]types.Value, len(out.cols))
			copy(row, ra)
			out.rows = append(out.rows, row)
		}
	}
	if j.Type == ast.JoinRight || j.Type == ast.JoinFull {
		for bi, rb := range b.rows {
			if rightMatched[bi] {
				continue
			}
			row := make([]types.Value, len(out.cols))
			copy(row[len(a.cols):], rb)
			out.rows = append(out.rows, row)
		}
	}
	return out, nil
}

// tableRefRelation resolves a FROM reference: base table, view, or
// derived table. skipViewDistinct implements the LeftJoinDistinctViewDup
// quirk: the DISTINCT of a view definition is dropped when the view is
// expanded on the right of a LEFT OUTER JOIN.
func (e *Session) tableRefRelation(tr ast.TableRef, outer *scope, skipViewDistinct bool) (*relation, error) {
	if tr.Subquery != nil {
		res, err := e.evalSelect(tr.Subquery, outer)
		if err != nil {
			return nil, err
		}
		return resultToRelation(res, up(tr.Alias)), nil
	}
	name := up(tr.Name)
	qual := name
	if tr.Alias != "" {
		qual = up(tr.Alias)
	}
	if t, ok := e.lookupTable(name); ok {
		rel := &relation{cols: make([]scopeCol, len(t.Cols))}
		for i, c := range t.Cols {
			rel.cols[i] = scopeCol{qual: qual, name: c.Name}
		}
		rel.rows = append(rel.rows, t.Rows...)
		return rel, nil
	}
	if v, ok := e.lookupView(name); ok {
		sel := v.Select
		if skipViewDistinct && sel.Distinct {
			cp := *sel
			cp.Distinct = false
			sel = &cp
		}
		res, err := e.evalSelect(sel, nil)
		if err != nil {
			return nil, fmt.Errorf("expanding view %s: %w", name, err)
		}
		if len(v.Columns) > 0 {
			if len(v.Columns) != len(res.Columns) {
				return nil, fmt.Errorf("view %s column list does not match definition", name)
			}
			res.Columns = append([]string(nil), v.Columns...)
		}
		return resultToRelation(res, qual), nil
	}
	return nil, fmt.Errorf("%w: %s", ErrTableNotFound, name)
}

func resultToRelation(res *Result, qual string) *relation {
	rel := &relation{cols: make([]scopeCol, len(res.Columns)), rows: res.Rows}
	for i, c := range res.Columns {
		rel.cols[i] = scopeCol{qual: qual, name: up(c)}
	}
	return rel
}

// ---------------------------------------------------------------------------
// Projection

func (e *Session) projectRows(s *ast.Select, rel *relation, outer *scope) (*Result, error) {
	cols, exprs, err := e.expandItems(s, rel)
	if err != nil {
		return nil, err
	}
	res := &Result{Kind: ResultRows, Columns: cols}
	for _, row := range rel.rows {
		sc := &scope{cols: rel.cols, vals: row, parent: outer}
		out := make([]types.Value, len(exprs))
		for i, ex := range exprs {
			if ex.star >= 0 {
				out[i] = row[ex.star]
				continue
			}
			v, err := e.evalExpr(ex.expr, sc)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		res.Rows = append(res.Rows, out)
	}
	return res, nil
}

type projExpr struct {
	expr ast.Expr
	star int // >=0: direct column index from a * expansion
}

// expandItems resolves the SELECT list into output column names and
// projection expressions, expanding * and tbl.*.
func (e *Session) expandItems(s *ast.Select, rel *relation) ([]string, []projExpr, error) {
	var cols []string
	var exprs []projExpr
	for _, it := range s.Items {
		switch {
		case it.Star && it.StarTable == "":
			for i, c := range rel.cols {
				cols = append(cols, c.name)
				exprs = append(exprs, projExpr{star: i})
			}
		case it.Star:
			q := up(it.StarTable)
			found := false
			for i, c := range rel.cols {
				if c.qual == q {
					cols = append(cols, c.name)
					exprs = append(exprs, projExpr{star: i})
					found = true
				}
			}
			if !found {
				return nil, nil, fmt.Errorf("unknown table qualifier %s.*", it.StarTable)
			}
		default:
			name, err := e.outputName(it)
			if err != nil {
				return nil, nil, err
			}
			cols = append(cols, name)
			exprs = append(exprs, projExpr{expr: it.Expr, star: -1})
		}
	}
	return cols, exprs, nil
}

// outputName determines the result column name for a projection item,
// honouring the unaliased-aggregate quirks (bug 222476).
func (e *Session) outputName(it ast.SelectItem) (string, error) {
	if it.Alias != "" {
		return up(it.Alias), nil
	}
	switch x := it.Expr.(type) {
	case *ast.ColumnRef:
		return up(x.Column), nil
	case *ast.FuncCall:
		name := strings.ToUpper(x.Name)
		if name == "AVG" || name == "SUM" {
			if e.eng.cfg.Quirks.UnaliasedAggregateError {
				// Quirk (bug 222476 on MS): unaliased AVG/SUM makes the
				// statement fail with a spurious internal error.
				return "", fmt.Errorf("internal error: unnamed aggregate result column in %s()", name)
			}
			if e.eng.cfg.Quirks.BlankAggregateAliases {
				// Quirk (bug 222476 on IB): the field name comes back
				// empty, although the value itself is correct.
				return "", nil
			}
		}
		return renderExprName(it.Expr), nil
	default:
		return renderExprName(it.Expr), nil
	}
}

func renderExprName(x ast.Expr) string {
	sel := &ast.Select{Items: []ast.SelectItem{{Expr: x}}}
	text := ast.Render(sel)
	return strings.ToUpper(strings.TrimPrefix(text, "SELECT "))
}

// ---------------------------------------------------------------------------
// Grouped projection (GROUP BY / aggregates)

func (e *Session) projectGrouped(s *ast.Select, rel *relation, outer *scope) (*Result, error) {
	type group struct {
		key  string
		rows [][]types.Value
	}
	var groups []*group
	if len(s.GroupBy) > 0 {
		index := make(map[string]*group)
		for _, row := range rel.rows {
			sc := &scope{cols: rel.cols, vals: row, parent: outer}
			var kb strings.Builder
			for _, gexpr := range s.GroupBy {
				v, err := e.evalExpr(gexpr, sc)
				if err != nil {
					return nil, err
				}
				kb.WriteString(v.String())
				kb.WriteByte('\x1f')
				kb.WriteByte(byte('0' + int(v.K)))
				kb.WriteByte('\x1e')
			}
			k := kb.String()
			g, ok := index[k]
			if !ok {
				g = &group{key: k}
				index[k] = g
				groups = append(groups, g)
			}
			g.rows = append(g.rows, row)
		}
	} else {
		// Global aggregate: one group over all rows (possibly empty).
		groups = append(groups, &group{rows: rel.rows})
	}

	cols := make([]string, 0, len(s.Items))
	for _, it := range s.Items {
		if it.Star {
			return nil, errors.New("cannot use * with GROUP BY or aggregates")
		}
		name, err := e.outputName(it)
		if err != nil {
			return nil, err
		}
		cols = append(cols, name)
	}
	res := &Result{Kind: ResultRows, Columns: cols}
	for _, g := range groups {
		if s.Having != nil {
			hv, err := e.evalGroupExpr(s.Having, g.rows, rel.cols, outer)
			if err != nil {
				return nil, err
			}
			if types.TruthOf(hv) != types.True {
				continue
			}
		}
		out := make([]types.Value, len(s.Items))
		for i, it := range s.Items {
			v, err := e.evalGroupExpr(it.Expr, g.rows, rel.cols, outer)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		res.Rows = append(res.Rows, out)
	}
	return res, nil
}

// evalGroupExpr evaluates an expression in grouped context: aggregate
// calls accumulate over the group's rows; other leaves resolve against
// the group's first row.
func (e *Session) evalGroupExpr(x ast.Expr, groupRows [][]types.Value, cols []scopeCol, outer *scope) (types.Value, error) {
	if fc, ok := x.(*ast.FuncCall); ok && isAggregateName(fc.Name) {
		return e.evalAggregate(fc, groupRows, cols, outer)
	}
	switch n := x.(type) {
	case *ast.Binary:
		l, err := e.evalGroupExpr(n.L, groupRows, cols, outer)
		if err != nil {
			return types.Value{}, err
		}
		r, err := e.evalGroupExpr(n.R, groupRows, cols, outer)
		if err != nil {
			return types.Value{}, err
		}
		return e.evalBinary(&ast.Binary{Op: n.Op, L: &ast.Literal{Val: l}, R: &ast.Literal{Val: r}}, nil)
	case *ast.Unary:
		v, err := e.evalGroupExpr(n.X, groupRows, cols, outer)
		if err != nil {
			return types.Value{}, err
		}
		return e.evalUnary(&ast.Unary{Op: n.Op, X: &ast.Literal{Val: v}}, nil)
	default:
		var row []types.Value
		if len(groupRows) > 0 {
			row = groupRows[0]
		} else {
			row = make([]types.Value, len(cols))
		}
		sc := &scope{cols: cols, vals: row, parent: outer}
		return e.evalExpr(x, sc)
	}
}

func (e *Session) evalAggregate(fc *ast.FuncCall, groupRows [][]types.Value, cols []scopeCol, outer *scope) (types.Value, error) {
	name := strings.ToUpper(fc.Name)
	if fc.Star {
		if name != "COUNT" {
			return types.Value{}, fmt.Errorf("%s(*) is not valid", name)
		}
		return types.NewInt(int64(len(groupRows))), nil
	}
	if len(fc.Args) != 1 {
		return types.Value{}, fmt.Errorf("%s takes exactly one argument", name)
	}
	var vals []types.Value
	seen := make(map[string]bool)
	for _, row := range groupRows {
		sc := &scope{cols: cols, vals: row, parent: outer}
		v, err := e.evalExpr(fc.Args[0], sc)
		if err != nil {
			return types.Value{}, err
		}
		if v.IsNull() {
			continue
		}
		if fc.Distinct {
			k := v.String() + "\x1f" + v.K.String()
			if seen[k] {
				continue
			}
			seen[k] = true
		}
		vals = append(vals, v)
	}
	switch name {
	case "COUNT":
		return types.NewInt(int64(len(vals))), nil
	case "SUM", "AVG":
		if len(vals) == 0 {
			return types.Null(), nil
		}
		allInt := true
		sum := 0.0
		var isum int64
		for _, v := range vals {
			nv, err := numericOperand(v)
			if err != nil {
				return types.Value{}, err
			}
			if nv.K != types.KindInt {
				allInt = false
			}
			sum += nv.AsFloat()
			isum += nv.AsInt()
		}
		if name == "SUM" {
			if allInt {
				return types.NewInt(isum), nil
			}
			return types.NewFloat(sum), nil
		}
		return types.NewFloat(sum / float64(len(vals))), nil
	case "MIN", "MAX":
		if len(vals) == 0 {
			return types.Null(), nil
		}
		best := vals[0]
		for _, v := range vals[1:] {
			c, err := types.Compare(v, best)
			if err != nil {
				return types.Value{}, err
			}
			if (name == "MIN" && c < 0) || (name == "MAX" && c > 0) {
				best = v
			}
		}
		return best, nil
	default:
		return types.Value{}, fmt.Errorf("unknown aggregate %s", name)
	}
}
