package engine

import (
	"fmt"

	"divsql/internal/sql/ast"
	"divsql/internal/sql/types"
)

// dmlEqCandidates narrows an UPDATE/DELETE row visit through the lazy
// index machinery, under the same contract as the compiled SELECT path
// (plan.Analyze + candidateRows): the top-level AND conjuncts of the
// form `col = value` (INT column of t, literal or parameter value)
// select an equality index, and the probe returns a superset of the
// WHERE-true positions in table order — narrowing only skips rows that
// provably cannot satisfy an indexed conjunct. The second result is
// false when only a full scan is sound (no usable conjuncts, non-INT
// key value that could still match through loose coercion, poisoned
// index).
func (s *Session) dmlEqCandidates(t *Table, where ast.Expr) ([]int, bool) {
	if where == nil {
		return nil, false
	}
	var cols []int
	var vals []ast.Expr
	stack := []ast.Expr{where}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		b, ok := x.(*ast.Binary)
		if !ok {
			continue
		}
		switch b.Op {
		case ast.OpAnd:
			stack = append(stack, b.L, b.R)
			continue
		case ast.OpEq:
		default:
			continue
		}
		cr, val := b.L, b.R
		if _, ok := cr.(*ast.ColumnRef); !ok {
			cr, val = b.R, b.L
		}
		ref, ok := cr.(*ast.ColumnRef)
		if !ok {
			continue
		}
		switch val.(type) {
		case *ast.Literal, *ast.Param:
		default:
			continue
		}
		if q := up(ref.Table); q != "" && q != t.Name {
			continue
		}
		ci := t.colIndex(ref.Column)
		if ci < 0 || t.Cols[ci].Kind != types.KindInt {
			continue
		}
		dup := false
		for _, c := range cols {
			if c == ci {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		cols = append(cols, ci)
		vals = append(vals, val)
	}
	if len(cols) == 0 {
		return nil, false
	}
	// Canonical column order keys the index cache consistently across
	// textual conjunct orderings.
	for i := 1; i < len(cols); i++ {
		for j := i; j > 0 && cols[j] < cols[j-1]; j-- {
			cols[j], cols[j-1] = cols[j-1], cols[j]
			vals[j], vals[j-1] = vals[j-1], vals[j]
		}
	}
	keys := make([]int64, len(cols))
	for i, vx := range vals {
		v, err := s.evalExpr(vx, nil)
		if err != nil {
			return nil, false
		}
		switch v.K {
		case types.KindInt:
			keys[i] = v.I
		case types.KindNull:
			// Equality with NULL is Unknown on every row: provably empty.
			return []int{}, true
		default:
			return nil, false
		}
	}
	ix := t.ic.eqIndex(t, cols)
	if ix == nil {
		return nil, false
	}
	return ix.lookup(keys), true
}

func (e *Session) execInsert(ins *ast.Insert) (*Result, error) {
	t, ok := e.eng.st.tables[up(ins.Table)]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrTableNotFound, ins.Table)
	}
	targets, err := insertTargets(t, ins.Columns)
	if err != nil {
		return nil, err
	}

	var sourceRows [][]types.Value
	if ins.Select != nil {
		res, err := e.evalSelect(ins.Select, nil)
		if err != nil {
			return nil, err
		}
		sourceRows = res.Rows
	} else {
		for _, exprRow := range ins.Rows {
			row := make([]types.Value, 0, len(exprRow))
			for _, ex := range exprRow {
				v, err := e.evalExpr(ex, nil)
				if err != nil {
					return nil, err
				}
				row = append(row, v)
			}
			sourceRows = append(sourceRows, row)
		}
	}

	inserted := 0
	// Statement atomicity: a failure on any row unwinds the rows this
	// statement already appended. Without this, a mid-statement error
	// would leave rows that no undo record covers — ROLLBACK would keep
	// them and Snapshot's committed-image rewind would leak them.
	undoPartial := func() {
		if inserted > 0 {
			partial := make([][]types.Value, inserted)
			copy(partial, t.Rows[len(t.Rows)-inserted:])
			t.removeRowsByIdentity(partial)
		}
	}
	for _, src := range sourceRows {
		if len(src) != len(targets) {
			undoPartial()
			return nil, fmt.Errorf("INSERT has %d values for %d columns", len(src), len(targets))
		}
		row, err := e.buildRow(t, targets, src)
		if err != nil {
			undoPartial()
			return nil, err
		}
		if err := e.checkConstraints(t, row, -1); err != nil {
			undoPartial()
			return nil, err
		}
		t.Rows = append(t.Rows, row)
		inserted++
	}
	if inserted > 0 {
		t.touch()
		// Undo by row identity, not by position: other sessions'
		// statements may land between this insert and a rollback, so
		// truncating the tail could remove their rows instead of ours.
		added := make([][]types.Value, inserted)
		copy(added, t.Rows[len(t.Rows)-inserted:])
		tname := t.Name
		e.logUndoTable(tname, func(dst *state, _ bool) {
			if dt, ok := dst.tables[tname]; ok {
				dt.removeRowsByIdentity(added)
			}
		})
	}
	return &Result{Kind: ResultCount, Affected: int64(inserted)}, nil
}

// removeRowsByIdentity deletes the given row slices from the table,
// matching by slice identity rather than value, so a rollback removes
// exactly the transaction's own rows even when statements from other
// sessions interleaved after the insert.
func (t *Table) removeRowsByIdentity(rows [][]types.Value) {
	drop := make(map[*types.Value]bool, len(rows))
	for _, r := range rows {
		if len(r) > 0 {
			drop[&r[0]] = true
		}
	}
	// Rebuild into a fresh backing array: read views capture the live
	// Rows slice header, so surviving rows must never shift in place
	// beneath a published capture.
	kept := make([][]types.Value, 0, len(t.Rows))
	for _, r := range t.Rows {
		if len(r) > 0 && drop[&r[0]] {
			continue
		}
		kept = append(kept, r)
	}
	t.Rows = kept
	t.rowsShared = false
	t.touchBase()
}

// sameRow reports whether two rows are the same storage slice.
func sameRow(a, b []types.Value) bool {
	return len(a) > 0 && len(b) > 0 && &a[0] == &b[0]
}

// insertTargets maps the INSERT column list to column indexes (all
// columns, in order, when the list is empty).
func insertTargets(t *Table, cols []string) ([]int, error) {
	if len(cols) == 0 {
		idx := make([]int, len(t.Cols))
		for i := range t.Cols {
			idx[i] = i
		}
		return idx, nil
	}
	idx := make([]int, 0, len(cols))
	seen := make(map[int]bool, len(cols))
	for _, c := range cols {
		i := t.colIndex(c)
		if i < 0 {
			return nil, fmt.Errorf("unknown column %s in table %s", c, t.Name)
		}
		if seen[i] {
			return nil, fmt.Errorf("column %s specified twice", c)
		}
		seen[i] = true
		idx = append(idx, i)
	}
	return idx, nil
}

// buildRow produces a full storage row from target column values,
// applying defaults, coercion and NOT NULL checks.
func (e *Session) buildRow(t *Table, targets []int, src []types.Value) ([]types.Value, error) {
	row := make([]types.Value, len(t.Cols))
	provided := make([]bool, len(t.Cols))
	for i, ci := range targets {
		v, err := coerce(src[i], t.Cols[ci].Kind)
		if err != nil {
			return nil, fmt.Errorf("column %s: %w", t.Cols[ci].Name, err)
		}
		row[ci] = v
		provided[ci] = true
	}
	for ci, col := range t.Cols {
		if provided[ci] {
			continue
		}
		switch {
		case col.Default != nil:
			dv, err := e.evalConst(col.Default)
			if err != nil {
				return nil, err
			}
			if col.RawDefault {
				// Quirk path (bug 217042(3)): the invalid default was
				// accepted at CREATE TABLE and is applied verbatim,
				// bypassing coercion — an ill-typed value lands in the row.
				row[ci] = dv
				continue
			}
			cv, err := coerce(dv, col.Kind)
			if err != nil {
				return nil, fmt.Errorf("default for column %s: %w", col.Name, err)
			}
			row[ci] = cv
		default:
			row[ci] = types.Null()
		}
	}
	for ci, col := range t.Cols {
		if col.NotNull && row[ci].IsNull() {
			return nil, fmt.Errorf("%w: column %s is NOT NULL", ErrConstraint, col.Name)
		}
	}
	return row, nil
}

// checkConstraints verifies PK/UNIQUE/CHECK for a candidate row. skipIdx
// excludes one row position (the row being updated), -1 for inserts.
func (e *Session) checkConstraints(t *Table, row []types.Value, skipIdx int) error {
	keysets := make([][]int, 0, 1+len(t.Uniques))
	if len(t.PKCols) > 0 {
		keysets = append(keysets, t.PKCols)
	}
	keysets = append(keysets, t.Uniques...)
	for _, key := range keysets {
		allSet := true
		allInt := true
		for _, ci := range key {
			switch row[ci].K {
			case types.KindNull:
				allSet = false
			case types.KindInt:
			default:
				allInt = false
			}
		}
		if !allSet {
			continue // NULLs never collide under UNIQUE
		}
		// Fast path, inserts only: when the candidate key is all-INT,
		// probe the lazily maintained equality index instead of
		// scanning. The index extends incrementally over appended rows
		// (index.go), so a run of inserts pays O(1) amortized per
		// duplicate check instead of O(table) — the difference between
		// linear and quadratic load cost on append-heavy tables. A
		// poisoned index (non-INT value in a key column somewhere in
		// the table) falls back to the scan, as does a non-INT
		// candidate. Updates always scan: mid-statement the index is
		// stale (rows already replaced in place are invalidated only at
		// statement end), so a probe could see replaced key values.
		if allInt && skipIdx == -1 {
			if ix := t.ic.eqIndex(t, key); ix != nil {
				keys := make([]int64, len(key))
				for i, ci := range key {
					keys[i] = row[ci].I
				}
				for _, ri := range ix.lookup(keys) {
					if ri != skipIdx {
						return fmt.Errorf("%w: duplicate key in table %s", ErrConstraint, t.Name)
					}
				}
				continue
			}
		}
		for ri, existing := range t.Rows {
			if ri == skipIdx {
				continue
			}
			same := true
			for _, ci := range key {
				if !types.Identical(existing[ci], row[ci]) {
					same = false
					break
				}
			}
			if same {
				return fmt.Errorf("%w: duplicate key in table %s", ErrConstraint, t.Name)
			}
		}
	}
	for _, chk := range t.Checks {
		sc := &scope{cols: tableScopeCols(t), vals: row}
		v, err := e.evalExpr(chk, sc)
		if err != nil {
			return err
		}
		if types.TruthOf(v) == types.False {
			return fmt.Errorf("%w: CHECK failed on table %s", ErrConstraint, t.Name)
		}
	}
	return nil
}

func tableScopeCols(t *Table) []scopeCol {
	cols := make([]scopeCol, len(t.Cols))
	for i, c := range t.Cols {
		cols[i] = scopeCol{qual: t.Name, name: c.Name}
	}
	return cols
}

// findDuplicate returns the index of a row that collides with another on
// the given key columns, or -1.
func (t *Table) findDuplicate(key []int) int {
	seen := make(map[string]bool, len(t.Rows))
	for ri, row := range t.Rows {
		allSet := true
		var kb []byte
		for _, ci := range key {
			if row[ci].IsNull() {
				allSet = false
				break
			}
			kb = append(kb, row[ci].String()...)
			kb = append(kb, 0x1f)
		}
		if !allSet {
			continue
		}
		k := string(kb)
		if seen[k] {
			return ri
		}
		seen[k] = true
	}
	return -1
}

func (e *Session) execUpdate(upd *ast.Update) (*Result, error) {
	t, ok := e.eng.st.tables[up(upd.Table)]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrTableNotFound, upd.Table)
	}
	setIdx := make([]int, len(upd.Sets))
	for i, sc := range upd.Sets {
		ci := t.colIndex(sc.Column)
		if ci < 0 {
			return nil, fmt.Errorf("unknown column %s in table %s", sc.Column, t.Name)
		}
		setIdx[i] = ci
	}
	cols := tableScopeCols(t)
	var affected int64
	type change struct {
		old, new []types.Value
	}
	var changes []change
	// Statement atomicity: a failure on any row swaps back the rows this
	// statement already replaced (see execInsert for why partial effects
	// must not survive an error).
	undoPartial := func() {
		for i := len(changes) - 1; i >= 0; i-- {
			for ri, r := range t.Rows {
				if sameRow(r, changes[i].new) {
					t.Rows[ri] = changes[i].old
					break
				}
			}
		}
		if len(changes) > 0 {
			t.bumpCols(setIdx)
		}
	}
	// One scope reused across the scan (vals swapped per row): the
	// evaluator never retains a scope past the call, and the allocation
	// would otherwise dominate the statement on long tables.
	sc := &scope{cols: cols}
	// updateRow applies the statement to one row position; the caller
	// runs undoPartial on error.
	updateRow := func(ri int, row []types.Value) error {
		if upd.Where != nil {
			sc.vals = row
			v, err := e.evalExpr(upd.Where, sc)
			if err != nil {
				return err
			}
			if types.TruthOf(v) != types.True {
				return nil
			}
		}
		newRow := append([]types.Value(nil), row...)
		for i, scl := range upd.Sets {
			sc.vals = row
			v, err := e.evalExpr(scl.Value, sc)
			if err != nil {
				return err
			}
			cv, err := coerce(v, t.Cols[setIdx[i]].Kind)
			if err != nil {
				return fmt.Errorf("column %s: %w", t.Cols[setIdx[i]].Name, err)
			}
			if t.Cols[setIdx[i]].NotNull && cv.IsNull() {
				return fmt.Errorf("%w: column %s is NOT NULL", ErrConstraint, t.Cols[setIdx[i]].Name)
			}
			newRow[setIdx[i]] = cv
		}
		if err := e.checkConstraints(t, newRow, ri); err != nil {
			return err
		}
		if len(changes) == 0 && t.rowsShared {
			// Copy-on-write: while a read view holds a capture of the
			// current Rows header, the first replacement installs a fresh
			// backing array so the capture keeps a stable committed
			// image. Unshared tables are written in place — the copy is
			// O(table), which would otherwise tax every UPDATE.
			t.Rows = append([][]types.Value(nil), t.Rows...)
			t.rowsShared = false
		}
		changes = append(changes, change{old: row, new: newRow})
		t.Rows[ri] = newRow
		// Per-replacement version bump: only the SET columns' indexes
		// invalidate (positions never move), and a subquery evaluated for
		// a later row of this same statement sees the replacement.
		t.bumpCols(setIdx)
		affected++
		return nil
	}
	// Candidate narrowing makes point UPDATEs O(matched), not O(table):
	// positions are computed from the pre-statement index (in-place
	// replacements never move a position), each visited at most once
	// with its pre-statement row image — exactly the rows and values the
	// full scan would have visited and found WHERE-true.
	if cands, narrowed := e.dmlEqCandidates(t, upd.Where); narrowed {
		for _, ri := range cands {
			if err := updateRow(ri, t.Rows[ri]); err != nil {
				undoPartial()
				return nil, err
			}
		}
	} else {
		for ri, row := range t.Rows {
			if err := updateRow(ri, row); err != nil {
				undoPartial()
				return nil, err
			}
		}
	}
	if len(changes) > 0 {
		// Undo by row identity: find the replacement row wherever it now
		// sits and swap the original back. Positional restore would panic
		// or clobber other sessions' rows if the table shifted between
		// the update and the rollback; identity restore is a no-op for a
		// row another session deleted meanwhile. One position map keeps
		// the rollback linear in the table size.
		saved, tname := changes, t.Name
		e.logUndoTable(tname, func(dst *state, _ bool) {
			t, ok := dst.tables[tname]
			if !ok {
				return
			}
			// Copy-on-write for the same reason as the forward path: the
			// swaps below must not reach into a captured row image.
			if t.rowsShared {
				t.Rows = append([][]types.Value(nil), t.Rows...)
				t.rowsShared = false
			}
			pos := make(map[*types.Value]int, len(t.Rows))
			for ri, r := range t.Rows {
				if len(r) > 0 {
					pos[&r[0]] = ri
				}
			}
			for i := len(saved) - 1; i >= 0; i-- {
				ch := saved[i]
				if len(ch.new) == 0 {
					continue
				}
				if ri, ok := pos[&ch.new[0]]; ok {
					t.Rows[ri] = ch.old
				}
			}
			t.bumpCols(setIdx)
		})
	}
	return &Result{Kind: ResultCount, Affected: affected}, nil
}

func (e *Session) execDelete(del *ast.Delete) (*Result, error) {
	t, ok := e.eng.st.tables[up(del.Table)]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrTableNotFound, del.Table)
	}
	cols := tableScopeCols(t)
	kept := t.Rows[:0:0]
	var removed [][]types.Value
	var affected int64
	oldRows := t.Rows
	sc := &scope{cols: cols}
	if cands, narrowed := e.dmlEqCandidates(t, del.Where); narrowed {
		// Candidate narrowing: rows outside the candidate set provably
		// fail an equality conjunct and are kept without evaluating the
		// predicate. An empty WHERE-true set short-circuits before any
		// row movement.
		del2 := make(map[int]bool, len(cands))
		for _, ri := range cands {
			sc.vals = t.Rows[ri]
			v, err := e.evalExpr(del.Where, sc)
			if err != nil {
				return nil, err
			}
			if types.TruthOf(v) == types.True {
				del2[ri] = true
			}
		}
		if len(del2) == 0 {
			return &Result{Kind: ResultCount, Affected: 0}, nil
		}
		for ri, row := range t.Rows {
			if del2[ri] {
				removed = append(removed, row)
				affected++
			} else {
				kept = append(kept, row)
			}
		}
	} else {
		for _, row := range t.Rows {
			d := true
			if del.Where != nil {
				sc.vals = row
				v, err := e.evalExpr(del.Where, sc)
				if err != nil {
					return nil, err
				}
				d = types.TruthOf(v) == types.True
			}
			if d {
				removed = append(removed, row)
				affected++
			} else {
				kept = append(kept, row)
			}
		}
	}
	if affected > 0 {
		t.Rows = kept
		t.rowsShared = false
		t.touchBase()
		tname := t.Name
		e.logUndoTable(tname, func(dst *state, toSnap bool) {
			t, ok := dst.tables[tname]
			if !ok {
				return
			}
			// When the table is untouched since the delete (every kept row
			// still in place), restore the original row list — exact order
			// and all. Otherwise other sessions' statements interleaved:
			// re-append the removed rows instead, so a stale row list
			// cannot erase their committed changes. A snapshot clone gets
			// a fresh backing array: oldRows aliases the live table's
			// storage, which a later live rollback would hand back to the
			// (mutable) live plane.
			untouched := len(t.Rows) == len(kept)
			if untouched {
				for i := range kept {
					if !sameRow(t.Rows[i], kept[i]) {
						untouched = false
						break
					}
				}
			}
			switch {
			case untouched && toSnap:
				t.Rows = append([][]types.Value(nil), oldRows...)
			case untouched:
				t.Rows = oldRows
				// oldRows may alias an array a read view captured before
				// the delete; mark it shared so the next in-place
				// replacement copies first.
				t.rowsShared = true
			default:
				t.Rows = append(t.Rows, removed...)
			}
			t.touchBase()
		})
	}
	return &Result{Kind: ResultCount, Affected: affected}, nil
}
