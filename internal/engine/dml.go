package engine

import (
	"fmt"

	"divsql/internal/sql/ast"
	"divsql/internal/sql/types"
)

func (e *Session) execInsert(ins *ast.Insert) (*Result, error) {
	t, ok := e.eng.st.tables[up(ins.Table)]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrTableNotFound, ins.Table)
	}
	targets, err := insertTargets(t, ins.Columns)
	if err != nil {
		return nil, err
	}

	var sourceRows [][]types.Value
	if ins.Select != nil {
		res, err := e.evalSelect(ins.Select, nil)
		if err != nil {
			return nil, err
		}
		sourceRows = res.Rows
	} else {
		for _, exprRow := range ins.Rows {
			row := make([]types.Value, 0, len(exprRow))
			for _, ex := range exprRow {
				v, err := e.evalExpr(ex, nil)
				if err != nil {
					return nil, err
				}
				row = append(row, v)
			}
			sourceRows = append(sourceRows, row)
		}
	}

	inserted := 0
	// Statement atomicity: a failure on any row unwinds the rows this
	// statement already appended. Without this, a mid-statement error
	// would leave rows that no undo record covers — ROLLBACK would keep
	// them and Snapshot's committed-image rewind would leak them.
	undoPartial := func() {
		if inserted > 0 {
			partial := make([][]types.Value, inserted)
			copy(partial, t.Rows[len(t.Rows)-inserted:])
			t.removeRowsByIdentity(partial)
		}
	}
	for _, src := range sourceRows {
		if len(src) != len(targets) {
			undoPartial()
			return nil, fmt.Errorf("INSERT has %d values for %d columns", len(src), len(targets))
		}
		row, err := e.buildRow(t, targets, src)
		if err != nil {
			undoPartial()
			return nil, err
		}
		if err := e.checkConstraints(t, row, -1); err != nil {
			undoPartial()
			return nil, err
		}
		t.Rows = append(t.Rows, row)
		inserted++
	}
	if inserted > 0 {
		t.touch()
		// Undo by row identity, not by position: other sessions'
		// statements may land between this insert and a rollback, so
		// truncating the tail could remove their rows instead of ours.
		added := make([][]types.Value, inserted)
		copy(added, t.Rows[len(t.Rows)-inserted:])
		tname := t.Name
		e.logUndo(func(dst *state, _ bool) {
			if dt, ok := dst.tables[tname]; ok {
				dt.removeRowsByIdentity(added)
			}
		})
	}
	return &Result{Kind: ResultCount, Affected: int64(inserted)}, nil
}

// removeRowsByIdentity deletes the given row slices from the table,
// matching by slice identity rather than value, so a rollback removes
// exactly the transaction's own rows even when statements from other
// sessions interleaved after the insert.
func (t *Table) removeRowsByIdentity(rows [][]types.Value) {
	drop := make(map[*types.Value]bool, len(rows))
	for _, r := range rows {
		if len(r) > 0 {
			drop[&r[0]] = true
		}
	}
	kept := t.Rows[:0]
	for _, r := range t.Rows {
		if len(r) > 0 && drop[&r[0]] {
			continue
		}
		kept = append(kept, r)
	}
	t.Rows = kept
	t.touch()
}

// sameRow reports whether two rows are the same storage slice.
func sameRow(a, b []types.Value) bool {
	return len(a) > 0 && len(b) > 0 && &a[0] == &b[0]
}

// insertTargets maps the INSERT column list to column indexes (all
// columns, in order, when the list is empty).
func insertTargets(t *Table, cols []string) ([]int, error) {
	if len(cols) == 0 {
		idx := make([]int, len(t.Cols))
		for i := range t.Cols {
			idx[i] = i
		}
		return idx, nil
	}
	idx := make([]int, 0, len(cols))
	seen := make(map[int]bool, len(cols))
	for _, c := range cols {
		i := t.colIndex(c)
		if i < 0 {
			return nil, fmt.Errorf("unknown column %s in table %s", c, t.Name)
		}
		if seen[i] {
			return nil, fmt.Errorf("column %s specified twice", c)
		}
		seen[i] = true
		idx = append(idx, i)
	}
	return idx, nil
}

// buildRow produces a full storage row from target column values,
// applying defaults, coercion and NOT NULL checks.
func (e *Session) buildRow(t *Table, targets []int, src []types.Value) ([]types.Value, error) {
	row := make([]types.Value, len(t.Cols))
	provided := make([]bool, len(t.Cols))
	for i, ci := range targets {
		v, err := coerce(src[i], t.Cols[ci].Kind)
		if err != nil {
			return nil, fmt.Errorf("column %s: %w", t.Cols[ci].Name, err)
		}
		row[ci] = v
		provided[ci] = true
	}
	for ci, col := range t.Cols {
		if provided[ci] {
			continue
		}
		switch {
		case col.Default != nil:
			dv, err := e.evalConst(col.Default)
			if err != nil {
				return nil, err
			}
			if col.RawDefault {
				// Quirk path (bug 217042(3)): the invalid default was
				// accepted at CREATE TABLE and is applied verbatim,
				// bypassing coercion — an ill-typed value lands in the row.
				row[ci] = dv
				continue
			}
			cv, err := coerce(dv, col.Kind)
			if err != nil {
				return nil, fmt.Errorf("default for column %s: %w", col.Name, err)
			}
			row[ci] = cv
		default:
			row[ci] = types.Null()
		}
	}
	for ci, col := range t.Cols {
		if col.NotNull && row[ci].IsNull() {
			return nil, fmt.Errorf("%w: column %s is NOT NULL", ErrConstraint, col.Name)
		}
	}
	return row, nil
}

// checkConstraints verifies PK/UNIQUE/CHECK for a candidate row. skipIdx
// excludes one row position (the row being updated), -1 for inserts.
func (e *Session) checkConstraints(t *Table, row []types.Value, skipIdx int) error {
	keysets := make([][]int, 0, 1+len(t.Uniques))
	if len(t.PKCols) > 0 {
		keysets = append(keysets, t.PKCols)
	}
	keysets = append(keysets, t.Uniques...)
	for _, key := range keysets {
		allSet := true
		for _, ci := range key {
			if row[ci].IsNull() {
				allSet = false
			}
		}
		if !allSet {
			continue // NULLs never collide under UNIQUE
		}
		for ri, existing := range t.Rows {
			if ri == skipIdx {
				continue
			}
			same := true
			for _, ci := range key {
				if !types.Identical(existing[ci], row[ci]) {
					same = false
					break
				}
			}
			if same {
				return fmt.Errorf("%w: duplicate key in table %s", ErrConstraint, t.Name)
			}
		}
	}
	for _, chk := range t.Checks {
		sc := &scope{cols: tableScopeCols(t), vals: row}
		v, err := e.evalExpr(chk, sc)
		if err != nil {
			return err
		}
		if types.TruthOf(v) == types.False {
			return fmt.Errorf("%w: CHECK failed on table %s", ErrConstraint, t.Name)
		}
	}
	return nil
}

func tableScopeCols(t *Table) []scopeCol {
	cols := make([]scopeCol, len(t.Cols))
	for i, c := range t.Cols {
		cols[i] = scopeCol{qual: t.Name, name: c.Name}
	}
	return cols
}

// findDuplicate returns the index of a row that collides with another on
// the given key columns, or -1.
func (t *Table) findDuplicate(key []int) int {
	seen := make(map[string]bool, len(t.Rows))
	for ri, row := range t.Rows {
		allSet := true
		var kb []byte
		for _, ci := range key {
			if row[ci].IsNull() {
				allSet = false
				break
			}
			kb = append(kb, row[ci].String()...)
			kb = append(kb, 0x1f)
		}
		if !allSet {
			continue
		}
		k := string(kb)
		if seen[k] {
			return ri
		}
		seen[k] = true
	}
	return -1
}

func (e *Session) execUpdate(upd *ast.Update) (*Result, error) {
	t, ok := e.eng.st.tables[up(upd.Table)]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrTableNotFound, upd.Table)
	}
	setIdx := make([]int, len(upd.Sets))
	for i, sc := range upd.Sets {
		ci := t.colIndex(sc.Column)
		if ci < 0 {
			return nil, fmt.Errorf("unknown column %s in table %s", sc.Column, t.Name)
		}
		setIdx[i] = ci
	}
	cols := tableScopeCols(t)
	var affected int64
	type change struct {
		old, new []types.Value
	}
	var changes []change
	// Statement atomicity: a failure on any row swaps back the rows this
	// statement already replaced (see execInsert for why partial effects
	// must not survive an error).
	undoPartial := func() {
		for i := len(changes) - 1; i >= 0; i-- {
			for ri, r := range t.Rows {
				if sameRow(r, changes[i].new) {
					t.Rows[ri] = changes[i].old
					break
				}
			}
		}
		if len(changes) > 0 {
			t.touch()
		}
	}
	for ri, row := range t.Rows {
		if upd.Where != nil {
			sc := &scope{cols: cols, vals: row}
			v, err := e.evalExpr(upd.Where, sc)
			if err != nil {
				undoPartial()
				return nil, err
			}
			if types.TruthOf(v) != types.True {
				continue
			}
		}
		newRow := append([]types.Value(nil), row...)
		for i, scl := range upd.Sets {
			sc := &scope{cols: cols, vals: row}
			v, err := e.evalExpr(scl.Value, sc)
			if err != nil {
				undoPartial()
				return nil, err
			}
			cv, err := coerce(v, t.Cols[setIdx[i]].Kind)
			if err != nil {
				undoPartial()
				return nil, fmt.Errorf("column %s: %w", t.Cols[setIdx[i]].Name, err)
			}
			if t.Cols[setIdx[i]].NotNull && cv.IsNull() {
				undoPartial()
				return nil, fmt.Errorf("%w: column %s is NOT NULL", ErrConstraint, t.Cols[setIdx[i]].Name)
			}
			newRow[setIdx[i]] = cv
		}
		if err := e.checkConstraints(t, newRow, ri); err != nil {
			undoPartial()
			return nil, err
		}
		changes = append(changes, change{old: row, new: newRow})
		t.Rows[ri] = newRow
		affected++
	}
	if len(changes) > 0 {
		t.touch()
		// Undo by row identity: find the replacement row wherever it now
		// sits and swap the original back. Positional restore would panic
		// or clobber other sessions' rows if the table shifted between
		// the update and the rollback; identity restore is a no-op for a
		// row another session deleted meanwhile. One position map keeps
		// the rollback linear in the table size.
		saved, tname := changes, t.Name
		e.logUndo(func(dst *state, _ bool) {
			t, ok := dst.tables[tname]
			if !ok {
				return
			}
			pos := make(map[*types.Value]int, len(t.Rows))
			for ri, r := range t.Rows {
				if len(r) > 0 {
					pos[&r[0]] = ri
				}
			}
			for i := len(saved) - 1; i >= 0; i-- {
				ch := saved[i]
				if len(ch.new) == 0 {
					continue
				}
				if ri, ok := pos[&ch.new[0]]; ok {
					t.Rows[ri] = ch.old
				}
			}
			t.touch()
		})
	}
	return &Result{Kind: ResultCount, Affected: affected}, nil
}

func (e *Session) execDelete(del *ast.Delete) (*Result, error) {
	t, ok := e.eng.st.tables[up(del.Table)]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrTableNotFound, del.Table)
	}
	cols := tableScopeCols(t)
	kept := t.Rows[:0:0]
	var removed [][]types.Value
	var affected int64
	oldRows := t.Rows
	for _, row := range t.Rows {
		del2 := true
		if del.Where != nil {
			sc := &scope{cols: cols, vals: row}
			v, err := e.evalExpr(del.Where, sc)
			if err != nil {
				return nil, err
			}
			del2 = types.TruthOf(v) == types.True
		}
		if del2 {
			removed = append(removed, row)
			affected++
		} else {
			kept = append(kept, row)
		}
	}
	if affected > 0 {
		t.Rows = kept
		t.touch()
		tname := t.Name
		e.logUndo(func(dst *state, toSnap bool) {
			t, ok := dst.tables[tname]
			if !ok {
				return
			}
			// When the table is untouched since the delete (every kept row
			// still in place), restore the original row list — exact order
			// and all. Otherwise other sessions' statements interleaved:
			// re-append the removed rows instead, so a stale row list
			// cannot erase their committed changes. A snapshot clone gets
			// a fresh backing array: oldRows aliases the live table's
			// storage, which a later live rollback would hand back to the
			// (mutable) live plane.
			untouched := len(t.Rows) == len(kept)
			if untouched {
				for i := range kept {
					if !sameRow(t.Rows[i], kept[i]) {
						untouched = false
						break
					}
				}
			}
			switch {
			case untouched && toSnap:
				t.Rows = append([][]types.Value(nil), oldRows...)
			case untouched:
				t.Rows = oldRows
			default:
				t.Rows = append(t.Rows, removed...)
			}
			t.touch()
		})
	}
	return &Result{Kind: ResultCount, Affected: affected}, nil
}
