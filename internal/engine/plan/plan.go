// Package plan is the engine's analyzer: it lowers a parsed SELECT into
// a compiled access plan through a pipeline of small, atomic rules, in
// the spirit of rule-based analyzers like go-mysql-server's. The
// package is pure — it sees the catalog only through the Catalog
// interface and never touches engine state — so the rules are
// independently testable and the engine keeps the execution monopoly.
//
// The contract with the executor is deliberately narrow: a plan names
// candidate rows (which index to consult with which key expressions),
// never final rows. The executor re-evaluates the complete WHERE
// predicate over every candidate and emits candidates in table order,
// so a plan can only skip rows that provably cannot satisfy an indexed
// conjunct — access-path choice is invisible in results, which is
// exactly what the forced-variant differential oracle (difftest's
// DQP-lite gate) verifies.
package plan

import (
	"strings"

	"divsql/internal/sql/ast"
	"divsql/internal/sql/types"
)

// AccessPath enumerates how a plan reaches its rows.
type AccessPath int

// Access paths.
const (
	// FullScan visits every row (the fallback, and a forceable variant).
	FullScan AccessPath = iota
	// PointLookup probes a hash index over an equality-covered prefix of
	// the primary key or a secondary index.
	PointLookup
	// RangeScan walks a sorted single-column index between bounds.
	RangeScan
)

// String names the access path (for plan introspection and tests).
func (p AccessPath) String() string {
	switch p {
	case PointLookup:
		return "point-lookup"
	case RangeScan:
		return "range-scan"
	default:
		return "full-scan"
	}
}

// Force overrides the analyzer's access-path choice, the hook behind
// multi-plan differential execution: the same statement runs once per
// forced variant and any result disagreement is an engine bug.
type Force int

// Force modes.
const (
	// ForceAuto lets the analyzer choose.
	ForceAuto Force = iota
	// ForceFullScan pins the plan to the full-scan fallback.
	ForceFullScan
	// ForceIndex demands an index-backed path when one is available
	// (identical to auto, which always prefers an index; the distinct
	// value keeps variant runs self-describing).
	ForceIndex
)

// String names the force mode (for variant-disagreement reports).
func (f Force) String() string {
	switch f {
	case ForceFullScan:
		return "force-full-scan"
	case ForceIndex:
		return "force-index"
	default:
		return "auto"
	}
}

// ColMeta describes one column as the analyzer sees it.
type ColMeta struct {
	Name string
	Kind types.Kind
}

// TableMeta is the catalog image of one base table: its columns, the
// primary-key ordinals and every secondary keyset (declared indexes and
// unique constraints) usable for access-path selection.
type TableMeta struct {
	Name    string
	Cols    []ColMeta
	PK      []int
	Indexes [][]int
}

// Catalog resolves table names for the analyzer. Implementations must
// upper-case-normalize names the way the engine catalog does.
type Catalog interface {
	TableMeta(name string) (TableMeta, bool)
}

// Bound is one end of a range-scan interval. Val must be an *ast.Literal
// or *ast.Param (classifyPredicates admits nothing else); Strict marks
// an exclusive bound (< or >).
type Bound struct {
	Val    ast.Expr
	Strict bool
}

// SelectPlan is the compiled access plan of one single-table SELECT.
type SelectPlan struct {
	Table string // resolved (upper-cased) base-table name
	Alias string // correlation name in effect, "" when none

	Path AccessPath
	// PointLookup: the key column ordinals and their value expressions
	// (literals or parameters), pairwise.
	KeyCols []int
	KeyVals []ast.Expr
	// RangeScan: the scanned column ordinal and the optional bounds.
	RangeCol int
	Lo, Hi   *Bound

	// MaxParam is the highest parameter ordinal the statement references;
	// the executor must verify the bound-argument vector covers it before
	// skipping rows, so bind-arity errors surface identically on every
	// access path.
	MaxParam int
}

// Analyze lowers a SELECT into an access plan by running the rule
// pipeline: resolveSource → classifyPredicates → chooseAccessPath. The
// second result is false when the statement has no single-base-table
// source (joins, derived tables, views, compound queries) — such
// statements stay on the interpreter.
func Analyze(sel *ast.Select, cat Catalog, force Force) (*SelectPlan, bool) {
	p, ok := resolveSource(sel, cat)
	if !ok {
		return nil, false
	}
	meta, _ := cat.TableMeta(p.Table)
	eqs, ranges := classifyPredicates(sel.Where, p, meta)
	chooseAccessPath(p, meta, eqs, ranges)
	if force == ForceFullScan {
		p.Path = FullScan
		p.KeyCols, p.KeyVals, p.Lo, p.Hi = nil, nil, nil, nil
	}
	p.MaxParam = ast.NumParams(sel)
	return p, true
}

// resolveSource (rule 1) pins the plan to exactly one base table: one
// FROM item, no joins, no derived table, and a name the catalog knows.
func resolveSource(sel *ast.Select, cat Catalog) (*SelectPlan, bool) {
	if len(sel.From) != 1 || len(sel.From[0].Joins) != 0 {
		return nil, false
	}
	tr := sel.From[0].Table
	if tr.Subquery != nil || tr.Name == "" {
		return nil, false
	}
	name := strings.ToUpper(tr.Name)
	if _, ok := cat.TableMeta(name); !ok {
		return nil, false
	}
	return &SelectPlan{Table: name, Alias: strings.ToUpper(tr.Alias)}, true
}

// eqConjunct is one equality conjunct usable for a point lookup.
type eqConjunct struct {
	col int
	val ast.Expr
}

// rangeBounds accumulates the usable bounds on one column.
type rangeBounds struct {
	lo, hi *Bound
}

// classifyPredicates (rule 2) walks the top-level AND tree of the WHERE
// clause and extracts the conjuncts an index can serve: `col op value`
// comparisons (either operand order) and non-negated BETWEENs, where
// col is an INT column of the plan's table and value is a literal or
// parameter. Everything else is ignored here — the executor re-applies
// the full predicate — so classification only has to be sound, never
// complete.
func classifyPredicates(where ast.Expr, p *SelectPlan, meta TableMeta) (map[int]ast.Expr, map[int]*rangeBounds) {
	eqs := make(map[int]ast.Expr)
	ranges := make(map[int]*rangeBounds)
	for _, c := range conjuncts(where, nil) {
		switch x := c.(type) {
		case *ast.Binary:
			col, val, op, ok := comparisonLeaf(x, p, meta)
			if !ok {
				continue
			}
			switch op {
			case ast.OpEq:
				if _, dup := eqs[col]; !dup {
					eqs[col] = val
				}
			case ast.OpGt, ast.OpGe:
				b := boundsFor(ranges, col)
				if b.lo == nil {
					b.lo = &Bound{Val: val, Strict: op == ast.OpGt}
				}
			case ast.OpLt, ast.OpLe:
				b := boundsFor(ranges, col)
				if b.hi == nil {
					b.hi = &Bound{Val: val, Strict: op == ast.OpLt}
				}
			}
		case *ast.Between:
			if x.Not {
				continue
			}
			col, ok := columnLeaf(x.X, p, meta)
			if !ok || !valueLeaf(x.Lo) || !valueLeaf(x.Hi) {
				continue
			}
			b := boundsFor(ranges, col)
			if b.lo == nil {
				b.lo = &Bound{Val: x.Lo}
			}
			if b.hi == nil {
				b.hi = &Bound{Val: x.Hi}
			}
		}
	}
	return eqs, ranges
}

// conjuncts flattens the top-level AND tree into its leaves.
func conjuncts(e ast.Expr, out []ast.Expr) []ast.Expr {
	if e == nil {
		return out
	}
	if b, ok := e.(*ast.Binary); ok && b.Op == ast.OpAnd {
		return conjuncts(b.R, conjuncts(b.L, out))
	}
	return append(out, e)
}

// comparisonLeaf matches `col op value` or `value op col` (flipping the
// operator), for the ordering comparison operators.
func comparisonLeaf(b *ast.Binary, p *SelectPlan, meta TableMeta) (col int, val ast.Expr, op ast.BinaryOp, ok bool) {
	switch b.Op {
	case ast.OpEq, ast.OpLt, ast.OpLe, ast.OpGt, ast.OpGe:
	default:
		return 0, nil, 0, false
	}
	if c, cok := columnLeaf(b.L, p, meta); cok && valueLeaf(b.R) {
		return c, b.R, b.Op, true
	}
	if c, cok := columnLeaf(b.R, p, meta); cok && valueLeaf(b.L) {
		return c, b.L, flip(b.Op), true
	}
	return 0, nil, 0, false
}

// flip mirrors an ordering operator across swapped operands.
func flip(op ast.BinaryOp) ast.BinaryOp {
	switch op {
	case ast.OpLt:
		return ast.OpGt
	case ast.OpLe:
		return ast.OpGe
	case ast.OpGt:
		return ast.OpLt
	case ast.OpGe:
		return ast.OpLe
	default:
		return op
	}
}

// columnLeaf resolves a column reference to an INT column ordinal of
// the plan's table, honouring the correlation name in effect.
func columnLeaf(e ast.Expr, p *SelectPlan, meta TableMeta) (int, bool) {
	cr, ok := e.(*ast.ColumnRef)
	if !ok {
		return 0, false
	}
	if q := strings.ToUpper(cr.Table); q != "" {
		visible := p.Alias
		if visible == "" {
			visible = p.Table
		}
		if q != visible {
			return 0, false
		}
	}
	name := strings.ToUpper(cr.Column)
	for i, c := range meta.Cols {
		if c.Name == name {
			if c.Kind != types.KindInt {
				return 0, false
			}
			return i, true
		}
	}
	return 0, false
}

// valueLeaf reports whether an expression is a row-independent value
// the executor can evaluate once per statement.
func valueLeaf(e ast.Expr) bool {
	switch e.(type) {
	case *ast.Literal, *ast.Param:
		return true
	default:
		return false
	}
}

func boundsFor(m map[int]*rangeBounds, col int) *rangeBounds {
	b := m[col]
	if b == nil {
		b = &rangeBounds{}
		m[col] = b
	}
	return b
}

// chooseAccessPath (rule 3) selects the cheapest applicable path:
// the longest equality-covered prefix of the primary key or a secondary
// keyset becomes a point lookup; failing that, usable bounds on the
// leading column of a keyset become a range scan; otherwise the plan
// stays a full scan. Preference order is PK first, then the secondary
// keysets in catalog order (the engine feeds them sorted by name, so
// the choice is deterministic).
func chooseAccessPath(p *SelectPlan, meta TableMeta, eqs map[int]ast.Expr, ranges map[int]*rangeBounds) {
	keysets := make([][]int, 0, 1+len(meta.Indexes))
	if len(meta.PK) > 0 {
		keysets = append(keysets, meta.PK)
	}
	keysets = append(keysets, meta.Indexes...)

	var bestCols []int
	for _, ks := range keysets {
		n := 0
		for _, c := range ks {
			if _, ok := eqs[c]; !ok {
				break
			}
			n++
		}
		if n > len(bestCols) {
			bestCols = ks[:n]
		}
	}
	if len(bestCols) > 0 {
		p.Path = PointLookup
		p.KeyCols = append([]int(nil), bestCols...)
		p.KeyVals = make([]ast.Expr, len(bestCols))
		for i, c := range bestCols {
			p.KeyVals[i] = eqs[c]
		}
		return
	}

	for _, ks := range keysets {
		if b, ok := ranges[ks[0]]; ok && (b.lo != nil || b.hi != nil) {
			p.Path = RangeScan
			p.RangeCol = ks[0]
			p.Lo, p.Hi = b.lo, b.hi
			return
		}
	}
	p.Path = FullScan
}

// Info describes how one SELECT actually executed: the access path
// taken, whether a compiled plan ran (as opposed to the interpreter
// fallback) and whether it came out of the shared cache. Exposed via
// Session.LastPlan for tests and the forced-variant difftest oracle.
type Info struct {
	Table    string
	Path     AccessPath
	Compiled bool
	CacheHit bool
}
