package plan

import (
	"testing"

	"divsql/internal/sql/ast"
	"divsql/internal/sql/parser"
	"divsql/internal/sql/types"
)

type fakeCat map[string]TableMeta

func (c fakeCat) TableMeta(n string) (TableMeta, bool) {
	m, ok := c[n]
	return m, ok
}

// testCat: T(ID pk, A, B int; S string) with a composite index (A, B)
// and a single-column index (B).
func testCat() fakeCat {
	return fakeCat{
		"T": {
			Name: "T",
			Cols: []ColMeta{
				{Name: "ID", Kind: types.KindInt},
				{Name: "A", Kind: types.KindInt},
				{Name: "B", Kind: types.KindInt},
				{Name: "S", Kind: types.KindString},
			},
			PK:      []int{0},
			Indexes: [][]int{{1, 2}, {2}},
		},
	}
}

func analyze(t *testing.T, sql string, force Force) (*SelectPlan, bool) {
	t.Helper()
	st, err := parser.Parse(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	sel, ok := st.(*ast.Select)
	if !ok {
		t.Fatalf("%q is not a SELECT", sql)
	}
	return Analyze(sel, testCat(), force)
}

func mustAnalyze(t *testing.T, sql string, force Force) *SelectPlan {
	t.Helper()
	p, ok := analyze(t, sql, force)
	if !ok {
		t.Fatalf("Analyze(%q) rejected a single-base-table select", sql)
	}
	return p
}

func TestPointLookupOnPrimaryKey(t *testing.T) {
	p := mustAnalyze(t, "SELECT A FROM T WHERE ID = 1", ForceAuto)
	if p.Path != PointLookup {
		t.Fatalf("path = %v, want point-lookup", p.Path)
	}
	if len(p.KeyCols) != 1 || p.KeyCols[0] != 0 {
		t.Fatalf("key cols = %v, want [0]", p.KeyCols)
	}
}

func TestPointLookupFlippedOperands(t *testing.T) {
	p := mustAnalyze(t, "SELECT A FROM T WHERE 5 = ID", ForceAuto)
	if p.Path != PointLookup || p.KeyCols[0] != 0 {
		t.Fatalf("flipped equality not recognized: %+v", p)
	}
}

func TestCompositePrefixBeatsShorterKeyset(t *testing.T) {
	p := mustAnalyze(t, "SELECT S FROM T WHERE A = 1 AND B = 2", ForceAuto)
	if p.Path != PointLookup {
		t.Fatalf("path = %v, want point-lookup", p.Path)
	}
	if len(p.KeyCols) != 2 || p.KeyCols[0] != 1 || p.KeyCols[1] != 2 {
		t.Fatalf("key cols = %v, want [1 2] (full composite prefix)", p.KeyCols)
	}
}

func TestEqualityPrefixStopsAtGap(t *testing.T) {
	// B alone covers index {2}; the composite {1,2} has no eq on its
	// leading column, so only the single-column keyset applies.
	p := mustAnalyze(t, "SELECT S FROM T WHERE B = 2 AND S = 'x'", ForceAuto)
	if p.Path != PointLookup || len(p.KeyCols) != 1 || p.KeyCols[0] != 2 {
		t.Fatalf("key cols = %v, want [2]", p.KeyCols)
	}
}

func TestRangeScanOnLeadingIndexColumn(t *testing.T) {
	p := mustAnalyze(t, "SELECT A FROM T WHERE B > 3 AND B <= 9", ForceAuto)
	if p.Path != RangeScan {
		t.Fatalf("path = %v, want range-scan", p.Path)
	}
	if p.RangeCol != 2 {
		t.Fatalf("range col = %d, want 2", p.RangeCol)
	}
	if p.Lo == nil || !p.Lo.Strict || p.Hi == nil || p.Hi.Strict {
		t.Fatalf("bounds strictness wrong: lo=%+v hi=%+v", p.Lo, p.Hi)
	}
}

func TestBetweenBecomesInclusiveRange(t *testing.T) {
	p := mustAnalyze(t, "SELECT A FROM T WHERE B BETWEEN 1 AND 9", ForceAuto)
	if p.Path != RangeScan || p.RangeCol != 2 {
		t.Fatalf("path = %v col = %d, want range-scan on 2", p.Path, p.RangeCol)
	}
	if p.Lo == nil || p.Lo.Strict || p.Hi == nil || p.Hi.Strict {
		t.Fatalf("BETWEEN bounds must be inclusive: lo=%+v hi=%+v", p.Lo, p.Hi)
	}
}

func TestNonIntAndDisjunctiveWheresFullScan(t *testing.T) {
	for _, sql := range []string{
		"SELECT A FROM T WHERE S = 'x'",         // string column: no index key
		"SELECT A FROM T WHERE ID = 1 OR A = 2", // OR is not a conjunct
		"SELECT A FROM T WHERE ID + 0 = 1",      // computed column side
		"SELECT A FROM T",                       // no WHERE
	} {
		p := mustAnalyze(t, sql, ForceAuto)
		if p.Path != FullScan {
			t.Errorf("%q: path = %v, want full-scan", sql, p.Path)
		}
	}
}

func TestAnalyzeRejectsNonSingleTableSources(t *testing.T) {
	for _, sql := range []string{
		"SELECT X.A FROM T X INNER JOIN T Y ON X.ID = Y.ID",
		"SELECT A FROM NOPE WHERE ID = 1",
	} {
		if _, ok := analyze(t, sql, ForceAuto); ok {
			t.Errorf("%q: Analyze accepted a non-single-base-table source", sql)
		}
	}
}

func TestAliasQualifierResolution(t *testing.T) {
	p := mustAnalyze(t, "SELECT X.A FROM T X WHERE X.ID = 1", ForceAuto)
	if p.Path != PointLookup {
		t.Fatalf("aliased qualifier not resolved: %+v", p)
	}
	// Under an alias the bare table name is not a visible qualifier.
	p = mustAnalyze(t, "SELECT X.A FROM T X WHERE T.ID = 1", ForceAuto)
	if p.Path != FullScan {
		t.Fatalf("stale table qualifier must not bind: %+v", p)
	}
}

func TestForceFullScanClearsAccessPath(t *testing.T) {
	p := mustAnalyze(t, "SELECT A FROM T WHERE ID = 1", ForceFullScan)
	if p.Path != FullScan || p.KeyCols != nil || p.KeyVals != nil {
		t.Fatalf("forced full scan kept index state: %+v", p)
	}
}

func TestMaxParamCoversWholeStatement(t *testing.T) {
	p := mustAnalyze(t, "SELECT A FROM T WHERE ID = $1 AND S = $3", ForceAuto)
	if p.MaxParam != 3 {
		t.Fatalf("MaxParam = %d, want 3", p.MaxParam)
	}
}

func TestDuplicateEqualityFirstWins(t *testing.T) {
	p := mustAnalyze(t, "SELECT A FROM T WHERE ID = 1 AND ID = 2", ForceAuto)
	if p.Path != PointLookup || len(p.KeyVals) != 1 {
		t.Fatalf("duplicate equality mishandled: %+v", p)
	}
	lit, ok := p.KeyVals[0].(*ast.Literal)
	if !ok || lit.Val.I != 1 {
		t.Fatalf("first equality must win, got %+v", p.KeyVals[0])
	}
}
