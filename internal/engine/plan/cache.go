package plan

import "sync"

// Cache is the shared compiled-plan cache: statement text → compiled
// plan, stamped with the schema generation it was compiled against. One
// Cache serves every session of an engine, so an inline statement on
// one connection reuses the compilation a prepared statement on another
// connection paid for.
//
// Invalidation is by generation equality, not ordering: every DDL mints
// a fresh, never-reused schema epoch, and a transaction rollback
// restores the pre-transaction stamp. An entry is served only while its
// stamp equals the current one — a stale entry (including one compiled
// against a schema generation that was later rolled back) is evicted on
// the next probe and recompiles transparently.
//
// Values are stored as `any`: the engine caches its own compiled
// representation, and holding it opaquely here keeps the analyzer
// package free of an import cycle with the engine. The cache is a
// leaf lock — callers hold the engine lock; nothing is called out to
// while c.mu is held.
type Cache struct {
	mu            sync.Mutex
	cap           int
	m             map[string]cacheEntry
	hits          uint64
	misses        uint64
	invalidations uint64
}

type cacheEntry struct {
	version uint64
	v       any
}

// NewCache returns a cache bounded to cap entries (dropped wholesale at
// capacity; the hot working set re-fills within one batch).
func NewCache(cap int) *Cache {
	return &Cache{cap: cap, m: make(map[string]cacheEntry)}
}

// Get returns the cached value for key if one exists and was compiled
// against the given schema version. A version mismatch evicts the entry
// and counts as an invalidation (plus a miss).
func (c *Cache) Get(key string, version uint64) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.m[key]
	if !ok {
		c.misses++
		return nil, false
	}
	if e.version != version {
		delete(c.m, key)
		c.invalidations++
		c.misses++
		return nil, false
	}
	c.hits++
	return e.v, true
}

// Put stores a compiled value under key for the given schema version.
func (c *Cache) Put(key string, version uint64, v any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.m) >= c.cap {
		c.m = make(map[string]cacheEntry, c.cap/4)
	}
	c.m[key] = cacheEntry{version: version, v: v}
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// CacheStats is a point-in-time counter snapshot.
type CacheStats struct {
	Hits          uint64
	Misses        uint64
	Invalidations uint64
}

// HitRate returns hits / (hits + misses), 0 when idle.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Stats returns the cache's counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Invalidations: c.invalidations}
}
