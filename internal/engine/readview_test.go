package engine

import (
	"fmt"
	"sync"
	"testing"

	"divsql/internal/sql/parser"
)

// gexec is sexec for goroutines: it reports failures instead of
// calling t.Fatalf, which must not run off the test goroutine.
func gexec(s *Session, sql string) (*Result, error) {
	st, err := parser.Parse(sql)
	if err != nil {
		return nil, fmt.Errorf("parse %q: %v", sql, err)
	}
	return s.Exec(st)
}

func count(t *testing.T, s *Session, table string) int64 {
	t.Helper()
	res := sexec(t, s, "SELECT COUNT(*) AS N FROM "+table)
	if len(res.Rows) != 1 {
		t.Fatalf("count on %s: %v", table, res)
	}
	return res.Rows[0][0].I
}

// A REPEATABLE READ transaction pins its read view at the first read:
// every later read inside the transaction sees the same snapshot, no
// matter how many commits land in between, and the commits become
// visible the moment the transaction ends. Run with -race — the reader
// re-reads through the lock-free compiled path while the writer
// commits through the table latch.
func TestReadViewStableAcrossConcurrentCommits(t *testing.T) {
	e := NewOracle()
	setup := e.NewSession()
	sexec(t, setup, "CREATE TABLE T (A INT, B INT)")
	const seed = 10
	for i := 0; i < seed; i++ {
		sexec(t, setup, fmt.Sprintf("INSERT INTO T VALUES (%d, 0)", i))
	}

	r := e.NewSession()
	sexec(t, r, "SET TRANSACTION ISOLATION LEVEL REPEATABLE READ")
	sexec(t, r, "BEGIN TRANSACTION")
	first := count(t, r, "T")
	if first != seed {
		t.Fatalf("first read: %d rows, want %d", first, seed)
	}

	const commits = 120
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		w := e.NewSession()
		defer w.Close()
		for i := 0; i < commits; i++ {
			if _, err := gexec(w, fmt.Sprintf("INSERT INTO T VALUES (%d, 1)", seed+i)); err != nil {
				t.Errorf("writer insert %d: %v", i, err)
				return
			}
			// In-place updates on a non-key column exercise the
			// per-column version (colVer) index path concurrently
			// with the reader's pinned snapshot.
			if _, err := gexec(w, fmt.Sprintf("UPDATE T SET B = %d WHERE A = %d", i, i%seed)); err != nil {
				t.Errorf("writer update %d: %v", i, err)
				return
			}
		}
	}()

	// Interleave re-reads with the writer's commits. Every one must
	// reproduce the pinned snapshot exactly.
	for i := 0; i < 40; i++ {
		if got := count(t, r, "T"); got != first {
			t.Fatalf("read %d saw %d rows inside REPEATABLE READ, want %d", i, got, first)
		}
		res := sexec(t, r, "SELECT SUM(B) AS S FROM T")
		if !res.Rows[0][0].IsNull() && res.Rows[0][0].I != 0 {
			t.Fatalf("read %d saw concurrent UPDATE inside REPEATABLE READ: SUM(B)=%d", i, res.Rows[0][0].I)
		}
	}
	wg.Wait()
	sexec(t, r, "COMMIT")

	// Outside the transaction the same session sees every commit.
	if got := count(t, r, "T"); got != seed+commits {
		t.Fatalf("post-commit read: %d rows, want %d", got, seed+commits)
	}
}

// ROLLBACK of a transaction containing DDL (CREATE TABLE, DROP TABLE)
// must neither disturb an open read view in another session nor leave
// any trace in the committed catalog.
func TestDDLRollbackUnderOpenReadView(t *testing.T) {
	e := NewOracle()
	a, b := e.NewSession(), e.NewSession()
	sexec(t, a, "CREATE TABLE T (A INT)")
	for i := 1; i <= 3; i++ {
		sexec(t, a, fmt.Sprintf("INSERT INTO T VALUES (%d)", i))
	}

	sexec(t, a, "SET TRANSACTION ISOLATION LEVEL REPEATABLE READ")
	sexec(t, a, "BEGIN TRANSACTION")
	first := count(t, a, "T")

	// b creates a table, writes to it and to T, then throws it all away.
	sexec(t, b, "BEGIN TRANSACTION")
	sexec(t, b, "CREATE TABLE G (X INT)")
	sexec(t, b, "INSERT INTO G VALUES (1)")
	sexec(t, b, "INSERT INTO T VALUES (99)")
	if got := count(t, a, "T"); got != first {
		t.Fatalf("open view saw b's uncommitted insert: %d rows, want %d", got, first)
	}
	if err := sexecErr(t, a, "SELECT X FROM G"); err == nil {
		t.Fatal("a's view resolved b's uncommitted CREATE TABLE")
	}
	sexec(t, b, "ROLLBACK")

	if got := count(t, a, "T"); got != first {
		t.Fatalf("read view disturbed by DDL rollback: %d rows, want %d", got, first)
	}
	sexec(t, a, "COMMIT")

	if err := sexecErr(t, a, "SELECT X FROM G"); err == nil {
		t.Fatal("rolled-back CREATE TABLE survived in the catalog")
	}
	if got := count(t, a, "T"); got != 3 {
		t.Fatalf("T after rollback: %d rows, want 3", got)
	}
}
