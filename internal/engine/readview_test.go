package engine

import (
	"fmt"
	"sync"
	"testing"

	"divsql/internal/sql/parser"
)

// gexec is sexec for goroutines: it reports failures instead of
// calling t.Fatalf, which must not run off the test goroutine.
func gexec(s *Session, sql string) (*Result, error) {
	st, err := parser.Parse(sql)
	if err != nil {
		return nil, fmt.Errorf("parse %q: %v", sql, err)
	}
	return s.Exec(st)
}

func count(t *testing.T, s *Session, table string) int64 {
	t.Helper()
	res := sexec(t, s, "SELECT COUNT(*) AS N FROM "+table)
	if len(res.Rows) != 1 {
		t.Fatalf("count on %s: %v", table, res)
	}
	return res.Rows[0][0].I
}

// A REPEATABLE READ transaction pins its read view at the first read:
// every later read inside the transaction sees the same snapshot, no
// matter how many commits land in between, and the commits become
// visible the moment the transaction ends. Run with -race — the reader
// re-reads through the lock-free compiled path while the writer
// commits through the table latch.
func TestReadViewStableAcrossConcurrentCommits(t *testing.T) {
	e := NewOracle()
	setup := e.NewSession()
	sexec(t, setup, "CREATE TABLE T (A INT, B INT)")
	const seed = 10
	for i := 0; i < seed; i++ {
		sexec(t, setup, fmt.Sprintf("INSERT INTO T VALUES (%d, 0)", i))
	}

	r := e.NewSession()
	sexec(t, r, "SET TRANSACTION ISOLATION LEVEL REPEATABLE READ")
	sexec(t, r, "BEGIN TRANSACTION")
	first := count(t, r, "T")
	if first != seed {
		t.Fatalf("first read: %d rows, want %d", first, seed)
	}

	const commits = 120
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		w := e.NewSession()
		defer w.Close()
		for i := 0; i < commits; i++ {
			if _, err := gexec(w, fmt.Sprintf("INSERT INTO T VALUES (%d, 1)", seed+i)); err != nil {
				t.Errorf("writer insert %d: %v", i, err)
				return
			}
			// In-place updates on a non-key column exercise the
			// per-column version (colVer) index path concurrently
			// with the reader's pinned snapshot.
			if _, err := gexec(w, fmt.Sprintf("UPDATE T SET B = %d WHERE A = %d", i, i%seed)); err != nil {
				t.Errorf("writer update %d: %v", i, err)
				return
			}
		}
	}()

	// Interleave re-reads with the writer's commits. Every one must
	// reproduce the pinned snapshot exactly.
	for i := 0; i < 40; i++ {
		if got := count(t, r, "T"); got != first {
			t.Fatalf("read %d saw %d rows inside REPEATABLE READ, want %d", i, got, first)
		}
		res := sexec(t, r, "SELECT SUM(B) AS S FROM T")
		if !res.Rows[0][0].IsNull() && res.Rows[0][0].I != 0 {
			t.Fatalf("read %d saw concurrent UPDATE inside REPEATABLE READ: SUM(B)=%d", i, res.Rows[0][0].I)
		}
	}
	wg.Wait()
	sexec(t, r, "COMMIT")

	// Outside the transaction the same session sees every commit.
	if got := count(t, r, "T"); got != seed+commits {
		t.Fatalf("post-commit read: %d rows, want %d", got, seed+commits)
	}
}

// ROLLBACK of a transaction containing DDL (CREATE TABLE, DROP TABLE)
// must neither disturb an open read view in another session nor leave
// any trace in the committed catalog.
func TestDDLRollbackUnderOpenReadView(t *testing.T) {
	e := NewOracle()
	a, b := e.NewSession(), e.NewSession()
	sexec(t, a, "CREATE TABLE T (A INT)")
	for i := 1; i <= 3; i++ {
		sexec(t, a, fmt.Sprintf("INSERT INTO T VALUES (%d)", i))
	}

	sexec(t, a, "SET TRANSACTION ISOLATION LEVEL REPEATABLE READ")
	sexec(t, a, "BEGIN TRANSACTION")
	first := count(t, a, "T")

	// b creates a table, writes to it and to T, then throws it all away.
	sexec(t, b, "BEGIN TRANSACTION")
	sexec(t, b, "CREATE TABLE G (X INT)")
	sexec(t, b, "INSERT INTO G VALUES (1)")
	sexec(t, b, "INSERT INTO T VALUES (99)")
	if got := count(t, a, "T"); got != first {
		t.Fatalf("open view saw b's uncommitted insert: %d rows, want %d", got, first)
	}
	if err := sexecErr(t, a, "SELECT X FROM G"); err == nil {
		t.Fatal("a's view resolved b's uncommitted CREATE TABLE")
	}
	sexec(t, b, "ROLLBACK")

	if got := count(t, a, "T"); got != first {
		t.Fatalf("read view disturbed by DDL rollback: %d rows, want %d", got, first)
	}
	sexec(t, a, "COMMIT")

	if err := sexecErr(t, a, "SELECT X FROM G"); err == nil {
		t.Fatal("rolled-back CREATE TABLE survived in the catalog")
	}
	if got := count(t, a, "T"); got != 3 {
		t.Fatalf("T after rollback: %d rows, want 3", got)
	}
}

// The read half of a write statement — INSERT ... SELECT sources and
// subqueries in UPDATE/DELETE WHERE — must observe committed state plus
// the writer's own changes, never another session's uncommitted rows
// (the own-writes rule of ISOLATION.md applies to DML-internal reads).
func TestDMLInternalReadsSkipUncommitted(t *testing.T) {
	e := NewOracle()
	a, b := e.NewSession(), e.NewSession()
	sexec(t, a, "CREATE TABLE SRC (A INT)")
	sexec(t, a, "CREATE TABLE DST (A INT)")
	sexec(t, a, "CREATE TABLE T (A INT, B INT)")
	sexec(t, a, "INSERT INTO SRC VALUES (1)")
	sexec(t, a, "INSERT INTO SRC VALUES (2)")
	sexec(t, a, "INSERT INTO T VALUES (1, 0)")
	sexec(t, a, "INSERT INTO T VALUES (99, 0)")

	// b holds uncommitted changes to SRC: a new row, and a committed
	// row deleted.
	sexec(t, b, "BEGIN TRANSACTION")
	sexec(t, b, "INSERT INTO SRC VALUES (99)")
	sexec(t, b, "DELETE FROM SRC WHERE A = 2")

	// a's INSERT ... SELECT copies the committed SRC: rows 1 and 2,
	// not b's uncommitted 99, and not b's uncommitted delete of 2.
	sexec(t, a, "INSERT INTO DST SELECT A FROM SRC")
	res := sexec(t, a, "SELECT A FROM DST ORDER BY A")
	if len(res.Rows) != 2 || res.Rows[0][0].I != 1 || res.Rows[1][0].I != 2 {
		t.Fatalf("INSERT..SELECT copied a non-committed image of SRC: %v", res.Rows)
	}

	// Subqueries inside UPDATE and DELETE predicates read the same
	// committed image: neither statement may match through b's
	// uncommitted insert of 99.
	ur := sexec(t, a, "UPDATE T SET B = 1 WHERE A IN (SELECT A FROM SRC)")
	if ur.Affected != 1 {
		t.Fatalf("UPDATE subquery matched %d rows, want 1 (uncommitted SRC row leaked)", ur.Affected)
	}
	dr := sexec(t, a, "DELETE FROM T WHERE A IN (SELECT A FROM SRC)")
	if dr.Affected != 1 {
		t.Fatalf("DELETE subquery matched %d rows, want 1 (uncommitted SRC row leaked)", dr.Affected)
	}

	// b's own DML-internal reads keep seeing b's writes: its
	// INSERT ... SELECT sources the transaction-local image of SRC
	// (99 present, 2 deleted).
	sexec(t, b, "CREATE TABLE OWN (A INT)")
	sexec(t, b, "INSERT INTO OWN SELECT A FROM SRC")
	own := sexec(t, b, "SELECT A FROM OWN ORDER BY A")
	if len(own.Rows) != 2 || own.Rows[0][0].I != 1 || own.Rows[1][0].I != 99 {
		t.Fatalf("own-writes image lost in INSERT..SELECT: %v", own.Rows)
	}
	sexec(t, b, "ROLLBACK")
}

// A committed value must never travel backwards: the commit-mark bump
// and the undo-log clear race view builds, and a view that rewinds
// just-committed changes while carrying the new sequence stamp would
// serve stale data as current. Run with -race.
func TestCommittedReadsNeverRewind(t *testing.T) {
	e := NewOracle()
	setup := e.NewSession()
	sexec(t, setup, "CREATE TABLE T (V INT)")
	sexec(t, setup, "INSERT INTO T VALUES (0)")

	const commits = 300
	done := make(chan struct{})
	go func() {
		defer close(done)
		w := e.NewSession()
		defer w.Close()
		for i := 1; i <= commits; i++ {
			if _, err := gexec(w, "BEGIN TRANSACTION"); err != nil {
				t.Errorf("begin %d: %v", i, err)
				return
			}
			if _, err := gexec(w, fmt.Sprintf("UPDATE T SET V = %d", i)); err != nil {
				t.Errorf("update %d: %v", i, err)
				return
			}
			if _, err := gexec(w, "COMMIT"); err != nil {
				t.Errorf("commit %d: %v", i, err)
				return
			}
		}
	}()

	r := e.NewSession()
	last := int64(0)
	for running := true; running; {
		select {
		case <-done:
			running = false
		default:
		}
		res, err := gexec(r, "SELECT V FROM T")
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		if got := res.Rows[0][0].I; got < last {
			t.Fatalf("committed read went backwards: saw %d after %d", got, last)
		} else {
			last = got
		}
	}
	if got := sexec(t, r, "SELECT V FROM T").Rows[0][0].I; got != commits {
		t.Fatalf("final read: %d, want %d", got, commits)
	}
}
