package server

import "divsql/internal/obs"

// MetricsCollector returns the server's obs collector: its up/down state
// and installed-fault count, plus the underlying engine's families — all
// labeled with this server's name so replicas of a diverse deployment
// share families and differ only in the replica label.
func (s *Server) MetricsCollector() obs.Collector {
	return s.MetricsCollectorAs(string(s.name))
}

// MetricsCollectorAs is MetricsCollector with an explicit replica label:
// groups of identical servers (the non-diverse replication baseline)
// need distinct labels where the server name alone would collide.
func (s *Server) MetricsCollectorAs(replica string) obs.Collector {
	eng := s.eng.MetricsCollector(replica)
	return obs.NewCollector("server:"+replica, func(f *obs.Feed) {
		up := 1.0
		if s.Crashed() {
			up = 0
		}
		f.Gauge("divsql_server_up",
			"1 when the server's engine is up, 0 after a crash until Restart.",
			up, obs.L("replica", replica))
		f.Gauge("divsql_server_faults_installed",
			"Faults registered for this server.",
			float64(s.FaultCount()), obs.L("replica", replica))
		eng.Collect(f)
	})
}
