package server

import (
	"errors"
	"testing"

	"divsql/internal/dialect"
	"divsql/internal/fault"
	"divsql/internal/sql/ast"
)

func TestNewServersForAllNames(t *testing.T) {
	for _, n := range dialect.AllServers {
		s, err := New(n, nil)
		if err != nil {
			t.Fatalf("New(%s): %v", n, err)
		}
		if s.Name() != n || s.Crashed() {
			t.Errorf("server %s state wrong", n)
		}
	}
}

func TestExecBasics(t *testing.T) {
	s, _ := New(dialect.PG, nil)
	s.EnableLog(0)
	if _, _, err := s.Exec("CREATE TABLE T (A INT)"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Exec("INSERT INTO T VALUES (1)"); err != nil {
		t.Fatal(err)
	}
	res, lat, err := s.Exec("SELECT A FROM T")
	if err != nil || len(res.Rows) != 1 {
		t.Fatalf("select: %v %v", res, err)
	}
	if lat < BaseLatency {
		t.Errorf("latency %v below base", lat)
	}
	if got := len(s.Log()); got != 2 {
		t.Errorf("statement log has %d entries, want 2 (SELECT excluded)", got)
	}
}

func TestDialectGatesAtServer(t *testing.T) {
	pg, _ := New(dialect.PG, nil)
	if _, _, err := pg.Exec("CREATE VIEW V AS SELECT 1 AS X UNION SELECT 2 AS X"); err == nil {
		t.Error("PG must reject UNION views")
	}
	ib, _ := New(dialect.IB, nil)
	if _, _, err := ib.Exec("CREATE TABLE T (A INT)"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ib.Exec("CREATE CLUSTERED INDEX IX ON T (A)"); err == nil {
		t.Error("IB must reject clustered indexes")
	}
	ms, _ := New(dialect.MS, nil)
	if _, _, err := ms.Exec("CREATE SEQUENCE SQ"); err == nil {
		t.Error("MS must reject sequences")
	}
	if _, _, err := ms.Exec("SELECT 1 AS X LIMIT 1"); err == nil {
		t.Error("MS must reject LIMIT syntax")
	}
	if _, _, err := ms.Exec("SELECT TOP 1 1 AS X"); err != nil {
		t.Errorf("MS must accept TOP: %v", err)
	}
}

func TestCrashAndRestart(t *testing.T) {
	faults := []fault.Fault{{
		BugID:   "crash-bug",
		Server:  dialect.OR,
		Trigger: fault.Trigger{Table: "BOOM", Flag: ast.FlagSelect},
		Effect:  fault.Effect{Kind: fault.EffectCrash},
	}}
	s, _ := New(dialect.OR, faults)
	if _, _, err := s.Exec("CREATE TABLE BOOM (A INT)"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Exec("CREATE TABLE SAFE (A INT)"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Exec("INSERT INTO SAFE VALUES (1)"); err != nil {
		t.Fatal(err)
	}
	_, _, err := s.Exec("SELECT A FROM BOOM")
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("want crash, got %v", err)
	}
	if !s.Crashed() {
		t.Error("server must be down")
	}
	if _, _, err := s.Exec("SELECT 1 AS X"); !errors.Is(err, ErrCrashed) {
		t.Error("down server must reject statements")
	}
	s.Restart()
	if s.Crashed() {
		t.Error("restart failed")
	}
	// Committed state survives the crash; the fault itself is permanent,
	// so the crashing query would crash the server again (a Bohrbug) —
	// state is checked through an unaffected table.
	res, _, err := s.Exec("SELECT COUNT(*) AS N FROM SAFE")
	if err != nil || res.Rows[0][0].I != 1 {
		t.Errorf("state after restart: %v %v", res, err)
	}
	if _, _, err := s.Exec("SELECT A FROM BOOM"); !errors.Is(err, ErrCrashed) {
		t.Error("permanent fault must crash the server again")
	}
}

func TestFaultEffects(t *testing.T) {
	faults := []fault.Fault{
		{BugID: "err", Server: dialect.IB, Trigger: fault.Trigger{Table: "E1", Flag: ast.FlagSelect},
			Effect: fault.Effect{Kind: fault.EffectError, Message: "spurious"}},
		{BugID: "lat", Server: dialect.IB, Trigger: fault.Trigger{Table: "L1", Flag: ast.FlagSelect},
			Effect: fault.Effect{Kind: fault.EffectLatency, LatencyMillis: 5000}},
		{BugID: "mut", Server: dialect.IB, Trigger: fault.Trigger{Table: "M1", Flag: ast.FlagSelect},
			Effect: fault.Effect{Kind: fault.EffectMutateResult, Mutation: fault.MutOffByOne}},
		{BugID: "sup", Server: dialect.IB, Trigger: fault.Trigger{Table: "S1", Flag: ast.FlagInsert},
			Effect: fault.Effect{Kind: fault.EffectSuppressError}},
		{BugID: "abort", Server: dialect.IB, Trigger: fault.Trigger{Table: "A1", Flag: ast.FlagSelect},
			Effect: fault.Effect{Kind: fault.EffectAbortConnection, Message: "closed"}},
	}
	s, _ := New(dialect.IB, faults)
	for _, tbl := range []string{"E1", "L1", "M1", "S1", "A1"} {
		if _, _, err := s.Exec("CREATE TABLE " + tbl + " (A INT PRIMARY KEY)"); err != nil {
			t.Fatal(err)
		}
		if _, _, err := s.Exec("INSERT INTO " + tbl + " VALUES (7)"); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := s.Exec("SELECT A FROM E1"); err == nil || err.Error() != "spurious" {
		t.Errorf("error effect: %v", err)
	}
	_, lat, err := s.Exec("SELECT A FROM L1")
	if err != nil || lat < 5000*BaseLatency {
		t.Errorf("latency effect: %v %v", lat, err)
	}
	res, _, err := s.Exec("SELECT A FROM M1")
	if err != nil || res.Rows[0][0].I != 8 {
		t.Errorf("mutate effect: %v %v", res, err)
	}
	// Duplicate key suppressed: reported OK, nothing inserted.
	if _, _, err := s.Exec("INSERT INTO S1 VALUES (7)"); err != nil {
		t.Errorf("suppress effect: %v", err)
	}
	res, _, _ = s.Exec("SELECT COUNT(*) AS N FROM S1")
	if res.Rows[0][0].I != 1 {
		t.Errorf("suppressed insert must not apply: %v", res.Rows[0][0])
	}
	if _, _, err := s.Exec("SELECT A FROM A1"); !errors.Is(err, ErrConnAborted) {
		t.Errorf("abort effect: %v", err)
	}
	if s.Crashed() {
		t.Error("conn abort must not crash the engine")
	}
}

func TestStressOnlyFaults(t *testing.T) {
	faults := []fault.Fault{{
		BugID:   "heisen",
		Server:  dialect.MS,
		Trigger: fault.Trigger{Table: "H1", Flag: ast.FlagSelect, UnderStressOnly: true},
		Effect:  fault.Effect{Kind: fault.EffectMutateResult, Mutation: fault.MutDropLastRow},
	}}
	s, _ := New(dialect.MS, faults)
	if _, _, err := s.Exec("CREATE TABLE H1 (A INT)"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Exec("INSERT INTO H1 VALUES (1)"); err != nil {
		t.Fatal(err)
	}
	res, _, _ := s.Exec("SELECT A FROM H1")
	if len(res.Rows) != 1 {
		t.Error("heisenbug fired on a quiet server")
	}
	s.SetStress(true)
	res, _, _ = s.Exec("SELECT A FROM H1")
	if len(res.Rows) != 0 {
		t.Error("heisenbug must fire under stress")
	}
}

func TestExecScriptStopsAtCrash(t *testing.T) {
	faults := []fault.Fault{{
		BugID:   "crash",
		Server:  dialect.PG,
		Trigger: fault.Trigger{Table: "C1", Flag: ast.FlagInsert},
		Effect:  fault.Effect{Kind: fault.EffectCrash},
	}}
	s, _ := New(dialect.PG, faults)
	out, err := s.ExecScript("CREATE TABLE C1 (A INT); INSERT INTO C1 VALUES (1); SELECT A FROM C1;")
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || !out[1].Crashed {
		t.Errorf("script outcomes: %+v", out)
	}
}

func TestSnapshotRestoreAcrossServers(t *testing.T) {
	a, _ := New(dialect.PG, nil)
	b, _ := New(dialect.OR, nil)
	if _, _, err := a.Exec("CREATE TABLE T (A INT)"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := a.Exec("INSERT INTO T VALUES (42)"); err != nil {
		t.Fatal(err)
	}
	b.Restore(a.Snapshot())
	res, _, err := b.Exec("SELECT A FROM T")
	if err != nil || res.Rows[0][0].I != 42 {
		t.Errorf("state transfer: %v %v", res, err)
	}
}

func TestOracleAcceptsAllDialectSpellings(t *testing.T) {
	o := NewOracle()
	for _, sql := range []string{
		"CREATE TABLE T1 (A DATETIME)",
		"CREATE TABLE T2 (A NUMBER, B VARCHAR2(5))",
		"SELECT LEN('abc') AS L",
		"SELECT LENGTH('abc') AS L",
		"SELECT NVL(NULL, 1) AS C",
		"SELECT ISNULL(NULL, 1) AS C",
		"SELECT GEN_UUID('x') AS U",
	} {
		if _, _, err := o.Exec(sql); err != nil {
			t.Errorf("oracle rejects %q: %v", sql, err)
		}
	}
}

func TestInTxnVisible(t *testing.T) {
	s, _ := New(dialect.PG, nil)
	if s.InTxn() {
		t.Error("fresh server in txn")
	}
	if _, _, err := s.Exec("BEGIN TRANSACTION"); err != nil {
		t.Fatal(err)
	}
	if !s.InTxn() {
		t.Error("txn not visible")
	}
	if _, _, err := s.Exec("COMMIT"); err != nil {
		t.Fatal(err)
	}
	if s.InTxn() {
		t.Error("txn not closed")
	}
}
