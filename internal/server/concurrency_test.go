package server

import (
	"fmt"
	"sync"
	"testing"

	"divsql/internal/dialect"
	"divsql/internal/fault"
	"divsql/internal/sql/ast"
)

// TestConcurrentSessionsDisjointTables runs N client sessions against one
// server, each transacting on its own table. Run with -race.
func TestConcurrentSessionsDisjointTables(t *testing.T) {
	s, err := New(dialect.PG, nil)
	if err != nil {
		t.Fatal(err)
	}
	const sessions = 8
	const rounds = 20
	for i := 0; i < sessions; i++ {
		if _, _, err := s.Exec(fmt.Sprintf("CREATE TABLE W%d (X INT)", i)); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sess := s.NewSession()
			defer sess.Close()
			tbl := fmt.Sprintf("W%d", i)
			for r := 0; r < rounds; r++ {
				stmts := []string{
					"BEGIN TRANSACTION",
					fmt.Sprintf("INSERT INTO %s VALUES (%d)", tbl, r),
					"COMMIT",
					fmt.Sprintf("SELECT COUNT(*) AS N FROM %s", tbl),
				}
				for _, q := range stmts {
					if _, _, err := sess.Exec(q); err != nil {
						t.Errorf("session %d: %q: %v", i, q, err)
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()
	for i := 0; i < sessions; i++ {
		res, _, err := s.Exec(fmt.Sprintf("SELECT COUNT(*) AS N FROM W%d", i))
		if err != nil {
			t.Fatal(err)
		}
		if res.Rows[0][0].I != rounds {
			t.Errorf("table W%d has %d rows, want %d", i, res.Rows[0][0].I, rounds)
		}
	}
}

// TestCrashAbortsAllSessions: an engine crash rolls back the open
// transaction of EVERY session, not just the one that hit the fault.
func TestCrashAbortsAllSessions(t *testing.T) {
	faults := []fault.Fault{{
		BugID:   "crash",
		Server:  dialect.PG,
		Trigger: fault.Trigger{Table: "BOOM", Flag: ast.FlagSelect},
		Effect:  fault.Effect{Kind: fault.EffectCrash},
	}}
	s, err := New(dialect.PG, faults)
	if err != nil {
		t.Fatal(err)
	}
	mustExecOn := func(sess *Session, q string) {
		t.Helper()
		if _, _, err := sess.Exec(q); err != nil {
			t.Fatalf("%q: %v", q, err)
		}
	}
	a, b := s.NewSession(), s.NewSession()
	mustExecOn(a, "CREATE TABLE BOOM (X INT)")
	mustExecOn(a, "CREATE TABLE SAFE (X INT)")
	mustExecOn(b, "BEGIN TRANSACTION")
	mustExecOn(b, "INSERT INTO SAFE VALUES (1)")
	if !b.InTxn() {
		t.Fatal("b must be in a transaction")
	}
	// a triggers the crash; b's transaction dies with the engine.
	if _, _, err := a.Exec("SELECT X FROM BOOM"); err != ErrCrashed {
		t.Fatalf("crash fault: %v", err)
	}
	if b.InTxn() {
		t.Error("crash left b's transaction open")
	}
	if _, _, err := b.Exec("SELECT X FROM SAFE"); err != ErrCrashed {
		t.Errorf("crashed server served b: %v", err)
	}
	s.Restart()
	res, _, err := b.Exec("SELECT COUNT(*) AS N FROM SAFE")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != 0 {
		t.Errorf("uncommitted row survived the crash: %d", res.Rows[0][0].I)
	}
}

// TestConnAbortOnlyAffectsOwnSession: the EffectAbortConnection fault
// rolls back the faulted session's transaction and leaves other
// sessions' transactions open.
func TestConnAbortOnlyAffectsOwnSession(t *testing.T) {
	faults := []fault.Fault{{
		BugID:   "abort",
		Server:  dialect.OR,
		Trigger: fault.Trigger{Table: "DROPME", Flag: ast.FlagSelect},
		Effect:  fault.Effect{Kind: fault.EffectAbortConnection},
	}}
	s, err := New(dialect.OR, faults)
	if err != nil {
		t.Fatal(err)
	}
	a, b := s.NewSession(), s.NewSession()
	for _, q := range []string{"CREATE TABLE DROPME (X INT)", "CREATE TABLE OTHER (X INT)"} {
		if _, _, err := a.Exec(q); err != nil {
			t.Fatal(err)
		}
	}
	for _, sess := range []*Session{a, b} {
		if _, _, err := sess.Exec("BEGIN TRANSACTION"); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := a.Exec("INSERT INTO DROPME VALUES (1)"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := b.Exec("INSERT INTO OTHER VALUES (2)"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := a.Exec("SELECT X FROM DROPME"); err != ErrConnAborted {
		t.Fatalf("abort fault: %v", err)
	}
	if a.InTxn() {
		t.Error("aborted session kept its transaction")
	}
	if !b.InTxn() {
		t.Error("abort on a rolled back b's transaction")
	}
	if _, _, err := b.Exec("COMMIT"); err != nil {
		t.Fatalf("b's commit: %v", err)
	}
	res, _, err := b.Exec("SELECT COUNT(*) AS N FROM OTHER")
	if err != nil || res.Rows[0][0].I != 1 {
		t.Errorf("b's committed row lost: %v %v", res, err)
	}
}
