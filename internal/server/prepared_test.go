package server

import (
	"errors"
	"fmt"
	"testing"

	"divsql/internal/dialect"
	"divsql/internal/sql/types"
)

func TestPrepareExecRoundTrip(t *testing.T) {
	s, _ := New(dialect.PG, nil)
	sess := s.NewSession()
	defer sess.Close()
	if _, _, err := sess.Exec("CREATE TABLE T (A INT, S VARCHAR(10))"); err != nil {
		t.Fatal(err)
	}
	ins, err := sess.PrepareStmt("INSERT INTO T VALUES (?, ?)")
	if err != nil {
		t.Fatal(err)
	}
	if ins.NumParams() != 2 {
		t.Fatalf("NumParams = %d", ins.NumParams())
	}
	for i := 0; i < 3; i++ {
		if _, _, err := ins.Exec(types.NewInt(int64(i)), types.NewString(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	sel, err := sess.PrepareStmt("SELECT S FROM T WHERE A = $1")
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := sel.Exec(types.NewInt(1))
	if err != nil || len(res.Rows) != 1 || res.Rows[0][0].S != "v1" {
		t.Fatalf("bound select: %+v %v", res, err)
	}
}

func TestPlanCacheReusesPlans(t *testing.T) {
	s, _ := New(dialect.OR, nil)
	sess := s.NewSession()
	defer sess.Close()
	if _, _, err := sess.Exec("CREATE TABLE T (A INT)"); err != nil {
		t.Fatal(err)
	}
	st1, err := sess.PrepareStmt("SELECT A FROM T WHERE A > ?")
	if err != nil {
		t.Fatal(err)
	}
	st2, err := sess.PrepareStmt("SELECT A FROM T WHERE A > ?")
	if err != nil {
		t.Fatal(err)
	}
	if st1.p != st2.p {
		t.Error("same text must resolve to the same cached plan")
	}
	other := s.NewSession()
	defer other.Close()
	st3, err := other.PrepareStmt("SELECT A FROM T WHERE A > ?")
	if err != nil {
		t.Fatal(err)
	}
	if st3.p == st1.p {
		t.Error("plan cache is per session")
	}
}

func TestPrepareErrors(t *testing.T) {
	s, _ := New(dialect.MS, nil)
	sess := s.NewSession()
	defer sess.Close()
	if _, err := sess.PrepareStmt("SELEC nonsense"); err == nil {
		t.Error("syntax error must fail at prepare time")
	}
	// Dialect gates apply at prepare time, like on a real server.
	if _, err := sess.PrepareStmt("CREATE SEQUENCE SQ1"); err == nil {
		t.Error("MS has no sequences; prepare must reject")
	}
	// Parameters in DDL are rejected at prepare time.
	if _, err := sess.PrepareStmt("CREATE TABLE P (A INT DEFAULT $1)"); err == nil {
		t.Error("param in DDL must fail at prepare time")
	}
	// Arg-count mismatch is a bind error at execution time.
	if _, _, err := sess.Exec("CREATE TABLE T (A INT)"); err != nil {
		t.Fatal(err)
	}
	st, err := sess.PrepareStmt("SELECT A FROM T WHERE A = ?")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.Exec(); err == nil {
		t.Error("missing argument must fail")
	}
	if _, _, err := st.Exec(types.NewInt(1), types.NewInt(2)); err == nil {
		t.Error("extra argument must fail")
	}
}

func TestDialectBindCoercionDiffers(t *testing.T) {
	// The same bound argument vector lands differently on different
	// servers: OR binds '' as NULL, PG stores it as the empty string.
	setup := func(name dialect.ServerName) *Session {
		srv, err := New(name, nil)
		if err != nil {
			t.Fatal(err)
		}
		sess := srv.NewSession()
		if _, _, err := sess.Exec("CREATE TABLE T (S VARCHAR(10))"); err != nil {
			t.Fatal(err)
		}
		st, err := sess.PrepareStmt("INSERT INTO T VALUES ($1)")
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := st.Exec(types.NewString("")); err != nil {
			t.Fatal(err)
		}
		return sess
	}
	orSess := setup(dialect.OR)
	pgSess := setup(dialect.PG)
	check := func(sess *Session, wantNull bool, name string) {
		res, _, err := sess.Exec("SELECT S FROM T")
		if err != nil || len(res.Rows) != 1 {
			t.Fatalf("%s: %+v %v", name, res, err)
		}
		if got := res.Rows[0][0].IsNull(); got != wantNull {
			t.Errorf("%s: IsNull=%v want %v", name, got, wantNull)
		}
	}
	check(orSess, true, "OR")
	check(pgSess, false, "PG")
}

func TestPrepareOnCrashedServer(t *testing.T) {
	s, _ := New(dialect.PG, nil)
	sess := s.NewSession()
	defer sess.Close()
	if _, _, err := sess.Exec("CREATE TABLE T (A INT)"); err != nil {
		t.Fatal(err)
	}
	st, err := sess.PrepareStmt("SELECT A FROM T")
	if err != nil {
		t.Fatal(err)
	}
	s.crash()
	if _, err := sess.PrepareStmt("SELECT A FROM T"); !errors.Is(err, ErrCrashed) {
		t.Errorf("prepare on crashed server: %v", err)
	}
	if _, _, err := st.Exec(); !errors.Is(err, ErrCrashed) {
		t.Errorf("exec on crashed server: %v", err)
	}
	s.Restart()
	if _, _, err := st.Exec(); err != nil {
		t.Errorf("prepared statement must survive a restart: %v", err)
	}
}

func TestLogRingBuffer(t *testing.T) {
	s, _ := New(dialect.PG, nil)
	// Disabled by default: no capture, no allocation.
	if _, _, err := s.Exec("CREATE TABLE T (A INT)"); err != nil {
		t.Fatal(err)
	}
	if got := s.Log(); got != nil {
		t.Fatalf("log disabled but captured %v", got)
	}
	s.EnableLog(3)
	for i := 0; i < 5; i++ {
		if _, _, err := s.Exec(fmt.Sprintf("INSERT INTO T VALUES (%d)", i)); err != nil {
			t.Fatal(err)
		}
	}
	// SELECTs never log.
	if _, _, err := s.Exec("SELECT A FROM T"); err != nil {
		t.Fatal(err)
	}
	got := s.Log()
	want := []string{"INSERT INTO T VALUES (2)", "INSERT INTO T VALUES (3)", "INSERT INTO T VALUES (4)"}
	if len(got) != len(want) {
		t.Fatalf("ring kept %d entries: %v", len(got), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("log[%d] = %q want %q", i, got[i], want[i])
		}
	}
	// Bound statements log in their replayable encoded form.
	st, err := s.defaultSession().PrepareStmt("INSERT INTO T VALUES (?)")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.Exec(types.NewInt(9)); err != nil {
		t.Fatal(err)
	}
	got = s.Log()
	if last := got[len(got)-1]; last != "INSERT INTO T VALUES (?) --BIND I:9" {
		t.Errorf("bound log entry: %q", last)
	}
	s.DisableLog()
	if _, _, err := s.Exec("INSERT INTO T VALUES (100)"); err != nil {
		t.Fatal(err)
	}
	if s.Log() != nil {
		t.Error("disable must stop and clear capture")
	}
}
