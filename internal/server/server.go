// Package server assembles a simulated off-the-shelf SQL server: the
// shared relational engine configured with one dialect (what the server
// accepts), that dialect's quirk set, and a registry of injected faults
// (how the server misbehaves). A Server presents the observable contract
// of the paper's study subjects: it executes SQL text, returning results,
// error messages, simulated latencies, engine crashes, and connection
// aborts.
package server

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"divsql/internal/dialect"
	"divsql/internal/engine"
	"divsql/internal/fault"
	"divsql/internal/sql/ast"
	"divsql/internal/sql/parser"
)

// Sentinel errors observable by clients.
var (
	// ErrCrashed is returned once the server's engine has crashed; every
	// subsequent call fails until Restart.
	ErrCrashed = errors.New("engine crash: server is down")
	// ErrConnAborted models a dropped client connection: the engine
	// survives, the session's transaction is rolled back.
	ErrConnAborted = errors.New("connection aborted by server")
)

// BaseLatency is the simulated execution time of a healthy statement.
const BaseLatency = time.Millisecond

// Server is one simulated SQL server instance.
type Server struct {
	mu      sync.Mutex
	name    dialect.ServerName
	d       *dialect.Dialect
	eng     *engine.Engine
	faults  *fault.Registry
	crashed bool
	stress  bool
	log     []string // successfully executed state-changing statements
}

// New builds a server of the given name carrying the provided faults
// (only those registered for this server are installed).
func New(name dialect.ServerName, faults []fault.Fault) (*Server, error) {
	d, err := dialect.New(name)
	if err != nil {
		return nil, err
	}
	return &Server{
		name:   name,
		d:      d,
		eng:    engine.New(d.EngineConfig()),
		faults: fault.NewRegistry(name, faults),
	}, nil
}

// NewOracle builds the pristine reference server: permissive dialect
// (it understands every server's spellings), no quirks, no faults. It is
// the correctness oracle of the study.
func NewOracle() *Server {
	return &Server{
		name:   "ORACLE-REF",
		eng:    engine.New(dialect.OracleConfig()),
		faults: fault.NewRegistry("ORACLE-REF", nil),
	}
}

// Name returns the server's identity.
func (s *Server) Name() dialect.ServerName { return s.name }

// Dialect returns the server's dialect (nil for the pristine oracle).
func (s *Server) Dialect() *dialect.Dialect { return s.d }

// SetStress toggles the stressful environment in which Heisenbug-class
// faults can manifest (Section 3.2 of the paper).
func (s *Server) SetStress(on bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stress = on
}

// Crashed reports whether the engine is down.
func (s *Server) Crashed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.crashed
}

// Restart brings a crashed server back up. Committed state survives (the
// simulated servers journal to stable storage); any open transaction was
// already rolled back by the crash.
func (s *Server) Restart() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.crashed = false
}

// Exec executes one SQL statement, returning the result and the
// simulated latency.
func (s *Server) Exec(sql string) (*engine.Result, time.Duration, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.crashed {
		return nil, 0, ErrCrashed
	}
	st, err := parser.Parse(sql)
	if err != nil {
		return nil, BaseLatency, fmt.Errorf("syntax error: %w", err)
	}
	if err := s.checkDialect(st); err != nil {
		return nil, BaseLatency, err
	}

	latency := BaseLatency
	var matched *fault.Fault
	if s.d != nil {
		fp := ast.FingerprintOf(st)
		matched = s.faults.Match(fp, s.stress)
	}
	if matched != nil {
		switch matched.Effect.Kind {
		case fault.EffectCrash:
			s.eng.Abort()
			s.crashed = true
			return nil, latency, ErrCrashed
		case fault.EffectError:
			return nil, latency, errors.New(matched.Effect.Message)
		case fault.EffectAbortConnection:
			s.eng.Abort()
			return nil, latency, ErrConnAborted
		case fault.EffectLatency:
			latency += time.Duration(matched.Effect.LatencyMillis) * time.Millisecond
		}
	}

	res, execErr := s.eng.Exec(st)
	s.eng.EndStatement()
	if matched != nil && matched.Effect.Kind == fault.EffectSuppressError && execErr != nil {
		// The fault swallows a legitimate error: the invalid statement is
		// silently "accepted" (and has no effect).
		return &engine.Result{Kind: engine.ResultDDL}, latency, nil
	}
	if execErr != nil {
		return nil, latency, execErr
	}
	if matched != nil && matched.Effect.Kind == fault.EffectMutateResult {
		res = fault.Apply(matched.Effect.Mutation, res)
	}
	if isStateChanging(st) {
		s.log = append(s.log, sql)
	}
	return res, latency, nil
}

// checkDialect rejects constructs the server's dialect does not offer
// (the parser accepts the superset; real servers reject at parse time).
func (s *Server) checkDialect(st ast.Statement) error {
	if s.d == nil {
		return nil // pristine oracle accepts everything
	}
	switch x := st.(type) {
	case *ast.CreateView:
		if x.Select != nil && x.Select.Union != nil && !s.d.Supports(dialect.FeatViewUnion) {
			return fmt.Errorf("syntax error: %s does not support UNION in view definitions", s.name)
		}
	case *ast.CreateIndex:
		if x.Clustered && !s.d.Supports(dialect.FeatClusteredIndex) {
			return fmt.Errorf("syntax error: %s does not support CLUSTERED indexes", s.name)
		}
	case *ast.CreateSequence:
		if !s.d.Supports(dialect.FeatSequences) {
			return fmt.Errorf("syntax error: %s does not support sequences", s.name)
		}
	case *ast.Select:
		if x.LimitSyn != ast.LimitNone {
			if x.LimitSyn != s.d.LimitSyntax() {
				return fmt.Errorf("syntax error: row-limit syntax not accepted by %s", s.name)
			}
		}
	}
	return nil
}

func isStateChanging(st ast.Statement) bool {
	switch st.(type) {
	case *ast.Select:
		return false
	default:
		return true
	}
}

// ExecScript executes a whole script, stopping at a crash (remaining
// statements cannot be submitted to a dead server). It returns one
// outcome per submitted statement.
func (s *Server) ExecScript(script string) ([]StmtOutcome, error) {
	stmts, err := parser.SplitScript(script)
	if err != nil {
		return nil, err
	}
	outcomes := make([]StmtOutcome, 0, len(stmts))
	for _, stmt := range stmts {
		res, lat, err := s.Exec(stmt)
		out := StmtOutcome{SQL: stmt, Res: res, Err: err, Latency: lat}
		if errors.Is(err, ErrCrashed) {
			out.Crashed = true
			outcomes = append(outcomes, out)
			break
		}
		outcomes = append(outcomes, out)
	}
	return outcomes, nil
}

// StmtOutcome is the observable outcome of one script statement.
type StmtOutcome struct {
	SQL     string
	Res     *engine.Result
	Err     error
	Crashed bool
	Latency time.Duration
}

// InTxn reports whether a client transaction is open on this server.
func (s *Server) InTxn() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.eng.InTxn()
}

// Snapshot captures the engine state for state transfer.
func (s *Server) Snapshot() *engine.State {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.eng.Snapshot()
}

// Restore replaces the engine state (used for replica resync).
func (s *Server) Restore(st *engine.State) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.eng.Restore(st)
}

// Reset drops all state (fresh install).
func (s *Server) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.eng.Reset()
	s.log = nil
	s.crashed = false
}

// Log returns the successfully executed state-changing statements.
func (s *Server) Log() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.log...)
}

// FaultCount reports how many faults are installed (used by tests).
func (s *Server) FaultCount() int { return s.faults.Len() }
