// Package server assembles a simulated off-the-shelf SQL server: the
// shared relational engine configured with one dialect (what the server
// accepts), that dialect's quirk set, and a registry of injected faults
// (how the server misbehaves). A Server presents the observable contract
// of the paper's study subjects: it executes SQL text, returning results,
// error messages, simulated latencies, engine crashes, and connection
// aborts.
//
// Clients attach through sessions (NewSession): each session carries its
// own transaction scope, and sessions execute concurrently — parsing and
// dialect checks run fully in parallel, while the shared engine lets
// read-only statements overlap and serializes writes. The sessionless
// Server.Exec remains as a default-session convenience. An engine crash
// takes every session's open transaction down with it.
package server

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"divsql/internal/core"
	"divsql/internal/dialect"
	"divsql/internal/engine"
	engplan "divsql/internal/engine/plan"
	"divsql/internal/fault"
	"divsql/internal/sql/ast"
	"divsql/internal/sql/parser"
	"divsql/internal/sql/types"
)

// Sentinel errors observable by clients.
var (
	// ErrCrashed is returned once the server's engine has crashed; every
	// subsequent call fails until Restart.
	ErrCrashed = errors.New("engine crash: server is down")
	// ErrConnAborted models a dropped client connection: the engine
	// survives, the session's transaction is rolled back.
	ErrConnAborted = errors.New("connection aborted by server")
)

// BaseLatency is the simulated execution time of a healthy statement.
const BaseLatency = time.Millisecond

// Server is one simulated SQL server instance.
type Server struct {
	name   dialect.ServerName
	d      *dialect.Dialect
	eng    *engine.Engine
	faults *fault.Registry

	mu      sync.Mutex // guards crashed, stress, log fields, def
	crashed bool
	stress  bool
	def     *Session

	// Statement log: opt-in (EnableLog) and ring-buffered, so long-lived
	// servers and deep fuzzing runs pay neither the append allocation nor
	// the unbounded growth. logBuf is a fixed-capacity ring; logStart is
	// the index of the oldest entry; logLen the number of live entries.
	logOn    bool
	logBuf   []string
	logStart int
	logLen   int
}

// DefaultLogCapacity is the ring capacity EnableLog uses when given a
// non-positive capacity.
const DefaultLogCapacity = 1024

// Session is one client session of a server: its own transaction scope
// over the shared engine. Obtain one with NewSession; a session is used
// by one client at a time, like a connection.
type Session struct {
	srv *Server
	es  *engine.Session

	// plans is the session's parse-once plan cache: Prepare resolves a
	// statement text to its parsed, dialect-checked plan exactly once.
	// Owned by the session's single client, so no lock. Bounded: at
	// maxSessionPlans the cache is dropped wholesale (re-preparing is
	// just a reparse).
	plans map[string]*plan
}

// maxSessionPlans bounds the per-session plan cache.
const maxSessionPlans = 512

var (
	_ core.Executor         = (*Server)(nil)
	_ core.SessionExecutor  = (*Server)(nil)
	_ core.PreparedExecutor = (*Server)(nil)
	_ core.Session          = (*Session)(nil)
	_ core.PreparedExecutor = (*Session)(nil)
	_ core.Statement        = (*Stmt)(nil)
	_ core.Snapshotter      = (*Server)(nil)
)

// New builds a server of the given name carrying the provided faults
// (only those registered for this server are installed).
func New(name dialect.ServerName, faults []fault.Fault) (*Server, error) {
	d, err := dialect.New(name)
	if err != nil {
		return nil, err
	}
	return &Server{
		name:   name,
		d:      d,
		eng:    engine.New(d.EngineConfig()),
		faults: fault.NewRegistry(name, faults),
	}, nil
}

// OracleName is the pristine reference server's identity, as reported
// by Name(). Replay and regression machinery that rebuilds an endpoint
// from a recorded name uses it to distinguish the oracle from the four
// servers under test.
const OracleName dialect.ServerName = "ORACLE-REF"

// NewOracle builds the pristine reference server: permissive dialect
// (it understands every server's spellings), no quirks, no faults. It is
// the correctness oracle of the study.
func NewOracle() *Server {
	return &Server{
		name:   OracleName,
		eng:    engine.New(dialect.OracleConfig()),
		faults: fault.NewRegistry(OracleName, nil),
	}
}

// Name returns the server's identity.
func (s *Server) Name() dialect.ServerName { return s.name }

// Dialect returns the server's dialect (nil for the pristine oracle).
func (s *Server) Dialect() *dialect.Dialect { return s.d }

// SetStress toggles the stressful environment in which Heisenbug-class
// faults can manifest (Section 3.2 of the paper).
func (s *Server) SetStress(on bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stress = on
}

// Crashed reports whether the engine is down.
func (s *Server) Crashed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.crashed
}

// Restart brings a crashed server back up. Committed state survives (the
// simulated servers journal to stable storage); any open transaction was
// already rolled back by the crash.
func (s *Server) Restart() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.crashed = false
}

// NewSession opens a client session.
func (s *Server) NewSession() *Session {
	return &Session{srv: s, es: s.eng.NewSession()}
}

// OpenSession implements core.SessionExecutor.
func (s *Server) OpenSession() core.Session { return s.NewSession() }

// defaultSession returns the session backing the sessionless API.
func (s *Server) defaultSession() *Session {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.def == nil {
		s.def = &Session{srv: s, es: s.eng.DefaultSession()}
	}
	return s.def
}

// Exec executes one SQL statement on the server's default session,
// returning the result and the simulated latency.
func (s *Server) Exec(sql string) (*engine.Result, time.Duration, error) {
	return s.defaultSession().Exec(sql)
}

// Prepare prepares a statement on the server's default session
// (implements core.PreparedExecutor).
func (s *Server) Prepare(sql string) (core.Statement, error) {
	return s.defaultSession().Prepare(sql)
}

// ExecArgs is one-shot prepare-bind-execute on the default session.
func (s *Server) ExecArgs(sql string, args ...types.Value) (*engine.Result, time.Duration, error) {
	return s.defaultSession().ExecArgs(sql, args...)
}

// crash halts the engine: every session's open transaction is rolled
// back (committed state survives) and all subsequent statements fail
// with ErrCrashed until Restart.
func (s *Server) crash() {
	s.mu.Lock()
	s.crashed = true
	s.mu.Unlock()
	s.eng.AbortAll()
}

// Close rolls back the session's open transaction and releases it.
func (c *Session) Close() error { return c.es.Close() }

// Abort rolls back the session's open transaction, if any, keeping the
// session usable. The differential harness uses it to clear a
// transaction that a fault desynchronized from the oracle before
// restoring the server from an oracle snapshot.
func (c *Session) Abort() { c.es.Abort() }

// InTxn reports whether this session has an open transaction.
func (c *Session) InTxn() bool { return c.es.InTxn() }

// Server returns the server the session is attached to.
func (c *Session) Server() *Server { return c.srv }

// LastPlan describes how the session's most recent SELECT executed on
// the engine (access path, compiled vs interpreter, plan-cache hit).
func (c *Session) LastPlan() engplan.Info { return c.es.LastPlan() }

// ExecVariant executes an already parsed pure SELECT under a forced
// access-path variant, bypassing the engine's plan caches and this
// server's fault layer. It is the probe of the forced-variant
// differential oracle (difftest's DQP-lite gate): the caller runs the
// same statement once per variant and compares the results.
func (c *Session) ExecVariant(sel *ast.Select, force engplan.Force, args ...types.Value) (*engine.Result, error) {
	return c.es.ExecSelectVariant(sel, force, args)
}

// PlanCacheStats returns the engine's shared compiled-plan cache
// counters (hits, misses, DDL invalidations).
func (s *Server) PlanCacheStats() engplan.CacheStats { return s.eng.PlanCacheStats() }

// Exec executes one SQL statement in this session, returning the result
// and the simulated latency. It is a one-shot prepare-and-execute: the
// statement is parsed and dialect-checked, then runs through the same
// execution path as a prepared statement (with no arguments bound).
func (c *Session) Exec(sql string) (*engine.Result, time.Duration, error) {
	s := c.srv
	s.mu.Lock()
	if s.crashed {
		s.mu.Unlock()
		return nil, 0, ErrCrashed
	}
	s.mu.Unlock()

	st, err := parser.Parse(sql)
	if err != nil {
		return nil, BaseLatency, fmt.Errorf("syntax error: %w", err)
	}
	if err := s.checkDialect(st); err != nil {
		return nil, BaseLatency, err
	}
	return c.run(sql, st, nil, nil)
}

// ExecArgs is one-shot prepare-bind-execute: the statement is planned
// through the session's plan cache (so repeated texts parse once) and
// executed with the given arguments.
func (c *Session) ExecArgs(sql string, args ...types.Value) (*engine.Result, time.Duration, error) {
	st, err := c.PrepareStmt(sql)
	if err != nil {
		return nil, BaseLatency, err
	}
	return st.Exec(args...)
}

// plan is one parse-once execution plan, cached per session by statement
// text: the parsed tree, its fingerprint (fault matching) and its
// parameter count.
type plan struct {
	sql string
	st  ast.Statement
	fp  ast.Fingerprint
	np  int
}

// Stmt is a prepared statement of one session. It implements
// core.Statement.
type Stmt struct {
	sess   *Session
	p      *plan
	closed bool
}

// PrepareStmt parses, dialect-checks and plans one statement for
// repeated execution. Plans are cached per session by statement text, so
// re-preparing a text this session has already planned costs a map
// lookup — the parse leaves the hot path.
func (c *Session) PrepareStmt(sql string) (*Stmt, error) {
	s := c.srv
	s.mu.Lock()
	crashed := s.crashed
	s.mu.Unlock()
	if crashed {
		return nil, ErrCrashed
	}
	p, err := c.plan(sql)
	if err != nil {
		return nil, err
	}
	return &Stmt{sess: c, p: p}, nil
}

// Prepare implements core.PreparedExecutor.
func (c *Session) Prepare(sql string) (core.Statement, error) {
	st, err := c.PrepareStmt(sql)
	if err != nil {
		return nil, err
	}
	return st, nil
}

func (c *Session) plan(sql string) (*plan, error) {
	if p, ok := c.plans[sql]; ok {
		return p, nil
	}
	st, err := parser.Parse(sql)
	if err != nil {
		return nil, fmt.Errorf("syntax error: %w", err)
	}
	if err := c.srv.checkDialect(st); err != nil {
		return nil, err
	}
	np := ast.NumParams(st)
	if err := engine.CheckBindable(st, np); err != nil {
		return nil, err // parameters in a statement class that cannot bind
	}
	p := &plan{sql: sql, st: st, fp: ast.FingerprintOf(st), np: np}
	if len(c.plans) >= maxSessionPlans {
		c.plans = nil
	}
	if c.plans == nil {
		c.plans = make(map[string]*plan)
	}
	c.plans[sql] = p
	return p, nil
}

// SQL returns the statement text as prepared.
func (st *Stmt) SQL() string { return st.p.sql }

// NumParams reports how many arguments Exec expects.
func (st *Stmt) NumParams() int { return st.p.np }

// Close releases the statement (the session keeps the cached plan).
func (st *Stmt) Close() error {
	st.closed = true
	return nil
}

// Bound returns the prepared statement's parsed tree (read-only; used by
// the middleware to classify the statement without reparsing).
func (st *Stmt) Bound() ast.Statement { return st.p.st }

// ReadOnly reports whether executing the statement is a pure query: a
// SELECT that does not (directly or through views) advance a sequence.
// Resolved per call — view chains can change between executions.
func (st *Stmt) ReadOnly() bool {
	sel, ok := st.p.st.(*ast.Select)
	if !ok {
		return false
	}
	return !st.sess.srv.eng.SelectAdvancesSequences(sel)
}

// Exec executes the prepared statement with the given arguments. The
// argument count must match the statement's parameter count; the
// server's bind-time coercion rules (engine.BindRules) then normalize
// the values before the plan runs.
func (st *Stmt) Exec(args ...types.Value) (*engine.Result, time.Duration, error) {
	if st.closed {
		return nil, 0, errors.New("statement is closed")
	}
	if len(args) != st.p.np {
		return nil, BaseLatency, fmt.Errorf("%w: statement wants %d parameters, %d bound",
			engine.ErrBind, st.p.np, len(args))
	}
	return st.sess.run(st.p.sql, st.p.st, &st.p.fp, args)
}

// run executes one planned statement: fault matching on the (cached)
// fingerprint, engine execution with the bound arguments, fault effects
// and crash bookkeeping. fp may be nil for ad-hoc statements (computed
// on demand, and only when the server carries faults at all).
func (c *Session) run(sql string, st ast.Statement, fp *ast.Fingerprint, args []types.Value) (*engine.Result, time.Duration, error) {
	s := c.srv
	s.mu.Lock()
	if s.crashed {
		s.mu.Unlock()
		return nil, 0, ErrCrashed
	}
	stress := s.stress
	s.mu.Unlock()

	latency := BaseLatency
	var matched *fault.Fault
	if s.d != nil {
		var f ast.Fingerprint
		if fp != nil {
			f = *fp
		} else {
			f = ast.FingerprintOf(st)
		}
		matched = s.faults.Match(f, stress)
	}
	if matched != nil {
		switch matched.Effect.Kind {
		case fault.EffectCrash:
			s.crash()
			return nil, latency, ErrCrashed
		case fault.EffectError:
			return nil, latency, errors.New(matched.Effect.Message)
		case fault.EffectAbortConnection:
			// Only this session's connection drops; other sessions keep
			// their transactions.
			c.es.Abort()
			return nil, latency, ErrConnAborted
		case fault.EffectLatency:
			latency += time.Duration(matched.Effect.LatencyMillis) * time.Millisecond
		}
	}

	var res *engine.Result
	var execErr error
	if args == nil {
		res, execErr = c.es.Exec(st)
	} else {
		res, execErr = c.es.ExecBound(st, args)
	}
	// Re-check the crash flag: another session may have crashed the
	// server while this statement was in flight. The outcome of such a
	// statement is ambiguous (as on a real server that dies mid-request);
	// the client sees the crash, never a "healthy" result.
	s.mu.Lock()
	crashedNow := s.crashed
	s.mu.Unlock()
	if crashedNow {
		return nil, latency, ErrCrashed
	}
	if matched != nil && matched.Effect.Kind == fault.EffectSuppressError && execErr != nil {
		// The fault swallows a legitimate error: the invalid statement is
		// silently "accepted" (and has no effect).
		return &engine.Result{Kind: engine.ResultDDL}, latency, nil
	}
	if execErr != nil {
		return nil, latency, execErr
	}
	if matched != nil && matched.Effect.Kind == fault.EffectMutateResult {
		res = fault.Apply(matched.Effect.Mutation, res)
	}
	if isStateChanging(st) {
		s.logWrite(core.EncodeBound(sql, args))
	}
	return res, latency, nil
}

// ReadOnly reports whether sql is a pure query on this server: a SELECT
// that does not (directly or through views) advance a sequence. A parse
// failure classifies as not read-only — the conservative direction for
// callers deciding lock modes or read policies.
func (s *Server) ReadOnly(sql string) bool {
	st, err := parser.Parse(sql)
	if err != nil {
		return false
	}
	sel, ok := st.(*ast.Select)
	if !ok {
		return false
	}
	return !s.eng.SelectAdvancesSequences(sel)
}

// SelectAdvancesSequences is ReadOnly for callers that already hold the
// parsed query (saves the re-parse on hot adjudication paths).
func (s *Server) SelectAdvancesSequences(sel *ast.Select) bool {
	return s.eng.SelectAdvancesSequences(sel)
}

// checkDialect rejects constructs the server's dialect does not offer
// (the parser accepts the superset; real servers reject at parse time).
func (s *Server) checkDialect(st ast.Statement) error {
	if s.d == nil {
		return nil // pristine oracle accepts everything
	}
	switch x := st.(type) {
	case *ast.CreateView:
		if x.Select != nil && x.Select.Union != nil && !s.d.Supports(dialect.FeatViewUnion) {
			return fmt.Errorf("syntax error: %s does not support UNION in view definitions", s.name)
		}
	case *ast.CreateIndex:
		if x.Clustered && !s.d.Supports(dialect.FeatClusteredIndex) {
			return fmt.Errorf("syntax error: %s does not support CLUSTERED indexes", s.name)
		}
	case *ast.CreateSequence:
		if !s.d.Supports(dialect.FeatSequences) {
			return fmt.Errorf("syntax error: %s does not support sequences", s.name)
		}
	case *ast.Select:
		if x.LimitSyn != ast.LimitNone {
			if x.LimitSyn != s.d.LimitSyntax() {
				return fmt.Errorf("syntax error: row-limit syntax not accepted by %s", s.name)
			}
		}
	case *ast.SetTxn:
		if !s.d.SupportsIsolation(x.Level) {
			return fmt.Errorf("syntax error: %s does not support isolation level %s", s.name, x.Level)
		}
	}
	return nil
}

func isStateChanging(st ast.Statement) bool {
	switch st.(type) {
	case *ast.Select:
		return false
	default:
		return true
	}
}

// ExecScript executes a whole script on the default session, stopping at
// a crash (remaining statements cannot be submitted to a dead server).
// It returns one outcome per submitted statement.
func (s *Server) ExecScript(script string) ([]StmtOutcome, error) {
	stmts, err := parser.SplitScript(script)
	if err != nil {
		return nil, err
	}
	outcomes := make([]StmtOutcome, 0, len(stmts))
	for _, stmt := range stmts {
		res, lat, err := s.Exec(stmt)
		out := StmtOutcome{SQL: stmt, Res: res, Err: err, Latency: lat}
		if errors.Is(err, ErrCrashed) {
			out.Crashed = true
			outcomes = append(outcomes, out)
			break
		}
		outcomes = append(outcomes, out)
	}
	return outcomes, nil
}

// StmtOutcome is the observable outcome of one script statement.
type StmtOutcome struct {
	SQL     string
	Res     *engine.Result
	Err     error
	Crashed bool
	Latency time.Duration
}

// InTxn reports whether the default session has a transaction open.
func (s *Server) InTxn() bool {
	return s.defaultSession().InTxn()
}

// InTxnAny reports whether any session has a transaction open (used by
// the middleware to gate state transfers on transaction boundaries).
func (s *Server) InTxnAny() bool { return s.eng.AnyInTxn() }

// Snapshot captures a consistent image of the engine's COMMITTED state
// at this instant for state transfer. It never waits for transaction
// boundaries: the engine rewinds open transactions on a copy-on-write
// clone while the server keeps executing.
func (s *Server) Snapshot() *engine.State {
	return s.eng.Snapshot()
}

// CommitSeq returns the engine's commit high-water mark (stamped into
// snapshots, used to anchor resync redo).
func (s *Server) CommitSeq() uint64 { return s.eng.CommitSeq() }

// Restore replaces the engine state (used for replica resync). Open
// transactions on every session are discarded.
func (s *Server) Restore(st *engine.State) {
	s.eng.Restore(st)
}

// RestoreScoped replaces only the objects selected by keep with the
// snapshot's objects selected by keep. State — and open transactions —
// outside the scope are untouched; the caller manages the transaction
// state of sessions working inside the scope (Session.Abort).
func (s *Server) RestoreScoped(st *engine.State, keep func(name string) bool) {
	s.eng.RestoreScoped(st, keep)
}

// Reset drops all state (fresh install). Log capture stays in whatever
// mode it was; captured entries are discarded.
func (s *Server) Reset() {
	s.eng.Reset()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.logStart, s.logLen = 0, 0
	s.crashed = false
}

// EnableLog turns on capture of successfully executed state-changing
// statements into a fixed-capacity ring buffer (the newest capacity
// entries are kept). Logging is off by default: with no consumer it
// would only cost an allocation per write on long hunts. A non-positive
// capacity selects DefaultLogCapacity.
func (s *Server) EnableLog(capacity int) {
	if capacity <= 0 {
		capacity = DefaultLogCapacity
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.logOn = true
	s.logBuf = make([]string, capacity)
	s.logStart, s.logLen = 0, 0
}

// DisableLog turns off statement capture and releases the ring.
func (s *Server) DisableLog() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.logOn = false
	s.logBuf = nil
	s.logStart, s.logLen = 0, 0
}

// logWrite records one state-changing statement when logging is enabled.
func (s *Server) logWrite(entry string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.logOn || len(s.logBuf) == 0 {
		return
	}
	if s.logLen < len(s.logBuf) {
		s.logBuf[(s.logStart+s.logLen)%len(s.logBuf)] = entry
		s.logLen++
		return
	}
	s.logBuf[s.logStart] = entry
	s.logStart = (s.logStart + 1) % len(s.logBuf)
}

// Log returns the captured state-changing statements, oldest first (at
// most the ring capacity; nil when logging is disabled). Bound
// statements appear in the replayable core.EncodeBound form.
func (s *Server) Log() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.logOn || s.logLen == 0 {
		return nil
	}
	out := make([]string, 0, s.logLen)
	for i := 0; i < s.logLen; i++ {
		out = append(out, s.logBuf[(s.logStart+i)%len(s.logBuf)])
	}
	return out
}

// FaultCount reports how many faults are installed (used by tests).
func (s *Server) FaultCount() int { return s.faults.Len() }
