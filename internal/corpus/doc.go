// Package corpus contains the calibrated bug-report corpus of the
// reproduction: 181 executable bug scripts attributed to the four
// simulated servers (55 IB, 57 PG, 18 OR, 51 MS), with the fault
// injections that realize their failures.
//
// The corpus is synthetic but calibrated: its per-server and
// per-combination composition was solved from the joint constraints of
// the paper's Tables 1-4 (the package's tests assert the published
// counts directly), so rerunning the study on it regenerates the
// paper's numbers. The 13 bugs that cross
// server boundaries (Table 4) are hand-modelled on the paper's own bug
// descriptions (handmade.go); the remaining 168 are generated from
// script templates with per-bug fault injections and per-bug
// dialect-availability atoms (generated.go).
//
// Each Bug couples three things:
//
//   - a Script, written in the reporting server's dialect — the
//     artifact internal/translate ports to the other dialects exactly
//     as the paper's methodology required;
//   - the fault.Fault injections that make the simulated servers
//     reproduce the reported failure (trigger fingerprint + effect);
//   - an Expect record of the observable outcome class on each server,
//     which internal/study adjudicates against.
//
// The package is the supply side of two consumers: internal/study runs
// All() to regenerate Tables 1-4 and the headline statistics, and the
// differential hunter arms AllFaults() as its calibrated fault set
// (difftest.CalibratedConfig), pointing the generator's table pool at
// the faults' trigger tables. ByServer filters the corpus the way the
// paper's per-server analyses slice it.
package corpus
