package corpus

import (
	"testing"

	"divsql/internal/core"
	"divsql/internal/dialect"
	"divsql/internal/sql/parser"
)

// paper counts: bugs per reporting server (Section 4.1).
var paperCounts = map[dialect.ServerName]int{
	dialect.IB: 55, dialect.PG: 57, dialect.OR: 18, dialect.MS: 51,
}

func TestCorpusSize(t *testing.T) {
	bugs := All()
	if len(bugs) != 181 {
		t.Fatalf("corpus has %d bugs, want 181", len(bugs))
	}
	for srv, want := range paperCounts {
		if got := len(ByServer(bugs, srv)); got != want {
			t.Errorf("%s: %d bugs, want %d", srv, got, want)
		}
	}
}

func TestBugIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, b := range All() {
		if seen[b.ID] {
			t.Errorf("duplicate bug ID %s", b.ID)
		}
		seen[b.ID] = true
	}
}

func TestEveryScriptParses(t *testing.T) {
	for _, b := range All() {
		stmts, err := parser.ParseScript(b.Script)
		if err != nil {
			t.Errorf("%s script: %v", b.ID, err)
			continue
		}
		if len(stmts) < 2 {
			t.Errorf("%s: suspiciously short script (%d statements)", b.ID, len(stmts))
		}
	}
}

func TestExpectationsCoverAllServers(t *testing.T) {
	for _, b := range All() {
		for _, s := range dialect.AllServers {
			if _, ok := b.Expected[s]; !ok {
				t.Errorf("%s: no expectation for %s", b.ID, s)
			}
		}
		own := b.Expected[b.Server]
		if own.Status == core.StatusCannotRun || own.Status == core.StatusFurtherWork {
			t.Errorf("%s: cannot run on its own server", b.ID)
		}
		if b.Heisen != (own.Status == core.StatusNoFailure) {
			t.Errorf("%s: Heisen flag inconsistent with expectation", b.ID)
		}
	}
}

// Table 1 marginals: cannot-run / further-work / run counts per
// (reporting, target) pair, straight from the paper.
func TestRunnabilityMarginals(t *testing.T) {
	type marg struct{ cannot, fw, run int }
	want := map[dialect.ServerName]map[dialect.ServerName]marg{
		dialect.IB: {dialect.PG: {23, 5, 27}, dialect.OR: {20, 4, 31}, dialect.MS: {16, 6, 33}},
		dialect.PG: {dialect.IB: {32, 2, 23}, dialect.OR: {27, 0, 30}, dialect.MS: {24, 0, 33}},
		dialect.OR: {dialect.IB: {13, 1, 4}, dialect.MS: {13, 1, 4}, dialect.PG: {12, 2, 4}},
		dialect.MS: {dialect.IB: {36, 3, 12}, dialect.OR: {32, 7, 12}, dialect.PG: {31, 2, 18}},
	}
	bugs := All()
	for rep, inner := range want {
		for tgt, m := range inner {
			var cannot, fw, run int
			for _, b := range ByServer(bugs, rep) {
				switch b.Expected[tgt].Status {
				case core.StatusCannotRun:
					cannot++
				case core.StatusFurtherWork:
					fw++
				default:
					run++
				}
			}
			if cannot != m.cannot || fw != m.fw || run != m.run {
				t.Errorf("%s on %s: cannot/fw/run = %d/%d/%d, want %d/%d/%d",
					rep, tgt, cannot, fw, run, m.cannot, m.fw, m.run)
			}
		}
	}
}

// Table 1 own-server failure-type rows.
func TestOwnFailureTypeMarginals(t *testing.T) {
	type row struct{ perf, crash, irse, irnse, othse, othnse, nofail int }
	want := map[dialect.ServerName]row{
		dialect.IB: {3, 7, 4, 23, 2, 8, 8},
		dialect.PG: {0, 11, 14, 20, 2, 5, 5},
		dialect.OR: {1, 3, 3, 7, 0, 0, 4},
		dialect.MS: {6, 5, 10, 17, 1, 0, 12},
	}
	for srv, w := range want {
		var got row
		for _, b := range ByServer(All(), srv) {
			e := b.Expected[srv]
			switch {
			case e.Status == core.StatusNoFailure:
				got.nofail++
			case e.Type == core.Performance:
				got.perf++
			case e.Type == core.EngineCrash:
				got.crash++
			case e.Type == core.IncorrectResult && e.SelfEvident:
				got.irse++
			case e.Type == core.IncorrectResult:
				got.irnse++
			case e.Type == core.OtherFailure && e.SelfEvident:
				got.othse++
			case e.Type == core.OtherFailure:
				got.othnse++
			}
		}
		if got != w {
			t.Errorf("%s failure types: %+v want %+v", srv, got, w)
		}
	}
}

// Table 4: the cross-failure structure must be exactly the paper's.
func TestCrossFailureStructure(t *testing.T) {
	crosses := map[string][]dialect.ServerName{}
	for _, b := range All() {
		for _, s := range dialect.AllServers {
			if s == b.Server {
				continue
			}
			if b.Expected[s].Status == core.StatusFailure {
				crosses[b.ID] = append(crosses[b.ID], s)
			}
		}
	}
	want := map[string][]dialect.ServerName{
		"IB-223512":  {dialect.PG},
		"IB-217042":  {dialect.MS},
		"IB-222476":  {dialect.MS},
		"MS-58544":   {dialect.IB},
		"PG-43":      {dialect.MS},
		"PG-77":      {dialect.MS},
		"OR-1059835": {dialect.PG},
		"MS-54428":   {dialect.PG},
		"MS-56516":   {dialect.PG},
		"MS-58158":   {dialect.PG},
		"MS-58253":   {dialect.PG},
		"MS-351180":  {dialect.PG},
		"MS-56775":   {dialect.PG},
	}
	if len(crosses) != len(want) {
		t.Errorf("cross-failing bugs: %v, want 13", crosses)
	}
	for id, servers := range want {
		got := crosses[id]
		if len(got) != len(servers) || (len(got) == 1 && got[0] != servers[0]) {
			t.Errorf("%s cross-fails %v, want %v", id, got, servers)
		}
	}
}

func TestFaultsBelongToTheirBug(t *testing.T) {
	for _, b := range All() {
		for _, f := range b.Faults {
			if f.BugID != b.ID {
				t.Errorf("%s carries fault for %s", b.ID, f.BugID)
			}
		}
	}
	if len(AllFaults()) == 0 {
		t.Error("no faults collected")
	}
}

func TestRunsOnHelper(t *testing.T) {
	for _, b := range All() {
		if !b.RunsOn(b.Server) {
			t.Errorf("%s: RunsOn(own) false", b.ID)
		}
	}
}

func TestGeneratedFaultTablesAreUnique(t *testing.T) {
	// Each generated bug's fault must target a table unique to the bug,
	// so that faults never leak into other bugs' runs.
	tables := map[string]string{}
	for _, b := range All() {
		for _, f := range b.Faults {
			tbl := f.Trigger.Table
			if tbl == "" {
				t.Errorf("%s: fault without table trigger", b.ID)
				continue
			}
			if owner, seen := tables[tbl]; seen && owner != b.ID {
				t.Errorf("table %s shared by %s and %s", tbl, owner, b.ID)
			}
			tables[tbl] = b.ID
		}
	}
}
