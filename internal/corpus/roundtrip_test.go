package corpus

import (
	"testing"

	"divsql/internal/sql/ast"
	"divsql/internal/sql/parser"
)

// The differential workload generator (internal/qgen) emits ASTs and
// ships them to the servers as rendered SQL, so ast.Render must be a
// faithful, re-parseable serialization for every construct the corpus
// exercises. This property test runs parse -> render -> parse over every
// statement of every bug script: the second render must be a fixed point
// and the statement's fingerprint (the fault-trigger key) must survive.
func TestCorpusRenderRoundTrip(t *testing.T) {
	seen := 0
	for _, bug := range All() {
		stmts, err := parser.SplitScript(bug.Script)
		if err != nil {
			t.Fatalf("%s: split: %v", bug.ID, err)
		}
		for _, sql := range stmts {
			st1, err := parser.Parse(sql)
			if err != nil {
				t.Fatalf("%s: parse %q: %v", bug.ID, sql, err)
			}
			r1 := ast.Render(st1)
			st2, err := parser.Parse(r1)
			if err != nil {
				t.Errorf("%s: render not re-parseable:\n  src:    %s\n  render: %s\n  error:  %v", bug.ID, sql, r1, err)
				continue
			}
			if r2 := ast.Render(st2); r2 != r1 {
				t.Errorf("%s: render not a fixed point:\n  src: %s\n  r1:  %s\n  r2:  %s", bug.ID, sql, r1, r2)
			}
			fp1, fp2 := ast.FingerprintOf(st1).String(), ast.FingerprintOf(st2).String()
			if fp1 != fp2 {
				t.Errorf("%s: fingerprint changed across render:\n  src: %s\n  fp1: %s\n  fp2: %s", bug.ID, sql, fp1, fp2)
			}
			seen++
		}
	}
	if seen < 500 {
		t.Fatalf("round-tripped only %d statements; corpus should provide many more", seen)
	}
}
