package corpus

import (
	"fmt"
	"strings"

	"divsql/internal/core"
	"divsql/internal/dialect"
	"divsql/internal/fault"
	"divsql/internal/sql/ast"
)

// failClass is the calibrated failure class of one generated bug on its
// own server.
type failClass int

const (
	fcHeisen   failClass = iota + 1 // no failure on a quiet server
	fcPerf                          // performance failure (SE)
	fcCrash                         // engine crash (SE)
	fcIRSE                          // incorrect result, self-evident
	fcOtherSE                       // other failure, self-evident (conn abort)
	fcIRNSE                         // incorrect result, non-self-evident
	fcOtherNSE                      // other failure, non-self-evident
)

func (fc failClass) expect() Expect {
	switch fc {
	case fcHeisen:
		return expectOK()
	case fcPerf:
		return expectFail(core.Performance, true)
	case fcCrash:
		return expectFail(core.EngineCrash, true)
	case fcIRSE:
		return expectFail(core.IncorrectResult, true)
	case fcOtherSE:
		return expectFail(core.OtherFailure, true)
	case fcIRNSE:
		return expectFail(core.IncorrectResult, false)
	case fcOtherNSE:
		return expectFail(core.OtherFailure, false)
	default:
		return expectOK()
	}
}

// comboGen describes the generated bugs of one (owner, run-set)
// combination: counts of Heisenbugs and of self-evident / non-self-
// evident failures. The numbers are the solution of the constraint
// system in DESIGN.md §5, minus the hand-made bugs' contributions.
type comboGen struct {
	// others are the non-owner servers the script runs on.
	others []dialect.ServerName
	heisen int
	se     int
	nse    int
	// fw maps excluded servers to how many of this combination's bugs
	// are excluded for "further work" (the rest are "cannot run").
	fw map[dialect.ServerName]int
}

func (cg comboGen) count() int { return cg.heisen + cg.se + cg.nse }

// ownerPlan is the full generation plan for one server's bugs.
type ownerPlan struct {
	owner  dialect.ServerName
	combos []comboGen
	// sePool / nsePool list the failure classes to draw for SE/NSE
	// failures, in order (Table 1's type rows minus hand-made bugs).
	sePool  []failClass
	nsePool []failClass
}

func repeatFC(fc failClass, n int) []failClass {
	out := make([]failClass, n)
	for i := range out {
		out[i] = fc
	}
	return out
}

func concatFC(parts ...[]failClass) []failClass {
	var out []failClass
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

func plans() []ownerPlan {
	return []ownerPlan{
		{
			owner: dialect.IB,
			combos: []comboGen{
				{others: []dialect.ServerName{dialect.PG, dialect.OR, dialect.MS}, heisen: 7, se: 2, nse: 8},
				{others: []dialect.ServerName{dialect.PG, dialect.OR}, heisen: 0, se: 3, nse: 0},
				{others: []dialect.ServerName{dialect.PG, dialect.MS}, heisen: 0, se: 2, nse: 0},
				{others: []dialect.ServerName{dialect.OR, dialect.MS}, heisen: 0, se: 0, nse: 8},
				{others: []dialect.ServerName{dialect.PG}, heisen: 0, se: 2, nse: 0},
				{others: []dialect.ServerName{dialect.MS}, heisen: 0, se: 2, nse: 1},
				{others: nil, heisen: 1, se: 5, nse: 11,
					fw: map[dialect.ServerName]int{dialect.PG: 5, dialect.OR: 4, dialect.MS: 6}},
			},
			sePool: concatFC(repeatFC(fcPerf, 3), repeatFC(fcCrash, 7),
				repeatFC(fcIRSE, 4), repeatFC(fcOtherSE, 2)),
			nsePool: concatFC(repeatFC(fcIRNSE, 20), repeatFC(fcOtherNSE, 8)),
		},
		{
			owner: dialect.PG,
			combos: []comboGen{
				{others: []dialect.ServerName{dialect.IB, dialect.OR, dialect.MS}, heisen: 3, se: 2, nse: 12},
				{others: []dialect.ServerName{dialect.IB, dialect.MS}, heisen: 0, se: 2, nse: 0},
				{others: []dialect.ServerName{dialect.OR, dialect.MS}, heisen: 0, se: 5, nse: 3},
				{others: []dialect.ServerName{dialect.IB}, heisen: 0, se: 3, nse: 0},
				{others: []dialect.ServerName{dialect.OR}, heisen: 0, se: 2, nse: 1},
				{others: []dialect.ServerName{dialect.MS}, heisen: 0, se: 1, nse: 3},
				{others: nil, heisen: 2, se: 11, nse: 5,
					fw: map[dialect.ServerName]int{dialect.IB: 2}},
			},
			sePool: concatFC(repeatFC(fcCrash, 11), repeatFC(fcIRSE, 13),
				repeatFC(fcOtherSE, 2)),
			nsePool: concatFC(repeatFC(fcIRNSE, 19), repeatFC(fcOtherNSE, 5)),
		},
		{
			owner: dialect.OR,
			combos: []comboGen{
				{others: []dialect.ServerName{dialect.IB, dialect.PG, dialect.MS}, heisen: 0, se: 3, nse: 0},
				{others: []dialect.ServerName{dialect.IB, dialect.MS}, heisen: 1, se: 0, nse: 0},
				{others: nil, heisen: 3, se: 4, nse: 6,
					fw: map[dialect.ServerName]int{dialect.IB: 1, dialect.PG: 2, dialect.MS: 1}},
			},
			sePool:  concatFC(repeatFC(fcPerf, 1), repeatFC(fcCrash, 3), repeatFC(fcIRSE, 3)),
			nsePool: repeatFC(fcIRNSE, 6),
		},
		{
			owner: dialect.MS,
			combos: []comboGen{
				{others: []dialect.ServerName{dialect.IB, dialect.PG, dialect.OR}, heisen: 3, se: 2, nse: 1},
				{others: []dialect.ServerName{dialect.IB, dialect.PG}, heisen: 1, se: 2, nse: 0},
				{others: []dialect.ServerName{dialect.IB, dialect.OR}, heisen: 1, se: 0, nse: 1},
				{others: []dialect.ServerName{dialect.PG, dialect.OR}, heisen: 0, se: 0, nse: 1},
				{others: []dialect.ServerName{dialect.PG}, heisen: 0, se: 2, nse: 0,
					fw: map[dialect.ServerName]int{dialect.OR: 2}},
				{others: []dialect.ServerName{dialect.OR}, heisen: 1, se: 0, nse: 1},
				{others: nil, heisen: 5, se: 14, nse: 9,
					fw: map[dialect.ServerName]int{dialect.IB: 3, dialect.PG: 2, dialect.OR: 5}},
			},
			sePool: concatFC(repeatFC(fcPerf, 6), repeatFC(fcCrash, 5),
				repeatFC(fcIRSE, 8), repeatFC(fcOtherSE, 1)),
			nsePool: repeatFC(fcIRNSE, 13),
		},
	}
}

// Availability atoms: the construct embedded in a script to exclude one
// target server, either entirely (functionality missing) or from
// automatic translation (further work). See the dialect catalogue.
func cannotAtom(target dialect.ServerName) string {
	switch target {
	case dialect.PG:
		return "GEN_UUID(NAME) AS XPG"
	case dialect.OR:
		return "BIT_LENGTH(NAME) AS XOR"
	case dialect.MS:
		return "LPAD(NAME, 12) AS XMS"
	case dialect.IB:
		return "DATEDIFF(D, '2001-01-01') AS XIB"
	default:
		return ""
	}
}

func fwAtom(target dialect.ServerName) string {
	switch target {
	case dialect.PG:
		return "DATE_FMT(D, 'YYYY-MM-DD') AS FPG"
	case dialect.OR:
		return "NUM_FMT(AMT, '999.99') AS FOR1"
	case dialect.MS:
		return "STR_FMT(NAME, 'U') AS FMS"
	case dialect.IB:
		return "BIN_FMT(ID, 'B8') AS FIB"
	default:
		return ""
	}
}

var mutationCycle = []fault.Mutation{
	fault.MutDropLastRow,
	fault.MutOffByOne,
	fault.MutNullCell,
	fault.MutDupFirstRow,
	fault.MutEmptyResult,
	fault.MutScaleFloats,
}

// generated builds the 168 template-generated bugs.
func generated() []Bug {
	var bugs []Bug
	mutIdx := 0
	for _, plan := range plans() {
		seq := 0
		sePool := plan.sePool
		nsePool := plan.nsePool
		for _, cg := range plan.combos {
			classes := make([]failClass, 0, cg.count())
			for i := 0; i < cg.heisen; i++ {
				classes = append(classes, fcHeisen)
			}
			for i := 0; i < cg.se; i++ {
				classes = append(classes, sePool[0])
				sePool = sePool[1:]
			}
			for i := 0; i < cg.nse; i++ {
				classes = append(classes, nsePool[0])
				nsePool = nsePool[1:]
			}
			fwLeft := make(map[dialect.ServerName]int, len(cg.fw))
			for s, n := range cg.fw {
				fwLeft[s] = n
			}
			for i, fc := range classes {
				b := buildGenerated(plan.owner, seq, i, fc, cg, fwLeft, &mutIdx)
				bugs = append(bugs, b)
				seq++
			}
		}
		if len(sePool) != 0 || len(nsePool) != 0 {
			panic(fmt.Sprintf("corpus calibration broken for %s: %d SE / %d NSE classes left over",
				plan.owner, len(sePool), len(nsePool)))
		}
		wantGenerated := map[dialect.ServerName]int{
			dialect.IB: 52, dialect.PG: 55, dialect.OR: 17, dialect.MS: 44,
		}
		mustTotal(plan.owner, seq, wantGenerated[plan.owner])
	}
	return bugs
}

// bugNumber renders repository-style identifiers per server.
func bugNumber(owner dialect.ServerName, seq int) string {
	switch owner {
	case dialect.IB:
		return fmt.Sprintf("IB-%d", 210100+seq)
	case dialect.PG:
		return fmt.Sprintf("PG-%d", 101+seq)
	case dialect.OR:
		return fmt.Sprintf("OR-%d", 1060100+seq)
	case dialect.MS:
		return fmt.Sprintf("MS-%d", 50100+seq)
	default:
		return fmt.Sprintf("%s-%d", owner, seq)
	}
}

func buildGenerated(owner dialect.ServerName, seq, comboIdx int, fc failClass,
	cg comboGen, fwLeft map[dialect.ServerName]int, mutIdx *int) Bug {

	id := bugNumber(owner, seq)
	table := fmt.Sprintf("T%s%04d", owner, seq)

	runs := map[dialect.ServerName]bool{owner: true}
	for _, s := range cg.others {
		runs[s] = true
	}

	// Decide exclusion reasons and collect atoms.
	var atoms []string
	expected := map[dialect.ServerName]Expect{}
	for _, s := range dialect.AllServers {
		if runs[s] {
			continue
		}
		if fwLeft[s] > 0 {
			fwLeft[s]--
			atoms = append(atoms, fwAtom(s))
			expected[s] = expectFW()
		} else {
			atoms = append(atoms, cannotAtom(s))
			expected[s] = expectCannot()
		}
	}
	for _, s := range cg.others {
		expected[s] = expectOK()
	}
	expected[owner] = fc.expect()

	script := generatedScript(owner, table, comboIdx%5, atoms, fc == fcOtherNSE)

	bug := Bug{
		ID:       id,
		Server:   owner,
		Title:    generatedTitle(fc, comboIdx%5),
		Script:   script,
		Expected: expected,
		Heisen:   fc == fcHeisen,
	}

	switch fc {
	case fcHeisen:
		bug.Faults = []fault.Fault{{
			BugID:   id,
			Server:  owner,
			Trigger: fault.Trigger{Table: table, Flag: ast.FlagSelect, UnderStressOnly: true},
			Effect:  fault.Effect{Kind: fault.EffectMutateResult, Mutation: fault.MutDropLastRow},
		}}
	case fcPerf:
		bug.Faults = []fault.Fault{{
			BugID:   id,
			Server:  owner,
			Trigger: fault.Trigger{Table: table, Flag: ast.FlagSelect},
			Effect:  fault.Effect{Kind: fault.EffectLatency, LatencyMillis: 5000},
		}}
	case fcCrash:
		bug.Faults = []fault.Fault{{
			BugID:   id,
			Server:  owner,
			Trigger: fault.Trigger{Table: table, Flag: ast.FlagSelect},
			Effect:  fault.Effect{Kind: fault.EffectCrash},
		}}
	case fcIRSE:
		bug.Faults = []fault.Fault{{
			BugID:   id,
			Server:  owner,
			Trigger: fault.Trigger{Table: table, Flag: ast.FlagSelect},
			Effect:  fault.Effect{Kind: fault.EffectError, Message: "internal error: query processor raised a spurious exception"},
		}}
	case fcOtherSE:
		bug.Faults = []fault.Fault{{
			BugID:   id,
			Server:  owner,
			Trigger: fault.Trigger{Table: table, Flag: ast.FlagSelect},
			Effect:  fault.Effect{Kind: fault.EffectAbortConnection, Message: "connection forcibly closed by server"},
		}}
	case fcIRNSE:
		m := mutationCycle[*mutIdx%len(mutationCycle)]
		*mutIdx++
		bug.Faults = []fault.Fault{{
			BugID:   id,
			Server:  owner,
			Trigger: fault.Trigger{Table: table, Flag: ast.FlagSelect},
			Effect:  fault.Effect{Kind: fault.EffectMutateResult, Mutation: m},
		}}
	case fcOtherNSE:
		bug.Faults = []fault.Fault{{
			BugID:   id,
			Server:  owner,
			Trigger: fault.Trigger{Table: table, Flag: ast.FlagInsert},
			Effect:  fault.Effect{Kind: fault.EffectSuppressError},
		}}
	}
	return bug
}

func generatedTitle(fc failClass, variant int) string {
	shape := [...]string{
		"filtered projection", "IN-subquery", "grouped aggregation",
		"self-join", "pattern/range predicate",
	}[variant]
	switch fc {
	case fcHeisen:
		return "sporadic wrong result on " + shape + " (not reproducible when quiet)"
	case fcPerf:
		return "pathological execution time on " + shape
	case fcCrash:
		return "engine crash on " + shape
	case fcIRSE:
		return "spurious error raised on " + shape
	case fcOtherSE:
		return "connection aborted on " + shape
	case fcIRNSE:
		return "silently wrong result on " + shape
	case fcOtherNSE:
		return "invalid statement silently accepted on " + shape
	default:
		return shape
	}
}

// generatedScript produces the reproduction script. Every script creates
// a uniquely named table (the fault's failure region), populates it, and
// ends with exactly one query whose shape varies per bug. The script is
// written in the owner's dialect (MS SQL 7 spells the date type
// DATETIME; the translator maps it for the other servers).
func generatedScript(owner dialect.ServerName, table string, variant int, atoms []string, withDupInsert bool) string {
	dateType := "DATE"
	if owner == dialect.MS {
		dateType = "DATETIME"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "CREATE TABLE %s (ID INT PRIMARY KEY, NAME VARCHAR(30), AMT FLOAT, D %s);\n", table, dateType)
	fmt.Fprintf(&b, "INSERT INTO %s VALUES (1, 'alpha', 10.5, '2001-03-01');\n", table)
	fmt.Fprintf(&b, "INSERT INTO %s VALUES (2, 'beta', 20.25, '2001-03-02');\n", table)
	fmt.Fprintf(&b, "INSERT INTO %s VALUES (3, 'gamma', 7.75, '2001-03-03');\n", table)
	if withDupInsert {
		// Primary-key violation: the oracle rejects it; the buggy server
		// silently accepts (and ignores) it.
		fmt.Fprintf(&b, "INSERT INTO %s VALUES (1, 'dup', 1.5, '2001-03-04');\n", table)
	}
	atomSel := ""
	if len(atoms) > 0 {
		atomSel = ", " + strings.Join(atoms, ", ")
	}
	switch variant {
	case 0:
		fmt.Fprintf(&b, "SELECT ID, NAME, AMT%s FROM %s WHERE AMT > 8 ORDER BY ID;", atomSel, table)
	case 1:
		fmt.Fprintf(&b, "SELECT NAME, AMT%s FROM %s WHERE ID IN (SELECT ID FROM %s WHERE AMT > 8) ORDER BY NAME;",
			atomSel, table, table)
	case 2:
		fmt.Fprintf(&b, "SELECT NAME, COUNT(*) AS N, SUM(AMT) AS TOTAL%s FROM %s GROUP BY NAME ORDER BY NAME;",
			atomSel, table)
	case 3:
		fmt.Fprintf(&b, "SELECT A.NAME, B.AMT%s FROM %s A INNER JOIN %s B ON A.ID = B.ID ORDER BY A.NAME;",
			replaceRefs(atomSel, "A"), table, table)
	default:
		fmt.Fprintf(&b, "SELECT ID, NAME%s FROM %s WHERE NAME LIKE 'a%%' OR AMT BETWEEN 5 AND 15 ORDER BY ID;",
			atomSel, table)
	}
	return b.String()
}

// replaceRefs qualifies the atom column references for the join variant.
func replaceRefs(atomSel, alias string) string {
	s := atomSel
	for _, col := range []string{"NAME", "AMT", "ID", "D"} {
		s = strings.ReplaceAll(s, "("+col, "("+alias+"."+col)
		s = strings.ReplaceAll(s, " "+col+",", " "+alias+"."+col+",")
	}
	return s
}
