package corpus

import (
	"divsql/internal/core"
	"divsql/internal/dialect"
	"divsql/internal/fault"
	"divsql/internal/sql/ast"
)

// handmade returns the 13 cross-server bugs of the paper's Table 4,
// modelled on the descriptions in Section 5. Their failures are realized
// by the engine quirks installed in the dialects (internal/dialect) plus,
// for the five clustered-index bugs, per-bug fault injections on MS.
func handmade() []Bug {
	return []Bug{
		{
			ID:     "IB-223512",
			Server: dialect.IB,
			Title:  "DROP TABLE incorrectly allowed to drop a view (SQL-92 violation)",
			Script: `
CREATE TABLE T223512 (A INTEGER);
INSERT INTO T223512 VALUES (1);
INSERT INTO T223512 VALUES (2);
CREATE VIEW V223512 AS SELECT A FROM T223512 WHERE A > 1;
DROP TABLE V223512;
CREATE VIEW V223512 AS SELECT A FROM T223512;
SELECT A FROM V223512 ORDER BY A;`,
			Expected: map[dialect.ServerName]Expect{
				dialect.IB: expectFail(core.IncorrectResult, false),
				dialect.PG: expectFail(core.IncorrectResult, false), // identical: non-detectable
				dialect.OR: expectOK(),
				dialect.MS: expectOK(),
			},
		},
		{
			ID:     "IB-217042",
			Server: dialect.IB,
			Title:  "DEFAULT values not validated against the column type at CREATE TABLE",
			Script: `
CREATE TABLE T217042 (A INTEGER DEFAULT 'ABC', B INTEGER);
INSERT INTO T217042 (B) VALUES (1);
SELECT A, B FROM T217042;`,
			Expected: map[dialect.ServerName]Expect{
				dialect.IB: expectFail(core.IncorrectResult, false),
				dialect.PG: expectOK(),
				dialect.OR: expectOK(),
				dialect.MS: expectFail(core.IncorrectResult, false), // identical: non-detectable
			},
		},
		{
			ID:     "IB-222476",
			Server: dialect.IB,
			Title:  "empty field names returned for unaliased AVG and SUM",
			Script: `
CREATE TABLE T222476 (A INTEGER);
INSERT INTO T222476 VALUES (2);
INSERT INTO T222476 VALUES (4);
SELECT AVG(A), SUM(A) FROM T222476;`,
			Expected: map[dialect.ServerName]Expect{
				dialect.IB: expectFail(core.IncorrectResult, false),
				dialect.PG: expectOK(),
				dialect.OR: expectOK(),
				dialect.MS: expectFail(core.IncorrectResult, true), // MS raises an error: detectable
			},
		},
		{
			ID:     "MS-58544",
			Server: dialect.MS,
			Title:  "LEFT OUTER JOIN on a view defined with DISTINCT returns duplicate rows",
			Script: `
CREATE TABLE T58544A (ID INT, TAG VARCHAR(20));
CREATE TABLE T58544B (ID INT);
INSERT INTO T58544A VALUES (1, 'x');
INSERT INTO T58544B VALUES (1);
INSERT INTO T58544B VALUES (1);
CREATE VIEW V58544 AS SELECT DISTINCT ID FROM T58544B;
SELECT A.ID, GEN_UUID(A.TAG) AS U FROM T58544A A LEFT OUTER JOIN V58544 V ON A.ID = V.ID;`,
			Expected: map[dialect.ServerName]Expect{
				dialect.MS: expectFail(core.IncorrectResult, false),
				dialect.IB: expectFail(core.IncorrectResult, false), // identical: non-detectable
				dialect.OR: expectOK(),
				dialect.PG: expectCannot(), // GEN_UUID missing on PG 7.0
			},
		},
		{
			ID:     "PG-43",
			Server: dialect.PG,
			Title:  "complex SELECT with nested NOT IN over parenthesized UNION subqueries",
			Script: `
CREATE TABLE PRODUCT43 (ID INT, NAME VARCHAR(30), PRICE FLOAT);
CREATE TABLE PRODSPECIAL43 (PRODUCT_ID INT, PRICE FLOAT, START_DATE DATE, END_DATE DATE);
INSERT INTO PRODUCT43 VALUES (1, 'keyboard', 10);
INSERT INTO PRODUCT43 VALUES (2, 'monitor', 45);
INSERT INTO PRODUCT43 VALUES (3, 'cable', 5);
INSERT INTO PRODSPECIAL43 VALUES (2, 39, '2000-09-01', '2000-09-30');
SELECT P.ID AS ID, P.NAME AS NAME FROM PRODUCT43 P WHERE P.ID IN
 (SELECT ID FROM PRODUCT43 WHERE PRICE >= '9.00' AND PRICE <= '50' AND ID NOT IN
   ((SELECT PRODUCT_ID FROM PRODSPECIAL43 WHERE START_DATE <= '2000-9-6' AND END_DATE >= '2000-9-6')
    UNION
    (SELECT PRODUCT_ID FROM PRODSPECIAL43 WHERE PRICE >= '9.00' AND PRICE <= '50' AND START_DATE <= '2000-9-6' AND END_DATE >= '2000-9-6')));`,
			Expected: map[dialect.ServerName]Expect{
				dialect.PG: expectFail(core.IncorrectResult, true), // parse error
				dialect.MS: expectFail(core.IncorrectResult, true), // incorrect parse tree surfaces an error
				dialect.IB: expectOK(),
				dialect.OR: expectOK(),
			},
		},
		{
			ID:     "PG-77",
			Server: dialect.PG,
			Title:  "arithmetic precision loss in floating-point multiplication",
			Script: `
CREATE TABLE T77 (N FLOAT, D1 DATE, D2 DATE);
INSERT INTO T77 VALUES (1.00000007, '2000-01-10', '2000-01-01');
SELECT N * 16777216.0 AS PRECISE, DATEDIFF(D1, D2) AS DD FROM T77;`,
			Expected: map[dialect.ServerName]Expect{
				dialect.PG: expectFail(core.IncorrectResult, false),
				dialect.MS: expectFail(core.IncorrectResult, false), // identical: non-detectable
				dialect.OR: expectOK(),
				dialect.IB: expectCannot(), // DATEDIFF missing on IB 6
			},
		},
		{
			ID:     "OR-1059835",
			Server: dialect.OR,
			Title:  "MOD returns a wrong result for negative dividends",
			Script: `
CREATE TABLE T1059835 (A NUMBER, D1 DATE, S VARCHAR2(10));
INSERT INTO T1059835 VALUES (-7, '2001-02-02', 'x');
SELECT MOD(A, 3) AS M, DATEDIFF(D1, '2001-01-31') AS DD, LPAD(S, 3) AS PADDED FROM T1059835;`,
			Expected: map[dialect.ServerName]Expect{
				dialect.OR: expectFail(core.IncorrectResult, false),
				dialect.PG: expectFail(core.IncorrectResult, false), // different wrong result: detectable
				dialect.IB: expectCannot(),                          // DATEDIFF missing
				dialect.MS: expectCannot(),                          // LPAD missing
			},
		},
		clusteredBug("MS-54428", "incorrect PRIMARY KEY constraint failure on clustered table",
			fault.Effect{Kind: fault.EffectError, Message: "INSERT failed: PRIMARY KEY constraint violated (no duplicate present)"},
			ast.FlagInsert, core.IncorrectResult, true),
		clusteredBug("MS-56516", "wrong error raised querying a clustered table",
			fault.Effect{Kind: fault.EffectError, Message: "internal query processor error on clustered index scan"},
			ast.FlagSelect, core.IncorrectResult, true),
		clusteredBug("MS-58158", "row silently missing from clustered index scan",
			fault.Effect{Kind: fault.EffectMutateResult, Mutation: fault.MutDropLastRow},
			ast.FlagSelect, core.IncorrectResult, false),
		clusteredBug("MS-58253", "off-by-one key returned from clustered index scan",
			fault.Effect{Kind: fault.EffectMutateResult, Mutation: fault.MutOffByOne},
			ast.FlagSelect, core.IncorrectResult, false),
		clusteredBug("MS-351180", "NULL returned instead of key value from clustered index",
			fault.Effect{Kind: fault.EffectMutateResult, Mutation: fault.MutNullCell},
			ast.FlagSelect, core.IncorrectResult, false),
		{
			ID:     "MS-56775",
			Server: dialect.MS,
			Title:  "sporadic wrong results from clustered table (not reproducible on a quiet server)",
			Script: clusteredScript("T56775"),
			Heisen: true,
			Faults: []fault.Fault{{
				BugID:   "MS-56775",
				Server:  dialect.MS,
				Trigger: fault.Trigger{Table: "T56775", Flag: ast.FlagSelect, UnderStressOnly: true},
				Effect:  fault.Effect{Kind: fault.EffectMutateResult, Mutation: fault.MutDropLastRow},
			}},
			Expected: map[dialect.ServerName]Expect{
				dialect.MS: expectOK(),                             // Heisenbug: no failure when quiet
				dialect.PG: expectFail(core.IncorrectResult, true), // clustered-index defect
				dialect.IB: expectCannot(),
				dialect.OR: expectCannot(),
			},
		},
	}
}

// clusteredScript builds the common script shape of the five MSSQL
// clustered-index bugs (plus 56775): create, cluster, populate, query.
func clusteredScript(table string) string {
	return `
CREATE TABLE ` + table + ` (ID INT PRIMARY KEY, V VARCHAR(20));
CREATE CLUSTERED INDEX IX` + table + ` ON ` + table + ` (ID);
INSERT INTO ` + table + ` VALUES (1, 'first');
INSERT INTO ` + table + ` VALUES (2, 'second');
INSERT INTO ` + table + ` VALUES (3, 'third');
SELECT ID, V FROM ` + table + ` ORDER BY ID;`
}

// clusteredBug builds one of the five MSSQL bugs whose scripts also fail
// in PostgreSQL — "at the beginning of the bug script", when the
// clustered index is created (the pre-7.0.3 PG defect).
func clusteredBug(id, title string, effect fault.Effect, flag ast.Flag, msType core.FailureType, msSelfEvident bool) Bug {
	table := "T" + id[3:]
	return Bug{
		ID:     id,
		Server: dialect.MS,
		Title:  title,
		Script: clusteredScript(table),
		Faults: []fault.Fault{{
			BugID:   id,
			Server:  dialect.MS,
			Trigger: fault.Trigger{Table: table, Flag: flag},
			Effect:  effect,
		}},
		Expected: map[dialect.ServerName]Expect{
			dialect.MS: expectFail(msType, msSelfEvident),
			dialect.PG: expectFail(core.IncorrectResult, true), // fails at CREATE CLUSTERED INDEX
			dialect.IB: expectCannot(),
			dialect.OR: expectCannot(),
		},
	}
}
