package corpus

import (
	"fmt"

	"divsql/internal/core"
	"divsql/internal/dialect"
	"divsql/internal/fault"
)

// Reason says why a script does not run on a server.
type Reason int

// Non-run reasons (Table 1's first two data rows).
const (
	// ReasonCannotRun marks dialect-specific functionality.
	ReasonCannotRun Reason = iota + 1
	// ReasonFurtherWork marks constructs with no automatic translation.
	ReasonFurtherWork
)

// Expect is the expected classification of one (bug, server) run; used
// by tests to validate the measured study against the calibration.
type Expect struct {
	Status      core.RunStatus
	Type        core.FailureType
	SelfEvident bool
}

// Bug is one bug report of the corpus.
type Bug struct {
	// ID is the repository identifier (the paper's IDs for the 13
	// cross-server bugs, synthetic repository numbers otherwise).
	ID string
	// Server is the server the bug was reported for.
	Server dialect.ServerName
	// Title is a one-line description.
	Title string
	// Script is the reproduction script in the reporting server's
	// dialect.
	Script string
	// Expected maps every server to the calibrated expectation.
	Expected map[dialect.ServerName]Expect
	// Faults are the injected faults realizing the bug (empty for bugs
	// realized purely by engine quirks).
	Faults []fault.Fault
	// Heisen marks bugs that do not fail on their own server in a quiet
	// environment.
	Heisen bool
}

// RunsOn reports whether the bug script is expected to run on the server.
func (b *Bug) RunsOn(s dialect.ServerName) bool {
	e, ok := b.Expected[s]
	return ok && (e.Status == core.StatusFailure || e.Status == core.StatusNoFailure)
}

// All returns the full 181-bug corpus in deterministic order.
func All() []Bug {
	var bugs []Bug
	bugs = append(bugs, handmade()...)
	bugs = append(bugs, generated()...)
	return bugs
}

// AllFaults collects every injected fault of the corpus (ready for
// server construction).
func AllFaults() []fault.Fault {
	var fs []fault.Fault
	for _, b := range All() {
		fs = append(fs, b.Faults...)
	}
	return fs
}

// ByServer returns the bugs reported for one server.
func ByServer(bugs []Bug, s dialect.ServerName) []Bug {
	var out []Bug
	for _, b := range bugs {
		if b.Server == s {
			out = append(out, b)
		}
	}
	return out
}

// expectFail builds a failure expectation.
func expectFail(t core.FailureType, selfEvident bool) Expect {
	return Expect{Status: core.StatusFailure, Type: t, SelfEvident: selfEvident}
}

// expectOK is the "ran, no failure" expectation.
func expectOK() Expect { return Expect{Status: core.StatusNoFailure} }

// expectCannot is the "functionality missing" expectation.
func expectCannot() Expect { return Expect{Status: core.StatusCannotRun} }

// expectFW is the "further work" expectation.
func expectFW() Expect { return Expect{Status: core.StatusFurtherWork} }

// sanity guards for the generator: the combination totals must add up to
// the corpus sizes. Checked by tests as well.
func mustTotal(server dialect.ServerName, got, want int) {
	if got != want {
		panic(fmt.Sprintf("corpus calibration broken for %s: %d bugs, want %d", server, got, want))
	}
}
