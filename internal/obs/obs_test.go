package obs

import (
	"io"
	"math"
	"net/http/httptest"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func testRegistry() *Registry {
	reg := NewRegistry()

	var reqs Counter
	reqs.Add(42)
	var open Gauge
	open.Set(3)
	h := NewHistogram(time.Millisecond, 10*time.Millisecond, 100*time.Millisecond)
	h.Observe(500 * time.Microsecond)
	h.Observe(2 * time.Millisecond)
	h.Observe(2 * time.Millisecond)
	h.Observe(50 * time.Millisecond)
	h.Observe(5 * time.Second) // +Inf overflow

	reg.Register(NewCollector("demo", func(f *Feed) {
		f.Count("divsql_demo_requests_total", "Requests served.", reqs.Value(),
			L("frame", "EXEC"))
		f.Count("divsql_demo_requests_total", "Requests served.", 7,
			L("frame", "PING"))
		f.Gauge("divsql_demo_open_connections", "Open connections.", float64(open.Value()))
		f.Gauge("divsql_demo_hit_rate", "Cache hit rate.", 0.756)
		f.Histo("divsql_demo_latency_seconds", "Request latency.", h,
			L("frame", `we"ird\label`))
	}))
	reg.Register(ProcessCollector())
	return reg
}

// TestExpositionRoundtrip is the format-validity gate: it parses the
// rendered document line by line and asserts every family has # HELP
// and # TYPE before its samples, every metric/label name matches
// [a-zA-Z_:][a-zA-Z0-9_:]*, and every histogram's buckets are
// cumulative (non-decreasing) and end in le="+Inf" equal to _count.
func TestExpositionRoundtrip(t *testing.T) {
	doc := testRegistry().Render()
	checkExposition(t, doc)

	// Spot checks on the concrete rendering.
	for _, want := range []string{
		`divsql_demo_requests_total{frame="EXEC"} 42`,
		`divsql_demo_requests_total{frame="PING"} 7`,
		"divsql_demo_open_connections 3",
		"divsql_demo_hit_rate 0.756",
		`le="+Inf"`,
		`we\"ird\\label`,
	} {
		if !strings.Contains(doc, want) {
			t.Errorf("rendered document missing %q\n%s", want, doc)
		}
	}
}

var (
	nameRE  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelRE = regexp.MustCompile(`([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"`)
)

type parsedSample struct {
	name   string
	labels string
	value  float64
}

// checkExposition is a minimal exposition-format parser used as a
// validity oracle for Render output.
func checkExposition(t *testing.T, doc string) []parsedSample {
	t.Helper()
	if !strings.HasSuffix(doc, "\n") {
		t.Fatalf("document must end in a newline")
	}

	helped := map[string]bool{}
	typed := map[string]Kind{}
	var samples []parsedSample

	for _, line := range strings.Split(strings.TrimRight(doc, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.TrimPrefix(line, "# HELP ")
			name, _, ok := strings.Cut(rest, " ")
			if !ok || !nameRE.MatchString(name) {
				t.Fatalf("bad HELP line: %q", line)
			}
			if helped[name] {
				t.Fatalf("duplicate HELP for %s", name)
			}
			helped[name] = true
		case strings.HasPrefix(line, "# TYPE "):
			rest := strings.TrimPrefix(line, "# TYPE ")
			parts := strings.Fields(rest)
			if len(parts) != 2 || !nameRE.MatchString(parts[0]) {
				t.Fatalf("bad TYPE line: %q", line)
			}
			switch Kind(parts[1]) {
			case KindCounter, KindGauge, KindHistogram:
			default:
				t.Fatalf("unknown type in %q", line)
			}
			if !helped[parts[0]] {
				t.Fatalf("TYPE before HELP for %s", parts[0])
			}
			if _, dup := typed[parts[0]]; dup {
				t.Fatalf("duplicate TYPE for %s", parts[0])
			}
			typed[parts[0]] = Kind(parts[1])
		case strings.HasPrefix(line, "#"):
			t.Fatalf("unexpected comment line %q", line)
		default:
			name := line
			labels := ""
			if i := strings.IndexByte(line, '{'); i >= 0 {
				j := strings.LastIndexByte(line, '}')
				if j < i {
					t.Fatalf("unbalanced braces in %q", line)
				}
				name, labels = line[:i], line[i+1:j]
				line = line[:i] + line[j+1:]
				for _, m := range labelRE.FindAllStringSubmatch(labels, -1) {
					if !nameRE.MatchString(m[1]) {
						t.Fatalf("bad label name %q in %q", m[1], labels)
					}
				}
			} else {
				name = strings.Fields(line)[0]
			}
			if !nameRE.MatchString(name) {
				t.Fatalf("bad metric name %q", name)
			}
			fam := name
			for _, suf := range []string{"_bucket", "_sum", "_count"} {
				if typed[strings.TrimSuffix(name, suf)] == KindHistogram {
					fam = strings.TrimSuffix(name, suf)
				}
			}
			if _, ok := typed[fam]; !ok {
				t.Fatalf("sample %q has no preceding TYPE", name)
			}
			fields := strings.Fields(strings.Replace(line, name, "", 1))
			if len(fields) != 1 {
				t.Fatalf("sample line %q: want exactly one value", line)
			}
			v, err := parseValue(fields[0])
			if err != nil {
				t.Fatalf("sample line %q: bad value: %v", line, err)
			}
			samples = append(samples, parsedSample{name: name, labels: labels, value: v})
		}
	}

	checkHistograms(t, typed, samples)
	return samples
}

func parseValue(s string) (float64, error) {
	if s == "+Inf" {
		return math.Inf(1), nil
	}
	return strconv.ParseFloat(s, 64)
}

// checkHistograms verifies, per histogram family and label set, that
// bucket values are cumulative (non-decreasing in le order), the last
// bucket is le="+Inf", and its value equals _count.
func checkHistograms(t *testing.T, typed map[string]Kind, samples []parsedSample) {
	t.Helper()
	type series struct {
		buckets map[float64]float64 // le -> cumulative count
		count   float64
		hasInf  bool
	}
	bySeries := map[string]*series{}

	stripLE := func(labels string) (rest string, le float64, ok bool) {
		var kept []string
		for _, m := range labelRE.FindAllStringSubmatch(labels, -1) {
			if m[1] == "le" {
				v, err := parseValue(m[2])
				if err != nil {
					t.Fatalf("bad le value %q", m[2])
				}
				le, ok = v, true
				continue
			}
			kept = append(kept, m[0])
		}
		return strings.Join(kept, ","), le, ok
	}

	get := func(fam, labels string) *series {
		key := fam + "|" + labels
		s, okay := bySeries[key]
		if !okay {
			s = &series{buckets: map[float64]float64{}}
			bySeries[key] = s
		}
		return s
	}

	for _, s := range samples {
		for fam, kind := range typed {
			if kind != KindHistogram {
				continue
			}
			switch s.name {
			case fam + "_bucket":
				rest, le, ok := stripLE(s.labels)
				if !ok {
					t.Fatalf("bucket sample without le label: %+v", s)
				}
				sr := get(fam, rest)
				sr.buckets[le] = s.value
				if math.IsInf(le, 1) {
					sr.hasInf = true
				}
			case fam + "_count":
				get(fam, s.labels).count = s.value
			}
		}
	}

	if len(bySeries) == 0 {
		t.Fatalf("no histogram series found")
	}
	for key, sr := range bySeries {
		if !sr.hasInf {
			t.Errorf("histogram %s: no +Inf bucket", key)
		}
		les := make([]float64, 0, len(sr.buckets))
		for le := range sr.buckets {
			les = append(les, le)
		}
		sort.Float64s(les)
		prev := -1.0
		for _, le := range les {
			if sr.buckets[le] < prev {
				t.Errorf("histogram %s: bucket le=%v not cumulative (%v < %v)",
					key, le, sr.buckets[le], prev)
			}
			prev = sr.buckets[le]
		}
		if inf := sr.buckets[math.Inf(1)]; inf != sr.count {
			t.Errorf("histogram %s: +Inf bucket %v != _count %v", key, inf, sr.count)
		}
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(time.Millisecond, 10*time.Millisecond)
	h.Observe(time.Millisecond) // boundary goes in its bucket (le is <=)
	h.Observe(5 * time.Millisecond)
	h.Observe(time.Minute)
	h.Observe(-time.Second) // clamped to 0, lands in first bucket
	bounds, counts, count, sum := h.snapshot()
	if count != 4 {
		t.Fatalf("count = %d, want 4", count)
	}
	if want := []uint64{2, 1, 1}; len(counts) != 3 || counts[0] != want[0] || counts[1] != want[1] || counts[2] != want[2] {
		t.Fatalf("counts = %v, want %v", counts, want)
	}
	if bounds[0] != 0.001 || bounds[1] != 0.01 {
		t.Fatalf("bounds = %v", bounds)
	}
	if want := (time.Millisecond + 5*time.Millisecond + time.Minute).Seconds(); sum != want {
		t.Fatalf("sum = %v, want %v", sum, want)
	}
}

func TestInvalidNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on invalid metric name")
		}
	}()
	f := newFeed()
	f.Count("9starts_with_digit", "", 1)
}

func TestValidName(t *testing.T) {
	for name, want := range map[string]bool{
		"divsql_wire_requests_total": true,
		"a:b":                        true,
		"_leading":                   true,
		"":                           false,
		"9x":                         false,
		"has-dash":                   false,
		"has space":                  false,
	} {
		if got := ValidName(name); got != want {
			t.Errorf("ValidName(%q) = %v, want %v", name, got, want)
		}
	}
}

func TestHandler(t *testing.T) {
	srv := httptest.NewServer(testRegistry().Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("Content-Type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	checkExposition(t, string(body))
}

func TestConcurrentObserve(t *testing.T) {
	h := NewHistogram(DefBuckets()...)
	var c Counter
	var g Gauge
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				h.Observe(time.Duration(j) * time.Microsecond)
				c.Inc()
				g.Add(1)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 || c.Value() != 8000 || g.Value() != 0 {
		t.Fatalf("count=%d counter=%d gauge=%d", h.Count(), c.Value(), g.Value())
	}
}
