// Package obs is divsql's metrics subsystem: a dependency-free registry
// of counters, gauges and fixed-bucket histograms that renders the
// Prometheus text exposition format.
//
// The layout follows the collector-per-subsystem pattern of production
// exporters (wmi_exporter's mssql_* collectors): each subsystem —
// middleware adjudication, engine, wire protocol, difftest hunts —
// implements one Collector that contributes its metric families to a
// shared Registry at scrape time. Subsystems that need hot-path
// recording (wire latency, resync durations) hold live instruments
// (Counter, Gauge, Histogram — all atomic, allocation-free to record);
// subsystems that already keep their own counters (middleware.Metrics,
// plan.CacheStats) just read them out in Collect.
//
// Metric naming convention: divsql_<subsystem>_<name>, with the usual
// Prometheus suffixes (_total for counters, _seconds for durations).
// Family names must match [a-zA-Z_:][a-zA-Z0-9_:]* — Feed.add panics on
// violations, so a bad name fails the first scrape in tests rather than
// producing an unscrapable endpoint in production.
package obs

import (
	"fmt"
	"math"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ---------------------------------------------------------------------------
// Instruments

// Counter is a monotonically increasing counter, safe for concurrent
// use. The zero value is ready.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down, safe for concurrent use.
// The zero value is ready.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds n (negative to subtract).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket duration histogram. Observe is one atomic
// add on the bucket plus two on the aggregates — cheap enough for
// per-statement hot paths. Bucket counts are stored per-bucket and
// cumulated only at render time (the exposition format's `le` buckets
// are cumulative and end in +Inf).
type Histogram struct {
	bounds []time.Duration // ascending upper bounds; +Inf is implicit
	counts []atomic.Uint64 // len(bounds)+1; last slot is the +Inf overflow
	count  atomic.Uint64
	sumNs  atomic.Int64
}

// NewHistogram returns a histogram over the given ascending upper
// bounds. An empty bound list yields a single +Inf bucket (count/sum
// only).
func NewHistogram(bounds ...time.Duration) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not ascending: %v", bounds))
		}
	}
	return &Histogram{
		bounds: bounds,
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// DefBuckets are the default wire-latency bounds: the simulated servers'
// BaseLatency is 1ms, adjudicated statements wait for the slowest
// replica, and fault-injected latency outliers reach seconds.
func DefBuckets() []time.Duration {
	return []time.Duration{
		250 * time.Microsecond, 500 * time.Microsecond,
		time.Millisecond, 2500 * time.Microsecond, 5 * time.Millisecond,
		10 * time.Millisecond, 25 * time.Millisecond, 50 * time.Millisecond,
		100 * time.Millisecond, 250 * time.Millisecond, 500 * time.Millisecond,
		time.Second, 2500 * time.Millisecond,
	}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.count.Add(1)
	h.sumNs.Add(int64(d))
	for i, b := range h.bounds {
		if d <= b {
			h.counts[i].Add(1)
			return
		}
	}
	h.counts[len(h.bounds)].Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// snapshot reads the histogram into exposition form (bounds in seconds,
// per-bucket counts not yet cumulated).
func (h *Histogram) snapshot() (bounds []float64, counts []uint64, count uint64, sum float64) {
	bounds = make([]float64, len(h.bounds))
	for i, b := range h.bounds {
		bounds[i] = b.Seconds()
	}
	counts = make([]uint64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return bounds, counts, h.count.Load(), time.Duration(h.sumNs.Load()).Seconds()
}

// ---------------------------------------------------------------------------
// Families

// Kind is a metric family's exposition type.
type Kind string

// Family kinds.
const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// Label is one name=value pair of a sample.
type Label struct{ Name, Value string }

// L is shorthand for constructing a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// sample is one rendered series of a counter/gauge family.
type sample struct {
	labels []Label
	value  float64
}

// histSample is one rendered series of a histogram family.
type histSample struct {
	labels []Label
	bounds []float64 // seconds
	counts []uint64  // per-bucket (not cumulative); len(bounds)+1
	count  uint64
	sum    float64
}

// Family is one metric family: a name, help text, a kind and its
// samples.
type Family struct {
	Name string
	Help string
	Kind Kind

	samples []sample
	hists   []histSample
}

// Collector contributes one subsystem's metric families to a scrape.
// Collect must be safe for concurrent use (a scrape can race the
// subsystem's own execution).
type Collector interface {
	// Name identifies the collector (the <subsystem> of its families).
	Name() string
	// Collect appends the subsystem's current families to the feed.
	Collect(f *Feed)
}

// Labeled wraps a collector so that every sample it contributes carries
// the extra labels. This is how N instances of one subsystem (the
// shards of a sharded deployment, each with its own middleware and
// replica collectors) share metric families without series collisions:
// each instance's collector is wrapped with a distinguishing label
// (e.g. shard="2") and the same-named families merge in the feed.
func Labeled(c Collector, extra ...Label) Collector {
	if len(extra) == 0 {
		return c
	}
	name := c.Name()
	for _, l := range extra {
		name += ":" + l.Value
	}
	return NewCollector(name, func(f *Feed) {
		inner := newFeed()
		c.Collect(inner)
		for _, famName := range inner.order {
			fam := inner.byN[famName]
			out := f.family(famName, fam.Help, fam.Kind)
			for _, s := range fam.samples {
				s.labels = append(append([]Label(nil), s.labels...), extra...)
				out.samples = append(out.samples, s)
			}
			for _, h := range fam.hists {
				h.labels = append(append([]Label(nil), h.labels...), extra...)
				out.hists = append(out.hists, h)
			}
		}
	})
}

// collectorFunc adapts a function to the Collector interface.
type collectorFunc struct {
	name string
	fn   func(*Feed)
}

func (c collectorFunc) Name() string    { return c.name }
func (c collectorFunc) Collect(f *Feed) { c.fn(f) }

// NewCollector wraps a collect function as a named Collector.
func NewCollector(name string, fn func(*Feed)) Collector {
	return collectorFunc{name: name, fn: fn}
}

// Feed accumulates metric families during one scrape. Samples added
// under the same family name are merged into one family (first help and
// kind win), so collectors with per-replica labels can contribute series
// to a shared family.
type Feed struct {
	order []string
	byN   map[string]*Family
}

// newFeed returns an empty feed.
func newFeed() *Feed { return &Feed{byN: make(map[string]*Family)} }

// family returns (creating if needed) the named family.
func (f *Feed) family(name, help string, kind Kind) *Family {
	if !ValidName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	fam, ok := f.byN[name]
	if !ok {
		fam = &Family{Name: name, Help: help, Kind: kind}
		f.byN[name] = fam
		f.order = append(f.order, name)
	}
	return fam
}

// Count adds one counter sample.
func (f *Feed) Count(name, help string, v uint64, labels ...Label) {
	fam := f.family(name, help, KindCounter)
	fam.samples = append(fam.samples, sample{labels: labels, value: float64(v)})
}

// Gauge adds one gauge sample.
func (f *Feed) Gauge(name, help string, v float64, labels ...Label) {
	fam := f.family(name, help, KindGauge)
	fam.samples = append(fam.samples, sample{labels: labels, value: v})
}

// Histo adds one histogram sample from a live Histogram instrument.
func (f *Feed) Histo(name, help string, h *Histogram, labels ...Label) {
	fam := f.family(name, help, KindHistogram)
	bounds, counts, count, sum := h.snapshot()
	fam.hists = append(fam.hists, histSample{
		labels: labels, bounds: bounds, counts: counts, count: count, sum: sum,
	})
}

// ValidName reports whether name is a legal metric or label name
// ([a-zA-Z_:][a-zA-Z0-9_:]*; labels additionally must not use ':', which
// this check does not enforce — the package only generates plain label
// names).
func ValidName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// ---------------------------------------------------------------------------
// Registry

// Registry is an ordered set of collectors; Render scrapes them all into
// one exposition document.
type Registry struct {
	mu         sync.Mutex
	collectors []Collector
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Register appends collectors to the scrape order. Nil collectors are
// skipped.
func (r *Registry) Register(cs ...Collector) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range cs {
		if c != nil {
			r.collectors = append(r.collectors, c)
		}
	}
}

// Gather runs every collector and returns the merged families in
// first-contribution order.
func (r *Registry) Gather() []*Family {
	r.mu.Lock()
	cs := append([]Collector(nil), r.collectors...)
	r.mu.Unlock()
	f := newFeed()
	for _, c := range cs {
		c.Collect(f)
	}
	fams := make([]*Family, 0, len(f.order))
	for _, n := range f.order {
		fams = append(fams, f.byN[n])
	}
	return fams
}

// Render scrapes all collectors and renders the Prometheus text
// exposition format (version 0.0.4).
func (r *Registry) Render() string {
	var b strings.Builder
	for _, fam := range r.Gather() {
		renderFamily(&b, fam)
	}
	return b.String()
}

// Handler returns an http.Handler serving the rendered exposition at
// any path (mount it at /metrics).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = w.Write([]byte(r.Render()))
	})
}

func renderFamily(b *strings.Builder, fam *Family) {
	fmt.Fprintf(b, "# HELP %s %s\n", fam.Name, escapeHelp(fam.Help))
	fmt.Fprintf(b, "# TYPE %s %s\n", fam.Name, fam.Kind)
	for _, s := range fam.samples {
		fmt.Fprintf(b, "%s%s %s\n", fam.Name, renderLabels(s.labels), fmtFloat(s.value))
	}
	for _, h := range fam.hists {
		cum := uint64(0)
		for i, bound := range h.bounds {
			cum += h.counts[i]
			fmt.Fprintf(b, "%s_bucket%s %d\n",
				fam.Name, renderLabels(h.labels, L("le", fmtFloat(bound))), cum)
		}
		// The +Inf bucket equals the total count by construction.
		fmt.Fprintf(b, "%s_bucket%s %d\n",
			fam.Name, renderLabels(h.labels, L("le", "+Inf")), h.count)
		fmt.Fprintf(b, "%s_sum%s %s\n", fam.Name, renderLabels(h.labels), fmtFloat(h.sum))
		fmt.Fprintf(b, "%s_count%s %d\n", fam.Name, renderLabels(h.labels), h.count)
	}
}

// renderLabels renders a label set as {a="b",c="d"} (empty string for no
// labels), with label values escaped per the exposition format.
func renderLabels(labels []Label, extra ...Label) string {
	all := make([]Label, 0, len(labels)+len(extra))
	all = append(all, labels...)
	all = append(all, extra...)
	if len(all) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

func escapeLabel(v string) string { return labelEscaper.Replace(v) }
func escapeHelp(v string) string  { return helpEscaper.Replace(v) }

// fmtFloat renders a sample value: integral values without an exponent
// or trailing zeros, everything else in Go's shortest form.
func fmtFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// ---------------------------------------------------------------------------
// Process collector

// ProcessCollector reports process-level basics: start time, uptime and
// live goroutines.
func ProcessCollector() Collector {
	start := time.Now()
	return NewCollector("process", func(f *Feed) {
		f.Gauge("divsql_process_start_time_seconds",
			"Unix time the process started.", float64(start.Unix()))
		f.Gauge("divsql_process_uptime_seconds",
			"Seconds since the process started.", time.Since(start).Seconds())
		f.Gauge("divsql_process_goroutines",
			"Live goroutines.", float64(runtime.NumGoroutine()))
	})
}

// Sort orders a label-keyed map's keys deterministically (helper for
// collectors iterating maps into labeled series).
func Sort[K ~string](m map[K]int) []K {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}
