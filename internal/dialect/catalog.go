package dialect

import (
	"fmt"
	"strconv"
	"strings"

	"divsql/internal/engine"
	"divsql/internal/sql/types"
)

// FuncSpec describes one function across the four dialects.
type FuncSpec struct {
	// Canonical is the implementation key (an engine builtin or an
	// extension builtin defined in this package).
	Canonical string
	// Names gives the dialect spelling per server; a missing entry means
	// the server does not offer the function at all (translating a script
	// that uses it into that dialect yields "functionality missing").
	Names map[ServerName]string
	// NoAutoTranslate lists target servers that do support the construct
	// but for which the translator has no automatic rule — the paper's
	// "further work" category. This models constructs (vendor format
	// strings, legacy syntaxes) whose port needs manual rewriting.
	NoAutoTranslate map[ServerName]bool
	// SeqFunc marks sequence-advancing functions.
	SeqFunc bool
}

// TypeSpec describes one column type across the four dialects.
type TypeSpec struct {
	Canonical string
	Kind      types.Kind
	// Names lists accepted spellings per server; the first is the
	// preferred spelling used when translating into that dialect.
	Names map[ServerName][]string
}

func allFour(n string) map[ServerName]string {
	return map[ServerName]string{IB: n, PG: n, OR: n, MS: n}
}

// funcCatalog is built once; the catalogue is immutable at runtime.
var funcCatalog = buildFuncCatalog()

// FuncCatalog returns the cross-dialect function catalogue.
func FuncCatalog() []*FuncSpec { return funcCatalog }

func buildFuncCatalog() []*FuncSpec {
	return []*FuncSpec{
		// --- Portable core (same spelling everywhere) -------------------
		{Canonical: "UPPER", Names: allFour("UPPER")},
		{Canonical: "LOWER", Names: allFour("LOWER")},
		{Canonical: "TRIM", Names: allFour("TRIM")},
		{Canonical: "ABS", Names: allFour("ABS")},
		{Canonical: "SIGN", Names: allFour("SIGN")},
		{Canonical: "FLOOR", Names: allFour("FLOOR")},
		{Canonical: "CEIL", Names: allFour("CEIL")},
		{Canonical: "ROUND", Names: allFour("ROUND")},
		{Canonical: "POWER", Names: allFour("POWER")},
		{Canonical: "SQRT", Names: allFour("SQRT")},
		{Canonical: "MOD", Names: allFour("MOD")},
		{Canonical: "NULLIF", Names: allFour("NULLIF")},
		{Canonical: "REPLACE", Names: allFour("REPLACE")},
		{Canonical: "COUNT", Names: allFour("COUNT")},
		{Canonical: "SUM", Names: allFour("SUM")},
		{Canonical: "AVG", Names: allFour("AVG")},
		{Canonical: "MIN", Names: allFour("MIN")},
		{Canonical: "MAX", Names: allFour("MAX")},

		// --- Renamed across dialects (translator maps spellings) --------
		{Canonical: "LENGTH", Names: map[ServerName]string{IB: "LENGTH", PG: "LENGTH", OR: "LENGTH", MS: "LEN"}},
		{Canonical: "SUBSTR", Names: map[ServerName]string{IB: "SUBSTR", PG: "SUBSTR", OR: "SUBSTR", MS: "SUBSTRING"}},
		{Canonical: "COALESCE", Names: map[ServerName]string{IB: "COALESCE", PG: "COALESCE", OR: "NVL", MS: "ISNULL"}},
		{Canonical: "CONCAT", Names: map[ServerName]string{IB: "CONCAT", PG: "CONCAT", OR: "CONCAT", MS: "CONCAT"}},

		// --- Sequence access (MS SQL 7 has no sequences) -----------------
		{Canonical: "NEXTVAL", SeqFunc: true, Names: map[ServerName]string{IB: "GEN_ID", PG: "NEXTVAL", OR: "NEXTVAL"}},

		// --- Availability atoms ------------------------------------------
		// One function per "missing on exactly one server" pattern. These
		// model vendor extensions (each implemented identically here) and
		// are the executable carrier of the paper's "bug script cannot be
		// run: functionality missing" outcomes.
		{Canonical: "GEN_UUID", Names: map[ServerName]string{IB: "GEN_UUID", OR: "GEN_UUID", MS: "GEN_UUID"}},         // PG 7.0 lacks it
		{Canonical: "BIT_LENGTH", Names: map[ServerName]string{IB: "BIT_LENGTH", PG: "BIT_LENGTH", MS: "BIT_LENGTH"}}, // OR 8 lacks it
		{Canonical: "LPAD", Names: map[ServerName]string{IB: "LPAD", PG: "LPAD", OR: "LPAD"}},                         // MS 7 lacks it
		{Canonical: "DATEDIFF", Names: map[ServerName]string{PG: "DATEDIFF", OR: "DATEDIFF", MS: "DATEDIFF"}},         // IB 6 lacks it

		// --- Further-work atoms -------------------------------------------
		// Vendor formatting functions: every server has one, but the
		// format-string languages differ, so the translator has no
		// automatic rule INTO the named server — porting such a script
		// needs manual work, the paper's "further work" outcome.
		{Canonical: "DATE_FMT", Names: allFour("DATE_FMT"), NoAutoTranslate: map[ServerName]bool{PG: true}},
		{Canonical: "NUM_FMT", Names: allFour("NUM_FMT"), NoAutoTranslate: map[ServerName]bool{OR: true}},
		{Canonical: "STR_FMT", Names: allFour("STR_FMT"), NoAutoTranslate: map[ServerName]bool{MS: true}},
		{Canonical: "BIN_FMT", Names: allFour("BIN_FMT"), NoAutoTranslate: map[ServerName]bool{IB: true}},
	}
}

// extensionBuiltins implements the catalogue functions that are not part
// of the engine's core builtin set. All are deterministic so results can
// be compared across servers.
func extensionBuiltins() map[string]engine.Builtin {
	m := make(map[string]engine.Builtin)
	m["GEN_UUID"] = engine.Builtin{Name: "GEN_UUID", MinArgs: 1, MaxArgs: 1,
		Fn: func(_ *engine.FuncContext, a []types.Value) (types.Value, error) {
			if a[0].IsNull() {
				return types.Null(), nil
			}
			return types.NewString("uuid-" + a[0].String()), nil
		}}
	m["BIT_LENGTH"] = engine.Builtin{Name: "BIT_LENGTH", MinArgs: 1, MaxArgs: 1,
		Fn: func(_ *engine.FuncContext, a []types.Value) (types.Value, error) {
			if a[0].IsNull() {
				return types.Null(), nil
			}
			return types.NewInt(int64(8 * len(a[0].String()))), nil
		}}
	m["LPAD"] = engine.Builtin{Name: "LPAD", MinArgs: 2, MaxArgs: 3,
		Fn: func(_ *engine.FuncContext, a []types.Value) (types.Value, error) {
			if a[0].IsNull() || a[1].IsNull() {
				return types.Null(), nil
			}
			s := a[0].String()
			n := int(a[1].AsInt())
			pad := " "
			if len(a) == 3 && !a[2].IsNull() {
				pad = a[2].String()
			}
			for len(s) < n && pad != "" {
				s = pad + s
			}
			if len(s) > n {
				s = s[len(s)-n:]
			}
			return types.NewString(s), nil
		}}
	m["DATEDIFF"] = engine.Builtin{Name: "DATEDIFF", MinArgs: 2, MaxArgs: 2,
		Fn: func(_ *engine.FuncContext, a []types.Value) (types.Value, error) {
			if a[0].IsNull() || a[1].IsNull() {
				return types.Null(), nil
			}
			d1, err := dateSerial(a[0])
			if err != nil {
				return types.Value{}, err
			}
			d2, err := dateSerial(a[1])
			if err != nil {
				return types.Value{}, err
			}
			return types.NewInt(d1 - d2), nil
		}}
	fmtFn := func(name string) engine.Builtin {
		return engine.Builtin{Name: name, MinArgs: 1, MaxArgs: 2,
			Fn: func(_ *engine.FuncContext, a []types.Value) (types.Value, error) {
				if a[0].IsNull() {
					return types.Null(), nil
				}
				return types.NewString(a[0].String()), nil
			}}
	}
	m["DATE_FMT"] = fmtFn("DATE_FMT")
	m["NUM_FMT"] = fmtFn("NUM_FMT")
	m["STR_FMT"] = fmtFn("STR_FMT")
	m["BIN_FMT"] = fmtFn("BIN_FMT")
	return m
}

// dateSerial converts a date value into a day count usable for
// differences. The calendar is simplified (fixed 31-day months); both
// operands go through the same conversion, so differences are consistent
// across servers.
func dateSerial(v types.Value) (int64, error) {
	s := v.String()
	parts := strings.Split(s, "-")
	if len(parts) != 3 {
		return 0, fmt.Errorf("DATEDIFF: %q is not a date", s)
	}
	y, err1 := strconv.Atoi(parts[0])
	mo, err2 := strconv.Atoi(parts[1])
	d, err3 := strconv.Atoi(parts[2])
	if err1 != nil || err2 != nil || err3 != nil {
		return 0, fmt.Errorf("DATEDIFF: %q is not a date", s)
	}
	return int64(y*372 + (mo-1)*31 + (d - 1)), nil
}

// typeCatalog is built once; immutable at runtime.
var typeCatalog = buildTypeCatalog()

// TypeCatalog returns the cross-dialect type catalogue.
func TypeCatalog() []*TypeSpec { return typeCatalog }

func buildTypeCatalog() []*TypeSpec {
	return []*TypeSpec{
		{Canonical: "INTEGER", Kind: types.KindInt, Names: map[ServerName][]string{
			IB: {"INTEGER", "INT", "SMALLINT"},
			PG: {"INTEGER", "INT", "SMALLINT", "BIGINT", "INT4", "INT8"},
			OR: {"NUMBER", "INTEGER", "INT"},
			MS: {"INT", "INTEGER", "SMALLINT", "BIGINT"},
		}},
		{Canonical: "FLOAT", Kind: types.KindFloat, Names: map[ServerName][]string{
			IB: {"FLOAT", "DOUBLE PRECISION", "NUMERIC", "DECIMAL"},
			PG: {"FLOAT", "REAL", "DOUBLE PRECISION", "NUMERIC", "DECIMAL"},
			OR: {"FLOAT", "NUMERIC", "DECIMAL"},
			MS: {"FLOAT", "REAL", "NUMERIC", "DECIMAL"},
		}},
		{Canonical: "VARCHAR", Kind: types.KindString, Names: map[ServerName][]string{
			IB: {"VARCHAR", "CHAR"},
			PG: {"VARCHAR", "CHAR", "TEXT"},
			OR: {"VARCHAR2", "VARCHAR", "CHAR"},
			MS: {"VARCHAR", "CHAR", "NVARCHAR", "TEXT"},
		}},
		{Canonical: "DATE", Kind: types.KindDate, Names: map[ServerName][]string{
			IB: {"DATE"},
			PG: {"DATE", "TIMESTAMP"},
			OR: {"DATE"},
			MS: {"DATETIME"},
		}},
		{Canonical: "BOOLEAN", Kind: types.KindBool, Names: map[ServerName][]string{
			PG: {"BOOLEAN", "BOOL"},
			MS: {"BIT"},
		}},
		// MONEY: an MS-only vendor type, usable as an availability atom.
		{Canonical: "MONEY", Kind: types.KindFloat, Names: map[ServerName][]string{
			MS: {"MONEY"},
		}},
	}
}
