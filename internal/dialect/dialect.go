// Package dialect defines the four simulated server dialects: which SQL
// features, functions and types each accepts, how constructs are spelled,
// and which engine quirks each server carries. The dialect layer is what
// makes the four servers built on one engine genuinely diverse: scripts
// written for one server may be untranslatable ("functionality missing")
// or unportable without manual work ("further work") for another, exactly
// mirroring the paper's three-way runnability classification.
package dialect

import (
	"fmt"

	"divsql/internal/engine"
	"divsql/internal/sql/ast"
	"divsql/internal/sql/types"
)

// ServerName identifies one of the four simulated servers. The paper's
// abbreviations are kept: IB (Interbase 6.0), PG (PostgreSQL 7.0.0),
// OR (Oracle 8.0.5), MS (MSSQL 7).
type ServerName string

// The four simulated servers.
const (
	IB ServerName = "IB"
	PG ServerName = "PG"
	OR ServerName = "OR"
	MS ServerName = "MS"
)

// AllServers lists the four servers in the paper's order.
var AllServers = []ServerName{IB, PG, OR, MS}

// LongName returns the descriptive name of the simulated product.
func (s ServerName) LongName() string {
	switch s {
	case IB:
		return "Interbase 6.0 (simulated)"
	case PG:
		return "PostgreSQL 7.0.0 (simulated)"
	case OR:
		return "Oracle 8.0.5 (simulated)"
	case MS:
		return "MS SQL Server 7 (simulated)"
	default:
		return string(s)
	}
}

// Feature identifies one dialect capability used by the translator and
// the runnability checker.
type Feature string

// Syntax-level features.
const (
	FeatRowLimit       Feature = "row-limit"
	FeatClusteredIndex Feature = "clustered-index"
	FeatViewUnion      Feature = "view-union"
	FeatViewDistinct   Feature = "view-distinct"
	FeatSequences      Feature = "sequences"
)

// FuncFeature returns the feature id for a canonical function.
func FuncFeature(canonical string) Feature {
	return Feature("func:" + canonical)
}

// TypeFeature returns the feature id for a canonical type.
func TypeFeature(canonical string) Feature {
	return Feature("type:" + canonical)
}

// Dialect describes one simulated server's accepted SQL.
type Dialect struct {
	Name ServerName

	// limitSyn is the row-limiting syntax; ast.LimitNone when the
	// dialect has none (OR-sim).
	limitSyn ast.LimitSyntax

	// funcsByLocal maps the dialect spelling of a function to its spec.
	funcsByLocal map[string]*FuncSpec
	// typesByLocal maps the dialect spelling of a type to its spec.
	typesByLocal map[string]*TypeSpec

	supportsClustered    bool
	supportsViewUnion    bool
	supportsViewDistinct bool
	supportsSequences    bool

	quirks engine.Quirks
	bind   engine.BindRules
}

// New returns the dialect definition for a server.
func New(name ServerName) (*Dialect, error) {
	d := &Dialect{
		Name:         name,
		funcsByLocal: make(map[string]*FuncSpec),
		typesByLocal: make(map[string]*TypeSpec),
	}
	for _, fs := range FuncCatalog() {
		if local, ok := fs.Names[name]; ok {
			d.funcsByLocal[local] = fs
		}
	}
	for _, ts := range TypeCatalog() {
		for _, local := range ts.Names[name] {
			d.typesByLocal[local] = ts
		}
	}
	switch name {
	case IB:
		d.limitSyn = ast.LimitRows
		d.supportsClustered = false
		d.supportsViewUnion = true
		d.supportsViewDistinct = true
		d.supportsSequences = true
		d.quirks = engine.Quirks{
			AllowDropTableOnView:    true, // bug 223512
			SkipDefaultTypeCheck:    true, // bug 217042(3)
			BlankAggregateAliases:   true, // bug 222476
			LeftJoinDistinctViewDup: true, // bug 58544 (shared region)
		}
		// IB's client library types loosely: a numeric-looking string
		// argument is re-typed as a number at bind time.
		d.bind = engine.BindRules{NumericStringsAsNumbers: true}
	case PG:
		d.limitSyn = ast.LimitLimit
		d.supportsClustered = true // accepted, but defective (see quirks)
		d.supportsViewUnion = false
		d.supportsViewDistinct = true
		d.supportsSequences = true
		d.quirks = engine.Quirks{
			AllowDropTableOnView:    true, // bug 223512 (shared region)
			ClusteredIndexError:     true, // the pre-7.0.3 clustered-index bug
			ParenUnionSubqueryError: true, // bug 43
			FloatMulPrecisionLoss:   true, // bug 77
			ModNegativeAbs:          true, // 1059835's failure region on PG
		}
		// PG 7.0-era CHAR bind semantics applied to every string
		// parameter: trailing spaces are stripped at the bind boundary.
		d.bind = engine.BindRules{TrimTrailingSpaces: true}
	case OR:
		d.limitSyn = ast.LimitNone
		d.supportsClustered = false
		d.supportsViewUnion = true
		d.supportsViewDistinct = true
		d.supportsSequences = true
		d.quirks = engine.Quirks{
			ModNegativePlus: true, // bug 1059835
		}
		// Oracle's VARCHAR2 semantics at the bind boundary: a zero-length
		// string argument IS NULL.
		d.bind = engine.BindRules{EmptyStringAsNull: true}
	case MS:
		d.limitSyn = ast.LimitTop
		d.supportsClustered = true
		d.supportsViewUnion = true
		d.supportsViewDistinct = true
		d.supportsSequences = false
		d.quirks = engine.Quirks{
			SkipDefaultTypeCheck:       true, // bug 217042(3) (shared region)
			UnaliasedAggregateError:    true, // bug 222476's MS manifestation
			LeftJoinDistinctViewDup:    true, // bug 58544
			ParenUnionSubqueryMisparse: true, // bug 43's MS manifestation
			FloatMulPrecisionLoss:      true, // bug 77 (shared region)
		}
		// MS SQL has no boolean at the bind boundary: boolean arguments
		// arrive as BIT 0/1 integers.
		d.bind = engine.BindRules{BoolAsInt: true}
	default:
		return nil, fmt.Errorf("unknown server %q", name)
	}
	return d, nil
}

// SupportsIsolation reports whether the dialect accepts SET TRANSACTION
// ISOLATION LEVEL <level> (canonical upper-cased level name). The
// acceptance matrix mirrors the era's servers: every server offers READ
// COMMITTED and SERIALIZABLE; PostgreSQL and MSSQL additionally accept
// the READ UNCOMMITTED and REPEATABLE READ spellings; SNAPSHOT is the
// multi-generational spelling offered by MSSQL and InterBase. Accept
// divergence across replicas is itself a hunt surface: the pristine
// oracle accepts every level, so a rejection here is an observable
// difference.
func (d *Dialect) SupportsIsolation(level string) bool {
	switch level {
	case "READ COMMITTED", "SERIALIZABLE":
		return true
	case "READ UNCOMMITTED", "REPEATABLE READ":
		return d.Name == PG || d.Name == MS
	case "SNAPSHOT":
		return d.Name == MS || d.Name == IB
	}
	return false
}

// MustNew is New for static server names.
func MustNew(name ServerName) *Dialect {
	d, err := New(name)
	if err != nil {
		panic(err) // static misconfiguration: fail at startup
	}
	return d
}

// Quirks returns the server's engine quirk set.
func (d *Dialect) Quirks() engine.Quirks { return d.quirks }

// BindRules returns the server's bind-time argument coercion rules.
func (d *Dialect) BindRules() engine.BindRules { return d.bind }

// LimitSyntax returns the dialect's row-limiting syntax.
func (d *Dialect) LimitSyntax() ast.LimitSyntax { return d.limitSyn }

// Supports reports whether the dialect supports a feature.
func (d *Dialect) Supports(f Feature) bool {
	switch f {
	case FeatRowLimit:
		return d.limitSyn != ast.LimitNone
	case FeatClusteredIndex:
		return d.supportsClustered
	case FeatViewUnion:
		return d.supportsViewUnion
	case FeatViewDistinct:
		return d.supportsViewDistinct
	case FeatSequences:
		return d.supportsSequences
	}
	for _, fs := range FuncCatalog() {
		if FuncFeature(fs.Canonical) == f {
			_, ok := fs.Names[d.Name]
			return ok
		}
	}
	for _, ts := range TypeCatalog() {
		if TypeFeature(ts.Canonical) == f {
			return len(ts.Names[d.Name]) > 0
		}
	}
	return false
}

// FuncSpecByLocal resolves a function as spelled in this dialect.
func (d *Dialect) FuncSpecByLocal(name string) (*FuncSpec, bool) {
	fs, ok := d.funcsByLocal[name]
	return fs, ok
}

// TypeSpecByLocal resolves a type as spelled in this dialect.
func (d *Dialect) TypeSpecByLocal(name string) (*TypeSpec, bool) {
	ts, ok := d.typesByLocal[name]
	return ts, ok
}

// EngineConfig assembles the engine configuration for a server: its
// function registry (under local spellings), type resolver and quirks.
func (d *Dialect) EngineConfig() engine.Config {
	builtins := engine.AllBuiltins()
	funcs := make(map[string]engine.Builtin, len(d.funcsByLocal))
	for local, fs := range d.funcsByLocal {
		impl, ok := builtins[fs.Canonical]
		if !ok {
			impl, ok = extensionBuiltins()[fs.Canonical]
		}
		if !ok {
			continue
		}
		impl.Name = local
		funcs[local] = impl
	}
	return engine.Config{
		Funcs:       funcs,
		ResolveType: d.resolveType,
		Quirks:      d.quirks,
		Bind:        d.bind,
	}
}

// OracleConfig returns the engine configuration of the pristine
// reference server used as the study's correctness oracle: it resolves
// every dialect's type spellings permissively and understands every
// dialect's function spellings (all bound to the correct, quirk-free
// implementations).
func OracleConfig() engine.Config {
	builtins := engine.AllBuiltins()
	ext := extensionBuiltins()
	funcs := make(map[string]engine.Builtin, len(builtins)+len(ext))
	for name, b := range builtins {
		funcs[name] = b
	}
	for _, fs := range FuncCatalog() {
		impl, ok := builtins[fs.Canonical]
		if !ok {
			impl, ok = ext[fs.Canonical]
		}
		if !ok {
			continue
		}
		for _, local := range fs.Names {
			li := impl
			li.Name = local
			funcs[local] = li
		}
	}
	return engine.Config{Funcs: funcs, ResolveType: engine.ResolveTypePermissive}
}

func (d *Dialect) resolveType(tn ast.TypeName) (types.Kind, error) {
	ts, ok := d.typesByLocal[tn.Name]
	if !ok {
		return 0, fmt.Errorf("type %s is not supported by %s", tn.Name, d.Name.LongName())
	}
	return ts.Kind, nil
}
