package dialect

import (
	"testing"

	"divsql/internal/sql/ast"
)

func TestNewAllServers(t *testing.T) {
	for _, n := range AllServers {
		d, err := New(n)
		if err != nil {
			t.Fatalf("New(%s): %v", n, err)
		}
		if d.Name != n {
			t.Errorf("name %s", d.Name)
		}
		if n.LongName() == string(n) {
			t.Errorf("missing long name for %s", n)
		}
	}
	if _, err := New("XX"); err == nil {
		t.Error("unknown server must fail")
	}
}

func TestQuirkAssignment(t *testing.T) {
	ib := MustNew(IB).Quirks()
	pg := MustNew(PG).Quirks()
	or := MustNew(OR).Quirks()
	ms := MustNew(MS).Quirks()

	// Shared failure regions of the paper's Table 4 bugs.
	if !ib.AllowDropTableOnView || !pg.AllowDropTableOnView {
		t.Error("bug 223512 region must be shared by IB and PG")
	}
	if or.AllowDropTableOnView || ms.AllowDropTableOnView {
		t.Error("bug 223512 region must not exist on OR/MS")
	}
	if !ib.SkipDefaultTypeCheck || !ms.SkipDefaultTypeCheck {
		t.Error("bug 217042 region must be shared by IB and MS")
	}
	if !ib.LeftJoinDistinctViewDup || !ms.LeftJoinDistinctViewDup {
		t.Error("bug 58544 region must be shared by IB and MS")
	}
	if !pg.FloatMulPrecisionLoss || !ms.FloatMulPrecisionLoss {
		t.Error("bug 77 region must be shared by PG and MS")
	}
	if !pg.ClusteredIndexError {
		t.Error("PG must carry the clustered-index defect")
	}
	if !or.ModNegativePlus || !pg.ModNegativeAbs {
		t.Error("bug 1059835 regions must differ between OR and PG")
	}
	if pg.ModNegativePlus {
		t.Error("PG must not carry OR's MOD manifestation")
	}
}

func TestFeatureSupport(t *testing.T) {
	cases := []struct {
		server ServerName
		feat   Feature
		want   bool
	}{
		{PG, FeatViewUnion, false}, // the paper's own example (bug 217138)
		{IB, FeatViewUnion, true},
		{MS, FeatClusteredIndex, true},
		{PG, FeatClusteredIndex, true}, // accepted, though defective
		{IB, FeatClusteredIndex, false},
		{OR, FeatClusteredIndex, false},
		{MS, FeatSequences, false},
		{IB, FeatSequences, true},
		{OR, FeatRowLimit, false},
		{PG, FeatRowLimit, true},
		{PG, FuncFeature("GEN_UUID"), false},
		{IB, FuncFeature("GEN_UUID"), true},
		{OR, FuncFeature("BIT_LENGTH"), false},
		{MS, FuncFeature("LPAD"), false},
		{IB, FuncFeature("DATEDIFF"), false},
		{MS, TypeFeature("MONEY"), true},
		{PG, TypeFeature("MONEY"), false},
	}
	for _, tc := range cases {
		d := MustNew(tc.server)
		if got := d.Supports(tc.feat); got != tc.want {
			t.Errorf("%s supports %s = %v, want %v", tc.server, tc.feat, got, tc.want)
		}
	}
}

func TestFuncSpellings(t *testing.T) {
	ms := MustNew(MS)
	if _, ok := ms.FuncSpecByLocal("LEN"); !ok {
		t.Error("MS must spell LENGTH as LEN")
	}
	if _, ok := ms.FuncSpecByLocal("LENGTH"); ok {
		t.Error("MS must not accept LENGTH")
	}
	or := MustNew(OR)
	if _, ok := or.FuncSpecByLocal("NVL"); !ok {
		t.Error("OR must offer NVL")
	}
	ib := MustNew(IB)
	spec, ok := ib.FuncSpecByLocal("GEN_ID")
	if !ok || !spec.SeqFunc {
		t.Error("IB must offer GEN_ID as a sequence function")
	}
}

func TestTypeResolution(t *testing.T) {
	cfgMS := MustNew(MS).EngineConfig()
	if _, err := cfgMS.ResolveType(ast.TypeName{Name: "DATE"}); err == nil {
		t.Error("MS must reject DATE (spells it DATETIME)")
	}
	if _, err := cfgMS.ResolveType(ast.TypeName{Name: "DATETIME"}); err != nil {
		t.Errorf("MS DATETIME: %v", err)
	}
	cfgOR := MustNew(OR).EngineConfig()
	if _, err := cfgOR.ResolveType(ast.TypeName{Name: "VARCHAR2", Args: []int{10}}); err != nil {
		t.Errorf("OR VARCHAR2: %v", err)
	}
	if _, err := cfgOR.ResolveType(ast.TypeName{Name: "MONEY"}); err == nil {
		t.Error("OR must reject MONEY")
	}
}

func TestEngineConfigHasLocalFunctions(t *testing.T) {
	cfg := MustNew(MS).EngineConfig()
	if _, ok := cfg.Funcs["LEN"]; !ok {
		t.Error("MS engine config must register LEN")
	}
	if _, ok := cfg.Funcs["LENGTH"]; ok {
		t.Error("MS engine config must not register LENGTH")
	}
	if _, ok := cfg.Funcs["GEN_UUID"]; !ok {
		t.Error("MS engine config must register GEN_UUID")
	}
}

func TestOracleConfigUnderstandsEverySpelling(t *testing.T) {
	cfg := OracleConfig()
	for _, name := range []string{"LEN", "LENGTH", "NVL", "ISNULL", "COALESCE", "GEN_ID", "NEXTVAL", "GEN_UUID", "LPAD", "DATEDIFF", "DATE_FMT"} {
		if _, ok := cfg.Funcs[name]; !ok {
			t.Errorf("oracle config missing %s", name)
		}
	}
	for _, tn := range []string{"DATE", "DATETIME", "NUMBER", "VARCHAR2", "MONEY", "INT"} {
		if _, err := cfg.ResolveType(ast.TypeName{Name: tn}); err != nil {
			t.Errorf("oracle config type %s: %v", tn, err)
		}
	}
}

func TestCatalogConsistency(t *testing.T) {
	seen := map[string]bool{}
	for _, fs := range FuncCatalog() {
		if fs.Canonical == "" || len(fs.Names) == 0 {
			t.Errorf("bad func spec %+v", fs)
		}
		if seen[fs.Canonical] {
			t.Errorf("duplicate canonical %s", fs.Canonical)
		}
		seen[fs.Canonical] = true
		for srv, local := range fs.Names {
			if local == "" {
				t.Errorf("%s: empty spelling for %s", fs.Canonical, srv)
			}
		}
		for srv := range fs.NoAutoTranslate {
			if _, ok := fs.Names[srv]; !ok {
				t.Errorf("%s: NoAutoTranslate for unsupported server %s", fs.Canonical, srv)
			}
		}
	}
	for _, ts := range TypeCatalog() {
		if ts.Canonical == "" {
			t.Errorf("bad type spec %+v", ts)
		}
	}
}
