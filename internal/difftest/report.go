package difftest

import (
	"fmt"
	"strings"

	"divsql/internal/core"
	"divsql/internal/dialect"
	"divsql/internal/fault"
	"divsql/internal/server"
)

// Report is a self-contained, replayable reproduction of one
// divergence: the minimal statement stream (schema DDL, data and the
// trigger), the fault configuration, and every server's observed
// behavior on the trigger statement. Feed it to Replay to confirm.
type Report struct {
	// Server is the divergent server.
	Server dialect.ServerName
	// Fingerprint identifies the fault region (dedup key).
	Fingerprint string
	// Oracle is the verdict source: "" for the differential
	// server-vs-oracle vote, "planvariants" for the forced-plan gate, or
	// a metamorphic oracle name ("tlp", "norec", "cert"). Replay uses it
	// to re-run the same verdict source the original run convicted with.
	Oracle string
	// Seed is the generator seed of the originating run.
	Seed int64
	// Faults and Stress reproduce the originating configuration.
	Faults []fault.Fault
	Stress bool
	// Stream is the minimal statement sequence.
	Stream []string
	// Trigger is the diverging statement, at TriggerIndex in Stream.
	Trigger      string
	TriggerIndex int
	// Class is the observational failure classification.
	Class core.Classification
	// Behavior records each server's outcome on the trigger statement;
	// OracleBehavior is the pristine reference outcome.
	Behavior       map[dialect.ServerName]string
	OracleBehavior string
}

// resultSummary renders a compact row/affected summary of an outcome.
func resultSummary(out server.StmtOutcome) string {
	res := out.Res
	if res == nil {
		return "ok"
	}
	d := core.Digest(res, core.DefaultCompareOptions())
	if len(res.Rows) > 0 || len(res.Columns) > 0 {
		return fmt.Sprintf("%d row(s), digest %08x", len(res.Rows), fnv32(d))
	}
	return fmt.Sprintf("ok (affected %d)", res.Affected)
}

// fnv32 is a tiny stable hash for digest display.
func fnv32(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// Render prints the report in a replayable, human-readable form.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== divergence on %s (%s, %s)\n", r.Server, r.Class.Type, evidence(r.Class))
	fmt.Fprintf(&b, "fingerprint: %s\n", r.Fingerprint)
	if r.Oracle != "" {
		fmt.Fprintf(&b, "verdict source: %s self-check\n", r.Oracle)
	}
	fmt.Fprintf(&b, "seed %d, %d statement(s), trigger #%d\n", r.Seed, len(r.Stream), r.TriggerIndex+1)
	b.WriteString("--- minimal stream\n")
	for i, s := range r.Stream {
		marker := "   "
		if i == r.TriggerIndex {
			marker = ">>>"
		}
		fmt.Fprintf(&b, "%s %s;\n", marker, s)
	}
	b.WriteString("--- observed behavior on trigger\n")
	if r.Oracle != "" {
		// Self-check report: only the convicted endpoint's behavior is
		// meaningful — the violated relation is between the statement and
		// rewrites of itself on the same endpoint.
		if beh, ok := r.Behavior[r.Server]; ok {
			fmt.Fprintf(&b, "    %-10s %s  <-- violates %s relation\n", string(r.Server)+":", beh, r.Oracle)
		}
		fmt.Fprintf(&b, "    %-10s %s\n", "verdict:", r.OracleBehavior)
	} else {
		fmt.Fprintf(&b, "    %-10s %s\n", "ORACLE:", r.OracleBehavior)
		for _, s := range dialect.AllServers {
			if beh, ok := r.Behavior[s]; ok {
				mark := ""
				if s == r.Server {
					mark = "  <-- divergent"
				}
				fmt.Fprintf(&b, "    %-10s %s%s\n", string(s)+":", beh, mark)
			}
		}
	}
	if r.Class.Detail != "" {
		fmt.Fprintf(&b, "detail: %s\n", r.Class.Detail)
	}
	return b.String()
}

func evidence(c core.Classification) string {
	if c.SelfEvident {
		return "self-evident"
	}
	return "non-self-evident"
}

// Render prints the run summary: adjudication volume, per-server
// deduplicated divergence counts, and the shrunk reports.
func (r *Result) Render(verbose bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, "differential run: %d statements adjudicated (%d executions) in %v\n",
		r.Statements, r.Execs, r.Elapsed.Round(1000000))
	if r.Statements > 0 && r.Elapsed > 0 {
		fmt.Fprintf(&b, "throughput: %.0f statements/s adjudicated\n",
			float64(r.Statements)/r.Elapsed.Seconds())
	}
	if r.Coverage != nil {
		b.WriteString(r.Coverage.Render())
	}
	fmt.Fprintf(&b, "divergences: %d distinct fingerprints (%d raw occurrences)\n", len(r.Divergences), r.Raw)
	for _, s := range dialect.AllServers {
		if n, ok := r.PerServer[s]; ok {
			fmt.Fprintf(&b, "  %s: %d\n", s, n)
		}
	}
	for _, d := range r.Divergences {
		tag := ""
		if d.Oracle != "" {
			tag = " <" + d.Oracle + ">"
		}
		fmt.Fprintf(&b, "- %s%s [%s] x%d: %s\n", d.Server, tag, d.Class.Type, d.Count, d.SQL)
		if verbose && d.Report != nil {
			b.WriteString(d.Report.Render())
		}
	}
	return b.String()
}
