package difftest

import (
	"fmt"
	"sort"
	"strings"

	"divsql/internal/core"
	"divsql/internal/qgen"
	"divsql/internal/sql/ast"
)

// BucketCoverage is the exploration/yield record of one statement class
// or SELECT shape.
type BucketCoverage struct {
	// Hits is the number of generated statements in the bucket.
	Hits int
	// Fingerprints is the number of distinct statement fingerprints
	// generated in the bucket — the bucket's exploration breadth.
	Fingerprints int
	// Divergent counts raw divergent (server, statement) executions
	// attributed to the bucket.
	Divergent int
	// NewFingerprints counts divergence fingerprints first observed on a
	// statement of this bucket — the bucket's yield of *distinct* fault
	// regions, the quantity the feedback loop optimizes for.
	NewFingerprints int
}

// Coverage is the run's exploration signal: per statement-class and
// per SELECT-shape hit counts, generated-fingerprint breadth, oracle
// error-class hits, and per-bucket divergence yield. difftest exports
// one Coverage per run (Result.Coverage) and, in adaptive mode, feeds a
// per-stream Coverage back into the generator's Weights plane between
// batches (see Feedback).
type Coverage struct {
	// Statements is the number of generated statements observed.
	Statements int
	// ByClass and ByShape index the buckets (ByShape only for SELECTs).
	ByClass map[qgen.Class]*BucketCoverage
	ByShape map[qgen.Shape]*BucketCoverage
	// ByBind splits the same statements along the bind dimension:
	// inline-literal versus prepared/bound execution (populated — for the
	// param bucket — only by Params-mode runs).
	ByBind map[qgen.BindMode]*BucketCoverage
	// ByOracle buckets the self-check verdict sources — the DQP-lite
	// planvariants gate and the metamorphic oracles (tlp, norec, cert).
	// Hits count relation evaluations (an oracle that applied to an
	// answered SELECT and ran to a verdict), Fingerprints the breadth of
	// statements so checked, and Divergent/NewFingerprints the verdicts
	// that convicted — so adaptive hunts can see which oracle is buying
	// findings and which statement shapes feed it (the shape buckets
	// learn through the same divergences via ObserveDivergence).
	ByOracle map[string]*BucketCoverage
	// Errors counts statements by the oracle's normalized error class —
	// ClassNone is the well-formed budget; everything else is budget
	// spent on statements the common subset rejects.
	Errors map[core.ErrClass]int

	genFPs map[string]bool // distinct generated statement fingerprints
	divFPs map[string]bool // distinct divergence fingerprints
	// genFPClass/genFPShape/genFPBind/genFPOracle dedup fingerprint
	// breadth per bucket.
	genFPClass  map[string]bool
	genFPShape  map[string]bool
	genFPBind   map[string]bool
	genFPOracle map[string]bool
}

// NewCoverage returns an empty coverage accumulator.
func NewCoverage() *Coverage {
	return &Coverage{
		ByClass:     make(map[qgen.Class]*BucketCoverage),
		ByShape:     make(map[qgen.Shape]*BucketCoverage),
		ByBind:      make(map[qgen.BindMode]*BucketCoverage),
		ByOracle:    make(map[string]*BucketCoverage),
		Errors:      make(map[core.ErrClass]int),
		genFPs:      make(map[string]bool),
		divFPs:      make(map[string]bool),
		genFPClass:  make(map[string]bool),
		genFPShape:  make(map[string]bool),
		genFPBind:   make(map[string]bool),
		genFPOracle: make(map[string]bool),
	}
}

func (c *Coverage) oracleBucket(src string) *BucketCoverage {
	b := c.ByOracle[src]
	if b == nil {
		b = &BucketCoverage{}
		c.ByOracle[src] = b
	}
	return b
}

// ObserveOracleCheck records one evaluated self-check relation: the
// verdict source applied to a statement and ran to a verdict (hit), and
// the statement fingerprint counts toward the bucket's breadth.
func (c *Coverage) ObserveOracleCheck(src, fp string) {
	b := c.oracleBucket(src)
	b.Hits++
	if !c.genFPOracle[src+"\x00"+fp] {
		c.genFPOracle[src+"\x00"+fp] = true
		b.Fingerprints++
	}
}

// ObserveOracleDivergence records one convicting self-check verdict.
// isNew is ObserveDivergence's report on the same statement (the
// statement-fingerprint novelty signal is shared across all planes).
func (c *Coverage) ObserveOracleDivergence(src string, isNew bool) {
	b := c.oracleBucket(src)
	b.Divergent++
	if isNew {
		b.NewFingerprints++
	}
}

func (c *Coverage) classBucket(cl qgen.Class) *BucketCoverage {
	b := c.ByClass[cl]
	if b == nil {
		b = &BucketCoverage{}
		c.ByClass[cl] = b
	}
	return b
}

func (c *Coverage) shapeBucket(sh qgen.Shape) *BucketCoverage {
	b := c.ByShape[sh]
	if b == nil {
		b = &BucketCoverage{}
		c.ByShape[sh] = b
	}
	return b
}

func (c *Coverage) bindBucket(m qgen.BindMode) *BucketCoverage {
	b := c.ByBind[m]
	if b == nil {
		b = &BucketCoverage{}
		c.ByBind[m] = b
	}
	return b
}

// Observe records one generated statement: its class/shape hit, its
// fingerprint (breadth), and the oracle's error class.
func (c *Coverage) Observe(st ast.Statement, fp string, oracleErr error) {
	c.Statements++
	cl := qgen.ClassOf(st)
	cb := c.classBucket(cl)
	cb.Hits++
	if !c.genFPClass[string(cl)+"\x00"+fp] {
		c.genFPClass[string(cl)+"\x00"+fp] = true
		cb.Fingerprints++
	}
	if sh := qgen.ShapeOf(st); sh != "" {
		sb := c.shapeBucket(sh)
		sb.Hits++
		if !c.genFPShape[string(sh)+"\x00"+fp] {
			c.genFPShape[string(sh)+"\x00"+fp] = true
			sb.Fingerprints++
		}
	}
	bm := qgen.BindModeOf(st)
	bb := c.bindBucket(bm)
	bb.Hits++
	if !c.genFPBind[string(bm)+"\x00"+fp] {
		c.genFPBind[string(bm)+"\x00"+fp] = true
		bb.Fingerprints++
	}
	c.genFPs[fp] = true
	c.Errors[core.ErrorClass(oracleErr)]++
}

// ObserveDivergence records one divergent (server, statement) execution
// and reports whether the divergence fingerprint is new to this
// coverage (the feedback loop's reward signal).
func (c *Coverage) ObserveDivergence(st ast.Statement, fp string) bool {
	cl := qgen.ClassOf(st)
	cb := c.classBucket(cl)
	cb.Divergent++
	isNew := !c.divFPs[fp]
	if isNew {
		c.divFPs[fp] = true
		cb.NewFingerprints++
	}
	var sb *BucketCoverage
	if sh := qgen.ShapeOf(st); sh != "" {
		sb = c.shapeBucket(sh)
		sb.Divergent++
		if isNew {
			sb.NewFingerprints++
		}
	}
	bb := c.bindBucket(qgen.BindModeOf(st))
	bb.Divergent++
	if isNew {
		bb.NewFingerprints++
	}
	return isNew
}

// GeneratedFingerprints is the number of distinct statement
// fingerprints generated — the stream's exploration breadth.
func (c *Coverage) GeneratedFingerprints() int { return len(c.genFPs) }

// DivergenceFingerprints is the number of distinct divergence
// fingerprints observed.
func (c *Coverage) DivergenceFingerprints() int { return len(c.divFPs) }

// Merge folds another coverage into this one (used to aggregate
// per-stream coverages into the run-level signal). Fingerprint sets
// union; newness in the merged view is recomputed against the union, so
// a fingerprint two streams both discovered counts once.
func (c *Coverage) Merge(o *Coverage) {
	c.Statements += o.Statements
	// NewFingerprints sums rather than recounting against the union: a
	// fingerprint found independently by two streams counts in both
	// buckets' yield — it rewarded both streams' feedback.
	for cl, ob := range o.ByClass {
		b := c.classBucket(cl)
		b.Hits += ob.Hits
		b.Divergent += ob.Divergent
		b.NewFingerprints += ob.NewFingerprints
	}
	for sh, ob := range o.ByShape {
		b := c.shapeBucket(sh)
		b.Hits += ob.Hits
		b.Divergent += ob.Divergent
		b.NewFingerprints += ob.NewFingerprints
	}
	for bm, ob := range o.ByBind {
		b := c.bindBucket(bm)
		b.Hits += ob.Hits
		b.Divergent += ob.Divergent
		b.NewFingerprints += ob.NewFingerprints
	}
	for src, ob := range o.ByOracle {
		b := c.oracleBucket(src)
		b.Hits += ob.Hits
		b.Divergent += ob.Divergent
		b.NewFingerprints += ob.NewFingerprints
	}
	for ec, n := range o.Errors {
		c.Errors[ec] += n
	}
	for fp := range o.genFPs {
		c.genFPs[fp] = true
	}
	for k := range o.genFPClass {
		if !c.genFPClass[k] {
			c.genFPClass[k] = true
			cl, _, _ := strings.Cut(k, "\x00")
			c.classBucket(qgen.Class(cl)).Fingerprints++
		}
	}
	for k := range o.genFPShape {
		if !c.genFPShape[k] {
			c.genFPShape[k] = true
			sh, _, _ := strings.Cut(k, "\x00")
			c.shapeBucket(qgen.Shape(sh)).Fingerprints++
		}
	}
	for k := range o.genFPBind {
		if !c.genFPBind[k] {
			c.genFPBind[k] = true
			bm, _, _ := strings.Cut(k, "\x00")
			c.bindBucket(qgen.BindMode(bm)).Fingerprints++
		}
	}
	for k := range o.genFPOracle {
		if !c.genFPOracle[k] {
			c.genFPOracle[k] = true
			src, _, _ := strings.Cut(k, "\x00")
			c.oracleBucket(src).Fingerprints++
		}
	}
	for fp := range o.divFPs {
		c.divFPs[fp] = true
	}
}

// Render prints the coverage summary: one row per statement class and
// SELECT shape (hits, breadth, divergence yield) plus the oracle
// error-class histogram.
func (c *Coverage) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "coverage: %d statements, %d generated fingerprints, %d divergence fingerprints\n",
		c.Statements, c.GeneratedFingerprints(), c.DivergenceFingerprints())
	b.WriteString("  class      hits    gen-fps  divergent  new-div-fps\n")
	row := func(name string, bc *BucketCoverage) {
		fmt.Fprintf(&b, "  %-9s %6d   %6d     %6d       %6d\n",
			name, bc.Hits, bc.Fingerprints, bc.Divergent, bc.NewFingerprints)
	}
	for _, cl := range qgen.Classes {
		if bc, ok := c.ByClass[cl]; ok {
			row(string(cl), bc)
		}
	}
	for _, sh := range qgen.Shapes {
		if bc, ok := c.ByShape[sh]; ok {
			row("q:"+string(sh), bc)
		}
	}
	for _, bm := range qgen.BindModes {
		if bc, ok := c.ByBind[bm]; ok {
			row("b:"+string(bm), bc)
		}
	}
	for _, src := range VerdictSources {
		if bc, ok := c.ByOracle[src]; ok {
			row("o:"+src, bc)
		}
	}
	if len(c.Errors) > 0 {
		var keys []string
		for ec := range c.Errors {
			keys = append(keys, string(ec))
		}
		sort.Strings(keys)
		b.WriteString("  oracle error classes:")
		for _, k := range keys {
			fmt.Fprintf(&b, " %s=%d", k, c.Errors[core.ErrClass(k)])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Feedback is the adaptive controller closing the loop from observed
// coverage back into the generator: between batches, Retarget computes
// a new qgen.Weights plane from the stream's cumulative coverage so the
// remaining statement budget flows toward under-explored, high-yield
// regions.
//
// The policy is proportional allocation over a per-bucket score
//
//	score = (1 + yieldBoost*NewFingerprints) / (1 + Hits)
//
// — a bucket that keeps producing *new* divergence fingerprints keeps
// its budget; a bucket that has been hammered without new yield decays;
// a bucket barely explored scores high on the 1/(1+Hits) term alone.
// Every bucket keeps a floor share of the base weight so coverage of a
// temporarily dry region can recover (and structural classes like txn
// keep exercising the rollback machinery). All arithmetic is
// deterministic, so an adaptive single-stream run remains exactly
// reproducible from its seed.
type Feedback struct {
	base qgen.Weights
	// YieldBoost scales the reward of a new divergence fingerprint
	// relative to one unexplored hit (default 50).
	YieldBoost int
}

// NewFeedback returns a controller anchored at the generator's starting
// weights.
func NewFeedback(base qgen.Weights) *Feedback {
	return &Feedback{base: base, YieldBoost: 50}
}

// Retarget computes the next Weights plane from cumulative coverage.
func (f *Feedback) Retarget(cov *Coverage) qgen.Weights {
	w := f.base
	retargetPlane(f.YieldBoost, qgen.Classes,
		f.base.ClassWeight, w.SetClassWeight,
		func(c qgen.Class) *BucketCoverage { return cov.ByClass[c] })
	retargetPlane(f.YieldBoost, qgen.Shapes,
		f.base.ShapeWeight, w.SetShapeWeight,
		func(s qgen.Shape) *BucketCoverage { return cov.ByShape[s] })
	retargetPlane(f.YieldBoost, qgen.BindModes,
		f.base.BindWeight, w.SetBindWeight,
		func(m qgen.BindMode) *BucketCoverage { return cov.ByBind[m] })
	return w
}

// retargetPlane applies the scoring/floor/redistribution policy to one
// weight plane (statement classes or SELECT shapes): the base mass is
// redistributed proportionally to each bucket's score, above a floor of
// a quarter of its base weight (min 1). Zero-base buckets — features
// the profile disabled — stay at zero.
func retargetPlane[K comparable](boost int, buckets []K, baseOf func(K) int, set func(K, int), covOf func(K) *BucketCoverage) {
	mass := 0
	scores := make([]float64, len(buckets))
	var total float64
	for i, k := range buckets {
		base := baseOf(k)
		mass += base
		if base == 0 {
			continue
		}
		b := covOf(k)
		if b == nil {
			b = &BucketCoverage{}
		}
		scores[i] = float64(1+boost*b.NewFingerprints) / float64(1+b.Hits)
		total += scores[i]
	}
	if total == 0 || mass == 0 {
		return
	}
	for i, k := range buckets {
		base := baseOf(k)
		if base == 0 {
			continue
		}
		floor := base / 4
		if floor < 1 {
			floor = 1
		}
		set(k, floor+int(float64(mass)*scores[i]/total))
	}
}
