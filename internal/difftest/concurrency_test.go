package difftest

import (
	"testing"

	"divsql/internal/dialect"
)

// Concurrent client streams share the four servers but work in disjoint
// table namespaces, so fault-free adjudication stays exact while the
// per-session execution path of every layer runs genuinely in parallel
// (this test is most valuable under -race, which CI enables).
func TestConcurrentStreamsFaultFree(t *testing.T) {
	cfg := DefaultConfig(11, 400)
	cfg.Streams = 4
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Divergences) != 0 {
		for _, d := range res.Divergences {
			t.Errorf("stream %d diverged on %s: [%s] %s (%s)", d.Stream, d.Server, d.Class.Type, d.SQL, d.Class.Detail)
		}
	}
	if res.Statements != 4*400 {
		t.Errorf("adjudicated %d statements, want %d", res.Statements, 4*400)
	}
}

// With faults armed, concurrent streams must still find the injected
// divergences; collateral crash observations from sibling streams are
// acceptable, but every divergence must name a real server.
func TestConcurrentStreamsCalibrated(t *testing.T) {
	cfg := CalibratedConfig(13, 700)
	cfg.Streams = 4
	cfg.Shrink = false
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, s := range dialect.AllServers {
		total += res.PerServer[s]
	}
	if total == 0 {
		t.Error("concurrent calibrated run found nothing")
	}
}
