package difftest

import (
	"strings"
	"testing"

	"divsql/internal/obs"
)

// TestTelemetryTracksRun checks the live counters agree with the run's
// own result accounting on a fault-free adaptive run.
func TestTelemetryTracksRun(t *testing.T) {
	tel := &Telemetry{}
	cfg := DefaultConfig(21, 200)
	cfg.Streams = 2
	cfg.Shrink = false
	cfg.Adaptive = true
	cfg.FeedbackBatch = 50
	cfg.Telemetry = tel

	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Divergences) != 0 {
		t.Fatalf("fault-free run diverged: %v", res.Divergences)
	}

	s := tel.Snapshot()
	if s.Statements != uint64(res.Statements) {
		t.Errorf("statements = %d, want %d", s.Statements, res.Statements)
	}
	if s.Execs != uint64(res.Execs) {
		t.Errorf("execs = %d, want %d", s.Execs, res.Execs)
	}
	if s.RawDivergences != 0 || s.DivergenceFingerprints != 0 {
		t.Errorf("divergence counters moved on a fault-free run: %+v", s)
	}
	if s.GeneratedFingerprints == 0 {
		t.Error("no coverage breadth recorded")
	}
	// Each stream retargets after every full batch except the last:
	// 200/50 - 1 = 3 per stream.
	if want := uint64(2 * 3); s.Retargets != want {
		t.Errorf("retargets = %d, want %d", s.Retargets, want)
	}
	if s.ActiveStreams != 0 {
		t.Errorf("active streams = %d after run end", s.ActiveStreams)
	}

	line := s.String()
	for _, want := range []string{"stmts", "retargets", "divergences 0 raw / 0 distinct"} {
		if !strings.Contains(line, want) {
			t.Errorf("summary line missing %q: %s", want, line)
		}
	}

	reg := obs.NewRegistry()
	reg.Register(tel.MetricsCollector())
	doc := reg.Render()
	for _, want := range []string{
		"divsql_hunt_statements_total 400",
		"divsql_hunt_feedback_retargets_total 6",
		"divsql_hunt_active_streams 0",
		"divsql_hunt_generated_fingerprints_total",
	} {
		if !strings.Contains(doc, want) {
			t.Errorf("hunt scrape missing %q\n%s", want, doc)
		}
	}
}

// TestTelemetrySeesDivergences checks the divergence counters move on a
// faulty run.
func TestTelemetrySeesDivergences(t *testing.T) {
	tel := &Telemetry{}
	cfg := CalibratedConfig(3, 400)
	cfg.Shrink = false
	cfg.Telemetry = tel
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := tel.Snapshot()
	if s.DivergenceFingerprints != uint64(len(res.Divergences)) {
		t.Errorf("distinct divergences = %d, want %d", s.DivergenceFingerprints, len(res.Divergences))
	}
	if s.RawDivergences != uint64(res.Raw) {
		t.Errorf("raw divergences = %d, want %d", s.RawDivergences, res.Raw)
	}
	if s.RawDivergences == 0 {
		t.Error("calibrated run recorded no divergences — fault set not armed?")
	}
}
