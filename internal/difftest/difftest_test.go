package difftest

import (
	"testing"

	"divsql/internal/dialect"
	"divsql/internal/fault"
	"divsql/internal/qgen"
	"divsql/internal/sql/ast"
)

// The generator's common profile stays inside the subset the four
// dialects implement identically to the oracle, so the fault-free
// configuration must adjudicate every statement without a divergence.
// (This is the CI smoke property: any hit here is a harness or engine
// bug, not a fault find.)
func TestFaultFreeZeroDivergences(t *testing.T) {
	res, err := Run(DefaultConfig(1, 2500))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Divergences) != 0 {
		for _, d := range res.Divergences {
			t.Errorf("unexpected divergence on %s: [%s] %s (%s)", d.Server, d.Class.Type, d.SQL, d.Class.Detail)
		}
	}
	if res.Statements != 2500 {
		t.Errorf("adjudicated %d statements, want 2500", res.Statements)
	}
}

// Same configuration, same seed: identical divergence sets.
func TestRunDeterminism(t *testing.T) {
	cfg := CalibratedConfig(7, 1200)
	cfg.Shrink = false
	key := func(r *Result) []string {
		var out []string
		for _, d := range r.Divergences {
			out = append(out, string(d.Server)+"|"+d.Fingerprint+"|"+d.SQL)
		}
		return out
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ka, kb := key(a), key(b)
	if len(ka) != len(kb) {
		t.Fatalf("runs found %d vs %d divergences", len(ka), len(kb))
	}
	for i := range ka {
		if ka[i] != kb[i] {
			t.Errorf("divergence %d differs:\n  a: %s\n  b: %s", i, ka[i], kb[i])
		}
	}
}

// The calibrated configuration must surface at least one deduplicated
// divergence on every fault-injected server, each with a shrunk,
// replayable report.
func TestCalibratedFindsDivergencesPerServer(t *testing.T) {
	cfg := CalibratedConfig(1, 5000)
	cfg.MaxReportsPerServer = 2
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range dialect.AllServers {
		if res.PerServer[s] == 0 {
			t.Errorf("no divergence found on %s", s)
		}
	}
	reports := 0
	for _, d := range res.Divergences {
		if d.Report == nil {
			continue
		}
		reports++
		if len(d.Report.Stream) == 0 || len(d.Report.Stream) > 25 {
			t.Errorf("%s/%s: shrunk stream has %d statements", d.Server, d.Class.Type, len(d.Report.Stream))
		}
		ok, err := Replay(d.Report)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Errorf("report on %s does not replay:\n%s", d.Server, d.Report.Render())
		}
	}
	if reports == 0 {
		t.Error("no shrunk reports were produced")
	}
	if out := res.Render(true); len(out) == 0 {
		t.Error("Render returned nothing")
	}
}

// A known injected divergence must shrink to a minimal stream: removing
// any single statement from the report must break reproduction.
func TestShrinkProducesMinimalStream(t *testing.T) {
	faults := []fault.Fault{{
		BugID:   "SYN-1",
		Server:  dialect.PG,
		Trigger: fault.Trigger{Table: "TSHRINK", Flag: ast.FlagSelect},
		Effect:  fault.Effect{Kind: fault.EffectMutateResult, Mutation: fault.MutDropLastRow},
	}}
	gen := qgen.CommonProfile(3)
	gen.TableNames = []string{"TSHRINK"}
	cfg := Config{Seed: 3, N: 600, Faults: faults, Shrink: true, MaxReportsPerServer: 1}
	cfg.Gen = &gen
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var rep *Report
	for _, d := range res.Divergences {
		if d.Server == dialect.PG && d.Report != nil {
			rep = d.Report
			break
		}
	}
	if rep == nil {
		t.Fatal("synthetic fault produced no shrunk report")
	}
	// The mutation needs a table, at least one row, and a SELECT: the
	// minimal stream is a handful of statements, not the whole history.
	if len(rep.Stream) > 6 {
		t.Errorf("stream not minimal: %d statements\n%s", len(rep.Stream), rep.Render())
	}
	ok, err := Replay(rep)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("shrunk stream does not replay:\n%s", rep.Render())
	}
	// 1-minimality: every remaining statement is necessary.
	shr := &shrinker{cfg: cfg, key: dedupKey{server: dialect.PG, fp: rep.Fingerprint}}
	for i := range rep.Stream {
		cand := make([]string, 0, len(rep.Stream)-1)
		cand = append(cand, rep.Stream[:i]...)
		cand = append(cand, rep.Stream[i+1:]...)
		if shr.reproduces(cand) {
			t.Errorf("statement %d (%s) is removable; stream not 1-minimal", i, rep.Stream[i])
		}
	}
}

// Divergences repeatedly triggered by the same fault region must
// collapse by fingerprint: raw occurrences exceed distinct records.
func TestDedupCollapsesRepeatedTriggers(t *testing.T) {
	faults := []fault.Fault{{
		BugID:   "SYN-2",
		Server:  dialect.MS,
		Trigger: fault.Trigger{Table: "TDEDUP", Flag: ast.FlagSelect},
		Effect:  fault.Effect{Kind: fault.EffectError, Message: "spurious failure"},
	}}
	gen := qgen.CommonProfile(5)
	gen.TableNames = []string{"TDEDUP"}
	cfg := Config{Seed: 5, N: 1500, Faults: faults, Shrink: false}
	cfg.Gen = &gen
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Divergences) == 0 {
		t.Fatal("synthetic fault never triggered")
	}
	if res.Raw <= len(res.Divergences) {
		t.Errorf("expected repeated triggers to collapse: %d raw vs %d distinct", res.Raw, len(res.Divergences))
	}
	for _, d := range res.Divergences {
		if d.Server != dialect.MS {
			t.Errorf("divergence attributed to %s; only MS carries the fault", d.Server)
		}
	}
}
