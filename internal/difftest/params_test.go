package difftest

import (
	"strings"
	"testing"

	"divsql/internal/qgen"
)

// The fault-free parameterized gate: safe bound values are BindRules
// identities on every server, so the common subset must agree with the
// oracle through the prepare/bind path exactly as it does inline.
func TestParamsFaultFreeAgrees(t *testing.T) {
	cfg := DefaultConfig(9, 1500)
	cfg.Params = true
	cfg.Shrink = false
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Divergences) != 0 {
		t.Fatalf("fault-free params run diverged:\n%s", res.Render(false))
	}
	pb := res.Coverage.ByBind[qgen.BindParam]
	if pb == nil || pb.Hits == 0 {
		t.Fatal("no bound statements generated")
	}
}

// The calibrated parameterized hunt must reach the bind-coercion fault
// surface: at least one divergence fingerprint carries the PARAM flag —
// a statement class inline-literal streams can never produce.
func TestParamsCalibratedFindsBindDivergences(t *testing.T) {
	cfg := CalibratedConfig(1, 3000)
	cfg.Streams = 1
	cfg.Shrink = false
	cfg.Params = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	paramFPs := 0
	for _, d := range res.Divergences {
		if strings.Contains(d.Fingerprint, string("PARAM")) {
			paramFPs++
		}
	}
	if paramFPs == 0 {
		t.Fatalf("no PARAM-class divergence fingerprints among %d", len(res.Divergences))
	}
	if pb := res.Coverage.ByBind[qgen.BindParam]; pb == nil || pb.Divergent == 0 {
		t.Errorf("bind coverage bucket recorded no divergences: %+v", res.Coverage.ByBind)
	}
}

// A shrunk report whose stream contains bound statements must replay —
// the encoded entries go back through prepare/bind on fresh servers.
func TestParamsShrunkReportReplays(t *testing.T) {
	if testing.Short() {
		t.Skip("shrinking in short mode")
	}
	cfg := CalibratedConfig(1, 1500)
	cfg.Streams = 1
	cfg.Params = true
	cfg.MaxReportsPerServer = 2
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	replayed := 0
	for _, d := range res.Divergences {
		if d.Report == nil || !strings.Contains(d.Fingerprint, "PARAM") {
			continue
		}
		ok, err := Replay(d.Report)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Errorf("bound report did not replay:\n%s", d.Report.Render())
		}
		replayed++
		if replayed >= 3 {
			break
		}
	}
	if replayed == 0 {
		t.Skip("no PARAM-class divergence got a shrunk report under the cap")
	}
}
