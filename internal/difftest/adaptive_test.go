package difftest

import (
	"strings"
	"testing"
	"time"

	"divsql/internal/qgen"
	"divsql/internal/sql/parser"
)

// A single-stream adaptive run is exactly reproducible: the feedback
// derives only from the stream's own deterministic observations, so
// same config, same divergence set.
func TestAdaptiveDeterminism(t *testing.T) {
	run := func() map[string]int {
		cfg := CalibratedConfig(7, 1500)
		cfg.Streams = 1
		cfg.Shrink = false
		cfg.Adaptive = true
		cfg.MaxRowsPerTable = 32
		cfg.FeedbackBatch = 250
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		out := make(map[string]int, len(res.Divergences))
		for _, d := range res.Divergences {
			out[string(d.Server)+"|"+d.Fingerprint] = d.Count
		}
		return out
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("calibrated adaptive run found nothing")
	}
	if len(a) != len(b) {
		t.Fatalf("adaptive runs disagree: %d vs %d divergences", len(a), len(b))
	}
	for k, n := range a {
		if b[k] != n {
			t.Fatalf("adaptive runs disagree on %s: %d vs %d", k, n, b[k])
		}
	}
}

// The tentpole claim: with the same seed and statement budget, the
// coverage-guided run reaches at least as many distinct divergence
// fingerprints as the fixed-weight baseline (in practice far more: the
// feedback pushes budget into regions still paying out). Deterministic
// per seed, so this is a stable regression gate, not a statistical one.
func TestAdaptiveReachesMoreFingerprints(t *testing.T) {
	base := CalibratedConfig(1, 3000)
	base.Shrink = false
	baseline, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	ad := CalibratedConfig(1, 3000)
	ad.Shrink = false
	ad.Adaptive = true
	ad.MaxRowsPerTable = 32
	adaptive, err := Run(ad)
	if err != nil {
		t.Fatal(err)
	}
	if len(adaptive.Divergences) < len(baseline.Divergences) {
		t.Fatalf("adaptive found %d fingerprints, baseline %d",
			len(adaptive.Divergences), len(baseline.Divergences))
	}
	t.Logf("fingerprints: adaptive=%d baseline=%d", len(adaptive.Divergences), len(baseline.Divergences))
}

// Every run exports its coverage signal: class/shape hit counts that
// sum to the statement budget, fingerprint breadth, and an oracle
// error-class histogram. The run report renders it.
func TestCoverageExported(t *testing.T) {
	cfg := DefaultConfig(3, 800)
	cfg.Streams = 2
	cfg.Shrink = false
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cov := res.Coverage
	if cov == nil {
		t.Fatal("no coverage exported")
	}
	if cov.Statements != 1600 {
		t.Fatalf("coverage saw %d statements, want 1600", cov.Statements)
	}
	sum := 0
	for _, b := range cov.ByClass {
		sum += b.Hits
	}
	if sum != 1600 {
		t.Fatalf("class hits sum to %d, want 1600", sum)
	}
	if cov.ByClass[qgen.ClassSelect] == nil || cov.ByClass[qgen.ClassSelect].Hits == 0 {
		t.Fatal("no SELECT coverage recorded")
	}
	if cov.GeneratedFingerprints() == 0 {
		t.Fatal("no generated-fingerprint breadth recorded")
	}
	if len(cov.Errors) == 0 {
		t.Fatal("no oracle error-class histogram recorded")
	}
	if !strings.Contains(res.Render(false), "coverage:") {
		t.Fatal("run report does not include the coverage summary")
	}
}

// The feedback policy in isolation: a bucket hammered without new
// fingerprints loses budget to an under-explored bucket and to one that
// still yields new fingerprints; disabled buckets stay disabled; floors
// keep every enabled bucket alive.
func TestFeedbackRetargeting(t *testing.T) {
	base := qgen.Weights{DDL: 0, Insert: 30, Update: 30, Delete: 30, Select: 10, Txn: 10}
	base.SimpleSelect, base.JoinSelect, base.GroupSelect, base.UnionSelect, base.StarSelect, base.PointSelect, base.RangeSelect = qgen.DefaultShapeWeights()
	fb := NewFeedback(base)
	cov := NewCoverage()
	cov.ByClass = map[qgen.Class]*BucketCoverage{
		qgen.ClassInsert: {Hits: 1000, NewFingerprints: 0},  // hammered, dry
		qgen.ClassUpdate: {Hits: 10, NewFingerprints: 0},    // under-explored
		qgen.ClassDelete: {Hits: 1000, NewFingerprints: 40}, // still paying out
	}
	w := fb.Retarget(cov)
	if w.DDL != 0 {
		t.Fatalf("disabled class re-enabled: DDL=%d", w.DDL)
	}
	if w.Insert >= w.Update {
		t.Fatalf("hammered-dry insert (%d) should fall below under-explored update (%d)", w.Insert, w.Update)
	}
	if w.Insert >= w.Delete {
		t.Fatalf("hammered-dry insert (%d) should fall below still-yielding delete (%d)", w.Insert, w.Delete)
	}
	for _, c := range []struct {
		name string
		v    int
	}{{"insert", w.Insert}, {"update", w.Update}, {"delete", w.Delete}, {"select", w.Select}, {"txn", w.Txn}} {
		if c.v < 1 {
			t.Fatalf("enabled class %s starved to %d; floors must keep it alive", c.name, c.v)
		}
	}
}

// The cardinality bound is what keeps deep runs affordable: with the
// cap in place, adjudicated cost per statement stays ~flat as the
// stream deepens (the regression this test guards), instead of growing
// with table size. The fault-free configuration isolates the
// generate-execute-adjudicate path; the threshold is generous to stay
// robust on noisy CI hosts.
func TestBoundedCostPerStatementStaysFlat(t *testing.T) {
	if testing.Short() {
		t.Skip("timing regression; skipped under -short")
	}
	perStmt := func(n int) float64 {
		cfg := DefaultConfig(2, n)
		cfg.Streams = 1
		cfg.Shrink = false
		cfg.Adaptive = true
		cfg.MaxRowsPerTable = 64
		start := time.Now()
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Divergences) != 0 {
			t.Fatalf("fault-free run diverged: %s", res.Render(false))
		}
		return float64(time.Since(start).Microseconds()) / float64(n)
	}
	perStmt(500) // warm up allocator and caches
	shallow := perStmt(2000)
	deep := perStmt(8000)
	if deep > 3*shallow {
		t.Fatalf("per-statement cost grew from %.0fus to %.0fus over a 4x deeper run; cardinality bound is not holding", shallow, deep)
	}
	t.Logf("per-statement cost: %.0fus at n=2000, %.0fus at n=8000", shallow, deep)
}

// Adaptive runs still honor every statement's replayability contract:
// whatever the retargeted generator emits must parse (the shrinker and
// reports re-parse streams from text).
func TestAdaptiveStreamStillParses(t *testing.T) {
	cfg := CalibratedConfig(13, 600)
	cfg.Streams = 1
	cfg.Adaptive = true
	cfg.MaxRowsPerTable = 16
	cfg.FeedbackBatch = 100
	cfg.Shrink = true
	cfg.MaxReportsPerServer = 2
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range res.Divergences {
		if d.Report == nil {
			continue
		}
		for _, sql := range d.Report.Stream {
			if _, err := parser.Parse(sql); err != nil {
				t.Fatalf("shrunk stream statement does not parse: %q: %v", sql, err)
			}
		}
		ok, err := Replay(d.Report)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("shrunk report from adaptive run does not replay: %s", d.Report.Render())
		}
	}
}
