package difftest

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"divsql/internal/obs"
)

// Telemetry is the live counter set of hunt runs: what a long adaptive
// campaign looks like from the outside while it is still running. All
// hot-path recording is atomic (the per-statement cost is a handful of
// uncontended adds); snapshots and rate computation take a small lock.
//
// One Telemetry may span several Run calls — the counters are
// cumulative over the process, which is what both consumers want:
// divfuzz's periodic -metrics-every stderr summaries, and divsqld's
// hunt collector (zeros while no hunt has run).
type Telemetry struct {
	statements atomic.Uint64 // generated statements adjudicated
	execs      atomic.Uint64 // statement executions across all endpoints
	raw        atomic.Uint64 // pre-dedup divergent executions
	divFPs     atomic.Uint64 // distinct (server, fingerprint) divergences
	genFPs     atomic.Uint64 // generated-fingerprint breadth (summed per stream)
	retargets  atomic.Uint64 // adaptive feedback retargetings
	active     atomic.Int64  // currently running streams

	metaChecks   atomic.Uint64 // metamorphic oracle relations evaluated
	metaFindings atomic.Uint64 // metamorphic oracle verdicts that convicted

	mu       sync.Mutex
	prevStmt uint64
	prevAt   time.Time
}

// shared is the process-global telemetry Run falls back to when the
// Config carries none.
var shared = &Telemetry{}

// SharedTelemetry returns the process-global hunt telemetry. Runs
// without an explicit Config.Telemetry record here, so a divsqld
// process that also hosts hunts (or none at all) can always register
// the hunt collector.
func SharedTelemetry() *Telemetry { return shared }

// Snapshot is one consistent read of the counters, with the statement
// rate over the window since the previous Snapshot call.
type Snapshot struct {
	Statements             uint64
	Execs                  uint64
	RawDivergences         uint64
	DivergenceFingerprints uint64
	GeneratedFingerprints  uint64
	Retargets              uint64
	MetamorphicChecks      uint64
	MetamorphicFindings    uint64
	ActiveStreams          int
	StmtsPerSec            float64 // 0 on the first snapshot of a window
}

// Snapshot reads the counters and computes the statement rate since the
// previous call (the -metrics-every ticker calls it once per interval,
// so the rate is per-interval, not lifetime-averaged).
func (t *Telemetry) Snapshot() Snapshot {
	now := time.Now()
	s := Snapshot{
		Statements:             t.statements.Load(),
		Execs:                  t.execs.Load(),
		RawDivergences:         t.raw.Load(),
		DivergenceFingerprints: t.divFPs.Load(),
		GeneratedFingerprints:  t.genFPs.Load(),
		Retargets:              t.retargets.Load(),
		MetamorphicChecks:      t.metaChecks.Load(),
		MetamorphicFindings:    t.metaFindings.Load(),
		ActiveStreams:          int(t.active.Load()),
	}
	t.mu.Lock()
	if !t.prevAt.IsZero() {
		if dt := now.Sub(t.prevAt).Seconds(); dt > 0 {
			s.StmtsPerSec = float64(s.Statements-t.prevStmt) / dt
		}
	}
	t.prevStmt = s.Statements
	t.prevAt = now
	t.mu.Unlock()
	return s
}

// String renders the snapshot as the one-line stderr summary divfuzz
// prints between batches.
func (s Snapshot) String() string {
	return fmt.Sprintf(
		"hunt: %d stmts (%.0f/s), %d execs, coverage %d fps, divergences %d raw / %d distinct, %d retargets, %d streams",
		s.Statements, s.StmtsPerSec, s.Execs, s.GeneratedFingerprints,
		s.RawDivergences, s.DivergenceFingerprints, s.Retargets, s.ActiveStreams)
}

// MetricsCollector returns the hunt telemetry's obs collector
// (divsql_hunt_* families). Rates are left to the scraper — the
// counters carry everything rate() needs.
func (t *Telemetry) MetricsCollector() obs.Collector {
	return obs.NewCollector("hunt", func(f *obs.Feed) {
		f.Count("divsql_hunt_statements_total",
			"Generated statements adjudicated across hunt runs.", t.statements.Load())
		f.Count("divsql_hunt_execs_total",
			"Statement executions across all endpoints.", t.execs.Load())
		f.Count("divsql_hunt_raw_divergences_total",
			"Pre-dedup divergent statement executions.", t.raw.Load())
		f.Count("divsql_hunt_divergence_fingerprints_total",
			"Distinct (server, fingerprint) divergences recorded.", t.divFPs.Load())
		f.Count("divsql_hunt_generated_fingerprints_total",
			"Generated-fingerprint coverage breadth (summed per stream).", t.genFPs.Load())
		f.Count("divsql_hunt_feedback_retargets_total",
			"Adaptive feedback retargetings of generator weights.", t.retargets.Load())
		f.Count("divsql_hunt_metamorphic_checks_total",
			"Metamorphic oracle relations (TLP/NoREC/CERT) evaluated.", t.metaChecks.Load())
		f.Count("divsql_hunt_metamorphic_findings_total",
			"Metamorphic oracle verdicts that convicted an endpoint.", t.metaFindings.Load())
		f.Gauge("divsql_hunt_active_streams",
			"Hunt streams currently running.", float64(t.active.Load()))
	})
}

// streamStarted/streamDone bracket one runStream goroutine.
func (t *Telemetry) streamStarted() { t.active.Add(1) }
func (t *Telemetry) streamDone()    { t.active.Add(-1) }
