package difftest

import "testing"

// TestShardedSmokeDivergenceFree is the sharded analogue of the
// fault-free differential gate: generated streams through the shard
// router over fault-free diverse replica sets must agree with the
// oracle on every statement, and the workload must actually spread
// across more than one shard.
func TestShardedSmokeDivergenceFree(t *testing.T) {
	res, err := RunSharded(ShardedConfig{Seed: 1, N: 250, Streams: 4, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Statements != 1000 {
		t.Errorf("statements = %d, want 1000", res.Statements)
	}
	for _, d := range res.Divergences {
		t.Errorf("stream %d stmt %d %q: %s", d.Stream, d.Index, d.SQL, d.Detail)
	}
	busy := 0
	for _, n := range res.PerShard {
		if n > 0 {
			busy++
		}
	}
	if busy < 2 {
		t.Errorf("per-shard statement counts %v: want at least 2 busy shards", res.PerShard)
	}
}
