package difftest

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// metamorphicKeys flattens a run's divergences into comparable strings.
func metamorphicKeys(res *Result) []string {
	var keys []string
	for _, d := range res.Divergences {
		keys = append(keys, fmt.Sprintf("%s|%s|%s|%d", d.Server, d.Oracle, d.Fingerprint, d.Count))
	}
	return keys
}

// TestFaultFreeMetamorphicGate is the in-tree twin of the CI smoke
// steps: with no faults armed, the full oracle stack (TLP, NoREC, CERT
// layered over planvariants, params and isolation) must stay
// divergence-free at two seeds — any finding is a false positive in an
// oracle or a real engine bug, and either must fail loudly.
func TestFaultFreeMetamorphicGate(t *testing.T) {
	for _, seed := range []int64{17, 19} {
		cfg := DefaultConfig(seed, 1500)
		cfg.Shrink = false
		cfg.TLP, cfg.NoREC, cfg.CERT = true, true, true
		cfg.PlanVariants, cfg.Params, cfg.Isolation = true, true, true
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range res.Divergences {
			t.Errorf("seed %d: fault-free divergence on %s <%s>: %s (%s)",
				seed, d.Server, d.Oracle, d.SQL, d.Class.Detail)
		}
		// The gate only means something if the oracles actually ran.
		for _, src := range VerdictSources {
			bc, ok := res.Coverage.ByOracle[src]
			if !ok || bc.Hits == 0 {
				t.Errorf("seed %d: verdict source %q never applied", seed, src)
			}
		}
	}
}

// TestMetamorphicHuntDeterministicAndYields runs the same calibrated
// metamorphic hunt twice and asserts (a) the verdict stream is
// seed-deterministic — identical (server, oracle, fingerprint, count)
// sets — and (b) the calibrated fault set yields at least one
// metamorphic-class fingerprint per armed oracle, the acceptance signal
// that the oracles can see the corpus's silent result mutations.
func TestMetamorphicHuntDeterministicAndYields(t *testing.T) {
	run := func() *Result {
		cfg := CalibratedConfig(42, 2500)
		cfg.Shrink = false
		cfg.TLP, cfg.NoREC, cfg.CERT = true, true, true
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	ka, kb := metamorphicKeys(a), metamorphicKeys(b)
	if !reflect.DeepEqual(ka, kb) {
		t.Fatalf("verdict stream not seed-deterministic:\nrun1: %d records\nrun2: %d records", len(ka), len(kb))
	}
	perOracle := map[string]int{}
	for _, d := range a.Divergences {
		perOracle[d.Oracle]++
	}
	for _, o := range []string{"tlp", "norec", "cert"} {
		if perOracle[o] == 0 {
			t.Errorf("calibrated hunt yielded no %s-class fingerprints (per-oracle: %v)", o, perOracle)
		}
		// Divergent counts the oracle's convictions; NewFingerprints stays
		// 0 here because the differential vote convicts the same mutated
		// statements first and statement-fingerprint novelty is shared
		// across verdict planes.
		if bc := a.Coverage.ByOracle[o]; bc == nil || bc.Divergent == 0 {
			t.Errorf("ByOracle coverage shows no convictions for %s", o)
		}
	}
}

// TestRegressExportLoadReplay exercises the corpus lifecycle end to
// end: a calibrated hunt with RegressDir set exports its shrunk reports
// as case files; LoadCases reads them back; every case replays; and a
// second export of the same run leaves the files untouched (dedup by
// verdict fingerprint).
func TestRegressExportLoadReplay(t *testing.T) {
	dir := t.TempDir()
	cfg := CalibratedConfig(42, 2000)
	cfg.TLP, cfg.NoREC, cfg.CERT = true, true, true
	// The per-server shrink cap fills in record order and the
	// differential vote records before the metamorphic ones on the same
	// mutated statement, so leave enough room for oracle-tagged reports.
	cfg.MaxReportsPerServer = 8
	cfg.RegressDir = dir
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cases, err := LoadCases(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(cases) == 0 {
		t.Fatal("calibrated hunt exported no regress cases")
	}
	metamorphic := 0
	for _, c := range cases {
		if c.Oracle != srcDifferential && c.Oracle != srcPlanVariants {
			metamorphic++
		}
	}
	if metamorphic == 0 {
		t.Errorf("no metamorphic-verdict case among %d exported", len(cases))
	}
	for i, c := range cases {
		if i >= 8 {
			break // replay cost cap; the regress/ gate replays everything committed
		}
		ok, err := ReplayCase(c)
		if err != nil {
			t.Fatalf("case %s: %v", c.Name, err)
		}
		if !ok {
			t.Errorf("case %s does not reproduce right after export", c.Name)
		}
	}
	// Dedup: re-exporting the same reports must not rewrite files.
	stamp := map[string]int64{}
	for _, c := range cases {
		fi, err := os.Stat(filepath.Join(dir, c.Name+".json"))
		if err != nil {
			t.Fatal(err)
		}
		stamp[c.Name] = fi.Size()
	}
	for _, d := range res.Divergences {
		if d.Report != nil {
			if _, err := ExportCase(dir, d.Report); err != nil {
				t.Fatal(err)
			}
		}
	}
	after, err := LoadCases(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(cases) {
		t.Errorf("re-export changed corpus size: %d -> %d", len(cases), len(after))
	}
}
