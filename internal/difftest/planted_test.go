package difftest

import (
	"testing"

	"divsql/internal/dialect"
	"divsql/internal/engine"
	"divsql/internal/metamorph"
	"divsql/internal/server"
	"divsql/internal/sql/ast"
	"divsql/internal/sql/parser"
	"divsql/internal/study"
)

// The planted-bug sensitivity tests demonstrate the paper's correlated-
// failure blind spot and the metamorphic oracles' answer to it: a
// defect planted in the shared engine (test-only hooks in
// internal/engine/planted.go) produces the same wrong answer on all
// four servers AND the pristine oracle, so pairwise differential
// adjudication sees perfect agreement — yet a self-check oracle, which
// re-derives the answer from rewrites of the same statement on the same
// endpoint, convicts it. Each test first proves the blindness (every
// server-vs-oracle pair classifies as no-failure) and then the
// sensitivity (the named oracles find it).

// plantedStream is the shared fixture: an indexed table with a NULL row
// so both range-scan and three-valued-logic defects have something to
// bite on.
var plantedStream = []string{
	"CREATE TABLE TPLANT (C1 INT PRIMARY KEY, C2 INT)",
	"CREATE INDEX IPLANT ON TPLANT (C2)",
	"INSERT INTO TPLANT (C1, C2) VALUES (1, 10), (2, 20), (3, 30), (4, 40), (5, NULL)",
}

// runPlanted executes the fixture plus the probe statement on every
// server and the oracle, asserts the differential vote is blind (all
// pairs no-failure), and returns the oracles' findings on the oracle
// endpoint's base result.
func runPlanted(t *testing.T, probe string) []metamorph.Finding {
	t.Helper()
	stream := append(append([]string(nil), plantedStream...), probe)

	orc := server.NewOracle()
	oOut := study.RunSource(orc, study.SliceSource(stream))
	last := len(stream) - 1
	if oOut[last].Err != nil {
		t.Fatalf("probe failed on oracle: %v", oOut[last].Err)
	}
	for _, name := range dialect.AllServers {
		srv, err := server.New(name, nil)
		if err != nil {
			t.Fatal(err)
		}
		sOut := study.RunSource(srv, study.SliceSource(stream))
		for i := range stream {
			if cls := classifySQL(sOut[i].SQL, sOut[i], oOut[i]); cls.IsFailure() {
				t.Fatalf("differential adjudication saw the planted defect on %s stmt %d (%s): %s — the blind spot demonstration is void",
					name, i, stream[i], cls.Detail)
			}
		}
	}

	// The differential vote saw nothing. Now the self-checks, against the
	// same oracle endpoint that just agreed with everyone.
	sess := orc.NewSession()
	defer sess.Close()
	st, err := parser.Parse(probe)
	if err != nil {
		t.Fatal(err)
	}
	_, findings := metamorph.Check(sess, st.(*ast.Select), nil, oOut[last].Res, metamorph.Oracles)
	return findings
}

func foundBy(findings []metamorph.Finding, o metamorph.Oracle) bool {
	for _, f := range findings {
		if f.Oracle == o {
			return true
		}
	}
	return false
}

// TestPlantedRangeBoundDefect plants the inclusive-upper-bound
// off-by-one in the index range scan (the compiled access path treats
// `<=` as `<`). Every endpoint shares the defective scan, so the
// differential vote is unanimous-and-wrong; NoREC's forced full-scan
// re-evaluation and CERT's full-scan cardinality restriction both
// convict it.
func TestPlantedRangeBoundDefect(t *testing.T) {
	engine.PlantRangeBoundDefect(true)
	defer engine.PlantRangeBoundDefect(false)

	findings := runPlanted(t, "SELECT C1 AS X1 FROM TPLANT WHERE C1 <= 3")
	if !foundBy(findings, metamorph.NoREC) {
		t.Errorf("NoREC did not catch the planted range-bound defect; findings: %v", findings)
	}
	if !foundBy(findings, metamorph.CERT) {
		t.Errorf("CERT did not catch the planted range-bound defect; findings: %v", findings)
	}
}

// TestPlantedNotNullDefect plants the three-valued-logic defect (NOT of
// UNKNOWN wrongly evaluates TRUE). Again every endpoint shares it, so
// the differential vote is blind; TLP convicts it because the NOT-
// partition and the IS NULL-partition both claim the NULL rows, so the
// partition union no longer reassembles the unfiltered result.
func TestPlantedNotNullDefect(t *testing.T) {
	engine.PlantNotNullDefect(true)
	defer engine.PlantNotNullDefect(false)

	findings := runPlanted(t, "SELECT C1 AS X1 FROM TPLANT WHERE (C2 > 15)")
	if !foundBy(findings, metamorph.TLP) {
		t.Errorf("TLP did not catch the planted NOT-NULL defect; findings: %v", findings)
	}
}

// TestPlantedDefectsOffAreClean guards the hooks themselves: with both
// defects disarmed the same probes must pass every oracle, so the
// sensitivity tests above prove detection of the defect, not a standing
// false positive in the oracles.
func TestPlantedDefectsOffAreClean(t *testing.T) {
	for _, probe := range []string{
		"SELECT C1 AS X1 FROM TPLANT WHERE C1 <= 3",
		"SELECT C1 AS X1 FROM TPLANT WHERE (C2 > 15)",
	} {
		if findings := runPlanted(t, probe); len(findings) > 0 {
			t.Errorf("oracles convicted a clean engine on %q: %v", probe, findings)
		}
	}
}
