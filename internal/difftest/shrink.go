package difftest

import (
	"errors"
	"fmt"
	"strings"

	"divsql/internal/core"
	"divsql/internal/dialect"
	"divsql/internal/engine"
	"divsql/internal/metamorph"
	"divsql/internal/server"
	"divsql/internal/sql/ast"
	"divsql/internal/sql/parser"
	"divsql/internal/study"
)

// maxShrinkReplays bounds the replay budget of one shrink: greedy
// elision is quadratic in the worst case, and a report that is merely
// small is still useful.
const maxShrinkReplays = 400

// shrinkAndReport minimizes the statement history behind one divergence
// and packages it as a self-contained, replayable report. The shrink is
// semantic, not positional: a candidate list survives when replaying it
// on a fresh server/oracle pair still produces a divergence with the
// original (server, fingerprint) key.
func shrinkAndReport(cfg Config, key dedupKey, history []string) *Report {
	shr := &shrinker{cfg: cfg, key: key}
	if !shr.reproduces(history) {
		// Not reproducible from this stream's history alone (concurrent
		// streams can observe a crash another stream triggered). No
		// minimal repro exists in this stream; report nothing.
		return nil
	}

	// Pass 1: dependency slice — keep only statements whose referenced
	// tables reach the trigger statement's tables (plus transaction
	// control). This collapses the quadratic elision to the relevant
	// tail. Fall back to the full history when slicing breaks repro.
	sliced := dependencySlice(history)
	if !shr.reproduces(sliced) {
		sliced = history
	}

	// Pass 2: greedy statement elision to a fixed point (budgeted).
	min := shr.elide(sliced)
	if key.src != srcDifferential {
		return buildSelfCheckReport(cfg, key, min)
	}
	return buildReport(cfg, key, min)
}

type shrinker struct {
	cfg     Config
	key     dedupKey
	replays int

	// srv/orc are built once and Reset between probes: a shrink replays
	// hundreds of candidate streams, and rebuilding the server (dialect
	// tables, fault registry) per probe dominated the shrink budget.
	srv *server.Server
	orc *server.Server
}

// elide removes statements whose absence preserves the divergence,
// ddmin-style: chunks from half the stream down to single statements,
// scanning backwards (later statements depend on earlier ones, so
// removing from the back converges faster). The final single-statement
// passes run to a fixed point, so the result is 1-minimal unless the
// replay budget runs out first.
func (s *shrinker) elide(stmts []string) []string {
	cur := append([]string(nil), stmts...)
	chunk := len(cur) / 2
	if chunk < 1 {
		chunk = 1
	}
	for {
		changed := false
		for start := len(cur) - chunk; start > -chunk; start -= chunk {
			if s.replays >= maxShrinkReplays {
				return cur
			}
			lo, hi := start, start+chunk
			if lo < 0 {
				lo = 0
			}
			if hi > len(cur) || lo >= hi {
				continue
			}
			cand := make([]string, 0, len(cur)-(hi-lo))
			cand = append(cand, cur[:lo]...)
			cand = append(cand, cur[hi:]...)
			if s.reproduces(cand) {
				cur = cand
				changed = true
			}
		}
		if chunk > 1 {
			chunk /= 2
			continue
		}
		if !changed {
			return cur
		}
	}
}

// reproduces replays the candidate stream on a reset endpoint and
// checks whether the shrinker's divergence key still fires: for the
// differential key, a server-vs-oracle pair is adjudicated statement by
// statement; for a self-check key (planvariants or a metamorphic
// oracle), the convicted endpoint alone replays the stream and re-runs
// the verdict source on each answered matching SELECT.
func (s *shrinker) reproduces(stmts []string) bool {
	s.replays++
	if s.srv == nil {
		if s.srv = selfCheckEndpoint(s.cfg, s.key.server); s.srv == nil {
			return false
		}
		s.orc = server.NewOracle()
	}
	s.srv.Reset()
	if s.key.src != srcDifferential {
		idx, _, _ := selfCheckScanOn(s.srv, s.key, stmts)
		return idx >= 0
	}
	s.orc.Reset()
	sOut := study.RunSource(s.srv, study.SliceSource(stmts))
	oOut := study.RunSource(s.orc, study.SliceSource(stmts))
	return divergesWith(s.key, sOut, oOut) >= 0
}

// selfCheckEndpoint builds the endpoint a self-check verdict convicted:
// the pristine reference engine when the key names the oracle (the
// planvariants gate and the oracle-side metamorphic checks record
// against it), otherwise the named server under the run's fault and
// stress configuration.
func selfCheckEndpoint(cfg Config, name dialect.ServerName) *server.Server {
	if name == server.OracleName {
		return server.NewOracle()
	}
	srv, err := server.New(name, cfg.Faults)
	if err != nil {
		return nil
	}
	srv.SetStress(cfg.Stress)
	return srv
}

// selfCheckScanOn replays the stream through one session of srv and
// re-runs the key's verdict source (checkPlanVariants or the single
// armed metamorph oracle) on every answered, non-sequence-advancing
// SELECT carrying the key's fingerprint. It returns the first
// convicting statement index, its classification, and the endpoint's
// base-result summary; idx is -1 when nothing convicts. The caller owns
// srv's Reset lifecycle.
func selfCheckScanOn(srv *server.Server, key dedupKey, stmts []string) (int, core.Classification, string) {
	sess := srv.NewSession()
	defer sess.Close()
	for i, entry := range stmts {
		sql, args, _ := core.DecodeBound(entry)
		st, perr := parser.Parse(sql)
		var res *engine.Result
		var err error
		if len(args) == 0 {
			res, _, err = sess.Exec(sql)
		} else {
			res, _, err = sess.ExecArgs(sql, args...)
		}
		if errors.Is(err, server.ErrCrashed) {
			srv.Restart()
			continue
		}
		if perr != nil || err != nil || st == nil {
			continue
		}
		sel, isSel := st.(*ast.Select)
		if !isSel || ast.FingerprintOf(st).String() != key.fp || srv.SelectAdvancesSequences(sel) {
			continue
		}
		switch key.src {
		case srcPlanVariants:
			if cls := checkPlanVariants(sess, sel, args, server.StmtOutcome{SQL: entry, Res: res}); cls.IsFailure() {
				return i, cls, resultSummary(server.StmtOutcome{Res: res})
			}
		default:
			_, findings := metamorph.Check(sess, sel, args, res, []metamorph.Oracle{metamorph.Oracle(key.src)})
			if len(findings) > 0 {
				cls := core.Classification{Status: core.StatusFailure, Type: core.IncorrectResult, Detail: findings[0].Detail}
				return i, cls, resultSummary(server.StmtOutcome{Res: res})
			}
		}
	}
	return -1, core.Classification{}, ""
}

// divergesWith scans paired outcomes for a divergence whose triggering
// statement carries the key's fingerprint; it returns the statement
// index or -1.
func divergesWith(key dedupKey, sOut, oOut []server.StmtOutcome) int {
	for i := range sOut {
		if i >= len(oOut) {
			break
		}
		cls := classifySQL(sOut[i].SQL, sOut[i], oOut[i])
		if !cls.IsFailure() {
			continue
		}
		st, err := parser.Parse(sOut[i].SQL)
		if err != nil {
			continue
		}
		if ast.FingerprintOf(st).String() == key.fp {
			return i
		}
	}
	return -1
}

// dependencySlice keeps the statements whose table sets transitively
// reach the final (trigger) statement's tables, plus transaction
// control. Statements over unrelated tables cannot influence the
// divergence under the engine's disjoint-rows isolation contract.
func dependencySlice(history []string) []string {
	if len(history) == 0 {
		return history
	}
	parsed := make([]ast.Statement, len(history))
	for i, sql := range history {
		parsed[i], _ = parser.Parse(sql)
	}
	needed := map[string]bool{}
	last := parsed[len(history)-1]
	if last == nil {
		return history
	}
	for t := range ast.Tables(last) {
		needed[t] = true
	}
	keep := make([]bool, len(history))
	keep[len(history)-1] = true
	for i := len(history) - 2; i >= 0; i-- {
		st := parsed[i]
		if st == nil {
			keep[i] = true
			continue
		}
		switch st.(type) {
		case *ast.Begin, *ast.Commit, *ast.Rollback:
			keep[i] = true
			continue
		}
		tabs := ast.Tables(st)
		hit := false
		for t := range tabs {
			if needed[t] {
				hit = true
				break
			}
		}
		// Name-bearing DDL without table references (DROP INDEX etc.)
		// stays only if its name matches a needed object.
		if !hit {
			if name := ddlObjectName(st); name != "" && needed[strings.ToUpper(name)] {
				hit = true
			}
		}
		if hit {
			keep[i] = true
			for t := range tabs {
				needed[t] = true
			}
		}
	}
	out := make([]string, 0, len(history))
	for i, k := range keep {
		if k {
			out = append(out, history[i])
		}
	}
	return out
}

// ddlObjectName names DDL statements whose target is not a table
// reference (so ast.Tables misses it).
func ddlObjectName(st ast.Statement) string {
	switch x := st.(type) {
	case *ast.CreateIndex:
		return x.Table
	case *ast.CreateSequence:
		return x.Name
	case *ast.DropSequence:
		return x.Name
	}
	return ""
}

// Replay re-executes a report's statement stream (same faults and
// stress setting as the original run) and reports whether the recorded
// divergence reproduces: differential reports replay on a fresh
// server/oracle pair, self-check reports (Oracle non-empty) replay on
// the convicted endpoint alone and re-run the recorded verdict source.
func Replay(r *Report) (bool, error) {
	key := dedupKey{server: r.Server, fp: r.Fingerprint, src: r.Oracle}
	cfg := Config{Seed: r.Seed, Faults: r.Faults, Stress: r.Stress}
	if r.Oracle != srcDifferential {
		srv := selfCheckEndpoint(cfg, r.Server)
		if srv == nil {
			return false, fmt.Errorf("unknown endpoint %q", r.Server)
		}
		idx, _, _ := selfCheckScanOn(srv, key, r.Stream)
		return idx >= 0, nil
	}
	srv, err := server.New(r.Server, r.Faults)
	if err != nil {
		return false, err
	}
	srv.SetStress(r.Stress)
	orc := server.NewOracle()
	sOut := study.RunSource(srv, study.SliceSource(r.Stream))
	oOut := study.RunSource(orc, study.SliceSource(r.Stream))
	return divergesWith(key, sOut, oOut) >= 0, nil
}

// behaviorOf summarizes one endpoint's outcome on the trigger statement.
func behaviorOf(out server.StmtOutcome) string {
	switch {
	case out.Crashed:
		return "engine crash"
	case out.Err != nil:
		return "error: " + out.Err.Error()
	case out.Res == nil:
		return "no result"
	default:
		return resultSummary(out)
	}
}

// buildReport replays the minimal stream on every server plus the
// oracle, recording each one's observed behavior on the trigger
// statement — the report is self-contained: schema, data, statements
// and per-server behavior.
func buildReport(cfg Config, key dedupKey, stream []string) *Report {
	r := &Report{
		Server:      key.server,
		Fingerprint: key.fp,
		Seed:        cfg.Seed,
		Faults:      cfg.Faults,
		Stress:      cfg.Stress,
		Stream:      append([]string(nil), stream...),
		Behavior:    make(map[dialect.ServerName]string),
	}
	orc := server.NewOracle()
	oOut := study.RunSource(orc, study.SliceSource(stream))

	// Locate the trigger on the divergent server first, then record what
	// every server does on that same statement.
	r.TriggerIndex = len(stream) - 1
	if srv, err := server.New(key.server, cfg.Faults); err == nil {
		srv.SetStress(cfg.Stress)
		sOut := study.RunSource(srv, study.SliceSource(stream))
		if idx := divergesWith(key, sOut, oOut); idx >= 0 {
			r.TriggerIndex = idx
			r.Class = classifySQL(sOut[idx].SQL, sOut[idx], oOut[idx])
		}
	}
	r.Trigger = stream[r.TriggerIndex]
	if r.TriggerIndex < len(oOut) {
		r.OracleBehavior = behaviorOf(oOut[r.TriggerIndex])
	}
	for _, name := range dialect.AllServers {
		srv, err := server.New(name, cfg.Faults)
		if err != nil {
			continue
		}
		srv.SetStress(cfg.Stress)
		sOut := study.RunSource(srv, study.SliceSource(stream))
		switch {
		case r.TriggerIndex < len(sOut):
			r.Behavior[name] = behaviorOf(sOut[r.TriggerIndex])
		case len(sOut) > 0 && sOut[len(sOut)-1].Crashed:
			r.Behavior[name] = "engine crash (before trigger)"
		default:
			r.Behavior[name] = "no outcome"
		}
	}
	return r
}

// buildSelfCheckReport packages a self-check divergence: the verdict
// came from rewriting one endpoint's own statement, so the report
// records that endpoint's behavior and the violated relation — no
// cross-server vote is involved and no other server's behavior is
// meaningful.
func buildSelfCheckReport(cfg Config, key dedupKey, stream []string) *Report {
	r := &Report{
		Server:      key.server,
		Fingerprint: key.fp,
		Oracle:      key.src,
		Seed:        cfg.Seed,
		Faults:      cfg.Faults,
		Stress:      cfg.Stress,
		Stream:      append([]string(nil), stream...),
		Behavior:    make(map[dialect.ServerName]string),
	}
	r.TriggerIndex = len(stream) - 1
	if srv := selfCheckEndpoint(cfg, key.server); srv != nil {
		if idx, cls, beh := selfCheckScanOn(srv, key, stream); idx >= 0 {
			r.TriggerIndex = idx
			r.Class = cls
			r.Behavior[key.server] = beh
		}
	}
	r.Trigger = stream[r.TriggerIndex]
	r.OracleBehavior = "self-check relation violated (" + key.src + ")"
	return r
}
