package difftest

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"divsql/internal/core"
	"divsql/internal/dialect"
	"divsql/internal/fault"
	"divsql/internal/sql/ast"
	"divsql/internal/sql/parser"
)

// RegressCase is the on-disk form of one replayable regression case: a
// shrunk divergence report flattened to plain JSON so hunts can export
// what they find and `go test ./regress/...` can replay the corpus
// against every future engine revision. The case is self-contained —
// schema DDL, data, the trigger statement (bound statements in their
// encoded form), the fault configuration that provoked the divergence,
// and the verdict source that convicted it.
type RegressCase struct {
	// Name is the case's corpus identity (also its filename stem):
	// server, verdict source and a stable hash of the fingerprint.
	Name string `json:"name"`
	// Server is the convicted endpoint (a server name, or the pristine
	// oracle for self-check verdicts recorded against it).
	Server dialect.ServerName `json:"server"`
	// Oracle is the verdict source ("" differential, "planvariants", or
	// a metamorphic oracle name).
	Oracle string `json:"oracle,omitempty"`
	// Fingerprint is the triggering statement's syntactic fingerprint —
	// replay asserts the same statement shape convicts again.
	Fingerprint string `json:"fingerprint"`
	// Seed, Faults and Stress reproduce the originating configuration.
	// Faults are trimmed to the ones the case's stream can actually
	// trigger.
	Seed   int64         `json:"seed"`
	Faults []fault.Fault `json:"faults,omitempty"`
	Stress bool          `json:"stress,omitempty"`
	// Stream is the minimal statement sequence; Trigger sits at
	// TriggerIndex.
	Stream       []string `json:"stream"`
	TriggerIndex int      `json:"trigger_index"`
	// Class is the recorded classification of the divergence.
	Class core.Classification `json:"class"`
}

// caseName derives the corpus identity: lowercase server, verdict
// source ("diff" for the differential vote) and a stable 32-bit hash of
// the fingerprint.
func caseName(r *Report) string {
	src := r.Oracle
	if src == srcDifferential {
		src = "diff"
	}
	return fmt.Sprintf("%s-%s-%08x", strings.ToLower(string(r.Server)), src, fnv32(r.Fingerprint))
}

// trimFaults keeps the faults the case's replay can exercise: the
// convicted endpoint's own faults whose trigger region (table, if any)
// the stream actually touches. Untriggerable faults are dead weight in
// a committed corpus file and would couple the case to unrelated
// corpus entries.
func trimFaults(faults []fault.Fault, srv dialect.ServerName, stream []string) []fault.Fault {
	tables := map[string]bool{}
	for _, entry := range stream {
		sql, _, _ := core.DecodeBound(entry)
		if st, err := parser.Parse(sql); err == nil {
			for t := range ast.Tables(st) {
				tables[t] = true
			}
		}
	}
	var out []fault.Fault
	for _, f := range faults {
		if f.Server != srv {
			continue
		}
		if f.Trigger.Table != "" && !tables[strings.ToUpper(f.Trigger.Table)] {
			continue
		}
		out = append(out, f)
	}
	return out
}

// CaseFromReport flattens a shrunk report into its corpus form.
func CaseFromReport(r *Report) *RegressCase {
	return &RegressCase{
		Name:         caseName(r),
		Server:       r.Server,
		Oracle:       r.Oracle,
		Fingerprint:  r.Fingerprint,
		Seed:         r.Seed,
		Faults:       trimFaults(r.Faults, r.Server, r.Stream),
		Stress:       r.Stress,
		Stream:       append([]string(nil), r.Stream...),
		TriggerIndex: r.TriggerIndex,
		Class:        r.Class,
	}
}

// Report rebuilds the replayable report a case was flattened from
// (behavior summaries are not round-tripped — Replay re-derives the
// verdict from scratch).
func (c *RegressCase) Report() *Report {
	return &Report{
		Server:       c.Server,
		Fingerprint:  c.Fingerprint,
		Oracle:       c.Oracle,
		Seed:         c.Seed,
		Faults:       c.Faults,
		Stress:       c.Stress,
		Stream:       append([]string(nil), c.Stream...),
		Trigger:      c.Stream[c.TriggerIndex],
		TriggerIndex: c.TriggerIndex,
		Class:        c.Class,
		Behavior:     map[dialect.ServerName]string{},
	}
}

// ExportCase writes one shrunk report into dir as a regression case,
// deduplicated across runs by corpus identity: a case file that already
// exists is left untouched (first capture wins, so committed corpus
// files stay stable under re-runs). It returns the case's path.
func ExportCase(dir string, r *Report) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, caseName(r)+".json")
	if _, err := os.Stat(path); err == nil {
		return path, nil
	} else if !os.IsNotExist(err) {
		return "", err
	}
	data, err := json.MarshalIndent(CaseFromReport(r), "", "  ")
	if err != nil {
		return "", err
	}
	return path, os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadCases reads every case file under dir, sorted by name. A missing
// directory is an empty corpus, not an error.
func LoadCases(dir string) ([]*RegressCase, error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var cases []*RegressCase
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		var c RegressCase
		if err := json.Unmarshal(data, &c); err != nil {
			return nil, fmt.Errorf("%s: %w", e.Name(), err)
		}
		if c.TriggerIndex < 0 || c.TriggerIndex >= len(c.Stream) {
			return nil, fmt.Errorf("%s: trigger index %d outside stream of %d", e.Name(), c.TriggerIndex, len(c.Stream))
		}
		cases = append(cases, &c)
	}
	sort.Slice(cases, func(i, j int) bool { return cases[i].Name < cases[j].Name })
	return cases, nil
}

// ReplayCase re-executes one corpus case through a fresh stack and
// reports whether the recorded divergence still reproduces under the
// recorded verdict source.
func ReplayCase(c *RegressCase) (bool, error) {
	return Replay(c.Report())
}
