package difftest

// The sharded smoke: a fault-free lockstep run of generated streams
// through the shard router (internal/shard) over diverse replica sets,
// adjudicated statement by statement against the pristine oracle. Each
// stream works in its own name prefix, so namespace routing places the
// whole stream on one shard and the run exercises routing, per-shard
// adjudication and the router's session layer concurrently. Fault-free,
// the deployment is just a scaled-out implementation of the same SQL
// semantics, so any divergence convicts the router or the middleware —
// the sharded analogue of the fault-free differential gate.

import (
	"fmt"
	"sync"
	"time"

	"divsql/internal/core"
	"divsql/internal/dialect"
	"divsql/internal/engine"
	"divsql/internal/middleware"
	"divsql/internal/qgen"
	"divsql/internal/server"
	"divsql/internal/shard"
	"divsql/internal/sql/ast"
)

// ShardedConfig parameterizes one sharded smoke run.
type ShardedConfig struct {
	// Seed drives the per-stream workload generators.
	Seed int64
	// N is the number of statements per stream (0: 1000).
	N int
	// Streams is the number of concurrent client streams, each in its
	// own namespace (0: 4).
	Streams int
	// Shards is the number of diverse replica sets behind the router
	// (0: 2).
	Shards int
	// Servers are the replicas inside every shard (nil: all four).
	Servers []dialect.ServerName
}

// ShardedDivergence is one statement whose outcome through the sharded
// deployment differed from the oracle's.
type ShardedDivergence struct {
	Stream, Index int
	SQL           string
	Detail        string
}

// ShardedResult is the outcome of one sharded smoke run.
type ShardedResult struct {
	// Statements is the number of statements adjudicated across streams.
	Statements int
	// PerShard is the number of statements each shard's replica set
	// executed, from the router's own counters — evidence the run
	// actually spread across shards.
	PerShard []uint64
	// Divergences lists every statement that disagreed with the oracle.
	Divergences []ShardedDivergence
	// Elapsed is the wall-clock run time.
	Elapsed time.Duration
}

// RunSharded executes one fault-free sharded smoke run.
func RunSharded(cfg ShardedConfig) (*ShardedResult, error) {
	start := time.Now()
	if cfg.N <= 0 {
		cfg.N = 1000
	}
	if cfg.Streams <= 0 {
		cfg.Streams = 4
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 2
	}
	if len(cfg.Servers) == 0 {
		cfg.Servers = append([]dialect.ServerName(nil), dialect.AllServers...)
	}

	mcfg := middleware.DefaultConfig()
	backends := make([]shard.Backend, 0, cfg.Shards)
	for i := 0; i < cfg.Shards; i++ {
		servers := make([]*server.Server, 0, len(cfg.Servers))
		for _, name := range cfg.Servers {
			srv, err := server.New(name, nil)
			if err != nil {
				return nil, err
			}
			servers = append(servers, srv)
		}
		d, err := middleware.New(mcfg, servers...)
		if err != nil {
			return nil, err
		}
		backends = append(backends, d)
	}
	r, err := shard.New(shard.Config{}, backends...)
	if err != nil {
		return nil, err
	}
	orc := server.NewOracle()

	tel := SharedTelemetry()
	var (
		mu   sync.Mutex
		divs []ShardedDivergence
	)
	var wg sync.WaitGroup
	for s := 0; s < cfg.Streams; s++ {
		wg.Add(1)
		go func(stream int) {
			defer wg.Done()
			tel.streamStarted()
			defer tel.streamDone()
			opts := qgen.CommonProfile(cfg.Seed)
			opts.Seed = cfg.Seed + int64(stream)*1_000_003
			opts.NamePrefix = fmt.Sprintf("S%d_", stream)
			opts.TableNames = nil // only prefixed names keep the stream on one shard
			gen := qgen.New(opts)
			rSess := r.NewSession()
			defer rSess.Close()
			oSess := orc.NewSession()
			defer oSess.Close()
			for i := 0; i < cfg.N; i++ {
				st := gen.Next()
				sql := ast.Render(st)
				sres, _, serr := rSess.Exec(sql)
				ores, _, oerr := oSess.Exec(sql)
				tel.statements.Add(1)
				tel.execs.Add(2)
				if detail := shardedDiff(st, sres, serr, ores, oerr); detail != "" {
					mu.Lock()
					divs = append(divs, ShardedDivergence{Stream: stream, Index: i, SQL: sql, Detail: detail})
					mu.Unlock()
				}
			}
		}(s)
	}
	wg.Wait()

	res := &ShardedResult{
		Statements:  cfg.N * cfg.Streams,
		Divergences: divs,
		Elapsed:     time.Since(start),
	}
	for _, st := range r.Status() {
		res.PerShard = append(res.PerShard, st.Statements)
	}
	return res, nil
}

// shardedDiff adjudicates one statement's sharded outcome against the
// oracle's: error presence, normalized error class, and (for queries)
// the representation-tolerant result comparison. Latency is not judged —
// the sharded path pays adjudication across a whole replica set per
// statement, which is a deployment property, not a divergence.
func shardedDiff(st ast.Statement, sres *engine.Result, serr error, ores *engine.Result, oerr error) string {
	switch {
	case serr != nil && oerr == nil:
		return "sharded execution failed where the oracle succeeded: " + serr.Error()
	case serr == nil && oerr != nil:
		return "sharded execution succeeded where the oracle failed: " + oerr.Error()
	case serr != nil && oerr != nil:
		if sc, oc := core.ErrorClass(serr), core.ErrorClass(oerr); sc != oc {
			return fmt.Sprintf("error class mismatch: sharded %s (%q) vs oracle %s (%q)", sc, serr, oc, oerr)
		}
	default:
		if sel, isSel := st.(*ast.Select); isSel {
			opts := core.DefaultCompareOptions()
			opts.OrderSensitive = len(sel.OrderBy) > 0
			if d := core.Diff(sres, ores, opts); d != "" {
				return d
			}
		}
	}
	return ""
}

// RenderSharded formats a sharded smoke result for the console.
func (res *ShardedResult) RenderSharded() string {
	out := fmt.Sprintf("sharded smoke: %d statements across %d shard(s) in %v\n",
		res.Statements, len(res.PerShard), res.Elapsed.Round(time.Millisecond))
	for i, n := range res.PerShard {
		out += fmt.Sprintf("  shard%d: %d statement(s)\n", i, n)
	}
	if len(res.Divergences) == 0 {
		out += "  no divergences\n"
		return out
	}
	out += fmt.Sprintf("  %d DIVERGENCES:\n", len(res.Divergences))
	for i, d := range res.Divergences {
		if i == 8 {
			out += fmt.Sprintf("  ... %d more\n", len(res.Divergences)-i)
			break
		}
		out += fmt.Sprintf("  stream %d stmt %d: %s\n    %s\n", d.Stream, d.Index, d.SQL, d.Detail)
	}
	return out
}
