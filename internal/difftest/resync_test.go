package difftest

import (
	"errors"
	"strings"
	"testing"

	"divsql/internal/core"
	"divsql/internal/corpus"
	"divsql/internal/dialect"
	"divsql/internal/fault"
	"divsql/internal/qgen"
	"divsql/internal/server"
	"divsql/internal/sql/ast"
	"divsql/internal/sql/parser"
)

// A seeded fault whose trigger table belongs to one stream's pool share
// must be attributed to exactly that stream, with every divergence
// inside the fault's own region: per-stream scoped oracle resync cuts
// the cascade a missed write would otherwise spray over later
// statements (as non-self-evident data divergences).
func TestConcurrentStreamAttribution(t *testing.T) {
	faults := []fault.Fault{{
		BugID:   "swallow-insert",
		Server:  dialect.PG,
		Trigger: fault.Trigger{Table: "AX_TRIG", Flag: ast.FlagInsert},
		Effect:  fault.Effect{Kind: fault.EffectError, Message: "spurious internal failure"},
	}}
	gen := qgen.CommonProfile(31)
	gen.TableNames = []string{"ZZ_OTHER", "AX_TRIG"}
	// Without transactions the scoped resync lands immediately after the
	// diverging statement, so the run must be strictly cascade-free.
	gen.Transactions = false
	cfg := Config{Seed: 31, N: 1200, Streams: 2, Faults: faults, Gen: &gen}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.PerServer[dialect.PG] == 0 {
		t.Fatal("seeded fault not found")
	}
	for _, d := range res.Divergences {
		if d.Server != dialect.PG {
			t.Errorf("only PG is faulted, yet %s diverged: %s", d.Server, d.SQL)
		}
		if d.Stream != 1 {
			t.Errorf("fault attributed to stream %d, want 1: %s", d.Stream, d.SQL)
		}
		if !strings.Contains(d.SQL, "AX_TRIG") {
			t.Errorf("divergence outside the fault region: %s", d.SQL)
		}
		if !d.Class.SelfEvident {
			t.Errorf("cascade divergence slipped past the scoped resync: [%s] %s (%s)",
				d.Class.Type, d.SQL, d.Class.Detail)
		}
	}
}

// Multi-stream mode keeps sibling streams clean: the stream that owns
// the fault region absorbs it, the other finds nothing at all.
func TestConcurrentStreamSiblingUnaffected(t *testing.T) {
	faults := []fault.Fault{{
		BugID:   "swallow-insert",
		Server:  dialect.OR,
		Trigger: fault.Trigger{Table: "AX_TRIG", Flag: ast.FlagInsert},
		Effect:  fault.Effect{Kind: fault.EffectError, Message: "spurious internal failure"},
	}}
	gen := qgen.CommonProfile(47)
	gen.TableNames = []string{"ZZ_OTHER", "AX_TRIG"}
	cfg := Config{Seed: 47, N: 1200, Streams: 2, Faults: faults, Gen: &gen}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range res.Divergences {
		if d.Stream == 0 {
			t.Errorf("sibling stream polluted: [%s on %s] %s", d.Class.Type, d.Server, d.SQL)
		}
	}
}

// Fault-free sequence mode: the PG/OR server set executes a stream
// containing sequence-advancing SELECTs in lockstep with the oracle and
// must agree byte for byte — the sequence-advancing SELECT
// classification is exercised end to end by the fuzzer.
func TestSequenceStreamFaultFree(t *testing.T) {
	cfg := DefaultConfig(21, 1500).WithSequences()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range res.Divergences {
		t.Errorf("fault-free sequence divergence on %s: [%s] %s (%s)", d.Server, d.Class.Type, d.SQL, d.Class.Detail)
	}
	// The run must actually have exercised NEXTVAL: regenerate the same
	// deterministic stream and count sequence-advancing SELECTs.
	opts := *cfg.Gen
	opts.Seed = cfg.Seed
	g := qgen.New(opts)
	seen := 0
	for i := 0; i < cfg.N; i++ {
		st := g.Next()
		if _, ok := st.(*ast.Select); ok && strings.Contains(ast.Render(st), "NEXTVAL(") {
			seen++
		}
	}
	if seen == 0 {
		t.Error("sequence profile emitted no sequence-advancing SELECT")
	}
}

// An error-for-error swap — the server rejects a statement the oracle
// also rejects, but with a different error class — is a divergence now.
// Same-class rewording stays representational and is tolerated.
func TestErrorClassSwapDetected(t *testing.T) {
	sql := "DROP TABLE MISSING"
	st, err := parser.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	orc := server.NewOracle()
	_, _, oerr := orc.Exec(sql)
	if oerr == nil {
		t.Fatal("oracle must reject the drop of a missing table")
	}
	oo := server.StmtOutcome{SQL: sql, Err: oerr}

	swapped := server.StmtOutcome{SQL: sql, Err: errors.New("spurious internal failure")}
	if cls := classifyPair(st, swapped, oo); !cls.IsFailure() {
		t.Error("error class swap not detected")
	} else if cls.Type != core.IncorrectResult {
		t.Errorf("swap classified as %s", cls.Type)
	}

	reworded := server.StmtOutcome{SQL: sql, Err: errors.New("relation MISSING does not exist")}
	if cls := classifyPair(st, reworded, oo); cls.IsFailure() {
		t.Errorf("same-class rewording flagged: %s", cls.Detail)
	}
}

// Corpus-driven: for every injected error-message fault in the corpus,
// the harness flags it against a legitimate oracle error exactly when
// the normalized classes differ — and identical errors never diverge.
func TestErrorClassCorpusDriven(t *testing.T) {
	sql := "DROP TABLE MISSING"
	st, err := parser.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	orc := server.NewOracle()
	_, _, oerr := orc.Exec(sql)
	oo := server.StmtOutcome{SQL: sql, Err: oerr}

	total, swaps := 0, 0
	for _, f := range corpus.AllFaults() {
		if f.Effect.Kind != fault.EffectError {
			continue
		}
		total++
		serr := errors.New(f.Effect.Message)
		so := server.StmtOutcome{SQL: sql, Err: serr}
		mismatch := core.ErrorClass(serr) != core.ErrorClass(oerr)
		if got := classifyPair(st, so, oo).IsFailure(); got != mismatch {
			t.Errorf("fault %s (%q): flagged=%v, class mismatch=%v", f.BugID, f.Effect.Message, got, mismatch)
		}
		if mismatch {
			swaps++
		}
		// The same error on both sides always agrees.
		same := server.StmtOutcome{SQL: sql, Err: errors.New(f.Effect.Message)}
		if classifyPair(st, so, same).IsFailure() {
			t.Errorf("identical errors diverged for fault %s", f.BugID)
		}
	}
	if total == 0 {
		t.Fatal("corpus has no error-message faults")
	}
	if swaps == 0 {
		t.Error("corpus error faults never swap classes; the comparison is untested")
	}
}
