// Package difftest is the differential divergence-hunting harness: it
// replays seeded, schema-aware statement streams (internal/qgen) through
// the four simulated servers and the pristine oracle, adjudicates every
// statement with the paper's representation-tolerant comparator and
// observational failure classification, deduplicates divergences by
// statement fingerprint (the paper's per-bug counting), shrinks each
// first occurrence to a minimal repro stream by greedy statement
// elision, and emits self-contained, replayable reports.
//
// The paper studies a fixed 181-bug corpus; this harness scales its
// central question — do diverse servers fail on the same statement? — to
// open-ended generated workloads, in the spirit of automated database
// testing work (Rigger & Su's pivoted query synthesis and successors).
//
// Every run exports a Coverage signal (statement-class × fingerprint ×
// error-class hits, per-class divergence yield), and Config.Adaptive
// closes the loop: a Feedback controller retargets the generator's
// Weights plane between batches so the remaining budget flows to
// under-explored regions still yielding new divergence fingerprints.
// Config.MaxRowsPerTable bounds generated-table cardinality, holding
// adjudicated cost per statement ~flat on deep runs.
//
// With fault injection disabled and the generator's CommonProfile, a run
// must report zero divergences: every server implements the common
// dialect subset identically to the oracle. Every divergence under
// injection is therefore attributable to a fault (or, under concurrent
// streams, to a fault's collateral crash observed by another stream).
package difftest

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"divsql/internal/core"
	"divsql/internal/corpus"
	"divsql/internal/dialect"
	"divsql/internal/engine"
	engplan "divsql/internal/engine/plan"
	"divsql/internal/fault"
	"divsql/internal/metamorph"
	"divsql/internal/qgen"
	"divsql/internal/server"
	"divsql/internal/sql/ast"
	"divsql/internal/sql/parser"
	"divsql/internal/sql/types"
	"divsql/internal/study"
)

// Config parameterizes one differential run.
type Config struct {
	// Seed drives the workload generator (and, with it, the whole run:
	// same config, same divergence set on a single stream).
	Seed int64
	// N is the number of statements per stream.
	N int
	// Streams is the number of concurrent client streams. Each stream
	// works in its own table namespace so adjudication stays exact; more
	// than one stream exercises the per-session execution path of every
	// layer (run under -race). Every stream — concurrent or not — keeps
	// its own oracle resync: after a state-diverging fault the server is
	// realigned from a committed oracle snapshot scoped to the stream's
	// namespace, so cascades are cut without disturbing sibling streams.
	Streams int
	// Gen overrides the generator profile (nil: qgen.CommonProfile).
	// Seed, NamePrefix and TableNames are managed per stream.
	Gen *qgen.Options
	// Servers under test (default: all four).
	Servers []dialect.ServerName
	// Faults is the injected fault set (nil: fault-free configuration).
	Faults []fault.Fault
	// Stress enables the stressful environment (Heisenbug triggers).
	Stress bool
	// Shrink minimizes the stream behind each deduplicated divergence
	// and builds a replayable report.
	Shrink bool
	// MaxReportsPerServer caps shrinking work (divergences beyond the
	// cap are still counted and listed, just not shrunk). 0 means 6.
	MaxReportsPerServer int
	// Adaptive closes the coverage feedback loop: each stream runs in
	// batches of FeedbackBatch statements, and between batches the
	// generator's Weights plane is retargeted from the stream's own
	// cumulative coverage (see Feedback), so under-explored statement
	// classes and shapes — and regions still yielding new divergence
	// fingerprints — receive the remaining budget. A single-stream
	// adaptive run is exactly as reproducible as a fixed-weight one: the
	// feedback derives only from the stream's own deterministic
	// observations.
	Adaptive bool
	// FeedbackBatch is the adaptive retargeting interval in statements
	// (0: 500).
	FeedbackBatch int
	// MaxRowsPerTable bounds generated-table cardinality (plumbed into
	// qgen.Options.MaxRowsPerTable; 0 leaves the generator profile's
	// setting). Bounding keeps per-statement evaluation and adjudication
	// cost ~flat as N grows, which is what makes deep runs (N ≥ 100k)
	// affordable.
	MaxRowsPerTable int
	// PlanVariants enables the DQP-lite self-check oracle: every
	// deterministic SELECT the oracle answered without error is re-run on
	// the oracle under each forced access-path variant (full scan,
	// index-preferred) and the results compared against the normal
	// execution. Access-path choice may only change which rows the engine
	// skipped, never the result, so any disagreement convicts the
	// compiled/index execution path itself; it is recorded as a
	// divergence against the oracle. Off by default (it re-executes every
	// SELECT up to twice); fault-free gates turn it on.
	PlanVariants bool
	// Telemetry receives live counters while the run executes (nil: the
	// process-global SharedTelemetry). Consumers are divfuzz's periodic
	// -metrics-every summaries and divsqld's divsql_hunt_* collector.
	Telemetry *Telemetry
	// Isolation enables SET TRANSACTION ISOLATION LEVEL statements in
	// the generated streams: the replicas' read views, journal replay of
	// session defaults, and each dialect's acceptance of the level names
	// all enter adjudication. Fault-free runs draw only the universally
	// accepted levels (READ COMMITTED, SERIALIZABLE) and must stay
	// divergence-free; with faults armed the full five names are drawn,
	// so per-dialect acceptance divergence (REPEATABLE READ on OR/IB,
	// SNAPSHOT on PG/OR) surfaces as isolation-class fingerprints.
	Isolation bool
	// Params enables the parameterized statement mode: a weighted share
	// of the generated DML/queries executes through prepare/bind with a
	// typed argument vector instead of inline literals, so the hunt
	// covers each server's bind-time coercion rules (engine.BindRules) as
	// a statement-class dimension of its own. With faults armed the
	// generator also aims argument values at the bind-coercion quirk
	// regions; fault-free runs keep safe values and must stay
	// divergence-free like any other common-subset stream.
	Params bool
	// TLP, NoREC and CERT arm the metamorphic self-check oracles
	// (internal/metamorph): every answered deterministic SELECT is
	// rewritten into queries whose results its own result logically
	// constrains, and a violated relation is recorded as a divergence
	// tagged with the oracle that found it. The checks run against the
	// pristine oracle's session (a pure engine self-check, like
	// PlanVariants) and against every server whose own execution
	// succeeded — the server's base result carries its fault layer while
	// the rewrites bypass it, so silent result corruption on a single
	// endpoint becomes visible without any cross-server vote. Arming any
	// of them also turns on the generator's PartitionSympathy so the
	// stream leans into the oracles' applicability region.
	TLP, NoREC, CERT bool
	// RegressDir, when non-empty, exports every shrunk report
	// (differential or metamorphic) of the run as a replayable regression
	// case under this directory, deduplicated across runs by verdict
	// fingerprint (see RegressCase).
	RegressDir string
}

// DefaultConfig is the fault-free smoke configuration.
func DefaultConfig(seed int64, n int) Config {
	return Config{Seed: seed, N: n, Streams: 1, Shrink: true}
}

// CalibratedConfig arms the harness with the full corpus fault set and
// points the generator's table-name pool at the faults' trigger tables,
// one per (server, effect-kind), so generated statements fall into every
// server's calibrated failure regions.
func CalibratedConfig(seed int64, n int) Config {
	cfg := Config{Seed: seed, N: n, Streams: 1, Shrink: true, Isolation: true, Faults: corpus.AllFaults()}
	gen := qgen.CommonProfile(seed)
	gen.TableNames = triggerTables(cfg.Faults)
	cfg.Gen = &gen
	return cfg
}

// WithSequences returns the config adjusted to exercise sequences end to
// end: the generator emits CREATE SEQUENCE and sequence-advancing
// SELECTs (NEXTVAL), and the server set is restricted to the servers
// that spell the canonical NEXTVAL — PG and OR. MS offers no sequences
// at all and IB spells the function GEN_ID, so either would reject the
// shared stream at the dialect gate and drown the run in spurious
// divergences.
func (cfg Config) WithSequences() Config {
	gen := qgen.CommonProfile(cfg.Seed)
	if cfg.Gen != nil {
		gen = *cfg.Gen
	}
	gen.Sequences = true
	cfg.Gen = &gen
	cfg.Servers = []dialect.ServerName{dialect.PG, dialect.OR}
	return cfg
}

// triggerTables picks one trigger table per (server, effect kind,
// stress-only) slot from the fault set, in deterministic corpus order.
// Stress-only (Heisenbug) regions get their own slots so a -stress run
// aims at them too; on a quiet run their tables are ordinary workload
// tables.
func triggerTables(faults []fault.Fault) []string {
	type slot struct {
		s      dialect.ServerName
		k      fault.EffectKind
		stress bool
	}
	seen := make(map[slot]bool)
	dup := make(map[string]bool)
	var out []string
	for _, f := range faults {
		if f.Trigger.Table == "" || dup[f.Trigger.Table] {
			continue
		}
		sl := slot{f.Server, f.Effect.Kind, f.Trigger.UnderStressOnly}
		if seen[sl] {
			continue
		}
		seen[sl] = true
		dup[f.Trigger.Table] = true
		out = append(out, f.Trigger.Table)
	}
	return out
}

// Divergence is one deduplicated deviation of one server from the
// oracle: all occurrences whose triggering statements share a syntactic
// fingerprint count as one. For table-scoped faults hit by repeated
// statements of one shape this matches the paper's per-bug counting; a
// broad failure region still splits across the distinct statement
// shapes that fall into it, so the distinct-fingerprint count is an
// upper bound on distinct faults, not a bug census.
type Divergence struct {
	Server      dialect.ServerName
	Fingerprint string
	// Oracle is the verdict source that convicted the statement: ""
	// for the differential server-vs-oracle vote, "planvariants" for
	// the DQP-lite forced-plan gate, or a metamorphic oracle name
	// ("tlp", "norec", "cert"). Distinct sources dedup separately — the
	// same statement fingerprint convicted by two oracles is two
	// records, because each names a different violated relation.
	Oracle string
	Class  core.Classification
	// SQL is the first triggering statement observed.
	SQL string
	// Stream and Index locate the first occurrence.
	Stream, Index int
	// Count is the number of raw occurrences collapsed into this record.
	Count int
	// Report is the shrunk, replayable reproduction (nil when shrinking
	// was disabled or the per-server report cap was reached).
	Report *Report
}

// Result is the outcome of one differential run.
type Result struct {
	// Statements is the number of generated statements adjudicated.
	Statements int
	// Execs counts statement executions across all endpoints.
	Execs int
	// Divergences is the deduplicated list, sorted by server then
	// fingerprint.
	Divergences []*Divergence
	// PerServer counts deduplicated divergences per server.
	PerServer map[dialect.ServerName]int
	// Raw counts total (pre-dedup) divergent statement executions.
	Raw int
	// Coverage is the run's aggregated exploration signal (per-class and
	// per-shape hits, fingerprint breadth, divergence yield).
	Coverage *Coverage
	// Elapsed is the wall-clock run time.
	Elapsed time.Duration
}

// srcDifferential and srcPlanVariants name the non-metamorphic verdict
// sources in Divergence.Oracle / dedupKey.src terms; the metamorphic
// sources are the metamorph.Oracle names.
const (
	srcDifferential = ""
	srcPlanVariants = "planvariants"
)

// VerdictSources lists every verdict-source tag a divergence can carry,
// in deterministic order (the differential vote is the untagged
// default and is not listed).
var VerdictSources = []string{
	srcPlanVariants, string(metamorph.TLP), string(metamorph.NoREC), string(metamorph.CERT),
}

type dedupKey struct {
	server dialect.ServerName
	fp     string
	src    string // verdict source: srcDifferential, srcPlanVariants or an oracle name
}

// hunt is the shared state of one run.
type hunt struct {
	cfg     Config
	servers []*server.Server
	orc     *server.Server

	tel *Telemetry

	mu      sync.Mutex
	seen    map[dedupKey]*Divergence
	pending []pendingShrink
	raw     int
	cov     *Coverage
}

type pendingShrink struct {
	key     dedupKey
	history []string
}

// Run executes one differential run.
func Run(cfg Config) (*Result, error) {
	start := time.Now()
	if cfg.N <= 0 {
		cfg.N = 1000
	}
	if cfg.Streams <= 0 {
		cfg.Streams = 1
	}
	if len(cfg.Servers) == 0 {
		cfg.Servers = append([]dialect.ServerName(nil), dialect.AllServers...)
	}
	if cfg.MaxReportsPerServer == 0 {
		cfg.MaxReportsPerServer = 6
	}
	if cfg.FeedbackBatch <= 0 {
		cfg.FeedbackBatch = 500
	}
	h := &hunt{cfg: cfg, seen: make(map[dedupKey]*Divergence), cov: NewCoverage(), tel: cfg.Telemetry}
	if h.tel == nil {
		h.tel = SharedTelemetry()
	}
	for _, name := range cfg.Servers {
		srv, err := server.New(name, cfg.Faults)
		if err != nil {
			return nil, err
		}
		srv.SetStress(cfg.Stress)
		h.servers = append(h.servers, srv)
	}
	h.orc = server.NewOracle()

	var wg sync.WaitGroup
	for s := 0; s < cfg.Streams; s++ {
		wg.Add(1)
		go func(stream int) {
			defer wg.Done()
			h.runStream(stream)
		}(s)
	}
	wg.Wait()

	res := &Result{
		Statements: cfg.N * cfg.Streams,
		Execs:      cfg.N * cfg.Streams * (len(cfg.Servers) + 1),
		PerServer:  make(map[dialect.ServerName]int),
		Raw:        h.raw,
		Coverage:   h.cov,
	}
	for _, d := range h.seen {
		res.Divergences = append(res.Divergences, d)
		res.PerServer[d.Server]++
	}
	sort.Slice(res.Divergences, func(i, j int) bool {
		a, b := res.Divergences[i], res.Divergences[j]
		if a.Server != b.Server {
			return serverRank(cfg.Servers, a.Server) < serverRank(cfg.Servers, b.Server)
		}
		if a.Fingerprint != b.Fingerprint {
			return a.Fingerprint < b.Fingerprint
		}
		return a.Oracle < b.Oracle
	})

	if cfg.Shrink {
		sort.Slice(h.pending, func(i, j int) bool {
			a, b := h.pending[i], h.pending[j]
			if a.key.server != b.key.server {
				return serverRank(cfg.Servers, a.key.server) < serverRank(cfg.Servers, b.key.server)
			}
			if a.key.fp != b.key.fp {
				return a.key.fp < b.key.fp
			}
			return a.key.src < b.key.src
		})
		for _, p := range h.pending {
			rep := shrinkAndReport(cfg, p.key, p.history)
			if rep != nil {
				h.seen[p.key].Report = rep
			}
		}
	}
	if cfg.RegressDir != "" {
		for _, d := range res.Divergences {
			if d.Report != nil {
				if _, err := ExportCase(cfg.RegressDir, d.Report); err != nil {
					return nil, fmt.Errorf("export regress case: %w", err)
				}
			}
		}
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// metaOracles lists the armed metamorphic oracles in deterministic
// order.
func (h *hunt) metaOracles() []metamorph.Oracle {
	var armed []metamorph.Oracle
	if h.cfg.TLP {
		armed = append(armed, metamorph.TLP)
	}
	if h.cfg.NoREC {
		armed = append(armed, metamorph.NoREC)
	}
	if h.cfg.CERT {
		armed = append(armed, metamorph.CERT)
	}
	return armed
}

// checkMetamorphic runs the armed metamorphic oracles against one
// endpoint's answered SELECT, feeding the coverage/telemetry planes and
// recording every violated relation as an oracle-tagged divergence.
func (h *hunt) checkMetamorphic(cov *Coverage, ex metamorph.Executor, name dialect.ServerName,
	st ast.Statement, sel *ast.Select, args []types.Value, base *engine.Result,
	armed []metamorph.Oracle, fp, entry string, history []string, stream, i int) {
	checked, findings := metamorph.Check(ex, sel, args, base, armed)
	for _, o := range checked {
		cov.ObserveOracleCheck(string(o), fp)
	}
	h.tel.metaChecks.Add(uint64(len(checked)))
	for _, f := range findings {
		isNew := cov.ObserveDivergence(st, fp)
		cov.ObserveOracleDivergence(string(f.Oracle), isNew)
		h.tel.metaFindings.Add(1)
		cls := core.Classification{Status: core.StatusFailure, Type: core.IncorrectResult, Detail: f.Detail}
		h.record(name, fp, string(f.Oracle), entry, cls, history, stream, i)
	}
}

func serverRank(order []dialect.ServerName, s dialect.ServerName) int {
	for i, n := range order {
		if n == s {
			return i
		}
	}
	return len(order)
}

// genOptionsFor derives the per-stream generator options: distinct seed,
// a private table namespace, and a round-robin share of the trigger-
// table pool.
func (h *hunt) genOptionsFor(stream int) qgen.Options {
	var opts qgen.Options
	if h.cfg.Gen != nil {
		opts = *h.cfg.Gen
	} else {
		opts = qgen.CommonProfile(h.cfg.Seed)
	}
	opts.Seed = h.cfg.Seed + int64(stream)*1_000_003
	if h.cfg.MaxRowsPerTable > 0 {
		opts.MaxRowsPerTable = h.cfg.MaxRowsPerTable
	}
	if h.cfg.Isolation {
		opts.Isolation = true
		// Dialect-specific level names only make sense when divergences
		// are expected; the fault-free gate draws the universally
		// accepted subset.
		if len(h.cfg.Faults) > 0 {
			opts.IsolationLevels = qgen.AllIsolationLevels
		}
	}
	if h.cfg.TLP || h.cfg.NoREC || h.cfg.CERT {
		// Lean the stream into the metamorphic oracles' applicability
		// region: near-universal WHEREs on simple selects plus the
		// additive COUNT/SUM form.
		opts.PartitionSympathy = true
	}
	if h.cfg.Params {
		opts.Params = true
		// Quirk-region argument values only make sense when divergences
		// are expected (faults armed); the fault-free gate must agree
		// with the oracle byte-for-byte.
		opts.ParamQuirks = len(h.cfg.Faults) > 0
	}
	if h.cfg.Streams > 1 {
		opts.NamePrefix = fmt.Sprintf("S%d_%s", stream, opts.NamePrefix)
		var share []string
		for i, t := range opts.TableNames {
			if i%h.cfg.Streams == stream {
				share = append(share, t)
			}
		}
		opts.TableNames = share
	}
	return opts
}

// streamScope builds the keep-predicate for one stream's namespace: the
// stream's generated-name prefix plus its share of the trigger-table
// pool. A single-stream hunt owns the whole engine.
func (h *hunt) streamScope(opts qgen.Options) func(string) bool {
	if h.cfg.Streams == 1 {
		return func(string) bool { return true }
	}
	pool := make(map[string]bool, len(opts.TableNames))
	for _, n := range opts.TableNames {
		pool[strings.ToUpper(n)] = true
	}
	prefix := strings.ToUpper(opts.NamePrefix)
	return func(name string) bool {
		return pool[name] || (prefix != "" && strings.HasPrefix(name, prefix))
	}
}

// runStream drives one client stream in lockstep across every endpoint:
// the statement is executed on the oracle and all servers (each through
// this stream's own session, concurrently), then each server's outcome
// is adjudicated against the oracle's before the next statement.
func (h *hunt) runStream(stream int) {
	h.tel.streamStarted()
	defer h.tel.streamDone()
	opts := h.genOptionsFor(stream)
	gen := qgen.New(opts)
	scope := h.streamScope(opts)
	oSess := h.orc.NewSession()
	defer oSess.Close()
	sess := make([]*server.Session, len(h.servers))
	for i, srv := range h.servers {
		sess[i] = srv.NewSession()
		defer sess[i].Close()
	}

	// Per-stream coverage: the feedback controller reads only this
	// stream's own observations, so an adaptive single-stream run stays
	// exactly reproducible from its seed. The stream's coverage merges
	// into the run-level signal at the end.
	cov := NewCoverage()
	var fb *Feedback
	if h.cfg.Adaptive {
		fb = NewFeedback(gen.Weights())
	}
	defer func() {
		h.mu.Lock()
		h.cov.Merge(cov)
		h.mu.Unlock()
	}()

	history := make([]string, 0, h.cfg.N)
	outs := make([]server.StmtOutcome, len(sess)+1)
	pendingResync := make([]bool, len(sess))
	for i := 0; i < h.cfg.N; i++ {
		st := gen.Next()
		args := gen.LastArgs()
		sql := ast.Render(st)
		// History (and with it divergence records, shrink streams and
		// reports) carries bound statements in their replayable encoded
		// form; the suffix is a SQL comment, so parsing, fingerprinting
		// and dependency slicing all see the bare statement.
		entry := core.EncodeBound(sql, args)
		history = append(history, entry)

		var wg sync.WaitGroup
		exec := func(slot int, e *server.Session) {
			defer wg.Done()
			var res *engine.Result
			var lat time.Duration
			var err error
			if args == nil {
				res, lat, err = e.Exec(sql)
			} else {
				res, lat, err = e.ExecArgs(sql, args...)
			}
			outs[slot] = server.StmtOutcome{
				SQL: entry, Res: res, Err: err, Latency: lat,
				Crashed: errors.Is(err, server.ErrCrashed),
			}
		}
		wg.Add(len(sess) + 1)
		go exec(len(sess), oSess)
		for j := range sess {
			go exec(j, sess[j])
		}
		wg.Wait()

		oo := outs[len(sess)]
		fp := ast.FingerprintOf(st).String()
		breadth := cov.GeneratedFingerprints()
		cov.Observe(st, fp, oo.Err)
		h.tel.statements.Add(1)
		h.tel.execs.Add(uint64(len(sess) + 1))
		h.tel.genFPs.Add(uint64(cov.GeneratedFingerprints() - breadth))
		seqAdvances := false
		if sel, isSel := st.(*ast.Select); isSel {
			// A sequence-advancing SELECT mutates state: if it diverged,
			// the sequence counters are desynchronized too.
			seqAdvances = h.orc.SelectAdvancesSequences(sel)
		}
		for j := range sess {
			so := outs[j]
			if so.Crashed {
				// Bring the server back (committed state survives) so the
				// hunt continues; the crash itself is the divergence.
				h.servers[j].Restart()
			}
			cls := classifyPair(st, so, oo)
			if cls.IsFailure() {
				cov.ObserveDivergence(st, fp)
				h.record(h.servers[j].Name(), fp, srcDifferential, entry, cls, history, stream, i)
				if stateDiverging(st, so, oo, cls, seqAdvances) {
					pendingResync[j] = true
				}
			}
		}
		// DQP-lite: re-run the oracle's answered deterministic SELECT
		// under each forced access-path variant and compare against the
		// normal execution (see Config.PlanVariants).
		if h.cfg.PlanVariants && oo.Err == nil && !seqAdvances {
			if sel, isSel := st.(*ast.Select); isSel {
				cov.ObserveOracleCheck(srcPlanVariants, fp)
				if cls := checkPlanVariants(oSess, sel, args, oo); cls.IsFailure() {
					isNew := cov.ObserveDivergence(st, fp)
					cov.ObserveOracleDivergence(srcPlanVariants, isNew)
					h.record(h.orc.Name(), fp, srcPlanVariants, entry, cls, history, stream, i)
				}
			}
		}
		// Metamorphic self-checks (TLP / NoREC / CERT): each armed,
		// applicable oracle re-derives the answered SELECT's result from
		// rewrites of itself and convicts the endpoint on any violated
		// relation — no second opinion involved. The pristine oracle's
		// session is checked first (a pure engine self-check); then every
		// server whose own execution succeeded is checked against its own
		// base result, whose fault-layer effects the rewrites bypass.
		if armed := h.metaOracles(); len(armed) > 0 && !seqAdvances {
			if sel, isSel := st.(*ast.Select); isSel {
				if oo.Err == nil {
					h.checkMetamorphic(cov, oSess, h.orc.Name(), st, sel, args, oo.Res, armed, fp, entry, history, stream, i)
				}
				for j := range sess {
					if outs[j].Err == nil && !outs[j].Crashed {
						h.checkMetamorphic(cov, sess[j], h.servers[j].Name(), st, sel, args, outs[j].Res, armed, fp, entry, history, stream, i)
					}
				}
			}
		}
		// A state-diverging fault (crash, missed or extra write, dropped
		// connection) would cascade: every later statement over the
		// affected state diverges too, burying the signal and blaming the
		// wrong region. Resync the server from the oracle at the stream's
		// next transaction boundary. The oracle snapshot is a committed-
		// state image (sibling streams' open transactions are rewound on
		// the copy-on-write clone) and the restore is scoped to this
		// stream's namespace, so concurrent hunts stay as precise as the
		// single-stream mode: siblings' state, transactions and
		// adjudication are untouched.
		if !oSess.InTxn() {
			var snap *engine.State
			for j := range pendingResync {
				if !pendingResync[j] {
					continue
				}
				if snap == nil {
					snap = h.orc.Snapshot()
				}
				// A fault may have desynchronized this stream's server-side
				// transaction (e.g. a dropped connection rolled it back);
				// clear it before installing the oracle image.
				sess[j].Abort()
				h.servers[j].RestoreScoped(snap, scope)
				pendingResync[j] = false
			}
		}
		// Between batches, retune the generator's Weights plane from this
		// stream's cumulative coverage so the remaining budget flows to
		// under-explored, still-yielding regions.
		if fb != nil && (i+1)%h.cfg.FeedbackBatch == 0 && i+1 < h.cfg.N {
			gen.SetWeights(fb.Retarget(cov))
			h.tel.retargets.Add(1)
		}
	}
}

// stateDiverging reports whether a divergent outcome implies the
// server's durable state now differs from the oracle's (so the hunt
// must resync before adjudicating further statements). Mutated or
// wrongly-produced query output leaves state intact; crashes (open
// transactions lost), dropped connections (transaction rolled back on
// one side only), error mismatches on writes and diverging sequence-
// advancing SELECTs (counter desync) do not.
func stateDiverging(st ast.Statement, so, oo server.StmtOutcome, cls core.Classification, seqAdvances bool) bool {
	if cls.Type == core.EngineCrash {
		return true
	}
	if errors.Is(so.Err, server.ErrConnAborted) {
		return true
	}
	if _, isSel := st.(*ast.Select); isSel {
		return seqAdvances && cls.Type != core.Performance
	}
	return (so.Err == nil) != (oo.Err == nil)
}

// record deduplicates one divergent execution by (server, fingerprint,
// verdict source).
func (h *hunt) record(name dialect.ServerName, fp, src string, sql string, cls core.Classification, history []string, stream, index int) {
	key := dedupKey{name, fp, src}
	h.tel.raw.Add(1)
	h.mu.Lock()
	defer h.mu.Unlock()
	if d, ok := h.seen[key]; ok {
		d.Count++
		h.raw++
		return
	}
	h.raw++
	h.tel.divFPs.Add(1)
	h.seen[key] = &Divergence{
		Server: name, Fingerprint: key.fp, Oracle: src, Class: cls,
		SQL: sql, Stream: stream, Index: index, Count: 1,
	}
	if h.cfg.Shrink && h.perServerPending(name) < h.cfg.MaxReportsPerServer {
		h.pending = append(h.pending, pendingShrink{
			key:     key,
			history: append([]string(nil), history...),
		})
	}
}

func (h *hunt) perServerPending(name dialect.ServerName) int {
	n := 0
	for _, p := range h.pending {
		if p.key.server == name {
			n++
		}
	}
	return n
}

// classifyPair adjudicates one statement's outcome on a server against
// the oracle's, following the study's observational classification.
func classifyPair(st ast.Statement, so, oo server.StmtOutcome) core.Classification {
	sel, isSel := st.(*ast.Select)
	switch {
	case so.Crashed:
		return core.Classification{
			Status: core.StatusFailure, Type: core.EngineCrash, SelfEvident: true,
			Detail: "engine crashed on: " + so.SQL,
		}
	case so.Err != nil && oo.Err == nil:
		typ := core.IncorrectResult
		if errors.Is(so.Err, server.ErrConnAborted) {
			typ = core.OtherFailure
		}
		return core.Classification{
			Status: core.StatusFailure, Type: typ, SelfEvident: true,
			Detail: so.Err.Error(),
		}
	case so.Err == nil && oo.Err != nil:
		if isSel {
			return core.Classification{
				Status: core.StatusFailure, Type: core.IncorrectResult,
				Detail: "query succeeded where it should have failed",
			}
		}
		return core.Classification{
			Status: core.StatusFailure, Type: core.OtherFailure,
			Detail: "invalid statement accepted: " + oo.Err.Error(),
		}
	case so.Err != nil && oo.Err != nil:
		// Both endpoints rejected the statement — but a fault can swap
		// one error for another. Compare normalized error classes, not
		// error presence: a "spurious deadlock" where a constraint
		// violation belongs is an incorrect result even though the
		// statement "failed" on both sides. Wording differences within a
		// class are representational and tolerated, exactly like float
		// formatting in correct results.
		if sc, oc := core.ErrorClass(so.Err), core.ErrorClass(oo.Err); sc != oc {
			return core.Classification{
				Status: core.StatusFailure, Type: core.IncorrectResult,
				Detail: fmt.Sprintf("error class mismatch: server %s (%q) vs oracle %s (%q)",
					sc, so.Err.Error(), oc, oo.Err.Error()),
			}
		}
	case so.Err == nil && oo.Err == nil:
		if isSel {
			opts := core.DefaultCompareOptions()
			opts.OrderSensitive = len(sel.OrderBy) > 0
			if d := core.Diff(so.Res, oo.Res, opts); d != "" {
				return core.Classification{Status: core.StatusFailure, Type: core.IncorrectResult, Detail: d}
			}
		}
		if so.Latency-oo.Latency >= study.PerfThreshold {
			return core.Classification{
				Status: core.StatusFailure, Type: core.Performance, SelfEvident: true,
				Detail: "execution time exceeded acceptance threshold",
			}
		}
	}
	return core.Classification{Status: core.StatusNoFailure}
}

// variantForces are the forced access paths the DQP-lite oracle replays
// each answered SELECT under.
var variantForces = []engplan.Force{engplan.ForceFullScan, engplan.ForceIndex}

// checkPlanVariants re-executes one answered SELECT on the oracle under
// each forced access-path variant and adjudicates the results against
// the normal execution's. The comparison uses the same options as
// server-vs-oracle adjudication (order-insensitive unless the statement
// ordered its rows).
func checkPlanVariants(oSess *server.Session, sel *ast.Select, args []types.Value, oo server.StmtOutcome) core.Classification {
	opts := core.DefaultCompareOptions()
	opts.OrderSensitive = len(sel.OrderBy) > 0
	for _, force := range variantForces {
		res, err := oSess.ExecVariant(sel, force, args...)
		if err != nil {
			return core.Classification{
				Status: core.StatusFailure, Type: core.IncorrectResult,
				Detail: fmt.Sprintf("plan variant %v failed where normal execution succeeded: %v", force, err),
			}
		}
		if d := core.Diff(res, oo.Res, opts); d != "" {
			return core.Classification{
				Status: core.StatusFailure, Type: core.IncorrectResult,
				Detail: fmt.Sprintf("plan variant %v disagrees with normal execution: %s", force, d),
			}
		}
	}
	return core.Classification{Status: core.StatusNoFailure}
}

// classifySQL is classifyPair for replayed statements (text only).
func classifySQL(sql string, so, oo server.StmtOutcome) core.Classification {
	st, err := parser.Parse(sql)
	if err != nil {
		st = nil
	}
	return classifyPair(st, so, oo)
}
