package qgen

import (
	"divsql/internal/sql/ast"
	"divsql/internal/sql/types"
)

// literal produces a value literal of the kind. Floats always carry a
// fractional part so they render and re-parse as floats; numeric values
// are non-negative so CHECK (c >= 0) columns stay satisfiable.
func (g *Generator) literal(k types.Kind) types.Value {
	switch k {
	case types.KindInt:
		return types.NewInt(int64(g.rnd.Intn(100)))
	case types.KindFloat:
		return types.NewFloat(float64(g.rnd.Intn(100)) + float64(1+g.rnd.Intn(3))*0.25)
	default:
		return types.NewString(g.word())
	}
}

var alphabet = []string{"a", "b", "c", "d", "e", "f", "g", "h", "k", "m", "r", "s", "t", "w", "x", "z"}

func (g *Generator) word() string {
	n := 1 + g.rnd.Intn(5)
	s := ""
	for i := 0; i < n; i++ {
		s += alphabet[g.rnd.Intn(len(alphabet))]
	}
	return s
}

func (g *Generator) genInsert() ast.Statement {
	t := g.insertableTable()
	if t == nil {
		// Every table sits at the cardinality cap: the INSERT budget
		// becomes row-aging and UPDATE pressure instead, so deep streams
		// keep their write mix without growing the tables.
		return g.genAge()
	}
	// Columns in a shuffled (but seeded) order, all listed explicitly.
	perm := g.rnd.Perm(len(t.cols))
	cols := make([]string, len(perm))
	nRows := 1 + g.rnd.Intn(g.opts.MaxInsertRows)
	if limit := g.opts.MaxRowsPerTable; limit > 0 && t.rows+nRows > limit {
		nRows = limit - t.rows
	}
	rows := make([][]ast.Expr, nRows)
	for r := range rows {
		rows[r] = make([]ast.Expr, len(perm))
	}
	for i, ci := range perm {
		c := t.col(ci)
		cols[i] = c.name
		for r := 0; r < nRows; r++ {
			switch {
			case c.pk:
				rows[r][i] = &ast.Literal{Val: types.NewInt(t.nextPK)}
				t.nextPK++
			case !c.notNull && g.rnd.Intn(10) == 0:
				rows[r][i] = &ast.Literal{Val: types.Null()}
			default:
				rows[r][i] = &ast.Literal{Val: g.literal(c.kind)}
			}
		}
	}
	t.rows += nRows
	return &ast.Insert{Table: t.name, Columns: cols, Rows: rows}
}

// setExpr builds a type-correct right-hand side for SET c = expr.
func (g *Generator) setExpr(t *relation, c *column) ast.Expr {
	ref := &ast.ColumnRef{Column: c.name}
	lit := &ast.Literal{Val: g.literal(c.kind)}
	switch c.kind {
	case types.KindInt, types.KindFloat:
		switch g.rnd.Intn(4) {
		case 0:
			return lit
		case 1:
			return &ast.Binary{Op: ast.OpAdd, L: ref, R: lit}
		case 2:
			// ABS keeps CHECK (c >= 0) columns in range after subtraction.
			return &ast.FuncCall{Name: "ABS", Args: []ast.Expr{
				&ast.Binary{Op: ast.OpSub, L: ref, R: lit},
			}}
		default:
			if c.kind == types.KindFloat {
				return &ast.FuncCall{Name: "ROUND", Args: []ast.Expr{ref, &ast.Literal{Val: types.NewInt(1)}}}
			}
			return &ast.FuncCall{Name: "SIGN", Args: []ast.Expr{ref}}
		}
	default:
		switch g.rnd.Intn(4) {
		case 0:
			return lit
		case 1:
			return &ast.FuncCall{Name: "UPPER", Args: []ast.Expr{ref}}
		case 2:
			return &ast.FuncCall{Name: "LOWER", Args: []ast.Expr{ref}}
		default:
			return &ast.Binary{Op: ast.OpConcat, L: ref, R: lit}
		}
	}
}

func (g *Generator) genUpdate() ast.Statement {
	t := g.anyTable()
	if t == nil {
		return nil
	}
	ci := t.pick(g.rnd, func(c *column) bool { return !c.pk })
	if ci < 0 {
		return nil
	}
	sets := []ast.SetClause{{Column: t.col(ci).name, Value: g.setExpr(t, t.col(ci))}}
	if cj := t.pick(g.rnd, func(c *column) bool { return !c.pk }); cj >= 0 && cj != ci && g.rnd.Intn(3) == 0 {
		sets = append(sets, ast.SetClause{Column: t.col(cj).name, Value: g.setExpr(t, t.col(cj))})
	}
	up := &ast.Update{Table: t.name, Sets: sets}
	if g.rnd.Intn(10) < 8 {
		up.Where = g.predicate(scope{{"", t}}, 1)
	}
	return up
}

// insertableTable picks a table with headroom under the cardinality
// cap (any table when unbounded); nil when every table is full.
func (g *Generator) insertableTable() *relation {
	if g.opts.MaxRowsPerTable <= 0 {
		return g.anyTable()
	}
	cands := make([]*relation, 0, len(g.tables))
	for _, t := range g.tables {
		if t.rows < g.opts.MaxRowsPerTable {
			cands = append(cands, t)
		}
	}
	if len(cands) == 0 {
		return nil
	}
	return cands[g.rnd.Intn(len(cands))]
}

// genAge converts blocked INSERT pressure into other write work once
// every table is at the cardinality cap: keyed tables age out their
// oldest primary-key band (freeing headroom for future inserts), unkeyed
// tables are occasionally cleared outright, and the rest of the budget
// becomes UPDATEs so write pressure on the engines is preserved.
func (g *Generator) genAge() ast.Statement {
	t := g.anyTable()
	if t == nil {
		return nil
	}
	switch {
	case t.hasPK && g.rnd.Intn(3) != 0:
		return g.genAgeDelete(t)
	case !t.hasPK && g.rnd.Intn(4) == 0:
		t.rows = 0
		return &ast.Delete{Table: t.name}
	default:
		return g.genUpdate()
	}
}

// genAgeDelete emits DELETE ... WHERE pk < hi over the oldest live
// primary-key band. Because primary keys are assigned monotonically and
// every key below agedPK is already gone, the surviving rows all carry
// keys in [hi, nextPK) — which caps the live row count at nextPK-hi and
// lets the estimate drop soundly.
func (g *Generator) genAgeDelete(t *relation) ast.Statement {
	half := g.opts.MaxRowsPerTable / 2
	if half < 1 {
		half = 1
	}
	hi := t.agedPK + int64(1+g.rnd.Intn(half))
	if hi > t.nextPK {
		hi = t.nextPK
	}
	pi := t.pick(g.rnd, func(c *column) bool { return c.pk })
	if pi < 0 {
		return nil
	}
	t.agedPK = hi
	if ub := int(t.nextPK - t.agedPK); t.rows > ub {
		t.rows = ub
	}
	return &ast.Delete{
		Table: t.name,
		Where: &ast.Binary{
			Op: ast.OpLt,
			L:  &ast.ColumnRef{Column: t.col(pi).name},
			R:  &ast.Literal{Val: types.NewInt(hi)},
		},
	}
}

func (g *Generator) genDelete() ast.Statement {
	t := g.anyTable()
	if t == nil {
		return nil
	}
	del := &ast.Delete{Table: t.name}
	if g.rnd.Intn(10) < 9 {
		// Prefer a selective predicate over a non-key numeric column so
		// tables keep their data. Key columns grow without bound, so a
		// fixed threshold over them would eventually match every newer
		// row; non-key integer literals stay in [0,100) and the >80
		// threshold clips only a value tail.
		ci := t.pick(g.rnd, func(c *column) bool { return c.kind == types.KindInt && !c.pk })
		if ci >= 0 {
			del.Where = &ast.Binary{
				Op: ast.OpGt,
				L:  &ast.ColumnRef{Column: t.col(ci).name},
				R:  &ast.Literal{Val: types.NewInt(int64(80 + g.rnd.Intn(40)))},
			}
		} else {
			del.Where = g.predicate(scope{{"", t}}, 1)
		}
		// The predicate may match any number of rows (possibly none), so
		// the row estimate — an upper bound — stays put.
		return del
	}
	t.rows = 0
	return del
}

func (g *Generator) genTxn() ast.Statement {
	if !g.inTxn {
		// With isolation enabled, a slice of the transaction budget goes
		// to SET TRANSACTION statements: mostly outside any transaction
		// (session default, the common application pattern), so every
		// later transaction and autocommit statement runs under the
		// chosen level.
		if g.opts.Isolation && g.rnd.Intn(4) == 0 {
			return &ast.SetTxn{Level: g.pickIsoLevel()}
		}
		g.inTxn = true
		g.snap = g.snapshot()
		return &ast.Begin{}
	}
	g.inTxn = false
	if g.rnd.Intn(10) < 7 {
		g.snap = nil
		return &ast.Commit{}
	}
	// The servers undo everything back to BEGIN — including DDL — so the
	// generator's schema tracking must rewind with them.
	g.restore(g.snap)
	g.snap = nil
	return &ast.Rollback{}
}

// isoSafeLevels is the isolation-level subset every dialect accepts —
// the fault-free default for Options.IsolationLevels.
var isoSafeLevels = []string{"READ COMMITTED", "SERIALIZABLE"}

// AllIsolationLevels is every level name the parser accepts. Hunts use
// it as the Options.IsolationLevels pool to surface per-dialect
// acceptance divergence (see dialect.SupportsIsolation).
var AllIsolationLevels = []string{
	"READ UNCOMMITTED", "READ COMMITTED", "REPEATABLE READ", "SERIALIZABLE", "SNAPSHOT",
}

// pickIsoLevel draws an isolation-level name from the configured pool.
func (g *Generator) pickIsoLevel() string {
	pool := g.opts.IsolationLevels
	if len(pool) == 0 {
		pool = isoSafeLevels
	}
	return pool[g.rnd.Intn(len(pool))]
}

// snapshot deep-copies the schema-tracking state (relations mutate their
// nextPK/row counters, so sharing would leak post-BEGIN changes).
func (g *Generator) snapshot() *schemaSnapshot {
	cp := func(rels []*relation) []*relation {
		out := make([]*relation, len(rels))
		for i, r := range rels {
			c := *r
			c.cols = append([]column(nil), r.cols...)
			out[i] = &c
		}
		return out
	}
	return &schemaSnapshot{
		tables:  cp(g.tables),
		views:   cp(g.views),
		indexes: append([]struct{ name, table string }(nil), g.indexes...),
		seqs:    append([]string(nil), g.seqs...),
		pool:    append([]string(nil), g.pool...),
	}
}

func (g *Generator) restore(s *schemaSnapshot) {
	if s == nil {
		return
	}
	g.tables, g.views, g.indexes, g.seqs, g.pool = s.tables, s.views, s.indexes, s.seqs, s.pool
}
