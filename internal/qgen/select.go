package qgen

import (
	"fmt"

	"divsql/internal/sql/ast"
	"divsql/internal/sql/types"
)

// scopeEntry is one relation visible to a query under an optional alias.
type scopeEntry struct {
	alias string
	rel   *relation
}

// scope is the set of relations a query's expressions may reference.
type scope []scopeEntry

// ref builds a (qualified when aliased) column reference.
func (e scopeEntry) ref(c *column) *ast.ColumnRef {
	return &ast.ColumnRef{Table: e.alias, Column: c.name}
}

// randomCol picks one column from the scope.
func (s scope) randomCol(g *Generator, want func(*column) bool) (scopeEntry, *column, bool) {
	order := g.rnd.Perm(len(s))
	for _, i := range order {
		if ci := s[i].rel.pick(g.rnd, want); ci >= 0 {
			return s[i], s[i].rel.col(ci), true
		}
	}
	return scopeEntry{}, nil, false
}

func anyCol(*column) bool { return true }

func numericCol(c *column) bool { return c.kind == types.KindInt || c.kind == types.KindFloat }

// ---------------------------------------------------------------------------
// Expressions

// scalar builds a typed scalar expression over the scope for a select
// item. depth caps decoration nesting.
func (g *Generator) scalar(s scope, depth int) ast.Expr {
	e, c, ok := s.randomCol(g, anyCol)
	if !ok {
		return &ast.Literal{Val: types.NewInt(1)}
	}
	ref := e.ref(c)
	if depth <= 0 || g.rnd.Intn(3) == 0 {
		return ref
	}
	lit := func() *ast.Literal { return &ast.Literal{Val: g.literal(c.kind)} }
	switch c.kind {
	case types.KindInt:
		choices := []func() ast.Expr{
			func() ast.Expr { return &ast.FuncCall{Name: "ABS", Args: []ast.Expr{ref}} },
			func() ast.Expr { return &ast.FuncCall{Name: "SIGN", Args: []ast.Expr{ref}} },
			func() ast.Expr { return &ast.Binary{Op: ast.OpAdd, L: ref, R: lit()} },
			// Integer multiplication stays integral: no float-precision
			// quirk region is entered.
			func() ast.Expr {
				return &ast.Binary{Op: ast.OpMul, L: ref, R: &ast.Literal{Val: types.NewInt(int64(2 + g.rnd.Intn(5)))}}
			},
			func() ast.Expr { return &ast.FuncCall{Name: "NULLIF", Args: []ast.Expr{ref, lit()}} },
			func() ast.Expr {
				return &ast.Case{Whens: []ast.WhenClause{{
					Cond: &ast.Binary{Op: ast.OpGt, L: ref, R: lit()},
					Then: &ast.Literal{Val: types.NewInt(1)},
				}}, Else: &ast.Literal{Val: types.NewInt(0)}}
			},
			func() ast.Expr { return &ast.Cast{X: ref, To: ast.TypeName{Name: "VARCHAR", Args: []int{12}}} },
		}
		if g.opts.Mod {
			choices = append(choices, func() ast.Expr {
				return &ast.FuncCall{Name: "MOD", Args: []ast.Expr{ref, &ast.Literal{Val: types.NewInt(int64(2 + g.rnd.Intn(7)))}}}
			})
		}
		return choices[g.rnd.Intn(len(choices))]()
	case types.KindFloat:
		choices := []func() ast.Expr{
			func() ast.Expr { return &ast.FuncCall{Name: "FLOOR", Args: []ast.Expr{ref}} },
			func() ast.Expr { return &ast.FuncCall{Name: "CEIL", Args: []ast.Expr{ref}} },
			func() ast.Expr {
				return &ast.FuncCall{Name: "ROUND", Args: []ast.Expr{ref, &ast.Literal{Val: types.NewInt(1)}}}
			},
			func() ast.Expr { return &ast.Binary{Op: ast.OpAdd, L: ref, R: lit()} },
			func() ast.Expr { return &ast.Binary{Op: ast.OpSub, L: ref, R: lit()} },
		}
		if g.opts.FloatMul {
			choices = append(choices, func() ast.Expr { return &ast.Binary{Op: ast.OpMul, L: ref, R: lit()} })
		}
		return choices[g.rnd.Intn(len(choices))]()
	default:
		choices := []func() ast.Expr{
			func() ast.Expr { return &ast.FuncCall{Name: "UPPER", Args: []ast.Expr{ref}} },
			func() ast.Expr { return &ast.FuncCall{Name: "LOWER", Args: []ast.Expr{ref}} },
			func() ast.Expr { return &ast.FuncCall{Name: "TRIM", Args: []ast.Expr{ref}} },
			func() ast.Expr { return &ast.Binary{Op: ast.OpConcat, L: ref, R: lit()} },
			func() ast.Expr {
				return &ast.FuncCall{Name: "REPLACE", Args: []ast.Expr{
					ref,
					&ast.Literal{Val: types.NewString(alphabet[g.rnd.Intn(len(alphabet))])},
					&ast.Literal{Val: types.NewString(g.word())},
				}}
			},
		}
		return choices[g.rnd.Intn(len(choices))]()
	}
}

// predicate builds a boolean expression over the scope. depth caps both
// AND/OR nesting and subquery use (subqueries only while depth ≥ 1).
func (g *Generator) predicate(s scope, depth int) ast.Expr {
	if depth > 0 && g.rnd.Intn(10) < 4 {
		l := g.predicate(s, depth-1)
		r := g.predicate(s, depth-1)
		op := ast.OpAnd
		if g.rnd.Intn(2) == 0 {
			op = ast.OpOr
		}
		if g.rnd.Intn(8) == 0 {
			return &ast.Unary{Op: "NOT", X: &ast.Binary{Op: op, L: l, R: r}}
		}
		return &ast.Binary{Op: op, L: l, R: r}
	}
	e, c, ok := s.randomCol(g, anyCol)
	if !ok {
		return &ast.Binary{Op: ast.OpEq, L: &ast.Literal{Val: types.NewInt(1)}, R: &ast.Literal{Val: types.NewInt(1)}}
	}
	ref := e.ref(c)
	cmpOps := []ast.BinaryOp{ast.OpEq, ast.OpNe, ast.OpLt, ast.OpLe, ast.OpGt, ast.OpGe}
	kind := 0
	switch c.kind {
	case types.KindString:
		kind = g.rnd.Intn(5) // cmp, like, isnull, inlist, subq
	default:
		kind = []int{0, 0, 2, 3, 4, 5}[g.rnd.Intn(6)] // cmp, isnull, inlist, subq, between
	}
	switch kind {
	case 1: // LIKE (string only)
		return &ast.Like{
			X:   ref,
			Not: g.rnd.Intn(6) == 0,
			Pattern: &ast.Literal{
				Val: types.NewString(alphabet[g.rnd.Intn(len(alphabet))] + "%"),
			},
		}
	case 2:
		return &ast.IsNull{X: ref, Not: g.rnd.Intn(2) == 0}
	case 3:
		n := 2 + g.rnd.Intn(2)
		list := make([]ast.Expr, n)
		for i := range list {
			list[i] = &ast.Literal{Val: g.literal(c.kind)}
		}
		return &ast.In{X: ref, Not: g.rnd.Intn(6) == 0, List: list}
	case 4:
		if depth >= 1 && g.opts.MaxSubqueryDepth > 0 {
			if sub := g.subqueryFor(c.kind, depth-1); sub != nil {
				return &ast.In{X: ref, Not: g.rnd.Intn(6) == 0, Select: sub}
			}
		}
		fallthrough
	case 5:
		if kind == 5 && depth >= 1 && g.opts.MaxSubqueryDepth > 0 && g.rnd.Intn(2) == 0 {
			if sub := g.existsSubquery(depth - 1); sub != nil {
				return &ast.Exists{Not: g.rnd.Intn(4) == 0, Select: sub}
			}
		}
		if c.kind != types.KindString && g.rnd.Intn(3) == 0 {
			lo := int64(g.rnd.Intn(40))
			return &ast.Between{
				X:  ref,
				Lo: &ast.Literal{Val: types.NewInt(lo)},
				Hi: &ast.Literal{Val: types.NewInt(lo + int64(1+g.rnd.Intn(40)))},
			}
		}
		fallthrough
	default:
		return &ast.Binary{Op: cmpOps[g.rnd.Intn(len(cmpOps))], L: ref, R: &ast.Literal{Val: g.literal(c.kind)}}
	}
}

// subqueryFor builds SELECT col FROM rel [WHERE ...] yielding the kind.
func (g *Generator) subqueryFor(k types.Kind, depth int) *ast.Select {
	order := g.rnd.Perm(len(g.tables))
	for _, i := range order {
		t := g.tables[i]
		if ci := t.pick(g.rnd, func(c *column) bool { return c.kind == k }); ci >= 0 {
			sel := &ast.Select{
				Items: []ast.SelectItem{{Expr: &ast.ColumnRef{Column: t.col(ci).name}}},
				From:  []ast.FromItem{{Table: ast.TableRef{Name: t.name}}},
			}
			if g.rnd.Intn(2) == 0 {
				sel.Where = g.predicate(scope{{"", t}}, depth)
			}
			return sel
		}
	}
	return nil
}

// existsSubquery builds an uncorrelated EXISTS body.
func (g *Generator) existsSubquery(depth int) *ast.Select {
	t := g.anyTable()
	if t == nil {
		return nil
	}
	ci := t.pick(g.rnd, anyCol)
	return &ast.Select{
		Items: []ast.SelectItem{{Expr: &ast.ColumnRef{Column: t.col(ci).name}}},
		From:  []ast.FromItem{{Table: ast.TableRef{Name: t.name}}},
		Where: g.predicate(scope{{"", t}}, depth),
	}
}

// seqCallExpr returns NEXTVAL(seq) over a live sequence, or nil when
// the profile has sequences off or none exists yet. Wiring the call
// into SELECT items makes the stream exercise the sequence-advancing
// SELECT classification end to end: every layer must treat such a query
// as a write (lock mode, ordering, read policy) or the servers drift.
// Profiles that include MS must keep Sequences off — MS has no
// sequences, and IB spells the function GEN_ID — so the harness gates
// this behind a PG/OR server set (see difftest.Config.WithSequences).
func (g *Generator) seqCallExpr() ast.Expr {
	if !g.opts.Sequences || len(g.seqs) == 0 {
		return nil
	}
	name := g.seqs[g.rnd.Intn(len(g.seqs))]
	return &ast.FuncCall{Name: "NEXTVAL", Args: []ast.Expr{&ast.ColumnRef{Column: name}}}
}

// scalarAggSubquery builds a single-row scalar subquery (aggregate).
func (g *Generator) scalarAggSubquery() *ast.Select {
	t := g.anyTable()
	if t == nil {
		return nil
	}
	var agg ast.Expr
	if ci := t.pick(g.rnd, numericCol); ci >= 0 && g.rnd.Intn(2) == 0 {
		names := []string{"MIN", "MAX", "SUM"}
		agg = &ast.FuncCall{Name: names[g.rnd.Intn(len(names))], Args: []ast.Expr{&ast.ColumnRef{Column: t.col(ci).name}}}
	} else {
		agg = &ast.FuncCall{Name: "COUNT", Star: true}
	}
	// The aggregate is aliased even though the scalar value is all the
	// outer query uses: an unaliased AVG/SUM select item is a quirk
	// region (IB blanks the name, MS errors out).
	return &ast.Select{
		Items: []ast.SelectItem{{Expr: agg, Alias: "A1"}},
		From:  []ast.FromItem{{Table: ast.TableRef{Name: t.name}}},
	}
}

// ---------------------------------------------------------------------------
// Query shapes

// pickShape draws a SELECT shape from the adaptive Weights plane
// (weight order matches Shapes). Shapes whose structural feature is
// disabled contribute no weight.
func (g *Generator) pickShape() Shape {
	w := g.w
	wJoin := w.JoinSelect
	if g.opts.MaxJoins == 0 {
		wJoin = 0
	}
	wUnion := w.UnionSelect
	if !g.opts.Unions {
		wUnion = 0
	}
	i := g.weightedPick([]int{w.SimpleSelect, wJoin, w.GroupSelect, wUnion, w.StarSelect, w.PointSelect, w.RangeSelect})
	if i < 0 {
		return ShapeSimple
	}
	return Shapes[i]
}

func (g *Generator) genSelect() ast.Statement {
	switch g.pickShape() {
	case ShapeJoin:
		if st := g.genJoinSelect(); st != nil {
			return st
		}
		return g.genSimpleSelect()
	case ShapeGroup:
		if st := g.genGroupSelect(); st != nil {
			return st
		}
		return g.genSimpleSelect()
	case ShapeUnion:
		if st := g.genUnionSelect(); st != nil {
			return st
		}
		return g.genSimpleSelect()
	case ShapeStar:
		return g.genStarSelect()
	case ShapePoint:
		if st := g.genPointSelect(); st != nil {
			return st
		}
		return g.genSimpleSelect()
	case ShapeRange:
		if st := g.genRangeSelect(); st != nil {
			return st
		}
		return g.genSimpleSelect()
	default:
		return g.genSimpleSelect()
	}
}

// aliasItems wraps expressions as a deterministic aliased select list.
// Every expression item carries an alias so result column names agree
// across servers (and the unaliased-aggregate quirk region on IB/MS is
// never entered by accident).
func aliasItems(exprs []ast.Expr) []ast.SelectItem {
	items := make([]ast.SelectItem, len(exprs))
	for i, e := range exprs {
		items[i] = ast.SelectItem{Expr: e, Alias: fmt.Sprintf("X%d", i+1)}
	}
	return items
}

// maybeOrderLimit attaches a positional ORDER BY (probability ~1/2) and
// the profile's row-limit syntax when enabled. Positional keys are the
// only ORDER BY form valid in every query shape the engine offers
// (select-list aliases are not sort keys).
func (g *Generator) maybeOrderLimit(sel *ast.Select, nItems int) {
	if nItems > 0 && g.rnd.Intn(2) == 0 {
		sel.OrderBy = []ast.OrderItem{{
			Expr: &ast.Literal{Val: types.NewInt(int64(1 + g.rnd.Intn(nItems)))},
			Desc: g.rnd.Intn(3) == 0,
		}}
	}
	if g.opts.RowLimit != ast.LimitNone && g.rnd.Intn(3) == 0 {
		sel.Limit = int64(1 + g.rnd.Intn(10))
		sel.LimitSyn = g.opts.RowLimit
	}
}

func (g *Generator) genSimpleSelect() ast.Statement {
	r := g.anyRelation()
	if r == nil {
		return nil
	}
	s := scope{{"", r}}
	if g.opts.PartitionSympathy && g.rnd.Intn(4) == 0 {
		return g.genAggSelect(r, s)
	}
	n := 1 + g.rnd.Intn(3)
	exprs := make([]ast.Expr, 0, n)
	for i := 0; i < n; i++ {
		if g.rnd.Intn(7) == 0 {
			if sq := g.seqCallExpr(); sq != nil {
				exprs = append(exprs, sq)
				continue
			}
		}
		if g.opts.MaxSubqueryDepth > 0 && g.rnd.Intn(12) == 0 {
			if sub := g.scalarAggSubquery(); sub != nil {
				exprs = append(exprs, &ast.Subquery{Select: sub})
				continue
			}
		}
		exprs = append(exprs, g.scalar(s, g.opts.MaxExprDepth))
	}
	sel := &ast.Select{
		Items: aliasItems(exprs),
		From:  []ast.FromItem{{Table: ast.TableRef{Name: r.name}}},
	}
	whereIn10 := 7
	if g.opts.PartitionSympathy {
		whereIn10 = 9
	}
	if g.rnd.Intn(10) < whereIn10 {
		sel.Where = g.predicate(s, 2)
	}
	if g.rnd.Intn(7) == 0 {
		sel.Distinct = true
	}
	g.maybeOrderLimit(sel, len(exprs))
	return sel
}

// genAggSelect emits the additive-TLP query form: an all-COUNT/SUM item
// list over one table with a partitionable WHERE. Only PartitionSympathy
// streams draw it (via genSimpleSelect), so the fixed profiles'
// seeded streams are untouched.
func (g *Generator) genAggSelect(r *relation, s scope) ast.Statement {
	n := 1 + g.rnd.Intn(2)
	items := make([]ast.SelectItem, 0, n)
	for i := 0; i < n; i++ {
		var agg ast.Expr
		switch {
		case g.rnd.Intn(2) == 0:
			if ci := r.pick(g.rnd, numericCol); ci >= 0 {
				agg = &ast.FuncCall{Name: "SUM", Args: []ast.Expr{&ast.ColumnRef{Column: r.col(ci).name}}}
			}
		case g.rnd.Intn(2) == 0:
			if ci := r.pick(g.rnd, anyCol); ci >= 0 {
				agg = &ast.FuncCall{Name: "COUNT", Args: []ast.Expr{&ast.ColumnRef{Column: r.col(ci).name}}}
			}
		}
		if agg == nil {
			agg = &ast.FuncCall{Name: "COUNT", Star: true}
		}
		// Aliased like every generated aggregate item: unaliased SUM/AVG
		// names are a dialect quirk region (IB blanks them, MS errors).
		items = append(items, ast.SelectItem{Expr: agg, Alias: fmt.Sprintf("A%d", i+1)})
	}
	sel := &ast.Select{Items: items, From: []ast.FromItem{{Table: ast.TableRef{Name: r.name}}}}
	if g.rnd.Intn(10) < 9 {
		sel.Where = g.predicate(s, 2)
	}
	return sel
}

func (g *Generator) genStarSelect() ast.Statement {
	r := g.anyRelation()
	if r == nil {
		return nil
	}
	sel := &ast.Select{
		Items: []ast.SelectItem{{Star: true}},
		From:  []ast.FromItem{{Table: ast.TableRef{Name: r.name}}},
	}
	if g.rnd.Intn(2) == 0 {
		sel.Where = g.predicate(scope{{"", r}}, 1)
	}
	if g.rnd.Intn(10) < 6 {
		ci := r.pick(g.rnd, anyCol)
		sel.OrderBy = []ast.OrderItem{{Expr: &ast.ColumnRef{Column: r.col(ci).name}, Desc: g.rnd.Intn(3) == 0}}
	}
	return sel
}

// pkProbe picks a base table whose primary-key band is live — keys have
// been issued and not all aged away — and returns it with the PK column
// ordinal; (nil, -1) when no table qualifies.
func (g *Generator) pkProbe() (*relation, int) {
	if len(g.tables) == 0 {
		return nil, -1
	}
	order := g.rnd.Perm(len(g.tables))
	for _, i := range order {
		t := g.tables[i]
		if !t.hasPK || t.nextPK <= t.agedPK {
			continue
		}
		for ci := range t.cols {
			if t.cols[ci].pk {
				return t, ci
			}
		}
	}
	return nil, -1
}

// genPointSelect emits a single-table SELECT whose WHERE pins the
// primary key to one value from the live band [agedPK, nextPK) — the
// statement shape the engine's analyzer lowers to an index point
// lookup. Targeting the live band keeps the probes mostly hitting rows
// instead of vacuum. A quarter of the probes carry a residual conjunct
// the index cannot serve, exercising the executor's re-evaluate-the-
// full-WHERE side of the candidate-superset contract.
func (g *Generator) genPointSelect() ast.Statement {
	t, pi := g.pkProbe()
	if t == nil {
		return nil
	}
	s := scope{{"", t}}
	pk := t.col(pi)
	key := t.agedPK + int64(g.rnd.Intn(int(t.nextPK-t.agedPK)))
	n := 1 + g.rnd.Intn(2)
	exprs := make([]ast.Expr, 0, n+1)
	exprs = append(exprs, &ast.ColumnRef{Column: pk.name})
	for i := 0; i < n; i++ {
		e, c, ok := s.randomCol(g, anyCol)
		if !ok {
			break
		}
		exprs = append(exprs, e.ref(c))
	}
	where := ast.Expr(&ast.Binary{
		Op: ast.OpEq,
		L:  &ast.ColumnRef{Column: pk.name},
		R:  &ast.Literal{Val: types.NewInt(key)},
	})
	if g.rnd.Intn(4) == 0 {
		where = &ast.Binary{Op: ast.OpAnd, L: where, R: g.predicate(s, 0)}
	}
	return &ast.Select{
		Items: aliasItems(exprs),
		From:  []ast.FromItem{{Table: ast.TableRef{Name: t.name}}},
		Where: where,
	}
}

// genRangeSelect emits a single-table SELECT bounded on the primary key
// — BETWEEN, a two-sided conjunction, or a one-sided ordering
// comparison over the live band — the shape the analyzer lowers to a
// sorted-index range scan.
func (g *Generator) genRangeSelect() ast.Statement {
	t, pi := g.pkProbe()
	if t == nil {
		return nil
	}
	s := scope{{"", t}}
	pk := t.col(pi)
	lo := t.agedPK + int64(g.rnd.Intn(int(t.nextPK-t.agedPK)))
	width := 1 + int64(g.rnd.Intn(20))
	ref := func() *ast.ColumnRef { return &ast.ColumnRef{Column: pk.name} }
	var where ast.Expr
	switch g.rnd.Intn(4) {
	case 0:
		where = &ast.Binary{Op: ast.OpGe, L: ref(), R: &ast.Literal{Val: types.NewInt(lo)}}
	case 1:
		where = &ast.Binary{Op: ast.OpLt, L: ref(), R: &ast.Literal{Val: types.NewInt(lo + width)}}
	case 2:
		where = &ast.Binary{
			Op: ast.OpAnd,
			L:  &ast.Binary{Op: ast.OpGt, L: ref(), R: &ast.Literal{Val: types.NewInt(lo - 1)}},
			R:  &ast.Binary{Op: ast.OpLe, L: ref(), R: &ast.Literal{Val: types.NewInt(lo + width)}},
		}
	default:
		where = &ast.Between{
			X:  ref(),
			Lo: &ast.Literal{Val: types.NewInt(lo)},
			Hi: &ast.Literal{Val: types.NewInt(lo + width)},
		}
	}
	n := 1 + g.rnd.Intn(2)
	exprs := make([]ast.Expr, 0, n+1)
	exprs = append(exprs, ref())
	for i := 0; i < n; i++ {
		e, c, ok := s.randomCol(g, anyCol)
		if !ok {
			break
		}
		exprs = append(exprs, e.ref(c))
	}
	sel := &ast.Select{
		Items: aliasItems(exprs),
		From:  []ast.FromItem{{Table: ast.TableRef{Name: t.name}}},
		Where: where,
	}
	g.maybeOrderLimit(sel, len(exprs))
	return sel
}

func (g *Generator) genJoinSelect() ast.Statement {
	left := g.anyRelation()
	if left == nil {
		return nil
	}
	aliases := []string{"A", "B", "C", "D"}
	s := scope{{aliases[0], left}}
	nJoins := 1 + g.rnd.Intn(g.opts.MaxJoins)
	if nJoins > len(aliases)-1 {
		nJoins = len(aliases) - 1
	}
	var joins []ast.Join
	for j := 0; j < nJoins; j++ {
		right := g.anyRelation()
		if right == nil {
			break
		}
		re := scopeEntry{aliases[j+1], right}
		jt := ast.JoinInner
		if g.rnd.Intn(10) < 3 {
			jt = ast.JoinLeft
		}
		joins = append(joins, ast.Join{
			Type:  jt,
			Right: ast.TableRef{Name: right.name, Alias: re.alias},
			On:    g.joinCond(s, re),
		})
		s = append(s, re)
	}
	if len(joins) == 0 {
		return nil
	}
	n := 2 + g.rnd.Intn(3)
	exprs := make([]ast.Expr, 0, n)
	for i := 0; i < n; i++ {
		e, c, ok := s.randomCol(g, anyCol)
		if !ok {
			break
		}
		exprs = append(exprs, e.ref(c))
	}
	sel := &ast.Select{
		Items: aliasItems(exprs),
		From:  []ast.FromItem{{Table: ast.TableRef{Name: left.name, Alias: aliases[0]}, Joins: joins}},
	}
	if g.rnd.Intn(2) == 0 {
		sel.Where = g.predicate(s, 1)
	}
	g.maybeOrderLimit(sel, len(exprs))
	return sel
}

// joinCond prefers an equality between same-kind columns of the new
// relation and one already in scope; 1 = 1 is the cross-join fallback.
func (g *Generator) joinCond(s scope, right scopeEntry) ast.Expr {
	order := g.rnd.Perm(len(s))
	for _, i := range order {
		le := s[i]
		for _, want := range []func(*column) bool{numericCol, anyCol} {
			if li := le.rel.pick(g.rnd, want); li >= 0 {
				lc := le.rel.col(li)
				if ri := right.rel.pick(g.rnd, func(c *column) bool {
					if numericCol(lc) {
						return numericCol(c)
					}
					return c.kind == lc.kind
				}); ri >= 0 {
					return &ast.Binary{Op: ast.OpEq, L: le.ref(lc), R: right.ref(right.rel.col(ri))}
				}
			}
		}
	}
	return &ast.Binary{Op: ast.OpEq, L: &ast.Literal{Val: types.NewInt(1)}, R: &ast.Literal{Val: types.NewInt(1)}}
}

func (g *Generator) genGroupSelect() ast.Statement {
	t := g.anyRelation()
	if t == nil || len(t.cols) < 2 {
		return nil
	}
	s := scope{{"", t}}
	gi := t.pick(g.rnd, anyCol)
	gcol := t.col(gi)
	exprs := []ast.Expr{&ast.ColumnRef{Column: gcol.name}}
	nAggs := 1 + g.rnd.Intn(2)
	for i := 0; i < nAggs; i++ {
		if ci := t.pick(g.rnd, numericCol); ci >= 0 && g.rnd.Intn(3) != 0 {
			names := []string{"SUM", "AVG", "MIN", "MAX"}
			exprs = append(exprs, &ast.FuncCall{
				Name:     names[g.rnd.Intn(len(names))],
				Args:     []ast.Expr{&ast.ColumnRef{Column: t.col(ci).name}},
				Distinct: g.rnd.Intn(8) == 0,
			})
		} else {
			exprs = append(exprs, &ast.FuncCall{Name: "COUNT", Star: true})
		}
	}
	sel := &ast.Select{
		Items:   aliasItems(exprs),
		From:    []ast.FromItem{{Table: ast.TableRef{Name: t.name}}},
		GroupBy: []ast.Expr{&ast.ColumnRef{Column: gcol.name}},
	}
	if g.rnd.Intn(3) == 0 {
		sel.Where = g.predicate(s, 1)
	}
	if g.rnd.Intn(2) == 0 {
		sel.Having = &ast.Binary{
			Op: ast.OpGt,
			L:  &ast.FuncCall{Name: "COUNT", Star: true},
			R:  &ast.Literal{Val: types.NewInt(int64(g.rnd.Intn(3)))},
		}
	}
	if g.rnd.Intn(2) == 0 {
		sel.OrderBy = []ast.OrderItem{{Expr: &ast.Literal{Val: types.NewInt(1)}}}
	}
	return sel
}

// genUnionSelect projects kind-compatible column lists from two
// relations and combines them with UNION [ALL].
func (g *Generator) genUnionSelect() ast.Statement {
	r1 := g.anyRelation()
	if r1 == nil {
		return nil
	}
	k := 1 + g.rnd.Intn(2)
	if k > len(r1.cols) {
		k = len(r1.cols)
	}
	perm := g.rnd.Perm(len(r1.cols))[:k]
	kinds := make([]types.Kind, k)
	left := make([]ast.Expr, k)
	for i, ci := range perm {
		kinds[i] = r1.col(ci).kind
		left[i] = &ast.ColumnRef{Column: r1.col(ci).name}
	}
	// Find a relation offering the same kind signature.
	cands := make([]*relation, 0, len(g.tables)+len(g.views))
	cands = append(cands, g.tables...)
	if g.opts.Views {
		cands = append(cands, g.views...)
	}
	order := g.rnd.Perm(len(cands))
	for _, i := range order {
		r2 := cands[i]
		right := make([]ast.Expr, 0, k)
		used := make([]bool, len(r2.cols))
		for _, want := range kinds {
			found := -1
			for j := range r2.cols {
				if !used[j] && r2.col(j).kind == want {
					found = j
					break
				}
			}
			if found < 0 {
				break
			}
			used[found] = true
			right = append(right, &ast.ColumnRef{Column: r2.col(found).name})
		}
		if len(right) != k {
			continue
		}
		head := &ast.Select{
			Items:    aliasItems(left),
			From:     []ast.FromItem{{Table: ast.TableRef{Name: r1.name}}},
			Union:    &ast.Select{Items: aliasItems(right), From: []ast.FromItem{{Table: ast.TableRef{Name: r2.name}}}},
			UnionAll: g.rnd.Intn(2) == 0,
		}
		if g.rnd.Intn(5) < 2 {
			head.OrderBy = []ast.OrderItem{{Expr: &ast.Literal{Val: types.NewInt(1)}}}
		}
		return head
	}
	return nil
}
