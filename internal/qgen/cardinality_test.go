package qgen

import (
	"testing"

	"divsql/internal/engine"
	"divsql/internal/sql/ast"
)

// Replaying a capped stream on a live engine must never leave any
// generated table above MaxRowsPerTable — not at the end, and not at
// any point in between. The generator's row estimates are upper bounds,
// so the engine's reality can only be at or below them.
func TestCardinalityCapRespected(t *testing.T) {
	const capRows = 48
	opts := CommonProfile(5)
	opts.MaxRowsPerTable = capRows
	opts.TableNames = []string{"TRIG1", "TRIG2", "TRIG3"}
	g := New(opts)
	e := engine.NewOracle()
	inserts, aged := 0, 0
	for i := 0; i < 12000; i++ {
		st := g.Next()
		switch st.(type) {
		case *ast.Insert:
			inserts++
		case *ast.Delete:
			aged++
		}
		if _, err := e.Exec(st); err != nil {
			continue
		}
		for _, tn := range e.TableNames() {
			n, err := e.TableRowCount(tn)
			if err != nil {
				t.Fatalf("statement %d: %v", i, err)
			}
			if n > capRows {
				t.Fatalf("statement %d: table %s holds %d rows, cap is %d (stmt: %s)",
					i, tn, n, capRows, ast.Render(st))
			}
		}
	}
	if inserts == 0 {
		t.Fatal("capped stream emitted no INSERTs")
	}
	if aged == 0 {
		t.Fatal("capped stream emitted no DELETEs (aging never happened)")
	}
}

// The cap must hold across transaction rewinds: a ROLLBACK restores the
// servers' rows AND the generator's row estimates, so post-rollback
// streams may neither overflow the cap (estimate undershot reality) nor
// starve inserts forever (estimate overshot).
func TestCardinalityCapAcrossRollbacks(t *testing.T) {
	const capRows = 24
	opts := CommonProfile(11)
	opts.MaxRowsPerTable = capRows
	// A txn-heavy mix so BEGIN/ROLLBACK brackets much of the stream.
	opts.WeightTxn = 30
	opts.WeightInsert = 40
	g := New(opts)
	e := engine.NewOracle()
	rollbacks := 0
	insertsAfterRollback := 0
	for i := 0; i < 8000; i++ {
		st := g.Next()
		if _, ok := st.(*ast.Rollback); ok {
			rollbacks++
		}
		if _, ok := st.(*ast.Insert); ok && rollbacks > 0 {
			insertsAfterRollback++
		}
		if _, err := e.Exec(st); err != nil {
			continue
		}
		for _, tn := range e.TableNames() {
			n, _ := e.TableRowCount(tn)
			if n > capRows {
				t.Fatalf("statement %d (after %d rollbacks): table %s holds %d rows, cap is %d",
					i, rollbacks, tn, n, capRows)
			}
		}
	}
	if rollbacks < 10 {
		t.Fatalf("stream produced only %d rollbacks; the rewind path is untested", rollbacks)
	}
	if insertsAfterRollback == 0 {
		t.Fatal("no INSERT after a rollback: estimates overshot and starved the stream")
	}
}

// Capped streams stay deterministic under seed, exactly like uncapped
// ones, and the cap is part of the stream identity (a different cap
// yields a different stream).
func TestCardinalityDeterministicUnderSeed(t *testing.T) {
	render := func(capRows int) []string {
		opts := CommonProfile(21)
		opts.MaxRowsPerTable = capRows
		g := New(opts)
		out := make([]string, 3000)
		for i := range out {
			out[i] = g.NextSQL()
		}
		return out
	}
	a, b := render(32), render(32)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("capped streams diverge at statement %d:\n  a: %s\n  b: %s", i, a[i], b[i])
		}
	}
	c := render(96)
	diff := 0
	for i := range a {
		if a[i] != c[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Error("cap 32 and cap 96 produced identical streams; the cap is not in effect")
	}
}

// Retargeting weights mid-stream is deterministic too: the same
// sequence of SetWeights calls at the same stream positions reproduces
// the same statements, and the new plane visibly shifts the mix.
func TestSetWeightsDeterministicAndEffective(t *testing.T) {
	heavy := Weights{Insert: 95, Select: 5, SimpleSelect: 1}
	render := func() ([]string, int) {
		g := New(CommonProfile(9))
		var out []string
		inserts := 0
		for i := 0; i < 2000; i++ {
			if i == 1000 {
				g.SetWeights(heavy)
			}
			st := g.Next()
			if _, ok := st.(*ast.Insert); ok && i >= 1000 {
				inserts++
			}
			out = append(out, ast.Render(st))
		}
		return out, inserts
	}
	a, na := render()
	b, nb := render()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("retargeted streams diverge at statement %d", i)
		}
	}
	if na != nb {
		t.Fatalf("insert counts differ: %d vs %d", na, nb)
	}
	// 95% insert weight must dominate the tail mix.
	if na < 500 {
		t.Fatalf("only %d/1000 inserts after retargeting to 95%% insert weight", na)
	}
	// Negative weights are clamped, not panicked on.
	g := New(CommonProfile(1))
	g.SetWeights(Weights{Insert: -5, Select: -1})
	for i := 0; i < 50; i++ {
		g.Next()
	}
}

// ClassOf and ShapeOf must agree with what the generator actually
// produced — they are the coverage attribution keys.
func TestClassAndShapeTaxonomy(t *testing.T) {
	g := New(CommonProfile(17))
	seenClass := map[Class]bool{}
	seenShape := map[Shape]bool{}
	for i := 0; i < 4000; i++ {
		st := g.Next()
		cl := ClassOf(st)
		seenClass[cl] = true
		if sh := ShapeOf(st); sh != "" {
			if cl != ClassSelect {
				t.Fatalf("non-select statement classified with shape %q", sh)
			}
			seenShape[sh] = true
		}
	}
	for _, cl := range Classes {
		if !seenClass[cl] {
			t.Errorf("class %s never produced by the common profile", cl)
		}
	}
	for _, sh := range Shapes {
		if !seenShape[sh] {
			t.Errorf("shape %s never produced by the common profile", sh)
		}
	}
}
