package qgen

import (
	"strings"
	"testing"

	"divsql/internal/server"
	"divsql/internal/sql/ast"
	"divsql/internal/sql/parser"
)

// Same seed, same options: byte-identical statement streams.
func TestSeedDeterminism(t *testing.T) {
	const n = 800
	render := func() []string {
		g := New(CommonProfile(42))
		out := make([]string, n)
		for i := range out {
			out[i] = g.NextSQL()
		}
		return out
	}
	a, b := render(), render()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("streams diverge at statement %d:\n  a: %s\n  b: %s", i, a[i], b[i])
		}
	}
	g2 := New(CommonProfile(43))
	diff := 0
	for i := 0; i < n; i++ {
		if g2.NextSQL() != a[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Error("different seeds produced identical streams")
	}
}

// Everything the generator emits must survive parse -> render -> parse
// with a stable render and a stable fingerprint: the differential
// harness ships rendered text and dedups on fingerprints.
func TestGeneratedStatementsRoundTrip(t *testing.T) {
	opts := CommonProfile(7)
	// Exercise the toggled features too: round-tripping must hold for
	// every construct, not just the common profile.
	opts.Sequences = true
	opts.Mod = true
	opts.FloatMul = true
	opts.DistinctViews = true
	opts.RowLimit = ast.LimitLimit
	g := New(opts)
	for i := 0; i < 5000; i++ {
		st := g.Next()
		sql := ast.Render(st)
		st2, err := parser.Parse(sql)
		if err != nil {
			t.Fatalf("statement %d does not re-parse: %q: %v", i, sql, err)
		}
		if r2 := ast.Render(st2); r2 != sql {
			t.Fatalf("statement %d render not stable:\n  r1: %s\n  r2: %s", i, sql, r2)
		}
		if f1, f2 := ast.FingerprintOf(st).String(), ast.FingerprintOf(st2).String(); f1 != f2 {
			t.Fatalf("statement %d fingerprint unstable:\n  sql: %s\n  f1: %s\n  f2: %s", i, sql, f1, f2)
		}
	}
}

// The stream must be semantically coherent, not just parseable: on the
// pristine oracle the overwhelming majority of statements execute, and
// none fail for schema-tracking reasons (unknown table/column).
func TestStreamExecutesOnOracle(t *testing.T) {
	g := New(CommonProfile(11))
	orc := server.NewOracle()
	const n = 3000
	failures := 0
	for i := 0; i < n; i++ {
		sql := g.NextSQL()
		_, _, err := orc.Exec(sql)
		if err != nil {
			failures++
			low := strings.ToLower(err.Error())
			if strings.Contains(low, "syntax") || strings.Contains(low, "unknown table") ||
				strings.Contains(low, "no such") || strings.Contains(low, "not found") ||
				strings.Contains(low, "unknown column") {
				t.Fatalf("statement %d lost schema coherence: %q: %v", i, sql, err)
			}
		}
	}
	if failures > n/10 {
		t.Errorf("%d/%d statements errored on the oracle; the generator should be mostly well-formed", failures, n)
	}
}

// Pool names must be created early and never dropped; generated names
// must carry the prefix.
func TestTableNamePoolAndPrefix(t *testing.T) {
	opts := CommonProfile(3)
	opts.TableNames = []string{"TIB0001", "TMS0042"}
	opts.NamePrefix = "S7_"
	g := New(opts)
	created := map[string]bool{}
	dropped := map[string]bool{}
	for i := 0; i < 1500; i++ {
		switch st := g.Next().(type) {
		case *ast.CreateTable:
			created[st.Name] = true
			if !strings.HasPrefix(st.Name, "S7_") && st.Name != "TIB0001" && st.Name != "TMS0042" {
				t.Fatalf("unprefixed generated table %q", st.Name)
			}
		case *ast.CreateView:
			if !strings.HasPrefix(st.Name, "S7_") {
				t.Fatalf("unprefixed view %q", st.Name)
			}
		case *ast.CreateIndex:
			if !strings.HasPrefix(st.Name, "S7_") {
				t.Fatalf("unprefixed index %q", st.Name)
			}
		case *ast.DropTable:
			dropped[st.Name] = true
		}
	}
	if !created["TIB0001"] || !created["TMS0042"] {
		t.Errorf("pool tables not created: %v", created)
	}
	if dropped["TIB0001"] || dropped["TMS0042"] {
		t.Error("pool (fault-trigger) tables must never be dropped")
	}
}

// Statements referencing pool tables must actually reach them with
// query shapes (the fault triggers key on SELECT/INSERT flags).
func TestPoolTablesAreExercised(t *testing.T) {
	opts := CommonProfile(5)
	opts.TableNames = []string{"TPG0001"}
	g := New(opts)
	selects, inserts := 0, 0
	for i := 0; i < 2000; i++ {
		st := g.Next()
		fp := ast.FingerprintOf(st)
		if !fp.UsesTable("TPG0001") {
			continue
		}
		if fp.Has(ast.FlagSelect) {
			selects++
		}
		if fp.Has(ast.FlagInsert) {
			inserts++
		}
	}
	if selects == 0 || inserts == 0 {
		t.Errorf("pool table underexercised: %d selects, %d inserts", selects, inserts)
	}
}

// The bounded Stream adapter must deliver exactly n statements and then
// stop (it feeds the study's executor path).
func TestStreamAdapter(t *testing.T) {
	s := NewStream(New(CommonProfile(1)), 5)
	for i := 0; i < 5; i++ {
		if _, ok := s.Next(); !ok {
			t.Fatalf("stream ended early at %d", i)
		}
	}
	if _, ok := s.Next(); ok {
		t.Error("stream did not end after n statements")
	}
}

// Transactions must stay balanced: no COMMIT/ROLLBACK without BEGIN and
// no nested BEGIN (the servers would reject them identically, but the
// stream should not waste its budget on rejected statements).
func TestTransactionsBalanced(t *testing.T) {
	g := New(CommonProfile(9))
	in := false
	for i := 0; i < 2000; i++ {
		switch g.Next().(type) {
		case *ast.Begin:
			if in {
				t.Fatal("nested BEGIN")
			}
			in = true
		case *ast.Commit, *ast.Rollback:
			if !in {
				t.Fatal("COMMIT/ROLLBACK outside transaction")
			}
			in = false
		}
	}
}

// With sequences enabled the stream must contain sequence-advancing
// SELECTs, and every one of them must classify as NOT read-only on the
// server — the property each layer's write-path gating hangs off.
func TestSequenceAdvancingSelectsEmitted(t *testing.T) {
	opts := CommonProfile(5)
	opts.Sequences = true
	g := New(opts)
	orc := server.NewOracle()
	seen := 0
	for i := 0; i < 4000; i++ {
		st := g.Next()
		sql := ast.Render(st)
		if _, ok := st.(*ast.Select); ok && strings.Contains(sql, "NEXTVAL(") {
			if orc.ReadOnly(sql) {
				t.Fatalf("sequence-advancing SELECT classified read-only: %q", sql)
			}
			seen++
		}
		_, _, _ = orc.Exec(sql) // keep oracle schema in lockstep
	}
	if seen == 0 {
		t.Fatal("no sequence-advancing SELECT generated in 4000 statements")
	}
}
