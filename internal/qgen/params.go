package qgen

import (
	"strconv"

	"divsql/internal/sql/ast"
	"divsql/internal/sql/types"
)

// BindMode is the bind-dimension taxonomy of the Weights plane: whether
// a generated statement carries its values inline as literals or binds
// them as typed arguments through the prepare/bind path. Bind-time
// coercion is a statement-class dimension of its own — the same
// syntactic shape can agree inline and diverge bound.
type BindMode string

// Bind modes.
const (
	BindInline BindMode = "inline"
	BindParam  BindMode = "param"
)

// BindModes lists the bind modes in deterministic order.
var BindModes = []BindMode{BindInline, BindParam}

// BindModeOf classifies a statement by its bind mode (derivable from the
// AST alone, like ClassOf/ShapeOf).
func BindModeOf(st ast.Statement) BindMode {
	if ast.NumParams(st) > 0 {
		return BindParam
	}
	return BindInline
}

// maybeParamize converts a freshly generated statement into its bound
// form — some of its literals become $n placeholders and the values move
// into the returned argument vector — with probability given by the
// Weights bind plane. Only DML and queries participate (DDL cannot carry
// parameters). Returns nil when the statement stays inline.
func (g *Generator) maybeParamize(st ast.Statement) []types.Value {
	if !g.opts.Params {
		return nil
	}
	switch st.(type) {
	case *ast.Insert, *ast.Update, *ast.Delete, *ast.Select:
	default:
		return nil
	}
	if g.weightedPick([]int{g.w.InlineBind, g.w.ParamBind}) != 1 {
		return nil
	}
	p := &paramizer{g: g}
	p.statement(st)
	return p.args
}

// paramizer rewrites an AST in place, replacing value literals with
// Param nodes and collecting the argument vector in ordinal order. The
// walk order is deterministic (slice order), so the rewrite is part of
// the generator's reproducibility contract.
type paramizer struct {
	g    *Generator
	args []types.Value
}

func (p *paramizer) statement(st ast.Statement) {
	switch x := st.(type) {
	case *ast.Insert:
		for _, row := range x.Rows {
			for i := range row {
				row[i] = p.expr(row[i])
			}
		}
		p.sel(x.Select)
	case *ast.Update:
		for i := range x.Sets {
			x.Sets[i].Value = p.expr(x.Sets[i].Value)
		}
		x.Where = p.expr(x.Where)
	case *ast.Delete:
		x.Where = p.expr(x.Where)
	case *ast.Select:
		p.sel(x)
	}
}

// sel paramizes a query's predicates (WHERE, HAVING, join conditions)
// and descends into derived tables, subqueries and UNION branches.
// Projection, GROUP BY and ORDER BY expressions stay inline: a bare
// parameter there is either illegal or meaningless to most dialects.
func (p *paramizer) sel(s *ast.Select) {
	if s == nil {
		return
	}
	s.Where = p.expr(s.Where)
	s.Having = p.expr(s.Having)
	for i := range s.From {
		p.sel(s.From[i].Table.Subquery)
		for j := range s.From[i].Joins {
			s.From[i].Joins[j].On = p.expr(s.From[i].Joins[j].On)
			p.sel(s.From[i].Joins[j].Right.Subquery)
		}
	}
	p.sel(s.Union)
}

func (p *paramizer) expr(e ast.Expr) ast.Expr {
	switch x := e.(type) {
	case nil:
		return nil
	case *ast.Literal:
		return p.lit(x)
	case *ast.Binary:
		x.L = p.expr(x.L)
		x.R = p.expr(x.R)
		return x
	case *ast.Unary:
		x.X = p.expr(x.X)
		return x
	case *ast.FuncCall:
		// Sequence-advancing functions name their sequence in the first
		// argument; that name must stay a literal.
		if up := x.Name; up == "NEXTVAL" || up == "GEN_ID" {
			return x
		}
		for i := range x.Args {
			x.Args[i] = p.expr(x.Args[i])
		}
		return x
	case *ast.In:
		x.X = p.expr(x.X)
		for i := range x.List {
			x.List[i] = p.expr(x.List[i])
		}
		p.sel(x.Select)
		return x
	case *ast.Exists:
		p.sel(x.Select)
		return x
	case *ast.Subquery:
		p.sel(x.Select)
		return x
	case *ast.Between:
		x.X = p.expr(x.X)
		x.Lo = p.expr(x.Lo)
		x.Hi = p.expr(x.Hi)
		return x
	case *ast.Like:
		x.X = p.expr(x.X)
		x.Pattern = p.expr(x.Pattern)
		return x
	case *ast.IsNull:
		x.X = p.expr(x.X)
		return x
	case *ast.Case:
		x.Operand = p.expr(x.Operand)
		for i := range x.Whens {
			x.Whens[i].Cond = p.expr(x.Whens[i].Cond)
			x.Whens[i].Then = p.expr(x.Whens[i].Then)
		}
		x.Else = p.expr(x.Else)
		return x
	case *ast.Cast:
		x.X = p.expr(x.X)
		return x
	default:
		return e
	}
}

// lit replaces one value literal with a Param (half of them, seeded),
// recording the value as the next argument. In quirk mode the value is
// sometimes shifted into a bind-coercion failure region — empty strings,
// trailing spaces, numeric strings, booleans — the regions where the
// four servers' BindRules legitimately disagree with the oracle.
func (p *paramizer) lit(l *ast.Literal) ast.Expr {
	switch l.Val.K {
	case types.KindInt, types.KindFloat, types.KindString:
	default:
		return l // NULL, bool and date literals stay inline
	}
	if p.g.rnd.Intn(2) != 0 {
		return l
	}
	v := l.Val
	if p.g.opts.ParamQuirks {
		v = p.g.quirkValue(v)
	}
	p.args = append(p.args, v)
	return &ast.Param{N: len(p.args)}
}

// quirkValue sometimes shifts an argument into a bind-coercion quirk
// region (ParamQuirks mode, used by calibrated hunts; fault-free gates
// keep the safe values, on which all BindRules are identities).
func (g *Generator) quirkValue(v types.Value) types.Value {
	switch v.K {
	case types.KindString:
		switch g.rnd.Intn(6) {
		case 0:
			return types.NewString("") // OR binds '' as NULL
		case 1:
			return types.NewString(v.S + "  ") // PG trims trailing spaces
		case 2:
			return types.NewString(strconv.Itoa(g.rnd.Intn(100))) // IB re-types numeric strings
		}
	case types.KindInt:
		if g.rnd.Intn(8) == 0 {
			return types.NewBool(v.I%2 == 0) // MS binds booleans as 0/1
		}
	}
	return v
}
