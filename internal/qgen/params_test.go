package qgen

import (
	"strings"
	"testing"

	"divsql/internal/sql/ast"
	"divsql/internal/sql/types"
)

func paramOptions(seed int64) Options {
	o := CommonProfile(seed)
	o.Params = true
	return o
}

func TestParamsModeEmitsBoundStatements(t *testing.T) {
	g := New(paramOptions(11))
	bound, inline := 0, 0
	for i := 0; i < 2000; i++ {
		st := g.Next()
		args := g.LastArgs()
		np := ast.NumParams(st)
		if np != len(args) {
			t.Fatalf("stmt %d: %d placeholders, %d args: %s", i, np, len(args), ast.Render(st))
		}
		if len(args) > 0 {
			bound++
			if BindModeOf(st) != BindParam {
				t.Fatalf("bound statement classifies as %s", BindModeOf(st))
			}
			if !ast.FingerprintOf(st).Has(ast.FlagParam) {
				t.Fatalf("bound statement lacks FlagParam: %s", ast.Render(st))
			}
		} else {
			inline++
		}
	}
	if bound == 0 || inline == 0 {
		t.Fatalf("bind plane must mix modes: bound=%d inline=%d", bound, inline)
	}
}

func TestParamsModeDeterministic(t *testing.T) {
	g1 := New(paramOptions(5))
	g2 := New(paramOptions(5))
	for i := 0; i < 1000; i++ {
		s1, s2 := g1.NextSQL(), g2.NextSQL()
		if s1 != s2 {
			t.Fatalf("stream diverged at %d:\n%s\n%s", i, s1, s2)
		}
	}
}

func TestParamsSafeValuesWithoutQuirks(t *testing.T) {
	// Without ParamQuirks every bound value must be a BindRules identity:
	// non-empty, no trailing spaces, not numeric-looking strings; no
	// booleans. This is what keeps the fault-free -params gate green.
	g := New(paramOptions(23))
	for i := 0; i < 3000; i++ {
		g.Next()
		for _, v := range g.LastArgs() {
			switch v.K {
			case types.KindBool:
				t.Fatalf("bool argument in safe mode")
			case types.KindString:
				if v.S == "" || strings.TrimRight(v.S, " ") != v.S {
					t.Fatalf("unsafe string argument %q", v.S)
				}
				// Generated strings are lowercase words, possibly with
				// LIKE wildcards; crucially never numeric-looking.
				if strings.IndexFunc(v.S, func(r rune) bool {
					return (r < 'a' || r > 'z') && r != '%' && r != '_'
				}) >= 0 {
					t.Fatalf("unexpected string argument %q", v.S)
				}
			}
		}
	}
}

func TestParamQuirkValuesAppear(t *testing.T) {
	o := paramOptions(7)
	o.ParamQuirks = true
	g := New(o)
	var empty, trailing, numeric, boolean bool
	for i := 0; i < 8000; i++ {
		g.Next()
		for _, v := range g.LastArgs() {
			switch {
			case v.K == types.KindBool:
				boolean = true
			case v.K == types.KindString && v.S == "":
				empty = true
			case v.K == types.KindString && strings.HasSuffix(v.S, " "):
				trailing = true
			case v.K == types.KindString && strings.IndexFunc(v.S, func(r rune) bool { return r < '0' || r > '9' }) < 0:
				numeric = true
			}
		}
	}
	if !empty || !trailing || !numeric || !boolean {
		t.Errorf("quirk regions unexercised: empty=%v trailing=%v numeric=%v bool=%v",
			empty, trailing, numeric, boolean)
	}
}

func TestBindPlaneRetargetable(t *testing.T) {
	o := paramOptions(3)
	g := New(o)
	w := g.Weights()
	if w.InlineBind != 1 || w.ParamBind != 2 {
		t.Fatalf("default bind weights: %+v", w)
	}
	// All-inline retarget: no statement binds from here on.
	w.ParamBind = 0
	g.SetWeights(w)
	for i := 0; i < 500; i++ {
		g.Next()
		if len(g.LastArgs()) != 0 {
			t.Fatal("ParamBind=0 must disable binding")
		}
	}
}
