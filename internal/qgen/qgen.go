// Package qgen is a seeded, reproducible generator of schema-aware SQL
// workloads. It tracks the live schema it has built (tables, columns and
// their types, views, indexes, sequences) and emits a weighted stream of
// DDL, DML and queries — joins, subqueries, aggregates, expressions —
// over the dialect subset shared by all four simulated servers.
//
// The generator is the workload half of the differential-testing rig
// (internal/difftest replays its streams through every server and the
// pristine oracle). Its default CommonProfile is calibrated to the
// simulated servers' known quirk regions: constructs on which a healthy
// server legitimately differs from the oracle (float multiplication
// precision, MOD of negative dividends, unaliased aggregates, DISTINCT
// views under LEFT JOIN, vendor row-limit syntax, sequences) are held
// behind feature toggles, so that with fault injection disabled a stream
// produces zero oracle divergences and every divergence found under
// injection is attributable to a fault.
//
// The generator is steerable and deep-run-safe: its statement-class and
// SELECT-shape distributions form an adaptive Weights plane that
// callers (difftest's coverage feedback) retarget mid-stream with
// SetWeights, and Options.MaxRowsPerTable bounds generated-table
// cardinality — INSERT pressure converts into UPDATEs and row-aging
// DELETEs at the cap — so per-statement evaluation cost stays flat on
// arbitrarily long streams.
//
// Determinism contract: the same Options (including Seed) produce a
// byte-identical statement stream, on any platform. Every choice flows
// from the seeded PRNG and ordered slices; no map iteration. SetWeights
// preserves the contract: the stream is a pure function of the seed and
// the (position, value) sequence of SetWeights calls.
package qgen

import (
	"fmt"
	"math/rand"

	"divsql/internal/core"
	"divsql/internal/sql/ast"
	"divsql/internal/sql/types"
)

// Options configure a Generator.
type Options struct {
	// Seed drives every random choice.
	Seed int64

	// --- Feature toggles -------------------------------------------------
	// All default to off in CommonProfile because each one either is not
	// in the four dialects' common subset or falls into a known engine
	// quirk region (and would make even a fault-free server diverge from
	// the oracle).

	// Sequences enables CREATE SEQUENCE / NEXTVAL (not offered by MS).
	Sequences bool
	// RowLimit emits the given row-limiting syntax (dialect specific).
	RowLimit ast.LimitSyntax
	// Mod enables MOD/% expressions (quirk region on PG and OR for
	// negative dividends).
	Mod bool
	// FloatMul enables multiplication with float operands (quirk region
	// on PG and MS: 32-bit precision loss).
	FloatMul bool
	// DistinctViews enables DISTINCT in view definitions (quirk region on
	// IB and MS under LEFT JOIN).
	DistinctViews bool
	// Params enables the bound statement mode: a weighted share of the
	// generated DML/queries carries $n placeholders plus a typed
	// argument vector (Generator.LastArgs) instead of inline literals,
	// exercising every server's prepare/bind path. The share is the
	// Weights bind plane (InlineBind/ParamBind), so the coverage
	// feedback loop can retarget it like any other dimension.
	Params bool
	// ParamQuirks additionally shifts some bound argument values into
	// the servers' bind-coercion failure regions (empty strings,
	// trailing spaces, numeric strings, booleans — see engine.BindRules).
	// Off in fault-free gates: safe values pass every server's BindRules
	// unchanged, so the common subset still agrees with the oracle.
	ParamQuirks bool
	// PartitionSympathy biases simple SELECTs toward the metamorphic
	// oracles' applicability region (internal/metamorph): WHERE clauses
	// become near-universal on the simple shape, and a share of simple
	// selects carries an all-COUNT/SUM item list — the additive TLP
	// form, which no other shape produces (aggregates otherwise appear
	// only under GROUP BY or inside scalar subqueries). Off by default:
	// it reshapes the seeded stream, so only runs that arm TLP/NoREC/
	// CERT turn it on.
	PartitionSympathy bool

	// --- Structural weights and caps ------------------------------------

	// Weights select the statement class (relative, need not sum to 100).
	// They seed the generator's adaptive Weights plane; callers can
	// retarget the plane mid-stream with Generator.SetWeights (see
	// Weights).
	WeightDDL, WeightInsert, WeightUpdate, WeightDelete, WeightSelect, WeightTxn int

	// MinTables is kept alive (DROP TABLE is suppressed below it);
	// MaxTables caps CREATE TABLE.
	MinTables, MaxTables int
	// MaxColumns caps columns per table (≥ 2).
	MaxColumns int
	// MaxJoins caps joined tables per SELECT (0 disables joins).
	MaxJoins int
	// MaxExprDepth caps expression nesting.
	MaxExprDepth int
	// MaxSubqueryDepth caps subquery nesting (0 disables subqueries).
	MaxSubqueryDepth int
	// MaxInsertRows caps rows per INSERT.
	MaxInsertRows int
	// MaxRowsPerTable bounds generated-table cardinality (0: unbounded).
	// The generator tracks a conservative per-table row estimate (an
	// upper bound on the live row count); once a table's estimate reaches
	// the cap, INSERT pressure on it is redirected into UPDATEs and
	// row-aging DELETEs, so table sizes — and with them per-statement
	// evaluation and adjudication cost — stay bounded no matter how long
	// the stream runs. The estimates rewind with ROLLBACK exactly like
	// the rest of the schema tracking, so the bound survives transaction
	// rewinds.
	MaxRowsPerTable int
	// Views enables CREATE VIEW and view references in FROM.
	Views bool
	// Indexes enables CREATE/DROP INDEX.
	Indexes bool
	// Unions enables UNION/UNION ALL queries.
	Unions bool
	// Transactions enables BEGIN/COMMIT/ROLLBACK around runs of work.
	Transactions bool
	// Isolation additionally emits SET TRANSACTION ISOLATION LEVEL
	// statements (outside transactions and as the first statement of
	// some), so the replicas' read views — and their acceptance of each
	// level name — enter the adjudicated stream. Requires Transactions.
	Isolation bool
	// IsolationLevels is the pool of level names Isolation draws from.
	// Empty defaults to the universally accepted subset (READ COMMITTED,
	// SERIALIZABLE) — safe for fault-free gates; calibrated hunts pass
	// the full five names so per-dialect acceptance divergence becomes a
	// fingerprint surface.
	IsolationLevels []string

	// --- Naming ----------------------------------------------------------

	// TableNames seeds the table-name pool: CREATE TABLE prefers these
	// names until exhausted. The differential harness points this at the
	// corpus faults' trigger tables so generated statements fall into the
	// calibrated failure regions.
	TableNames []string
	// NamePrefix namespaces every generated (non-pool) table, view and
	// index name. Concurrent client streams use distinct prefixes so
	// their workloads touch disjoint state and adjudication stays exact.
	NamePrefix string
}

// CommonProfile returns the default options: the common dialect subset,
// quirk regions avoided, all structural features on.
func CommonProfile(seed int64) Options {
	return Options{
		Seed:         seed,
		WeightDDL:    7,
		WeightInsert: 28,
		WeightUpdate: 12,
		WeightDelete: 5,
		WeightSelect: 42,
		WeightTxn:    6,

		MinTables:        2,
		MaxTables:        8,
		MaxColumns:       5,
		MaxJoins:         2,
		MaxExprDepth:     3,
		MaxSubqueryDepth: 2,
		MaxInsertRows:    3,
		Views:            true,
		Indexes:          true,
		Unions:           true,
		Transactions:     true,
	}
}

// column is the generator's record of one column it created.
type column struct {
	name     string
	kind     types.Kind // KindInt, KindFloat or KindString
	typeName ast.TypeName
	notNull  bool
	pk       bool
	nonNeg   bool // CHECK (col >= 0)
}

// relation is a base table or a view the generator created.
type relation struct {
	name   string
	cols   []column
	isView bool
	// base is the underlying table name for views.
	base string
	// refs are all table names the view body reads — the FROM source
	// plus every table referenced from a predicate subquery. A DROP
	// TABLE of any of them breaks the view on the servers, so the
	// generator cascade-forgets views by refs, not just by base.
	refs []string
	// nextPK feeds unique primary-key values (base tables only).
	nextPK int64
	// hasPK reports whether cols contains a primary key.
	hasPK bool
	// rows is a conservative estimate — an upper bound — of the live row
	// count. INSERT adds its row count; an aging DELETE (a PK band known
	// to cover every live key below a threshold) and an unconditional
	// DELETE lower it; a random predicate DELETE does not (it may match
	// nothing, and the bound must never undershoot reality). The
	// cardinality cap (Options.MaxRowsPerTable) is enforced against this
	// estimate.
	rows int
	// agedPK is the exclusive upper bound of primary keys removed by
	// aging: every live PK is >= agedPK. Aging DELETEs advance it.
	agedPK int64
}

func (r *relation) col(i int) *column { return &r.cols[i] }

// pick returns a random column index satisfying want (or -1).
func (r *relation) pick(rnd *rand.Rand, want func(*column) bool) int {
	idx := make([]int, 0, len(r.cols))
	for i := range r.cols {
		if want(&r.cols[i]) {
			idx = append(idx, i)
		}
	}
	if len(idx) == 0 {
		return -1
	}
	return idx[rnd.Intn(len(idx))]
}

// Generator emits one deterministic statement stream.
type Generator struct {
	opts Options
	rnd  *rand.Rand
	w    Weights // adaptive budget plane (see SetWeights)

	tables  []*relation // base tables, creation order
	views   []*relation
	indexes []struct{ name, table string }
	seqs    []string

	pool    []string // unused pool names
	tableN  int      // synthetic name counters
	viewN   int
	indexN  int
	seqN    int
	inTxn   bool
	snap    *schemaSnapshot // schema state as of BEGIN (rollback target)
	emitted int
	// lastArgs is the argument vector of the most recent Next() when the
	// statement was paramized (nil for inline statements).
	lastArgs []types.Value
}

// schemaSnapshot captures the schema-tracking state at a transaction
// boundary so ROLLBACK can rewind the generator along with the servers.
type schemaSnapshot struct {
	tables  []*relation
	views   []*relation
	indexes []struct{ name, table string }
	seqs    []string
	pool    []string
}

// New returns a generator over the options. Zero-valued caps fall back
// to the CommonProfile values so a partially-filled Options is usable.
func New(opts Options) *Generator {
	def := CommonProfile(opts.Seed)
	if opts.WeightDDL+opts.WeightInsert+opts.WeightUpdate+opts.WeightDelete+opts.WeightSelect+opts.WeightTxn == 0 {
		opts.WeightDDL, opts.WeightInsert, opts.WeightUpdate = def.WeightDDL, def.WeightInsert, def.WeightUpdate
		opts.WeightDelete, opts.WeightSelect, opts.WeightTxn = def.WeightDelete, def.WeightSelect, def.WeightTxn
	}
	if opts.MinTables == 0 {
		opts.MinTables = def.MinTables
	}
	if opts.MaxTables == 0 {
		opts.MaxTables = def.MaxTables
	}
	if opts.MaxTables < opts.MinTables {
		opts.MaxTables = opts.MinTables
	}
	if opts.MaxColumns < 2 {
		opts.MaxColumns = def.MaxColumns
	}
	if opts.MaxInsertRows == 0 {
		opts.MaxInsertRows = def.MaxInsertRows
	}
	if opts.MaxExprDepth == 0 {
		opts.MaxExprDepth = def.MaxExprDepth
	}
	// Pool tables must all be creatable.
	if n := len(opts.TableNames) + opts.MinTables; opts.MaxTables < n {
		opts.MaxTables = n
	}
	return &Generator{
		opts: opts,
		rnd:  rand.New(rand.NewSource(opts.Seed)),
		w:    weightsFromOptions(opts).sanitize(),
		pool: append([]string(nil), opts.TableNames...),
	}
}

// Emitted reports how many statements the generator has produced.
func (g *Generator) Emitted() int { return g.emitted }

// Next produces the next statement of the stream. In Params mode the
// statement may carry $n placeholders; LastArgs then holds the typed
// argument vector of this statement (nil otherwise).
func (g *Generator) Next() ast.Statement {
	st := g.nextStmt()
	g.lastArgs = g.maybeParamize(st)
	return st
}

// LastArgs returns the bound-argument vector of the most recent Next()
// (nil for an inline statement).
func (g *Generator) LastArgs() []types.Value { return g.lastArgs }

func (g *Generator) nextStmt() ast.Statement {
	g.emitted++
	// Bootstrap: nothing is queryable until tables exist and hold rows.
	if len(g.tables) < g.opts.MinTables {
		return g.genCreateTable()
	}
	for {
		switch g.pickClass() {
		case ClassDDL:
			if st := g.genDDL(); st != nil {
				return st
			}
		case ClassInsert:
			if st := g.genInsert(); st != nil {
				return st
			}
		case ClassUpdate:
			if st := g.genUpdate(); st != nil {
				return st
			}
		case ClassDelete:
			if st := g.genDelete(); st != nil {
				return st
			}
		case ClassSelect:
			if st := g.genSelect(); st != nil {
				return st
			}
		case ClassTxn:
			if st := g.genTxn(); st != nil {
				return st
			}
		}
	}
}

// NextSQL renders the next statement. In Params mode a bound statement
// is rendered in its replayable encoded form (core.EncodeBound), which
// the executor paths decode back into prepare/bind/execute.
func (g *Generator) NextSQL() string {
	st := g.Next()
	return core.EncodeBound(ast.Render(st), g.lastArgs)
}

// Stream is a bounded statement source over a generator. It satisfies
// the study's statement-stream interface (Next() (string, bool)), so
// generated workloads run through the same executor path as the corpus.
type Stream struct {
	G         *Generator
	Remaining int
}

// NewStream bounds a generator to n statements.
func NewStream(g *Generator, n int) *Stream { return &Stream{G: g, Remaining: n} }

// Next implements the statement-stream contract.
func (s *Stream) Next() (string, bool) {
	if s.Remaining <= 0 {
		return "", false
	}
	s.Remaining--
	return s.G.NextSQL(), true
}

// pickClass draws a statement class from the adaptive Weights plane
// (weight order matches Classes).
func (g *Generator) pickClass() Class {
	w := g.w
	wTxn := w.Txn
	if !g.opts.Transactions {
		wTxn = 0
	}
	i := g.weightedPick([]int{w.DDL, w.Insert, w.Update, w.Delete, w.Select, wTxn})
	if i < 0 {
		// Degenerate plane (e.g. only Txn weighted with Transactions
		// off): queries are the only class that is always generable.
		return ClassSelect
	}
	return Classes[i]
}

// ---------------------------------------------------------------------------
// Naming

func (g *Generator) tableName() string {
	if len(g.pool) > 0 {
		n := g.pool[0]
		g.pool = g.pool[1:]
		return n
	}
	g.tableN++
	return fmt.Sprintf("%sQT%d", g.opts.NamePrefix, g.tableN)
}

func (g *Generator) viewName() string {
	g.viewN++
	return fmt.Sprintf("%sQV%d", g.opts.NamePrefix, g.viewN)
}

func (g *Generator) indexName() string {
	g.indexN++
	return fmt.Sprintf("%sQIX%d", g.opts.NamePrefix, g.indexN)
}

func (g *Generator) seqName() string {
	g.seqN++
	return fmt.Sprintf("%sQSQ%d", g.opts.NamePrefix, g.seqN)
}

// ---------------------------------------------------------------------------
// Relation selection

func (g *Generator) anyTable() *relation {
	if len(g.tables) == 0 {
		return nil
	}
	return g.tables[g.rnd.Intn(len(g.tables))]
}

// anyRelation returns a table or (when views are on) a view.
func (g *Generator) anyRelation() *relation {
	n := len(g.tables)
	if g.opts.Views {
		n += len(g.views)
	}
	if n == 0 {
		return nil
	}
	i := g.rnd.Intn(n)
	if i < len(g.tables) {
		return g.tables[i]
	}
	return g.views[i-len(g.tables)]
}

func (g *Generator) dropRelation(name string, view bool) {
	if view {
		for i, v := range g.views {
			if v.name == name {
				g.views = append(g.views[:i], g.views[i+1:]...)
				return
			}
		}
		return
	}
	for i, t := range g.tables {
		if t.name == name {
			g.tables = append(g.tables[:i], g.tables[i+1:]...)
			break
		}
	}
	// Views reading a dropped table — as their FROM source or from a
	// predicate subquery — become invalid; forget them so later queries
	// do not reference a broken view. (Selecting a broken view errors
	// identically on every server, but it wastes stream budget.)
	kept := g.views[:0]
	for _, v := range g.views {
		reads := v.base == name
		for _, r := range v.refs {
			if r == name {
				reads = true
				break
			}
		}
		if !reads {
			kept = append(kept, v)
		}
	}
	g.views = kept
	keptIx := g.indexes[:0]
	for _, ix := range g.indexes {
		if ix.table != name {
			keptIx = append(keptIx, ix)
		}
	}
	g.indexes = keptIx
}
