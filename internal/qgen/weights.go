package qgen

import "divsql/internal/sql/ast"

// Class is the statement-class taxonomy the generator budgets over. It
// is the unit of the coverage feedback loop: internal/difftest counts
// hits and divergence yield per class and retargets the generator's
// Weights between batches.
type Class string

const (
	ClassDDL    Class = "ddl"
	ClassInsert Class = "insert"
	ClassUpdate Class = "update"
	ClassDelete Class = "delete"
	ClassSelect Class = "select"
	ClassTxn    Class = "txn"
)

// Classes lists every statement class in deterministic order.
var Classes = []Class{ClassDDL, ClassInsert, ClassUpdate, ClassDelete, ClassSelect, ClassTxn}

// ClassOf maps an emitted statement back to its class. It is total over
// everything the generator can produce (and over hand-written streams:
// any unrecognized statement counts as DDL, the schema-changing
// catch-all).
func ClassOf(st ast.Statement) Class {
	switch st.(type) {
	case *ast.Insert:
		return ClassInsert
	case *ast.Update:
		return ClassUpdate
	case *ast.Delete:
		return ClassDelete
	case *ast.Select:
		return ClassSelect
	case *ast.Begin, *ast.Commit, *ast.Rollback, *ast.SetTxn:
		return ClassTxn
	default:
		return ClassDDL
	}
}

// Shape is the SELECT sub-taxonomy: the structural query shapes the
// generator chooses among. Like Class it is a feedback dimension —
// under-explored shapes can be re-weighted without touching the class
// budget.
type Shape string

const (
	ShapeSimple Shape = "simple"
	ShapeJoin   Shape = "join"
	ShapeGroup  Shape = "group"
	ShapeUnion  Shape = "union"
	ShapeStar   Shape = "star"
	// ShapePoint and ShapeRange are the index-sympathetic shapes: a
	// single-table SELECT whose WHERE carries a top-level equality
	// (point) or ordering/BETWEEN bound (range) between a column and a
	// row-independent value — exactly the conjuncts the engine's
	// analyzer lowers to index point lookups and range scans. Keeping
	// them as first-class shapes lets the coverage feedback loop steer
	// budget onto (or off) the compiled access paths directly.
	ShapePoint Shape = "point"
	ShapeRange Shape = "range"
)

// Shapes lists every SELECT shape in deterministic order.
var Shapes = []Shape{ShapeSimple, ShapeJoin, ShapeGroup, ShapeUnion, ShapeStar, ShapePoint, ShapeRange}

// ShapeOf classifies a SELECT by its dominant structural feature. The
// mapping is derivable from the AST alone, so difftest can attribute
// coverage without the generator in the loop. Non-SELECT statements
// return "".
func ShapeOf(st ast.Statement) Shape {
	sel, ok := st.(*ast.Select)
	if !ok {
		return ""
	}
	switch {
	case sel.Union != nil:
		return ShapeUnion
	case len(sel.GroupBy) > 0:
		return ShapeGroup
	case len(sel.From) > 0 && len(sel.From[0].Joins) > 0:
		return ShapeJoin
	case len(sel.Items) == 1 && sel.Items[0].Star:
		return ShapeStar
	default:
		if point, rng := whereIndexShape(sel.Where); point {
			return ShapePoint
		} else if rng {
			return ShapeRange
		}
		return ShapeSimple
	}
}

// whereIndexShape walks the top-level AND tree of a WHERE clause and
// reports whether it carries an equality conjunct (point) or an
// ordering/BETWEEN bound (rng) between a plain column reference and a
// literal or parameter — the same leaves the analyzer's predicate
// classifier admits, so the shape taxonomy mirrors what the engine can
// actually serve from an index. Point dominates range in ShapeOf.
func whereIndexShape(e ast.Expr) (point, rng bool) {
	if e == nil {
		return false, false
	}
	switch x := e.(type) {
	case *ast.Binary:
		if x.Op == ast.OpAnd {
			lp, lr := whereIndexShape(x.L)
			rp, rr := whereIndexShape(x.R)
			return lp || rp, lr || rr
		}
		colVal := colValueLeaf(x.L, x.R) || colValueLeaf(x.R, x.L)
		switch x.Op {
		case ast.OpEq:
			return colVal, false
		case ast.OpLt, ast.OpLe, ast.OpGt, ast.OpGe:
			return false, colVal
		}
	case *ast.Between:
		if !x.Not && colValueLeaf(x.X, x.Lo) && valueLeafExpr(x.Hi) {
			return false, true
		}
	}
	return false, false
}

// colValueLeaf reports whether c is a bare column reference and v a
// row-independent value expression.
func colValueLeaf(c, v ast.Expr) bool {
	if _, ok := c.(*ast.ColumnRef); !ok {
		return false
	}
	return valueLeafExpr(v)
}

func valueLeafExpr(e ast.Expr) bool {
	switch e.(type) {
	case *ast.Literal, *ast.Param:
		return true
	default:
		return false
	}
}

// Weights is the generator's adaptive budget plane: relative weights for
// the statement classes and, within SELECT, for the query shapes. The
// zero value of a field means "never pick it" (subject to the
// feasibility fallbacks in Next); an all-zero class row falls back to
// queries, an all-zero shape row to the simple shape.
//
// Weights are plain data so a feedback controller can be pure: read
// coverage, compute a new Weights, install it with SetWeights. The
// stream stays deterministic as long as the sequence of SetWeights
// calls (values and positions in the stream) is itself deterministic —
// which holds when the controller derives them from the stream's own
// observed coverage, as difftest's Feedback does.
type Weights struct {
	// Statement classes (relative, need not sum to anything).
	DDL, Insert, Update, Delete, Select, Txn int
	// SELECT shapes (relative). JoinSelect and UnionSelect are capped by
	// the structural options (MaxJoins, Unions): a shape whose feature is
	// disabled is never picked regardless of its weight. PointSelect and
	// RangeSelect target the engine's index-backed access paths: PK
	// point probes and PK range scans over the live key band.
	SimpleSelect, JoinSelect, GroupSelect, UnionSelect, StarSelect, PointSelect, RangeSelect int
	// Bind plane (relative; only consulted when Options.Params is on):
	// the share of DML/queries that bind their values as typed arguments
	// (ParamBind) versus inline literals (InlineBind).
	InlineBind, ParamBind int
}

// DefaultShapeWeights extends the generator's historical fixed SELECT
// distribution (3/2/2/1/2 over simple/join/group/union/star) with the
// index-sympathetic shapes (2/1 over point/range).
func DefaultShapeWeights() (simple, join, group, union, star, point, rng int) {
	return 3, 2, 2, 1, 2, 2, 1
}

// weightsFromOptions seeds the plane from the Options' class weights
// plus the default shape split.
func weightsFromOptions(o Options) Weights {
	w := Weights{
		DDL: o.WeightDDL, Insert: o.WeightInsert, Update: o.WeightUpdate,
		Delete: o.WeightDelete, Select: o.WeightSelect, Txn: o.WeightTxn,
	}
	w.SimpleSelect, w.JoinSelect, w.GroupSelect, w.UnionSelect, w.StarSelect, w.PointSelect, w.RangeSelect = DefaultShapeWeights()
	if o.Params {
		w.InlineBind, w.ParamBind = DefaultBindWeights()
	}
	return w
}

// DefaultBindWeights is the starting inline/param split in Params mode:
// two thirds of the eligible statements bind.
func DefaultBindWeights() (inline, param int) { return 1, 2 }

// sanitize clamps negative weights to zero (a controller bug must not
// panic the PRNG arithmetic).
func (w Weights) sanitize() Weights {
	clamp := func(v *int) {
		if *v < 0 {
			*v = 0
		}
	}
	for _, p := range []*int{
		&w.DDL, &w.Insert, &w.Update, &w.Delete, &w.Select, &w.Txn,
		&w.SimpleSelect, &w.JoinSelect, &w.GroupSelect, &w.UnionSelect, &w.StarSelect,
		&w.PointSelect, &w.RangeSelect,
		&w.InlineBind, &w.ParamBind,
	} {
		clamp(p)
	}
	return w
}

// ClassWeight returns the weight of one class.
func (w Weights) ClassWeight(c Class) int {
	switch c {
	case ClassDDL:
		return w.DDL
	case ClassInsert:
		return w.Insert
	case ClassUpdate:
		return w.Update
	case ClassDelete:
		return w.Delete
	case ClassSelect:
		return w.Select
	case ClassTxn:
		return w.Txn
	}
	return 0
}

// SetClassWeight sets the weight of one class.
func (w *Weights) SetClassWeight(c Class, v int) {
	switch c {
	case ClassDDL:
		w.DDL = v
	case ClassInsert:
		w.Insert = v
	case ClassUpdate:
		w.Update = v
	case ClassDelete:
		w.Delete = v
	case ClassSelect:
		w.Select = v
	case ClassTxn:
		w.Txn = v
	}
}

// ShapeWeight returns the weight of one SELECT shape.
func (w Weights) ShapeWeight(s Shape) int {
	switch s {
	case ShapeSimple:
		return w.SimpleSelect
	case ShapeJoin:
		return w.JoinSelect
	case ShapeGroup:
		return w.GroupSelect
	case ShapeUnion:
		return w.UnionSelect
	case ShapeStar:
		return w.StarSelect
	case ShapePoint:
		return w.PointSelect
	case ShapeRange:
		return w.RangeSelect
	}
	return 0
}

// BindWeight returns the weight of one bind mode.
func (w Weights) BindWeight(m BindMode) int {
	switch m {
	case BindInline:
		return w.InlineBind
	case BindParam:
		return w.ParamBind
	}
	return 0
}

// SetBindWeight sets the weight of one bind mode.
func (w *Weights) SetBindWeight(m BindMode, v int) {
	switch m {
	case BindInline:
		w.InlineBind = v
	case BindParam:
		w.ParamBind = v
	}
}

// SetShapeWeight sets the weight of one SELECT shape.
func (w *Weights) SetShapeWeight(s Shape, v int) {
	switch s {
	case ShapeSimple:
		w.SimpleSelect = v
	case ShapeJoin:
		w.JoinSelect = v
	case ShapeGroup:
		w.GroupSelect = v
	case ShapeUnion:
		w.UnionSelect = v
	case ShapeStar:
		w.StarSelect = v
	case ShapePoint:
		w.PointSelect = v
	case ShapeRange:
		w.RangeSelect = v
	}
}

// weightedPick draws an index proportionally to the weights, consuming
// one PRNG value; -1 (and no PRNG consumption) when the total is zero.
// Both budget planes — statement classes and SELECT shapes — draw
// through it.
func (g *Generator) weightedPick(weights []int) int {
	total := 0
	for _, w := range weights {
		total += w
	}
	if total <= 0 {
		return -1
	}
	n := g.rnd.Intn(total)
	for i, w := range weights {
		if n < w {
			return i
		}
		n -= w
	}
	return len(weights) - 1
}

// Weights returns the generator's current budget plane.
func (g *Generator) Weights() Weights { return g.w }

// SetWeights retargets the budget plane for all statements generated
// from here on. Callers retune between batches: difftest's Feedback
// computes the new plane from the previous batch's coverage so
// under-explored classes and shapes receive the remaining budget.
// Setting weights never desynchronizes transaction or schema tracking —
// it only changes the class/shape distribution of future picks.
func (g *Generator) SetWeights(w Weights) { g.w = w.sanitize() }
