package qgen

import (
	"fmt"
	"sort"

	"divsql/internal/sql/ast"
	"divsql/internal/sql/types"
)

// genDDL emits one schema-changing statement, preferring CREATE TABLE
// while the name pool is unexhausted (so calibrated fault-trigger tables
// come into existence early in the stream).
func (g *Generator) genDDL() ast.Statement {
	canCreate := len(g.tables) < g.opts.MaxTables
	if canCreate && (len(g.pool) > 0 || g.rnd.Intn(3) == 0) {
		return g.genCreateTable()
	}
	type gen func() ast.Statement
	var choices []gen
	if g.opts.Views && len(g.tables) > 0 && len(g.views) < 4 {
		choices = append(choices, g.genCreateView)
	}
	if g.opts.Indexes && len(g.tables) > 0 && len(g.indexes) < 8 {
		choices = append(choices, g.genCreateIndex)
	}
	if g.opts.Indexes && len(g.indexes) > 0 {
		choices = append(choices, g.genDropIndex)
	}
	if len(g.views) > 0 {
		choices = append(choices, g.genDropView)
	}
	if g.droppableTable() != nil {
		choices = append(choices, g.genDropTable)
	}
	if g.opts.Sequences {
		if len(g.seqs) < 3 {
			choices = append(choices, g.genCreateSequence)
		}
		if len(g.seqs) > 0 {
			choices = append(choices, g.genDropSequence)
		}
	}
	if len(choices) == 0 {
		if canCreate {
			return g.genCreateTable()
		}
		return nil
	}
	return choices[g.rnd.Intn(len(choices))]()
}

func (g *Generator) genCreateTable() ast.Statement {
	name := g.tableName()
	rel := &relation{name: name, nextPK: 1, agedPK: 1}
	nCols := 2 + g.rnd.Intn(g.opts.MaxColumns-1)
	var defs []ast.ColumnDef
	for i := 0; i < nCols; i++ {
		c := column{name: fmt.Sprintf("C%d", i+1)}
		if i == 0 {
			// First column is an integer row id, usually the primary key.
			c.kind = types.KindInt
			c.typeName = ast.TypeName{Name: "INT"}
			if g.rnd.Intn(10) < 7 {
				c.pk = true
				c.notNull = true
				rel.hasPK = true
			}
		} else {
			switch g.rnd.Intn(10) {
			case 0, 1, 2, 3:
				c.kind = types.KindInt
				c.typeName = ast.TypeName{Name: "INT"}
			case 4, 5:
				c.kind = types.KindFloat
				c.typeName = ast.TypeName{Name: "FLOAT"}
			default:
				c.kind = types.KindString
				if g.rnd.Intn(4) == 0 {
					c.typeName = ast.TypeName{Name: "CHAR", Args: []int{4 + g.rnd.Intn(9)}}
				} else {
					c.typeName = ast.TypeName{Name: "VARCHAR", Args: []int{8 + g.rnd.Intn(17)}}
				}
			}
			if !c.pk && g.rnd.Intn(5) == 0 {
				c.notNull = true
			}
		}
		def := ast.ColumnDef{Name: c.name, Type: c.typeName, NotNull: c.notNull && !c.pk, PrimaryKey: c.pk}
		if !c.pk && g.rnd.Intn(5) == 0 {
			def.Default = &ast.Literal{Val: g.literal(c.kind)}
		}
		if !c.pk && c.kind != types.KindString && g.rnd.Intn(6) == 0 {
			c.nonNeg = true
			def.Check = &ast.Binary{
				Op: ast.OpGe,
				L:  &ast.ColumnRef{Column: c.name},
				R:  &ast.Literal{Val: types.NewInt(0)},
			}
		}
		rel.cols = append(rel.cols, c)
		defs = append(defs, def)
	}
	g.tables = append(g.tables, rel)
	return &ast.CreateTable{Name: name, Columns: defs}
}

func (g *Generator) genCreateView() ast.Statement {
	base := g.anyTable()
	name := g.viewName()
	// Project a contiguous, non-empty column subset under the base
	// column names, optionally filtered. DISTINCT only when the profile
	// allows it (quirk region on IB/MS under LEFT JOIN).
	lo := g.rnd.Intn(len(base.cols))
	hi := lo + 1 + g.rnd.Intn(len(base.cols)-lo)
	view := &relation{name: name, isView: true, base: base.name}
	var items []ast.SelectItem
	for _, c := range base.cols[lo:hi] {
		view.cols = append(view.cols, c)
		items = append(items, ast.SelectItem{Expr: &ast.ColumnRef{Column: c.name}})
	}
	sel := &ast.Select{Items: items, From: []ast.FromItem{{Table: ast.TableRef{Name: base.name}}}}
	if g.opts.DistinctViews && g.rnd.Intn(2) == 0 {
		sel.Distinct = true
	}
	if g.rnd.Intn(3) == 0 {
		sel.Where = g.predicate(scope{{"", base}}, 1)
	}
	refs := map[string]bool{}
	selectRefs(sel, refs)
	view.refs = make([]string, 0, len(refs))
	for n := range refs {
		view.refs = append(view.refs, n)
	}
	sort.Strings(view.refs)
	g.views = append(g.views, view)
	return &ast.CreateView{Name: name, Select: sel}
}

// selectRefs collects every named relation a SELECT reads — FROM
// sources, join sides, and the FROMs of every subquery at any nesting
// depth — so a view's full read set is known at creation time.
func selectRefs(sel *ast.Select, out map[string]bool) {
	fromRefs(sel, out)
	ast.WalkSelectExprs(sel, func(e ast.Expr) {
		switch x := e.(type) {
		case *ast.In:
			fromRefs(x.Select, out)
		case *ast.Exists:
			fromRefs(x.Select, out)
		case *ast.Subquery:
			fromRefs(x.Select, out)
		}
	})
}

// fromRefs records the FROM-clause relation names of one select (and
// its UNION branches); subqueries inside expressions are handled by the
// walk in selectRefs, which fires at every nesting depth.
func fromRefs(sel *ast.Select, out map[string]bool) {
	for ; sel != nil; sel = sel.Union {
		for _, f := range sel.From {
			if f.Table.Name != "" {
				out[f.Table.Name] = true
			}
			fromRefs(f.Table.Subquery, out)
			for _, j := range f.Joins {
				if j.Right.Name != "" {
					out[j.Right.Name] = true
				}
				fromRefs(j.Right.Subquery, out)
			}
		}
	}
}

func (g *Generator) genCreateIndex() ast.Statement {
	t := g.anyTable()
	name := g.indexName()
	ci := t.pick(g.rnd, func(*column) bool { return true })
	g.indexes = append(g.indexes, struct{ name, table string }{name, t.name})
	return &ast.CreateIndex{Name: name, Table: t.name, Columns: []string{t.col(ci).name}}
}

func (g *Generator) genDropIndex() ast.Statement {
	i := g.rnd.Intn(len(g.indexes))
	ix := g.indexes[i]
	g.indexes = append(g.indexes[:i], g.indexes[i+1:]...)
	return &ast.DropIndex{Name: ix.name}
}

func (g *Generator) genDropView() ast.Statement {
	v := g.views[g.rnd.Intn(len(g.views))]
	g.dropRelation(v.name, true)
	return &ast.DropView{Name: v.name}
}

// droppableTable returns a dropping candidate: a synthetic (non-pool)
// table above the minimum table count. Pool tables are fault-trigger
// tables and stay alive for the whole stream.
func (g *Generator) droppableTable() *relation {
	if len(g.tables) <= g.opts.MinTables {
		return nil
	}
	prefix := g.opts.NamePrefix + "QT"
	for _, t := range g.tables {
		if len(t.name) >= len(prefix) && t.name[:len(prefix)] == prefix {
			return t
		}
	}
	return nil
}

func (g *Generator) genDropTable() ast.Statement {
	t := g.droppableTable()
	if t == nil {
		return nil
	}
	g.dropRelation(t.name, false)
	return &ast.DropTable{Name: t.name}
}

func (g *Generator) genCreateSequence() ast.Statement {
	name := g.seqName()
	g.seqs = append(g.seqs, name)
	return &ast.CreateSequence{Name: name, Start: int64(1 + g.rnd.Intn(100))}
}

func (g *Generator) genDropSequence() ast.Statement {
	i := g.rnd.Intn(len(g.seqs))
	name := g.seqs[i]
	g.seqs = append(g.seqs[:i], g.seqs[i+1:]...)
	return &ast.DropSequence{Name: name}
}
