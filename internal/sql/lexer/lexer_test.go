package lexer

import (
	"testing"
	"testing/quick"
)

func kinds(toks []Token) []TokenKind {
	out := make([]TokenKind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestBasicTokens(t *testing.T) {
	toks, err := Tokenize("SELECT a, b FROM t WHERE x = 1.5;")
	if err != nil {
		t.Fatal(err)
	}
	want := []TokenKind{
		TokKeyword, TokIdent, TokComma, TokIdent, TokKeyword, TokIdent,
		TokKeyword, TokIdent, TokOp, TokNumber, TokSemicolon, TokEOF,
	}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("token count %d want %d: %v", len(got), len(want), toks)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: kind %v want %v (%q)", i, got[i], want[i], toks[i].Text)
		}
	}
}

func TestKeywordCaseInsensitive(t *testing.T) {
	toks, err := Tokenize("select Select SELECT")
	if err != nil {
		t.Fatal(err)
	}
	for _, tok := range toks[:3] {
		if tok.Kind != TokKeyword || tok.Text != "SELECT" {
			t.Errorf("got %v %q", tok.Kind, tok.Text)
		}
	}
}

func TestStringLiterals(t *testing.T) {
	toks, err := Tokenize("'hello' 'it''s' ''")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"hello", "it's", ""}
	for i, w := range want {
		if toks[i].Kind != TokString || toks[i].Text != w {
			t.Errorf("string %d: %q want %q", i, toks[i].Text, w)
		}
	}
}

func TestQuotedIdentifiers(t *testing.T) {
	toks, err := Tokenize(`"Mixed Case" [bracketed name]`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != TokIdent || toks[0].Text != "Mixed Case" {
		t.Errorf("quoted ident: %v %q", toks[0].Kind, toks[0].Text)
	}
	if toks[1].Kind != TokIdent || toks[1].Text != "bracketed name" {
		t.Errorf("bracketed ident: %v %q", toks[1].Kind, toks[1].Text)
	}
}

func TestNumbers(t *testing.T) {
	cases := map[string]string{
		"42":      "42",
		"3.14":    "3.14",
		".5":      ".5",
		"1e10":    "1e10",
		"2.5E-3":  "2.5E-3",
		"1.5e+10": "1.5e+10",
	}
	for in, want := range cases {
		toks, err := Tokenize(in)
		if err != nil {
			t.Errorf("Tokenize(%q): %v", in, err)
			continue
		}
		if toks[0].Kind != TokNumber || toks[0].Text != want {
			t.Errorf("Tokenize(%q) = %q (%v)", in, toks[0].Text, toks[0].Kind)
		}
	}
}

func TestComments(t *testing.T) {
	toks, err := Tokenize("SELECT -- line comment\n 1 /* block\ncomment */ + 2")
	if err != nil {
		t.Fatal(err)
	}
	want := []TokenKind{TokKeyword, TokNumber, TokOp, TokNumber, TokEOF}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("with comments: %v", toks)
		}
	}
}

func TestOperators(t *testing.T) {
	toks, err := Tokenize("a <> b != c <= d >= e || f % g")
	if err != nil {
		t.Fatal(err)
	}
	var ops []string
	for _, tok := range toks {
		if tok.Kind == TokOp {
			ops = append(ops, tok.Text)
		}
	}
	want := []string{"<>", "<>", "<=", ">=", "||", "%"}
	if len(ops) != len(want) {
		t.Fatalf("ops %v want %v", ops, want)
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Errorf("op %d: %q want %q (!= must normalize to <>)", i, ops[i], want[i])
		}
	}
}

func TestLexErrors(t *testing.T) {
	for _, bad := range []string{"'unterminated", `"unterminated`, "[unterminated", "/* unterminated", "a ^ b"} {
		if _, err := Tokenize(bad); err == nil {
			t.Errorf("Tokenize(%q) should fail", bad)
		}
	}
}

func TestPositionsReported(t *testing.T) {
	toks, err := Tokenize("ab cd")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos != 0 || toks[1].Pos != 3 {
		t.Errorf("positions: %d, %d", toks[0].Pos, toks[1].Pos)
	}
}

// Property: the lexer terminates and never panics on arbitrary input.
func TestLexerNeverPanics(t *testing.T) {
	f := func(s string) bool {
		_, _ = Tokenize(s)
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: tokenizing valid identifier soup yields only ident/keyword
// tokens plus EOF.
func TestLexerIdentSoup(t *testing.T) {
	f := func(words []string) bool {
		src := ""
		for _, w := range words {
			clean := ""
			for _, r := range w {
				if (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') {
					clean += string(r)
				}
			}
			if clean != "" {
				src += clean + " "
			}
		}
		toks, err := Tokenize(src)
		if err != nil {
			return false
		}
		for _, tok := range toks {
			if tok.Kind != TokIdent && tok.Kind != TokKeyword && tok.Kind != TokEOF {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
