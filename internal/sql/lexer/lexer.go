// Package lexer tokenizes SQL source for the simulated servers. It
// accepts the superset of the four simulated dialects: single-quoted
// strings with ” escapes, double-quoted and [bracketed] identifiers,
// line (--) and block (/* */) comments, and the usual operator set.
package lexer

import (
	"fmt"
	"strings"
)

// TokenKind classifies a token.
type TokenKind int

// Token kinds.
const (
	TokEOF TokenKind = iota + 1
	TokIdent
	TokKeyword
	TokNumber
	TokString
	TokOp
	TokComma
	TokLParen
	TokRParen
	TokSemicolon
	TokDot
	TokStar
	// TokParam is a bind-parameter placeholder: "?" (Text "?") or "$n"
	// (Text is the decimal ordinal).
	TokParam
)

// Token is one lexical token.
type Token struct {
	Kind TokenKind
	Text string // keywords are upper-cased; identifiers preserve case
	Pos  int    // byte offset in the input
}

// Keywords recognized by the parser. Everything else alphanumeric is an
// identifier. The set is the union of all four simulated dialects.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "ASC": true, "DESC": true, "DISTINCT": true,
	"INSERT": true, "INTO": true, "VALUES": true, "UPDATE": true, "SET": true,
	"DELETE": true, "CREATE": true, "TABLE": true, "VIEW": true, "INDEX": true,
	"SEQUENCE": true, "GENERATOR": true, "DROP": true, "AS": true, "ON": true,
	"AND": true, "OR": true, "NOT": true, "NULL": true, "IS": true, "IN": true,
	"EXISTS": true, "BETWEEN": true, "LIKE": true, "UNION": true, "ALL": true,
	"JOIN": true, "INNER": true, "LEFT": true, "RIGHT": true, "FULL": true,
	"OUTER": true, "CROSS": true, "PRIMARY": true, "KEY": true, "UNIQUE": true,
	"CHECK": true, "DEFAULT": true, "CONSTRAINT": true, "CASE": true,
	"WHEN": true, "THEN": true, "ELSE": true, "END": true, "CAST": true,
	"BEGIN": true, "COMMIT": true, "ROLLBACK": true, "WORK": true,
	"TRANSACTION": true, "LIMIT": true, "TOP": true, "ROWS": true,
	"CLUSTERED": true, "START": true, "WITH": true, "TRUE": true, "FALSE": true,
}

// Lexer tokenizes one SQL statement or script.
type Lexer struct {
	src string
	pos int
}

// New returns a lexer over src.
func New(src string) *Lexer { return &Lexer{src: src} }

// LexError reports a tokenization failure with its offset.
type LexError struct {
	Pos int
	Msg string
}

func (e *LexError) Error() string {
	return fmt.Sprintf("lex error at offset %d: %s", e.Pos, e.Msg)
}

// Tokenize scans the whole input and returns its tokens, terminated by a
// TokEOF token.
func Tokenize(src string) ([]Token, error) {
	lx := New(src)
	var toks []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == TokEOF {
			return toks, nil
		}
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9') || c == '$'
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func (lx *Lexer) skipSpaceAndComments() error {
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			lx.pos++
		case c == '-' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '-':
			for lx.pos < len(lx.src) && lx.src[lx.pos] != '\n' {
				lx.pos++
			}
		case c == '/' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '*':
			end := strings.Index(lx.src[lx.pos+2:], "*/")
			if end < 0 {
				return &LexError{Pos: lx.pos, Msg: "unterminated block comment"}
			}
			lx.pos += 2 + end + 2
		default:
			return nil
		}
	}
	return nil
}

// Next returns the next token.
func (lx *Lexer) Next() (Token, error) {
	if err := lx.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	if lx.pos >= len(lx.src) {
		return Token{Kind: TokEOF, Pos: lx.pos}, nil
	}
	start := lx.pos
	c := lx.src[lx.pos]
	switch {
	case isIdentStart(c):
		for lx.pos < len(lx.src) && isIdentPart(lx.src[lx.pos]) {
			lx.pos++
		}
		word := lx.src[start:lx.pos]
		up := strings.ToUpper(word)
		if keywords[up] {
			return Token{Kind: TokKeyword, Text: up, Pos: start}, nil
		}
		return Token{Kind: TokIdent, Text: word, Pos: start}, nil
	case isDigit(c) || (c == '.' && lx.pos+1 < len(lx.src) && isDigit(lx.src[lx.pos+1])):
		seenDot := false
		for lx.pos < len(lx.src) {
			ch := lx.src[lx.pos]
			if isDigit(ch) {
				lx.pos++
				continue
			}
			if ch == '.' && !seenDot {
				// A second dot or ".." terminates the number (range syntax
				// is not supported, so a bare dot is part of the literal).
				seenDot = true
				lx.pos++
				continue
			}
			if (ch == 'e' || ch == 'E') && lx.pos+1 < len(lx.src) {
				nxt := lx.src[lx.pos+1]
				if isDigit(nxt) || ((nxt == '+' || nxt == '-') && lx.pos+2 < len(lx.src) && isDigit(lx.src[lx.pos+2])) {
					lx.pos += 2
					for lx.pos < len(lx.src) && isDigit(lx.src[lx.pos]) {
						lx.pos++
					}
				}
			}
			break
		}
		return Token{Kind: TokNumber, Text: lx.src[start:lx.pos], Pos: start}, nil
	case c == '\'':
		var sb strings.Builder
		lx.pos++
		for {
			if lx.pos >= len(lx.src) {
				return Token{}, &LexError{Pos: start, Msg: "unterminated string literal"}
			}
			ch := lx.src[lx.pos]
			if ch == '\'' {
				if lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '\'' {
					sb.WriteByte('\'')
					lx.pos += 2
					continue
				}
				lx.pos++
				return Token{Kind: TokString, Text: sb.String(), Pos: start}, nil
			}
			sb.WriteByte(ch)
			lx.pos++
		}
	case c == '"':
		end := strings.IndexByte(lx.src[lx.pos+1:], '"')
		if end < 0 {
			return Token{}, &LexError{Pos: start, Msg: "unterminated quoted identifier"}
		}
		word := lx.src[lx.pos+1 : lx.pos+1+end]
		lx.pos += end + 2
		return Token{Kind: TokIdent, Text: word, Pos: start}, nil
	case c == '[':
		end := strings.IndexByte(lx.src[lx.pos+1:], ']')
		if end < 0 {
			return Token{}, &LexError{Pos: start, Msg: "unterminated bracketed identifier"}
		}
		word := lx.src[lx.pos+1 : lx.pos+1+end]
		lx.pos += end + 2
		return Token{Kind: TokIdent, Text: word, Pos: start}, nil
	case c == ',':
		lx.pos++
		return Token{Kind: TokComma, Text: ",", Pos: start}, nil
	case c == '(':
		lx.pos++
		return Token{Kind: TokLParen, Text: "(", Pos: start}, nil
	case c == ')':
		lx.pos++
		return Token{Kind: TokRParen, Text: ")", Pos: start}, nil
	case c == ';':
		lx.pos++
		return Token{Kind: TokSemicolon, Text: ";", Pos: start}, nil
	case c == '.':
		lx.pos++
		return Token{Kind: TokDot, Text: ".", Pos: start}, nil
	case c == '*':
		lx.pos++
		return Token{Kind: TokStar, Text: "*", Pos: start}, nil
	case c == '?':
		lx.pos++
		return Token{Kind: TokParam, Text: "?", Pos: start}, nil
	case c == '$' && lx.pos+1 < len(lx.src) && isDigit(lx.src[lx.pos+1]):
		lx.pos++
		numStart := lx.pos
		for lx.pos < len(lx.src) && isDigit(lx.src[lx.pos]) {
			lx.pos++
		}
		return Token{Kind: TokParam, Text: lx.src[numStart:lx.pos], Pos: start}, nil
	default:
		for _, op := range [...]string{"<>", "!=", "<=", ">=", "||", "=", "<", ">", "+", "-", "/", "%"} {
			if strings.HasPrefix(lx.src[lx.pos:], op) {
				lx.pos += len(op)
				text := op
				if op == "!=" {
					text = "<>"
				}
				return Token{Kind: TokOp, Text: text, Pos: start}, nil
			}
		}
		return Token{}, &LexError{Pos: start, Msg: fmt.Sprintf("unexpected character %q", c)}
	}
}
