package ast

import (
	"testing"

	"divsql/internal/sql/types"
)

func sel(items ...SelectItem) *Select {
	return &Select{Items: items, From: []FromItem{{Table: TableRef{Name: "t1"}}}}
}

func col(name string) SelectItem {
	return SelectItem{Expr: &ColumnRef{Column: name}}
}

func TestTablesCollection(t *testing.T) {
	s := &Select{
		Items: []SelectItem{col("a")},
		From: []FromItem{{
			Table: TableRef{Name: "base"},
			Joins: []Join{{Type: JoinLeft, Right: TableRef{Name: "joined"}, On: &Binary{
				Op: OpEq, L: &ColumnRef{Table: "base", Column: "id"}, R: &ColumnRef{Table: "joined", Column: "id"},
			}}},
		}},
		Where: &In{
			X:      &ColumnRef{Column: "a"},
			Select: &Select{Items: []SelectItem{col("b")}, From: []FromItem{{Table: TableRef{Name: "subq"}}}},
		},
	}
	tabs := Tables(s)
	for _, want := range []string{"BASE", "JOINED", "SUBQ"} {
		if !tabs[want] {
			t.Errorf("missing table %s in %v", want, tabs)
		}
	}
}

func TestFingerprintFlags(t *testing.T) {
	s := &Select{
		Distinct: true,
		Items: []SelectItem{
			{Expr: &FuncCall{Name: "AVG", Args: []Expr{&ColumnRef{Column: "x"}}}},
			{Expr: &Binary{Op: OpMod, L: &Literal{Val: types.NewInt(7)}, R: &Literal{Val: types.NewInt(3)}}},
		},
		From:    []FromItem{{Table: TableRef{Name: "t"}, Joins: []Join{{Type: JoinLeft, Right: TableRef{Name: "u"}}}}},
		GroupBy: []Expr{&ColumnRef{Column: "g"}},
		OrderBy: []OrderItem{{Expr: &ColumnRef{Column: "x"}}},
		Union:   sel(col("y")),
	}
	fp := FingerprintOf(s)
	for _, f := range []Flag{
		FlagSelect, FlagDistinct, FlagAggregate, FlagAvg, FlagMod, FlagArith,
		FlagLeftJoin, FlagJoin, FlagGroupBy, FlagOrderBy, FlagUnion,
	} {
		if !fp.Has(f) {
			t.Errorf("missing flag %s", f)
		}
	}
	if !fp.UsesTable("T") || !fp.UsesTable("u") {
		t.Errorf("tables: %v", fp.Tables)
	}
	if !fp.UsesFunc("avg") {
		t.Errorf("funcs: %v", fp.Funcs)
	}
}

func TestFingerprintDDL(t *testing.T) {
	ct := &CreateTable{Name: "t", Columns: []ColumnDef{
		{Name: "a", Type: TypeName{Name: "INT"}, PrimaryKey: true, Default: &Literal{Val: types.NewInt(1)}},
	}}
	fp := FingerprintOf(ct)
	for _, f := range []Flag{FlagCreateTable, FlagPrimaryKey, FlagDefault} {
		if !fp.Has(f) {
			t.Errorf("missing %s", f)
		}
	}

	ci := &CreateIndex{Name: "ix", Table: "t", Clustered: true}
	fp = FingerprintOf(ci)
	if !fp.Has(FlagClusteredIdx) || !fp.Has(FlagCreateIndex) {
		t.Errorf("index flags: %v", fp.Flags)
	}

	cv := &CreateView{Name: "v", Select: &Select{
		Distinct: true,
		Items:    []SelectItem{col("a")},
		From:     []FromItem{{Table: TableRef{Name: "t"}}},
		Union:    sel(col("b")),
	}}
	fp = FingerprintOf(cv)
	if !fp.Has(FlagViewDistinct) || !fp.Has(FlagViewUnion) {
		t.Errorf("view flags: %v", fp.Flags)
	}
}

func TestFingerprintSubqueries(t *testing.T) {
	s := &Select{
		Items: []SelectItem{col("a")},
		From:  []FromItem{{Table: TableRef{Name: "t"}}},
		Where: &In{
			X:   &ColumnRef{Column: "a"},
			Not: true,
			Select: &Select{
				Items: []SelectItem{col("b")},
				From:  []FromItem{{Table: TableRef{Name: "u"}}},
				Union: sel(col("c")),
			},
		},
	}
	fp := FingerprintOf(s)
	for _, f := range []Flag{FlagSubquery, FlagInSubquery, FlagNotIn, FlagUnion} {
		if !fp.Has(f) {
			t.Errorf("missing %s", f)
		}
	}
}

func TestFingerprintString(t *testing.T) {
	fp := FingerprintOf(&DropTable{Name: "x"})
	s := fp.String()
	if s == "" {
		t.Error("empty fingerprint digest")
	}
	fp2 := FingerprintOf(&DropTable{Name: "x"})
	if fp2.String() != s {
		t.Error("fingerprint digest not deterministic")
	}
}

func TestWalkExprsCoverage(t *testing.T) {
	// Count nodes in a deeply composed expression.
	e := &Case{
		Operand: &ColumnRef{Column: "a"},
		Whens: []WhenClause{{
			Cond: &Between{X: &ColumnRef{Column: "b"}, Lo: &Literal{Val: types.NewInt(1)}, Hi: &Literal{Val: types.NewInt(2)}},
			Then: &Cast{X: &ColumnRef{Column: "c"}, To: TypeName{Name: "INT"}},
		}},
		Else: &Like{X: &ColumnRef{Column: "d"}, Pattern: &Literal{Val: types.NewString("x%")}},
	}
	n := 0
	WalkExprs(e, func(Expr) { n++ })
	if n < 9 {
		t.Errorf("walked %d nodes, want at least 9", n)
	}
}

func TestJoinTypeStrings(t *testing.T) {
	names := map[JoinType]string{
		JoinInner: "INNER JOIN",
		JoinLeft:  "LEFT OUTER JOIN",
		JoinRight: "RIGHT OUTER JOIN",
		JoinFull:  "FULL OUTER JOIN",
		JoinCross: "CROSS JOIN",
	}
	for jt, want := range names {
		if jt.String() != want {
			t.Errorf("%v", jt)
		}
	}
}
