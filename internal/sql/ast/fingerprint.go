package ast

import (
	"sort"
	"strings"
)

// Flag is a syntactic/semantic feature observed in a statement. Fault
// triggers match on sets of flags plus referenced tables — this is the
// executable analogue of the paper's "failure region" notion: the set of
// demands that can activate a fault.
type Flag string

// Statement feature flags.
const (
	FlagSelect       Flag = "SELECT"
	FlagInsert       Flag = "INSERT"
	FlagUpdate       Flag = "UPDATE"
	FlagDelete       Flag = "DELETE"
	FlagCreateTable  Flag = "CREATE_TABLE"
	FlagCreateView   Flag = "CREATE_VIEW"
	FlagCreateIndex  Flag = "CREATE_INDEX"
	FlagDropTable    Flag = "DROP_TABLE"
	FlagDropView     Flag = "DROP_VIEW"
	FlagDistinct     Flag = "DISTINCT"
	FlagUnion        Flag = "UNION"
	FlagLeftJoin     Flag = "LEFT_JOIN"
	FlagFullJoin     Flag = "FULL_JOIN"
	FlagJoin         Flag = "JOIN"
	FlagGroupBy      Flag = "GROUP_BY"
	FlagHaving       Flag = "HAVING"
	FlagOrderBy      Flag = "ORDER_BY"
	FlagSubquery     Flag = "SUBQUERY"
	FlagInSubquery   Flag = "IN_SUBQUERY"
	FlagNotIn        Flag = "NOT_IN"
	FlagExists       Flag = "EXISTS"
	FlagAggregate    Flag = "AGGREGATE"
	FlagAvg          Flag = "AVG"
	FlagSum          Flag = "SUM"
	FlagMod          Flag = "MOD"
	FlagArith        Flag = "ARITHMETIC"
	FlagLike         Flag = "LIKE"
	FlagBetween      Flag = "BETWEEN"
	FlagCase         Flag = "CASE"
	FlagCast         Flag = "CAST"
	FlagDefault      Flag = "DEFAULT"
	FlagCheck        Flag = "CHECK"
	FlagPrimaryKey   Flag = "PRIMARY_KEY"
	FlagClusteredIdx Flag = "CLUSTERED_INDEX"
	FlagLimit        Flag = "LIMIT"
	FlagViewUnion    Flag = "VIEW_UNION"
	FlagViewDistinct Flag = "VIEW_DISTINCT"
	FlagTransaction  Flag = "TRANSACTION"
	FlagIsolation    Flag = "ISOLATION"
	// FlagParam marks statements carrying bind-parameter placeholders:
	// the prepare/bind execution path, a fault surface of its own (each
	// server's bind-time type coercion differs). Parameterized statements
	// therefore fingerprint apart from their inline-literal shapes.
	FlagParam Flag = "PARAM"
)

// Fingerprint summarizes the syntactic shape of one statement.
type Fingerprint struct {
	Tables map[string]bool
	Flags  map[Flag]bool
	Funcs  map[string]bool // upper-cased function names used
}

// Has reports whether the fingerprint carries the flag.
func (fp Fingerprint) Has(f Flag) bool { return fp.Flags[f] }

// UsesTable reports whether the statement references the named table.
func (fp Fingerprint) UsesTable(name string) bool {
	return fp.Tables[strings.ToUpper(name)]
}

// UsesFunc reports whether the statement calls the named function.
func (fp Fingerprint) UsesFunc(name string) bool {
	return fp.Funcs[strings.ToUpper(name)]
}

// String renders a stable, human-readable digest (for logs and tests).
func (fp Fingerprint) String() string {
	flags := make([]string, 0, len(fp.Flags))
	for f := range fp.Flags {
		flags = append(flags, string(f))
	}
	sort.Strings(flags)
	tables := make([]string, 0, len(fp.Tables))
	for t := range fp.Tables {
		tables = append(tables, t)
	}
	sort.Strings(tables)
	return strings.Join(flags, "|") + " @ " + strings.Join(tables, ",")
}

var aggregateFuncs = map[string]bool{
	"AVG": true, "SUM": true, "COUNT": true, "MIN": true, "MAX": true,
}

// FingerprintOf computes the fingerprint of a statement.
func FingerprintOf(st Statement) Fingerprint {
	fp := Fingerprint{
		Tables: Tables(st),
		Flags:  make(map[Flag]bool),
		Funcs:  make(map[string]bool),
	}
	set := func(f Flag) { fp.Flags[f] = true }

	exprFlags := func(e Expr) {
		WalkExprs(e, func(e Expr) {
			switch x := e.(type) {
			case *Binary:
				switch x.Op {
				case OpAdd, OpSub, OpMul, OpDiv:
					set(FlagArith)
				case OpMod:
					set(FlagArith)
					set(FlagMod)
				}
			case *FuncCall:
				fp.Funcs[strings.ToUpper(x.Name)] = true
				up := strings.ToUpper(x.Name)
				if aggregateFuncs[up] {
					set(FlagAggregate)
				}
				switch up {
				case "AVG":
					set(FlagAvg)
				case "SUM":
					set(FlagSum)
				case "MOD":
					set(FlagMod)
				}
			case *In:
				if x.Select != nil {
					set(FlagSubquery)
					set(FlagInSubquery)
				}
				if x.Not {
					set(FlagNotIn)
				}
			case *Exists:
				set(FlagSubquery)
				set(FlagExists)
			case *Subquery:
				set(FlagSubquery)
			case *Like:
				set(FlagLike)
			case *Between:
				set(FlagBetween)
			case *Case:
				set(FlagCase)
			case *Cast:
				set(FlagCast)
			case *Param:
				set(FlagParam)
			}
		})
	}

	var selFlags func(s *Select)
	selFlags = func(s *Select) {
		if s == nil {
			return
		}
		if s.Distinct {
			set(FlagDistinct)
		}
		if s.Union != nil {
			set(FlagUnion)
		}
		if len(s.GroupBy) > 0 {
			set(FlagGroupBy)
		}
		if s.Having != nil {
			set(FlagHaving)
		}
		if len(s.OrderBy) > 0 {
			set(FlagOrderBy)
		}
		if s.LimitSyn != LimitNone {
			set(FlagLimit)
		}
		for _, f := range s.From {
			for _, j := range f.Joins {
				set(FlagJoin)
				switch j.Type {
				case JoinLeft, JoinRight:
					set(FlagLeftJoin)
				case JoinFull:
					set(FlagFullJoin)
				}
			}
			selFlags(f.Table.Subquery)
			for _, j := range f.Joins {
				selFlags(j.Right.Subquery)
			}
		}
		WalkSelectExprs(s, func(e Expr) {
			switch x := e.(type) {
			case *In:
				selFlags(x.Select)
			case *Exists:
				selFlags(x.Select)
			case *Subquery:
				selFlags(x.Select)
			}
		})
		selFlags(s.Union)
	}

	switch x := st.(type) {
	case *Select:
		set(FlagSelect)
		selFlags(x)
		WalkSelectExprs(x, exprFlags)
	case *Insert:
		set(FlagInsert)
		for _, row := range x.Rows {
			for _, e := range row {
				exprFlags(e)
			}
		}
		if x.Select != nil {
			selFlags(x.Select)
			WalkSelectExprs(x.Select, exprFlags)
		}
	case *Update:
		set(FlagUpdate)
		for _, sc := range x.Sets {
			exprFlags(sc.Value)
		}
		exprFlags(x.Where)
	case *Delete:
		set(FlagDelete)
		exprFlags(x.Where)
	case *CreateTable:
		set(FlagCreateTable)
		for _, c := range x.Columns {
			if c.Default != nil {
				set(FlagDefault)
			}
			if c.Check != nil {
				set(FlagCheck)
			}
			if c.PrimaryKey {
				set(FlagPrimaryKey)
			}
		}
		for _, c := range x.Constraints {
			if len(c.PrimaryKey) > 0 {
				set(FlagPrimaryKey)
			}
			if c.Check != nil {
				set(FlagCheck)
			}
		}
	case *CreateView:
		set(FlagCreateView)
		if x.Select != nil {
			if x.Select.Distinct {
				set(FlagViewDistinct)
			}
			if x.Select.Union != nil {
				set(FlagViewUnion)
			}
			selFlags(x.Select)
			WalkSelectExprs(x.Select, exprFlags)
		}
	case *CreateIndex:
		set(FlagCreateIndex)
		if x.Clustered {
			set(FlagClusteredIdx)
		}
	case *DropTable:
		set(FlagDropTable)
	case *DropView:
		set(FlagDropView)
	case *Begin, *Commit, *Rollback:
		set(FlagTransaction)
	case *SetTxn:
		set(FlagTransaction)
		set(FlagIsolation)
	}
	return fp
}
