// Package ast defines the abstract syntax tree for the SQL dialects
// understood by the simulated servers, together with statement
// fingerprinting (used by the fault-injection layer to locate failure
// regions) and rendering back to SQL text (used by the dialect
// translator).
package ast

import (
	"strings"

	"divsql/internal/sql/types"
)

// Node is implemented by every AST node.
type Node interface {
	node()
}

// Statement is implemented by every executable statement.
type Statement interface {
	Node
	stmt()
}

// Expr is implemented by every expression node.
type Expr interface {
	Node
	expr()
}

// ---------------------------------------------------------------------------
// Types

// TypeName is a column type as written in the source, e.g. VARCHAR(20).
type TypeName struct {
	Name string // upper-cased type keyword as written (dialect specific)
	Args []int  // length / precision arguments
}

// ---------------------------------------------------------------------------
// DDL statements

// ColumnDef is one column of a CREATE TABLE.
type ColumnDef struct {
	Name       string
	Type       TypeName
	Default    Expr // nil when absent
	NotNull    bool
	PrimaryKey bool
	Unique     bool
	Check      Expr // nil when absent
}

// TableConstraint is a table-level constraint of a CREATE TABLE.
type TableConstraint struct {
	Name       string
	PrimaryKey []string // column names; empty when not a PK constraint
	Unique     []string
	Check      Expr
}

// CreateTable is CREATE TABLE name (...).
type CreateTable struct {
	Name        string
	Columns     []ColumnDef
	Constraints []TableConstraint
}

// CreateView is CREATE VIEW name [(cols)] AS select.
type CreateView struct {
	Name    string
	Columns []string
	Select  *Select
}

// CreateIndex is CREATE [UNIQUE] [CLUSTERED] INDEX name ON table (cols).
type CreateIndex struct {
	Name      string
	Table     string
	Columns   []string
	Unique    bool
	Clustered bool
}

// CreateSequence is CREATE SEQUENCE/GENERATOR name.
type CreateSequence struct {
	Name  string
	Start int64
}

// DropTable is DROP TABLE name.
type DropTable struct{ Name string }

// DropView is DROP VIEW name.
type DropView struct{ Name string }

// DropIndex is DROP INDEX name.
type DropIndex struct{ Name string }

// DropSequence is DROP SEQUENCE name.
type DropSequence struct{ Name string }

// ---------------------------------------------------------------------------
// DML statements

// Insert is INSERT INTO table [(cols)] VALUES (...)[, (...)] | select.
type Insert struct {
	Table   string
	Columns []string
	Rows    [][]Expr
	Select  *Select
}

// SetClause is one assignment of an UPDATE statement.
type SetClause struct {
	Column string
	Value  Expr
}

// Update is UPDATE table SET ... [WHERE ...].
type Update struct {
	Table string
	Sets  []SetClause
	Where Expr
}

// Delete is DELETE FROM table [WHERE ...].
type Delete struct {
	Table string
	Where Expr
}

// ---------------------------------------------------------------------------
// Transactions

// Begin starts a transaction.
type Begin struct{}

// Commit commits the current transaction.
type Commit struct{}

// Rollback aborts the current transaction.
type Rollback struct{}

// SetTxn is SET TRANSACTION ISOLATION LEVEL <level>. Level is the
// canonical upper-cased level name (READ UNCOMMITTED, READ COMMITTED,
// REPEATABLE READ, SERIALIZABLE, SNAPSHOT).
type SetTxn struct{ Level string }

// ---------------------------------------------------------------------------
// Queries

// JoinType enumerates join flavours.
type JoinType int

// Join flavours.
const (
	JoinInner JoinType = iota + 1
	JoinLeft
	JoinRight
	JoinFull
	JoinCross
)

// String returns the SQL keyword for the join type.
func (j JoinType) String() string {
	switch j {
	case JoinInner:
		return "INNER JOIN"
	case JoinLeft:
		return "LEFT OUTER JOIN"
	case JoinRight:
		return "RIGHT OUTER JOIN"
	case JoinFull:
		return "FULL OUTER JOIN"
	case JoinCross:
		return "CROSS JOIN"
	default:
		return "JOIN"
	}
}

// TableRef is a table, view or derived-table reference in FROM.
type TableRef struct {
	Name     string  // table or view name; empty for derived tables
	Alias    string  // optional correlation name
	Subquery *Select // non-nil for derived tables
}

// Join is one JOIN clause attached to a FROM item.
type Join struct {
	Type  JoinType
	Right TableRef
	On    Expr // nil for CROSS JOIN
}

// FromItem is one comma-separated FROM entry with its join chain.
type FromItem struct {
	Table TableRef
	Joins []Join
}

// SelectItem is one projection of a SELECT list.
type SelectItem struct {
	Star      bool   // SELECT * or tbl.*
	StarTable string // qualifier of tbl.*
	Expr      Expr
	Alias     string
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// LimitSyntax records which dialect row-limiting construct was used.
type LimitSyntax int

// Row-limit syntaxes.
const (
	LimitNone LimitSyntax = iota
	LimitLimit
	LimitTop
	LimitRows
)

// Select is a (possibly compound) query expression.
type Select struct {
	Distinct bool
	Items    []SelectItem
	From     []FromItem
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	Limit    int64
	LimitSyn LimitSyntax

	// Compound query: this SELECT UNION [ALL] Union.
	Union    *Select
	UnionAll bool
}

// ---------------------------------------------------------------------------
// Expressions

// BinaryOp enumerates binary operators.
type BinaryOp int

// Binary operators.
const (
	OpAdd BinaryOp = iota + 1
	OpSub
	OpMul
	OpDiv
	OpMod
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
	OpConcat
)

// String returns the SQL spelling of the operator.
func (o BinaryOp) String() string {
	switch o {
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	case OpMod:
		return "%"
	case OpEq:
		return "="
	case OpNe:
		return "<>"
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpAnd:
		return "AND"
	case OpOr:
		return "OR"
	case OpConcat:
		return "||"
	default:
		return "?"
	}
}

// Literal is a constant value.
type Literal struct{ Val types.Value }

// Param is a statement parameter placeholder: $N in the canonical
// rendering, with N the 1-based argument ordinal. The parser also accepts
// the ? spelling, assigning ordinals left to right. A statement carrying
// Param nodes must be executed through the prepare/bind path with one
// typed argument per ordinal.
type Param struct{ N int }

// ColumnRef is a (possibly qualified) column reference.
type ColumnRef struct {
	Table  string
	Column string
}

// Binary is a binary operation.
type Binary struct {
	Op   BinaryOp
	L, R Expr
}

// Unary is -x, +x or NOT x.
type Unary struct {
	Op string // "-", "+", "NOT"
	X  Expr
}

// FuncCall is a function invocation, including aggregates.
type FuncCall struct {
	Name     string // upper-cased, as written in the source dialect
	Args     []Expr
	Star     bool // COUNT(*)
	Distinct bool // COUNT(DISTINCT x) / AVG(DISTINCT x)
}

// In is expr [NOT] IN (list | subquery).
type In struct {
	X      Expr
	Not    bool
	List   []Expr
	Select *Select
}

// Exists is [NOT] EXISTS (subquery).
type Exists struct {
	Not    bool
	Select *Select
}

// Subquery is a scalar subquery used as an expression.
type Subquery struct{ Select *Select }

// Between is expr [NOT] BETWEEN lo AND hi.
type Between struct {
	X      Expr
	Not    bool
	Lo, Hi Expr
}

// Like is expr [NOT] LIKE pattern.
type Like struct {
	X       Expr
	Not     bool
	Pattern Expr
}

// IsNull is expr IS [NOT] NULL.
type IsNull struct {
	X   Expr
	Not bool
}

// WhenClause is one WHEN ... THEN ... arm of a CASE.
type WhenClause struct {
	Cond Expr
	Then Expr
}

// Case is CASE [operand] WHEN ... THEN ... [ELSE ...] END.
type Case struct {
	Operand Expr // nil for searched CASE
	Whens   []WhenClause
	Else    Expr
}

// Cast is CAST(expr AS type).
type Cast struct {
	X  Expr
	To TypeName
}

// ---------------------------------------------------------------------------
// Interface plumbing

func (*CreateTable) node()    {}
func (*CreateView) node()     {}
func (*CreateIndex) node()    {}
func (*CreateSequence) node() {}
func (*DropTable) node()      {}
func (*DropView) node()       {}
func (*DropIndex) node()      {}
func (*DropSequence) node()   {}
func (*Insert) node()         {}
func (*Update) node()         {}
func (*Delete) node()         {}
func (*Begin) node()          {}
func (*Commit) node()         {}
func (*Rollback) node()       {}
func (*SetTxn) node()         {}
func (*Select) node()         {}

func (*CreateTable) stmt()    {}
func (*CreateView) stmt()     {}
func (*CreateIndex) stmt()    {}
func (*CreateSequence) stmt() {}
func (*DropTable) stmt()      {}
func (*DropView) stmt()       {}
func (*DropIndex) stmt()      {}
func (*DropSequence) stmt()   {}
func (*Insert) stmt()         {}
func (*Update) stmt()         {}
func (*Delete) stmt()         {}
func (*Begin) stmt()          {}
func (*Commit) stmt()         {}
func (*Rollback) stmt()       {}
func (*SetTxn) stmt()         {}
func (*Select) stmt()         {}

func (*Literal) node()   {}
func (*Param) node()     {}
func (*ColumnRef) node() {}
func (*Binary) node()    {}
func (*Unary) node()     {}
func (*FuncCall) node()  {}
func (*In) node()        {}
func (*Exists) node()    {}
func (*Subquery) node()  {}
func (*Between) node()   {}
func (*Like) node()      {}
func (*IsNull) node()    {}
func (*Case) node()      {}
func (*Cast) node()      {}

func (*Literal) expr()   {}
func (*Param) expr()     {}
func (*ColumnRef) expr() {}
func (*Binary) expr()    {}
func (*Unary) expr()     {}
func (*FuncCall) expr()  {}
func (*In) expr()        {}
func (*Exists) expr()    {}
func (*Subquery) expr()  {}
func (*Between) expr()   {}
func (*Like) expr()      {}
func (*IsNull) expr()    {}
func (*Case) expr()      {}
func (*Cast) expr()      {}

// ---------------------------------------------------------------------------
// Walking

// WalkExprs calls fn for every expression reachable from e (including e).
func WalkExprs(e Expr, fn func(Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch x := e.(type) {
	case *Binary:
		WalkExprs(x.L, fn)
		WalkExprs(x.R, fn)
	case *Unary:
		WalkExprs(x.X, fn)
	case *FuncCall:
		for _, a := range x.Args {
			WalkExprs(a, fn)
		}
	case *In:
		WalkExprs(x.X, fn)
		for _, a := range x.List {
			WalkExprs(a, fn)
		}
		if x.Select != nil {
			WalkSelectExprs(x.Select, fn)
		}
	case *Exists:
		WalkSelectExprs(x.Select, fn)
	case *Subquery:
		WalkSelectExprs(x.Select, fn)
	case *Between:
		WalkExprs(x.X, fn)
		WalkExprs(x.Lo, fn)
		WalkExprs(x.Hi, fn)
	case *Like:
		WalkExprs(x.X, fn)
		WalkExprs(x.Pattern, fn)
	case *IsNull:
		WalkExprs(x.X, fn)
	case *Case:
		WalkExprs(x.Operand, fn)
		for _, w := range x.Whens {
			WalkExprs(w.Cond, fn)
			WalkExprs(w.Then, fn)
		}
		WalkExprs(x.Else, fn)
	case *Cast:
		WalkExprs(x.X, fn)
	}
}

// WalkSelectExprs calls fn for every expression inside a SELECT,
// descending into derived tables, subqueries and UNION branches.
func WalkSelectExprs(s *Select, fn func(Expr)) {
	if s == nil {
		return
	}
	for _, it := range s.Items {
		WalkExprs(it.Expr, fn)
	}
	for _, f := range s.From {
		if f.Table.Subquery != nil {
			WalkSelectExprs(f.Table.Subquery, fn)
		}
		for _, j := range f.Joins {
			if j.Right.Subquery != nil {
				WalkSelectExprs(j.Right.Subquery, fn)
			}
			WalkExprs(j.On, fn)
		}
	}
	WalkExprs(s.Where, fn)
	for _, g := range s.GroupBy {
		WalkExprs(g, fn)
	}
	WalkExprs(s.Having, fn)
	for _, o := range s.OrderBy {
		WalkExprs(o.Expr, fn)
	}
	WalkSelectExprs(s.Union, fn)
}

// WalkStatementExprs calls fn for every expression reachable from any
// clause of the statement (INSERT value rows, UPDATE set/where, DELETE
// where, the whole SELECT tree, column DEFAULTs and CHECKs).
func WalkStatementExprs(st Statement, fn func(Expr)) {
	switch x := st.(type) {
	case *Select:
		WalkSelectExprs(x, fn)
	case *Insert:
		for _, row := range x.Rows {
			for _, e := range row {
				WalkExprs(e, fn)
			}
		}
		WalkSelectExprs(x.Select, fn)
	case *Update:
		for _, sc := range x.Sets {
			WalkExprs(sc.Value, fn)
		}
		WalkExprs(x.Where, fn)
	case *Delete:
		WalkExprs(x.Where, fn)
	case *CreateTable:
		for _, c := range x.Columns {
			WalkExprs(c.Default, fn)
			WalkExprs(c.Check, fn)
		}
		for _, tc := range x.Constraints {
			WalkExprs(tc.Check, fn)
		}
	case *CreateView:
		WalkSelectExprs(x.Select, fn)
	}
}

// NumParams returns the number of bind parameters the statement expects:
// the highest Param ordinal reachable from any clause (0 for a statement
// with no placeholders).
func NumParams(st Statement) int {
	max := 0
	WalkStatementExprs(st, func(e Expr) {
		if p, ok := e.(*Param); ok && p.N > max {
			max = p.N
		}
	})
	return max
}

// Tables returns the set of table/view names referenced by the statement
// (targets of DDL/DML and every FROM reference), upper-cased.
func Tables(st Statement) map[string]bool {
	set := make(map[string]bool)
	add := func(n string) {
		if n != "" {
			set[strings.ToUpper(n)] = true
		}
	}
	var fromSelect func(s *Select)
	fromSelect = func(s *Select) {
		if s == nil {
			return
		}
		for _, f := range s.From {
			add(f.Table.Name)
			fromSelect(f.Table.Subquery)
			for _, j := range f.Joins {
				add(j.Right.Name)
				fromSelect(j.Right.Subquery)
			}
		}
		WalkSelectExprs(s, func(e Expr) {
			switch x := e.(type) {
			case *In:
				fromSelect(x.Select)
			case *Exists:
				fromSelect(x.Select)
			case *Subquery:
				fromSelect(x.Select)
			}
		})
		fromSelect(s.Union)
	}
	switch x := st.(type) {
	case *CreateTable:
		add(x.Name)
	case *CreateView:
		add(x.Name)
		fromSelect(x.Select)
	case *CreateIndex:
		add(x.Table)
	case *DropTable:
		add(x.Name)
	case *DropView:
		add(x.Name)
	case *Insert:
		add(x.Table)
		fromSelect(x.Select)
	case *Update:
		add(x.Table)
	case *Delete:
		add(x.Table)
	case *Select:
		fromSelect(x)
	}
	// Subqueries can sit in any expression position — INSERT value rows,
	// UPDATE assignments, WHERE clauses of UPDATE/DELETE — not only in
	// SELECT trees; collect their tables uniformly.
	WalkStatementExprs(st, func(e Expr) {
		switch x := e.(type) {
		case *In:
			fromSelect(x.Select)
		case *Exists:
			fromSelect(x.Select)
		case *Subquery:
			fromSelect(x.Select)
		}
	})
	return set
}
