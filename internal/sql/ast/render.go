package ast

import (
	"strconv"
	"strings"
)

// Render serializes a statement back to SQL text. The output is accepted
// by the parser (round-trip property) and is the vehicle by which the
// dialect translator re-targets a script: it rewrites the AST and renders
// it in the destination dialect's spelling.
func Render(st Statement) string {
	var b strings.Builder
	renderStmt(&b, st)
	return b.String()
}

func renderStmt(b *strings.Builder, st Statement) {
	switch x := st.(type) {
	case *CreateTable:
		b.WriteString("CREATE TABLE ")
		b.WriteString(x.Name)
		b.WriteString(" (")
		for i, c := range x.Columns {
			if i > 0 {
				b.WriteString(", ")
			}
			renderColumnDef(b, c)
		}
		for _, tc := range x.Constraints {
			b.WriteString(", ")
			renderTableConstraint(b, tc)
		}
		b.WriteString(")")
	case *CreateView:
		b.WriteString("CREATE VIEW ")
		b.WriteString(x.Name)
		if len(x.Columns) > 0 {
			b.WriteString(" (")
			b.WriteString(strings.Join(x.Columns, ", "))
			b.WriteString(")")
		}
		b.WriteString(" AS ")
		renderSelect(b, x.Select)
	case *CreateIndex:
		b.WriteString("CREATE ")
		if x.Unique {
			b.WriteString("UNIQUE ")
		}
		if x.Clustered {
			b.WriteString("CLUSTERED ")
		}
		b.WriteString("INDEX ")
		b.WriteString(x.Name)
		b.WriteString(" ON ")
		b.WriteString(x.Table)
		b.WriteString(" (")
		b.WriteString(strings.Join(x.Columns, ", "))
		b.WriteString(")")
	case *CreateSequence:
		b.WriteString("CREATE SEQUENCE ")
		b.WriteString(x.Name)
		if x.Start != 0 {
			b.WriteString(" START WITH ")
			b.WriteString(strconv.FormatInt(x.Start, 10))
		}
	case *DropTable:
		b.WriteString("DROP TABLE ")
		b.WriteString(x.Name)
	case *DropView:
		b.WriteString("DROP VIEW ")
		b.WriteString(x.Name)
	case *DropIndex:
		b.WriteString("DROP INDEX ")
		b.WriteString(x.Name)
	case *DropSequence:
		b.WriteString("DROP SEQUENCE ")
		b.WriteString(x.Name)
	case *Insert:
		b.WriteString("INSERT INTO ")
		b.WriteString(x.Table)
		if len(x.Columns) > 0 {
			b.WriteString(" (")
			b.WriteString(strings.Join(x.Columns, ", "))
			b.WriteString(")")
		}
		if x.Select != nil {
			b.WriteString(" ")
			renderSelect(b, x.Select)
		} else {
			b.WriteString(" VALUES ")
			for i, row := range x.Rows {
				if i > 0 {
					b.WriteString(", ")
				}
				b.WriteString("(")
				for j, e := range row {
					if j > 0 {
						b.WriteString(", ")
					}
					renderExpr(b, e)
				}
				b.WriteString(")")
			}
		}
	case *Update:
		b.WriteString("UPDATE ")
		b.WriteString(x.Table)
		b.WriteString(" SET ")
		for i, sc := range x.Sets {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(sc.Column)
			b.WriteString(" = ")
			renderExpr(b, sc.Value)
		}
		if x.Where != nil {
			b.WriteString(" WHERE ")
			renderExpr(b, x.Where)
		}
	case *Delete:
		b.WriteString("DELETE FROM ")
		b.WriteString(x.Table)
		if x.Where != nil {
			b.WriteString(" WHERE ")
			renderExpr(b, x.Where)
		}
	case *Begin:
		b.WriteString("BEGIN TRANSACTION")
	case *Commit:
		b.WriteString("COMMIT")
	case *Rollback:
		b.WriteString("ROLLBACK")
	case *SetTxn:
		b.WriteString("SET TRANSACTION ISOLATION LEVEL ")
		b.WriteString(x.Level)
	case *Select:
		renderSelect(b, x)
	}
}

func renderColumnDef(b *strings.Builder, c ColumnDef) {
	b.WriteString(c.Name)
	b.WriteString(" ")
	renderType(b, c.Type)
	if c.Default != nil {
		b.WriteString(" DEFAULT ")
		renderExpr(b, c.Default)
	}
	if c.NotNull {
		b.WriteString(" NOT NULL")
	}
	if c.PrimaryKey {
		b.WriteString(" PRIMARY KEY")
	}
	if c.Unique {
		b.WriteString(" UNIQUE")
	}
	if c.Check != nil {
		b.WriteString(" CHECK (")
		renderExpr(b, c.Check)
		b.WriteString(")")
	}
}

func renderTableConstraint(b *strings.Builder, tc TableConstraint) {
	if tc.Name != "" {
		b.WriteString("CONSTRAINT ")
		b.WriteString(tc.Name)
		b.WriteString(" ")
	}
	switch {
	case len(tc.PrimaryKey) > 0:
		b.WriteString("PRIMARY KEY (")
		b.WriteString(strings.Join(tc.PrimaryKey, ", "))
		b.WriteString(")")
	case len(tc.Unique) > 0:
		b.WriteString("UNIQUE (")
		b.WriteString(strings.Join(tc.Unique, ", "))
		b.WriteString(")")
	case tc.Check != nil:
		b.WriteString("CHECK (")
		renderExpr(b, tc.Check)
		b.WriteString(")")
	}
}

func renderType(b *strings.Builder, t TypeName) {
	b.WriteString(t.Name)
	if len(t.Args) > 0 {
		b.WriteString("(")
		for i, a := range t.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(strconv.Itoa(a))
		}
		b.WriteString(")")
	}
}

func renderSelect(b *strings.Builder, s *Select) {
	if s == nil {
		return
	}
	b.WriteString("SELECT ")
	if s.Distinct {
		b.WriteString("DISTINCT ")
	}
	if s.LimitSyn == LimitTop {
		b.WriteString("TOP ")
		b.WriteString(strconv.FormatInt(s.Limit, 10))
		b.WriteString(" ")
	}
	for i, it := range s.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		switch {
		case it.Star && it.StarTable != "":
			b.WriteString(it.StarTable)
			b.WriteString(".*")
		case it.Star:
			b.WriteString("*")
		default:
			renderExpr(b, it.Expr)
			if it.Alias != "" {
				b.WriteString(" AS ")
				b.WriteString(it.Alias)
			}
		}
	}
	if len(s.From) > 0 {
		b.WriteString(" FROM ")
		for i, f := range s.From {
			if i > 0 {
				b.WriteString(", ")
			}
			renderTableRef(b, f.Table)
			for _, j := range f.Joins {
				b.WriteString(" ")
				b.WriteString(j.Type.String())
				b.WriteString(" ")
				renderTableRef(b, j.Right)
				if j.On != nil {
					b.WriteString(" ON ")
					renderExpr(b, j.On)
				}
			}
		}
	}
	if s.Where != nil {
		b.WriteString(" WHERE ")
		renderExpr(b, s.Where)
	}
	if len(s.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, g := range s.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			renderExpr(b, g)
		}
	}
	if s.Having != nil {
		b.WriteString(" HAVING ")
		renderExpr(b, s.Having)
	}
	if s.Union != nil {
		b.WriteString(" UNION ")
		if s.UnionAll {
			b.WriteString("ALL ")
		}
		renderSelect(b, s.Union)
	}
	if len(s.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for i, o := range s.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			renderExpr(b, o.Expr)
			if o.Desc {
				b.WriteString(" DESC")
			}
		}
	}
	switch s.LimitSyn {
	case LimitLimit:
		b.WriteString(" LIMIT ")
		b.WriteString(strconv.FormatInt(s.Limit, 10))
	case LimitRows:
		b.WriteString(" ROWS ")
		b.WriteString(strconv.FormatInt(s.Limit, 10))
	}
}

func renderTableRef(b *strings.Builder, t TableRef) {
	if t.Subquery != nil {
		b.WriteString("(")
		renderSelect(b, t.Subquery)
		b.WriteString(")")
	} else {
		b.WriteString(t.Name)
	}
	if t.Alias != "" {
		b.WriteString(" ")
		b.WriteString(t.Alias)
	}
}

func renderExpr(b *strings.Builder, e Expr) {
	switch x := e.(type) {
	case nil:
		return
	case *Literal:
		b.WriteString(x.Val.SQLLiteral())
	case *Param:
		b.WriteString("$")
		b.WriteString(strconv.Itoa(x.N))
	case *ColumnRef:
		if x.Table != "" {
			b.WriteString(x.Table)
			b.WriteString(".")
		}
		b.WriteString(x.Column)
	case *Binary:
		b.WriteString("(")
		renderExpr(b, x.L)
		b.WriteString(" ")
		b.WriteString(x.Op.String())
		b.WriteString(" ")
		renderExpr(b, x.R)
		b.WriteString(")")
	case *Unary:
		b.WriteString(x.Op)
		if x.Op == "NOT" {
			b.WriteString(" ")
		}
		b.WriteString("(")
		renderExpr(b, x.X)
		b.WriteString(")")
	case *FuncCall:
		b.WriteString(x.Name)
		b.WriteString("(")
		if x.Star {
			b.WriteString("*")
		} else {
			if x.Distinct {
				b.WriteString("DISTINCT ")
			}
			for i, a := range x.Args {
				if i > 0 {
					b.WriteString(", ")
				}
				renderExpr(b, a)
			}
		}
		b.WriteString(")")
	case *In:
		renderExpr(b, x.X)
		if x.Not {
			b.WriteString(" NOT")
		}
		b.WriteString(" IN (")
		if x.Select != nil {
			renderSelect(b, x.Select)
		} else {
			for i, a := range x.List {
				if i > 0 {
					b.WriteString(", ")
				}
				renderExpr(b, a)
			}
		}
		b.WriteString(")")
	case *Exists:
		if x.Not {
			b.WriteString("NOT ")
		}
		b.WriteString("EXISTS (")
		renderSelect(b, x.Select)
		b.WriteString(")")
	case *Subquery:
		b.WriteString("(")
		renderSelect(b, x.Select)
		b.WriteString(")")
	case *Between:
		renderExpr(b, x.X)
		if x.Not {
			b.WriteString(" NOT")
		}
		b.WriteString(" BETWEEN ")
		renderExpr(b, x.Lo)
		b.WriteString(" AND ")
		renderExpr(b, x.Hi)
	case *Like:
		renderExpr(b, x.X)
		if x.Not {
			b.WriteString(" NOT")
		}
		b.WriteString(" LIKE ")
		renderExpr(b, x.Pattern)
	case *IsNull:
		renderExpr(b, x.X)
		b.WriteString(" IS ")
		if x.Not {
			b.WriteString("NOT ")
		}
		b.WriteString("NULL")
	case *Case:
		b.WriteString("CASE")
		if x.Operand != nil {
			b.WriteString(" ")
			renderExpr(b, x.Operand)
		}
		for _, w := range x.Whens {
			b.WriteString(" WHEN ")
			renderExpr(b, w.Cond)
			b.WriteString(" THEN ")
			renderExpr(b, w.Then)
		}
		if x.Else != nil {
			b.WriteString(" ELSE ")
			renderExpr(b, x.Else)
		}
		b.WriteString(" END")
	case *Cast:
		b.WriteString("CAST(")
		renderExpr(b, x.X)
		b.WriteString(" AS ")
		renderType(b, x.To)
		b.WriteString(")")
	}
}
