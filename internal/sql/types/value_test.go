package types

import (
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndString(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
		str  string
	}{
		{Null(), KindNull, "NULL"},
		{NewInt(42), KindInt, "42"},
		{NewInt(-7), KindInt, "-7"},
		{NewFloat(2.5), KindFloat, "2.5"},
		{NewString("abc"), KindString, "abc"},
		{NewBool(true), KindBool, "TRUE"},
		{NewBool(false), KindBool, "FALSE"},
		{NewDate("2001-02-03"), KindDate, "2001-02-03"},
	}
	for _, tc := range cases {
		if tc.v.K != tc.kind {
			t.Errorf("%v: kind %v want %v", tc.v, tc.v.K, tc.kind)
		}
		if got := tc.v.String(); got != tc.str {
			t.Errorf("String() = %q want %q", got, tc.str)
		}
	}
}

func TestSQLLiteral(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{NewString("a'b"), "'a''b'"},
		{NewInt(5), "5"},
		{Null(), "NULL"},
		{NewDate("2001-01-01"), "'2001-01-01'"},
	}
	for _, tc := range cases {
		if got := tc.v.SQLLiteral(); got != tc.want {
			t.Errorf("SQLLiteral(%v) = %q want %q", tc.v, got, tc.want)
		}
	}
}

func TestCompareNumericCrossKind(t *testing.T) {
	c, err := Compare(NewInt(3), NewFloat(3.0))
	if err != nil || c != 0 {
		t.Errorf("3 vs 3.0: c=%d err=%v", c, err)
	}
	c, err = Compare(NewInt(2), NewFloat(2.5))
	if err != nil || c >= 0 {
		t.Errorf("2 vs 2.5: c=%d err=%v", c, err)
	}
}

func TestCompareStringNumberCoercion(t *testing.T) {
	c, err := Compare(NewFloat(9), NewString("9.00"))
	if err != nil || c != 0 {
		t.Errorf("9 vs '9.00': c=%d err=%v", c, err)
	}
	c, err = Compare(NewString("10"), NewInt(2))
	if err != nil || c <= 0 {
		t.Errorf("'10' vs 2: c=%d err=%v", c, err)
	}
}

func TestCompareNullErrors(t *testing.T) {
	if _, err := Compare(Null(), NewInt(1)); err == nil {
		t.Error("NULL comparison should error")
	}
	var ce *CompareError
	_, err := Compare(NewBool(true), NewString("x"))
	if err == nil {
		t.Fatal("bool vs non-numeric string should error")
	}
	if !asCompareError(err, &ce) {
		t.Errorf("want *CompareError, got %T", err)
	}
}

func asCompareError(err error, target **CompareError) bool {
	ce, ok := err.(*CompareError)
	if ok {
		*target = ce
	}
	return ok
}

func TestEqualAndIdentical(t *testing.T) {
	if Equal(Null(), Null()) {
		t.Error("NULL must not Equal NULL")
	}
	if !Identical(Null(), Null()) {
		t.Error("NULL must be Identical to NULL")
	}
	if !Equal(NewInt(1), NewFloat(1)) {
		t.Error("1 and 1.0 must be Equal")
	}
}

func TestParseDate(t *testing.T) {
	good := map[string]string{
		"2000-9-6":   "2000-09-06",
		"2000-09-06": "2000-09-06",
		" 1999-1-1":  "1999-01-01",
	}
	for in, want := range good {
		v, err := ParseDate(in)
		if err != nil {
			t.Errorf("ParseDate(%q): %v", in, err)
			continue
		}
		if v.S != want {
			t.Errorf("ParseDate(%q) = %q want %q", in, v.S, want)
		}
	}
	for _, bad := range []string{"2000-13-01", "2000-01-40", "abc", "2000/01/01", "2000-01"} {
		if _, err := ParseDate(bad); err == nil {
			t.Errorf("ParseDate(%q) should fail", bad)
		}
	}
}

func TestThreeValuedLogicTables(t *testing.T) {
	vals := []Truth{True, False, Unknown}
	for _, a := range vals {
		for _, b := range vals {
			and := a.And(b)
			or := a.Or(b)
			// Kleene logic identities.
			if and != b.And(a) {
				t.Errorf("AND not commutative for %v,%v", a, b)
			}
			if or != b.Or(a) {
				t.Errorf("OR not commutative for %v,%v", a, b)
			}
			// De Morgan.
			if and.Not() != a.Not().Or(b.Not()) {
				t.Errorf("De Morgan AND failed for %v,%v", a, b)
			}
			if or.Not() != a.Not().And(b.Not()) {
				t.Errorf("De Morgan OR failed for %v,%v", a, b)
			}
		}
	}
	if False.And(Unknown) != False {
		t.Error("FALSE AND UNKNOWN must be FALSE")
	}
	if True.Or(Unknown) != True {
		t.Error("TRUE OR UNKNOWN must be TRUE")
	}
	if Unknown.Not() != Unknown {
		t.Error("NOT UNKNOWN must be UNKNOWN")
	}
}

func TestTruthOf(t *testing.T) {
	cases := []struct {
		v    Value
		want Truth
	}{
		{Null(), Unknown},
		{NewBool(true), True},
		{NewBool(false), False},
		{NewInt(0), False},
		{NewInt(5), True},
		{NewFloat(0), False},
		{NewFloat(0.1), True},
		{NewString("x"), False},
	}
	for _, tc := range cases {
		if got := TruthOf(tc.v); got != tc.want {
			t.Errorf("TruthOf(%v) = %v want %v", tc.v, got, tc.want)
		}
	}
}

// Property: Compare is antisymmetric and reflexive over ints.
func TestCompareProperties(t *testing.T) {
	antisym := func(a, b int64) bool {
		c1, err1 := Compare(NewInt(a), NewInt(b))
		c2, err2 := Compare(NewInt(b), NewInt(a))
		return err1 == nil && err2 == nil && sign(c1) == -sign(c2)
	}
	if err := quick.Check(antisym, nil); err != nil {
		t.Error(err)
	}
	refl := func(a int64) bool {
		c, err := Compare(NewInt(a), NewInt(a))
		return err == nil && c == 0
	}
	if err := quick.Check(refl, nil); err != nil {
		t.Error(err)
	}
	strRefl := func(s string) bool {
		return Identical(NewString(s), NewString(s))
	}
	if err := quick.Check(strRefl, nil); err != nil {
		t.Error(err)
	}
}

func sign(c int) int {
	switch {
	case c < 0:
		return -1
	case c > 0:
		return 1
	default:
		return 0
	}
}

// Property: Truth.Val round-trips through TruthOf.
func TestTruthValRoundTrip(t *testing.T) {
	for _, tr := range []Truth{True, False, Unknown} {
		if got := TruthOf(tr.Val()); got != tr {
			t.Errorf("TruthOf(%v.Val()) = %v", tr, got)
		}
	}
}
