// Package types defines the SQL value model shared by the parser, the
// relational engine, the result comparator and the replication middleware.
//
// Values are small immutable structs; NULL is represented explicitly so
// that three-valued logic can be implemented faithfully in the engine.
package types

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind enumerates the dynamic type of a Value.
type Kind int

// Value kinds. KindNull is deliberately the zero value so that the zero
// Value is SQL NULL.
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindString
	KindBool
	KindDate
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "INTEGER"
	case KindFloat:
		return "FLOAT"
	case KindString:
		return "VARCHAR"
	case KindBool:
		return "BOOLEAN"
	case KindDate:
		return "DATE"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Value is a single SQL scalar. The zero value is NULL.
type Value struct {
	K Kind
	I int64
	F float64
	S string // string payload; dates are stored normalized as YYYY-MM-DD
	B bool
}

// Null returns the SQL NULL value.
func Null() Value { return Value{} }

// NewInt returns an integer value.
func NewInt(i int64) Value { return Value{K: KindInt, I: i} }

// NewFloat returns a floating point value.
func NewFloat(f float64) Value { return Value{K: KindFloat, F: f} }

// NewString returns a string value.
func NewString(s string) Value { return Value{K: KindString, S: s} }

// NewBool returns a boolean value.
func NewBool(b bool) Value { return Value{K: KindBool, B: b} }

// NewDate returns a date value; the payload must already be normalized
// (YYYY-MM-DD). Use ParseDate to normalize user input.
func NewDate(s string) Value { return Value{K: KindDate, S: s} }

// IsNull reports whether the value is SQL NULL.
func (v Value) IsNull() bool { return v.K == KindNull }

// IsNumeric reports whether the value is an INT or FLOAT.
func (v Value) IsNumeric() bool { return v.K == KindInt || v.K == KindFloat }

// AsFloat converts a numeric value to float64. Non-numeric values yield 0.
func (v Value) AsFloat() float64 {
	switch v.K {
	case KindInt:
		return float64(v.I)
	case KindFloat:
		return v.F
	default:
		return 0
	}
}

// AsInt converts a numeric value to int64 (floats truncate toward zero).
func (v Value) AsInt() int64 {
	switch v.K {
	case KindInt:
		return v.I
	case KindFloat:
		return int64(v.F)
	default:
		return 0
	}
}

// String renders the value the way the simulated servers print result
// cells. NULL renders as the literal "NULL".
func (v Value) String() string {
	switch v.K {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case KindString, KindDate:
		return v.S
	case KindBool:
		if v.B {
			return "TRUE"
		}
		return "FALSE"
	default:
		return "?"
	}
}

// SQLLiteral renders the value as a SQL literal suitable for re-parsing.
func (v Value) SQLLiteral() string {
	switch v.K {
	case KindString:
		return "'" + strings.ReplaceAll(v.S, "'", "''") + "'"
	case KindDate:
		return "'" + v.S + "'"
	default:
		return v.String()
	}
}

// Encode renders the value in the kind-tagged text form used wherever a
// typed value must cross a text boundary losslessly: the wire protocol's
// BIND frames and the replayable bound-statement encoding of journals and
// divergence reports. The form is a single token with no whitespace,
// tabs, commas or newlines: "N" for NULL, otherwise "<kind>:<payload>"
// with backslash escapes for the payload's separator and whitespace
// characters. Spaces are escaped too (\s): encoded values survive any
// whitespace trimming a transport or artifact file may apply, which
// matters precisely for the trailing-space values the PG bind rule
// distinguishes.
func (v Value) Encode() string {
	switch v.K {
	case KindNull:
		return "N"
	case KindInt:
		return "I:" + strconv.FormatInt(v.I, 10)
	case KindFloat:
		return "F:" + strconv.FormatFloat(v.F, 'g', -1, 64)
	case KindBool:
		if v.B {
			return "B:1"
		}
		return "B:0"
	case KindDate:
		return "D:" + escapePayload(v.S)
	default:
		return "S:" + escapePayload(v.S)
	}
}

// DecodeValue parses the Encode form back into a Value.
func DecodeValue(s string) (Value, error) {
	if s == "N" {
		return Null(), nil
	}
	kind, payload, ok := strings.Cut(s, ":")
	if !ok {
		return Value{}, fmt.Errorf("malformed encoded value %q", s)
	}
	switch kind {
	case "I":
		i, err := strconv.ParseInt(payload, 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("malformed encoded int %q", s)
		}
		return NewInt(i), nil
	case "F":
		f, err := strconv.ParseFloat(payload, 64)
		if err != nil {
			return Value{}, fmt.Errorf("malformed encoded float %q", s)
		}
		return NewFloat(f), nil
	case "B":
		return NewBool(payload == "1"), nil
	case "D":
		return NewDate(unescapePayload(payload)), nil
	case "S":
		return NewString(unescapePayload(payload)), nil
	default:
		return Value{}, fmt.Errorf("unknown encoded value kind %q", s)
	}
}

var payloadEscaper = strings.NewReplacer(
	`\`, `\\`, "\t", `\t`, "\n", `\n`, "\r", `\r`, ",", `\c`, " ", `\s`,
)

func escapePayload(s string) string { return payloadEscaper.Replace(s) }

func unescapePayload(s string) string {
	if !strings.Contains(s, `\`) {
		return s
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] != '\\' || i+1 >= len(s) {
			b.WriteByte(s[i])
			continue
		}
		i++
		switch s[i] {
		case 't':
			b.WriteByte('\t')
		case 'n':
			b.WriteByte('\n')
		case 'r':
			b.WriteByte('\r')
		case 'c':
			b.WriteByte(',')
		case 's':
			b.WriteByte(' ')
		default:
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

// CompareError describes an attempt to compare incomparable values.
type CompareError struct {
	Left, Right Kind
}

func (e *CompareError) Error() string {
	return fmt.Sprintf("cannot compare %s with %s", e.Left, e.Right)
}

// Compare orders two non-NULL values. It returns a negative, zero or
// positive integer in the usual way. Numeric values compare numerically
// across INT/FLOAT; strings and dates compare lexically (dates are stored
// normalized so lexical order is chronological). Comparing NULL or
// incompatible kinds returns a *CompareError.
func Compare(a, b Value) (int, error) {
	if a.IsNull() || b.IsNull() {
		return 0, &CompareError{Left: a.K, Right: b.K}
	}
	if a.IsNumeric() && b.IsNumeric() {
		af, bf := a.AsFloat(), b.AsFloat()
		switch {
		case af < bf:
			return -1, nil
		case af > bf:
			return 1, nil
		default:
			return 0, nil
		}
	}
	if (a.K == KindString || a.K == KindDate) && (b.K == KindString || b.K == KindDate) {
		return strings.Compare(a.S, b.S), nil
	}
	if a.K == KindBool && b.K == KindBool {
		switch {
		case a.B == b.B:
			return 0, nil
		case !a.B:
			return -1, nil
		default:
			return 1, nil
		}
	}
	// Numeric vs string: attempt numeric coercion of the string, the way
	// the simulated servers' loose comparison works.
	if a.IsNumeric() && (b.K == KindString || b.K == KindDate) {
		if f, err := strconv.ParseFloat(strings.TrimSpace(b.S), 64); err == nil {
			return Compare(a, NewFloat(f))
		}
	}
	if (a.K == KindString || a.K == KindDate) && b.IsNumeric() {
		if f, err := strconv.ParseFloat(strings.TrimSpace(a.S), 64); err == nil {
			return Compare(NewFloat(f), b)
		}
	}
	return 0, &CompareError{Left: a.K, Right: b.K}
}

// Equal reports whether two values are equal under Compare semantics.
// NULL is not equal to anything, including NULL.
func Equal(a, b Value) bool {
	c, err := Compare(a, b)
	return err == nil && c == 0
}

// Identical reports whether two values are indistinguishable, treating
// NULL as identical to NULL. Used for grouping, DISTINCT and ORDER BY
// where SQL treats NULLs as a single class.
func Identical(a, b Value) bool {
	if a.IsNull() || b.IsNull() {
		return a.IsNull() && b.IsNull()
	}
	c, err := Compare(a, b)
	return err == nil && c == 0
}

// ParseDate normalizes a date literal. It accepts YYYY-MM-DD with 1- or
// 2-digit month/day components and zero-pads them.
func ParseDate(s string) (Value, error) {
	parts := strings.Split(strings.TrimSpace(s), "-")
	if len(parts) != 3 {
		return Value{}, fmt.Errorf("invalid date literal %q", s)
	}
	nums := make([]int, 3)
	for i, p := range parts {
		n, err := strconv.Atoi(p)
		if err != nil {
			return Value{}, fmt.Errorf("invalid date literal %q", s)
		}
		nums[i] = n
	}
	if nums[1] < 1 || nums[1] > 12 || nums[2] < 1 || nums[2] > 31 {
		return Value{}, fmt.Errorf("date out of range %q", s)
	}
	return NewDate(fmt.Sprintf("%04d-%02d-%02d", nums[0], nums[1], nums[2])), nil
}

// Truth is a three-valued logic truth value.
type Truth int

// Three-valued logic constants.
const (
	False Truth = iota
	True
	Unknown
)

// TruthOf converts a Value to a Truth: NULL is Unknown, booleans map
// directly, numbers are true when non-zero.
func TruthOf(v Value) Truth {
	switch v.K {
	case KindNull:
		return Unknown
	case KindBool:
		if v.B {
			return True
		}
		return False
	case KindInt:
		if v.I != 0 {
			return True
		}
		return False
	case KindFloat:
		if v.F != 0 {
			return True
		}
		return False
	default:
		return False
	}
}

// And returns the three-valued conjunction.
func (t Truth) And(o Truth) Truth {
	if t == False || o == False {
		return False
	}
	if t == Unknown || o == Unknown {
		return Unknown
	}
	return True
}

// Or returns the three-valued disjunction.
func (t Truth) Or(o Truth) Truth {
	if t == True || o == True {
		return True
	}
	if t == Unknown || o == Unknown {
		return Unknown
	}
	return False
}

// Not returns the three-valued negation.
func (t Truth) Not() Truth {
	switch t {
	case True:
		return False
	case False:
		return True
	default:
		return Unknown
	}
}

// Val converts a Truth back into a Value (Unknown becomes NULL).
func (t Truth) Val() Value {
	switch t {
	case True:
		return NewBool(true)
	case False:
		return NewBool(false)
	default:
		return Null()
	}
}
