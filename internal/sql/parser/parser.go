// Package parser implements a recursive-descent parser for the SQL
// superset accepted by the simulated servers. Dialect restrictions
// (unsupported functions, types, or syntax gates) are enforced after
// parsing by the dialect layer, so the parser itself accepts the union of
// the four dialects.
package parser

import (
	"fmt"
	"strconv"
	"strings"

	"divsql/internal/sql/ast"
	"divsql/internal/sql/lexer"
	"divsql/internal/sql/types"
)

// SyntaxError reports a parse failure.
type SyntaxError struct {
	Pos int
	Msg string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("syntax error at offset %d: %s", e.Pos, e.Msg)
}

// Parser consumes a token stream.
type Parser struct {
	toks []lexer.Token
	pos  int
	// qmarks counts ? placeholders seen so far: each is assigned the next
	// 1-based ordinal, the database/sql convention. $n placeholders name
	// their ordinal explicitly and do not advance the counter.
	qmarks int
}

// Parse parses a single SQL statement (an optional trailing semicolon is
// consumed).
func Parse(src string) (ast.Statement, error) {
	toks, err := lexer.Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	st, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	p.accept(lexer.TokSemicolon, "")
	if !p.at(lexer.TokEOF, "") {
		return nil, p.errf("unexpected trailing input %q", p.cur().Text)
	}
	return st, nil
}

// ParseScript parses a semicolon-separated script into statements.
func ParseScript(src string) ([]ast.Statement, error) {
	toks, err := lexer.Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	var stmts []ast.Statement
	for {
		for p.accept(lexer.TokSemicolon, "") {
		}
		if p.at(lexer.TokEOF, "") {
			return stmts, nil
		}
		st, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, st)
		if !p.accept(lexer.TokSemicolon, "") && !p.at(lexer.TokEOF, "") {
			return nil, p.errf("expected ';' between statements, got %q", p.cur().Text)
		}
	}
}

// SplitScript splits a script into individual statement texts using the
// lexer (so semicolons inside string literals do not split). Empty
// statements are dropped.
func SplitScript(src string) ([]string, error) {
	toks, err := lexer.Tokenize(src)
	if err != nil {
		return nil, err
	}
	var out []string
	start := 0
	for _, t := range toks {
		switch t.Kind {
		case lexer.TokSemicolon:
			piece := strings.TrimSpace(src[start:t.Pos])
			if piece != "" {
				out = append(out, piece)
			}
			start = t.Pos + 1
		case lexer.TokEOF:
			piece := strings.TrimSpace(src[start:])
			if piece != "" {
				out = append(out, piece)
			}
		}
	}
	return out, nil
}

func (p *Parser) cur() lexer.Token { return p.toks[p.pos] }

func (p *Parser) at(k lexer.TokenKind, text string) bool {
	t := p.cur()
	return t.Kind == k && (text == "" || t.Text == text)
}

func (p *Parser) atKw(kw string) bool { return p.at(lexer.TokKeyword, kw) }

func (p *Parser) accept(k lexer.TokenKind, text string) bool {
	if p.at(k, text) {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) acceptKw(kw string) bool { return p.accept(lexer.TokKeyword, kw) }

func (p *Parser) expect(k lexer.TokenKind, text string) (lexer.Token, error) {
	t := p.cur()
	if !p.at(k, text) {
		want := text
		if want == "" {
			want = fmt.Sprintf("token kind %d", k)
		}
		return t, p.errf("expected %s, got %q", want, t.Text)
	}
	p.pos++
	return t, nil
}

func (p *Parser) expectKw(kw string) error {
	_, err := p.expect(lexer.TokKeyword, kw)
	return err
}

func (p *Parser) errf(format string, args ...any) error {
	return &SyntaxError{Pos: p.cur().Pos, Msg: fmt.Sprintf(format, args...)}
}

// ident accepts an identifier or a non-reserved keyword used as a name.
func (p *Parser) ident() (string, error) {
	t := p.cur()
	if t.Kind == lexer.TokIdent {
		p.pos++
		return t.Text, nil
	}
	return "", p.errf("expected identifier, got %q", t.Text)
}

func (p *Parser) parseStatement() (ast.Statement, error) {
	switch {
	case p.atKw("SELECT"):
		return p.parseSelect()
	case p.atKw("INSERT"):
		return p.parseInsert()
	case p.atKw("UPDATE"):
		return p.parseUpdate()
	case p.atKw("DELETE"):
		return p.parseDelete()
	case p.atKw("CREATE"):
		return p.parseCreate()
	case p.atKw("DROP"):
		return p.parseDrop()
	case p.atKw("BEGIN"):
		p.pos++
		p.acceptKw("WORK")
		p.acceptKw("TRANSACTION")
		return &ast.Begin{}, nil
	case p.atKw("COMMIT"):
		p.pos++
		p.acceptKw("WORK")
		p.acceptKw("TRANSACTION")
		return &ast.Commit{}, nil
	case p.atKw("ROLLBACK"):
		p.pos++
		p.acceptKw("WORK")
		p.acceptKw("TRANSACTION")
		return &ast.Rollback{}, nil
	case p.atKw("SET"):
		return p.parseSetTransaction()
	default:
		return nil, p.errf("expected statement, got %q", p.cur().Text)
	}
}

// parseSetTransaction parses SET TRANSACTION ISOLATION LEVEL <level>.
// The level words are not reserved — they remain usable as identifiers
// elsewhere — so they arrive as plain identifiers and are matched
// case-insensitively here.
func (p *Parser) parseSetTransaction() (ast.Statement, error) {
	if err := p.expectKw("SET"); err != nil {
		return nil, err
	}
	if err := p.expectKw("TRANSACTION"); err != nil {
		return nil, err
	}
	if err := p.expectIdentWord("ISOLATION"); err != nil {
		return nil, err
	}
	if err := p.expectIdentWord("LEVEL"); err != nil {
		return nil, err
	}
	var lvl string
	switch {
	case p.acceptIdentWord("READ"):
		switch {
		case p.acceptIdentWord("UNCOMMITTED"):
			lvl = "READ UNCOMMITTED"
		case p.acceptIdentWord("COMMITTED"):
			lvl = "READ COMMITTED"
		default:
			return nil, p.errf("expected COMMITTED or UNCOMMITTED, got %q", p.cur().Text)
		}
	case p.acceptIdentWord("REPEATABLE"):
		if err := p.expectIdentWord("READ"); err != nil {
			return nil, err
		}
		lvl = "REPEATABLE READ"
	case p.acceptIdentWord("SERIALIZABLE"):
		lvl = "SERIALIZABLE"
	case p.acceptIdentWord("SNAPSHOT"):
		lvl = "SNAPSHOT"
	default:
		return nil, p.errf("expected isolation level, got %q", p.cur().Text)
	}
	return &ast.SetTxn{Level: lvl}, nil
}

// acceptIdentWord consumes an identifier equal to word ignoring case.
func (p *Parser) acceptIdentWord(word string) bool {
	t := p.cur()
	if t.Kind == lexer.TokIdent && strings.EqualFold(t.Text, word) {
		p.pos++
		return true
	}
	return false
}

// expectIdentWord requires an identifier equal to word ignoring case.
func (p *Parser) expectIdentWord(word string) error {
	if !p.acceptIdentWord(word) {
		return p.errf("expected %s, got %q", word, p.cur().Text)
	}
	return nil
}

// ---------------------------------------------------------------------------
// DDL

func (p *Parser) parseCreate() (ast.Statement, error) {
	if err := p.expectKw("CREATE"); err != nil {
		return nil, err
	}
	unique := p.acceptKw("UNIQUE")
	clustered := p.acceptKw("CLUSTERED")
	switch {
	case p.atKw("TABLE"):
		if unique || clustered {
			return nil, p.errf("unexpected modifier before TABLE")
		}
		return p.parseCreateTable()
	case p.atKw("VIEW"):
		if unique || clustered {
			return nil, p.errf("unexpected modifier before VIEW")
		}
		return p.parseCreateView()
	case p.atKw("INDEX"):
		return p.parseCreateIndex(unique, clustered)
	case p.atKw("SEQUENCE") || p.atKw("GENERATOR"):
		p.pos++
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		seq := &ast.CreateSequence{Name: name}
		if p.acceptKw("START") {
			if err := p.expectKw("WITH"); err != nil {
				return nil, err
			}
			n, err := p.expect(lexer.TokNumber, "")
			if err != nil {
				return nil, err
			}
			v, err := strconv.ParseInt(n.Text, 10, 64)
			if err != nil {
				return nil, p.errf("invalid sequence start %q", n.Text)
			}
			seq.Start = v
		}
		return seq, nil
	default:
		return nil, p.errf("expected TABLE, VIEW, INDEX or SEQUENCE after CREATE")
	}
}

func (p *Parser) parseCreateTable() (ast.Statement, error) {
	if err := p.expectKw("TABLE"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(lexer.TokLParen, ""); err != nil {
		return nil, err
	}
	ct := &ast.CreateTable{Name: name}
	for {
		switch {
		case p.atKw("PRIMARY") || p.atKw("UNIQUE") || p.atKw("CHECK") || p.atKw("CONSTRAINT"):
			tc, err := p.parseTableConstraint()
			if err != nil {
				return nil, err
			}
			ct.Constraints = append(ct.Constraints, tc)
		default:
			cd, err := p.parseColumnDef()
			if err != nil {
				return nil, err
			}
			ct.Columns = append(ct.Columns, cd)
		}
		if p.accept(lexer.TokComma, "") {
			continue
		}
		if _, err := p.expect(lexer.TokRParen, ""); err != nil {
			return nil, err
		}
		return ct, nil
	}
}

func (p *Parser) parseTableConstraint() (ast.TableConstraint, error) {
	var tc ast.TableConstraint
	if p.acceptKw("CONSTRAINT") {
		name, err := p.ident()
		if err != nil {
			return tc, err
		}
		tc.Name = name
	}
	switch {
	case p.acceptKw("PRIMARY"):
		if err := p.expectKw("KEY"); err != nil {
			return tc, err
		}
		cols, err := p.parseNameList()
		if err != nil {
			return tc, err
		}
		tc.PrimaryKey = cols
	case p.acceptKw("UNIQUE"):
		cols, err := p.parseNameList()
		if err != nil {
			return tc, err
		}
		tc.Unique = cols
	case p.acceptKw("CHECK"):
		if _, err := p.expect(lexer.TokLParen, ""); err != nil {
			return tc, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return tc, err
		}
		if _, err := p.expect(lexer.TokRParen, ""); err != nil {
			return tc, err
		}
		tc.Check = e
	default:
		return tc, p.errf("expected PRIMARY KEY, UNIQUE or CHECK")
	}
	return tc, nil
}

func (p *Parser) parseNameList() ([]string, error) {
	if _, err := p.expect(lexer.TokLParen, ""); err != nil {
		return nil, err
	}
	var cols []string
	for {
		n, err := p.ident()
		if err != nil {
			return nil, err
		}
		cols = append(cols, n)
		if p.accept(lexer.TokComma, "") {
			continue
		}
		if _, err := p.expect(lexer.TokRParen, ""); err != nil {
			return nil, err
		}
		return cols, nil
	}
}

func (p *Parser) parseColumnDef() (ast.ColumnDef, error) {
	var cd ast.ColumnDef
	name, err := p.ident()
	if err != nil {
		return cd, err
	}
	cd.Name = name
	tn, err := p.parseTypeName()
	if err != nil {
		return cd, err
	}
	cd.Type = tn
	for {
		switch {
		case p.acceptKw("DEFAULT"):
			e, err := p.parseExpr()
			if err != nil {
				return cd, err
			}
			cd.Default = e
		case p.acceptKw("NOT"):
			if err := p.expectKw("NULL"); err != nil {
				return cd, err
			}
			cd.NotNull = true
		case p.acceptKw("PRIMARY"):
			if err := p.expectKw("KEY"); err != nil {
				return cd, err
			}
			cd.PrimaryKey = true
		case p.acceptKw("UNIQUE"):
			cd.Unique = true
		case p.acceptKw("CHECK"):
			if _, err := p.expect(lexer.TokLParen, ""); err != nil {
				return cd, err
			}
			e, err := p.parseExpr()
			if err != nil {
				return cd, err
			}
			if _, err := p.expect(lexer.TokRParen, ""); err != nil {
				return cd, err
			}
			cd.Check = e
		default:
			return cd, nil
		}
	}
}

func (p *Parser) parseTypeName() (ast.TypeName, error) {
	var tn ast.TypeName
	n, err := p.ident()
	if err != nil {
		return tn, err
	}
	tn.Name = strings.ToUpper(n)
	// Multi-word types: DOUBLE PRECISION.
	if tn.Name == "DOUBLE" && p.at(lexer.TokIdent, "") && strings.EqualFold(p.cur().Text, "PRECISION") {
		p.pos++
		tn.Name = "DOUBLE PRECISION"
	}
	if p.accept(lexer.TokLParen, "") {
		for {
			t, err := p.expect(lexer.TokNumber, "")
			if err != nil {
				return tn, err
			}
			v, err := strconv.Atoi(t.Text)
			if err != nil {
				return tn, p.errf("invalid type argument %q", t.Text)
			}
			tn.Args = append(tn.Args, v)
			if p.accept(lexer.TokComma, "") {
				continue
			}
			if _, err := p.expect(lexer.TokRParen, ""); err != nil {
				return tn, err
			}
			break
		}
	}
	return tn, nil
}

func (p *Parser) parseCreateView() (ast.Statement, error) {
	if err := p.expectKw("VIEW"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	cv := &ast.CreateView{Name: name}
	if p.at(lexer.TokLParen, "") {
		cols, err := p.parseNameList()
		if err != nil {
			return nil, err
		}
		cv.Columns = cols
	}
	if err := p.expectKw("AS"); err != nil {
		return nil, err
	}
	sel, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	cv.Select = sel
	return cv, nil
}

func (p *Parser) parseCreateIndex(unique, clustered bool) (ast.Statement, error) {
	if err := p.expectKw("INDEX"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("ON"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	cols, err := p.parseNameList()
	if err != nil {
		return nil, err
	}
	return &ast.CreateIndex{Name: name, Table: table, Columns: cols, Unique: unique, Clustered: clustered}, nil
}

func (p *Parser) parseDrop() (ast.Statement, error) {
	if err := p.expectKw("DROP"); err != nil {
		return nil, err
	}
	switch {
	case p.acceptKw("TABLE"):
		n, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &ast.DropTable{Name: n}, nil
	case p.acceptKw("VIEW"):
		n, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &ast.DropView{Name: n}, nil
	case p.acceptKw("INDEX"):
		n, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &ast.DropIndex{Name: n}, nil
	case p.acceptKw("SEQUENCE"), p.acceptKw("GENERATOR"):
		n, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &ast.DropSequence{Name: n}, nil
	default:
		return nil, p.errf("expected TABLE, VIEW, INDEX or SEQUENCE after DROP")
	}
}

// ---------------------------------------------------------------------------
// DML

func (p *Parser) parseInsert() (ast.Statement, error) {
	if err := p.expectKw("INSERT"); err != nil {
		return nil, err
	}
	if err := p.expectKw("INTO"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	ins := &ast.Insert{Table: table}
	if p.at(lexer.TokLParen, "") {
		// Could be a column list or (rare) a VALUES-less insert; we only
		// support a column list here.
		cols, err := p.parseNameList()
		if err != nil {
			return nil, err
		}
		ins.Columns = cols
	}
	switch {
	case p.acceptKw("VALUES"):
		for {
			if _, err := p.expect(lexer.TokLParen, ""); err != nil {
				return nil, err
			}
			var row []ast.Expr
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				row = append(row, e)
				if p.accept(lexer.TokComma, "") {
					continue
				}
				break
			}
			if _, err := p.expect(lexer.TokRParen, ""); err != nil {
				return nil, err
			}
			ins.Rows = append(ins.Rows, row)
			if p.accept(lexer.TokComma, "") {
				continue
			}
			return ins, nil
		}
	case p.atKw("SELECT"):
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		ins.Select = sel
		return ins, nil
	default:
		return nil, p.errf("expected VALUES or SELECT in INSERT")
	}
}

func (p *Parser) parseUpdate() (ast.Statement, error) {
	if err := p.expectKw("UPDATE"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("SET"); err != nil {
		return nil, err
	}
	up := &ast.Update{Table: table}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(lexer.TokOp, "="); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		up.Sets = append(up.Sets, ast.SetClause{Column: col, Value: e})
		if p.accept(lexer.TokComma, "") {
			continue
		}
		break
	}
	if p.acceptKw("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		up.Where = e
	}
	return up, nil
}

func (p *Parser) parseDelete() (ast.Statement, error) {
	if err := p.expectKw("DELETE"); err != nil {
		return nil, err
	}
	if err := p.expectKw("FROM"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	del := &ast.Delete{Table: table}
	if p.acceptKw("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		del.Where = e
	}
	return del, nil
}

// ---------------------------------------------------------------------------
// SELECT

func (p *Parser) parseSelect() (*ast.Select, error) {
	first, err := p.parseSelectCore()
	if err != nil {
		return nil, err
	}
	cur := first
	for p.acceptKw("UNION") {
		all := p.acceptKw("ALL")
		next, err := p.parseSelectCore()
		if err != nil {
			return nil, err
		}
		cur.Union = next
		cur.UnionAll = all
		cur = next
	}
	if p.acceptKw("ORDER") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := ast.OrderItem{Expr: e}
			if p.acceptKw("DESC") {
				item.Desc = true
			} else {
				p.acceptKw("ASC")
			}
			first.OrderBy = append(first.OrderBy, item)
			if p.accept(lexer.TokComma, "") {
				continue
			}
			break
		}
	}
	switch {
	case p.acceptKw("LIMIT"):
		n, err := p.parseLimitCount()
		if err != nil {
			return nil, err
		}
		first.Limit, first.LimitSyn = n, ast.LimitLimit
	case p.acceptKw("ROWS"):
		n, err := p.parseLimitCount()
		if err != nil {
			return nil, err
		}
		first.Limit, first.LimitSyn = n, ast.LimitRows
	}
	return first, nil
}

func (p *Parser) parseLimitCount() (int64, error) {
	t, err := p.expect(lexer.TokNumber, "")
	if err != nil {
		return 0, err
	}
	v, err := strconv.ParseInt(t.Text, 10, 64)
	if err != nil {
		return 0, p.errf("invalid row count %q", t.Text)
	}
	return v, nil
}

func (p *Parser) parseSelectCore() (*ast.Select, error) {
	if err := p.expectKw("SELECT"); err != nil {
		return nil, err
	}
	s := &ast.Select{}
	if p.acceptKw("DISTINCT") {
		s.Distinct = true
	} else {
		p.acceptKw("ALL")
	}
	if p.acceptKw("TOP") {
		n, err := p.parseLimitCount()
		if err != nil {
			return nil, err
		}
		s.Limit, s.LimitSyn = n, ast.LimitTop
	}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		s.Items = append(s.Items, item)
		if p.accept(lexer.TokComma, "") {
			continue
		}
		break
	}
	if p.acceptKw("FROM") {
		for {
			fi, err := p.parseFromItem()
			if err != nil {
				return nil, err
			}
			s.From = append(s.From, fi)
			if p.accept(lexer.TokComma, "") {
				continue
			}
			break
		}
	}
	if p.acceptKw("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Where = e
	}
	if p.acceptKw("GROUP") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			s.GroupBy = append(s.GroupBy, e)
			if p.accept(lexer.TokComma, "") {
				continue
			}
			break
		}
	}
	if p.acceptKw("HAVING") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Having = e
	}
	return s, nil
}

func (p *Parser) parseSelectItem() (ast.SelectItem, error) {
	var item ast.SelectItem
	if p.accept(lexer.TokStar, "") {
		item.Star = true
		return item, nil
	}
	// tbl.* form: identifier '.' '*'
	if p.cur().Kind == lexer.TokIdent &&
		p.pos+2 < len(p.toks) &&
		p.toks[p.pos+1].Kind == lexer.TokDot &&
		p.toks[p.pos+2].Kind == lexer.TokStar {
		item.Star = true
		item.StarTable = p.cur().Text
		p.pos += 3
		return item, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return item, err
	}
	item.Expr = e
	if p.acceptKw("AS") {
		a, err := p.ident()
		if err != nil {
			return item, err
		}
		item.Alias = a
	} else if p.cur().Kind == lexer.TokIdent {
		item.Alias = p.cur().Text
		p.pos++
	}
	return item, nil
}

func (p *Parser) parseFromItem() (ast.FromItem, error) {
	var fi ast.FromItem
	tr, err := p.parseTableRef()
	if err != nil {
		return fi, err
	}
	fi.Table = tr
	for {
		jt, ok := p.acceptJoinKeyword()
		if !ok {
			return fi, nil
		}
		right, err := p.parseTableRef()
		if err != nil {
			return fi, err
		}
		j := ast.Join{Type: jt, Right: right}
		if jt != ast.JoinCross {
			if err := p.expectKw("ON"); err != nil {
				return fi, err
			}
			on, err := p.parseExpr()
			if err != nil {
				return fi, err
			}
			j.On = on
		}
		fi.Joins = append(fi.Joins, j)
	}
}

func (p *Parser) acceptJoinKeyword() (ast.JoinType, bool) {
	switch {
	case p.acceptKw("JOIN"):
		return ast.JoinInner, true
	case p.atKw("INNER"):
		p.pos++
		if !p.acceptKw("JOIN") {
			p.pos--
			return 0, false
		}
		return ast.JoinInner, true
	case p.atKw("LEFT"), p.atKw("RIGHT"), p.atKw("FULL"):
		kw := p.cur().Text
		p.pos++
		p.acceptKw("OUTER")
		if !p.acceptKw("JOIN") {
			// Not a join clause after all (shouldn't happen in valid SQL).
			p.pos--
			return 0, false
		}
		switch kw {
		case "LEFT":
			return ast.JoinLeft, true
		case "RIGHT":
			return ast.JoinRight, true
		default:
			return ast.JoinFull, true
		}
	case p.atKw("CROSS"):
		p.pos++
		if !p.acceptKw("JOIN") {
			p.pos--
			return 0, false
		}
		return ast.JoinCross, true
	default:
		return 0, false
	}
}

func (p *Parser) parseTableRef() (ast.TableRef, error) {
	var tr ast.TableRef
	if p.accept(lexer.TokLParen, "") {
		sel, err := p.parseSelect()
		if err != nil {
			return tr, err
		}
		if _, err := p.expect(lexer.TokRParen, ""); err != nil {
			return tr, err
		}
		tr.Subquery = sel
	} else {
		n, err := p.ident()
		if err != nil {
			return tr, err
		}
		tr.Name = n
	}
	if p.acceptKw("AS") {
		a, err := p.ident()
		if err != nil {
			return tr, err
		}
		tr.Alias = a
	} else if p.cur().Kind == lexer.TokIdent {
		tr.Alias = p.cur().Text
		p.pos++
	}
	return tr, nil
}

// ---------------------------------------------------------------------------
// Expressions (precedence climbing)

func (p *Parser) parseExpr() (ast.Expr, error) { return p.parseOr() }

func (p *Parser) parseOr() (ast.Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &ast.Binary{Op: ast.OpOr, L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseAnd() (ast.Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.atKw("AND") {
		p.pos++
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &ast.Binary{Op: ast.OpAnd, L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseNot() (ast.Expr, error) {
	if p.atKw("NOT") && !p.nextIsKw("EXISTS") {
		p.pos++
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &ast.Unary{Op: "NOT", X: x}, nil
	}
	return p.parseComparison()
}

func (p *Parser) nextIsKw(kw string) bool {
	return p.pos+1 < len(p.toks) &&
		p.toks[p.pos+1].Kind == lexer.TokKeyword &&
		p.toks[p.pos+1].Text == kw
}

func (p *Parser) parseComparison() (ast.Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.at(lexer.TokOp, "="):
			p.pos++
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			l = &ast.Binary{Op: ast.OpEq, L: l, R: r}
		case p.at(lexer.TokOp, "<>"):
			p.pos++
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			l = &ast.Binary{Op: ast.OpNe, L: l, R: r}
		case p.at(lexer.TokOp, "<"):
			p.pos++
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			l = &ast.Binary{Op: ast.OpLt, L: l, R: r}
		case p.at(lexer.TokOp, "<="):
			p.pos++
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			l = &ast.Binary{Op: ast.OpLe, L: l, R: r}
		case p.at(lexer.TokOp, ">"):
			p.pos++
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			l = &ast.Binary{Op: ast.OpGt, L: l, R: r}
		case p.at(lexer.TokOp, ">="):
			p.pos++
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			l = &ast.Binary{Op: ast.OpGe, L: l, R: r}
		case p.atKw("IS"):
			p.pos++
			not := p.acceptKw("NOT")
			if err := p.expectKw("NULL"); err != nil {
				return nil, err
			}
			l = &ast.IsNull{X: l, Not: not}
		case p.atKw("BETWEEN"):
			p.pos++
			lo, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			if err := p.expectKw("AND"); err != nil {
				return nil, err
			}
			hi, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			l = &ast.Between{X: l, Lo: lo, Hi: hi}
		case p.atKw("LIKE"):
			p.pos++
			pat, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			l = &ast.Like{X: l, Pattern: pat}
		case p.atKw("IN"):
			p.pos++
			in, err := p.parseInTail(l, false)
			if err != nil {
				return nil, err
			}
			l = in
		case p.atKw("NOT"):
			// NOT IN / NOT BETWEEN / NOT LIKE
			save := p.pos
			p.pos++
			switch {
			case p.acceptKw("IN"):
				in, err := p.parseInTail(l, true)
				if err != nil {
					return nil, err
				}
				l = in
			case p.acceptKw("BETWEEN"):
				lo, err := p.parseAdditive()
				if err != nil {
					return nil, err
				}
				if err := p.expectKw("AND"); err != nil {
					return nil, err
				}
				hi, err := p.parseAdditive()
				if err != nil {
					return nil, err
				}
				l = &ast.Between{X: l, Not: true, Lo: lo, Hi: hi}
			case p.acceptKw("LIKE"):
				pat, err := p.parseAdditive()
				if err != nil {
					return nil, err
				}
				l = &ast.Like{X: l, Not: true, Pattern: pat}
			default:
				p.pos = save
				return l, nil
			}
		default:
			return l, nil
		}
	}
}

func (p *Parser) parseInTail(l ast.Expr, not bool) (ast.Expr, error) {
	if _, err := p.expect(lexer.TokLParen, ""); err != nil {
		return nil, err
	}
	in := &ast.In{X: l, Not: not}
	if p.atKw("SELECT") || p.at(lexer.TokLParen, "") {
		// Subquery, possibly parenthesized and possibly a UNION of
		// parenthesized selects: ((SELECT ...) UNION (SELECT ...)).
		sel, err := p.parseParenableSelect()
		if err != nil {
			return nil, err
		}
		in.Select = sel
	} else {
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			in.List = append(in.List, e)
			if p.accept(lexer.TokComma, "") {
				continue
			}
			break
		}
	}
	if _, err := p.expect(lexer.TokRParen, ""); err != nil {
		return nil, err
	}
	return in, nil
}

// parseParenableSelect parses SELECT ... or (SELECT ...) [UNION (SELECT ...)]...
// This supports the parenthesized-UNION style that appears in the paper's
// bug scripts.
func (p *Parser) parseParenableSelect() (*ast.Select, error) {
	if p.atKw("SELECT") {
		return p.parseSelect()
	}
	if _, err := p.expect(lexer.TokLParen, ""); err != nil {
		return nil, err
	}
	first, err := p.parseParenableSelect()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(lexer.TokRParen, ""); err != nil {
		return nil, err
	}
	cur := first
	for cur.Union != nil {
		cur = cur.Union
	}
	for p.acceptKw("UNION") {
		all := p.acceptKw("ALL")
		next, err := p.parseParenableSelect()
		if err != nil {
			return nil, err
		}
		cur.Union = next
		cur.UnionAll = all
		for cur.Union != nil {
			cur = cur.Union
		}
	}
	return first, nil
}

func (p *Parser) parseAdditive() (ast.Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.at(lexer.TokOp, "+"):
			p.pos++
			r, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			l = &ast.Binary{Op: ast.OpAdd, L: l, R: r}
		case p.at(lexer.TokOp, "-"):
			p.pos++
			r, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			l = &ast.Binary{Op: ast.OpSub, L: l, R: r}
		case p.at(lexer.TokOp, "||"):
			p.pos++
			r, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			l = &ast.Binary{Op: ast.OpConcat, L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *Parser) parseMultiplicative() (ast.Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.at(lexer.TokStar, ""):
			p.pos++
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = &ast.Binary{Op: ast.OpMul, L: l, R: r}
		case p.at(lexer.TokOp, "/"):
			p.pos++
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = &ast.Binary{Op: ast.OpDiv, L: l, R: r}
		case p.at(lexer.TokOp, "%"):
			p.pos++
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = &ast.Binary{Op: ast.OpMod, L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *Parser) parseUnary() (ast.Expr, error) {
	switch {
	case p.at(lexer.TokOp, "-"):
		p.pos++
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &ast.Unary{Op: "-", X: x}, nil
	case p.at(lexer.TokOp, "+"):
		p.pos++
		return p.parseUnary()
	default:
		return p.parsePrimary()
	}
}

func (p *Parser) parsePrimary() (ast.Expr, error) {
	t := p.cur()
	switch {
	case t.Kind == lexer.TokNumber:
		p.pos++
		if strings.ContainsAny(t.Text, ".eE") {
			f, err := strconv.ParseFloat(t.Text, 64)
			if err != nil {
				return nil, p.errf("invalid number %q", t.Text)
			}
			return &ast.Literal{Val: types.NewFloat(f)}, nil
		}
		i, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			f, ferr := strconv.ParseFloat(t.Text, 64)
			if ferr != nil {
				return nil, p.errf("invalid number %q", t.Text)
			}
			return &ast.Literal{Val: types.NewFloat(f)}, nil
		}
		return &ast.Literal{Val: types.NewInt(i)}, nil
	case t.Kind == lexer.TokString:
		p.pos++
		return &ast.Literal{Val: types.NewString(t.Text)}, nil
	case t.Kind == lexer.TokParam:
		p.pos++
		if t.Text == "?" {
			p.qmarks++
			return &ast.Param{N: p.qmarks}, nil
		}
		n, err := strconv.Atoi(t.Text)
		if err != nil || n < 1 {
			return nil, p.errf("invalid parameter ordinal $%s", t.Text)
		}
		return &ast.Param{N: n}, nil
	case t.Kind == lexer.TokKeyword && t.Text == "NULL":
		p.pos++
		return &ast.Literal{Val: types.Null()}, nil
	case t.Kind == lexer.TokKeyword && t.Text == "TRUE":
		p.pos++
		return &ast.Literal{Val: types.NewBool(true)}, nil
	case t.Kind == lexer.TokKeyword && t.Text == "FALSE":
		p.pos++
		return &ast.Literal{Val: types.NewBool(false)}, nil
	case t.Kind == lexer.TokKeyword && t.Text == "CASE":
		return p.parseCase()
	case t.Kind == lexer.TokKeyword && t.Text == "CAST":
		return p.parseCast()
	case t.Kind == lexer.TokKeyword && t.Text == "EXISTS":
		p.pos++
		if _, err := p.expect(lexer.TokLParen, ""); err != nil {
			return nil, err
		}
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(lexer.TokRParen, ""); err != nil {
			return nil, err
		}
		return &ast.Exists{Select: sel}, nil
	case t.Kind == lexer.TokKeyword && t.Text == "NOT":
		// NOT EXISTS at primary level.
		if p.nextIsKw("EXISTS") {
			p.pos += 2
			if _, err := p.expect(lexer.TokLParen, ""); err != nil {
				return nil, err
			}
			sel, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(lexer.TokRParen, ""); err != nil {
				return nil, err
			}
			return &ast.Exists{Not: true, Select: sel}, nil
		}
		return nil, p.errf("unexpected NOT")
	case t.Kind == lexer.TokLParen:
		p.pos++
		if p.atKw("SELECT") {
			sel, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(lexer.TokRParen, ""); err != nil {
				return nil, err
			}
			return &ast.Subquery{Select: sel}, nil
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(lexer.TokRParen, ""); err != nil {
			return nil, err
		}
		return e, nil
	case t.Kind == lexer.TokIdent:
		name := t.Text
		p.pos++
		if p.at(lexer.TokLParen, "") {
			return p.parseFuncCall(name)
		}
		if p.accept(lexer.TokDot, "") {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			return &ast.ColumnRef{Table: name, Column: col}, nil
		}
		return &ast.ColumnRef{Column: name}, nil
	default:
		return nil, p.errf("unexpected token %q in expression", t.Text)
	}
}

func (p *Parser) parseFuncCall(name string) (ast.Expr, error) {
	if _, err := p.expect(lexer.TokLParen, ""); err != nil {
		return nil, err
	}
	fc := &ast.FuncCall{Name: strings.ToUpper(name)}
	if p.accept(lexer.TokStar, "") {
		fc.Star = true
		if _, err := p.expect(lexer.TokRParen, ""); err != nil {
			return nil, err
		}
		return fc, nil
	}
	if p.accept(lexer.TokRParen, "") {
		return fc, nil
	}
	if p.acceptKw("DISTINCT") {
		fc.Distinct = true
	}
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		fc.Args = append(fc.Args, e)
		if p.accept(lexer.TokComma, "") {
			continue
		}
		break
	}
	if _, err := p.expect(lexer.TokRParen, ""); err != nil {
		return nil, err
	}
	return fc, nil
}

func (p *Parser) parseCase() (ast.Expr, error) {
	if err := p.expectKw("CASE"); err != nil {
		return nil, err
	}
	c := &ast.Case{}
	if !p.atKw("WHEN") {
		op, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Operand = op
	}
	for p.acceptKw("WHEN") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("THEN"); err != nil {
			return nil, err
		}
		then, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Whens = append(c.Whens, ast.WhenClause{Cond: cond, Then: then})
	}
	if len(c.Whens) == 0 {
		return nil, p.errf("CASE requires at least one WHEN")
	}
	if p.acceptKw("ELSE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Else = e
	}
	if err := p.expectKw("END"); err != nil {
		return nil, err
	}
	return c, nil
}

func (p *Parser) parseCast() (ast.Expr, error) {
	if err := p.expectKw("CAST"); err != nil {
		return nil, err
	}
	if _, err := p.expect(lexer.TokLParen, ""); err != nil {
		return nil, err
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("AS"); err != nil {
		return nil, err
	}
	tn, err := p.parseTypeName()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(lexer.TokRParen, ""); err != nil {
		return nil, err
	}
	return &ast.Cast{X: e, To: tn}, nil
}
