package parser

import (
	"testing"
	"testing/quick"

	"divsql/internal/sql/ast"
)

func parseOne(t *testing.T, src string) ast.Statement {
	t.Helper()
	st, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return st
}

func TestParseCreateTable(t *testing.T) {
	st := parseOne(t, `CREATE TABLE T (
		A INT PRIMARY KEY,
		B VARCHAR(30) NOT NULL,
		C FLOAT DEFAULT 1.5,
		D DATE,
		CHECK (A > 0),
		UNIQUE (B, D)
	)`)
	ct, ok := st.(*ast.CreateTable)
	if !ok {
		t.Fatalf("got %T", st)
	}
	if ct.Name != "T" || len(ct.Columns) != 4 || len(ct.Constraints) != 2 {
		t.Errorf("parsed: %+v", ct)
	}
	if !ct.Columns[0].PrimaryKey || !ct.Columns[1].NotNull || ct.Columns[2].Default == nil {
		t.Errorf("column attributes wrong: %+v", ct.Columns)
	}
	if ct.Columns[1].Type.Name != "VARCHAR" || ct.Columns[1].Type.Args[0] != 30 {
		t.Errorf("type: %+v", ct.Columns[1].Type)
	}
}

func TestParseSelectShape(t *testing.T) {
	st := parseOne(t, `SELECT DISTINCT A.X AS C1, COUNT(*) AS N
		FROM T1 A LEFT OUTER JOIN T2 B ON A.ID = B.ID, T3
		WHERE A.X > 3 AND B.Y IN (SELECT Y FROM T4)
		GROUP BY A.X HAVING COUNT(*) > 1
		ORDER BY C1 DESC LIMIT 10`)
	sel, ok := st.(*ast.Select)
	if !ok {
		t.Fatalf("got %T", st)
	}
	if !sel.Distinct || len(sel.Items) != 2 || len(sel.From) != 2 {
		t.Errorf("select shape: %+v", sel)
	}
	if len(sel.From[0].Joins) != 1 || sel.From[0].Joins[0].Type != ast.JoinLeft {
		t.Errorf("join: %+v", sel.From[0].Joins)
	}
	if len(sel.GroupBy) != 1 || sel.Having == nil || len(sel.OrderBy) != 1 || !sel.OrderBy[0].Desc {
		t.Errorf("clauses: %+v", sel)
	}
	if sel.Limit != 10 || sel.LimitSyn != ast.LimitLimit {
		t.Errorf("limit: %d %v", sel.Limit, sel.LimitSyn)
	}
}

func TestParseTop(t *testing.T) {
	st := parseOne(t, "SELECT TOP 3 A FROM T")
	sel := st.(*ast.Select)
	if sel.Limit != 3 || sel.LimitSyn != ast.LimitTop {
		t.Errorf("top: %+v", sel)
	}
}

func TestParseUnionChain(t *testing.T) {
	st := parseOne(t, "SELECT A FROM T UNION ALL SELECT B FROM U UNION SELECT C FROM V ORDER BY 1")
	sel := st.(*ast.Select)
	if sel.Union == nil || !sel.UnionAll {
		t.Fatalf("first union: %+v", sel)
	}
	if sel.Union.Union == nil || sel.Union.UnionAll {
		t.Fatalf("second union: %+v", sel.Union)
	}
	if len(sel.OrderBy) != 1 {
		t.Errorf("order by must attach to the head select")
	}
}

func TestParseParenthesizedUnionInSubquery(t *testing.T) {
	// The shape of the paper's bug-43 script.
	st := parseOne(t, `SELECT ID FROM P WHERE ID NOT IN
		((SELECT A FROM X) UNION (SELECT B FROM Y))`)
	sel := st.(*ast.Select)
	in, ok := sel.Where.(*ast.In)
	if !ok || !in.Not || in.Select == nil {
		t.Fatalf("where: %+v", sel.Where)
	}
	if in.Select.Union == nil {
		t.Error("paren union lost")
	}
}

func TestParseExpressionPrecedence(t *testing.T) {
	st := parseOne(t, "SELECT 1 + 2 * 3 AS X")
	sel := st.(*ast.Select)
	bin, ok := sel.Items[0].Expr.(*ast.Binary)
	if !ok || bin.Op != ast.OpAdd {
		t.Fatalf("top op: %+v", sel.Items[0].Expr)
	}
	r, ok := bin.R.(*ast.Binary)
	if !ok || r.Op != ast.OpMul {
		t.Errorf("* must bind tighter than +: %+v", bin.R)
	}
}

func TestParseNotVariants(t *testing.T) {
	for _, src := range []string{
		"SELECT A FROM T WHERE A NOT IN (1, 2)",
		"SELECT A FROM T WHERE A NOT BETWEEN 1 AND 2",
		"SELECT A FROM T WHERE A NOT LIKE 'x%'",
		"SELECT A FROM T WHERE A IS NOT NULL",
		"SELECT A FROM T WHERE NOT EXISTS (SELECT 1 FROM U)",
		"SELECT A FROM T WHERE NOT (A = 1)",
	} {
		parseOne(t, src)
	}
}

func TestParseCaseCastFunctions(t *testing.T) {
	parseOne(t, `SELECT CASE WHEN A > 0 THEN 'pos' ELSE 'neg' END AS S,
		CASE A WHEN 1 THEN 'one' END AS O,
		CAST(A AS VARCHAR(10)) AS C,
		COUNT(DISTINCT B) AS D
		FROM T`)
}

func TestParseDMLAndDDL(t *testing.T) {
	for _, src := range []string{
		"INSERT INTO T VALUES (1, 'a'), (2, 'b')",
		"INSERT INTO T (A, B) SELECT X, Y FROM U",
		"UPDATE T SET A = A + 1, B = 'x' WHERE A < 10",
		"DELETE FROM T WHERE A IS NULL",
		"CREATE VIEW V (C1, C2) AS SELECT A, B FROM T",
		"CREATE UNIQUE CLUSTERED INDEX IX ON T (A, B)",
		"CREATE SEQUENCE SQ START WITH 100",
		"CREATE GENERATOR G1",
		"DROP TABLE T", "DROP VIEW V", "DROP INDEX IX", "DROP SEQUENCE SQ",
		"BEGIN TRANSACTION", "BEGIN WORK", "COMMIT", "ROLLBACK WORK",
	} {
		parseOne(t, src)
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"",
		"SELECT",
		"SELECT FROM T",
		"CREATE TABLE T ()",
		"INSERT INTO T",
		"UPDATE T WHERE A = 1",
		"SELECT A FROM T WHERE",
		"SELECT A FROM T GROUP",
		"FOO BAR",
		"SELECT A FROM T; extra garbage",
		"CASE WHEN",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

func TestParseScriptSplitsStatements(t *testing.T) {
	stmts, err := ParseScript("CREATE TABLE T (A INT); INSERT INTO T VALUES (1);; SELECT A FROM T;")
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 3 {
		t.Fatalf("got %d statements", len(stmts))
	}
}

func TestSplitScriptRespectsStrings(t *testing.T) {
	parts, err := SplitScript("INSERT INTO T VALUES ('a;b'); SELECT A FROM T")
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 2 {
		t.Fatalf("split: %q", parts)
	}
	if parts[0] != "INSERT INTO T VALUES ('a;b')" {
		t.Errorf("first part: %q", parts[0])
	}
}

// Round trip: parse -> render -> parse -> render must be a fixed point.
func TestRenderRoundTrip(t *testing.T) {
	sources := []string{
		"SELECT DISTINCT A, B AS X FROM T WHERE A > 1 ORDER BY A DESC LIMIT 5",
		"SELECT TOP 2 A FROM T",
		"SELECT A FROM T UNION ALL SELECT B FROM U",
		"SELECT COUNT(*) AS N, SUM(X) AS S FROM T GROUP BY Y HAVING COUNT(*) > 2",
		"SELECT A.X FROM T1 A LEFT OUTER JOIN T2 B ON A.ID = B.ID",
		"SELECT A FROM T WHERE A IN (SELECT B FROM U WHERE C = 'x')",
		"SELECT A FROM T WHERE A BETWEEN 1 AND 10 AND B LIKE 'x%' OR C IS NOT NULL",
		"SELECT CASE WHEN A = 1 THEN 'one' ELSE 'other' END AS W FROM T",
		"SELECT CAST(A AS INT) AS C, MOD(A, 3) AS M FROM T",
		"INSERT INTO T (A, B) VALUES (1, 'x'), (2, NULL)",
		"INSERT INTO T SELECT A, B FROM U",
		"UPDATE T SET A = (A + 1) WHERE B IN (1, 2, 3)",
		"DELETE FROM T WHERE NOT (A = 2)",
		"CREATE TABLE T (A INT PRIMARY KEY, B VARCHAR(10) DEFAULT 'x' NOT NULL, CHECK ((A > 0)))",
		"CREATE VIEW V AS SELECT DISTINCT A FROM T",
		"CREATE UNIQUE INDEX IX ON T (A)",
		"SELECT ID FROM P WHERE ID NOT IN ((SELECT A FROM X) UNION (SELECT B FROM Y))",
	}
	for _, src := range sources {
		st1, err := Parse(src)
		if err != nil {
			t.Errorf("parse %q: %v", src, err)
			continue
		}
		r1 := ast.Render(st1)
		st2, err := Parse(r1)
		if err != nil {
			t.Errorf("re-parse of render %q -> %q: %v", src, r1, err)
			continue
		}
		r2 := ast.Render(st2)
		if r1 != r2 {
			t.Errorf("render not a fixed point:\n  src: %s\n  r1:  %s\n  r2:  %s", src, r1, r2)
		}
	}
}

// Property: the parser never panics on arbitrary input.
func TestParserNeverPanics(t *testing.T) {
	f := func(s string) bool {
		_, _ = Parse(s)
		_, _ = ParseScript(s)
		return true
	}
	cfg := &quick.Config{MaxCount: 500}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: any statement that parses renders to something that parses
// again (restricted to fuzzing around SQL-ish tokens to hit the parser's
// success paths more often).
func TestParseRenderReparse(t *testing.T) {
	pieces := []string{
		"SELECT", "FROM", "WHERE", "A", "B", "T", "1", "'x'", "=", ",",
		"(", ")", "*", "AND", "OR", "IN", "NOT", "GROUP", "BY", "ORDER",
	}
	f := func(idx []uint8) bool {
		src := ""
		for _, i := range idx {
			src += pieces[int(i)%len(pieces)] + " "
		}
		st, err := Parse(src)
		if err != nil {
			return true // invalid input: fine
		}
		_, err = Parse(ast.Render(st))
		return err == nil
	}
	cfg := &quick.Config{MaxCount: 2000}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
