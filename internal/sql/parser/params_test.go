package parser

import (
	"testing"

	"divsql/internal/sql/ast"
)

func TestParamParsing(t *testing.T) {
	st, err := Parse("SELECT A FROM T WHERE A = ? AND B = ?")
	if err != nil {
		t.Fatal(err)
	}
	if np := ast.NumParams(st); np != 2 {
		t.Errorf("?-style NumParams = %d", np)
	}
	st, err = Parse("SELECT A FROM T WHERE A = $2 AND B = $1")
	if err != nil {
		t.Fatal(err)
	}
	if np := ast.NumParams(st); np != 2 {
		t.Errorf("$n-style NumParams = %d", np)
	}
	// ? ordinals count left to right, across clauses.
	st, err = Parse("INSERT INTO T (A, B, C) VALUES (?, ?, ?)")
	if err != nil {
		t.Fatal(err)
	}
	ins := st.(*ast.Insert)
	for i, e := range ins.Rows[0] {
		p, ok := e.(*ast.Param)
		if !ok || p.N != i+1 {
			t.Errorf("row[%d] = %#v, want Param %d", i, e, i+1)
		}
	}
}

func TestParamRenderRoundTrip(t *testing.T) {
	for _, sql := range []string{
		"SELECT A FROM T WHERE A = ?",
		"UPDATE T SET A = $1 WHERE B BETWEEN $2 AND $3",
		"DELETE FROM T WHERE S LIKE $1",
		"INSERT INTO T VALUES ($1, ($2 + 1))",
	} {
		st, err := Parse(sql)
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		rendered := ast.Render(st)
		st2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("re-parse %q: %v", rendered, err)
		}
		if ast.FingerprintOf(st).String() != ast.FingerprintOf(st2).String() {
			t.Errorf("fingerprint drift through render: %q -> %q", sql, rendered)
		}
		if ast.NumParams(st) != ast.NumParams(st2) {
			t.Errorf("param count drift: %q -> %q", sql, rendered)
		}
	}
}

func TestParamFingerprintFlag(t *testing.T) {
	st, _ := Parse("SELECT A FROM T WHERE A = ?")
	if !ast.FingerprintOf(st).Has(ast.FlagParam) {
		t.Error("parameterized statement must carry FlagParam")
	}
	st, _ = Parse("SELECT A FROM T WHERE A = 1")
	if ast.FingerprintOf(st).Has(ast.FlagParam) {
		t.Error("inline statement must not carry FlagParam")
	}
}

func TestBadParamOrdinal(t *testing.T) {
	if _, err := Parse("SELECT $0"); err == nil {
		t.Error("$0 must be rejected")
	}
}
