// Package core implements the paper's failure model — the primary
// conceptual contribution of the study: the classification of server
// failures by type and detectability, the representation-tolerant result
// comparator, and the N-version adjudicator. Both the fault-diversity
// study harness (internal/study) and the diverse replication middleware
// (internal/middleware) are built on this package.
package core

import (
	"time"

	"divsql/internal/engine"
)

// FailureType classifies a failure by its effect, following Section 4.1
// of the paper.
type FailureType int

// Failure types.
const (
	// FailureNone means no failure was observed.
	FailureNone FailureType = iota
	// EngineCrash is a crash or halt of the core server engine.
	EngineCrash
	// IncorrectResult is an incorrect output without an engine crash —
	// either a silently wrong result set or a spurious error message.
	IncorrectResult
	// Performance is a correct output with an unacceptable time penalty.
	Performance
	// OtherFailure covers the remaining failures (aborted connections,
	// silent acceptance of invalid statements, state corruption).
	OtherFailure
)

// String returns the paper's name for the failure type.
func (f FailureType) String() string {
	switch f {
	case FailureNone:
		return "none"
	case EngineCrash:
		return "engine crash"
	case IncorrectResult:
		return "incorrect result"
	case Performance:
		return "performance"
	case OtherFailure:
		return "other"
	default:
		return "unknown"
	}
}

// RunStatus is the outcome of attempting to run a bug script on one
// server — the row structure of the paper's Table 1.
type RunStatus int

// Run statuses.
const (
	// StatusCannotRun means the script uses functionality the server
	// lacks (dialect-specific bug).
	StatusCannotRun RunStatus = iota + 1
	// StatusFurtherWork means the script could not be translated
	// automatically into the server's dialect.
	StatusFurtherWork
	// StatusNoFailure means the script ran and no failure was observed
	// (a Heisenbug, or the fault does not exist on this server).
	StatusNoFailure
	// StatusFailure means the script ran and a failure was observed.
	StatusFailure
)

// String names the status.
func (s RunStatus) String() string {
	switch s {
	case StatusCannotRun:
		return "cannot run (functionality missing)"
	case StatusFurtherWork:
		return "further work"
	case StatusNoFailure:
		return "no failure"
	case StatusFailure:
		return "failure"
	default:
		return "unknown"
	}
}

// Classification is the full classification of one (bug, server) run.
type Classification struct {
	Status RunStatus
	// Type and SelfEvident are meaningful only when Status is
	// StatusFailure.
	Type FailureType
	// SelfEvident reports whether the failure announces itself (crash,
	// error message, timeout) per Section 4.1.
	SelfEvident bool
	// Detail is a human-readable account of the deviation.
	Detail string
}

// IsFailure reports whether the run failed.
func (c Classification) IsFailure() bool { return c.Status == StatusFailure }

// ExecOutcome is the observable outcome of executing one statement.
type ExecOutcome struct {
	Result  *engine.Result
	Err     error
	Crashed bool
	Latency time.Duration
}

// Executor runs SQL and reports results with simulated latency. It is
// implemented by single simulated servers, by the diverse middleware and
// by the non-diverse replication baseline, so workloads (e.g. the TPC-C
// harness) can drive any configuration. Exec is the one-shot verb of
// the execution contract; the planned, typed-argument verb is
// PreparedExecutor/Statement (prepared.go), which every endpoint and
// session in this module also implements.
type Executor interface {
	// Exec executes one SQL statement.
	Exec(sql string) (*engine.Result, time.Duration, error)
}

// Session is a session-scoped executor: one client's transaction scope on
// an endpoint. Sessions of one endpoint execute concurrently (read-only
// statements in parallel, writes serialized below); a session itself is
// used by one client at a time, like a database connection.
type Session interface {
	Executor
	// Close rolls back any open transaction and releases the session.
	Close() error
}

// SessionExecutor is an Executor that can open per-client sessions. The
// plain Exec remains as a default-session convenience: every endpoint in
// this module implements both.
type SessionExecutor interface {
	Executor
	// OpenSession opens a new session on the endpoint.
	OpenSession() Session
}

// Snapshotter is an endpoint that can serve and install consistent
// images of its committed state. Snapshot must not wait for transaction
// boundaries: it returns the committed state at the instant of the call
// (uncommitted transactions excluded) while the endpoint keeps
// executing. This is the state-transfer primitive behind replica resync
// under load and the differential harness's oracle realignment.
type Snapshotter interface {
	// Snapshot returns an immutable committed-state image.
	Snapshot() *engine.State
	// Restore replaces the endpoint's state with a snapshot, discarding
	// open transactions (their undo refers to the replaced state).
	Restore(*engine.State)
}
