package core

import (
	"time"

	"divsql/internal/engine"
)

// ReplicaResult is one replica's response to a broadcast statement.
type ReplicaResult struct {
	Name    string
	Res     *engine.Result
	Err     error
	Crashed bool
	Latency time.Duration
}

// Verdict is the adjudicator's decision over a set of replica responses.
type Verdict struct {
	// Agreed is the result backed by the largest agreeing group of
	// non-erroring replicas (nil when no replica succeeded).
	Agreed *engine.Result
	// AgreeIdx are the indexes of the replicas in the winning group.
	AgreeIdx []int
	// Outliers are replicas that returned a different result than the
	// winning group (detected value failures).
	Outliers []int
	// Errored are replicas that returned an error.
	Errored []int
	// CrashedIdx are replicas whose engine crashed.
	CrashedIdx []int
	// Unanimous is true when every replica returned the agreed result.
	Unanimous bool
	// Majority is true when the winning group is a strict majority of
	// all replicas.
	Majority bool
	// Split is true when at least two non-erroring replicas disagree and
	// no group reaches a strict majority (e.g. a 1-1 split in a pair):
	// the failure is detected but cannot be masked by voting.
	Split bool
}

// Adjudicate groups replica responses by normalized result digest and
// elects the largest group. Ties are broken toward the group containing
// the lowest replica index, which makes the adjudication deterministic;
// with two replicas a tie is reported as Split (detection without
// masking), the configuration the paper's Section 4.3 analyses.
func Adjudicate(results []ReplicaResult, opts CompareOptions) Verdict {
	var v Verdict
	groups := make(map[string][]int)
	order := make([]string, 0, len(results))
	ok := 0
	for i, r := range results {
		if r.Crashed {
			v.CrashedIdx = append(v.CrashedIdx, i)
			continue
		}
		if r.Err != nil {
			v.Errored = append(v.Errored, i)
			continue
		}
		ok++
		d := Digest(r.Res, opts)
		if _, seen := groups[d]; !seen {
			order = append(order, d)
		}
		groups[d] = append(groups[d], i)
	}
	if ok == 0 {
		return v
	}
	best := ""
	for _, d := range order {
		if best == "" || len(groups[d]) > len(groups[best]) {
			best = d
		}
	}
	v.AgreeIdx = groups[best]
	v.Agreed = results[v.AgreeIdx[0]].Res
	for _, d := range order {
		if d == best {
			continue
		}
		v.Outliers = append(v.Outliers, groups[d]...)
	}
	v.Unanimous = len(v.AgreeIdx) == len(results)
	v.Majority = 2*len(v.AgreeIdx) > len(results)
	v.Split = len(v.Outliers) > 0 && !v.Majority
	return v
}
