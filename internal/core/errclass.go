package core

import (
	"errors"
	"strings"

	"divsql/internal/engine"
)

// ErrClass is a normalized error category. The paper's comparison
// tolerates representational differences in correct results; the same
// tolerance applies to errors: two servers rejecting a statement with
// differently-worded messages of the same category agree, while a fault
// that swaps one category for another (a spurious "deadlock" where a
// constraint violation belongs) is a detectable incorrect result even
// though both servers "errored".
type ErrClass string

// Error classes, from most to least specific.
const (
	ClassNone          ErrClass = "none"
	ClassCrash         ErrClass = "crash"
	ClassConnAborted   ErrClass = "conn-aborted"
	ClassSyntax        ErrClass = "syntax"
	ClassAbsentObject  ErrClass = "absent-object"
	ClassDuplicate     ErrClass = "duplicate-object"
	ClassConstraint    ErrClass = "constraint"
	ClassType          ErrClass = "type"
	ClassBind          ErrClass = "bind"
	ClassNoTransaction ErrClass = "no-transaction"
	ClassUnknownName   ErrClass = "unknown-name"
	ClassOther         ErrClass = "other"
)

// ErrorClass normalizes an error to its class. Engine sentinels are
// matched structurally; errors that cross a text-only boundary (wire
// protocol, fault-injected messages) fall back to message heuristics.
func ErrorClass(err error) ErrClass {
	switch {
	case err == nil:
		return ClassNone
	case errors.Is(err, engine.ErrTableNotFound):
		return ClassAbsentObject
	case errors.Is(err, engine.ErrDuplicateObject):
		return ClassDuplicate
	case errors.Is(err, engine.ErrConstraint):
		return ClassConstraint
	case errors.Is(err, engine.ErrType):
		return ClassType
	case errors.Is(err, engine.ErrBind):
		return ClassBind
	case errors.Is(err, engine.ErrNoTransaction):
		return ClassNoTransaction
	}
	msg := strings.ToLower(err.Error())
	switch {
	case strings.Contains(msg, "engine crash"):
		return ClassCrash
	case strings.Contains(msg, "connection aborted"):
		return ClassConnAborted
	case strings.Contains(msg, "syntax error"):
		return ClassSyntax
	case strings.Contains(msg, "not found"), strings.Contains(msg, "does not exist"):
		return ClassAbsentObject
	case strings.Contains(msg, "already exists"), strings.Contains(msg, "duplicate column"):
		return ClassDuplicate
	case strings.Contains(msg, "constraint"), strings.Contains(msg, "duplicate key"), strings.Contains(msg, "not null"):
		return ClassConstraint
	case strings.Contains(msg, "type error"), strings.Contains(msg, "cannot cast"), strings.Contains(msg, "invalid number"):
		return ClassType
	case strings.Contains(msg, "bind error"), strings.Contains(msg, "parameter"):
		return ClassBind
	case strings.Contains(msg, "no transaction"), strings.Contains(msg, "transaction already in progress"):
		return ClassNoTransaction
	case strings.Contains(msg, "unknown column"), strings.Contains(msg, "unknown function"),
		strings.Contains(msg, "unknown table"), strings.Contains(msg, "invalid use of aggregate"),
		strings.Contains(msg, "wrong number of arguments"), strings.Contains(msg, "ambiguous"):
		return ClassUnknownName
	default:
		return ClassOther
	}
}

// SameErrorClass reports whether two errors fall into the same
// normalized class (both nil counts as agreement).
func SameErrorClass(a, b error) bool {
	return ErrorClass(a) == ErrorClass(b)
}
