package core

import (
	"fmt"
	"strings"
	"time"

	"divsql/internal/engine"
	"divsql/internal/sql/types"
)

// Statement is a prepared statement: parsed, dialect-checked and planned
// once, executable any number of times with typed arguments. It is the
// second verb of the execution contract next to Exec(sql) — the paper's
// subjects all expose it, and how each binds and coerces the arguments
// is a fault surface of its own (see engine.BindRules).
//
// A Statement belongs to the session that prepared it and follows the
// session's concurrency contract: used by one client at a time.
type Statement interface {
	// SQL returns the statement text as prepared (placeholders intact).
	SQL() string
	// NumParams reports how many arguments Exec expects.
	NumParams() int
	// Exec executes the statement with the given arguments.
	Exec(args ...types.Value) (*engine.Result, time.Duration, error)
	// Close releases the statement. Closing is idempotent; the session's
	// plan cache may keep the underlying plan for later re-preparation.
	Close() error
}

// PreparedExecutor is an executor offering the prepare/bind/execute
// path. Every session (and every endpoint, through its default session)
// in this module implements it; Exec(sql) remains as a one-shot
// prepare-and-execute convenience over the same machinery.
type PreparedExecutor interface {
	Executor
	// Prepare parses and validates one statement for later execution.
	Prepare(sql string) (Statement, error)
}

// ---------------------------------------------------------------------------
// Bound-statement text encoding
//
// Journals, shrink histories and divergence reports are statement-text
// streams. A bound statement (text + typed argument vector) is encoded
// into one line whose suffix is a SQL comment, so the entry still parses
// and fingerprints as the underlying statement:
//
//	INSERT INTO T (A, B) VALUES ($1, $2) --BIND I:1,S:x
//
// Arguments use the types.Value kind-tagged encoding, comma-separated.

// bindMarker introduces the encoded argument vector. It starts a SQL
// line comment, so parsers see only the statement.
const bindMarker = " --BIND "

// EncodeBound renders a bound statement into its one-line replayable
// form. With no arguments the SQL is returned verbatim.
func EncodeBound(sql string, args []types.Value) string {
	if len(args) == 0 {
		return sql
	}
	enc := make([]string, len(args))
	for i, v := range args {
		enc[i] = v.Encode()
	}
	return sql + bindMarker + strings.Join(enc, ",")
}

// DecodeBound splits a possibly-bound entry back into SQL and arguments.
// bound reports whether the entry carried an argument vector. An entry
// whose marker suffix does not decode as an argument vector is treated
// as plain SQL (the suffix is a SQL comment either way), so statement
// text that merely contains the marker can never be misinterpreted:
// encoded argument tokens contain no spaces (Value.Encode escapes them),
// while free-form comment text almost certainly does.
func DecodeBound(entry string) (sql string, args []types.Value, bound bool) {
	i := strings.LastIndex(entry, bindMarker)
	if i < 0 {
		return entry, nil, false
	}
	for _, tok := range strings.Split(entry[i+len(bindMarker):], ",") {
		v, err := types.DecodeValue(strings.TrimSpace(tok))
		if err != nil {
			return entry, nil, false
		}
		args = append(args, v)
	}
	return entry[:i], args, true
}

// ExecEntry executes a possibly-bound encoded entry on an executor,
// taking the prepare/bind path when the entry carries arguments. This is
// the single replay primitive behind journal redo, shrink probes and
// report replays.
func ExecEntry(exec Executor, entry string) (*engine.Result, time.Duration, error) {
	sql, args, bound := DecodeBound(entry)
	if !bound {
		return exec.Exec(entry)
	}
	pe, ok := exec.(PreparedExecutor)
	if !ok {
		return nil, 0, fmt.Errorf("executor %T cannot replay a bound statement", exec)
	}
	st, err := pe.Prepare(sql)
	if err != nil {
		return nil, 0, err
	}
	defer st.Close()
	return st.Exec(args...)
}
