package core

import (
	"errors"
	"fmt"
	"testing"

	"divsql/internal/engine"
)

func TestErrorClassSentinels(t *testing.T) {
	cases := []struct {
		err  error
		want ErrClass
	}{
		{nil, ClassNone},
		{fmt.Errorf("%w: T", engine.ErrTableNotFound), ClassAbsentObject},
		{fmt.Errorf("%w: T", engine.ErrDuplicateObject), ClassDuplicate},
		{fmt.Errorf("%w: duplicate key in table T", engine.ErrConstraint), ClassConstraint},
		{fmt.Errorf("%w: unknown type FOO", engine.ErrType), ClassType},
		{engine.ErrNoTransaction, ClassNoTransaction},
		{errors.New("syntax error: unexpected token"), ClassSyntax},
		{errors.New("engine crash: server is down"), ClassCrash},
		{errors.New("connection aborted by server"), ClassConnAborted},
		{errors.New("unknown column NOPE"), ClassUnknownName},
		{errors.New("spurious deadlock detected"), ClassOther},
	}
	for _, c := range cases {
		if got := ErrorClass(c.err); got != c.want {
			t.Errorf("ErrorClass(%v) = %s, want %s", c.err, got, c.want)
		}
	}
}

// Differently-worded messages of the same category agree; a category
// swap does not. This is what lets the differential harness catch a
// fault that replaces one error with another — previously invisible
// because both endpoints "errored".
func TestSameErrorClass(t *testing.T) {
	legit := fmt.Errorf("%w: duplicate key in table T", engine.ErrConstraint)
	reworded := errors.New("UNIQUE constraint failed on T")
	swapped := errors.New("spurious internal failure")
	if !SameErrorClass(legit, reworded) {
		t.Error("same-category errors must agree")
	}
	if SameErrorClass(legit, swapped) {
		t.Error("category swap must be detected")
	}
	if !SameErrorClass(nil, nil) {
		t.Error("two successes agree")
	}
	if SameErrorClass(nil, legit) {
		t.Error("success vs error must disagree")
	}
}
