package core

import (
	"sort"
	"strconv"
	"strings"

	"divsql/internal/engine"
	"divsql/internal/sql/types"
)

// CompareOptions configures the result comparator. The defaults implement
// the paper's requirement (Section 4.3) that "the comparison algorithm
// must be written to allow for possible differences in the representation
// of correct results, e.g. different numbers of digits in the
// representation of floating point numbers, padding of characters in
// character strings".
type CompareOptions struct {
	// OrderSensitive compares rows in order (set when the query had an
	// ORDER BY); otherwise rows are compared as multisets.
	OrderSensitive bool
	// FloatSigDigits is the number of significant digits at which
	// floating-point cells are considered equal (0 means exact).
	FloatSigDigits int
	// TrimStrings ignores leading/trailing whitespace (CHAR padding).
	TrimStrings bool
	// CompareColumnNames also compares result column names.
	CompareColumnNames bool
}

// DefaultCompareOptions returns the tolerant defaults used by the study
// and the middleware.
func DefaultCompareOptions() CompareOptions {
	return CompareOptions{
		FloatSigDigits:     9,
		TrimStrings:        true,
		CompareColumnNames: true,
	}
}

// StrictCompareOptions disables every normalization (used by the
// comparator ablation experiment).
func StrictCompareOptions() CompareOptions {
	return CompareOptions{OrderSensitive: true, CompareColumnNames: true}
}

// NormalizeCell canonicalizes one value under the options.
func NormalizeCell(v types.Value, opts CompareOptions) string {
	switch v.K {
	case types.KindNull:
		return "\x00NULL"
	case types.KindFloat:
		if opts.FloatSigDigits > 0 {
			return "n:" + strconv.FormatFloat(v.F, 'e', opts.FloatSigDigits-1, 64)
		}
		return "n:" + strconv.FormatFloat(v.F, 'g', -1, 64)
	case types.KindInt:
		if opts.FloatSigDigits > 0 {
			// Integers and integral floats compare equal (3 vs 3.0).
			return "n:" + strconv.FormatFloat(float64(v.I), 'e', opts.FloatSigDigits-1, 64)
		}
		return "n:" + strconv.FormatInt(v.I, 10)
	case types.KindString, types.KindDate:
		s := v.S
		if opts.TrimStrings {
			s = strings.TrimRight(s, " ")
		}
		return "s:" + s
	case types.KindBool:
		if v.B {
			return "b:1"
		}
		return "b:0"
	default:
		return "?" + v.String()
	}
}

// Digest produces a canonical signature of a result set under the
// options. Two results with equal digests are considered equivalent
// representations of the same output.
func Digest(res *engine.Result, opts CompareOptions) string {
	if res == nil {
		return "<nil>"
	}
	var b strings.Builder
	if res.Kind != engine.ResultRows {
		b.WriteString("affected:")
		b.WriteString(strconv.FormatInt(res.Affected, 10))
		return b.String()
	}
	if opts.CompareColumnNames {
		for _, c := range res.Columns {
			b.WriteString(strings.ToUpper(c))
			b.WriteByte('\x1f')
		}
	} else {
		b.WriteString(strconv.Itoa(len(res.Columns)))
	}
	b.WriteByte('\n')
	rows := make([]string, len(res.Rows))
	for i, row := range res.Rows {
		var rb strings.Builder
		for _, v := range row {
			rb.WriteString(NormalizeCell(v, opts))
			rb.WriteByte('\x1f')
		}
		rows[i] = rb.String()
	}
	if !opts.OrderSensitive {
		sort.Strings(rows)
	}
	for _, r := range rows {
		b.WriteString(r)
		b.WriteByte('\n')
	}
	return b.String()
}

// Equal reports whether two results are equivalent under the options.
func Equal(a, b *engine.Result, opts CompareOptions) bool {
	return Digest(a, opts) == Digest(b, opts)
}

// Diff returns a short human-readable description of the first
// difference between two results, or "" when equal.
func Diff(a, b *engine.Result, opts CompareOptions) string {
	if Equal(a, b, opts) {
		return ""
	}
	if a == nil || b == nil {
		return "one result missing"
	}
	if a.Kind != b.Kind {
		return "result kinds differ"
	}
	if a.Kind != engine.ResultRows {
		return "affected row counts differ"
	}
	if len(a.Columns) != len(b.Columns) {
		return "column counts differ"
	}
	if opts.CompareColumnNames {
		for i := range a.Columns {
			if !strings.EqualFold(a.Columns[i], b.Columns[i]) {
				return "column names differ: " + a.Columns[i] + " vs " + b.Columns[i]
			}
		}
	}
	if len(a.Rows) != len(b.Rows) {
		return "row counts differ"
	}
	return "row contents differ"
}
