package core

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"divsql/internal/engine"
	"divsql/internal/sql/types"
)

func rows(cols []string, cells ...[]types.Value) *engine.Result {
	return &engine.Result{Kind: engine.ResultRows, Columns: cols, Rows: cells}
}

func TestCompareIgnoresRowOrderByDefault(t *testing.T) {
	a := rows([]string{"A"}, []types.Value{types.NewInt(1)}, []types.Value{types.NewInt(2)})
	b := rows([]string{"A"}, []types.Value{types.NewInt(2)}, []types.Value{types.NewInt(1)})
	opts := DefaultCompareOptions()
	if !Equal(a, b, opts) {
		t.Error("multiset comparison must ignore order")
	}
	opts.OrderSensitive = true
	if Equal(a, b, opts) {
		t.Error("order-sensitive comparison must detect order")
	}
}

func TestCompareFloatRepresentationTolerance(t *testing.T) {
	// The paper: "different numbers of digits in the representation of
	// floating point numbers" must compare equal. (x and y are runtime
	// values so the sum is computed at run time, not a folded constant.)
	x, y := 0.1, 0.2
	a := rows([]string{"X"}, []types.Value{types.NewFloat(x + y)})
	b := rows([]string{"X"}, []types.Value{types.NewFloat(0.3)})
	if !Equal(a, b, DefaultCompareOptions()) {
		t.Error("0.1+0.2 vs 0.3 must be equal under 9-significant-digit comparison")
	}
	if Equal(a, b, StrictCompareOptions()) {
		t.Error("strict comparison must distinguish them")
	}
}

func TestCompareIntFloatEquivalence(t *testing.T) {
	a := rows([]string{"X"}, []types.Value{types.NewInt(3)})
	b := rows([]string{"X"}, []types.Value{types.NewFloat(3.0)})
	if !Equal(a, b, DefaultCompareOptions()) {
		t.Error("3 vs 3.0 must be equal")
	}
}

func TestCompareCharPadding(t *testing.T) {
	// "padding of characters in character strings".
	a := rows([]string{"S"}, []types.Value{types.NewString("abc   ")})
	b := rows([]string{"S"}, []types.Value{types.NewString("abc")})
	if !Equal(a, b, DefaultCompareOptions()) {
		t.Error("trailing padding must be ignored")
	}
	if Equal(a, b, StrictCompareOptions()) {
		t.Error("strict comparison must see the padding")
	}
}

func TestCompareColumnNames(t *testing.T) {
	a := rows([]string{"AVG(A)"}, []types.Value{types.NewInt(3)})
	b := rows([]string{""}, []types.Value{types.NewInt(3)})
	if Equal(a, b, DefaultCompareOptions()) {
		t.Error("blank column names (bug 222476) must be detected")
	}
	opts := DefaultCompareOptions()
	opts.CompareColumnNames = false
	if !Equal(a, b, opts) {
		t.Error("names must be ignorable on demand")
	}
}

func TestCompareNullVsValue(t *testing.T) {
	a := rows([]string{"X"}, []types.Value{types.Null()})
	b := rows([]string{"X"}, []types.Value{types.NewInt(0)})
	if Equal(a, b, DefaultCompareOptions()) {
		t.Error("NULL vs 0 must differ")
	}
}

func TestCompareAffectedCounts(t *testing.T) {
	a := &engine.Result{Kind: engine.ResultCount, Affected: 2}
	b := &engine.Result{Kind: engine.ResultCount, Affected: 3}
	if Equal(a, b, DefaultCompareOptions()) {
		t.Error("affected counts must differ")
	}
}

func TestDiffMessages(t *testing.T) {
	opts := DefaultCompareOptions()
	a := rows([]string{"A"}, []types.Value{types.NewInt(1)})
	if d := Diff(a, a.Clone(), opts); d != "" {
		t.Errorf("diff of equal results: %q", d)
	}
	b := rows([]string{"A"})
	if d := Diff(a, b, opts); d == "" {
		t.Error("row count difference not reported")
	}
}

// Property: Digest equality is reflexive and symmetric, and normalization
// is idempotent (digest of a result equals digest of its clone).
func TestDigestProperties(t *testing.T) {
	f := func(x int64, s string, o bool) bool {
		opts := DefaultCompareOptions()
		opts.OrderSensitive = o
		r := rows([]string{"A", "B"}, []types.Value{types.NewInt(x), types.NewString(s)})
		return Equal(r, r, opts) && Equal(r, r.Clone(), opts) &&
			Equal(r.Clone(), r, opts)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAdjudicateUnanimous(t *testing.T) {
	r := rows([]string{"A"}, []types.Value{types.NewInt(1)})
	v := Adjudicate([]ReplicaResult{
		{Name: "a", Res: r},
		{Name: "b", Res: r.Clone()},
		{Name: "c", Res: r.Clone()},
	}, DefaultCompareOptions())
	if !v.Unanimous || !v.Majority || len(v.Outliers) != 0 {
		t.Errorf("verdict: %+v", v)
	}
}

func TestAdjudicateMajorityMasksOutlier(t *testing.T) {
	good := rows([]string{"A"}, []types.Value{types.NewInt(1)})
	bad := rows([]string{"A"}, []types.Value{types.NewInt(99)})
	v := Adjudicate([]ReplicaResult{
		{Name: "a", Res: good},
		{Name: "b", Res: bad},
		{Name: "c", Res: good.Clone()},
	}, DefaultCompareOptions())
	if !v.Majority || v.Unanimous {
		t.Errorf("verdict: %+v", v)
	}
	if len(v.Outliers) != 1 || v.Outliers[0] != 1 {
		t.Errorf("outliers: %v", v.Outliers)
	}
	if v.Agreed.Rows[0][0].I != 1 {
		t.Errorf("agreed on wrong value: %v", v.Agreed.Rows[0][0])
	}
}

func TestAdjudicatePairSplit(t *testing.T) {
	a := rows([]string{"A"}, []types.Value{types.NewInt(1)})
	b := rows([]string{"A"}, []types.Value{types.NewInt(2)})
	v := Adjudicate([]ReplicaResult{
		{Name: "x", Res: a},
		{Name: "y", Res: b},
	}, DefaultCompareOptions())
	if !v.Split || v.Majority {
		t.Errorf("pair split verdict: %+v", v)
	}
}

func TestAdjudicateErrorsAndCrashes(t *testing.T) {
	good := rows([]string{"A"}, []types.Value{types.NewInt(1)})
	v := Adjudicate([]ReplicaResult{
		{Name: "a", Res: good},
		{Name: "b", Err: errors.New("boom")},
		{Name: "c", Crashed: true, Err: errors.New("crash")},
	}, DefaultCompareOptions())
	if len(v.Errored) != 1 || len(v.CrashedIdx) != 1 {
		t.Errorf("verdict: %+v", v)
	}
	if v.Agreed == nil || v.Agreed.Rows[0][0].I != 1 {
		t.Error("survivor's result must be agreed")
	}
	// All failed.
	v = Adjudicate([]ReplicaResult{
		{Name: "a", Err: errors.New("x")},
		{Name: "b", Crashed: true},
	}, DefaultCompareOptions())
	if v.Agreed != nil {
		t.Error("no agreement possible")
	}
}

func TestAdjudicateDeterministicTieBreak(t *testing.T) {
	a := rows([]string{"A"}, []types.Value{types.NewInt(1)})
	b := rows([]string{"A"}, []types.Value{types.NewInt(2)})
	for i := 0; i < 10; i++ {
		v := Adjudicate([]ReplicaResult{{Name: "x", Res: a}, {Name: "y", Res: b}}, DefaultCompareOptions())
		if v.AgreeIdx[0] != 0 {
			t.Fatal("tie break must prefer the lowest replica index")
		}
	}
}

func TestClassificationStrings(t *testing.T) {
	for _, ft := range []FailureType{FailureNone, EngineCrash, IncorrectResult, Performance, OtherFailure} {
		if ft.String() == "unknown" {
			t.Errorf("missing name for %d", ft)
		}
	}
	for _, st := range []RunStatus{StatusCannotRun, StatusFurtherWork, StatusNoFailure, StatusFailure} {
		if st.String() == "unknown" {
			t.Errorf("missing name for %d", st)
		}
	}
	c := Classification{Status: StatusFailure}
	if !c.IsFailure() {
		t.Error("IsFailure")
	}
}

func TestExecOutcomeZeroValue(t *testing.T) {
	var o ExecOutcome
	if o.Err != nil || o.Crashed || o.Latency != time.Duration(0) {
		t.Error("zero outcome must be clean")
	}
}
