package core

import (
	"strings"
	"testing"

	"divsql/internal/sql/types"
)

func TestEncodeDecodeBound(t *testing.T) {
	sql := "INSERT INTO T VALUES ($1, $2, $3, $4)"
	args := []types.Value{
		types.NewInt(42),
		types.NewString("a,b\tc\nd\\e"),
		types.Null(),
		types.NewFloat(1.25),
	}
	entry := EncodeBound(sql, args)
	if !strings.HasPrefix(entry, sql+" --BIND ") {
		t.Fatalf("entry: %q", entry)
	}
	if strings.Contains(entry, "\n") || strings.Contains(entry, "\t") {
		t.Fatalf("entry must be one token-safe line: %q", entry)
	}
	gotSQL, gotArgs, bound := DecodeBound(entry)
	if !bound || gotSQL != sql {
		t.Fatalf("decode: %q %v", gotSQL, bound)
	}
	if len(gotArgs) != len(args) {
		t.Fatalf("args: %v", gotArgs)
	}
	for i := range args {
		if gotArgs[i] != args[i] {
			t.Errorf("arg %d: %#v want %#v", i, gotArgs[i], args[i])
		}
	}
	// Plain SQL passes through untouched.
	s2, a2, b2 := DecodeBound(sql)
	if b2 || s2 != sql || a2 != nil {
		t.Errorf("plain entry decode: %q %v %v", s2, a2, b2)
	}
	if EncodeBound(sql, nil) != sql {
		t.Error("no args must encode verbatim")
	}
}

func TestEncodeBoundTrailingSpacesSurviveReplay(t *testing.T) {
	// Trailing-space strings are exactly the value class PG's bind rule
	// distinguishes; the encoding must round-trip them even through
	// transports and artifact files that trim trailing whitespace.
	args := []types.Value{types.NewString("abc  ")}
	entry := EncodeBound("SELECT $1", args)
	if strings.HasSuffix(entry, " ") {
		t.Fatalf("encoded entry ends in whitespace (trim-fragile): %q", entry)
	}
	_, got, bound := DecodeBound(entry)
	if !bound || got[0].S != "abc  " {
		t.Fatalf("trailing spaces lost: %#v", got)
	}
}

func TestDecodeBoundMarkerInSQLFallsBack(t *testing.T) {
	// Statement text that merely contains the marker (a SQL comment)
	// must not be misread as a bound entry: the suffix is free text, not
	// encoded tokens, so the entry decodes as plain SQL.
	entry := "SELECT A FROM T --BIND not encoded args"
	sql, args, bound := DecodeBound(entry)
	if bound || sql != entry || args != nil {
		t.Errorf("marker-in-comment misread: %q %v %v", sql, args, bound)
	}
	// A bound entry whose string argument contains the marker text still
	// round-trips: the argument's spaces are escaped, so LastIndex finds
	// the real marker.
	hostile := []types.Value{types.NewString("x --BIND I:1")}
	sql, args, bound = DecodeBound(EncodeBound("SELECT $1", hostile))
	if !bound || sql != "SELECT $1" || len(args) != 1 || args[0].S != "x --BIND I:1" {
		t.Errorf("marker-in-argument mishandled: %q %v %v", sql, args, bound)
	}
}

func TestValueEncodeRoundTrip(t *testing.T) {
	for _, v := range []types.Value{
		types.Null(),
		types.NewInt(-7),
		types.NewFloat(0.30000000000000004),
		types.NewBool(true),
		types.NewBool(false),
		types.NewString(""),
		types.NewString("with space, comma\tand tab"),
		types.NewDate("2026-07-29"),
	} {
		got, err := types.DecodeValue(v.Encode())
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if got != v {
			t.Errorf("round trip: %#v -> %q -> %#v", v, v.Encode(), got)
		}
	}
	if _, err := types.DecodeValue("garbage"); err == nil {
		t.Error("malformed encoding must fail")
	}
}
