package reliability

import (
	"math"
	"strings"
	"sync"
	"testing"

	"divsql/internal/dialect"
	"divsql/internal/study"
)

var (
	once sync.Once
	res  *study.Result
	rerr error
)

func studyResult(t *testing.T) *study.Result {
	t.Helper()
	once.Do(func() {
		res, rerr = study.New().Run()
	})
	if rerr != nil {
		t.Fatal(rerr)
	}
	return res
}

func findPair(rep *Report, a, b dialect.ServerName) PairGain {
	for _, p := range rep.Pairs {
		if p.Primary == a && p.Partner == b {
			return p
		}
	}
	return PairGain{}
}

func TestFromStudyMatchesTable4(t *testing.T) {
	rep := FromStudy(studyResult(t))
	cases := []struct {
		a, b    dialect.ServerName
		ma, mab int
	}{
		{dialect.IB, dialect.PG, 47, 1},
		{dialect.IB, dialect.OR, 47, 0},
		{dialect.IB, dialect.MS, 47, 2},
		{dialect.PG, dialect.MS, 52, 2},
		{dialect.OR, dialect.PG, 14, 1},
		{dialect.MS, dialect.PG, 39, 5},
		{dialect.MS, dialect.IB, 39, 1},
		{dialect.MS, dialect.OR, 39, 0},
	}
	for _, tc := range cases {
		p := findPair(rep, tc.a, tc.b)
		if p.MA != tc.ma || p.MAB != tc.mab {
			t.Errorf("%s+%s: mA=%d mAB=%d, want %d/%d", tc.a, tc.b, p.MA, p.MAB, tc.ma, tc.mab)
		}
	}
}

func TestRatioAndGain(t *testing.T) {
	p := PairGain{MA: 50, MAB: 2}
	if r := p.Ratio(); r != 0.04 {
		t.Errorf("ratio %v", r)
	}
	if g := p.Gain(); g != 25 {
		t.Errorf("gain %v", g)
	}
	zero := PairGain{MA: 50, MAB: 0}
	if !math.IsInf(zero.Gain(), 1) {
		t.Error("gain with no common bugs must be +Inf")
	}
	if (PairGain{}).Ratio() != 0 {
		t.Error("empty pair ratio must be 0")
	}
}

func TestEstimateWithReporting(t *testing.T) {
	p := PairGain{MA: 47, MAB: 2}
	full, err := EstimateWithReporting(p, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if full.HalfWidth != 0 {
		t.Errorf("perfect reporting must have zero width, got %v", full.HalfWidth)
	}
	half, err := EstimateWithReporting(p, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	tenth, err := EstimateWithReporting(p, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if !(tenth.HalfWidth > half.HalfWidth && half.HalfWidth > 0) {
		t.Errorf("uncertainty must grow as reporting degrades: %v vs %v", half, tenth)
	}
	if half.Ratio != p.Ratio() {
		t.Error("expected ratio unchanged by thinning")
	}
	// Zero common bugs: rule-of-three upper bound.
	zb, err := EstimateWithReporting(PairGain{MA: 47}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if zb.HalfWidth <= 0 {
		t.Error("zero-numerator bound must be positive")
	}
	if _, err := EstimateWithReporting(p, 0); err == nil {
		t.Error("p=0 must be rejected")
	}
	if _, err := EstimateWithReporting(PairGain{}, 0.5); err == nil {
		t.Error("mA=0 must be rejected")
	}
}

func TestProfileSensitivity(t *testing.T) {
	p := PairGain{MA: 47, MAB: 2}
	r, err := ProfileSensitivity(p, 1.1, 2000, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !(r.P10 <= r.P50 && r.P50 <= r.P90) {
		t.Errorf("quantiles disordered: %+v", r)
	}
	if r.P90 <= r.P10 {
		t.Errorf("heavy-tailed rates must spread the ratio: %+v", r)
	}
	// Determinism.
	r2, err := ProfileSensitivity(p, 1.1, 2000, 42)
	if err != nil {
		t.Fatal(err)
	}
	if r != r2 {
		t.Error("profile simulation not deterministic for a fixed seed")
	}
	// Heavier tails (smaller shape) spread more.
	heavy, _ := ProfileSensitivity(p, 0.8, 2000, 42)
	light, _ := ProfileSensitivity(p, 5.0, 2000, 42)
	if heavy.P90-heavy.P10 <= light.P90-light.P10 {
		t.Errorf("tail weight must widen the spread: heavy %+v light %+v", heavy, light)
	}
	// Input validation.
	if _, err := ProfileSensitivity(PairGain{}, 1, 10, 1); err == nil {
		t.Error("invalid counts must be rejected")
	}
	if _, err := ProfileSensitivity(p, -1, 10, 1); err == nil {
		t.Error("negative shape must be rejected")
	}
	if _, err := ProfileSensitivity(p, 1, 0, 1); err == nil {
		t.Error("zero installations must be rejected")
	}
}

func TestRenderReport(t *testing.T) {
	rep := FromStudy(studyResult(t))
	text := rep.Render()
	if !strings.Contains(text, "IB+PG") || !strings.Contains(text, "gain") {
		t.Errorf("render: %q", text)
	}
}
