// Package reliability implements the reasoning of Section 6.1 of the
// paper: extrapolating from counts of common bugs to the reliability of
// a diverse 1-out-of-2 server.
//
// The paper's simplified model: a user of product A considers switching
// to a fault-tolerant diverse pair AB. Over a reference period, mA bugs
// were reported for A; of these, only mAB also cause B to fail. Under
// the simplifying assumptions of Section 6.1 (failures of one replica
// are masked; only coincident failures are system failures), the
// expected system-failure count falls from mA to mAB, so the ratio
// mAB/mA bounds the residual failure rate and mA/mAB is the reliability
// gain. PairGain carries one ordered pair's counts; FromStudy derives
// every ordered pair directly from a study.Result, so the model runs on
// the same adjudicated outcomes that regenerate the paper's tables, and
// Report.Render prints the Section 6 summary faultstudy displays.
//
// The package also quantifies two of the paper's caveats:
//
//   - imperfect failure reporting (only a fraction p of failures are
//     reported): the expected ratio is unchanged but its uncertainty
//     grows — EstimateWithReporting propagates a binomial model;
//   - usage-profile variation (Adams' effect): per-bug failure rates are
//     heavy-tailed across installations, so the count ratio may badly
//     misestimate the rate ratio for a specific installation —
//     ProfileSensitivity simulates installations with Pareto-distributed
//     per-bug rates and reports quantiles of the realized gain.
//
// Everything is deterministic given its inputs (ProfileSensitivity
// takes an explicit seed), so the reliability numbers in the study
// output are reproducible like the rest of the reproduction.
package reliability
