package reliability

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"divsql/internal/dialect"
	"divsql/internal/study"
)

// PairGain is the Section 6.1 estimate for one (primary, diverse
// partner) ordered pair.
type PairGain struct {
	Primary dialect.ServerName
	Partner dialect.ServerName
	// MA is the number of the primary's bugs that caused it to fail.
	MA int
	// MAB is the number of those bugs that also fail the partner.
	MAB int
	// NonDetectable is the subset of MAB with identical failures (no
	// error containment possible even with comparison).
	NonDetectable int
}

// Ratio returns mAB/mA, the residual failure fraction (0 when mA is 0).
func (p PairGain) Ratio() float64 {
	if p.MA == 0 {
		return 0
	}
	return float64(p.MAB) / float64(p.MA)
}

// Gain returns the reliability gain factor mA/mAB; +Inf when no common
// bugs were observed.
func (p PairGain) Gain() float64 {
	if p.MAB == 0 {
		return math.Inf(1)
	}
	return float64(p.MA) / float64(p.MAB)
}

// Report is the full Section 6 analysis.
type Report struct {
	Pairs []PairGain
}

// FromStudy derives the pair gains from a completed study.
func FromStudy(res *study.Result) *Report {
	rep := &Report{}
	for _, primary := range dialect.AllServers {
		for _, partner := range dialect.AllServers {
			if partner == primary {
				continue
			}
			pg := PairGain{Primary: primary, Partner: partner}
			for i := range res.Bugs {
				bug := &res.Bugs[i]
				if bug.Server != primary {
					continue
				}
				own := res.Runs[bug.ID][primary]
				other := res.Runs[bug.ID][partner]
				if own == nil || !own.Class.IsFailure() {
					continue
				}
				pg.MA++
				if other != nil && other.Class.IsFailure() {
					pg.MAB++
					if !own.Class.SelfEvident && !other.Class.SelfEvident {
						pg.NonDetectable++
					}
				}
			}
			rep.Pairs = append(rep.Pairs, pg)
		}
	}
	return rep
}

// Render prints the report.
func (r *Report) Render() string {
	var b strings.Builder
	b.WriteString("Section 6 reliability-gain estimates (primary -> diverse pair)\n")
	b.WriteString("pair      mA   mAB  residual-ratio  gain\n")
	for _, p := range r.Pairs {
		gain := "inf"
		if p.MAB > 0 {
			gain = fmt.Sprintf("%.1fx", p.Gain())
		}
		fmt.Fprintf(&b, "%s+%s   %4d  %4d     %6.4f      %s\n",
			p.Primary, p.Partner, p.MA, p.MAB, p.Ratio(), gain)
	}
	return b.String()
}

// Estimate is a ratio with a symmetric uncertainty half-width.
type Estimate struct {
	Ratio     float64
	HalfWidth float64
}

// EstimateWithReporting models imperfect failure reporting: each failure
// is reported independently with probability p, so the observed counts
// are binomial thinnings of the true ones. The expected ratio is
// unchanged; the half-width is a delta-method 95% interval that widens
// as p decreases (the paper: "both terms in the ratio would be larger
// and affected by wider uncertainty").
func EstimateWithReporting(pg PairGain, p float64) (Estimate, error) {
	if p <= 0 || p > 1 {
		return Estimate{}, fmt.Errorf("reporting probability %v out of (0, 1]", p)
	}
	if pg.MA == 0 {
		return Estimate{}, fmt.Errorf("no failures observed for %s", pg.Primary)
	}
	// True counts scale as observed/p; the ratio estimator's relative
	// variance is approximately (1-p)/p * (1/mAB + 1/mA) by the delta
	// method on two binomials.
	ratio := pg.Ratio()
	if pg.MAB == 0 {
		// Upper bound via the rule of three on the numerator.
		return Estimate{Ratio: 0, HalfWidth: 3 / (p * float64(pg.MA))}, nil
	}
	relVar := (1 - p) / p * (1/float64(pg.MAB) + 1/float64(pg.MA))
	return Estimate{Ratio: ratio, HalfWidth: 1.96 * ratio * math.Sqrt(relVar)}, nil
}

// ProfileResult summarizes the Adams-effect simulation.
type ProfileResult struct {
	// Quantiles of the per-installation residual failure-rate ratio.
	P10, P50, P90 float64
	// MeanRatio is the mean across installations.
	MeanRatio float64
}

// ProfileSensitivity simulates installations whose per-bug failure rates
// are drawn from a Pareto distribution with the given shape (Adams 1984
// observed very heavy-tailed per-bug rates; shape values near 1 are
// heavy-tailed). For each simulated installation, the realized residual
// ratio is (rate mass of the mAB common bugs) / (rate mass of all mA
// bugs) under an installation-specific random rate assignment. The
// spread of this ratio across installations quantifies how little the
// count ratio alone says about a specific installation's gain.
func ProfileSensitivity(pg PairGain, shape float64, installations int, seed int64) (ProfileResult, error) {
	if pg.MA == 0 || pg.MAB > pg.MA {
		return ProfileResult{}, fmt.Errorf("invalid pair counts mA=%d mAB=%d", pg.MA, pg.MAB)
	}
	if shape <= 0 {
		return ProfileResult{}, fmt.Errorf("shape must be positive, got %v", shape)
	}
	if installations <= 0 {
		return ProfileResult{}, fmt.Errorf("installations must be positive, got %d", installations)
	}
	rng := rand.New(rand.NewSource(seed))
	ratios := make([]float64, 0, installations)
	for k := 0; k < installations; k++ {
		var total, common float64
		for i := 0; i < pg.MA; i++ {
			// Pareto(shape) via inverse transform.
			r := math.Pow(1-rng.Float64(), -1/shape) - 1
			total += r
			if i < pg.MAB {
				common += r
			}
		}
		if total == 0 {
			ratios = append(ratios, 0)
			continue
		}
		ratios = append(ratios, common/total)
	}
	sort.Float64s(ratios)
	q := func(p float64) float64 {
		idx := int(p * float64(len(ratios)-1))
		return ratios[idx]
	}
	mean := 0.0
	for _, r := range ratios {
		mean += r
	}
	mean /= float64(len(ratios))
	return ProfileResult{P10: q(0.10), P50: q(0.50), P90: q(0.90), MeanRatio: mean}, nil
}
