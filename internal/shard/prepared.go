package shard

import (
	"fmt"
	"time"

	"divsql/internal/core"
	"divsql/internal/engine"
	"divsql/internal/server"
	"divsql/internal/sql/ast"
	"divsql/internal/sql/parser"
	"divsql/internal/sql/types"
)

// Stmt is a prepared statement of one router session: prepared eagerly
// on every shard (a banded template like "... WHERE W_ID = ?" routes to
// a different shard per execution, so every shard must hold the plan),
// routed per execution by the bound argument vector. Implements
// core.Statement.
type Stmt struct {
	s   *Session
	sql string
	st  ast.Statement
	np  int
	per []core.Statement // index-aligned with shards
}

// Prepare parses the statement once and prepares it on every shard.
// Implements core.PreparedExecutor.
func (s *Session) Prepare(sql string) (core.Statement, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, err := parser.Parse(sql)
	if err != nil {
		return nil, fmt.Errorf("syntax error: %w", err)
	}
	ps := &Stmt{s: s, sql: sql, st: st, np: ast.NumParams(st)}
	for shard, sub := range s.subs {
		pe, ok := sub.(core.PreparedExecutor)
		if !ok {
			return nil, fmt.Errorf("shard %d: backend session does not support prepared statements", shard)
		}
		p, err := pe.Prepare(sql)
		if err != nil {
			for _, prev := range ps.per {
				_ = prev.Close()
			}
			return nil, fmt.Errorf("shard %d: %w", shard, err)
		}
		ps.per = append(ps.per, p)
	}
	return ps, nil
}

// SQL returns the statement text as prepared.
func (ps *Stmt) SQL() string { return ps.sql }

// NumParams reports how many arguments Exec expects.
func (ps *Stmt) NumParams() int { return ps.np }

// Exec routes this execution by its argument vector (band predicates
// over placeholders resolve against args) and runs the owning shard's
// prepared statement.
func (ps *Stmt) Exec(args ...types.Value) (*engine.Result, time.Duration, error) {
	ps.s.mu.Lock()
	defer ps.s.mu.Unlock()
	if len(args) != ps.np {
		return nil, server.BaseLatency, fmt.Errorf("%w: statement wants %d parameters, %d bound",
			engine.ErrBind, ps.np, len(args))
	}
	return ps.s.dispatch(ps.st, &stmtExec{st: ps, args: args}, args)
}

// Close releases the per-shard statements.
func (ps *Stmt) Close() error {
	var first error
	for _, p := range ps.per {
		if err := p.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// stmtExec runs a prepared execution on one shard.
type stmtExec struct {
	st   *Stmt
	args []types.Value
}

func (e *stmtExec) run(_ *Session, shard int) (*engine.Result, time.Duration, error) {
	return e.st.per[shard].Exec(e.args...)
}
