package shard

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"divsql/internal/core"
	"divsql/internal/dialect"
	"divsql/internal/engine"
	"divsql/internal/fault"
	"divsql/internal/middleware"
	"divsql/internal/obs"
	"divsql/internal/server"
	"divsql/internal/sql/ast"
	"divsql/internal/sql/types"
)

// newServerRouter builds a router over n single-server shards (one
// fault-free PG engine each) — the cheapest backend for routing tests.
func newServerRouter(t *testing.T, cfg Config, n int) (*Router, []*server.Server) {
	t.Helper()
	var backends []Backend
	var srvs []*server.Server
	for i := 0; i < n; i++ {
		s, err := server.New(dialect.PG, nil)
		if err != nil {
			t.Fatal(err)
		}
		backends = append(backends, s)
		srvs = append(srvs, s)
	}
	r, err := New(cfg, backends...)
	if err != nil {
		t.Fatal(err)
	}
	return r, srvs
}

func bandCfg() Config {
	return Config{BandColumns: map[string]string{"T": "W", "R": ""}}
}

func exec(t *testing.T, r *Router, sql string) *engine.Result {
	t.Helper()
	res, _, err := r.Exec(sql)
	if err != nil {
		t.Fatalf("exec %q: %v", sql, err)
	}
	return res
}

func TestNewRequiresShards(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New with zero shards succeeded")
	}
}

func TestNamespaceRoutingIsolatesNamespaces(t *testing.T) {
	r, srvs := newServerRouter(t, Config{}, 4)
	// Each namespace's tables must land wholly on one shard.
	for ns := 0; ns < 8; ns++ {
		exec(t, r, fmt.Sprintf("CREATE TABLE S%d_T (A INT)", ns))
		exec(t, r, fmt.Sprintf("INSERT INTO S%d_T VALUES (%d)", ns, ns))
		res := exec(t, r, fmt.Sprintf("SELECT A FROM S%d_T", ns))
		if len(res.Rows) != 1 || res.Rows[0][0].I != int64(ns) {
			t.Fatalf("namespace %d: %v", ns, res.Rows)
		}
	}
	// Every table lives on exactly one backend.
	for ns := 0; ns < 8; ns++ {
		owners := 0
		for _, s := range srvs {
			if _, _, err := s.Exec(fmt.Sprintf("SELECT A FROM S%d_T", ns)); err == nil {
				owners++
			}
		}
		if owners != 1 {
			t.Errorf("namespace %d on %d shards, want 1", ns, owners)
		}
	}
}

func TestNamespaceCrossShardRejected(t *testing.T) {
	r, _ := newServerRouter(t, Config{}, 2)
	// Find two namespaces hashing to different shards.
	a, b := "", ""
	for i := 0; i < 32 && b == ""; i++ {
		ns := fmt.Sprintf("N%d_", i)
		if a == "" {
			a = ns
			continue
		}
		if r.shardOfNamespace(ns) != r.shardOfNamespace(a) {
			b = ns
		}
	}
	if b == "" {
		t.Fatal("no namespace pair split across 2 shards in 32 tries")
	}
	exec(t, r, "CREATE TABLE "+a+"T (A INT)")
	exec(t, r, "CREATE TABLE "+b+"T (A INT)")
	_, _, err := r.Exec("SELECT * FROM " + a + "T, " + b + "T")
	if err == nil || !strings.Contains(err.Error(), "cross-shard") {
		t.Fatalf("cross-namespace join: %v", err)
	}
}

func setupBanded(t *testing.T, r *Router, rows int) {
	t.Helper()
	exec(t, r, "CREATE TABLE T (W INT, A INT)")
	exec(t, r, "CREATE TABLE R (K INT, V INT)")
	for i := 0; i < rows; i++ {
		exec(t, r, fmt.Sprintf("INSERT INTO T VALUES (%d, %d)", i, i*10))
	}
}

func TestBandRoutingPartitionsRows(t *testing.T) {
	r, srvs := newServerRouter(t, bandCfg(), 3)
	setupBanded(t, r, 9)
	// DDL broadcast: the table exists on every shard; rows split by W%3.
	for i, s := range srvs {
		res, _, err := s.Exec("SELECT W FROM T")
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		if len(res.Rows) != 3 {
			t.Errorf("shard %d holds %d rows, want 3", i, len(res.Rows))
		}
		for _, row := range res.Rows {
			if int(row[0].I)%3 != i {
				t.Errorf("shard %d holds band %d", i, row[0].I)
			}
		}
	}
	// A band-equality read routes to one shard and sees only that band.
	res := exec(t, r, "SELECT A FROM T WHERE W = 4")
	if len(res.Rows) != 1 || res.Rows[0][0].I != 40 {
		t.Fatalf("band read: %v", res.Rows)
	}
}

func TestScatterMergeOrderLimitDistinct(t *testing.T) {
	r, _ := newServerRouter(t, bandCfg(), 3)
	setupBanded(t, r, 9)
	res := exec(t, r, "SELECT A FROM T ORDER BY A DESC LIMIT 4")
	want := []int64{80, 70, 60, 50}
	if len(res.Rows) != 4 {
		t.Fatalf("rows: %v", res.Rows)
	}
	for i, w := range want {
		if res.Rows[i][0].I != w {
			t.Fatalf("row %d = %v, want %d", i, res.Rows[i][0], w)
		}
	}
	exec(t, r, "INSERT INTO T VALUES (9, 10)") // duplicate A=10 on another shard
	res = exec(t, r, "SELECT DISTINCT A FROM T WHERE A = 10")
	if len(res.Rows) != 1 {
		t.Fatalf("DISTINCT across shards kept %d rows", len(res.Rows))
	}
}

func TestScatterAggregates(t *testing.T) {
	r, _ := newServerRouter(t, bandCfg(), 3)
	setupBanded(t, r, 9)
	res := exec(t, r, "SELECT COUNT(*) AS N, SUM(A) AS S, MIN(A) AS LO, MAX(A) AS HI FROM T")
	row := res.Rows[0]
	if row[0].I != 9 || row[1].I != 360 || row[2].I != 0 || row[3].I != 80 {
		t.Fatalf("aggregates: %v", row)
	}
	if _, _, err := r.Exec("SELECT W, COUNT(*) FROM T GROUP BY W"); err == nil ||
		!strings.Contains(err.Error(), "GROUP BY") {
		t.Fatalf("cross-shard GROUP BY: %v", err)
	}
	// With a band predicate GROUP BY routes to one shard and works.
	res = exec(t, r, "SELECT W, COUNT(*) AS N FROM T WHERE W = 3 GROUP BY W")
	if len(res.Rows) != 1 || res.Rows[0][1].I != 1 {
		t.Fatalf("single-shard GROUP BY: %v", res.Rows)
	}
}

func TestScatterSkipsNoShardsWhenEmpty(t *testing.T) {
	// Edge case: shards holding no rows for the table contribute empty
	// fragments — the merge must not invent rows or NULLed aggregates.
	r, _ := newServerRouter(t, bandCfg(), 4)
	exec(t, r, "CREATE TABLE T (W INT, A INT)")
	exec(t, r, "INSERT INTO T VALUES (1, 7)") // only shard 1 has a row
	res := exec(t, r, "SELECT A FROM T")
	if len(res.Rows) != 1 || res.Rows[0][0].I != 7 {
		t.Fatalf("scatter over mostly-empty shards: %v", res.Rows)
	}
	res = exec(t, r, "SELECT COUNT(*) AS N, SUM(A) AS S, MIN(A) AS LO FROM T")
	row := res.Rows[0]
	if row[0].I != 1 || row[1].I != 7 || row[2].I != 7 {
		t.Fatalf("aggregates over empty fragments: %v", row)
	}
	// Entirely empty table: COUNT sums the per-shard zeros; SUM is NULL
	// everywhere and stays NULL.
	exec(t, r, "DELETE FROM T")
	res = exec(t, r, "SELECT COUNT(*) AS N, SUM(A) AS S FROM T")
	row = res.Rows[0]
	if row[0].I != 0 || !row[1].IsNull() {
		t.Fatalf("aggregates over empty table: %v", row)
	}
}

func TestReplicatedTableBroadcastsWrites(t *testing.T) {
	r, srvs := newServerRouter(t, bandCfg(), 3)
	setupBanded(t, r, 0)
	res := exec(t, r, "INSERT INTO R VALUES (1, 100)")
	// Replicated writes apply everywhere but report one logical row.
	if res.Affected != 3 {
		t.Logf("replicated insert affected=%d (sums shard counts)", res.Affected)
	}
	for i, s := range srvs {
		rr, _, err := s.Exec("SELECT V FROM R WHERE K = 1")
		if err != nil || len(rr.Rows) != 1 {
			t.Fatalf("shard %d replica of R: %v %v", i, rr, err)
		}
	}
	// Reads of a replicated table pin to one shard (no fan-out needed).
	rr := exec(t, r, "SELECT V FROM R WHERE K = 1")
	if len(rr.Rows) != 1 || rr.Rows[0][0].I != 100 {
		t.Fatalf("replicated read: %v", rr.Rows)
	}
}

func TestBandFreeWriteBroadcastsAndSumsAffected(t *testing.T) {
	r, _ := newServerRouter(t, bandCfg(), 3)
	setupBanded(t, r, 9)
	res := exec(t, r, "UPDATE T SET A = A + 1")
	if res.Affected != 9 {
		t.Fatalf("band-free UPDATE affected %d, want 9", res.Affected)
	}
	res = exec(t, r, "DELETE FROM T WHERE A > 100")
	if res.Affected != 0 {
		t.Fatalf("delete affected %d", res.Affected)
	}
}

func TestTransactionLazyJoinAndRollback(t *testing.T) {
	r, _ := newServerRouter(t, bandCfg(), 3)
	setupBanded(t, r, 3)
	s := r.NewSession()
	defer s.Close()
	mustOK := func(sql string) *engine.Result {
		t.Helper()
		res, _, err := s.Exec(sql)
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		return res
	}
	res := mustOK("BEGIN TRANSACTION")
	if res.Kind != engine.ResultDDL {
		t.Fatalf("BEGIN kind %v", res.Kind)
	}
	mustOK("INSERT INTO T VALUES (6, 60)") // shard 0
	mustOK("INSERT INTO T VALUES (7, 70)") // shard 1
	// Nested BEGIN surfaces the engine's own error from a joined shard.
	if _, _, err := s.Exec("BEGIN TRANSACTION"); err == nil ||
		!strings.Contains(err.Error(), "already in progress") {
		t.Fatalf("nested BEGIN: %v", err)
	}
	mustOK("ROLLBACK")
	// Both shards rolled back; another session sees neither row.
	if res := exec(t, r, "SELECT COUNT(*) AS N FROM T WHERE A >= 60"); res.Rows[0][0].I != 0 {
		t.Fatalf("rollback left rows: %v", res.Rows)
	}
	// COMMIT path.
	mustOK("BEGIN TRANSACTION")
	mustOK("INSERT INTO T VALUES (6, 60)")
	mustOK("INSERT INTO T VALUES (7, 70)")
	mustOK("COMMIT")
	if res := exec(t, r, "SELECT COUNT(*) AS N FROM T WHERE A >= 60"); res.Rows[0][0].I != 2 {
		t.Fatalf("commit lost rows: %v", res.Rows)
	}
	// COMMIT without a transaction forwards the engine's authentic error.
	if _, _, err := s.Exec("COMMIT"); err == nil {
		t.Fatal("COMMIT outside txn succeeded")
	}
}

func TestTransactionIsolationAcrossSessions(t *testing.T) {
	r, _ := newServerRouter(t, bandCfg(), 2)
	setupBanded(t, r, 2)
	s1, s2 := r.NewSession(), r.NewSession()
	defer s1.Close()
	defer s2.Close()
	if _, _, err := s1.Exec("BEGIN TRANSACTION"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s1.Exec("INSERT INTO T VALUES (4, 40)"); err != nil {
		t.Fatal(err)
	}
	// s2 sees the committed state only.
	res, _, err := s2.Exec("SELECT COUNT(*) AS N FROM T")
	if err != nil || res.Rows[0][0].I != 2 {
		t.Fatalf("dirty read across sessions: %v %v", res, err)
	}
	if _, _, err := s1.Exec("COMMIT"); err != nil {
		t.Fatal(err)
	}
	res, _, err = s2.Exec("SELECT COUNT(*) AS N FROM T")
	if err != nil || res.Rows[0][0].I != 3 {
		t.Fatalf("after commit: %v %v", res, err)
	}
}

func TestPreparedRoutesByArguments(t *testing.T) {
	r, srvs := newServerRouter(t, bandCfg(), 3)
	setupBanded(t, r, 0)
	ins, err := r.Prepare("INSERT INTO T VALUES (?, ?)")
	if err != nil {
		t.Fatal(err)
	}
	defer ins.Close()
	for i := 0; i < 6; i++ {
		if _, _, err := ins.Exec(types.NewInt(int64(i)), types.NewInt(int64(i*10))); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	for i, s := range srvs {
		res, _, err := s.Exec("SELECT W FROM T")
		if err != nil || len(res.Rows) != 2 {
			t.Fatalf("shard %d: %v %v", i, res, err)
		}
	}
	sel, err := r.Prepare("SELECT A FROM T WHERE W = ?")
	if err != nil {
		t.Fatal(err)
	}
	defer sel.Close()
	res, _, err := sel.Exec(types.NewInt(4))
	if err != nil || len(res.Rows) != 1 || res.Rows[0][0].I != 40 {
		t.Fatalf("prepared band read: %v %v", res, err)
	}
	// Wrong arity reports a bind error, like the engine.
	if _, _, err := sel.Exec(); err == nil {
		t.Fatal("arity mismatch accepted")
	}
}

func TestMultiRowInsertSpanningShardsRejected(t *testing.T) {
	r, _ := newServerRouter(t, bandCfg(), 2)
	setupBanded(t, r, 0)
	if _, _, err := r.Exec("INSERT INTO T VALUES (0, 1), (1, 2)"); err == nil ||
		!strings.Contains(err.Error(), "spans shards") {
		t.Fatalf("spanning insert: %v", err)
	}
	// Same-band multi-row inserts are fine.
	exec(t, r, "INSERT INTO T VALUES (0, 1), (2, 2)")
}

func TestCountDistinctCrossShardRejected(t *testing.T) {
	// COUNT(DISTINCT x) / SUM(DISTINCT x) cannot be recombined by
	// summing per-shard results: the same value of a non-band column can
	// exist on several shards, so the sum over-counts. The router must
	// reject the scatter instead of returning a silently wrong count.
	r, _ := newServerRouter(t, bandCfg(), 3)
	setupBanded(t, r, 0)
	exec(t, r, "INSERT INTO T VALUES (0, 5)")
	exec(t, r, "INSERT INTO T VALUES (1, 5)") // same A on another shard
	for _, q := range []string{
		"SELECT COUNT(DISTINCT A) AS N FROM T",
		"SELECT SUM(DISTINCT A) AS S FROM T",
	} {
		if _, _, err := r.Exec(q); err == nil ||
			!strings.Contains(err.Error(), "not supported") {
			t.Fatalf("%s: %v", q, err)
		}
	}
	// Pinned to one shard the engine computes it normally.
	res := exec(t, r, "SELECT COUNT(DISTINCT A) AS N FROM T WHERE W = 0")
	if res.Rows[0][0].I != 1 {
		t.Fatalf("single-shard COUNT(DISTINCT): %v", res.Rows)
	}
}

func TestUnionAggregateCrossShardRejected(t *testing.T) {
	// An aggregate inside any branch of a compound query yields one
	// local value per shard; merging the branches as a plain deduped row
	// set would keep up to N spurious rows. Reject instead.
	r, _ := newServerRouter(t, bandCfg(), 3)
	setupBanded(t, r, 6)
	if _, _, err := r.Exec("SELECT A FROM T UNION SELECT MAX(A) FROM T"); err == nil ||
		!strings.Contains(err.Error(), "not supported") {
		t.Fatalf("UNION with aggregate branch: %v", err)
	}
}

func TestBandedSubqueryMultiShardRejected(t *testing.T) {
	// A band-free statement that scatters or broadcasts must not carry a
	// subquery over a banded table: each shard would evaluate the
	// subquery against its local fragment only, so shards filter by
	// different values and the merged outcome is silently wrong.
	r, _ := newServerRouter(t, bandCfg(), 3)
	setupBanded(t, r, 6)
	for _, q := range []string{
		"SELECT A FROM T WHERE A > (SELECT MAX(A) FROM T)",
		"SELECT A FROM T WHERE A IN (SELECT A FROM T WHERE A > 40)",
		"UPDATE T SET A = 0 WHERE A > (SELECT MAX(A) FROM T)",
		"DELETE FROM T WHERE EXISTS (SELECT 1 FROM T WHERE A > 40)",
	} {
		if _, _, err := r.Exec(q); err == nil ||
			!strings.Contains(err.Error(), "subquery over banded table") {
			t.Fatalf("%s: %v", q, err)
		}
	}
	// INSERT ... SELECT from a banded source into a replicated table
	// would feed each replica its local fragment only.
	if _, _, err := r.Exec("INSERT INTO R SELECT W, A FROM T"); err == nil ||
		!strings.Contains(err.Error(), "banded table") {
		t.Fatalf("INSERT..SELECT into replicated: %v", err)
	}
	// A subquery over a replicated table is safe to scatter — every
	// shard evaluates it against the full data.
	exec(t, r, "INSERT INTO R VALUES (1, 25)")
	res := exec(t, r, "SELECT A FROM T WHERE A IN (SELECT V FROM R)")
	if len(res.Rows) != 0 {
		// A=25 does not exist; the point is the route is accepted.
		t.Fatalf("replicated subquery scatter: %v", res.Rows)
	}
	// Pinned to one shard the subquery runs where the band predicate put
	// the statement, which is what the caller asked for.
	res = exec(t, r, "SELECT A FROM T WHERE W = 2 AND A IN (SELECT A FROM T WHERE W = 2)")
	if len(res.Rows) != 1 || res.Rows[0][0].I != 20 {
		t.Fatalf("pinned subquery: %v", res.Rows)
	}
}

// failCommitBackend injects one COMMIT failure into every session it has
// opened, leaving the backend transaction open — the scenario of a shard
// failing mid COMMIT fan-out.
type failCommitBackend struct {
	*server.Server
	fail bool
}

func (b *failCommitBackend) OpenSession() core.Session {
	return &failCommitSession{Session: b.Server.OpenSession(), b: b}
}

type failCommitSession struct {
	core.Session
	b *failCommitBackend
}

func (s *failCommitSession) Exec(sql string) (*engine.Result, time.Duration, error) {
	if s.b.fail && strings.EqualFold(strings.TrimSpace(sql), "COMMIT") {
		s.b.fail = false
		return nil, 0, fmt.Errorf("injected commit failure")
	}
	return s.Session.Exec(sql)
}

func TestFailedCommitDoesNotPoisonShardSession(t *testing.T) {
	// If one shard's COMMIT fails after the router has dropped its
	// transaction record, the backend session must not be left with the
	// transaction open — later autocommit-style statements would
	// silently execute inside it. The router issues a best-effort
	// ROLLBACK to the failed shard.
	s0, err := server.New(dialect.PG, nil)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := server.New(dialect.PG, nil)
	if err != nil {
		t.Fatal(err)
	}
	fb := &failCommitBackend{Server: s1}
	r, err := New(bandCfg(), s0, fb)
	if err != nil {
		t.Fatal(err)
	}
	exec(t, r, "CREATE TABLE T (W INT, A INT)")
	s := r.NewSession()
	defer s.Close()
	for _, q := range []string{
		"BEGIN TRANSACTION",
		"INSERT INTO T VALUES (0, 60)", // shard 0
		"INSERT INTO T VALUES (1, 70)", // shard 1
	} {
		if _, _, err := s.Exec(q); err != nil {
			t.Fatalf("%s: %v", q, err)
		}
	}
	fb.fail = true
	if _, _, err := s.Exec("COMMIT"); err == nil ||
		!strings.Contains(err.Error(), "shard 1") {
		t.Fatalf("COMMIT with failing shard: %v", err)
	}
	// The next statement on the session autocommits: it must be durable
	// and visible to other sessions, not swallowed by a stale open
	// transaction on shard 1's backend session.
	if _, _, err := s.Exec("INSERT INTO T VALUES (1, 99)"); err != nil {
		t.Fatal(err)
	}
	res := exec(t, r, "SELECT A FROM T WHERE W = 1 ORDER BY A")
	if len(res.Rows) != 1 || res.Rows[0][0].I != 99 {
		// Row 70's transaction failed to commit and must be gone; row 99
		// autocommitted after it and must be present.
		t.Fatalf("shard 1 rows after failed COMMIT: %v", res.Rows)
	}
}

func TestQuarantinedReplicaInsideOneShardDuringCrossShardRead(t *testing.T) {
	// Edge case: a quarantined replica inside one shard must not poison
	// a scatter-gather read — that shard's remaining replicas adjudicate
	// its fragment, the other shards are untouched.
	newShard := func(faults []fault.Fault) *middleware.DiverseServer {
		t.Helper()
		var srvs []*server.Server
		for _, n := range []dialect.ServerName{dialect.PG, dialect.OR, dialect.MS} {
			s, err := server.New(n, faults)
			if err != nil {
				t.Fatal(err)
			}
			srvs = append(srvs, s)
		}
		cfg := middleware.DefaultConfig()
		cfg.AutoResync = false // keep the outvoted replica quarantined
		cfg.IdleRejoin = false
		d, err := middleware.New(cfg, srvs...)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	faulty := []fault.Fault{{
		BugID:   "wrong",
		Server:  dialect.PG,
		Trigger: fault.Trigger{Table: "T", Flag: ast.FlagSelect},
		Effect:  fault.Effect{Kind: fault.EffectMutateResult, Mutation: fault.MutOffByOne},
	}}
	shard0, shard1 := newShard(faulty), newShard(nil)
	r, err := New(bandCfg(), shard0, shard1)
	if err != nil {
		t.Fatal(err)
	}
	exec(t, r, "CREATE TABLE T (W INT, A INT)")
	exec(t, r, "INSERT INTO T VALUES (0, 10)")
	exec(t, r, "INSERT INTO T VALUES (1, 20)")
	// Trigger the fault inside shard 0 until PG is outvoted into
	// quarantine, then run the cross-shard read of record.
	for i := 0; i < 3 && len(shard0.QuarantinedReplicas()) == 0; i++ {
		exec(t, r, "SELECT A FROM T ORDER BY A")
	}
	if got := shard0.QuarantinedReplicas(); len(got) != 1 || got[0] != "PG" {
		t.Fatalf("shard0 quarantine: %v", got)
	}
	res := exec(t, r, "SELECT A FROM T ORDER BY A")
	if len(res.Rows) != 2 || res.Rows[0][0].I != 10 || res.Rows[1][0].I != 20 {
		t.Fatalf("cross-shard read with quarantined replica: %v", res.Rows)
	}
	if m := shard1.Metrics(); m.MaskedFailures != 0 || m.DetectedSplits != 0 {
		t.Errorf("healthy shard saw divergence: %+v", m)
	}
	// Introspection reflects the quarantine.
	sts := r.Status()
	if len(sts[0].Quarantined) != 1 || len(sts[1].Quarantined) != 0 {
		t.Errorf("Status quarantine: %+v", sts)
	}
	if txt := r.DescribeText(); !strings.Contains(txt, "PG (quarantined)") {
		t.Errorf("DescribeText: %q", txt)
	}
}

func TestShardLabeledCollectorsDoNotCollide(t *testing.T) {
	// Satellite: two shards' middleware families (for example
	// divsql_middleware_last_resync_seq) carry no distinguishing labels
	// of their own; the router must shard-qualify them so one registry
	// renders both without collision.
	newShard := func() *middleware.DiverseServer {
		t.Helper()
		var srvs []*server.Server
		for _, n := range []dialect.ServerName{dialect.PG, dialect.OR} {
			s, err := server.New(n, nil)
			if err != nil {
				t.Fatal(err)
			}
			srvs = append(srvs, s)
		}
		d, err := middleware.New(middleware.DefaultConfig(), srvs...)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	r, err := New(Config{}, newShard(), newShard())
	if err != nil {
		t.Fatal(err)
	}
	exec(t, r, "CREATE TABLE A_T (A INT)")
	exec(t, r, "INSERT INTO A_T VALUES (1)")
	reg := obs.NewRegistry()
	reg.Register(r.MetricsCollectors()...)
	out := reg.Render()
	for _, want := range []string{
		`divsql_middleware_last_resync_seq{shard="shard0"}`,
		`divsql_middleware_last_resync_seq{shard="shard1"}`,
		`divsql_middleware_replica_quarantined{replica="PG",shard="shard0"}`,
		`divsql_middleware_replica_quarantined{replica="PG",shard="shard1"}`,
		`divsql_shard_statements_total`,
		`divsql_shard_routed_statements_total{shard="shard0"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %s", want)
		}
	}
	if n := strings.Count(out, "# TYPE divsql_middleware_last_resync_seq"); n != 1 {
		t.Errorf("family header repeated %d times", n)
	}
}

func TestRoutedStatementsCounterCovers(t *testing.T) {
	r, _ := newServerRouter(t, bandCfg(), 2)
	setupBanded(t, r, 4)
	m := &r.metrics
	if m.statements.Load() == 0 || m.single.Load() == 0 || m.broadcast.Load() == 0 {
		t.Fatalf("counters: statements=%d single=%d broadcast=%d",
			m.statements.Load(), m.single.Load(), m.broadcast.Load())
	}
	before := m.scatter.Load()
	exec(t, r, "SELECT COUNT(*) AS N FROM T")
	if m.scatter.Load() != before+1 {
		t.Errorf("scatter counter did not advance")
	}
	if _, _, err := r.Exec("INSERT INTO T VALUES (0, 1), (1, 2)"); err == nil {
		t.Fatal("expected rejection")
	}
	if m.rejected.Load() == 0 {
		t.Errorf("rejected counter did not advance")
	}
}
