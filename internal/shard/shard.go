// Package shard implements the horizontal scale-out layer of the
// diverse-replication middleware: a Router that partitions statements
// across N independent diverse replica sets ("shards"), each with its
// own adjudication loop, quarantine policy, resync machinery and
// metrics families.
//
// One DiverseServer is one adjudication loop: every write takes the
// set's exclusive statement lock, so a single replica set cannot scale
// past the loop's capacity no matter how many clients connect. The
// Router multiplies that unit. It implements the same
// core.SessionExecutor / core.PreparedExecutor contracts as the
// middleware itself, so every existing workload driver (tpcc, difftest,
// the wire server, sqldriver) can front a sharded deployment unchanged.
//
// # Partitioning modes
//
// Namespace mode (the default): every table belongs to exactly one
// shard, chosen by hashing the table's namespace (by default the prefix
// up to and including the first '_', e.g. "S3_QT7" -> "S3_"; a name
// without '_' is its own namespace). A statement whose referenced
// tables all live on one shard routes there; a statement spanning
// namespaces on different shards is rejected deterministically —
// namespace partitioning is for workloads with disjoint table
// universes, such as difftest's per-stream namespaces.
//
// PK-band mode (Config.BandColumns non-empty): every table exists on
// every shard and rows partition by the value of the table's band
// column (tpcc: the *W_ID column), shard = band % N. DDL broadcasts to
// every shard in ascending order; DML with an equality predicate or
// VALUES entry on the band column routes to the owning shard;
// band-free writes broadcast (affected counts summed); band-free
// SELECTs scatter-gather: fan out to every shard in parallel, each
// shard adjudicating its fragment across its own replicas, then merge
// (concatenate, re-sort by ORDER BY, recombine COUNT/SUM/MIN/MAX
// aggregates). Tables absent from BandColumns (tpcc's ITEM) are
// replicated: writes broadcast, reads pin to the session's home shard.
//
// # Ordering rules (deadlock and determinism)
//
//   - Multi-shard statements (DDL broadcast, band-free writes,
//     transaction control) always visit shards in ascending index
//     order — the cross-shard analogue of the engine's sorted
//     table-latch order, so two sessions can never deadlock across
//     shards.
//   - Scatter-gather reads fan out concurrently and merge in ascending
//     shard order, so the merged row order is deterministic for a given
//     per-shard order.
//   - BEGIN propagates lazily: a shard joins a session's transaction
//     the first time a statement inside the transaction routes to it,
//     and COMMIT/ROLLBACK visit exactly the joined shards, in
//     ascending order. An untouched shard never learns the transaction
//     existed, which is what keeps per-shard adjudication loops
//     independent under transactional load.
package shard

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"

	"divsql/internal/core"
	"divsql/internal/sql/ast"
	"divsql/internal/sql/types"
)

// Backend is what one shard fronts: an endpoint offering sessions and
// prepared statements. *middleware.DiverseServer implements it; so does
// *server.Server, which tests use for single-replica shards.
type Backend interface {
	core.SessionExecutor
	core.PreparedExecutor
}

// Config selects the partitioning mode.
type Config struct {
	// BandColumns maps TABLE name (upper case) to its band column name.
	// Non-empty selects PK-band mode; tables absent from the map are
	// replicated to every shard (writes broadcast, reads pinned).
	// Empty selects namespace mode.
	BandColumns map[string]string
	// NamespaceOf computes a table's namespace in namespace mode. Nil
	// uses PrefixNamespace.
	NamespaceOf func(table string) string
}

// PrefixNamespace is the default namespace function: the prefix up to
// and including the first '_' ("S3_QT7" -> "S3_"); a name without '_'
// is its own namespace.
func PrefixNamespace(table string) string {
	if i := strings.IndexByte(table, '_'); i >= 0 {
		return table[:i+1]
	}
	return table
}

// tableInfo is the router's catalog entry for one table it has seen DDL
// for (PK-band mode only; namespace routing is a pure hash).
type tableInfo struct {
	bandCol string // upper case; "" for replicated tables
	bandIdx int    // band column position in CREATE TABLE order; -1 unknown
	view    bool   // views always scatter on read
}

// Router routes statements across shards. It implements core.Executor,
// core.SessionExecutor and core.PreparedExecutor.
type Router struct {
	cfg      Config
	backends []Backend
	names    []string

	mu      sync.RWMutex // guards catalog and def
	catalog map[string]*tableInfo
	def     *Session

	nextHome uint64 // round-robin home-shard assignment (under mu)

	metrics routerMetrics
}

// New builds a router over the given shard backends.
func New(cfg Config, backends ...Backend) (*Router, error) {
	if len(backends) == 0 {
		return nil, errors.New("shard: router needs at least one shard")
	}
	if cfg.NamespaceOf == nil {
		cfg.NamespaceOf = PrefixNamespace
	}
	r := &Router{
		cfg:      cfg,
		backends: backends,
		catalog:  make(map[string]*tableInfo),
	}
	for i := range backends {
		r.names = append(r.names, fmt.Sprintf("shard%d", i))
	}
	r.metrics.perShard = make([]shardCounters, len(backends))
	return r, nil
}

// NumShards reports the shard count.
func (r *Router) NumShards() int { return len(r.backends) }

// banded reports whether the router runs in PK-band mode.
func (r *Router) banded() bool { return len(r.cfg.BandColumns) > 0 }

// shardOfNamespace hashes a table name's namespace onto a shard.
func (r *Router) shardOfNamespace(table string) int {
	h := fnv.New32a()
	_, _ = h.Write([]byte(r.cfg.NamespaceOf(strings.ToUpper(table))))
	return int(h.Sum32() % uint32(len(r.backends)))
}

// shardOfBand maps a band value onto a shard: integers partition by
// value modulo N (so adjacent bands land on different shards — tpcc's
// warehouse-pinned terminals spread evenly), anything else by hash of
// its rendering.
func (r *Router) shardOfBand(v types.Value) int {
	n := len(r.backends)
	if v.K == types.KindInt {
		return int(((v.I % int64(n)) + int64(n)) % int64(n))
	}
	h := fnv.New32a()
	_, _ = h.Write([]byte(v.String()))
	return int(h.Sum32() % uint32(n))
}

// ---------------------------------------------------------------------------
// Route analysis

type routeKind int

const (
	routeSingle    routeKind = iota + 1 // one owning shard
	routeScatter                        // read fan-out + merge
	routeBroadcast                      // write on every shard, ascending
	routeTxn                            // BEGIN/COMMIT/ROLLBACK
	routeSetTxn                         // session-level isolation default
)

type route struct {
	kind  routeKind
	shard int // routeSingle only
}

// analyze classifies one parsed statement. args carries the execution's
// typed arguments when the statement came through the prepared path
// (band predicates over placeholders resolve per execution); home is
// the session's home shard for statements with no table references.
func (r *Router) analyze(st ast.Statement, args []types.Value, home int) (route, error) {
	switch st.(type) {
	case *ast.Begin, *ast.Commit, *ast.Rollback:
		return route{kind: routeTxn}, nil
	case *ast.SetTxn:
		return route{kind: routeSetTxn}, nil
	}
	if r.banded() {
		return r.analyzeBand(st, args, home)
	}
	return r.analyzeNamespace(st, home)
}

// analyzeNamespace routes by namespace hash: all referenced names must
// agree on one shard. Statements without table references run on the
// session's home shard.
func (r *Router) analyzeNamespace(st ast.Statement, home int) (route, error) {
	names := referencedNames(st)
	if len(names) == 0 {
		return route{kind: routeSingle, shard: home}, nil
	}
	shard, first := -1, ""
	for _, name := range names {
		s := r.shardOfNamespace(name)
		if shard < 0 {
			shard, first = s, name
			continue
		}
		if s != shard {
			return route{}, fmt.Errorf(
				"shard: cross-shard statement under namespace partitioning (%s on shard %d, %s on shard %d)",
				first, shard, name, s)
		}
	}
	return route{kind: routeSingle, shard: shard}, nil
}

// referencedNames lists every table/view/sequence name a statement
// touches, including created and dropped object names ast.Tables does
// not cover.
func referencedNames(st ast.Statement) []string {
	set := ast.Tables(st)
	switch x := st.(type) {
	case *ast.CreateSequence:
		set[strings.ToUpper(x.Name)] = true
	case *ast.DropSequence:
		set[strings.ToUpper(x.Name)] = true
	case *ast.DropIndex:
		// An index name routes like a table name: qgen namespaces them
		// identically, so the index lands with its table.
		set[strings.ToUpper(x.Name)] = true
	case *ast.CreateIndex:
		set[strings.ToUpper(x.Name)] = true
	}
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// analyzeBand routes in PK-band mode.
func (r *Router) analyzeBand(st ast.Statement, args []types.Value, home int) (route, error) {
	var (
		rt  route
		err error
	)
	switch x := st.(type) {
	case *ast.CreateTable, *ast.CreateView, *ast.CreateIndex, *ast.CreateSequence,
		*ast.DropTable, *ast.DropView, *ast.DropIndex, *ast.DropSequence:
		_ = x
		return route{kind: routeBroadcast}, nil
	case *ast.Insert:
		rt, err = r.analyzeInsert(x, args)
	case *ast.Update:
		rt, err = r.analyzeFiltered(strings.ToUpper(x.Table), x.Where, args, false, home)
	case *ast.Delete:
		rt, err = r.analyzeFiltered(strings.ToUpper(x.Table), x.Where, args, false, home)
	case *ast.Select:
		rt, err = r.analyzeSelect(x, args, home)
	default:
		return route{}, fmt.Errorf("shard: cannot route %T", st)
	}
	if err == nil && rt.kind != routeSingle {
		// The statement is about to run on more than one shard (scatter
		// or broadcast): a subquery over a banded table would evaluate
		// against each shard's local fragment only — shards would filter
		// by different values and the merged outcome would be silently
		// wrong. The co-partitioning assumption covers joins, not
		// global-aggregate subqueries, so reject deterministically.
		if serr := r.bandedSubqueryErr(st); serr != nil {
			return route{}, serr
		}
	}
	return rt, err
}

// bandedSubqueryErr reports an error when any subquery expression in the
// statement references a banded table. Pinned (single-shard) statements
// are not checked here: their subqueries run on one shard, which is what
// the band predicate asked for.
func (r *Router) bandedSubqueryErr(st ast.Statement) error {
	var offender string
	check := func(sub *ast.Select) {
		if sub == nil || offender != "" {
			return
		}
		for t := range ast.Tables(sub) {
			if r.bandColumnOf(t) != "" {
				offender = t
				return
			}
		}
	}
	ast.WalkStatementExprs(st, func(e ast.Expr) {
		switch x := e.(type) {
		case *ast.In:
			check(x.Select)
		case *ast.Exists:
			check(x.Select)
		case *ast.Subquery:
			check(x.Select)
		}
	})
	if offender != "" {
		return fmt.Errorf("shard: multi-shard statement with a subquery over banded table %s cannot be routed (add a band predicate)", offender)
	}
	return nil
}

// bandColumnOf reports the band column of a table ("" = replicated).
func (r *Router) bandColumnOf(table string) string {
	return r.cfg.BandColumns[strings.ToUpper(table)]
}

// analyzeInsert routes an INSERT by the band value in its VALUES rows.
func (r *Router) analyzeInsert(ins *ast.Insert, args []types.Value) (route, error) {
	table := strings.ToUpper(ins.Table)
	band := r.bandColumnOf(table)
	if band == "" {
		// Replicated table: the row must exist on every shard. A source
		// SELECT over a banded table would feed each replica its local
		// fragment only, silently diverging the replicas.
		if ins.Select != nil {
			for t := range ast.Tables(ins.Select) {
				if r.bandColumnOf(t) != "" {
					return route{}, fmt.Errorf("shard: INSERT ... SELECT from banded table %s into replicated table %s cannot be routed", t, table)
				}
			}
		}
		return route{kind: routeBroadcast}, nil
	}
	if ins.Select != nil {
		return route{}, fmt.Errorf("shard: INSERT ... SELECT into banded table %s cannot be routed", table)
	}
	idx := -1
	if len(ins.Columns) > 0 {
		for i, c := range ins.Columns {
			if strings.EqualFold(c, band) {
				idx = i
				break
			}
		}
	} else {
		r.mu.RLock()
		if ti := r.catalog[table]; ti != nil {
			idx = ti.bandIdx
		}
		r.mu.RUnlock()
	}
	if idx < 0 {
		return route{}, fmt.Errorf("shard: unknown band column position for %s (CREATE TABLE did not pass through the router)", table)
	}
	shard := -1
	for _, row := range ins.Rows {
		if idx >= len(row) {
			return route{}, fmt.Errorf("shard: INSERT into %s omits band column %s", table, band)
		}
		v, ok := resolveValue(row[idx], args)
		if !ok {
			return route{}, fmt.Errorf("shard: band column %s of %s must be a literal or parameter", band, table)
		}
		s := r.shardOfBand(v)
		if shard >= 0 && s != shard {
			return route{}, fmt.Errorf("shard: multi-row INSERT into %s spans shards", table)
		}
		shard = s
	}
	if shard < 0 {
		return route{}, fmt.Errorf("shard: INSERT into %s carries no rows", table)
	}
	return route{kind: routeSingle, shard: shard}, nil
}

// analyzeFiltered routes an UPDATE/DELETE (read=false) or a FROM-based
// statement by band-equality predicates in its WHERE clause. A banded
// table without a band predicate broadcasts (writes) or scatters
// (reads); a replicated table broadcasts writes and pins reads to home.
func (r *Router) analyzeFiltered(table string, where ast.Expr, args []types.Value, read bool, home int) (route, error) {
	band := r.bandColumnOf(table)
	if band == "" {
		if read {
			return route{kind: routeSingle, shard: home}, nil
		}
		return route{kind: routeBroadcast}, nil
	}
	if shard, ok := r.bandShardFromWhere(where, band, args); ok {
		return route{kind: routeSingle, shard: shard}, nil
	}
	if read {
		return route{kind: routeScatter}, nil
	}
	return route{kind: routeBroadcast}, nil
}

// analyzeSelect routes a SELECT in band mode.
func (r *Router) analyzeSelect(sel *ast.Select, args []types.Value, home int) (route, error) {
	refs := referencedNames(sel)
	if len(refs) == 0 {
		return route{kind: routeSingle, shard: home}, nil
	}
	// Collect the band columns of the referenced banded tables; a view
	// reference forces a scatter (its expansion is unknown here, but
	// every shard holds the view over its own rows).
	bands := map[string]bool{}
	anyBanded, anyView := false, false
	r.mu.RLock()
	for _, t := range refs {
		if ti := r.catalog[t]; ti != nil && ti.view {
			anyView = true
		}
	}
	r.mu.RUnlock()
	for _, t := range refs {
		if b := r.bandColumnOf(t); b != "" {
			bands[strings.ToUpper(b)] = true
			anyBanded = true
		}
	}
	if !anyBanded && !anyView {
		// Replicated tables only: every shard has the full data.
		return route{kind: routeSingle, shard: home}, nil
	}
	// A band-equality predicate on any referenced banded table pins the
	// statement (tpcc: every terminal statement carries W_ID = ?). The
	// predicates must agree on one shard; disagreeing bands (a cross-
	// warehouse join) scatter instead.
	shard := -1
	agree := true
	for bandCol := range bands {
		if s, ok := r.bandShardFromWhere(sel.Where, bandCol, args); ok {
			if shard >= 0 && s != shard {
				agree = false
			}
			shard = s
		}
	}
	if shard >= 0 && agree && !anyView {
		return route{kind: routeSingle, shard: shard}, nil
	}
	return route{kind: routeScatter}, nil
}

// bandShardFromWhere finds an equality predicate <bandCol> = <value> in
// the top-level AND chain of a WHERE clause and maps it to a shard. It
// descends only through AND — a band predicate under OR does not pin
// the statement (the other branch may match rows on other shards).
func (r *Router) bandShardFromWhere(where ast.Expr, bandCol string, args []types.Value) (int, bool) {
	shard, found := -1, false
	var walk func(e ast.Expr)
	walk = func(e ast.Expr) {
		if found {
			return
		}
		b, ok := e.(*ast.Binary)
		if !ok {
			return
		}
		switch b.Op {
		case ast.OpAnd:
			walk(b.L)
			walk(b.R)
		case ast.OpEq:
			col, val := b.L, b.R
			if _, ok := col.(*ast.ColumnRef); !ok {
				col, val = b.R, b.L
			}
			cr, ok := col.(*ast.ColumnRef)
			if !ok || !strings.EqualFold(cr.Column, bandCol) {
				return
			}
			v, ok := resolveValue(val, args)
			if !ok {
				return
			}
			shard, found = r.shardOfBand(v), true
		}
	}
	if where != nil {
		walk(where)
	}
	return shard, found
}

// resolveValue evaluates a routing-relevant expression: a literal, or a
// parameter resolved against this execution's argument vector.
func resolveValue(e ast.Expr, args []types.Value) (types.Value, bool) {
	switch x := e.(type) {
	case *ast.Literal:
		return x.Val, true
	case *ast.Param:
		if x.N >= 1 && x.N <= len(args) {
			return args[x.N-1], true
		}
	}
	return types.Value{}, false
}

// noteDDL updates the catalog after a successful DDL execution.
func (r *Router) noteDDL(st ast.Statement) {
	if !r.banded() {
		return
	}
	switch x := st.(type) {
	case *ast.CreateTable:
		table := strings.ToUpper(x.Name)
		ti := &tableInfo{bandCol: r.bandColumnOf(table), bandIdx: -1}
		for i, c := range x.Columns {
			if strings.EqualFold(c.Name, ti.bandCol) {
				ti.bandIdx = i
				break
			}
		}
		r.mu.Lock()
		r.catalog[table] = ti
		r.mu.Unlock()
	case *ast.CreateView:
		r.mu.Lock()
		r.catalog[strings.ToUpper(x.Name)] = &tableInfo{view: true, bandIdx: -1}
		r.mu.Unlock()
	case *ast.DropTable:
		r.mu.Lock()
		delete(r.catalog, strings.ToUpper(x.Name))
		r.mu.Unlock()
	case *ast.DropView:
		r.mu.Lock()
		delete(r.catalog, strings.ToUpper(x.Name))
		r.mu.Unlock()
	}
}
