package shard

import (
	"fmt"
	"sort"
	"strings"

	"divsql/internal/engine"
	"divsql/internal/sql/ast"
	"divsql/internal/sql/types"
)

// mergeScatter combines per-shard fragments of one SELECT into the
// result an unsharded server would have produced, under the
// co-partitioning assumption documented in the package comment (joins
// between banded tables join rows of one band, so the union of
// per-shard joins is the global join).
//
// Three shapes are handled:
//
//   - global aggregates (every projection a COUNT/SUM/MIN/MAX call, no
//     GROUP BY): recombined column-wise — COUNT and SUM sum across
//     shards, MIN/MAX take the extreme; AVG cannot be recombined from
//     per-shard AVGs and is rejected;
//   - GROUP BY: rejected (grouped fragments cannot be recombined
//     without re-aggregating, which the router does not do);
//   - plain row sets: concatenated in ascending shard order, re-sorted
//     by the statement's ORDER BY with the engine's comparator
//     (NULLs first), DISTINCT/UNION re-deduplicated, LIMIT re-applied.
func mergeScatter(sel *ast.Select, results []*engine.Result) (*engine.Result, error) {
	var frags []*engine.Result
	for _, res := range results {
		if res != nil && res.Kind == engine.ResultRows {
			frags = append(frags, res)
		}
	}
	if len(frags) == 0 {
		// Non-row results (possible when a view expands to something
		// odd); return the first shard's result as-is.
		for _, res := range results {
			if res != nil {
				return res, nil
			}
		}
		return nil, nil
	}
	if sel == nil {
		return nil, fmt.Errorf("shard: scatter-gather needs the parsed SELECT to merge")
	}
	if len(sel.GroupBy) > 0 {
		return nil, fmt.Errorf("shard: cross-shard GROUP BY is not supported (add a band predicate)")
	}
	if aggs, ok := aggregateShape(sel); ok {
		return mergeAggregates(aggs, frags)
	}
	if hasAggregate(sel) {
		return nil, fmt.Errorf("shard: cross-shard aggregate shape is not supported (add a band predicate)")
	}

	out := &engine.Result{
		Kind:    engine.ResultRows,
		Columns: append([]string(nil), frags[0].Columns...),
	}
	for _, f := range frags {
		out.Rows = append(out.Rows, f.Rows...)
	}
	// Each shard deduplicated its own fragment; equal rows from
	// different shards must collapse again.
	if sel.Distinct || (sel.Union != nil && !sel.UnionAll) {
		out.Rows = dedupeRows(out.Rows)
	}
	if len(sel.OrderBy) > 0 {
		if err := orderMerged(out, sel.OrderBy); err != nil {
			return nil, err
		}
	}
	if sel.LimitSyn != ast.LimitNone && int64(len(out.Rows)) > sel.Limit {
		out.Rows = out.Rows[:sel.Limit]
	}
	return out, nil
}

// aggregateShape reports whether every projection is a recombinable
// aggregate call, returning the per-column function names.
func aggregateShape(sel *ast.Select) ([]string, bool) {
	if len(sel.Items) == 0 || sel.Union != nil {
		return nil, false
	}
	fns := make([]string, len(sel.Items))
	for i, it := range sel.Items {
		fc, ok := it.Expr.(*ast.FuncCall)
		if !ok {
			return nil, false
		}
		if fc.Distinct {
			// COUNT(DISTINCT x) / SUM(DISTINCT x) cannot be recombined by
			// summing per-shard results: a distinct value of a non-band
			// column can exist on several shards, so the sum over-counts.
			return nil, false
		}
		fn := strings.ToUpper(fc.Name)
		switch fn {
		case "COUNT", "SUM", "MIN", "MAX":
			fns[i] = fn
		default:
			return nil, false
		}
	}
	return fns, true
}

// hasAggregate reports whether any projection contains an aggregate
// call (used to reject mixed shapes the merge cannot recombine). It
// recurses through UNION branches and derived tables: a per-shard
// aggregate anywhere in the compound query yields one local value per
// shard, which a plain row-set merge cannot recombine.
func hasAggregate(sel *ast.Select) bool {
	agg := false
	var walkSel func(s *ast.Select)
	walkSel = func(s *ast.Select) {
		if s == nil || agg {
			return
		}
		for _, it := range s.Items {
			if it.Expr == nil {
				continue
			}
			ast.WalkExprs(it.Expr, func(e ast.Expr) {
				if fc, ok := e.(*ast.FuncCall); ok {
					if fc.Distinct {
						agg = true
					}
					switch strings.ToUpper(fc.Name) {
					case "COUNT", "SUM", "MIN", "MAX", "AVG":
						agg = true
					}
				}
			})
		}
		for _, f := range s.From {
			walkSel(f.Table.Subquery)
			for _, j := range f.Joins {
				walkSel(j.Right.Subquery)
			}
		}
		walkSel(s.Union)
	}
	walkSel(sel)
	return agg
}

// mergeAggregates recombines one-row aggregate fragments column-wise.
func mergeAggregates(fns []string, frags []*engine.Result) (*engine.Result, error) {
	out := &engine.Result{
		Kind:    engine.ResultRows,
		Columns: append([]string(nil), frags[0].Columns...),
	}
	acc := make([]types.Value, len(fns))
	for i := range acc {
		acc[i] = types.Null()
	}
	for _, f := range frags {
		if len(f.Rows) != 1 {
			return nil, fmt.Errorf("shard: aggregate fragment has %d rows, want 1", len(f.Rows))
		}
		row := f.Rows[0]
		if len(row) != len(fns) {
			return nil, fmt.Errorf("shard: aggregate fragment has %d columns, want %d", len(row), len(fns))
		}
		for i, fn := range fns {
			v := row[i]
			if v.IsNull() {
				continue
			}
			if acc[i].IsNull() {
				acc[i] = v
				continue
			}
			switch fn {
			case "COUNT", "SUM":
				acc[i] = addValues(acc[i], v)
			case "MIN":
				if c, err := types.Compare(v, acc[i]); err == nil && c < 0 {
					acc[i] = v
				}
			case "MAX":
				if c, err := types.Compare(v, acc[i]); err == nil && c > 0 {
					acc[i] = v
				}
			}
		}
	}
	out.Rows = [][]types.Value{acc}
	return out, nil
}

// addValues sums two numeric values, preserving integer kind when both
// sides are integers (matching the engine's SUM/COUNT typing).
func addValues(a, b types.Value) types.Value {
	if a.K == types.KindInt && b.K == types.KindInt {
		return types.NewInt(a.I + b.I)
	}
	return types.NewFloat(a.AsFloat() + b.AsFloat())
}

// orderMerged re-sorts concatenated rows by the statement's ORDER BY.
// Keys must be output columns (by name, qualifier ignored) or 1-based
// positions — the shapes the engine itself supports on merged output;
// computed keys were already consumed per-shard and cannot be re-read
// here, so they are rejected.
func orderMerged(res *engine.Result, order []ast.OrderItem) error {
	keyIdx := make([]int, len(order))
	for k, item := range order {
		switch x := item.Expr.(type) {
		case *ast.Literal:
			if x.Val.K != types.KindInt {
				return fmt.Errorf("shard: unsupported cross-shard ORDER BY key")
			}
			idx := int(x.Val.I) - 1
			if idx < 0 || idx >= len(res.Columns) {
				return fmt.Errorf("ORDER BY position %d out of range", x.Val.I)
			}
			keyIdx[k] = idx
		case *ast.ColumnRef:
			idx := -1
			for i, c := range res.Columns {
				if strings.EqualFold(c, x.Column) {
					idx = i
					break
				}
			}
			if idx < 0 {
				return fmt.Errorf("ORDER BY column %s must appear in the select list of a cross-shard query", x.Column)
			}
			keyIdx[k] = idx
		default:
			return fmt.Errorf("shard: cross-shard ORDER BY keys must be output columns or positions")
		}
	}
	sort.SliceStable(res.Rows, func(i, j int) bool {
		for k, item := range order {
			c := compareForSort(res.Rows[i][keyIdx[k]], res.Rows[j][keyIdx[k]])
			if c == 0 {
				continue
			}
			if item.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	return nil
}

// compareForSort mirrors the engine's ORDER BY comparator: NULLs first,
// mixed kinds by kind, then value order.
func compareForSort(a, b types.Value) int {
	if a.IsNull() || b.IsNull() {
		switch {
		case a.IsNull() && b.IsNull():
			return 0
		case a.IsNull():
			return -1
		default:
			return 1
		}
	}
	if c, err := types.Compare(a, b); err == nil {
		return c
	}
	if a.K != b.K {
		return int(a.K) - int(b.K)
	}
	return strings.Compare(a.String(), b.String())
}

// dedupeRows removes duplicate rows, keeping first occurrences
// (mirrors the engine's UNION/DISTINCT dedup).
func dedupeRows(rows [][]types.Value) [][]types.Value {
	seen := make(map[string]bool, len(rows))
	out := rows[:0:0]
	for _, row := range rows {
		var b strings.Builder
		for _, v := range row {
			b.WriteString(v.Encode())
			b.WriteByte('\x1f')
		}
		k := b.String()
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, row)
	}
	return out
}
