package shard

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"

	"divsql/internal/obs"
)

// This file is the router's observability and introspection surface:
// routing counters rendered as divsql_shard_* families, the per-shard
// backend collectors qualified with a shard label (so same-named
// middleware families from different shards merge into distinct
// series), and the \shards status report.

// routerMetrics counts routing decisions. All fields are atomics; the
// router increments them on the dispatch path without extra locking.
type routerMetrics struct {
	statements atomic.Uint64 // every statement entering dispatch
	rejected   atomic.Uint64 // statements the analyzer refused to route
	single     atomic.Uint64 // single-shard routes
	scatter    atomic.Uint64 // cross-shard scatter-gather SELECTs
	broadcast  atomic.Uint64 // broadcasts (DDL, replicated writes, SET)

	perShard []shardCounters // index-aligned with backends
}

// shardCounters is one shard's share of the routed traffic.
type shardCounters struct {
	statements atomic.Uint64
}

// MetricsCollector returns the router's own collector: routing decision
// counters plus per-shard statement counts.
func (r *Router) MetricsCollector() obs.Collector {
	return obs.NewCollector("shard-router", func(f *obs.Feed) {
		m := &r.metrics
		f.Count("divsql_shard_statements_total",
			"Statements entering the shard router.", m.statements.Load())
		f.Count("divsql_shard_rejected_total",
			"Statements the router refused to route.", m.rejected.Load())
		f.Count("divsql_shard_single_total",
			"Statements routed to a single shard.", m.single.Load())
		f.Count("divsql_shard_scatter_total",
			"Cross-shard scatter-gather SELECTs.", m.scatter.Load())
		f.Count("divsql_shard_broadcast_total",
			"Statements broadcast to every shard.", m.broadcast.Load())
		f.Gauge("divsql_shard_shards",
			"Shards behind the router.", float64(len(r.backends)))
		for i := range m.perShard {
			f.Count("divsql_shard_routed_statements_total",
				"Statements executed on the shard (routing fan-out counts each shard).",
				m.perShard[i].statements.Load(), obs.L("shard", r.names[i]))
		}
	})
}

// backendCollectors is the optional interface a Backend implements to
// contribute labeled collectors (middleware.DiverseServer does).
type backendCollectors interface {
	MetricsCollectorsWith(extra ...obs.Label) []obs.Collector
}

// backendCollector is the single-collector fallback.
type backendCollector interface {
	MetricsCollector() obs.Collector
}

// MetricsCollectors returns the router collector plus every backend's
// collectors, each qualified with its shard label so that same-named
// families from different shards render as distinct label sets.
func (r *Router) MetricsCollectors() []obs.Collector {
	cs := []obs.Collector{r.MetricsCollector()}
	for i, b := range r.backends {
		label := obs.L("shard", r.names[i])
		switch x := b.(type) {
		case backendCollectors:
			cs = append(cs, x.MetricsCollectorsWith(label)...)
		case backendCollector:
			cs = append(cs, obs.Labeled(x.MetricsCollector(), label))
		}
	}
	return cs
}

// ShardStatus is one shard's introspection snapshot for \shards.
type ShardStatus struct {
	Name        string
	Statements  uint64
	Replicas    []string
	Quarantined []string
}

// replicaNamer / quarantineReporter are the optional backend interfaces
// feeding Status (middleware.DiverseServer implements both).
type replicaNamer interface{ ReplicaNames() []string }
type quarantineReporter interface{ QuarantinedReplicas() []string }

// Status snapshots every shard's replica fleet and quarantine state.
func (r *Router) Status() []ShardStatus {
	out := make([]ShardStatus, len(r.backends))
	for i, b := range r.backends {
		st := ShardStatus{
			Name:       r.names[i],
			Statements: r.metrics.perShard[i].statements.Load(),
		}
		if rn, ok := b.(replicaNamer); ok {
			st.Replicas = rn.ReplicaNames()
			sort.Strings(st.Replicas)
		}
		if qr, ok := b.(quarantineReporter); ok {
			st.Quarantined = qr.QuarantinedReplicas()
			sort.Strings(st.Quarantined)
		}
		out[i] = st
	}
	return out
}

// DescribeText renders Status for the CLI's \shards command.
func (r *Router) DescribeText() string {
	var b strings.Builder
	sts := r.Status()
	fmt.Fprintf(&b, "%d shard(s)\n", len(sts))
	for _, st := range sts {
		fmt.Fprintf(&b, "%s: %s statement(s)", st.Name, strconv.FormatUint(st.Statements, 10))
		if len(st.Replicas) > 0 {
			q := make(map[string]bool, len(st.Quarantined))
			for _, name := range st.Quarantined {
				q[name] = true
			}
			parts := make([]string, 0, len(st.Replicas))
			for _, name := range st.Replicas {
				if q[name] {
					parts = append(parts, name+" (quarantined)")
				} else {
					parts = append(parts, name)
				}
			}
			fmt.Fprintf(&b, ", replicas: %s", strings.Join(parts, ", "))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
