package shard

import (
	"fmt"
	"sync"
	"time"

	"divsql/internal/core"
	"divsql/internal/engine"
	"divsql/internal/server"
	"divsql/internal/sql/ast"
	"divsql/internal/sql/parser"
	"divsql/internal/sql/types"
)

// Session is one client's transaction scope across the shard fleet: one
// backend session per shard, opened eagerly (backend sessions are
// cheap), joined to a transaction lazily. Implements core.Session and
// core.PreparedExecutor.
type Session struct {
	r  *Router
	mu sync.Mutex // a session is one client; serialize its statements

	subs []core.Session // index-aligned with r.backends
	home int            // shard for statements with no routable reference

	inTxn    bool
	beginSQL string       // the client's BEGIN text, replayed on lazy joins
	touched  map[int]bool // shards the open transaction has reached
}

// OpenSession opens a session on every shard. Implements
// core.SessionExecutor.
func (r *Router) OpenSession() core.Session { return r.NewSession() }

// NewSession opens a session with its concrete type.
func (r *Router) NewSession() *Session {
	s := &Session{r: r, touched: make(map[int]bool)}
	for _, b := range r.backends {
		s.subs = append(s.subs, b.OpenSession())
	}
	r.mu.Lock()
	s.home = int(r.nextHome % uint64(len(r.backends)))
	r.nextHome++
	r.mu.Unlock()
	return s
}

// defaultSession backs the sessionless Exec/Prepare convenience.
func (r *Router) defaultSession() *Session {
	r.mu.RLock()
	def := r.def
	r.mu.RUnlock()
	if def != nil {
		return def
	}
	s := r.NewSession() // takes r.mu itself
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.def == nil {
		r.def = s
	}
	return r.def
}

// Exec executes one statement on the default session.
func (r *Router) Exec(sql string) (*engine.Result, time.Duration, error) {
	return r.defaultSession().Exec(sql)
}

// Prepare prepares one statement on the default session. Implements
// core.PreparedExecutor.
func (r *Router) Prepare(sql string) (core.Statement, error) {
	return r.defaultSession().Prepare(sql)
}

// Close rolls back the session's open transaction (on the shards it
// reached) and releases every per-shard session.
func (s *Session) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	for _, sub := range s.subs {
		if err := sub.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Exec routes and executes one SQL statement.
func (s *Session) Exec(sql string) (*engine.Result, time.Duration, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, err := parser.Parse(sql)
	if err != nil {
		// The router cannot classify what it cannot parse; the shards
		// share one parser, so the statement would fail there identically.
		return nil, server.BaseLatency, fmt.Errorf("syntax error: %w", err)
	}
	return s.dispatch(st, inlineExec(sql), nil)
}

// shardExec runs one already-routed statement on one shard — inline
// text or a per-shard prepared statement.
type shardExec interface {
	run(s *Session, shard int) (*engine.Result, time.Duration, error)
}

type inlineExec string

func (q inlineExec) run(s *Session, shard int) (*engine.Result, time.Duration, error) {
	return s.subs[shard].Exec(string(q))
}

// dispatch routes st and executes it through ex. Caller holds s.mu.
func (s *Session) dispatch(st ast.Statement, ex shardExec, args []types.Value) (*engine.Result, time.Duration, error) {
	r := s.r
	r.metrics.statements.Add(1)
	rt, err := r.analyze(st, args, s.home)
	if err != nil {
		r.metrics.rejected.Add(1)
		return nil, server.BaseLatency, err
	}
	switch rt.kind {
	case routeTxn:
		return s.execTxnControl(st, ex)
	case routeSetTxn:
		return s.execBroadcast(st, ex, false)
	case routeSingle:
		r.metrics.single.Add(1)
		res, lat, err := s.execOn(rt.shard, ex)
		if err == nil {
			r.noteDDL(st)
		}
		return res, lat, err
	case routeBroadcast:
		return s.execBroadcast(st, ex, true)
	case routeScatter:
		r.metrics.scatter.Add(1)
		sel, _ := st.(*ast.Select)
		return s.execScatter(sel, ex)
	default:
		return nil, 0, fmt.Errorf("shard: unroutable statement %T", st)
	}
}

// execOn runs on one shard, joining it to the open transaction first if
// needed.
func (s *Session) execOn(shard int, ex shardExec) (*engine.Result, time.Duration, error) {
	if err := s.joinTxn(shard); err != nil {
		return nil, server.BaseLatency, err
	}
	s.r.metrics.perShard[shard].statements.Add(1)
	return ex.run(s, shard)
}

// joinTxn lazily propagates the session's open BEGIN to a shard the
// transaction is reaching for the first time.
func (s *Session) joinTxn(shard int) error {
	if !s.inTxn || s.touched[shard] {
		return nil
	}
	if _, _, err := s.subs[shard].Exec(s.beginSQL); err != nil {
		return fmt.Errorf("shard %d: propagating %s: %w", shard, s.beginSQL, err)
	}
	s.touched[shard] = true
	return nil
}

// execTxnControl handles BEGIN/COMMIT/ROLLBACK.
//
// BEGIN is not sent anywhere: the session only records that a
// transaction is open, and shards join it on first contact (joinTxn).
// The synthesized result matches the engine's (*Result{Kind:
// ResultDDL}, base latency), so lockstep comparisons against an
// unsharded oracle agree. A second BEGIN routes to a joined shard (or
// home) so the engine's own "transaction already in progress" error
// surfaces. COMMIT/ROLLBACK visit exactly the joined shards in
// ascending order.
func (s *Session) execTxnControl(st ast.Statement, ex shardExec) (*engine.Result, time.Duration, error) {
	switch st.(type) {
	case *ast.Begin:
		if s.inTxn {
			return s.execOn(s.firstTouched(), ex)
		}
		s.inTxn = true
		s.beginSQL = exSQL(ex)
		return &engine.Result{Kind: engine.ResultDDL}, server.BaseLatency, nil
	default: // Commit, Rollback
		if !s.inTxn {
			// No transaction: forward for the engine's authentic outcome.
			return ex.run(s, s.home)
		}
		targets := s.touchedAscending()
		s.inTxn = false
		s.touched = make(map[int]bool)
		if len(targets) == 0 {
			// Opened but never touched a shard: nothing to finish.
			return &engine.Result{Kind: engine.ResultDDL}, server.BaseLatency, nil
		}
		var (
			res      *engine.Result
			maxLat   time.Duration
			firstErr error
		)
		for _, shard := range targets {
			rr, lat, err := ex.run(s, shard)
			if lat > maxLat {
				maxLat = lat
			}
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("shard %d: %w", shard, err)
				}
				// The session's transaction record is already cleared, so
				// a COMMIT that failed leaving the backend transaction
				// open would have later autocommit-style statements
				// silently execute inside it. Best-effort ROLLBACK puts
				// the backend session in a known state either way.
				if _, isCommit := st.(*ast.Commit); isCommit {
					_, _, _ = s.subs[shard].Exec("ROLLBACK")
				}
				continue
			}
			res = rr
		}
		if firstErr != nil {
			return nil, maxLat, firstErr
		}
		return res, maxLat, nil
	}
}

// execBroadcast runs a statement on every shard in ascending order,
// summing affected counts and reporting the slowest shard's latency
// (shards execute back to back, but each models an independent replica
// set — the deployment's wall-clock cost is the slowest one's).
func (s *Session) execBroadcast(st ast.Statement, ex shardExec, write bool) (*engine.Result, time.Duration, error) {
	s.r.metrics.broadcast.Add(1)
	var (
		res      *engine.Result
		affected int64
		maxLat   time.Duration
	)
	for shard := range s.subs {
		rr, lat, err := s.execOn(shard, ex)
		if lat > maxLat {
			maxLat = lat
		}
		if err != nil {
			// Ascending-order abort: shards before this one have applied
			// the statement. The shards share engine semantics, so a
			// genuine error (bad DDL, constraint) fails on shard 0 before
			// any state changes; divergence past shard 0 indicates a
			// harness bug and is surfaced, not masked.
			return nil, maxLat, fmt.Errorf("shard %d: %w", shard, err)
		}
		res = rr
		if rr != nil {
			affected += rr.Affected
		}
	}
	if write && res != nil {
		cp := *res
		cp.Affected = affected
		res = &cp
	}
	if st != nil {
		s.r.noteDDL(st)
	}
	return res, maxLat, nil
}

// execScatter fans a cross-shard SELECT out to every shard in parallel
// and merges the fragments. Caller holds s.mu. Inside a transaction the
// BEGIN joins happen sequentially first (they are writes on each
// shard), then the reads overlap.
func (s *Session) execScatter(sel *ast.Select, ex shardExec) (*engine.Result, time.Duration, error) {
	n := len(s.subs)
	for shard := 0; shard < n; shard++ {
		if err := s.joinTxn(shard); err != nil {
			return nil, server.BaseLatency, err
		}
	}
	results := make([]*engine.Result, n)
	lats := make([]time.Duration, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for shard := 0; shard < n; shard++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			s.r.metrics.perShard[shard].statements.Add(1)
			results[shard], lats[shard], errs[shard] = ex.run(s, shard)
		}(shard)
	}
	wg.Wait()
	var maxLat time.Duration
	for _, lat := range lats {
		if lat > maxLat {
			maxLat = lat
		}
	}
	for shard, err := range errs {
		if err != nil {
			return nil, maxLat, fmt.Errorf("shard %d: %w", shard, err)
		}
	}
	res, err := mergeScatter(sel, results)
	if err != nil {
		return nil, maxLat, err
	}
	return res, maxLat, nil
}

// firstTouched returns the lowest shard already joined to the open
// transaction, or the session's home shard when none is.
func (s *Session) firstTouched() int {
	best := -1
	for shard := range s.touched {
		if best < 0 || shard < best {
			best = shard
		}
	}
	if best < 0 {
		return s.home
	}
	return best
}

// touchedAscending lists the joined shards in ascending order.
func (s *Session) touchedAscending() []int {
	out := make([]int, 0, len(s.touched))
	for shard := range s.touched {
		out = append(out, shard)
	}
	for i := 1; i < len(out); i++ { // insertion sort; the list is tiny
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// exSQL recovers the statement text of an executor for BEGIN replay.
func exSQL(ex shardExec) string {
	switch x := ex.(type) {
	case inlineExec:
		return string(x)
	case *stmtExec:
		return x.st.sql
	}
	return "BEGIN TRANSACTION"
}
