// Package study implements the paper's experimental procedure: run every
// bug script on every server (translating dialects first), classify each
// outcome observationally against a pristine oracle, and aggregate the
// classifications into the paper's Tables 1-4 and headline statistics.
package study

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"divsql/internal/core"
	"divsql/internal/corpus"
	"divsql/internal/dialect"
	"divsql/internal/fault"
	"divsql/internal/server"
	"divsql/internal/translate"
)

// PerfThreshold is the extra latency (relative to the oracle) beyond
// which a run is classified as a performance failure.
const PerfThreshold = time.Second

// Run is the full record of one (bug, server) execution.
type Run struct {
	Bug    string
	Server dialect.ServerName
	Class  core.Classification
	// Stmts are the per-statement outcomes (empty when the script could
	// not be translated). Used for pairwise detectability analysis.
	Stmts []server.StmtOutcome
	// OracleStmts are the oracle's outcomes on the same script.
	OracleStmts []server.StmtOutcome
}

// Study runs the bug corpus across the simulated servers.
type Study struct {
	// Bugs is the corpus (corpus.All() by default).
	Bugs []corpus.Bug
	// Faults is the full injected-fault set.
	Faults []fault.Fault
	// Stress enables the stressful environment in which Heisenbugs can
	// manifest (Section 3.2's follow-up experiment).
	Stress bool
}

// New returns a study over the full calibrated corpus.
func New() *Study {
	return &Study{Bugs: corpus.All(), Faults: corpus.AllFaults()}
}

// Result holds every run of the study, indexed by bug and server.
type Result struct {
	Bugs []corpus.Bug
	// Runs[bugID][server] is the classified run.
	Runs map[string]map[dialect.ServerName]*Run
}

// Run executes the full study: every bug, translated and executed on
// every server, classified against the pristine oracle. One server per
// target (and one oracle) is built up front and reset to pristine state
// between bugs — the state-transfer machinery makes the reset cheap, and
// rebuilding dialect tables plus the fault registry 181×4 times used to
// dominate the study's runtime.
func (s *Study) Run() (*Result, error) {
	res := &Result{
		Bugs: s.Bugs,
		Runs: make(map[string]map[dialect.ServerName]*Run, len(s.Bugs)),
	}
	servers := make(map[dialect.ServerName]*server.Server, len(dialect.AllServers))
	for _, target := range dialect.AllServers {
		srv, err := server.New(target, s.Faults)
		if err != nil {
			return nil, err
		}
		srv.SetStress(s.Stress)
		servers[target] = srv
	}
	orc := server.NewOracle()
	for i := range s.Bugs {
		bug := &s.Bugs[i]
		perServer := make(map[dialect.ServerName]*Run, len(dialect.AllServers))
		for _, target := range dialect.AllServers {
			run, err := s.runOne(bug, target, servers[target], orc)
			if err != nil {
				return nil, fmt.Errorf("bug %s on %s: %w", bug.ID, target, err)
			}
			perServer[target] = run
		}
		res.Runs[bug.ID] = perServer
	}
	return res, nil
}

// runOne executes one bug on one server. The script is translated when
// the target differs from the reporting server; translation failures
// produce the CannotRun/FurtherWork classifications. srv and orc are
// reset to pristine state before the replay.
func (s *Study) runOne(bug *corpus.Bug, target dialect.ServerName, srv, orc *server.Server) (*Run, error) {
	run := &Run{Bug: bug.ID, Server: target}
	script := bug.Script
	if target != bug.Server {
		translated, err := translate.Script(script, bug.Server, target)
		var miss *translate.FunctionalityMissingError
		var further *translate.FurtherWorkError
		switch {
		case errors.As(err, &miss):
			run.Class = core.Classification{Status: core.StatusCannotRun, Detail: miss.Detail}
			return run, nil
		case errors.As(err, &further):
			run.Class = core.Classification{Status: core.StatusFurtherWork, Detail: further.Detail}
			return run, nil
		case err != nil:
			return nil, err
		}
		script = translated
	}

	srv.Reset()
	orc.Reset()

	src, err := ScriptSource(script)
	if err != nil {
		return nil, fmt.Errorf("script: %w", err)
	}
	run.Class, run.Stmts, run.OracleStmts = RunPair(srv, orc, src)
	return run, nil
}

// Classify derives the paper's classification of one run purely from the
// observable behaviour of the server compared with the oracle:
//
//   - an engine crash is an Engine Crash failure (self-evident);
//   - an error message where the oracle succeeds is self-evident — an
//     Incorrect Result failure, or Other for connection aborts;
//   - visibly wrong query output with no error is a non-self-evident
//     Incorrect Result failure (this includes query output produced by
//     statements the oracle rejects);
//   - silently accepting a non-query statement the oracle rejects,
//     without any later output deviation, is a non-self-evident Other
//     failure;
//   - a correct run that exceeds the oracle's time by PerfThreshold is a
//     Performance failure (self-evident).
func Classify(sOut, oOut []server.StmtOutcome) core.Classification {
	cls, _ := ClassifyIndexed(sOut, oOut)
	return cls
}

// ClassifyIndexed is Classify plus the index of the statement on which
// the run first deviated from the oracle (-1 when no failure). The index
// is what fingerprint-based failure deduplication keys on.
func ClassifyIndexed(sOut, oOut []server.StmtOutcome) (core.Classification, int) {
	var dataEvent, acceptEvent, perfEvent bool
	var dataDetail, acceptDetail string
	dataIdx, acceptIdx, perfIdx := -1, -1, -1
	for i, so := range sOut {
		if so.Crashed {
			return core.Classification{
				Status: core.StatusFailure, Type: core.EngineCrash, SelfEvident: true,
				Detail: "engine crashed on: " + so.SQL,
			}, i
		}
		if i >= len(oOut) {
			break
		}
		oo := oOut[i]
		switch {
		case so.Err != nil && oo.Err == nil:
			typ := core.IncorrectResult
			if errors.Is(so.Err, server.ErrConnAborted) {
				typ = core.OtherFailure
			}
			return core.Classification{
				Status: core.StatusFailure, Type: typ, SelfEvident: true,
				Detail: so.Err.Error(),
			}, i
		case so.Err == nil && oo.Err != nil:
			if isSelect(so.SQL) {
				if !dataEvent {
					dataIdx = i
					dataDetail = "query succeeded where it should have failed"
				}
				dataEvent = true
			} else {
				if !acceptEvent {
					acceptIdx = i
					acceptDetail = "invalid statement accepted: " + oo.Err.Error()
				}
				acceptEvent = true
			}
		case so.Err == nil && oo.Err == nil:
			if isSelect(so.SQL) {
				opts := core.DefaultCompareOptions()
				opts.OrderSensitive = hasOrderBy(so.SQL)
				if d := core.Diff(so.Res, oo.Res, opts); d != "" {
					if !dataEvent {
						dataIdx = i
						dataDetail = d
					}
					dataEvent = true
				}
			}
			if so.Latency-oo.Latency >= PerfThreshold {
				if !perfEvent {
					perfIdx = i
				}
				perfEvent = true
			}
		}
	}
	switch {
	case dataEvent:
		return core.Classification{Status: core.StatusFailure, Type: core.IncorrectResult, Detail: dataDetail}, dataIdx
	case acceptEvent:
		return core.Classification{Status: core.StatusFailure, Type: core.OtherFailure, Detail: acceptDetail}, acceptIdx
	case perfEvent:
		return core.Classification{
			Status: core.StatusFailure, Type: core.Performance, SelfEvident: true,
			Detail: "execution time exceeded acceptance threshold",
		}, perfIdx
	default:
		return core.Classification{Status: core.StatusNoFailure}, -1
	}
}

func isSelect(sql string) bool {
	return strings.HasPrefix(strings.ToUpper(strings.TrimSpace(sql)), "SELECT")
}

func hasOrderBy(sql string) bool {
	return strings.Contains(strings.ToUpper(sql), "ORDER BY")
}

// identicalFailure reports whether two failing runs produced
// indistinguishable observable behaviour (the paper's non-detectable
// case): same per-statement error pattern and identical query outputs.
func identicalFailure(a, b *Run) bool {
	if len(a.Stmts) != len(b.Stmts) {
		return false
	}
	opts := core.DefaultCompareOptions()
	for i := range a.Stmts {
		sa, sb := a.Stmts[i], b.Stmts[i]
		if (sa.Err != nil) != (sb.Err != nil) {
			return false
		}
		if sa.Err != nil {
			continue
		}
		if isSelect(sa.SQL) {
			o := opts
			o.OrderSensitive = hasOrderBy(sa.SQL)
			if !core.Equal(sa.Res, sb.Res, o) {
				return false
			}
		}
	}
	return true
}
