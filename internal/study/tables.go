package study

import (
	"fmt"
	"sort"
	"strings"

	"divsql/internal/core"
	"divsql/internal/dialect"
)

// ---------------------------------------------------------------------------
// Table 1 — results of running the bug scripts on all four servers

// Table1Cell is one column of the paper's Table 1: the outcome counts of
// running one reporting-server's bugs on one target server.
type Table1Cell struct {
	Reported dialect.ServerName
	Target   dialect.ServerName

	Total       int
	CannotRun   int
	FurtherWork int
	TotalRun    int
	NoFailure   int
	Failure     int

	Perf       int
	Crash      int
	IRSelf     int
	IRNonSelf  int
	OtherSelf  int
	OtherNSelf int
}

// Table1 is the full table: for each reporting server, the outcome of
// its bugs on each of the four servers (own server first, as in the
// paper's grey columns).
type Table1 struct {
	Cells map[dialect.ServerName]map[dialect.ServerName]*Table1Cell
}

// columnOrder reproduces the paper's column order per reporting server.
func columnOrder(reported dialect.ServerName) []dialect.ServerName {
	switch reported {
	case dialect.IB:
		return []dialect.ServerName{dialect.IB, dialect.PG, dialect.OR, dialect.MS}
	case dialect.PG:
		return []dialect.ServerName{dialect.PG, dialect.IB, dialect.OR, dialect.MS}
	case dialect.OR:
		return []dialect.ServerName{dialect.OR, dialect.IB, dialect.MS, dialect.PG}
	default:
		return []dialect.ServerName{dialect.MS, dialect.IB, dialect.OR, dialect.PG}
	}
}

// BuildTable1 aggregates the study result into Table 1.
func (r *Result) BuildTable1() *Table1 {
	t := &Table1{Cells: make(map[dialect.ServerName]map[dialect.ServerName]*Table1Cell)}
	for _, rep := range dialect.AllServers {
		t.Cells[rep] = make(map[dialect.ServerName]*Table1Cell)
		for _, tgt := range dialect.AllServers {
			t.Cells[rep][tgt] = &Table1Cell{Reported: rep, Target: tgt}
		}
	}
	for i := range r.Bugs {
		bug := &r.Bugs[i]
		for tgt, run := range r.Runs[bug.ID] {
			c := t.Cells[bug.Server][tgt]
			c.Total++
			switch run.Class.Status {
			case core.StatusCannotRun:
				c.CannotRun++
			case core.StatusFurtherWork:
				c.FurtherWork++
			case core.StatusNoFailure:
				c.TotalRun++
				c.NoFailure++
			case core.StatusFailure:
				c.TotalRun++
				c.Failure++
				switch run.Class.Type {
				case core.Performance:
					c.Perf++
				case core.EngineCrash:
					c.Crash++
				case core.IncorrectResult:
					if run.Class.SelfEvident {
						c.IRSelf++
					} else {
						c.IRNonSelf++
					}
				case core.OtherFailure:
					if run.Class.SelfEvident {
						c.OtherSelf++
					} else {
						c.OtherNSelf++
					}
				}
			}
		}
	}
	return t
}

// Render prints Table 1 in the paper's layout.
func (t *Table1) Render() string {
	var b strings.Builder
	b.WriteString("Table 1. Results of running the bug scripts on all four servers\n")
	header := []string{"row"}
	var cells []*Table1Cell
	for _, rep := range dialect.AllServers {
		for _, tgt := range columnOrder(rep) {
			header = append(header, fmt.Sprintf("%s>%s", rep, tgt))
			cells = append(cells, t.Cells[rep][tgt])
		}
	}
	rows := []struct {
		name string
		get  func(c *Table1Cell) string
	}{
		{"Total bug scripts", func(c *Table1Cell) string { return itoa(c.Total) }},
		{"Cannot be run", func(c *Table1Cell) string {
			if c.Reported == c.Target {
				return "n/a"
			}
			return itoa(c.CannotRun)
		}},
		{"Further work", func(c *Table1Cell) string {
			if c.Reported == c.Target {
				return "n/a"
			}
			return itoa(c.FurtherWork)
		}},
		{"Total run", func(c *Table1Cell) string { return itoa(c.TotalRun) }},
		{"No failure", func(c *Table1Cell) string { return itoa(c.NoFailure) }},
		{"Failure observed", func(c *Table1Cell) string { return itoa(c.Failure) }},
		{"Poor performance", func(c *Table1Cell) string { return itoa(c.Perf) }},
		{"Engine crash", func(c *Table1Cell) string { return itoa(c.Crash) }},
		{"Incorrect, self-evident", func(c *Table1Cell) string { return itoa(c.IRSelf) }},
		{"Incorrect, non-self-evident", func(c *Table1Cell) string { return itoa(c.IRNonSelf) }},
		{"Other, self-evident", func(c *Table1Cell) string { return itoa(c.OtherSelf) }},
		{"Other, non-self-evident", func(c *Table1Cell) string { return itoa(c.OtherNSelf) }},
	}
	writeRow(&b, header, 28)
	for _, row := range rows {
		line := []string{row.name}
		for _, c := range cells {
			line = append(line, row.get(c))
		}
		writeRow(&b, line, 28)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Table 2 — server combinations

// Combo identifies a set of servers a bug could be run on, rendered in
// the paper's naming ("IB, PG, OR, MS", "IB, PG only", "IB only", ...).
type Combo string

// comboOf derives the combination from the measured run statuses.
func comboOf(runs map[dialect.ServerName]*Run) Combo {
	var present []string
	for _, s := range dialect.AllServers {
		if run, ok := runs[s]; ok {
			if run.Class.Status == core.StatusNoFailure || run.Class.Status == core.StatusFailure {
				present = append(present, string(s))
			}
		}
	}
	return Combo(strings.Join(present, "+"))
}

// ComboOrder is the paper's Table 2 column order.
var ComboOrder = []Combo{
	"IB+PG+OR+MS", "IB+PG+OR", "IB+PG+MS", "IB+OR+MS", "PG+OR+MS",
	"IB+PG", "IB+MS", "IB+OR", "PG+OR", "PG+MS", "OR+MS",
	"IB", "PG", "MS", "OR",
}

// Table2Cell counts outcomes of one server combination.
type Table2Cell struct {
	Combo       Combo
	Total       int
	NoFailure   int
	FailOne     int
	FailTwo     int
	FailMore    int // the paper observed none; tracked to verify
	FailTwoBugs []string
}

// Table2 aggregates bugs by the combination of servers they ran on.
type Table2 struct {
	Cells map[Combo]*Table2Cell
}

// BuildTable2 aggregates the study result into Table 2.
func (r *Result) BuildTable2() *Table2 {
	t := &Table2{Cells: make(map[Combo]*Table2Cell)}
	for _, c := range ComboOrder {
		t.Cells[c] = &Table2Cell{Combo: c}
	}
	for i := range r.Bugs {
		bug := &r.Bugs[i]
		runs := r.Runs[bug.ID]
		combo := comboOf(runs)
		cell, ok := t.Cells[combo]
		if !ok {
			cell = &Table2Cell{Combo: combo}
			t.Cells[combo] = cell
		}
		cell.Total++
		failures := 0
		for _, run := range runs {
			if run.Class.IsFailure() {
				failures++
			}
		}
		switch failures {
		case 0:
			cell.NoFailure++
		case 1:
			cell.FailOne++
		case 2:
			cell.FailTwo++
			cell.FailTwoBugs = append(cell.FailTwoBugs, bug.ID)
		default:
			cell.FailMore++
		}
	}
	return t
}

// MaxCoincident returns the largest number of servers any single bug
// failed (the paper: "None of the bugs caused a failure in more than two
// servers").
func (r *Result) MaxCoincident() int {
	maxFail := 0
	for _, runs := range r.Runs {
		n := 0
		for _, run := range runs {
			if run.Class.IsFailure() {
				n++
			}
		}
		if n > maxFail {
			maxFail = n
		}
	}
	return maxFail
}

// Render prints Table 2 in the paper's layout.
func (t *Table2) Render() string {
	var b strings.Builder
	b.WriteString("Table 2. Bug scripts run and effects on different server combinations\n")
	header := []string{"row"}
	var cells []*Table2Cell
	for _, c := range ComboOrder {
		header = append(header, string(c))
		cells = append(cells, t.Cells[c])
	}
	writeRow(&b, header, 26)
	rows := []struct {
		name string
		get  func(c *Table2Cell) string
	}{
		{"Total bug scripts run", func(c *Table2Cell) string { return itoa(c.Total) }},
		{"Failure in no server", func(c *Table2Cell) string { return itoa(c.NoFailure) }},
		{"Failure in one server", func(c *Table2Cell) string { return itoa(c.FailOne) }},
		{"Failure in two servers", func(c *Table2Cell) string {
			if len(string(c.Combo)) <= 2 {
				return "n/a"
			}
			return itoa(c.FailTwo)
		}},
	}
	for _, row := range rows {
		line := []string{row.name}
		for _, c := range cells {
			line = append(line, row.get(c))
		}
		writeRow(&b, line, 26)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Table 3 — two-version combinations

// Pair is an unordered server pair.
type Pair struct{ A, B dialect.ServerName }

func (p Pair) String() string { return string(p.A) + "+" + string(p.B) }

// PairOrder is the paper's Table 3 row order.
var PairOrder = []Pair{
	{dialect.IB, dialect.PG}, {dialect.IB, dialect.OR}, {dialect.IB, dialect.MS},
	{dialect.PG, dialect.OR}, {dialect.PG, dialect.MS}, {dialect.OR, dialect.MS},
}

// Table3Row summarizes one two-version configuration.
type Table3Row struct {
	Pair            Pair
	TotalRun        int
	FailureObserved int
	OneSelfEvident  int
	OneNonSelf      int
	NonDetectable   int
	BothSelf        int
	BothNonSelf     int
	// NonDetectableBugs lists the bugs behind the non-detectable count.
	NonDetectableBugs []string
}

// Table3 is the two-version analysis.
type Table3 struct {
	Rows map[Pair]*Table3Row
}

// BuildTable3 aggregates the study result into Table 3.
func (r *Result) BuildTable3() *Table3 {
	t := &Table3{Rows: make(map[Pair]*Table3Row)}
	for _, p := range PairOrder {
		t.Rows[p] = &Table3Row{Pair: p}
	}
	for i := range r.Bugs {
		bug := &r.Bugs[i]
		runs := r.Runs[bug.ID]
		for _, p := range PairOrder {
			ra, rb := runs[p.A], runs[p.B]
			if ra == nil || rb == nil {
				continue
			}
			ranA := ra.Class.Status == core.StatusNoFailure || ra.Class.Status == core.StatusFailure
			ranB := rb.Class.Status == core.StatusNoFailure || rb.Class.Status == core.StatusFailure
			if !ranA || !ranB {
				continue
			}
			row := t.Rows[p]
			row.TotalRun++
			failA, failB := ra.Class.IsFailure(), rb.Class.IsFailure()
			switch {
			case failA && failB:
				row.FailureObserved++
				switch {
				case ra.Class.SelfEvident || rb.Class.SelfEvident:
					row.BothSelf++
				case identicalFailure(ra, rb):
					row.NonDetectable++
					row.NonDetectableBugs = append(row.NonDetectableBugs, bug.ID)
				default:
					row.BothNonSelf++
				}
			case failA || failB:
				row.FailureObserved++
				failing := ra
				if failB {
					failing = rb
				}
				if failing.Class.SelfEvident {
					row.OneSelfEvident++
				} else {
					row.OneNonSelf++
				}
			}
		}
	}
	return t
}

// Render prints Table 3 in the paper's layout.
func (t *Table3) Render() string {
	var b strings.Builder
	b.WriteString("Table 3. Summary of results for the two-version combinations\n")
	writeRow(&b, []string{"pair", "run", "failure", "1of2 SE", "1of2 NSE", "non-detect", "both SE", "both NSE"}, 12)
	for _, p := range PairOrder {
		row := t.Rows[p]
		writeRow(&b, []string{
			p.String(), itoa(row.TotalRun), itoa(row.FailureObserved),
			itoa(row.OneSelfEvident), itoa(row.OneNonSelf),
			itoa(row.NonDetectable), itoa(row.BothSelf), itoa(row.BothNonSelf),
		}, 12)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Table 4 — coincident-failure matrix

// Table4 is the matrix of bugs reported for one server (row) that caused
// a failure in another server (column).
type Table4 struct {
	// Counts[reported][failed] counts cross-failures.
	Counts map[dialect.ServerName]map[dialect.ServerName]int
	// BugIDs[reported][failed] lists the bugs.
	BugIDs map[dialect.ServerName]map[dialect.ServerName][]string
}

// BuildTable4 aggregates the study result into Table 4.
func (r *Result) BuildTable4() *Table4 {
	t := &Table4{
		Counts: make(map[dialect.ServerName]map[dialect.ServerName]int),
		BugIDs: make(map[dialect.ServerName]map[dialect.ServerName][]string),
	}
	for _, s := range dialect.AllServers {
		t.Counts[s] = make(map[dialect.ServerName]int)
		t.BugIDs[s] = make(map[dialect.ServerName][]string)
	}
	for i := range r.Bugs {
		bug := &r.Bugs[i]
		for tgt, run := range r.Runs[bug.ID] {
			if tgt == bug.Server {
				continue
			}
			if run.Class.IsFailure() {
				t.Counts[bug.Server][tgt]++
				t.BugIDs[bug.Server][tgt] = append(t.BugIDs[bug.Server][tgt], bug.ID)
			}
		}
	}
	for _, m := range t.BugIDs {
		for _, ids := range m {
			sort.Strings(ids)
		}
	}
	return t
}

// Render prints Table 4 in the paper's layout.
func (t *Table4) Render() string {
	var b strings.Builder
	b.WriteString("Table 4. Bugs causing coincident failures (row: reported for; column: fails in)\n")
	header := []string{""}
	for _, s := range dialect.AllServers {
		header = append(header, string(s))
	}
	writeRow(&b, header, 30)
	for _, rep := range dialect.AllServers {
		line := []string{string(rep)}
		for _, tgt := range dialect.AllServers {
			if rep == tgt {
				line = append(line, "N/A")
				continue
			}
			n := t.Counts[rep][tgt]
			if n == 0 {
				line = append(line, "0")
			} else {
				line = append(line, fmt.Sprintf("%d (%s)", n, strings.Join(t.BugIDs[rep][tgt], ",")))
			}
		}
		writeRow(&b, line, 30)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Headline statistics (Section 7)

// Headline are the summary statistics quoted in the paper's conclusions.
type Headline struct {
	OwnFailures      int
	IncorrectResults int
	Crashes          int
	IncorrectPct     float64
	CrashPct         float64
	MaxCoincident    int
	CoincidentBugs   int
	NonDetectable    int
}

// BuildHeadline computes the headline statistics.
func (r *Result) BuildHeadline() Headline {
	var h Headline
	for i := range r.Bugs {
		bug := &r.Bugs[i]
		run := r.Runs[bug.ID][bug.Server]
		if run == nil || !run.Class.IsFailure() {
			continue
		}
		h.OwnFailures++
		switch run.Class.Type {
		case core.IncorrectResult:
			h.IncorrectResults++
		case core.EngineCrash:
			h.Crashes++
		}
	}
	if h.OwnFailures > 0 {
		h.IncorrectPct = 100 * float64(h.IncorrectResults) / float64(h.OwnFailures)
		h.CrashPct = 100 * float64(h.Crashes) / float64(h.OwnFailures)
	}
	h.MaxCoincident = r.MaxCoincident()
	t2 := r.BuildTable2()
	for _, c := range t2.Cells {
		h.CoincidentBugs += c.FailTwo
	}
	t3 := r.BuildTable3()
	for _, row := range t3.Rows {
		h.NonDetectable += row.NonDetectable
	}
	return h
}

// Render prints the headline statistics.
func (h Headline) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Failures on the reporting server:       %d\n", h.OwnFailures)
	fmt.Fprintf(&b, "  incorrect-result failures:            %d (%.1f%%)\n", h.IncorrectResults, h.IncorrectPct)
	fmt.Fprintf(&b, "  engine crashes:                       %d (%.1f%%)\n", h.Crashes, h.CrashPct)
	fmt.Fprintf(&b, "Bugs causing coincident (2-server) failures: %d\n", h.CoincidentBugs)
	fmt.Fprintf(&b, "Most servers failed by any single bug:  %d\n", h.MaxCoincident)
	fmt.Fprintf(&b, "Non-detectable coincident failures:     %d\n", h.NonDetectable)
	return b.String()
}

// ---------------------------------------------------------------------------
// helpers

func itoa(n int) string { return fmt.Sprintf("%d", n) }

func writeRow(b *strings.Builder, cells []string, firstWidth int) {
	for i, c := range cells {
		if i == 0 {
			fmt.Fprintf(b, "%-*s", firstWidth, c)
		} else {
			fmt.Fprintf(b, " %10s", c)
		}
	}
	b.WriteByte('\n')
}
