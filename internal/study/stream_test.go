package study

import (
	"testing"

	"divsql/internal/corpus"
	"divsql/internal/dialect"
	"divsql/internal/server"
)

func TestScriptSourceMatchesExecScript(t *testing.T) {
	// The stream path must be observationally identical to the legacy
	// whole-script path for every corpus script on its own server.
	for _, bug := range corpus.All()[:20] {
		srvA, err := server.New(bug.Server, bug.Faults)
		if err != nil {
			t.Fatal(err)
		}
		legacy, err := srvA.ExecScript(bug.Script)
		if err != nil {
			t.Fatalf("%s: %v", bug.ID, err)
		}
		srvB, err := server.New(bug.Server, bug.Faults)
		if err != nil {
			t.Fatal(err)
		}
		src, err := ScriptSource(bug.Script)
		if err != nil {
			t.Fatalf("%s: %v", bug.ID, err)
		}
		streamed := RunSource(srvB, src)
		if len(streamed) != len(legacy) {
			t.Fatalf("%s: stream ran %d statements, script path %d", bug.ID, len(streamed), len(legacy))
		}
		for i := range streamed {
			if (streamed[i].Err != nil) != (legacy[i].Err != nil) ||
				streamed[i].Crashed != legacy[i].Crashed {
				t.Errorf("%s stmt %d: stream (%v,%v) vs script (%v,%v)",
					bug.ID, i, streamed[i].Err, streamed[i].Crashed, legacy[i].Err, legacy[i].Crashed)
			}
		}
	}
}

func TestRunPairClassifiesLikeStudy(t *testing.T) {
	res, err := New().Run()
	if err != nil {
		t.Fatal(err)
	}
	// Spot-check a handful of bugs: re-running through RunPair must give
	// the same classification the full study recorded.
	checked := 0
	for _, bug := range corpus.All() {
		if checked >= 10 {
			break
		}
		run := res.Runs[bug.ID][bug.Server]
		if run == nil {
			continue
		}
		srv, err := server.New(bug.Server, corpus.AllFaults())
		if err != nil {
			t.Fatal(err)
		}
		src, err := ScriptSource(bug.Script)
		if err != nil {
			t.Fatal(err)
		}
		cls, _, _ := RunPair(srv, server.NewOracle(), src)
		if cls.Status != run.Class.Status || cls.Type != run.Class.Type {
			t.Errorf("%s: RunPair %v/%v, study %v/%v", bug.ID, cls.Status, cls.Type, run.Class.Status, run.Class.Type)
		}
		checked++
	}
}

func TestDedupFailuresCollapsesSharedRegions(t *testing.T) {
	res, err := New().Run()
	if err != nil {
		t.Fatal(err)
	}
	groups := res.DedupFailures()
	for _, s := range dialect.AllServers {
		raw := 0
		for _, g := range groups[s] {
			raw += len(g.Bugs)
			if len(g.Bugs) == 0 {
				t.Errorf("%s: empty failure group %q", s, g.Fingerprint)
			}
		}
		// Every failing run must be accounted for exactly once.
		failing := 0
		for _, bug := range res.Bugs {
			run := res.Runs[bug.ID][s]
			if run != nil && run.Class.IsFailure() {
				failing++
			}
		}
		if raw != failing {
			t.Errorf("%s: dedup covers %d runs, study recorded %d failures", s, raw, failing)
		}
	}
	if out := res.RenderDedup(); len(out) == 0 {
		t.Error("RenderDedup returned nothing")
	}
}

func TestDedupCollapsesOneBugTriggeredTwice(t *testing.T) {
	// Two scripts exercising the same fault region (same table, same
	// statement shape) must collapse into one failure group: the paper
	// counts bugs, not triggerings.
	base := corpus.All()
	var proto *corpus.Bug
	for i := range base {
		b := &base[i]
		if b.Server == dialect.IB && len(b.Faults) > 0 &&
			b.Expected[dialect.IB].Status == base[i].Expected[dialect.IB].Status && b.RunsOn(dialect.IB) {
			proto = b
			break
		}
	}
	if proto == nil {
		t.Skip("no fault-carrying IB bug in corpus")
	}
	dup := *proto
	dup.ID = proto.ID + "-dup"
	s := &Study{Bugs: []corpus.Bug{*proto, dup}, Faults: proto.Faults}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	runA := res.Runs[proto.ID][dialect.IB]
	if runA == nil || !runA.Class.IsFailure() {
		t.Skipf("prototype bug %s did not fail on its own server in isolation", proto.ID)
	}
	groups := res.DedupFailures()[dialect.IB]
	if len(groups) != 1 {
		t.Fatalf("got %d groups, want 1: %+v", len(groups), groups)
	}
	if len(groups[0].Bugs) != 2 {
		t.Errorf("group must contain both scripts, got %v", groups[0].Bugs)
	}
}

func TestFailureFingerprintOnNonFailure(t *testing.T) {
	if _, ok := (&Run{}).FailureFingerprint(); ok {
		t.Error("non-failing run must not produce a fingerprint")
	}
}
