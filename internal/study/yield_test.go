package study

import (
	"strings"
	"testing"

	"divsql/internal/qgen"
)

// Yield stats must be internally consistent with the study's own
// classification and dedup machinery.
func TestBuildYield(t *testing.T) {
	res, err := New().Run()
	if err != nil {
		t.Fatal(err)
	}
	yields := res.BuildYield()
	if len(yields) != 4 {
		t.Fatalf("got %d server yields, want 4", len(yields))
	}
	groups := res.DedupFailures()
	for _, y := range yields {
		if y.Statements == 0 {
			t.Errorf("%s: no statement budget recorded", y.Server)
		}
		if y.FailingRuns == 0 {
			t.Errorf("%s: the calibrated corpus must produce failures", y.Server)
		}
		if y.DistinctFingerprints != len(groups[y.Server]) {
			t.Errorf("%s: yield reports %d distinct fingerprints, dedup reports %d",
				y.Server, y.DistinctFingerprints, len(groups[y.Server]))
		}
		if y.DistinctFingerprints > y.FailingRuns {
			t.Errorf("%s: more distinct fingerprints (%d) than failing runs (%d)",
				y.Server, y.DistinctFingerprints, y.FailingRuns)
		}
		classed := 0
		for _, n := range y.ByClass {
			classed += n
		}
		if classed > y.FailingRuns {
			t.Errorf("%s: %d class-attributed failures exceed %d failing runs", y.Server, classed, y.FailingRuns)
		}
		if y.FailuresPerKStmt() <= 0 || y.FingerprintsPerKStmt() <= 0 {
			t.Errorf("%s: zero yield over a failing corpus", y.Server)
		}
		// The corpus triggers are statement-shaped; SELECT regions dominate
		// every server's corpus (sanity that class attribution works).
		if y.ByClass[qgen.ClassSelect] == 0 {
			t.Errorf("%s: no SELECT-classified failures; class attribution broken", y.Server)
		}
	}
	out := res.RenderYield()
	if !strings.Contains(out, "fps/kstmt") {
		t.Fatalf("render misses header: %s", out)
	}
}
