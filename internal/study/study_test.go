package study

import (
	"sync"
	"testing"

	"divsql/internal/core"
	"divsql/internal/dialect"
)

// runOnce caches the (deterministic) full study run across tests in this
// package; the run executes 181 scripts × 4 servers.
var (
	studyOnce sync.Once
	studyRes  *Result
	studyErr  error
)

func fullRun(t *testing.T) *Result {
	t.Helper()
	studyOnce.Do(func() {
		studyRes, studyErr = New().Run()
	})
	if studyErr != nil {
		t.Fatalf("study run: %v", studyErr)
	}
	return studyRes
}

// TestMeasuredMatchesCalibratedExpectations is the keystone: every
// (bug, server) classification measured by actually translating and
// executing the script must equal the corpus expectation.
func TestMeasuredMatchesCalibratedExpectations(t *testing.T) {
	res := fullRun(t)
	for i := range res.Bugs {
		bug := &res.Bugs[i]
		for _, srv := range dialect.AllServers {
			exp := bug.Expected[srv]
			got := res.Runs[bug.ID][srv].Class
			if exp.Status != got.Status {
				t.Errorf("%s on %s: status %v want %v (%s)", bug.ID, srv, got.Status, exp.Status, got.Detail)
				continue
			}
			if got.Status == core.StatusFailure &&
				(exp.Type != got.Type || exp.SelfEvident != got.SelfEvident) {
				t.Errorf("%s on %s: %v/SE=%v want %v/SE=%v",
					bug.ID, srv, got.Type, got.SelfEvident, exp.Type, exp.SelfEvident)
			}
		}
	}
}

// TestTable1MatchesPaper pins every cell of the paper's Table 1.
func TestTable1MatchesPaper(t *testing.T) {
	res := fullRun(t)
	t1 := res.BuildTable1()
	// Row vectors per (reported, target) in the paper's column order:
	// total, cannot, fw, run, nofail, fail, perf, crash, irse, irnse, othse, othnse.
	want := map[dialect.ServerName]map[dialect.ServerName][12]int{
		dialect.IB: {
			dialect.IB: {55, 0, 0, 55, 8, 47, 3, 7, 4, 23, 2, 8},
			dialect.PG: {55, 23, 5, 27, 26, 1, 0, 0, 0, 1, 0, 0},
			dialect.OR: {55, 20, 4, 31, 31, 0, 0, 0, 0, 0, 0, 0},
			dialect.MS: {55, 16, 6, 33, 31, 2, 0, 0, 1, 1, 0, 0},
		},
		dialect.PG: {
			dialect.PG: {57, 0, 0, 57, 5, 52, 0, 11, 14, 20, 2, 5},
			dialect.IB: {57, 32, 2, 23, 23, 0, 0, 0, 0, 0, 0, 0},
			dialect.OR: {57, 27, 0, 30, 30, 0, 0, 0, 0, 0, 0, 0},
			dialect.MS: {57, 24, 0, 33, 31, 2, 0, 0, 1, 1, 0, 0},
		},
		dialect.OR: {
			dialect.OR: {18, 0, 0, 18, 4, 14, 1, 3, 3, 7, 0, 0},
			dialect.IB: {18, 13, 1, 4, 4, 0, 0, 0, 0, 0, 0, 0},
			dialect.MS: {18, 13, 1, 4, 4, 0, 0, 0, 0, 0, 0, 0},
			dialect.PG: {18, 12, 2, 4, 3, 1, 0, 0, 0, 1, 0, 0},
		},
		dialect.MS: {
			dialect.MS: {51, 0, 0, 51, 12, 39, 6, 5, 10, 17, 1, 0},
			dialect.IB: {51, 36, 3, 12, 11, 1, 0, 0, 0, 1, 0, 0},
			dialect.OR: {51, 32, 7, 12, 12, 0, 0, 0, 0, 0, 0, 0},
			dialect.PG: {51, 31, 2, 18, 12, 6, 0, 0, 6, 0, 0, 0},
		},
	}
	for rep, inner := range want {
		for tgt, w := range inner {
			c := t1.Cells[rep][tgt]
			got := [12]int{c.Total, c.CannotRun, c.FurtherWork, c.TotalRun, c.NoFailure,
				c.Failure, c.Perf, c.Crash, c.IRSelf, c.IRNonSelf, c.OtherSelf, c.OtherNSelf}
			if got != w {
				t.Errorf("Table1 %s->%s:\n  got  %v\n  want %v", rep, tgt, got, w)
			}
		}
	}
}

// TestTable2MatchesPaper pins Table 2, modulo the paper's own internal
// inconsistency: Table 1 implies 29 bugs with no failure on their own
// server of which exactly one (MS 56775) fails elsewhere, so 28 must
// fail nowhere — the paper's row sums to 27. Our measured table shows 13
// (not 12) in the all-four cell and 30 (not 31) one-server failures
// there; every other cell matches the paper exactly.
func TestTable2MatchesPaper(t *testing.T) {
	res := fullRun(t)
	t2 := res.BuildTable2()
	type cell struct{ total, nofail, one, two int }
	want := map[Combo]cell{
		"IB+PG+OR+MS": {47, 13, 30, 4}, // paper prints 12/31: see doc comment
		"IB+PG+OR":    {3, 0, 3, 0},
		"IB+PG+MS":    {7, 1, 6, 0},
		"IB+OR+MS":    {12, 2, 9, 1},
		"PG+OR+MS":    {10, 0, 9, 1},
		"IB+PG":       {5, 0, 5, 0},
		"IB+MS":       {3, 0, 3, 0},
		"IB+OR":       {0, 0, 0, 0},
		"PG+OR":       {4, 0, 3, 1},
		"PG+MS":       {12, 0, 7, 5},
		"OR+MS":       {2, 1, 1, 0},
		"IB":          {17, 1, 16, 0},
		"PG":          {18, 2, 16, 0},
		"MS":          {28, 5, 23, 0},
		"OR":          {13, 3, 10, 0},
	}
	for combo, w := range want {
		c := t2.Cells[combo]
		if c == nil {
			t.Errorf("missing combo %s", combo)
			continue
		}
		got := cell{c.Total, c.NoFailure, c.FailOne, c.FailTwo}
		if got != w {
			t.Errorf("Table2 %s: got %+v want %+v", combo, got, w)
		}
		if c.FailMore != 0 {
			t.Errorf("Table2 %s: %d bugs failed >2 servers", combo, c.FailMore)
		}
	}
	if res.MaxCoincident() != 2 {
		t.Errorf("max coincident = %d, want 2 (the paper: none failed more than two)", res.MaxCoincident())
	}
}

// TestTable3DetectabilityMatchesPaper pins the detectability analysis.
// The one-of-two failure counts drift slightly from the printed table
// (the paper's Tables 2 and 3 are mutually inconsistent about bugs whose
// cross-failures land outside the home+failing pair — see
// EXPERIMENTS.md); the detectability columns, which carry the paper's
// conclusion, match exactly.
func TestTable3DetectabilityMatchesPaper(t *testing.T) {
	res := fullRun(t)
	t3 := res.BuildTable3()
	type detect struct{ nonDetect, bothSE, bothNSE int }
	want := map[string]detect{
		"IB+PG": {1, 0, 0},
		"IB+OR": {0, 0, 0},
		"IB+MS": {2, 1, 0},
		"PG+OR": {0, 0, 1},
		"PG+MS": {1, 6, 0},
		"OR+MS": {0, 0, 0},
	}
	totalND := 0
	for _, p := range PairOrder {
		row := t3.Rows[p]
		w := want[p.String()]
		got := detect{row.NonDetectable, row.BothSelf, row.BothNonSelf}
		if got != w {
			t.Errorf("Table3 %s detectability: got %+v want %+v", p, got, w)
		}
		totalND += row.NonDetectable
	}
	if totalND != 4 {
		t.Errorf("non-detectable total = %d, want 4 (the paper's headline)", totalND)
	}
	// Runnable-on-both counts are fully determined by Table 2 and match.
	runWant := map[string]int{"IB+PG": 62, "IB+OR": 62, "IB+MS": 69, "PG+OR": 64, "PG+MS": 76, "OR+MS": 71}
	for _, p := range PairOrder {
		if got := t3.Rows[p].TotalRun; got != runWant[p.String()] {
			t.Errorf("Table3 %s run: %d want %d", p, got, runWant[p.String()])
		}
	}
	// 1-of-2 self-evident counts match the paper exactly.
	seWant := map[string]int{"IB+PG": 17, "IB+OR": 8, "IB+MS": 11, "PG+OR": 13, "PG+MS": 18, "OR+MS": 7}
	for _, p := range PairOrder {
		if got := t3.Rows[p].OneSelfEvident; got != seWant[p.String()] {
			t.Errorf("Table3 %s 1of2-SE: %d want %d", p, got, seWant[p.String()])
		}
	}
}

// TestTable4MatchesPaper pins the coincident-failure matrix exactly.
func TestTable4MatchesPaper(t *testing.T) {
	res := fullRun(t)
	t4 := res.BuildTable4()
	want := map[dialect.ServerName]map[dialect.ServerName]int{
		dialect.IB: {dialect.PG: 1, dialect.OR: 0, dialect.MS: 2},
		dialect.PG: {dialect.IB: 0, dialect.OR: 0, dialect.MS: 2},
		dialect.OR: {dialect.IB: 0, dialect.PG: 1, dialect.MS: 0},
		dialect.MS: {dialect.IB: 1, dialect.PG: 6, dialect.OR: 0},
	}
	for rep, inner := range want {
		for tgt, n := range inner {
			if got := t4.Counts[rep][tgt]; got != n {
				t.Errorf("Table4 %s->%s: %d want %d (%v)", rep, tgt, got, n, t4.BugIDs[rep][tgt])
			}
		}
	}
}

// TestHeadlineMatchesPaper pins the statistics quoted in the abstract
// and conclusions.
func TestHeadlineMatchesPaper(t *testing.T) {
	res := fullRun(t)
	h := res.BuildHeadline()
	if h.OwnFailures != 152 {
		t.Errorf("own failures %d want 152", h.OwnFailures)
	}
	if h.IncorrectResults != 98 || h.IncorrectPct < 64.4 || h.IncorrectPct > 64.6 {
		t.Errorf("incorrect results %d (%.2f%%), want 98 (64.5%%)", h.IncorrectResults, h.IncorrectPct)
	}
	if h.Crashes != 26 || h.CrashPct < 17.0 || h.CrashPct > 17.2 {
		t.Errorf("crashes %d (%.2f%%), want 26 (17.1%%)", h.Crashes, h.CrashPct)
	}
	if h.MaxCoincident != 2 || h.CoincidentBugs != 12 || h.NonDetectable != 4 {
		t.Errorf("coincidence stats: %+v", h)
	}
}

// TestOracleNeverFailsOnOthersBugs reproduces the paper's observation
// that "Oracle was the only server that never failed when running on it
// the reported bugs of the other servers."
func TestOracleNeverFailsOnOthersBugs(t *testing.T) {
	res := fullRun(t)
	for i := range res.Bugs {
		bug := &res.Bugs[i]
		if bug.Server == dialect.OR {
			continue
		}
		if run := res.Runs[bug.ID][dialect.OR]; run.Class.IsFailure() {
			t.Errorf("%s failed on OR", bug.ID)
		}
	}
}

// TestStressRunManifestsHeisenbugs runs the Section 3.2 follow-up: in a
// stressful environment the Heisenbugs manifest on their own servers.
func TestStressRunManifestsHeisenbugs(t *testing.T) {
	s := New()
	s.Stress = true
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	quiet := fullRun(t)
	manifested := 0
	for i := range res.Bugs {
		bug := &res.Bugs[i]
		if !bug.Heisen {
			continue
		}
		q := quiet.Runs[bug.ID][bug.Server].Class
		st := res.Runs[bug.ID][bug.Server].Class
		if q.IsFailure() {
			t.Errorf("%s failed while quiet", bug.ID)
		}
		if st.IsFailure() {
			manifested++
		}
	}
	if manifested == 0 {
		t.Error("no Heisenbug manifested under stress")
	}
}

// TestRendersProduceOutput sanity-checks the table renderers.
func TestRendersProduceOutput(t *testing.T) {
	res := fullRun(t)
	for name, text := range map[string]string{
		"t1": res.BuildTable1().Render(),
		"t2": res.BuildTable2().Render(),
		"t3": res.BuildTable3().Render(),
		"t4": res.BuildTable4().Render(),
		"hl": res.BuildHeadline().Render(),
	} {
		if len(text) < 100 {
			t.Errorf("%s render too short: %q", name, text)
		}
	}
}
