package study

import (
	"fmt"
	"sort"
	"strings"

	"divsql/internal/dialect"
	"divsql/internal/qgen"
	"divsql/internal/sql/parser"
)

// ServerYield is one server's bug-finding economics over a workload:
// how much statement budget was spent, how many failures it bought, and
// how many *distinct* fault regions (failure fingerprints) those
// failures map to. Yield is the quantity the coverage feedback loop
// optimizes in the differential harness (internal/difftest.Feedback);
// over the fixed corpus it tells which server's failure regions are
// cheap or expensive to reach.
type ServerYield struct {
	Server dialect.ServerName
	// Statements is the number of statements executed against the server
	// across all classified runs.
	Statements int
	// FailingRuns counts runs classified as failures.
	FailingRuns int
	// DistinctFingerprints counts deduplicated failure fingerprints (the
	// paper's per-bug counting).
	DistinctFingerprints int
	// ByClass splits the deviating statements of failing runs by
	// qgen.Class — which statement classes actually trigger this
	// server's faults.
	ByClass map[qgen.Class]int
}

// FailuresPerKStmt is the raw yield: failing runs per thousand
// statements of budget.
func (y ServerYield) FailuresPerKStmt() float64 {
	if y.Statements == 0 {
		return 0
	}
	return 1000 * float64(y.FailingRuns) / float64(y.Statements)
}

// FingerprintsPerKStmt is the deduplicated yield: distinct fault
// regions reached per thousand statements.
func (y ServerYield) FingerprintsPerKStmt() float64 {
	if y.Statements == 0 {
		return 0
	}
	return 1000 * float64(y.DistinctFingerprints) / float64(y.Statements)
}

// BuildYield aggregates the study's runs into per-server yield stats.
func (r *Result) BuildYield() []ServerYield {
	out := make([]ServerYield, 0, len(dialect.AllServers))
	groups := r.DedupFailures()
	for _, s := range dialect.AllServers {
		y := ServerYield{Server: s, ByClass: make(map[qgen.Class]int)}
		for i := range r.Bugs {
			run := r.Runs[r.Bugs[i].ID][s]
			if run == nil {
				continue
			}
			y.Statements += len(run.Stmts)
			if !run.Class.IsFailure() {
				continue
			}
			y.FailingRuns++
			if _, idx := ClassifyIndexed(run.Stmts, run.OracleStmts); idx >= 0 && idx < len(run.Stmts) {
				if st, err := parser.Parse(run.Stmts[idx].SQL); err == nil {
					y.ByClass[qgen.ClassOf(st)]++
				}
			}
		}
		y.DistinctFingerprints = len(groups[s])
		out = append(out, y)
	}
	return out
}

// RenderYield prints the per-server yield stats.
func (r *Result) RenderYield() string {
	var b strings.Builder
	b.WriteString("Per-server fault yield (statement budget -> failures -> distinct fault regions)\n")
	b.WriteString("server   stmts   failing-runs  distinct-fps  fail/kstmt  fps/kstmt  trigger classes\n")
	for _, y := range r.BuildYield() {
		classes := make([]string, 0, len(y.ByClass))
		for c, n := range y.ByClass {
			classes = append(classes, fmt.Sprintf("%s:%d", c, n))
		}
		sort.Strings(classes)
		fmt.Fprintf(&b, "%-8s %5d   %12d  %12d  %10.1f  %9.1f  %s\n",
			y.Server, y.Statements, y.FailingRuns, y.DistinctFingerprints,
			y.FailuresPerKStmt(), y.FingerprintsPerKStmt(), strings.Join(classes, " "))
	}
	return b.String()
}
