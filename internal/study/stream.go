package study

import (
	"errors"

	"divsql/internal/core"
	"divsql/internal/server"
	"divsql/internal/sql/parser"
)

// Source yields the SQL statements of one workload in execution order.
// It is the study's statement-stream abstraction: the 181-bug corpus
// (via ScriptSource) and generated workloads (internal/qgen implements
// Source) run through the same executor/comparator path.
type Source interface {
	// Next returns the next statement; ok is false when the stream ends.
	Next() (sql string, ok bool)
}

type sliceSource struct {
	stmts []string
	pos   int
}

func (s *sliceSource) Next() (string, bool) {
	if s.pos >= len(s.stmts) {
		return "", false
	}
	s.pos++
	return s.stmts[s.pos-1], true
}

// SliceSource returns a Source over a fixed statement list.
func SliceSource(stmts []string) Source { return &sliceSource{stmts: stmts} }

// ScriptSource splits a SQL script into a Source (one statement per
// semicolon-separated piece, as the corpus scripts are written).
func ScriptSource(script string) (Source, error) {
	stmts, err := parser.SplitScript(script)
	if err != nil {
		return nil, err
	}
	return SliceSource(stmts), nil
}

// Drain collects the remaining statements of a source into a slice.
func Drain(src Source) []string {
	var out []string
	for {
		sql, ok := src.Next()
		if !ok {
			return out
		}
		out = append(out, sql)
	}
}

// RunSource executes every statement from src on exec in order, stopping
// after a crash (remaining statements cannot be submitted to a dead
// server). It returns one outcome per submitted statement. exec may be a
// single server, a session, the diverse middleware — anything satisfying
// core.Executor. Entries in the bound form (core.EncodeBound) replay
// through the executor's prepare/bind path, so parameterized divergence
// reports shrink and replay like any other stream.
func RunSource(exec core.Executor, src Source) []server.StmtOutcome {
	var outcomes []server.StmtOutcome
	for {
		sql, ok := src.Next()
		if !ok {
			return outcomes
		}
		res, lat, err := core.ExecEntry(exec, sql)
		out := server.StmtOutcome{SQL: sql, Res: res, Err: err, Latency: lat}
		if errors.Is(err, server.ErrCrashed) {
			out.Crashed = true
			outcomes = append(outcomes, out)
			return outcomes
		}
		outcomes = append(outcomes, out)
	}
}

// RunPair drives one statement stream through a server under test and
// the pristine oracle, then classifies the deviation observationally.
// This is the study's single executor/comparator path: corpus bug
// scripts and generated divergence-hunting workloads both go through it.
func RunPair(srv, orc core.Executor, src Source) (core.Classification, []server.StmtOutcome, []server.StmtOutcome) {
	stmts := Drain(src)
	sOut := RunSource(srv, SliceSource(stmts))
	oOut := RunSource(orc, SliceSource(stmts))
	return Classify(sOut, oOut), sOut, oOut
}
