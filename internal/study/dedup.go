package study

import (
	"fmt"
	"sort"
	"strings"

	"divsql/internal/dialect"
	"divsql/internal/sql/ast"
	"divsql/internal/sql/parser"
)

// FailureFingerprint returns the syntactic fingerprint of the statement
// on which a failing run first deviated from the oracle. ok is false for
// non-failing runs and for deviating statements that do not parse (which
// cannot happen for corpus scripts, but keeps the API total).
func (r *Run) FailureFingerprint() (ast.Fingerprint, bool) {
	if r == nil || !r.Class.IsFailure() {
		return ast.Fingerprint{}, false
	}
	_, idx := ClassifyIndexed(r.Stmts, r.OracleStmts)
	if idx < 0 || idx >= len(r.Stmts) {
		return ast.Fingerprint{}, false
	}
	st, err := parser.Parse(r.Stmts[idx].SQL)
	if err != nil {
		return ast.Fingerprint{}, false
	}
	return ast.FingerprintOf(st), true
}

// FailureGroup is one deduplicated failure of one server: all failing
// runs whose deviating statements share a fingerprint. One injected bug
// triggered by several scripts (or repeatedly by a generated workload)
// collapses into a single group, mirroring the paper's per-bug counting.
type FailureGroup struct {
	Server      dialect.ServerName
	Fingerprint string
	Bugs        []string
}

// DedupFailures groups every failing run per server by the fingerprint
// of its deviating statement. Runs with no usable fingerprint are
// grouped under their bug ID (they stay distinct).
func (r *Result) DedupFailures() map[dialect.ServerName][]FailureGroup {
	byServer := make(map[dialect.ServerName]map[string][]string)
	for _, s := range dialect.AllServers {
		byServer[s] = make(map[string][]string)
	}
	for i := range r.Bugs {
		bug := &r.Bugs[i]
		for tgt, run := range r.Runs[bug.ID] {
			if run == nil || !run.Class.IsFailure() {
				continue
			}
			key := "unfingerprintable:" + bug.ID
			if fp, ok := run.FailureFingerprint(); ok {
				key = fp.String()
			}
			byServer[tgt][key] = append(byServer[tgt][key], bug.ID)
		}
	}
	out := make(map[dialect.ServerName][]FailureGroup, len(byServer))
	for s, groups := range byServer {
		keys := make([]string, 0, len(groups))
		for k := range groups {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			ids := groups[k]
			sort.Strings(ids)
			out[s] = append(out[s], FailureGroup{Server: s, Fingerprint: k, Bugs: ids})
		}
	}
	return out
}

// RenderDedup prints the per-server deduplicated failure counts: raw
// failing runs vs distinct failure fingerprints, listing the scripts
// that collapse together.
func (r *Result) RenderDedup() string {
	groups := r.DedupFailures()
	var b strings.Builder
	b.WriteString("Deduplicated failures (one fingerprint = one fault, per-bug counting)\n")
	for _, s := range dialect.AllServers {
		raw := 0
		for _, g := range groups[s] {
			raw += len(g.Bugs)
		}
		fmt.Fprintf(&b, "%s: %d failing runs -> %d distinct failure fingerprints\n", s, raw, len(groups[s]))
		for _, g := range groups[s] {
			if len(g.Bugs) > 1 {
				fmt.Fprintf(&b, "    %d scripts share one fault region: %s\n", len(g.Bugs), strings.Join(g.Bugs, ", "))
			}
		}
	}
	return b.String()
}
