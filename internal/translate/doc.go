// Package translate ports a SQL script from one simulated server
// dialect to another, reproducing the paper's methodology: each bug
// script was written for the server that reported it and had to be
// translated into the other servers' dialects before it could be run
// there.
//
// Script(script, from, to) is the whole API. Translation is
// rule-based and per-statement: type-name and function-name spellings
// are rewritten through internal/dialect's catalogues (keeping the
// source spelling when the target also accepts it), and row-limit
// syntax is rewritten to the target's form; constructs outside the
// rules — sequences, clustered indexes, UNION/DISTINCT in views, types
// or functions the target lacks — are classified rather than guessed
// at.
//
// Translation has three outcomes, mirroring Table 1's row structure:
//
//   - success: a rewritten script in the target dialect;
//   - *FunctionalityMissingError: the script uses a construct the target
//     server does not offer at all ("Bug script cannot be run");
//   - *FurtherWorkError: the construct exists on the target but the
//     translator has no automatic rule for it ("Further Work").
//
// internal/study calls the translator for every (bug, server) pair
// whose reporting dialect differs from the target; the two error types
// populate Table 1's non-run rows exactly as the paper's manual porting
// effort did.
package translate
