package translate

import (
	"errors"
	"strings"
	"testing"

	"divsql/internal/dialect"
)

func mustTranslate(t *testing.T, script string, from, to dialect.ServerName) string {
	t.Helper()
	out, err := Script(script, from, to)
	if err != nil {
		t.Fatalf("translate %s->%s: %v", from, to, err)
	}
	return out
}

func wantMissing(t *testing.T, script string, from, to dialect.ServerName) {
	t.Helper()
	_, err := Script(script, from, to)
	var miss *FunctionalityMissingError
	if !errors.As(err, &miss) {
		t.Fatalf("translate %s->%s: want FunctionalityMissing, got %v", from, to, err)
	}
}

func wantFurtherWork(t *testing.T, script string, from, to dialect.ServerName) {
	t.Helper()
	_, err := Script(script, from, to)
	var fw *FurtherWorkError
	if !errors.As(err, &fw) {
		t.Fatalf("translate %s->%s: want FurtherWork, got %v", from, to, err)
	}
}

func TestIdentityConstructsPassThrough(t *testing.T) {
	out := mustTranslate(t, "SELECT A, B FROM T WHERE A > 1;", dialect.IB, dialect.PG)
	if !strings.Contains(out, "SELECT A, B FROM T") {
		t.Errorf("unexpected output %q", out)
	}
}

func TestFunctionRenames(t *testing.T) {
	out := mustTranslate(t, "SELECT LENGTH(NAME) AS L FROM T;", dialect.PG, dialect.MS)
	if !strings.Contains(out, "LEN(NAME)") {
		t.Errorf("LENGTH->LEN rename missing: %q", out)
	}
	out = mustTranslate(t, "SELECT COALESCE(A, 0) AS C FROM T;", dialect.PG, dialect.OR)
	if !strings.Contains(out, "NVL(A, 0)") {
		t.Errorf("COALESCE->NVL rename missing: %q", out)
	}
	out = mustTranslate(t, "SELECT ISNULL(A, 0) AS C FROM T;", dialect.MS, dialect.IB)
	if !strings.Contains(out, "COALESCE(A, 0)") {
		t.Errorf("ISNULL->COALESCE rename missing: %q", out)
	}
}

func TestSequenceFunctionArity(t *testing.T) {
	out := mustTranslate(t, "SELECT GEN_ID(SQ, 1) AS V;", dialect.IB, dialect.PG)
	if !strings.Contains(out, "NEXTVAL(SQ)") {
		t.Errorf("GEN_ID->NEXTVAL: %q", out)
	}
	out = mustTranslate(t, "SELECT NEXTVAL(SQ) AS V;", dialect.PG, dialect.IB)
	if !strings.Contains(out, "GEN_ID(SQ, 1)") {
		t.Errorf("NEXTVAL->GEN_ID: %q", out)
	}
	wantMissing(t, "SELECT NEXTVAL(SQ) AS V;", dialect.PG, dialect.MS)
}

func TestTypeRenames(t *testing.T) {
	out := mustTranslate(t, "CREATE TABLE T (A INT, D DATE);", dialect.PG, dialect.MS)
	if !strings.Contains(out, "DATETIME") {
		t.Errorf("DATE->DATETIME: %q", out)
	}
	out = mustTranslate(t, "CREATE TABLE T (A DATETIME);", dialect.MS, dialect.OR)
	if !strings.Contains(out, "A DATE") {
		t.Errorf("DATETIME->DATE: %q", out)
	}
	wantMissing(t, "CREATE TABLE T (A MONEY);", dialect.MS, dialect.PG)
}

func TestRowLimitTranslation(t *testing.T) {
	out := mustTranslate(t, "SELECT A FROM T ORDER BY A LIMIT 5;", dialect.PG, dialect.MS)
	if !strings.Contains(out, "TOP 5") {
		t.Errorf("LIMIT->TOP: %q", out)
	}
	out = mustTranslate(t, "SELECT TOP 5 A FROM T;", dialect.MS, dialect.IB)
	if !strings.Contains(out, "ROWS 5") {
		t.Errorf("TOP->ROWS: %q", out)
	}
	wantMissing(t, "SELECT A FROM T LIMIT 5;", dialect.PG, dialect.OR)
}

func TestAvailabilityAtoms(t *testing.T) {
	wantMissing(t, "SELECT GEN_UUID(A) AS U FROM T;", dialect.IB, dialect.PG)
	wantMissing(t, "SELECT BIT_LENGTH(A) AS B FROM T;", dialect.PG, dialect.OR)
	wantMissing(t, "SELECT LPAD(A, 3) AS P FROM T;", dialect.OR, dialect.MS)
	wantMissing(t, "SELECT DATEDIFF(A, B) AS D FROM T;", dialect.MS, dialect.IB)
}

func TestFurtherWorkAtoms(t *testing.T) {
	wantFurtherWork(t, "SELECT DATE_FMT(D, 'YYYY') AS F FROM T;", dialect.IB, dialect.PG)
	wantFurtherWork(t, "SELECT NUM_FMT(A, '9.9') AS F FROM T;", dialect.PG, dialect.OR)
	wantFurtherWork(t, "SELECT STR_FMT(A, 'x') AS F FROM T;", dialect.IB, dialect.MS)
	wantFurtherWork(t, "SELECT BIN_FMT(A, 'b') AS F FROM T;", dialect.MS, dialect.IB)
	// ... but translatable everywhere else.
	mustTranslate(t, "SELECT DATE_FMT(D, 'YYYY') AS F FROM T;", dialect.IB, dialect.MS)
	mustTranslate(t, "SELECT NUM_FMT(A, '9.9') AS F FROM T;", dialect.PG, dialect.MS)
}

func TestMissingDominatesFurtherWork(t *testing.T) {
	// A script with both obstacles classifies as "cannot be run".
	wantMissing(t, "SELECT GEN_UUID(A) AS U, DATE_FMT(D, 'Y') AS F FROM T;", dialect.IB, dialect.PG)
}

func TestSyntaxGates(t *testing.T) {
	wantMissing(t, "CREATE VIEW V AS SELECT A FROM T UNION SELECT B FROM U;", dialect.IB, dialect.PG)
	mustTranslate(t, "CREATE VIEW V AS SELECT A FROM T UNION SELECT B FROM U;", dialect.IB, dialect.OR)
	wantMissing(t, "CREATE CLUSTERED INDEX IX ON T (A);", dialect.MS, dialect.IB)
	mustTranslate(t, "CREATE CLUSTERED INDEX IX ON T (A);", dialect.MS, dialect.PG)
	wantMissing(t, "CREATE SEQUENCE SQ;", dialect.PG, dialect.MS)
}

func TestTranslatedScriptKeepsStatementCount(t *testing.T) {
	script := `CREATE TABLE T (A INT, D DATE);
INSERT INTO T VALUES (1, '2001-01-01');
SELECT A, LENGTH('abc') AS L FROM T;`
	out := mustTranslate(t, script, dialect.PG, dialect.MS)
	if got := strings.Count(out, ";"); got != 3 {
		t.Errorf("statement count changed: %q", out)
	}
}

func TestSourceSyntaxErrorReported(t *testing.T) {
	if _, err := Script("NOT SQL AT ALL", dialect.IB, dialect.PG); err == nil {
		t.Error("want parse error")
	}
}
