package translate

import (
	"fmt"
	"strings"

	"divsql/internal/dialect"
	"divsql/internal/sql/ast"
	"divsql/internal/sql/parser"
	"divsql/internal/sql/types"
)

// FunctionalityMissingError reports a construct absent from the target.
type FunctionalityMissingError struct {
	Feature dialect.Feature
	Detail  string
	Target  dialect.ServerName
}

func (e *FunctionalityMissingError) Error() string {
	return fmt.Sprintf("functionality missing on %s: %s", e.Target, e.Detail)
}

// FurtherWorkError reports a construct with no automatic translation.
type FurtherWorkError struct {
	Feature dialect.Feature
	Detail  string
	Target  dialect.ServerName
}

func (e *FurtherWorkError) Error() string {
	return fmt.Sprintf("no automatic translation to %s: %s", e.Target, e.Detail)
}

// Script translates a full semicolon-separated script between dialects.
// On success it returns the script rendered in the target dialect.
func Script(script string, from, to dialect.ServerName) (string, error) {
	stmts, err := parser.ParseScript(script)
	if err != nil {
		return "", fmt.Errorf("parse source script: %w", err)
	}
	srcD, err := dialect.New(from)
	if err != nil {
		return "", err
	}
	dstD, err := dialect.New(to)
	if err != nil {
		return "", err
	}
	tr := &translator{src: srcD, dst: dstD}
	for _, st := range stmts {
		tr.statement(st)
	}
	if err := tr.verdict(); err != nil {
		return "", err
	}
	var b strings.Builder
	for i, st := range stmts {
		if i > 0 {
			b.WriteString(";\n")
		}
		b.WriteString(ast.Render(st))
	}
	b.WriteString(";")
	return b.String(), nil
}

type translator struct {
	src, dst *dialect.Dialect

	missing []*FunctionalityMissingError
	further []*FurtherWorkError
}

// verdict prioritizes "functionality missing" over "further work", the
// way the paper's Table 1 classifies scripts with multiple obstacles.
func (t *translator) verdict() error {
	if len(t.missing) > 0 {
		return t.missing[0]
	}
	if len(t.further) > 0 {
		return t.further[0]
	}
	return nil
}

func (t *translator) miss(f dialect.Feature, detail string) {
	t.missing = append(t.missing, &FunctionalityMissingError{Feature: f, Detail: detail, Target: t.dst.Name})
}

func (t *translator) fw(f dialect.Feature, detail string) {
	t.further = append(t.further, &FurtherWorkError{Feature: f, Detail: detail, Target: t.dst.Name})
}

func (t *translator) statement(st ast.Statement) {
	switch x := st.(type) {
	case *ast.CreateTable:
		for i := range x.Columns {
			t.typeName(&x.Columns[i].Type)
			t.expr(x.Columns[i].Default)
			t.expr(x.Columns[i].Check)
		}
		for _, tc := range x.Constraints {
			t.expr(tc.Check)
		}
	case *ast.CreateView:
		if x.Select != nil {
			if x.Select.Union != nil && !t.dst.Supports(dialect.FeatViewUnion) {
				t.miss(dialect.FeatViewUnion, "UNION inside a view definition")
			}
			if x.Select.Distinct && !t.dst.Supports(dialect.FeatViewDistinct) {
				t.miss(dialect.FeatViewDistinct, "DISTINCT inside a view definition")
			}
			t.sel(x.Select)
		}
	case *ast.CreateIndex:
		if x.Clustered && !t.dst.Supports(dialect.FeatClusteredIndex) {
			t.miss(dialect.FeatClusteredIndex, "CLUSTERED indexes")
		}
	case *ast.CreateSequence:
		if !t.dst.Supports(dialect.FeatSequences) {
			t.miss(dialect.FeatSequences, "sequences/generators")
		}
	case *ast.DropSequence:
		if !t.dst.Supports(dialect.FeatSequences) {
			t.miss(dialect.FeatSequences, "sequences/generators")
		}
	case *ast.Insert:
		for _, row := range x.Rows {
			for _, e := range row {
				t.expr(e)
			}
		}
		if x.Select != nil {
			t.sel(x.Select)
		}
	case *ast.Update:
		for i := range x.Sets {
			t.expr(x.Sets[i].Value)
		}
		t.expr(x.Where)
	case *ast.Delete:
		t.expr(x.Where)
	case *ast.Select:
		t.sel(x)
	}
}

func (t *translator) sel(s *ast.Select) {
	if s == nil {
		return
	}
	if s.LimitSyn != ast.LimitNone {
		if !t.dst.Supports(dialect.FeatRowLimit) {
			t.miss(dialect.FeatRowLimit, "row-limiting (LIMIT/TOP/ROWS)")
		} else {
			s.LimitSyn = t.dst.LimitSyntax()
		}
	}
	for i := range s.Items {
		t.expr(s.Items[i].Expr)
	}
	for _, f := range s.From {
		if f.Table.Subquery != nil {
			t.sel(f.Table.Subquery)
		}
		for _, j := range f.Joins {
			if j.Right.Subquery != nil {
				t.sel(j.Right.Subquery)
			}
			t.expr(j.On)
		}
	}
	t.expr(s.Where)
	for _, g := range s.GroupBy {
		t.expr(g)
	}
	t.expr(s.Having)
	for i := range s.OrderBy {
		t.expr(s.OrderBy[i].Expr)
	}
	t.sel(s.Union)
}

func (t *translator) typeName(tn *ast.TypeName) {
	spec, ok := t.src.TypeSpecByLocal(tn.Name)
	if !ok {
		// Unknown even to the source dialect; leave it for the server to
		// reject at run time.
		return
	}
	names := spec.Names[t.dst.Name]
	if len(names) == 0 {
		t.miss(dialect.TypeFeature(spec.Canonical), fmt.Sprintf("type %s", tn.Name))
		return
	}
	preferred := names[0]
	if tn.Name != preferred {
		// Keep the spelling if the target also accepts it; otherwise use
		// the target's preferred spelling.
		accepted := false
		for _, n := range names {
			if n == tn.Name {
				accepted = true
				break
			}
		}
		if !accepted {
			tn.Name = preferred
			if preferred == "DATETIME" || preferred == "DATE" {
				tn.Args = nil
			}
		}
	}
}

func (t *translator) expr(e ast.Expr) {
	ast.WalkExprs(e, func(n ast.Expr) {
		switch x := n.(type) {
		case *ast.FuncCall:
			t.funcCall(x)
		case *ast.Cast:
			t.typeName(&x.To)
		case *ast.In:
			if x.Select != nil {
				t.sel(x.Select)
			}
		case *ast.Exists:
			t.sel(x.Select)
		case *ast.Subquery:
			t.sel(x.Select)
		}
	})
}

func (t *translator) funcCall(fc *ast.FuncCall) {
	spec, ok := t.src.FuncSpecByLocal(fc.Name)
	if !ok {
		// Not in the source dialect either; the source server would have
		// rejected it. Leave unchanged.
		return
	}
	dstName, ok := spec.Names[t.dst.Name]
	if !ok {
		t.miss(dialect.FuncFeature(spec.Canonical), fmt.Sprintf("function %s", fc.Name))
		return
	}
	if spec.NoAutoTranslate[t.dst.Name] {
		t.fw(dialect.FuncFeature(spec.Canonical), fmt.Sprintf("function %s (vendor-specific semantics)", fc.Name))
		return
	}
	fc.Name = dstName
	if spec.SeqFunc {
		// GEN_ID(gen, n) <-> NEXTVAL(seq): adjust arity.
		if t.dst.Name == dialect.IB && len(fc.Args) == 1 {
			fc.Args = append(fc.Args, &ast.Literal{Val: types.NewInt(1)})
		}
		if t.dst.Name != dialect.IB && len(fc.Args) == 2 {
			fc.Args = fc.Args[:1]
		}
	}
}
